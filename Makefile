# Developer entry points. `make check` is what CI runs: full build, the
# test run, an observability smoke test that executes a collecting
# workload with tracing on and validates the emitted Chrome trace JSON
# (parses, spans balanced, all four gc pause phases present), and a
# fault-injection smoke sweep over mutated gc-table streams.

DUNE ?= dune
TRACE_OUT := _build/smoke.trace.json
FAULT_ITERS ?= 15
FAULT_OUT := _build/fault-report.json

.PHONY: all build test test-verified smoke fault check bench bench-perf clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# The full test run again, with the heap verifier forced on around every
# collection (pre + post) via the environment switches.
test-verified: build
	MM_VERIFY_HEAP=1 MM_VERIFY_PRE=1 $(DUNE) runtest --force

smoke: build
	$(DUNE) exec bin/mmrun.exe -- --heap 256 --trace $(TRACE_OUT) --metrics \
	  examples/sample.m3l > /dev/null
	$(DUNE) exec tools/validate_trace.exe -- $(TRACE_OUT) \
	  gc.collect gc.stackwalk gc.underive gc.copy gc.rederive

# Fault-injection sweep: mutated table streams must never crash, hang or
# silently diverge — both with the load-time cross-check (the shipping
# configuration) and without it (decoder + heap verifier on their own).
fault: build
	$(DUNE) exec tools/faultgen.exe -- --iters $(FAULT_ITERS) --out $(FAULT_OUT)
	$(DUNE) exec tools/faultgen.exe -- --iters $(FAULT_ITERS) --no-cross-check \
	  --out $(FAULT_OUT:.json=.nocross.json)

check: build test smoke fault
	@echo "check: ok"

bench: build
	$(DUNE) exec bench/main.exe

# The gc hot-path before/after (decode cache off vs on); writes BENCH_2.json.
bench-perf: build
	$(DUNE) exec bench/main.exe -- perf

clean:
	$(DUNE) clean
