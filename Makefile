# Developer entry points. `make check` is what CI runs: full build, the
# eleven-suite + telemetry test run, and an observability smoke test that
# executes a collecting workload with tracing on and validates the emitted
# Chrome trace JSON (parses, spans balanced, all four gc pause phases
# present).

DUNE ?= dune
TRACE_OUT := _build/smoke.trace.json

.PHONY: all build test smoke check bench bench-perf clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

smoke: build
	$(DUNE) exec bin/mmrun.exe -- --heap 256 --trace $(TRACE_OUT) --metrics \
	  examples/sample.m3l > /dev/null
	$(DUNE) exec tools/validate_trace.exe -- $(TRACE_OUT) \
	  gc.collect gc.stackwalk gc.underive gc.copy gc.rederive

check: build test smoke
	@echo "check: ok"

bench: build
	$(DUNE) exec bench/main.exe

# The gc hot-path before/after (decode cache off vs on); writes BENCH_2.json.
bench-perf: build
	$(DUNE) exec bench/main.exe -- perf

clean:
	$(DUNE) clean
