# Developer entry points. `make check` is what CI runs: full build, the
# test run, an observability smoke test that executes a collecting
# workload with tracing on and validates the emitted Chrome trace JSON
# (parses, spans balanced, all four gc pause phases present), and a
# fault-injection smoke sweep over mutated gc-table streams.

DUNE ?= dune
TRACE_OUT := _build/smoke.trace.json
FAULT_ITERS ?= 15
FAULT_OUT := _build/fault-report.json
PROFILE_OUT := _build/smoke.profile.json

.PHONY: all build test test-verified test-gen test-switch test-workers \
	test-pressure test-incremental smoke fault profile check bench \
	bench-perf bench-gen bench-mutator bench-pauses bench-copy \
	bench-pressure bench-pgo bench-pause-budget clean

all: build

build:
	$(DUNE) build

test: build
	$(DUNE) runtest

# The full test run again, with the heap verifier forced on around every
# collection (pre + post) via the environment switches.
test-verified: build
	MM_VERIFY_HEAP=1 MM_VERIFY_PRE=1 $(DUNE) runtest --force

# And again in generational mode: MM_GEN=1 flips every precise-collector
# entry point onto the nursery collector (same images, byte-identical
# tables), with the heap verifier — including the old→young remembered-set
# check — armed around every minor and full collection.
test-gen: build
	MM_GEN=1 MM_VERIFY_HEAP=1 $(DUNE) runtest --force

# And once more on the reference switch interpreter: MM_THREADED=0 turns
# the threaded-code engine off, so every driver-level test executes on
# the plain fetch/match/step loop the semantics are defined against.
test-switch: build
	MM_THREADED=0 $(DUNE) runtest --force

# And with the parallel copy phase on: MM_GC_WORKERS=4 routes every full
# collection's scan through the worker pool, MM_GC_PAR_THRESHOLD=2 forces
# even the tiny test heaps through the three-phase parallel rounds, and
# the heap verifier re-checks every heap the parallel copy produces.
# Worker count is a pure runtime switch, so the entire suite must pass
# unchanged.
test-workers: build
	MM_GC_WORKERS=4 MM_GC_PAR_THRESHOLD=2 MM_VERIFY_HEAP=1 $(DUNE) runtest --force

# And under memory pressure: MM_HEAP_GROW=1 arms adaptive semispace
# resizing on every moving-collector entry point (tests that pick their
# own heap sizes now also exercise the grow/shrink/retry ladder), with
# the heap verifier re-checking every post-resize heap.
test-pressure: build
	MM_HEAP_GROW=1 MM_VERIFY_HEAP=1 $(DUNE) runtest --force

# And in incremental mode: MM_GC_INCREMENTAL=1 flips every precise-
# collector entry point onto the tri-color sliced mark-sweep collector
# (same images, same gc-point tables, no pause budget so pacing is the
# deterministic work quota), with the heap verifier — including the
# tri-color invariant check — armed at every slice boundary.
test-incremental: build
	MM_GC_INCREMENTAL=1 MM_VERIFY_HEAP=1 $(DUNE) runtest --force

smoke: build
	$(DUNE) exec bin/mmrun.exe -- --heap 256 --trace $(TRACE_OUT) --metrics \
	  examples/sample.m3l > /dev/null
	$(DUNE) exec tools/validate_trace.exe -- $(TRACE_OUT) \
	  gc.collect gc.stackwalk gc.underive gc.copy gc.rederive

# Fault-injection sweep: mutated table streams must never crash, hang or
# silently diverge — both with the load-time cross-check (the shipping
# configuration) and without it (decoder + heap verifier on their own).
fault: build
	$(DUNE) exec tools/faultgen.exe -- --iters $(FAULT_ITERS) --out $(FAULT_OUT)
	$(DUNE) exec tools/faultgen.exe -- --iters $(FAULT_ITERS) --no-cross-check \
	  --out $(FAULT_OUT:.json=.nocross.json)

# Profiling smoke test: a collecting run with the allocation-site profiler
# and periodic heap censuses on, in both collector modes, validating the
# emitted profile document (schema, site resolution, survival rates in
# range, bucket counts summing to pause counts) and rendering it.
profile: build
	$(DUNE) exec bin/mmrun.exe -- --heap 2000 --profile $(PROFILE_OUT) \
	  --census-every 8 examples/sample.m3l > /dev/null
	$(DUNE) exec tools/validate_trace.exe -- --profile $(PROFILE_OUT)
	$(DUNE) exec tools/profview.exe -- $(PROFILE_OUT) > /dev/null
	$(DUNE) exec bin/mmrun.exe -- --gen --heap 4000 --profile \
	  $(PROFILE_OUT:.json=.gen.json) --census-every 8 examples/sample.m3l > /dev/null
	$(DUNE) exec tools/validate_trace.exe -- --profile $(PROFILE_OUT:.json=.gen.json)

check: build test smoke fault profile
	@echo "check: ok"

bench: build
	$(DUNE) exec bench/main.exe

# The gc hot-path before/after (decode cache off vs on); writes BENCH_2.json.
bench-perf: build
	$(DUNE) exec bench/main.exe -- perf

# Generational vs full compaction on destroy and takl; writes BENCH_3.json.
bench-gen: build
	$(DUNE) exec bench/main.exe -- gen

# Threaded-code engine vs switch interpreter mutator throughput;
# writes BENCH_4.json.
bench-mutator: build
	$(DUNE) exec bench/main.exe -- mutator

# Pause-time distributions (p50/p90/p99/max) per collector mode on destroy
# and takl, plus the ballast survival-profile run; writes BENCH_5.json.
bench-pauses: build
	$(DUNE) exec bench/main.exe -- pauses

# Parallel full-collection copy bandwidth: destroy + INTEGER-array ballast
# swept over semispace sizes (1M..100M words) x gc workers {1,2,4},
# asserting byte-identical outputs and collection counts across worker
# counts; writes BENCH_6.json. BENCH_COPY_SIZES overrides the sweep.
bench-copy: build
	$(DUNE) exec bench/main.exe -- copy

# Adaptive growth vs a big fixed heap on destroy + INTEGER-array ballast
# (plus an allocation-storm run), asserting output/icount/collections
# byte-identical under growth; writes BENCH_7.json.
bench-pressure: build
	$(DUNE) exec bench/main.exe -- pressure

# Closed PGO loop on destroy-ballast: profiled gen run -> derived policy
# -> policy and adaptive re-runs, asserting byte-identical output/icount
# and a >=30% cut in minor promotion; writes BENCH_8.json.
bench-pgo: build
	$(DUNE) exec bench/main.exe -- pgo

# Incremental slicing vs stop-the-world pause distributions on
# destroy-ballast and takl at pause budgets {100us, 500us, 2ms},
# asserting byte-identical output/icount across every mode and reporting
# the max-pause cut vs stw-flat; writes BENCH_9.json.
bench-pause-budget: build
	$(DUNE) exec bench/main.exe -- pause-budget

clean:
	$(DUNE) clean
