(** destroy — the paper's gc-stress benchmark (§6.1, §6.3): build a complete
    tree of a given branching factor and depth, then repeatedly build a new
    subtree at a fixed intermediate depth and replace a randomly chosen
    subtree of the same height with it. Heavily recursive; triggers
    collection frequently. The PRNG is a deterministic LCG written in the
    benchmark itself so runs are reproducible. *)

let make ~branch ~depth ~replace_depth ~iterations =
  Printf.sprintf
    {|
MODULE Destroy;

TYPE
  TreeRec = RECORD
    value: INTEGER;
    kids: Kids
  END;
  Tree = REF TreeRec;
  Kids = REF ARRAY OF Tree;

VAR
  root: Tree;
  seed, it, checksum: INTEGER;

PROCEDURE Rand(bound: INTEGER): INTEGER;
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 1073741824;
  RETURN seed MOD bound
END Rand;

(* Bottom-up construction, the cons idiom of the paper's Lisp-derived
   benchmarks: the kids are built first, so the node's initializing
   pointer store targets the object just allocated — the pattern the
   static write-barrier elimination proves barrier-free. The k[i] store
   keeps its barrier: the recursive call may collect and promote k. *)
PROCEDURE MkTree(depth: INTEGER): Tree;
VAR t: Tree; k: Kids; i: INTEGER;
BEGIN
  k := NIL;
  IF depth > 0 THEN
    k := NEW(Kids, %d);
    FOR i := 0 TO %d DO
      k[i] := MkTree(depth - 1)
    END
  END;
  t := NEW(Tree);
  t.value := depth;
  t.kids := k;
  RETURN t
END MkTree;

PROCEDURE Count(t: Tree): INTEGER;
VAR n, i: INTEGER;
BEGIN
  IF t = NIL THEN RETURN 0 END;
  n := 1;
  IF t.kids # NIL THEN
    FOR i := 0 TO NUMBER(t.kids) - 1 DO
      n := n + Count(t.kids[i])
    END
  END;
  RETURN n
END Count;

PROCEDURE Replace(): INTEGER;
VAR t: Tree; d: INTEGER; fresh: Tree;
BEGIN
  (* walk down to the replacement depth *)
  t := root;
  d := 0;
  WHILE d < %d - 1 DO
    t := t.kids[Rand(%d)];
    d := d + 1
  END;
  (* build the new subtree first, then splice it in *)
  fresh := MkTree(%d - %d);
  t.kids[Rand(%d)] := fresh;
  RETURN fresh.value
END Replace;

BEGIN
  seed := 12345;
  root := MkTree(%d);
  checksum := 0;
  FOR it := 1 TO %d DO
    checksum := checksum + Replace()
  END;
  PutText("destroy: nodes=");
  PutInt(Count(root));
  PutText(" checksum=");
  PutInt(checksum);
  PutLn()
END Destroy.
|}
    branch (branch - 1) replace_depth branch depth replace_depth branch depth
    iterations

(** The configuration used by the test suite and the §6.3 timing bench. *)
let src = make ~branch:3 ~depth:6 ~replace_depth:3 ~iterations:60
