(** destroy — the paper's gc-stress benchmark (§6.1, §6.3): build a complete
    tree of a given branching factor and depth, then repeatedly build a new
    subtree at a fixed intermediate depth and replace a randomly chosen
    subtree of the same height with it. Heavily recursive; triggers
    collection frequently. The PRNG is a deterministic LCG written in the
    benchmark itself so runs are reproducible. *)

let gen ~intballast ~intchunk ~ballast ~branch ~depth ~replace_depth ~iterations =
  (* The ballast splices are empty strings at [ballast = 0], so the default
     source is byte-identical to what this generator always produced. With
     ballast, a linked list allocated from its own distinct site is anchored
     in a global for the whole run — a long-lived population whose survival
     rate an allocation profile must rank above the short-lived tree sites.

     [intballast] (likewise spliced only when nonzero) anchors a list of
     [intballast] open INTEGER arrays of [intchunk] words each: a long-lived
     population with almost no pointer fields, so a full collection spends
     its time block-copying array bodies rather than chasing edges — the
     blit-dominated heap the parallel-copy bandwidth bench needs. *)
  let ballast_type =
    if ballast = 0 then ""
    else
      "\n  BallastRec = RECORD\n    v: INTEGER;\n    next: Ballast\n  END;\n\
      \  Ballast = REF BallastRec;"
  in
  let ballast_var = if ballast = 0 then "" else "\n  anchor: Ballast;" in
  let ballast_proc =
    if ballast = 0 then ""
    else
      "\n\nPROCEDURE MkBallast(n: INTEGER): Ballast;\nVAR head, b: Ballast; i: INTEGER;\n\
       BEGIN\n  head := NIL;\n  FOR i := 1 TO n DO\n    b := NEW(Ballast);\n\
      \    b.v := i;\n    b.next := head;\n    head := b\n  END;\n  RETURN head\n\
       END MkBallast;"
  in
  let ballast_init =
    if ballast = 0 then "" else Printf.sprintf "\n  anchor := MkBallast(%d);" ballast
  in
  let intballast_type =
    if intballast = 0 then ""
    else
      "\n  Ints = REF ARRAY OF INTEGER;\n\
      \  IntTab = REF ARRAY OF Ints;"
  in
  let intballast_var = if intballast = 0 then "" else "\n  iballast: IntTab;" in
  (* Anchored through one pointer array, not a list: the copying scan
     discovers every chunk from a single object, so a level-synchronized
     parallel copy sees the whole population as one wide frontier instead
     of a pointer chain it must walk a link at a time. *)
  let intballast_proc =
    if intballast = 0 then ""
    else
      "\n\nPROCEDURE MkInts(chunks: INTEGER; words: INTEGER): IntTab;\n\
       VAR t: IntTab; a: Ints; i: INTEGER;\n\
       BEGIN\n  t := NEW(IntTab, chunks);\n  FOR i := 0 TO chunks - 1 DO\n\
      \    a := NEW(Ints, words);\n    a[0] := i;\n    t[i] := a\n  END;\n\
      \  RETURN t\nEND MkInts;"
  in
  let intballast_init =
    if intballast = 0 then ""
    else Printf.sprintf "\n  iballast := MkInts(%d, %d);" intballast intchunk
  in
  Printf.sprintf
    {|
MODULE Destroy;

TYPE
  TreeRec = RECORD
    value: INTEGER;
    kids: Kids
  END;
  Tree = REF TreeRec;
  Kids = REF ARRAY OF Tree;%s

VAR
  root: Tree;
  seed, it, checksum: INTEGER;%s

PROCEDURE Rand(bound: INTEGER): INTEGER;
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 1073741824;
  RETURN seed MOD bound
END Rand;

(* Bottom-up construction, the cons idiom of the paper's Lisp-derived
   benchmarks: the kids are built first, so the node's initializing
   pointer store targets the object just allocated — the pattern the
   static write-barrier elimination proves barrier-free. The k[i] store
   keeps its barrier: the recursive call may collect and promote k. *)
PROCEDURE MkTree(depth: INTEGER): Tree;
VAR t: Tree; k: Kids; i: INTEGER;
BEGIN
  k := NIL;
  IF depth > 0 THEN
    k := NEW(Kids, %d);
    FOR i := 0 TO %d DO
      k[i] := MkTree(depth - 1)
    END
  END;
  t := NEW(Tree);
  t.value := depth;
  t.kids := k;
  RETURN t
END MkTree;

PROCEDURE Count(t: Tree): INTEGER;
VAR n, i: INTEGER;
BEGIN
  IF t = NIL THEN RETURN 0 END;
  n := 1;
  IF t.kids # NIL THEN
    FOR i := 0 TO NUMBER(t.kids) - 1 DO
      n := n + Count(t.kids[i])
    END
  END;
  RETURN n
END Count;

PROCEDURE Replace(): INTEGER;
VAR t: Tree; d: INTEGER; fresh: Tree;
BEGIN
  (* walk down to the replacement depth *)
  t := root;
  d := 0;
  WHILE d < %d - 1 DO
    t := t.kids[Rand(%d)];
    d := d + 1
  END;
  (* build the new subtree first, then splice it in *)
  fresh := MkTree(%d - %d);
  t.kids[Rand(%d)] := fresh;
  RETURN fresh.value
END Replace;%s

BEGIN
  seed := 12345;%s
  root := MkTree(%d);
  checksum := 0;
  FOR it := 1 TO %d DO
    checksum := checksum + Replace()
  END;
  PutText("destroy: nodes=");
  PutInt(Count(root));
  PutText(" checksum=");
  PutInt(checksum);
  PutLn()
END Destroy.
|}
    (ballast_type ^ intballast_type)
    (ballast_var ^ intballast_var)
    branch (branch - 1) replace_depth branch depth replace_depth branch
    (ballast_proc ^ intballast_proc)
    (ballast_init ^ intballast_init)
    depth iterations

let make ~branch ~depth ~replace_depth ~iterations =
  gen ~intballast:0 ~intchunk:0 ~ballast:0 ~branch ~depth ~replace_depth ~iterations

(** [make] plus a global linked list of [ballast] nodes allocated at its own
    static site before the tree work starts and kept live to the end — the
    long-lived population for lifetime-profile experiments. *)
let make_ballast ~ballast ~branch ~depth ~replace_depth ~iterations =
  gen ~intballast:0 ~intchunk:0 ~ballast ~branch ~depth ~replace_depth ~iterations

(** [make] plus [intballast] live open INTEGER arrays of [intchunk] words
    each — the blit-dominated long-lived heap for the parallel-copy bench. *)
let make_intballast ~intballast ~intchunk ~branch ~depth ~replace_depth ~iterations =
  gen ~intballast ~intchunk ~ballast:0 ~branch ~depth ~replace_depth ~iterations

(** The configuration used by the test suite and the §6.3 timing bench. *)
let src = make ~branch:3 ~depth:6 ~replace_depth:3 ~iterations:60
