(** takl — the Gabriel benchmark the paper uses ("a well known benchmark"):
    Takeuchi's function computed on lists, allocation-heavy and deeply
    recursive. Parameters below are the classic (18, 12, 6). *)

(* A single tak(18,12,6) allocates only in the three Listn calls — 36
   cells, all live until the end — so one run can never fill a semispace
   that holds its own live data. [make] repeats the computation: each
   iteration's lists become garbage on the next, which is what gives the
   gc bench collections to measure (the Gabriel harnesses repeated it for
   the same reason). [ballast] cells of long-lived list are built up
   front: a full compaction re-copies them at every collection, a minor
   collection promotes them once and never touches them again — the
   generational hypothesis made observable. *)
let make ~n1 ~n2 ~n3 ~repeats ~ballast =
  Printf.sprintf
    {|
MODULE Takl;

TYPE
  Cell = RECORD head: INTEGER; tail: List END;
  List = REF Cell;

VAR result, ballast: List;
VAR it, checksum: INTEGER;

(* The rest of the list is built before the cell, so the initializing
   tail store targets the cell just allocated (no gc-point between the
   NEW and the store): the write-barrier elimination proves it
   barrier-free, as it would for a Lisp cons. *)
PROCEDURE Listn(n: INTEGER): List;
VAR c, rest: List;
BEGIN
  IF n = 0 THEN RETURN NIL END;
  rest := Listn(n - 1);
  c := NEW(List);
  c.head := n;
  c.tail := rest;
  RETURN c
END Listn;

PROCEDURE Shorterp(x, y: List): BOOLEAN;
BEGIN
  WHILE y # NIL DO
    IF x = NIL THEN RETURN TRUE END;
    x := x.tail;
    y := y.tail
  END;
  RETURN FALSE
END Shorterp;

PROCEDURE Mas(x, y, z: List): List;
BEGIN
  IF NOT Shorterp(y, x) THEN RETURN z END;
  RETURN Mas(Mas(x.tail, y, z), Mas(y.tail, z, x), Mas(z.tail, x, y))
END Mas;

PROCEDURE Length(l: List): INTEGER;
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE l # NIL DO n := n + 1; l := l.tail END;
  RETURN n
END Length;

BEGIN
  ballast := Listn(%d);
  checksum := 0;
  FOR it := 1 TO %d DO
    result := Mas(Listn(%d), Listn(%d), Listn(%d));
    checksum := checksum + Length(result)
  END;
  PutText("takl: length=");
  PutInt(Length(result));
  PutText(" checksum=");
  PutInt(checksum + Length(ballast));
  PutLn()
END Takl.
|}
    ballast repeats n1 n2 n3

let src =
  {|
MODULE Takl;

TYPE
  Cell = RECORD head: INTEGER; tail: List END;
  List = REF Cell;

VAR result: List;

(* The rest of the list is built before the cell, so the initializing
   tail store targets the cell just allocated (no gc-point between the
   NEW and the store): the write-barrier elimination proves it
   barrier-free, as it would for a Lisp cons. *)
PROCEDURE Listn(n: INTEGER): List;
VAR c, rest: List;
BEGIN
  IF n = 0 THEN RETURN NIL END;
  rest := Listn(n - 1);
  c := NEW(List);
  c.head := n;
  c.tail := rest;
  RETURN c
END Listn;

PROCEDURE Shorterp(x, y: List): BOOLEAN;
BEGIN
  WHILE y # NIL DO
    IF x = NIL THEN RETURN TRUE END;
    x := x.tail;
    y := y.tail
  END;
  RETURN FALSE
END Shorterp;

PROCEDURE Mas(x, y, z: List): List;
BEGIN
  IF NOT Shorterp(y, x) THEN RETURN z END;
  RETURN Mas(Mas(x.tail, y, z), Mas(y.tail, z, x), Mas(z.tail, x, y))
END Mas;

PROCEDURE Length(l: List): INTEGER;
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE l # NIL DO n := n + 1; l := l.tail END;
  RETURN n
END Length;

BEGIN
  result := Mas(Listn(18), Listn(12), Listn(6));
  PutText("takl: length=");
  PutInt(Length(result));
  PutText(" head=");
  PutInt(result.head);
  PutLn()
END Takl.
|}

(* tak(18,12,6) = 7, so the resulting list is [7,6,...,1]. *)
let expected = "takl: length=7 head=7\n"
