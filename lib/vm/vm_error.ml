(** Runtime failures of the UVM (distinct from guest-program error traps,
    which are reported with their own messages).

    Failures carry a typed payload so the collector, the verifier and the
    fault harness can dispatch on the failure class; {!to_string} renders
    the same operator-facing text mmrun has always printed. *)

type t =
  | Generic of string
  | Corrupt_table of { fid : int; offset : int; reason : string }
      (** A gc table stream failed to decode, or a return address mapped to
          no gc-point ([fid]/[offset] as in [Decode.Table_corrupt]). *)
  | Bad_root of { loc : string; value : int; reason : string }
      (** A root the tables call a tidy pointer does not reference a valid
          heap object: [loc] names where it lives (a register, stack slot
          or global), [value] is the offending word. *)
  | Heap_exhausted of { needed : int; free : int }
      (** An allocation of [needed] words found only [free] after gc. *)
  | Verify_failed of { collection : int; phase : string; violations : string list }
      (** The heap verifier found inconsistencies [phase] ("pre"/"post")
          collection number [collection]. *)
  | Out_of_fuel of { instructions : int }
      (** The run exceeded its instruction budget — the fault harness's
          hang class, typed so nothing needs to string-match messages. *)

let to_string = function
  | Generic s -> s
  (* Exactly the message [fail "heap exhausted (%d words)"] used to print,
     so mmrun output is unchanged. *)
  | Heap_exhausted { needed; free = _ } -> Printf.sprintf "heap exhausted (%d words)" needed
  | Out_of_fuel { instructions } ->
      Printf.sprintf "out of fuel after %d instructions" instructions
  | Corrupt_table { fid; offset; reason } ->
      Printf.sprintf "corrupt gc table (proc %d, code offset %d): %s" fid offset reason
  | Bad_root { loc; value; reason } ->
      Printf.sprintf "bad gc root at %s (value %d): %s" loc value reason
  | Verify_failed { collection; phase; violations } ->
      Printf.sprintf "heap verification failed %s-collection %d (%d violation%s):\n  %s"
        phase collection (List.length violations)
        (if List.length violations = 1 then "" else "s")
        (String.concat "\n  " violations)

(** Distinct mmrun process exit codes per failure class, so harnesses can
    assert on the code instead of string-matching stderr. Documented in
    the README; 0 is success, guest-program traps use 3, and cmdliner
    keeps 124 for CLI/compile errors. *)
let exit_code = function
  | Generic _ -> 10
  | Corrupt_table _ -> 11
  | Bad_root _ -> 12
  | Heap_exhausted _ -> 13
  | Verify_failed _ -> 14
  | Out_of_fuel _ -> 15

exception Error of t

let error t = raise (Error t)
let fail fmt = Printf.ksprintf (fun s -> raise (Error (Generic s))) fmt
