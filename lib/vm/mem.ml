(** The flat word store backing the UVM memory.

    The machine's memory used to be a plain OCaml [int array]; at the heap
    sizes the parallel collector targets (hundreds of megawords) that puts
    gigabytes on the host runtime's heap, where the host GC scans and the
    allocator fragments it. A [Bigarray.Array1] of native ints is flat,
    off the host heap entirely (the host GC never walks it), and shared
    freely across domains — exactly what the parallel Cheney copy needs:
    collector worker domains blit disjoint regions of one store without
    any host-GC coordination.

    The hot accessors ([unsafe_get]/[unsafe_set]) compile to single loads
    and stores; callers that need the VM's bounds discipline (the
    interpreters' [read]/[write]) perform their own explicit range test —
    with the VM's error message — and then use the unsafe accessor, the
    same structure the [int array] code had. The checked [get]/[set] are
    the cold-path/cool-path accessors for collector and verifier code. *)

type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A zeroed store of [words] words. *)
let create words : t =
  let m = Bigarray.Array1.create Bigarray.int Bigarray.c_layout words in
  Bigarray.Array1.fill m 0;
  m

let length (m : t) = Bigarray.Array1.dim m

(* Bounds-checked accessors (Invalid_argument on violation — callers on VM
   paths check first and report through Vm_error instead). *)
let get (m : t) i = Bigarray.Array1.get m i
let set (m : t) i v = Bigarray.Array1.set m i v
let unsafe_get (m : t) i = Bigarray.Array1.unsafe_get m i
let unsafe_set (m : t) i v = Bigarray.Array1.unsafe_set m i v

(** Set [len] words starting at [pos] to [v]. Small runs (frame zeroing,
    small-object init) take a direct loop; big runs (bench-scale open
    arrays) go through the runtime's fill on a sub-view. *)
let fill (m : t) pos len v =
  if pos < 0 || len < 0 || pos + len > length m then invalid_arg "Mem.fill";
  if len < 64 then
    for i = pos to pos + len - 1 do
      Bigarray.Array1.unsafe_set m i v
    done
  else Bigarray.Array1.fill (Bigarray.Array1.sub m pos len) v

(** Copy [len] words from [src] to [dst] within the store (memmove
    semantics, like [Array.blit] had). Small objects — the common case on
    the Cheney copy path — avoid the sub-view allocations. *)
let blit (m : t) ~src ~dst ~len =
  if src < 0 || dst < 0 || len < 0 || src + len > length m || dst + len > length m
  then invalid_arg "Mem.blit";
  if len < 32 then
    if dst <= src then
      for i = 0 to len - 1 do
        Bigarray.Array1.unsafe_set m (dst + i) (Bigarray.Array1.unsafe_get m (src + i))
      done
    else
      for i = len - 1 downto 0 do
        Bigarray.Array1.unsafe_set m (dst + i) (Bigarray.Array1.unsafe_get m (src + i))
      done
  else Bigarray.Array1.(blit (sub m src len) (sub m dst len))

(** A fresh store of [words] words holding this store's contents as a
    prefix (truncated if [words] is smaller); any extension is zeroed.
    This is the whole resize mechanism of the adaptive heap: because the
    heap is the {e last} region of the memory map, replacing the store
    with a longer copy preserves every existing word address — statics,
    stack and live heap data all keep their numeric addresses, so no
    pointer anywhere needs rebasing. *)
let realloc (m : t) words : t =
  let d = Bigarray.Array1.create Bigarray.int Bigarray.c_layout words in
  let n = min words (length m) in
  if n > 0 then
    Bigarray.Array1.(blit (sub m 0 n) (sub d 0 n));
  if words > n then Bigarray.Array1.(fill (sub d n (words - n)) 0);
  d

(** A fresh store holding the same words (test snapshots). *)
let copy (m : t) : t =
  let d = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (length m) in
  Bigarray.Array1.blit m d;
  d

(** Word-for-word equality (the differential suites' heap-image check). *)
let equal (a : t) (b : t) = length a = length b && a = b
