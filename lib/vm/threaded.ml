(** The threaded-code execution engine.

    The reference interpreter ({!Interp.step}) pays a boxed [Insn.t] match
    plus nested operand-mode matches on every instruction executed. In the
    spirit of the paper's thesis — move run-time work to static translation
    (all of the collector's knowledge lives in compile-time tables; §6
    measures zero executed-code overhead) — this engine performs all of
    that decoding {e once}, at image load: every instruction is compiled to
    an OCaml closure specialized on its opcode {e and its operand
    addressing modes} (e.g. [Mov (Reg d, Reg s)] becomes a two-array-load
    closure with no match at all), and execution is a tight loop indexing
    the closure array by pc.

    On top of the closure array, a static branch-target analysis
    ({!Machine.Fusion}) enables {e superinstruction fusion}: hot adjacent
    pairs — a load feeding a conditional branch (the list-walk idiom),
    move chains, pushes feeding pushes and calls, and the rest of
    {!Machine.Fusion.pair_kind} — collapse into a single closure that
    advances pc by 2, saving a dispatch; the hottest shapes are fully
    hand-inlined so the pair costs one closure body, not two chained ones.
    Fusion is forbidden across gc-points — a [Call] may only terminate a
    pair, and the exact intermediate pc is always materialized before any
    second half that can fault or collect — and into branch targets, so the
    collector (and any fault) observes exactly the paper-faithful pcs and
    the gc tables are byte-for-byte untouched. The standalone closure at
    the second index is kept, so a return address or branch landing there
    executes unfused.

    Observable semantics are identical to the reference engine by
    construction and enforced by the differential suite
    ([test/test_threaded.ml]): same output, same instruction counts, same
    collection counts, same final heap image. The only tolerated
    divergence: a run that dies of fuel exhaustion may execute one extra
    instruction when the budget boundary splits a fused pair.

    The engine is a pure runtime switch ([mmrun --no-threaded],
    [MM_THREADED=0]); the [step]-based interpreter remains the reference
    semantics. *)

module I = Machine.Insn
module F = Machine.Fusion
module T = Telemetry
open Interp

type op = Interp.t -> unit

(* Translation-time telemetry: one-time costs, recorded when the engine for
   an image is built (gated on the master switch like every other probe). *)
let c_translate_ns = T.Metrics.counter "vm.translate_ns"
let c_closures = T.Metrics.counter "vm.closures"
let c_fused = T.Metrics.counter "vm.fused_pairs"
let c_fused_execs = T.Metrics.counter "vm.fused_execs"

let c_fuse_kind =
  List.map (fun k -> (k, T.Metrics.counter ("vm.fuse." ^ F.pair_name k))) F.all_pairs

(** Counter suffixes of the per-kind fusion counters ([vm.fuse.<name>]),
    for reporting tools. *)
let fuse_kind_names = List.map F.pair_name F.all_pairs

(* ------------------------------------------------------------------ *)
(* Inline memory primitives                                            *)
(* ------------------------------------------------------------------ *)

(* Without flambda, [Interp.read]/[write]/[push] are out-of-line calls from
   every compiled closure. These local equivalents keep the cold failure
   paths out of line (so the hot bodies stay under the inlining threshold)
   and use unchecked accesses behind the explicit range test — the same
   test [Interp.read]/[write] perform, with the same error messages. *)

let oob_read a = Vm_error.fail "memory read out of range: %d" a
let oob_write a = Vm_error.fail "memory write out of range: %d" a
let stack_overflow () = Vm_error.fail "stack overflow"

let[@inline always] mread t a =
  if a < 0 || a >= Mem.length t.mem then oob_read a else Mem.unsafe_get t.mem a

let[@inline always] mwrite t a v =
  if a < 8 || a >= Mem.length t.mem then oob_write a
  else Mem.unsafe_set t.mem a v

let sp_r = Machine.Reg.sp
let fp_r = Machine.Reg.fp

(* Exactly [Interp.push]: overflow check, sp update, then the (upper-bound
   checked) store — in that order, so a faulting push leaves the same
   machine state as the reference engine. *)
let[@inline always] mpush t v =
  let nsp = t.regs.(sp_r) - 1 in
  if nsp < t.image.Image.stack_base then stack_overflow ();
  t.regs.(sp_r) <- nsp;
  mwrite t nsp v

(* ------------------------------------------------------------------ *)
(* Operand compilation                                                 *)
(* ------------------------------------------------------------------ *)

(* Each operand mode becomes a dedicated closure; the mode match runs once
   here, never per step. Bounds behaviour is [Interp.read]/[write]'s. *)

let compile_eval (o : I.operand) : Interp.t -> int =
  match o with
  | I.Reg r -> fun t -> t.regs.(r)
  | I.Imm n -> fun _ -> n
  | I.Mem (r, d) -> fun t -> mread t (t.regs.(r) + d)
  | I.Mem2 (r1, r2, d) -> fun t -> mread t (t.regs.(r1) + t.regs.(r2) + d)
  | I.Defer (r, d1, d2) -> fun t -> mread t (mread t (t.regs.(r) + d1) + d2)
  | I.Abs a -> fun t -> mread t a

let compile_store (o : I.operand) : Interp.t -> int -> unit =
  match o with
  | I.Reg r -> fun t v -> t.regs.(r) <- v
  | I.Imm _ -> fun _ _ -> Vm_error.fail "store to immediate"
  | I.Mem (r, d) -> fun t v -> mwrite t (t.regs.(r) + d) v
  | I.Mem2 (r1, r2, d) -> fun t v -> mwrite t (t.regs.(r1) + t.regs.(r2) + d) v
  | I.Defer (r, d1, d2) -> fun t v -> mwrite t (mread t (t.regs.(r) + d1) + d2) v
  | I.Abs a -> fun t v -> mwrite t a v

let compile_addr (o : I.operand) : Interp.t -> int =
  match o with
  | I.Mem (r, d) -> fun t -> t.regs.(r) + d
  | I.Mem2 (r1, r2, d) -> fun t -> t.regs.(r1) + t.regs.(r2) + d
  | I.Defer (r, d1, d2) -> fun t -> mread t (t.regs.(r) + d1) + d2
  | I.Abs a -> fun _ -> a
  | I.Reg _ | I.Imm _ ->
      fun _ -> Vm_error.fail "effective address of a non-memory operand"

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                             *)
(* ------------------------------------------------------------------ *)

(* Evaluation-order note: the reference engine evaluates [apply_aop op
   (eval a) (eval b)] and [relop_eval r (eval a) (eval b)] with OCaml's
   right-to-left argument order, so a faulting [b] operand surfaces before
   a faulting [a]. The compiled closures preserve that order. *)

let compile_relop (r : I.relop) : int -> int -> bool =
  match r with
  | I.Req -> fun a b -> a = b
  | I.Rne -> fun a b -> a <> b
  | I.Rlt -> fun a b -> a < b
  | I.Rle -> fun a b -> a <= b
  | I.Rgt -> fun a b -> a > b
  | I.Rge -> fun a b -> a >= b

(* Specialized arithmetic: the aop match runs at translation; comparisons
   are monomorphic on int. *)
let compile_arith (op : I.aop) fd fa fb next : op =
  match op with
  | I.Add ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (a + b);
        t.pc <- next
  | I.Sub ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (a - b);
        t.pc <- next
  | I.Mul ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (a * b);
        t.pc <- next
  | I.Div ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (m3_div a b);
        t.pc <- next
  | I.Mod ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (m3_mod a b);
        t.pc <- next
  | I.Min ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (if a < b then a else b);
        t.pc <- next
  | I.Max ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (if a > b then a else b);
        t.pc <- next
  | I.Neg ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        ignore b;
        fd t (-a);
        t.pc <- next
  | I.Abso ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        ignore b;
        fd t (abs a);
        t.pc <- next
  | I.Setcc r ->
      let cmp = compile_relop r in
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        fd t (if cmp a b then 1 else 0);
        t.pc <- next

let compile_cbr (r : I.relop) fa fb ~target ~next : op =
  match r with
  | I.Req ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        t.pc <- (if a = b then target else next)
  | I.Rne ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        t.pc <- (if a <> b then target else next)
  | I.Rlt ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        t.pc <- (if a < b then target else next)
  | I.Rle ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        t.pc <- (if a <= b then target else next)
  | I.Rgt ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        t.pc <- (if a > b then target else next)
  | I.Rge ->
      fun t ->
        t.icount <- t.icount + 1;
        let b = fb t in
        let a = fa t in
        t.pc <- (if a >= b then target else next)

(** Compile one instruction at [pc] to its specialized closure. The
    dispatch invariant: a closure is invoked with [t.pc = pc] and leaves
    [t.pc] at its successor (or the machine halted). Common operand shapes
    get hand-inlined fast paths; every other shape goes through the
    composed operand closures — still match-free at run time. *)
let compile_one (img : Image.t) ~pc (insn : I.t) : op =
  let next = pc + 1 in
  match insn with
  (* --- moves: the hottest instruction, so the hottest shapes are fully
     inlined --- *)
  | I.Mov (I.Reg d, I.Reg s) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(s);
        t.pc <- next
  | I.Mov (I.Reg d, I.Imm n) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- n;
        t.pc <- next
  | I.Mov (I.Reg d, I.Mem (r, o)) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- mread t (t.regs.(r) + o);
        t.pc <- next
  | I.Mov (I.Mem (r, o), I.Reg s) ->
      fun t ->
        t.icount <- t.icount + 1;
        mwrite t (t.regs.(r) + o) t.regs.(s);
        t.pc <- next
  | I.Mov (I.Mem (r, o), I.Imm n) ->
      fun t ->
        t.icount <- t.icount + 1;
        mwrite t (t.regs.(r) + o) n;
        t.pc <- next
  | I.Mov (d, s) ->
      let fs = compile_eval s in
      let fd = compile_store d in
      fun t ->
        t.icount <- t.icount + 1;
        fd t (fs t);
        t.pc <- next
  | I.Lea (r, o) ->
      let fa = compile_addr o in
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(r) <- fa t;
        t.pc <- next
  (* --- arithmetic: register/immediate add & sub inlined, the rest
     specialized per aop over compiled operands --- *)
  | I.Arith (I.Add, I.Reg d, I.Reg a, I.Reg b) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(a) + t.regs.(b);
        t.pc <- next
  | I.Arith (I.Add, I.Reg d, I.Reg a, I.Imm b) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(a) + b;
        t.pc <- next
  | I.Arith (I.Sub, I.Reg d, I.Reg a, I.Reg b) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(a) - t.regs.(b);
        t.pc <- next
  | I.Arith (I.Sub, I.Reg d, I.Reg a, I.Imm b) ->
      fun t ->
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(a) - b;
        t.pc <- next
  | I.Arith (op, d, a, b) ->
      compile_arith op (compile_store d) (compile_eval a) (compile_eval b) next
  | I.Cbr (r, I.Reg a, I.Imm b, target) ->
      (* The list-walk compare: register against immediate (usually NIL). *)
      (match r with
      | I.Req ->
          fun t ->
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(a) = b then target else next)
      | I.Rne ->
          fun t ->
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(a) <> b then target else next)
      | I.Rlt ->
          fun t ->
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(a) < b then target else next)
      | I.Rle ->
          fun t ->
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(a) <= b then target else next)
      | I.Rgt ->
          fun t ->
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(a) > b then target else next)
      | I.Rge ->
          fun t ->
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(a) >= b then target else next))
  | I.Cbr (r, a, b, target) ->
      compile_cbr r (compile_eval a) (compile_eval b) ~target ~next
  | I.Jmp target ->
      fun t ->
        t.icount <- t.icount + 1;
        t.pc <- target
  | I.Push (I.Reg r) ->
      fun t ->
        t.icount <- t.icount + 1;
        mpush t t.regs.(r);
        t.pc <- next
  | I.Push (I.Imm n) ->
      fun t ->
        t.icount <- t.icount + 1;
        mpush t n;
        t.pc <- next
  | I.Push o ->
      let fv = compile_eval o in
      fun t ->
        t.icount <- t.icount + 1;
        mpush t (fv t);
        t.pc <- next
  | I.Call (I.Cproc fid) ->
      let entry = img.Image.procs.(fid).Image.pi_entry in
      let ra = pc + 1 in
      fun t ->
        t.icount <- t.icount + 1;
        mpush t ra;
        t.pc <- entry
  | I.Call (I.Crt rc) ->
      (* [t.pc = pc] here (dispatch invariant), which is exactly what the
         stack walk needs if the runtime call collects. *)
      fun t ->
        t.icount <- t.icount + 1;
        exec_rt t rc;
        if not t.halted then t.pc <- next
  | I.Enter { frame_size; saves } ->
      let stack_base = img.Image.stack_base in
      fun t ->
        t.icount <- t.icount + 1;
        mpush t t.regs.(fp_r);
        t.regs.(fp_r) <- t.regs.(sp_r);
        let f = t.regs.(fp_r) in
        if f - frame_size < stack_base then stack_overflow ();
        Mem.fill t.mem (f - frame_size) frame_size 0;
        for i = 0 to Array.length saves - 1 do
          Mem.unsafe_set t.mem (f - 1 - i) t.regs.(Array.unsafe_get saves i)
        done;
        t.regs.(sp_r) <- f - frame_size;
        t.pc <- next
  | I.Leave ->
      (* The owning procedure's save slots are baked in at translation —
         even the [code_fid] load the reference engine pays is gone. *)
      let saves = img.Image.procs.(img.Image.code_fid.(pc)).Image.pi_saves in
      fun t ->
        t.icount <- t.icount + 1;
        let f = t.regs.(fp_r) in
        for i = 0 to Array.length saves - 1 do
          let r, off = Array.unsafe_get saves i in
          t.regs.(r) <- mread t (f + off)
        done;
        t.regs.(sp_r) <- f;
        t.regs.(fp_r) <- mread t f;
        t.regs.(sp_r) <- t.regs.(sp_r) + 1;
        t.pc <- next
  | I.Ret n ->
      fun t ->
        t.icount <- t.icount + 1;
        let ra = mread t t.regs.(sp_r) in
        t.regs.(sp_r) <- t.regs.(sp_r) + 1 + n;
        if ra = sentinel_ret then t.halted <- true else t.pc <- ra
  | I.Wbar o ->
      let fa = compile_addr o in
      fun t ->
        t.icount <- t.icount + 1;
        (* The shared dual-semantics barrier hook (SSB when generational,
           insertion barrier when incremental) — identical to the switch
           engine's [Wbar] case by construction. *)
        barrier_hit t (fa t);
        t.pc <- next
  | I.Trap msg ->
      fun t ->
        t.icount <- t.icount + 1;
        raise (Guest_error msg)

(* ------------------------------------------------------------------ *)
(* Superinstruction compilation                                        *)
(* ------------------------------------------------------------------ *)

(** Compile the legal fused pair at [(pc, pc+1)] into one closure. The
    hottest dynamic shapes (measured on the benchmark programs: load+branch
    from the list walk, load/store chains, store+jump at loop bottoms,
    add+store, push sequences, push+call) are hand-inlined so the whole
    pair is a single closure body; everything else chains the two
    standalone closures [a] and [b], still saving a dispatch.

    Exactness rules, shared with the generic path:
    - [icount] advances once per instruction, between the two halves;
    - the intermediate pc [pc+1] is materialized before any second half
      that can fault or reach a gc-point (a [Call] second half always
      sees the exact call pc);
    - a faulting first half leaves [t.pc = pc] (the dispatch invariant). *)
let compile_pair (img : Image.t) ~pc (ai : I.t) (bi : I.t) (a : op) (b : op)
    ~(fused_execs : int ref) : op =
  let p1 = pc + 1 in
  let next2 = pc + 2 in
  match (ai, bi) with
  (* load ; branch-on-immediate — the list-walk idiom, the hottest pair on
     both destroy and takl. Neither the register compare nor the immediate
     can fault, so no intermediate pc store is needed. *)
  | I.Mov (I.Reg d, I.Mem (r, o)), I.Cbr (rel, I.Reg c, I.Imm m, tg) -> (
      match rel with
      | I.Req ->
          fun t ->
            fused_execs := !fused_execs + 1;
            t.icount <- t.icount + 1;
            t.regs.(d) <- mread t (t.regs.(r) + o);
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(c) = m then tg else next2)
      | I.Rne ->
          fun t ->
            fused_execs := !fused_execs + 1;
            t.icount <- t.icount + 1;
            t.regs.(d) <- mread t (t.regs.(r) + o);
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(c) <> m then tg else next2)
      | I.Rlt ->
          fun t ->
            fused_execs := !fused_execs + 1;
            t.icount <- t.icount + 1;
            t.regs.(d) <- mread t (t.regs.(r) + o);
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(c) < m then tg else next2)
      | I.Rle ->
          fun t ->
            fused_execs := !fused_execs + 1;
            t.icount <- t.icount + 1;
            t.regs.(d) <- mread t (t.regs.(r) + o);
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(c) <= m then tg else next2)
      | I.Rgt ->
          fun t ->
            fused_execs := !fused_execs + 1;
            t.icount <- t.icount + 1;
            t.regs.(d) <- mread t (t.regs.(r) + o);
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(c) > m then tg else next2)
      | I.Rge ->
          fun t ->
            fused_execs := !fused_execs + 1;
            t.icount <- t.icount + 1;
            t.regs.(d) <- mread t (t.regs.(r) + o);
            t.icount <- t.icount + 1;
            t.pc <- (if t.regs.(c) >= m then tg else next2))
  (* load ; branch-on-registers *)
  | I.Mov (I.Reg d, I.Mem (r, o)), I.Cbr (rel, I.Reg c1, I.Reg c2, tg) ->
      let cmp = compile_relop rel in
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        t.regs.(d) <- mread t (t.regs.(r) + o);
        t.icount <- t.icount + 1;
        t.pc <- (if cmp t.regs.(c1) t.regs.(c2) then tg else next2)
  (* load ; store *)
  | I.Mov (I.Reg d, I.Mem (r, o)), I.Mov (I.Mem (r2, o2), I.Reg s) ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        t.regs.(d) <- mread t (t.regs.(r) + o);
        t.pc <- p1;
        t.icount <- t.icount + 1;
        mwrite t (t.regs.(r2) + o2) t.regs.(s);
        t.pc <- next2
  (* load ; load *)
  | I.Mov (I.Reg d, I.Mem (r, o)), I.Mov (I.Reg d2, I.Mem (r2, o2)) ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        t.regs.(d) <- mread t (t.regs.(r) + o);
        t.pc <- p1;
        t.icount <- t.icount + 1;
        t.regs.(d2) <- mread t (t.regs.(r2) + o2);
        t.pc <- next2
  (* store ; load *)
  | I.Mov (I.Mem (r, o), I.Reg s), I.Mov (I.Reg d, I.Mem (r2, o2)) ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mwrite t (t.regs.(r) + o) t.regs.(s);
        t.pc <- p1;
        t.icount <- t.icount + 1;
        t.regs.(d) <- mread t (t.regs.(r2) + o2);
        t.pc <- next2
  (* store ; jump — the loop-bottom idiom *)
  | I.Mov (I.Mem (r, o), I.Reg s), I.Jmp tg ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mwrite t (t.regs.(r) + o) t.regs.(s);
        t.icount <- t.icount + 1;
        t.pc <- tg
  (* register move ; jump *)
  | I.Mov (I.Reg d, I.Reg s), I.Jmp tg ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(s);
        t.icount <- t.icount + 1;
        t.pc <- tg
  (* add-immediate ; store — the increment-and-write-back idiom *)
  | I.Arith (I.Add, I.Reg d, I.Reg ra, I.Imm bimm), I.Mov (I.Mem (r, o), I.Reg s)
    ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        t.regs.(d) <- t.regs.(ra) + bimm;
        t.pc <- p1;
        t.icount <- t.icount + 1;
        mwrite t (t.regs.(r) + o) t.regs.(s);
        t.pc <- next2
  (* push ; push — argument setup *)
  | I.Push (I.Reg r1), I.Push (I.Reg r2) ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mpush t t.regs.(r1);
        t.pc <- p1;
        t.icount <- t.icount + 1;
        mpush t t.regs.(r2);
        t.pc <- next2
  (* push ; call — the last argument and the transfer. The call is a
     gc-point, so the exact call pc is stored before it executes. *)
  | I.Push (I.Reg r1), I.Call (I.Cproc fid) ->
      let entry = img.Image.procs.(fid).Image.pi_entry in
      let ra = pc + 2 in
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mpush t t.regs.(r1);
        t.pc <- p1;
        t.icount <- t.icount + 1;
        mpush t ra;
        t.pc <- entry
  | I.Push (I.Imm n), I.Call (I.Cproc fid) ->
      let entry = img.Image.procs.(fid).Image.pi_entry in
      let ra = pc + 2 in
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mpush t n;
        t.pc <- p1;
        t.icount <- t.icount + 1;
        mpush t ra;
        t.pc <- entry
  | I.Push (I.Reg r1), I.Call (I.Crt rc) ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mpush t t.regs.(r1);
        t.pc <- p1;
        t.icount <- t.icount + 1;
        exec_rt t rc;
        if not t.halted then t.pc <- next2
  | I.Push (I.Imm n), I.Call (I.Crt rc) ->
      fun t ->
        fused_execs := !fused_execs + 1;
        t.icount <- t.icount + 1;
        mpush t n;
        t.pc <- p1;
        t.icount <- t.icount + 1;
        exec_rt t rc;
        if not t.halted then t.pc <- next2
  (* Everything else: chain the standalone closures — one dispatch saved,
     both halves keep their own pc/icount bookkeeping. *)
  | _ ->
      fun t ->
        fused_execs := !fused_execs + 1;
        a t;
        b t

(* ------------------------------------------------------------------ *)
(* Translation: closure array + superinstruction fusion                *)
(* ------------------------------------------------------------------ *)

type engine = {
  ops : op array;
  closures : int;
  fused_total : int; (* static fused pairs installed *)
  fused_by_kind : (F.pair_kind * int) list;
  fused_execs : int ref; (* dynamic fused-dispatch count, across runs *)
  translate_ns : int64;
}

let translate (img : Image.t) : engine =
  let t0 = T.Control.now_ns () in
  let code = img.Image.code in
  let n = Array.length code in
  let ops = Array.init n (fun pc -> compile_one img ~pc code.(pc)) in
  (* Fusion: greedy left-to-right over legal adjacent pairs. The fused
     closure replaces the first index only; the second keeps its standalone
     closure for incoming control transfers. *)
  let entries =
    Array.to_list (Array.map (fun (pi : Image.proc_info) -> pi.Image.pi_entry) img.Image.procs)
  in
  let tgt = F.targets ~entries code in
  let kind_counts = List.map (fun k -> (k, ref 0)) F.all_pairs in
  let fused_execs = ref 0 in
  let fused_total = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    (match F.fusible code tgt !i with
    | Some kind ->
        ops.(!i) <-
          compile_pair img ~pc:!i code.(!i) code.(!i + 1) ops.(!i) ops.(!i + 1)
            ~fused_execs;
        incr (List.assq kind kind_counts);
        incr fused_total;
        incr i (* non-overlapping: the pair consumes both indices *)
    | None -> ());
    incr i
  done;
  let dt = Int64.sub (T.Control.now_ns ()) t0 in
  T.Metrics.incr ~by:(Int64.to_int dt) c_translate_ns;
  T.Metrics.incr ~by:n c_closures;
  T.Metrics.incr ~by:!fused_total c_fused;
  List.iter
    (fun (k, r) -> T.Metrics.incr ~by:!r (List.assq k c_fuse_kind))
    kind_counts;
  {
    ops;
    closures = n;
    fused_total = !fused_total;
    fused_by_kind = List.map (fun (k, r) -> (k, !r)) kind_counts;
    fused_execs;
    translate_ns = dt;
  }

(* One-slot translation cache, keyed by physical image identity: benches
   and tests run many machines over one image, and translation is pure in
   the image. *)
let cache : (Image.t * engine) option ref = ref None

let engine_for (img : Image.t) : engine =
  match !cache with
  | Some (i, e) when i == img -> e
  | _ ->
      let e = translate img in
      cache := Some (img, e);
      e

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Fuel note: the budget check reads [icount], which fused pairs advance by
   2 — a run killed by fuel exhaustion may execute one instruction past the
   budget. Completed runs are exact. The unbounded case drops the budget
   compare from the loop entirely. *)
let dispatch (e : engine) t ~fuel =
  let stop = if fuel >= max_int - t.icount then max_int else t.icount + fuel in
  let ops = e.ops in
  let execs0 = !(e.fused_execs) in
  Fun.protect
    ~finally:(fun () ->
      T.Metrics.incr ~by:(!(e.fused_execs) - execs0) c_fused_execs)
    (fun () ->
      if stop = max_int then
        while not t.halted do
          ops.(t.pc) t
        done
      else
        while (not t.halted) && t.icount < stop do
          ops.(t.pc) t
        done)

(** Run a machine under the threaded engine: translate (or reuse) the
    image's closure array, then drive the shared run wrapper — reset,
    telemetry, fuel semantics and all collector state are {!Interp}'s. *)
let run ?fuel (t : Interp.t) =
  let e = engine_for t.image in
  Interp.run_with ~loop:(dispatch e) ?fuel t

(* ------------------------------------------------------------------ *)
(* Runtime switch                                                      *)
(* ------------------------------------------------------------------ *)

(* Default on; [MM_THREADED=0] (or false/no/off) disables from the
   environment, [set_enabled] from code ([mmrun --no-threaded]). *)
let forced : bool option ref = ref None

let env_disabled () =
  match Sys.getenv_opt "MM_THREADED" with
  | Some ("0" | "false" | "no" | "off") -> true
  | _ -> false

let enabled () = match !forced with Some b -> b | None -> not (env_disabled ())
let set_enabled b = forced := Some b
