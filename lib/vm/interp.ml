(** The UVM interpreter.

    Machine state is untagged: registers and memory hold plain integers, and
    heap pointers are just word addresses — nothing at run time
    distinguishes a pointer from an integer except the compiler-emitted gc
    tables, which is the paper's setting.

    Runtime routines execute natively and preserve all registers (except r0
    when they return a value). Allocation may invoke the installed
    collector, which is free to move every heap object and rewrite
    registers, stack and globals through the tables. *)

module I = Machine.Insn

(* Telemetry counters. Allocations are counted at the allocation site; the
   instruction count is synced once per [run] (a per-step probe would tax
   the hot loop even when disabled). *)
let c_allocs = Telemetry.Metrics.counter "vm.allocations"
let c_alloc_words = Telemetry.Metrics.counter "vm.alloc_words"
let c_instructions = Telemetry.Metrics.counter "vm.instructions"
let c_barriers = Telemetry.Metrics.counter "gc.barrier_execs"
let c_remset_inserts = Telemetry.Metrics.counter "gc.remset_inserts"

(* Profile-guided placement accounting (read by mmrun --gc-stats). *)
let c_pretenured_words = Telemetry.Metrics.counter "gc.pretenured_words"
let c_pool_words = Telemetry.Metrics.counter "gc.pool_words"
let c_pretenure_sites = Telemetry.Metrics.counter "gc.pretenure_sites"
let c_pool_sites = Telemetry.Metrics.counter "gc.pool_sites"

(* The Gc_pressure telemetry group: adaptive-heap events. *)
let c_resizes = Telemetry.Metrics.counter "gc_pressure.resizes"
let c_grow_words = Telemetry.Metrics.counter "gc_pressure.grow_words"
let c_shrinks = Telemetry.Metrics.counter "gc_pressure.shrinks"
let c_retries = Telemetry.Metrics.counter "gc_pressure.retries"
let h_headroom = Telemetry.Metrics.histogram "gc_pressure.headroom_ratio"

type gc_stats = {
  mutable collections : int;
  mutable words_copied : int;
  mutable total_gc_ns : int64;
  mutable trace_ns : int64; (* time spent locating/decoding/rooting stacks *)
  mutable copy_ns : int64; (* time inside the copy phase (roots + scan) *)
  mutable frames_traced : int;
  mutable objects_copied : int;
  mutable minor_collections : int; (* generational mode only *)
  mutable resizes : int; (* adaptive-heap grow/shrink events *)
  mutable emergency_full : int; (* full collections forced by promotion failure *)
  mutable serial_replays : int; (* parallel rounds abandoned and replayed serially *)
}

(** Generational-mode heap state (installed by [Gc.Nursery]). The current
    from-space is split into an old generation growing up from [from_base]
    (frontier [old_alloc]) and a bump-allocated nursery at the top,
    [nursery_base, from_base + semi_words). Minor collections promote
    nursery survivors to [old_alloc]; the remembered set records old-gen
    slots that may hold nursery pointers (written by the compiler-emitted
    [Wbar] barriers), deduplicated through the [dirty] byte map. *)
type gen_state = {
  nursery_cap : int; (* configured nursery size in words *)
  mutable old_alloc : int; (* old-generation frontier *)
  mutable nursery_base : int;
  mutable nursery_alloc : int; (* nursery bump pointer *)
  mutable dirty : Bytes.t; (* per-heap-word dedup map, index = addr - heap_base;
                              replaced when the heap grows past its span *)
  mutable remset : int array; (* recorded old-gen slot addresses *)
  mutable remset_len : int;
  mutable big_objects : int list;
    (* objects too large for the nursery, pretenured into the old
       generation; their fields are scanned wholesale at every minor
       collection (cleared by a full collection), which keeps static
       barrier elimination sound for them *)
  mutable barrier_execs : int;
  mutable remset_inserts : int;
  mutable old_request : bool;
    (* an old-generation allocation (policy pretenure, pool chunk, big
       object) is asking the collector for headroom: a minor collection
       promotes {e into} the old generation, so only a full collection can
       help — the collector routes on this flag *)
}

(** Per-site pool state: a bump region (chunk) carved out of the old
    generation, so a linked structure grown from one allocation site ends
    up contiguous. When a chunk fills, its unfilled tail is abandoned as a
    {e gap} (skipped by the linear heap walkers; see {!pool_gaps}) and a
    fresh chunk is carved. A full collection compacts pool objects like
    any other old-generation survivors, dissolving chunks and gaps alike
    ({!gen_reset_after_full} resets every pool). *)
type pool_state = {
  mutable pl_chunk : int; (* current chunk base address; -1 = none *)
  mutable pl_alloc : int; (* bump pointer inside the current chunk *)
  mutable pl_limit : int; (* current chunk limit *)
  mutable pl_closed : (int * int * int) list;
      (* retired chunks as (lo, filled_hi, limit): objects fill
         [lo, filled_hi), the tail [filled_hi, limit) is a gap *)
}

(** Profile-guided placement, installed by the driver (from an [mm-policy]
    file) or derived in-run by the adaptive mode. The decision array is
    consulted on the allocation fast path — one bounds-checked load per
    allocation, no allocation of its own. *)
type placement = {
  pc_decisions : int array; (* site id -> 0 nursery / 1 pretenure / 2 pool *)
  pc_pools : pool_state array; (* parallel to [pc_decisions] *)
  pc_source : string; (* "file" | "adaptive" *)
  mutable pc_pretenured_objects : int;
  mutable pc_pretenured_words : int;
  mutable pc_pool_objects : int;
  mutable pc_pool_words : int;
}

(* --- incremental (tri-color mark-sweep) collector state -------------- *)

type inc_phase = Inc_idle | Inc_marking | Inc_sweeping

(** Mutator-facing state of the incremental collector. Like {!gen_state}
    this lives here (below the gc library) so the write barrier and the
    allocation fast paths can reach it without an indirection; the slice
    engine itself — marking, sweeping, the flip — is [Gc.Incremental],
    installed through [collector] and the [inc_slice] hook.

    Colors: an object is {e white} when its mark bit is clear, {e gray}
    when marked and still on the work list, {e black} when marked and
    scanned. Objects are allocated white even during marking — a fresh
    object's stores may have had their barriers statically elided
    ([Opt.Barrier_elim]), which is only sound if the fresh object is
    guaranteed unscanned until the next gc-point (allocate-black would
    leave an elided black→white edge unscanned). The final flip rescans
    every root, which is what retains fresh objects held only in
    registers or stack slots. *)
type inc_state = {
  mutable inc_phase : inc_phase;
  mutable inc_marks : Support.Bitset.t; (* index: header addr - from_base *)
  inc_gray : int array; (* fixed-capacity mark stack; overflow spills *)
  mutable inc_gray_len : int;
  mutable inc_spilled : bool; (* an overflowed push was dropped: some
                                 marked objects are unqueued, so mark
                                 termination needs a linear rescan *)
  mutable inc_sweep_cursor : int;
  mutable inc_sweep_limit : int; (* frontier captured at the flip *)
  mutable inc_run_lo : int; (* open free run during sweep; -1 = none *)
  (* pacing: marking/sweeping work is owed in proportion to allocation
     ([inc_ratio] work units per allocated word), paid out in slices of
     [inc_slice_work] units (deterministic mode) or clock-capped at
     [inc_budget_ns] (time mode; 0 selects deterministic mode). *)
  inc_ratio : int;
  inc_trigger_words : int; (* start a cycle after this much allocation *)
  inc_slice_work : int;
  inc_budget_ns : int;
  mutable inc_cycle_start_words : int; (* alloc_words at last cycle end *)
  mutable inc_work_base : int; (* alloc_words at cycle start *)
  mutable inc_work_done : int; (* work units paid this cycle *)
  (* fault injection *)
  mutable inc_slice_storm : bool; (* force a slice at every gc-point *)
  mutable inc_barrier_storm : bool; (* re-gray already-marked barrier targets *)
  (* statistics *)
  mutable inc_cycles : int;
  mutable inc_slices : int;
  mutable inc_overruns : int;
  mutable inc_forced : int;
  mutable inc_max_slice_ns : int;
  mutable inc_rescans : int;
  mutable inc_barrier_execs : int;
  mutable inc_spills : int;
  mutable inc_marked_objects : int;
  mutable inc_swept_objects : int;
  mutable inc_swept_words : int;
}

type t = {
  image : Image.t;
  mutable mem : Mem.t; (* replaced (longer, same prefix) when the heap grows *)
  regs : int array;
  mutable pc : int;
  mutable halted : bool;
  out : Buffer.t;
  (* Heap state (flipped by the collector). The semispace geometry is
     tracked here, not derived from the image: [image.semi_words] is only
     the initial size, and the two spaces may differ transiently while a
     resize is in flight between collections. *)
  mutable from_base : int;
  mutable from_words : int;
  mutable to_base : int;
  mutable to_words : int;
  mutable alloc : int;
  (* Adaptive-heap policy (off by default: fixed semispaces, exactly the
     pre-resize behavior). [heap_max_words] caps one semispace. *)
  mutable heap_resize : bool;
  mutable heap_max_words : int;
  mutable heap_min_words : int;
  mutable alloc_pressure_every : int;
    (* fault injection: force the allocation slow path (collect/grow)
       every Nth allocation; 0 = off *)
  mutable free_list : (int * int) list; (* (addr, size) — used by the
                                           non-moving conservative collector *)
  mutable collector : (t -> needed:int -> unit) option;
  mutable gen : gen_state option; (* Some iff running generationally *)
  mutable inc : inc_state option; (* Some iff running incrementally *)
  mutable inc_slice : (t -> unit) option;
    (* gc-point slice poll, installed by Gc.Incremental; called at every
       allocation and Rt_gc_check so both execution engines observe the
       same pre-emption points (the paper's §5.3 loop-backedge gc-points) *)
  mutable heap_fillers : bool;
    (* free blocks carry a filler header (-size) so linear heap parses
       stay total; on iff the incremental collector is installed *)
  mutable placement : placement option; (* profile-guided placement, if any *)
  mutable adaptive_after : int;
    (* derive a placement in-run from the attached profiler once this many
       minor collections have completed; 0 = off *)
  mutable on_alloc : (int -> int -> unit) option; (* (address, size) hook *)
  mutable prof : Profile.t option; (* allocation-site profiler, if attached *)
  mutable gc_check_forces : bool; (* Rt_gc_check triggers a collection *)
  mutable icount : int;
  mutable alloc_count : int;
  mutable alloc_words : int;
  gc : gc_stats;
}

let create (image : Image.t) : t =
  let mem = Image.init_mem image in
  {
    image;
    mem;
    regs = Array.make Machine.Reg.nregs 0;
    pc = image.Image.procs.(image.Image.main_fid).Image.pi_entry;
    halted = false;
    out = Buffer.create 256;
    from_base = image.Image.heap_base;
    from_words = image.Image.semi_words;
    to_base = image.Image.heap_base + image.Image.semi_words;
    to_words = image.Image.semi_words;
    alloc = image.Image.heap_base;
    heap_resize = false;
    heap_max_words = image.Image.semi_words;
    heap_min_words = image.Image.semi_words;
    alloc_pressure_every = 0;
    free_list = [];
    collector = None;
    gen = None;
    inc = None;
    inc_slice = None;
    heap_fillers = false;
    placement = None;
    adaptive_after = 0;
    on_alloc = None;
    prof = None;
    gc_check_forces = false;
    icount = 0;
    alloc_count = 0;
    alloc_words = 0;
    gc =
      {
        collections = 0;
        words_copied = 0;
        total_gc_ns = 0L;
        trace_ns = 0L;
        copy_ns = 0L;
        frames_traced = 0;
        objects_copied = 0;
        minor_collections = 0;
        resizes = 0;
        emergency_full = 0;
        serial_replays = 0;
      };
  }

let sp t = t.regs.(Machine.Reg.sp)
let fp t = t.regs.(Machine.Reg.fp)
let set_sp t v = t.regs.(Machine.Reg.sp) <- v
let set_fp t v = t.regs.(Machine.Reg.fp) <- v

let read t a =
  if a < 0 || a >= Mem.length t.mem then Vm_error.fail "memory read out of range: %d" a;
  Mem.unsafe_get t.mem a

let write t a v =
  if a < 8 || a >= Mem.length t.mem then Vm_error.fail "memory write out of range: %d" a;
  Mem.unsafe_set t.mem a v

let eval t (o : I.operand) : int =
  match o with
  | I.Reg r -> t.regs.(r)
  | I.Imm n -> n
  | I.Mem (r, d) -> read t (t.regs.(r) + d)
  | I.Mem2 (r1, r2, d) -> read t (t.regs.(r1) + t.regs.(r2) + d)
  | I.Defer (r, d1, d2) -> read t (read t (t.regs.(r) + d1) + d2)
  | I.Abs a -> read t a

let addr_of t (o : I.operand) : int =
  match o with
  | I.Mem (r, d) -> t.regs.(r) + d
  | I.Mem2 (r1, r2, d) -> t.regs.(r1) + t.regs.(r2) + d
  | I.Defer (r, d1, d2) -> read t (t.regs.(r) + d1) + d2
  | I.Abs a -> a
  | I.Reg _ | I.Imm _ -> Vm_error.fail "effective address of a non-memory operand"

let store t (o : I.operand) v =
  match o with
  | I.Reg r -> t.regs.(r) <- v
  | I.Imm _ -> Vm_error.fail "store to immediate"
  | I.Mem _ | I.Mem2 _ | I.Defer _ | I.Abs _ -> write t (addr_of t o) v

(* Modula-3 arithmetic: DIV rounds toward minus infinity, MOD takes the
   divisor's sign. *)
let m3_div a b =
  if b = 0 then Vm_error.fail "division by zero"
  else
    let q = a / b in
    if (a < 0) <> (b < 0) && q * b <> a then q - 1 else q

let m3_mod a b = if b = 0 then Vm_error.fail "modulo by zero" else a - (b * m3_div a b)

let apply_aop (op : I.aop) a b =
  match op with
  | I.Add -> a + b
  | I.Sub -> a - b
  | I.Mul -> a * b
  | I.Div -> m3_div a b
  | I.Mod -> m3_mod a b
  | I.Min -> min a b
  | I.Max -> max a b
  | I.Neg -> -a
  | I.Abso -> abs a
  | I.Setcc r -> if I.relop_eval r a b then 1 else 0

let push t v =
  let nsp = sp t - 1 in
  if nsp < t.image.Image.stack_base then Vm_error.fail "stack overflow";
  set_sp t nsp;
  write t nsp v

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let heap_free t = t.from_base + t.from_words - t.alloc

(* --- adaptive semispace geometry ----------------------------------- *)

(* The store only ever needs to cover the heap regions: the heap is the
   last region of the memory map, so extending the store preserves every
   address (see {!Image} and {!Mem.realloc}). *)
let store_need t hi = if hi > Mem.length t.mem then t.mem <- Mem.realloc t.mem hi

(** Place an (empty) to-space of [words] words deterministically: below
    from-space when the gap above [heap_base] fits it, directly above
    from-space otherwise. With equal fixed sizes this reproduces the
    classic semispace alternation exactly; after a resize it finds the
    first legal placement. to-space holds no live data between
    collections, so re-placing it is always sound. *)
let place_to_space t words =
  let hb = t.image.Image.heap_base in
  if t.from_base - hb >= words then t.to_base <- hb
  else t.to_base <- t.from_base + t.from_words;
  t.to_words <- words;
  store_need t (t.to_base + words)

(* Drop a disproportionately large dead tail of the store (after a
   shrink): the heap regions are the last thing in the store, so cutting
   past their ends loses nothing. *)
let compact_store t =
  let hi = max (t.from_base + t.from_words) (t.to_base + t.to_words) in
  let len = Mem.length t.mem in
  if len - hi >= max 4096 (len / 4) then t.mem <- Mem.realloc t.mem hi

(** Retarget both logical semispaces to [words] words. From-space data
    stays exactly where it is — growing extends it in place over dead
    store (or fresh zeroed store), shrinking only lowers the allocation
    limit (the caller guarantees [alloc - from_base <= words]) — and
    to-space is re-placed to fit. *)
let retarget_semi t words =
  t.from_words <- words;
  store_need t (t.from_base + words);
  place_to_space t words;
  compact_store t

(** Replace the store with a fresh identical copy. Containment device for
    a timed-out collector worker (see {!Gc.Gc_pool}): the stalled domain
    still holds the old store and may scribble late same-value writes into
    it; after the swap those writes land in an unreachable buffer. *)
let quarantine_store t = t.mem <- Mem.realloc t.mem (Mem.length t.mem)

let grow_high_pct = 65 (* grow when live > 65% of a semispace post-collection *)
let shrink_low_pct = 20 (* shrink when live < 20% (and above the initial size) *)

(** The post-collection resize policy, run at the safe point right after
    the flip (from-space = the survivors, to-space dead). [needed] is the
    allocation request that triggered the collection, threaded through so
    the new size always fits it when the cap allows it at all. *)
let resize_after_collection t ~needed =
  if t.heap_resize then begin
    let live = t.alloc - t.from_base in
    let fw = t.from_words in
    let cap = t.heap_max_words in
    if fw > 0 then
      Telemetry.Metrics.observe h_headroom
        (float_of_int (fw - live) /. float_of_int fw);
    let must = live + needed in
    let target =
      if must > fw || live * 100 > grow_high_pct * fw then
        min cap (max (2 * fw) (must + (must / 2)))
      else if live * 100 < shrink_low_pct * fw && fw > t.heap_min_words then
        max t.heap_min_words (max (4 * live) must)
      else fw
    in
    (* Even at the cap, fit the request whenever the cap allows it. *)
    let target = if must > target && must <= cap then must else target in
    if target <> fw then begin
      t.gc.resizes <- t.gc.resizes + 1;
      Telemetry.Metrics.incr c_resizes;
      if target > fw then Telemetry.Metrics.incr ~by:(target - fw) c_grow_words
      else Telemetry.Metrics.incr c_shrinks;
      retarget_semi t target
    end;
    (* Soft watermark: warn once when the live set closes on the cap. *)
    if live * 100 >= 80 * cap then
      Telemetry.Log.warn_once
        "heap pressure: live set within 20%% of the --heap-max cap (%d words)" cap
  end

(* --- generational mode -------------------------------------------- *)

let gen_nursery_limit t = t.from_base + t.from_words
let gen_nursery_free t (g : gen_state) = gen_nursery_limit t - g.nursery_alloc

(** Install generational heap state: the nursery takes the top
    [nursery_words] of from-space (clamped to the semispace), the old
    generation is whatever already sits at the bottom — empty on a fresh
    machine. *)
let gen_init t ~nursery_words =
  let semi = t.from_words in
  let cap = min semi (max 1 nursery_words) in
  let base = max t.alloc (t.from_base + semi - cap) in
  let g =
    {
      nursery_cap = cap;
      old_alloc = t.alloc;
      nursery_base = base;
      nursery_alloc = base;
      dirty = Bytes.make (Mem.length t.mem - t.image.Image.heap_base) '\000';
      remset = Array.make 64 0;
      remset_len = 0;
      big_objects = [];
      barrier_execs = 0;
      remset_inserts = 0;
      old_request = false;
    }
  in
  t.gen <- Some g;
  g

(** Rebuild the generational view after a full collection flipped the
    semispaces: the survivors at [from_base, alloc) become the new old
    generation, the nursery re-opens empty at the top, and the remembered
    set is void — every recorded address referred to the old from-space. *)
let gen_reset_after_full t =
  match t.gen with
  | None -> ()
  | Some g ->
      g.old_alloc <- t.alloc;
      let base = max t.alloc (gen_nursery_limit t - g.nursery_cap) in
      g.nursery_base <- base;
      g.nursery_alloc <- base;
      let hb = t.image.Image.heap_base in
      let span = Mem.length t.mem - hb in
      if Bytes.length g.dirty < span then
        (* The heap grew past the dirty map's span: a fresh all-clean map
           is correct, since every recorded slot referred to the old
           from-space and the remembered set is being voided anyway. *)
        g.dirty <- Bytes.make span '\000'
      else
        for i = 0 to g.remset_len - 1 do
          Bytes.set g.dirty (g.remset.(i) - hb) '\000'
        done;
      g.remset_len <- 0;
      g.big_objects <- [];
      (* The compaction dissolved every pool chunk (pool objects moved like
         any other survivors), so the pools restart empty — the next pool
         allocation carves a fresh chunk from the new old generation. *)
      (match t.placement with
      | Some pl ->
          Array.iter
            (fun ps ->
              ps.pl_chunk <- -1;
              ps.pl_alloc <- 0;
              ps.pl_limit <- 0;
              ps.pl_closed <- [])
            pl.pc_pools
      | None -> ())

(** Allocate [size] words directly on the old-generation frontier — the
    shared slow path of big-object pretenuring, policy pretenuring and
    pool-chunk carving. A minor collection promotes {e into} the old
    generation and so can never create headroom here; [old_request] routes
    the installed collector straight to a full collection. *)
let allocate_old t (g : gen_state) size =
  if g.nursery_base - g.old_alloc < size then begin
    g.old_request <- true;
    (match t.collector with Some collect -> collect t ~needed:size | None -> ());
    g.old_request <- false
  end;
  (* When the nursery is empty (always true right after a full
     collection) an oversized object may displace it, so exhaustion
     strikes exactly when the non-generational collector would run out. *)
  let room =
    if g.nursery_alloc = g.nursery_base then gen_nursery_limit t - g.old_alloc
    else g.nursery_base - g.old_alloc
  in
  if room < size then
    Vm_error.(error (Heap_exhausted { needed = size; free = room }));
  let a = g.old_alloc in
  g.old_alloc <- a + size;
  if g.old_alloc > g.nursery_base then begin
    g.nursery_base <- g.old_alloc;
    g.nursery_alloc <- g.old_alloc
  end;
  (* [alloc] mirrors the old-generation frontier in generational mode so
     region-based consumers (the verifier, stats) see one truth. *)
  t.alloc <- g.old_alloc;
  a

let allocate_gen t (g : gen_state) size =
  if size <= g.nursery_cap then begin
    if gen_nursery_free t g < size then
      (match t.collector with Some collect -> collect t ~needed:size | None -> ());
    if gen_nursery_free t g < size then
      Vm_error.(error (Heap_exhausted { needed = size; free = gen_nursery_free t g }));
    let a = g.nursery_alloc in
    g.nursery_alloc <- a + size;
    a
  end
  else begin
    (* Pretenure: the object can never fit the nursery, so it goes straight
       to the old generation and onto [big_objects] for wholesale scanning
       at minor collections. *)
    let a = allocate_old t g size in
    g.big_objects <- a :: g.big_objects;
    a
  end

(* The escalation ladder of the flat-heap slow path:
   1. below the cap, extend from-space in place — no collection, no data
      movement, and (because allocation proceeds at unchanged addresses)
      a run started on a small heap stays byte-identical to one started
      on a cap-sized fixed heap, collections included;
   2. at the cap, collect (the collector's own post-flip policy may still
      grow/shrink within the cap using [needed]);
   3. if the collection left the request unmet and cap room appeared,
      collect once more (counted as a retry);
   4. the caller raises typed [Heap_exhausted] — only ever at the cap. *)
let ensure_space t needed =
  if heap_free t < needed then begin
    if t.heap_resize && t.from_words < t.heap_max_words then begin
      let live = t.alloc - t.from_base in
      let target =
        min t.heap_max_words (max (2 * t.from_words) (live + needed))
      in
      t.gc.resizes <- t.gc.resizes + 1;
      Telemetry.Metrics.incr c_resizes;
      Telemetry.Metrics.incr ~by:(target - t.from_words) c_grow_words;
      retarget_semi t target
    end;
    if heap_free t < needed then begin
      (match t.collector with Some collect -> collect t ~needed | None -> ());
      if heap_free t < needed && t.heap_resize && t.from_words < t.heap_max_words
      then begin
        Telemetry.Metrics.incr c_retries;
        match t.collector with Some collect -> collect t ~needed | None -> ()
      end
    end
  end

(* First-fit from the free list (installed by the non-moving conservative
   collector); the remainder of a larger block is returned to the list. *)
let take_free_list t size =
  let rec go acc = function
    | [] -> None
    | (a, sz) :: rest when sz >= size ->
        let rest =
          if sz > size then begin
            (* Under the incremental collector the unconsumed remainder
               gets a filler header immediately, so the linear heap parse
               (sweep cursor, verifier) stays total at every gc-point. *)
            if t.heap_fillers then Mem.set t.mem (a + size) (-(sz - size));
            (a + size, sz - size) :: rest
          end
          else rest
        in
        t.free_list <- List.rev_append acc rest;
        Some a
    | entry :: rest -> go (entry :: acc) rest
  in
  go [] t.free_list

(* Bump allocation in from-space; the free list is consulted first, and
   again after a collection refills it. Under the precise collector the
   free list is permanently empty, so the probe (and its list rebuild) is
   skipped entirely on that hot path. *)
let allocate_flat t size =
  let probe () = if t.free_list == [] then None else take_free_list t size in
  match probe () with
  | Some a -> a
  | None -> (
      ensure_space t size;
      match probe () with
      | Some a -> a
      | None ->
          if heap_free t < size then
            Vm_error.(error (Heap_exhausted { needed = size; free = heap_free t }));
          let a = t.alloc in
          t.alloc <- t.alloc + size;
          a)

let allocate t size =
  (* Allocation-failure storm (fault injection): force the slow path —
     a full trip through collect/grow — every Nth allocation. Purely
     deterministic, so storm runs are reproducible. *)
  if
    t.alloc_pressure_every > 0
    && (t.alloc_count + 1) mod t.alloc_pressure_every = 0
  then (match t.collector with Some c -> c t ~needed:size | None -> ());
  match t.gen with Some g -> allocate_gen t g size | None -> allocate_flat t size

(* --- profile-guided placement --------------------------------------- *)

(** Install a per-site placement (decision codes: 0 nursery, 1 pretenure,
    2 pool). Purely a runtime switch: the image, its gc tables and the
    instruction stream are untouched, so program output and instruction
    counts are byte-identical with or without a placement. *)
let set_placement t ~source (decisions : int array) =
  let count code =
    Array.fold_left (fun n d -> if d = code then n + 1 else n) 0 decisions
  in
  Telemetry.Metrics.incr ~by:(count 1) c_pretenure_sites;
  Telemetry.Metrics.incr ~by:(count 2) c_pool_sites;
  t.placement <-
    Some
      {
        pc_decisions = decisions;
        pc_pools =
          Array.map
            (fun _ -> { pl_chunk = -1; pl_alloc = 0; pl_limit = 0; pl_closed = [] })
            decisions;
        pc_source = source;
        pc_pretenured_objects = 0;
        pc_pretenured_words = 0;
        pc_pool_objects = 0;
        pc_pool_words = 0;
      }

(** Source and decision array of the installed placement, if any. *)
let placement_info t =
  match t.placement with
  | None -> None
  | Some pl -> Some (pl.pc_source, pl.pc_decisions)

(* A pretenured object is exactly a policy-chosen big object: old
   generation placement plus [big_objects] registration, so every minor
   collection scans its fields wholesale — which keeps static barrier
   elimination sound for it (an elided barrier's store happens between the
   object's allocation and the next gc-point, while it is on the list). *)
let alloc_pretenured t (g : gen_state) (pl : placement) size =
  let a = allocate_old t g size in
  g.big_objects <- a :: g.big_objects;
  pl.pc_pretenured_objects <- pl.pc_pretenured_objects + 1;
  pl.pc_pretenured_words <- pl.pc_pretenured_words + size;
  Telemetry.Metrics.incr ~by:size c_pretenured_words;
  a

let pool_chunk_words = 256

let alloc_pool t (g : gen_state) (pl : placement) (ps : pool_state) size =
  if ps.pl_chunk < 0 || ps.pl_alloc + size > ps.pl_limit then begin
    (* Retire the current chunk — its unfilled tail becomes a gap until
       the next full collection — and carve a new one. The carve may run
       a full collection, which resets every pool through
       [gen_reset_after_full]; the fields are only written afterwards. *)
    if ps.pl_chunk >= 0 then
      ps.pl_closed <- (ps.pl_chunk, ps.pl_alloc, ps.pl_limit) :: ps.pl_closed;
    let words = max pool_chunk_words size in
    let a = allocate_old t g words in
    Mem.fill t.mem a words 0;
    ps.pl_chunk <- a;
    ps.pl_alloc <- a;
    ps.pl_limit <- a + words
  end;
  let a = ps.pl_alloc in
  ps.pl_alloc <- a + size;
  pl.pc_pool_objects <- pl.pc_pool_objects + 1;
  pl.pc_pool_words <- pl.pc_pool_words + size;
  Telemetry.Metrics.incr ~by:size c_pool_words;
  a

(* The placement consult on the allocation path: one array load when a
   placement is installed, nothing otherwise. Placement is meaningful only
   in generational mode (flat mode has no nursery to steer away from), and
   oversized objects take the existing big-object path whatever the policy
   says. *)
let allocate_placed t site size =
  match (t.gen, t.placement) with
  | Some g, Some pl
    when site >= 0 && site < Array.length pl.pc_decisions && size <= g.nursery_cap
    -> (
      match Array.unsafe_get pl.pc_decisions site with
      | 1 -> alloc_pretenured t g pl size
      | 2 -> alloc_pool t g pl pl.pc_pools.(site) size
      | _ -> allocate t size)
  | _ -> allocate t size

(** Unfilled pool-chunk tails as [gap_lo, gap_hi) ranges, ascending. They
    lie inside the old generation but hold no objects; the linear heap
    walkers (the verifier's region parse, the census) must skip them. *)
let pool_gaps t =
  match t.placement with
  | None -> []
  | Some pl ->
      let acc = ref [] in
      Array.iter
        (fun ps ->
          if ps.pl_chunk >= 0 && ps.pl_alloc < ps.pl_limit then
            acc := (ps.pl_alloc, ps.pl_limit) :: !acc;
          List.iter
            (fun (_, hi, limit) -> if hi < limit then acc := (hi, limit) :: !acc)
            ps.pl_closed)
        pl.pc_pools;
      List.sort compare !acc

(** Filled pool ranges, each a dense run of valid pool-allocated objects.
    Minor collections scan them wholesale (exactly like [big_objects]), so
    elided write barriers stay sound for pool-resident objects and their
    nursery referents survive minors. *)
let pool_filled_ranges t =
  match t.placement with
  | None -> []
  | Some pl ->
      let acc = ref [] in
      Array.iter
        (fun ps ->
          if ps.pl_chunk >= 0 && ps.pl_alloc > ps.pl_chunk then
            acc := (ps.pl_chunk, ps.pl_alloc) :: !acc;
          List.iter
            (fun (lo, hi, _) -> if hi > lo then acc := (lo, hi) :: !acc)
            ps.pl_closed)
        pl.pc_pools;
      !acc

let rt_alloc t ?(site = -1) tdid ~length =
  (* Incremental slice poll, strictly {e before} the new object exists:
     a slice here may run the final flip, whose root rescan must see every
     live object — the object about to be allocated is still held in no
     register or stack slot, so allocating it first and flipping after
     would let the sweep free it. Polling first means anything allocated
     at an earlier gc-point is either visible to the exact tables or
     genuinely dead, and the fresh object is born after any flip at this
     gc-point (beyond the captured sweep limit). *)
  (match t.inc_slice with Some f -> f t | None -> ());
  let lay = t.image.Image.layouts.(tdid) in
  let size = Rt.Typedesc.layout_words lay ~length in
  let a = allocate_placed t site size in
  (* Zero the data words only; the header word(s) are written directly. *)
  (match lay with
  | Rt.Typedesc.Lopen _ ->
      let h = Rt.Typedesc.open_header_words in
      Mem.fill t.mem (a + h) (size - h) 0;
      Mem.set t.mem a tdid;
      Mem.set t.mem (a + 1) length
  | Rt.Typedesc.Lfixed _ ->
      let h = Rt.Typedesc.fixed_header_words in
      Mem.fill t.mem (a + h) (size - h) 0;
      Mem.set t.mem a tdid);
  t.alloc_count <- t.alloc_count + 1;
  t.alloc_words <- t.alloc_words + size;
  Telemetry.Metrics.incr c_allocs;
  Telemetry.Metrics.incr ~by:size c_alloc_words;
  (match t.on_alloc with Some f -> f a size | None -> ());
  (match t.prof with
  | Some p -> Profile.on_alloc p ~site ~addr:a ~words:size
  | None -> ());
  a

(* ------------------------------------------------------------------ *)
(* Runtime calls                                                       *)
(* ------------------------------------------------------------------ *)

exception Guest_error of string

let rt_nargs = function
  | Mir.Ir.Rt_alloc _ -> 1
  | Mir.Ir.Rt_alloc_open _ -> 2
  | Mir.Ir.Rt_gc_check -> 0
  | Mir.Ir.Rt_put_int -> 1
  | Mir.Ir.Rt_put_char -> 1
  | Mir.Ir.Rt_put_text -> 1
  | Mir.Ir.Rt_put_ln -> 0
  | Mir.Ir.Rt_halt -> 0
  | Mir.Ir.Rt_bounds_error -> 0
  | Mir.Ir.Rt_nil_error -> 0

let exec_rt t (rc : Mir.Ir.rt_call) =
  let arg i = read t (sp t + i) in
  (match rc with
  | Mir.Ir.Rt_alloc site -> t.regs.(Machine.Reg.ret) <- rt_alloc t ~site (arg 0) ~length:0
  | Mir.Ir.Rt_alloc_open site ->
      t.regs.(Machine.Reg.ret) <- rt_alloc t ~site (arg 0) ~length:(arg 1)
  | Mir.Ir.Rt_gc_check ->
      if t.gc_check_forces then
        (match t.collector with Some c -> c t ~needed:0 | None -> ());
      (* Loop-backedge gc-points (§5.3) are the non-allocating pre-emption
         opportunities of the incremental collector. *)
      (match t.inc_slice with Some f -> f t | None -> ())
  | Mir.Ir.Rt_put_int -> Buffer.add_string t.out (string_of_int (arg 0))
  | Mir.Ir.Rt_put_char -> Buffer.add_char t.out (Char.chr (arg 0 land 0xff))
  | Mir.Ir.Rt_put_text ->
      let p = arg 0 in
      if p = 0 then raise (Guest_error "PutText: NIL")
      else begin
        let len = read t (p + 1) in
        (* One range check for the whole payload, then a single unchecked
           append pass — the bounds-checked [read] used to run once per
           character. *)
        if len < 0 || p + 2 + len > Mem.length t.mem then
          Vm_error.fail "memory read out of range: %d" (p + 2 + len);
        let mem = t.mem in
        for a = p + 2 to p + 2 + len - 1 do
          Buffer.add_char t.out (Char.chr (Mem.unsafe_get mem a land 0xff))
        done
      end
  | Mir.Ir.Rt_put_ln -> Buffer.add_char t.out '\n'
  | Mir.Ir.Rt_halt -> t.halted <- true
  | Mir.Ir.Rt_bounds_error -> raise (Guest_error "array index out of range")
  | Mir.Ir.Rt_nil_error -> raise (Guest_error "NIL dereference"));
  (* Pop the arguments; runtime calls push no return address. *)
  set_sp t (sp t + rt_nargs rc)

(* ------------------------------------------------------------------ *)
(* Main loop                                                           *)
(* ------------------------------------------------------------------ *)

let sentinel_ret = -1

(** Record a generational write barrier against the effective address of a
    just-stored heap slot. Shared by both execution engines; a no-op
    outside generational mode (the caller has already matched [t.gen]). *)
let wbar_record t (g : gen_state) a =
  g.barrier_execs <- g.barrier_execs + 1;
  (* Only a store into the old generation can create an old→young
     reference; the dirty byte dedups repeated stores to a slot. *)
  if a >= t.from_base && a < g.nursery_base then begin
    let d = a - t.image.Image.heap_base in
    if Bytes.get g.dirty d = '\000' then begin
      Bytes.set g.dirty d '\001';
      if g.remset_len = Array.length g.remset then begin
        let bigger = Array.make (2 * g.remset_len) 0 in
        Array.blit g.remset 0 bigger 0 g.remset_len;
        g.remset <- bigger
      end;
      g.remset.(g.remset_len) <- a;
      g.remset_len <- g.remset_len + 1;
      g.remset_inserts <- g.remset_inserts + 1
    end
  end

(* --- incremental marking primitives --------------------------------- *)

(** Queue a marked object for scanning. On overflow the object stays
    marked but unqueued and the spill flag is raised: mark termination
    then requires a linear rescan of the marked heap ([Gc.Incremental]),
    which terminates because marks only ever accumulate. *)
let inc_push (inc : inc_state) v =
  if inc.inc_gray_len >= Array.length inc.inc_gray then begin
    inc.inc_spilled <- true;
    inc.inc_spills <- inc.inc_spills + 1
  end
  else begin
    inc.inc_gray.(inc.inc_gray_len) <- v;
    inc.inc_gray_len <- inc.inc_gray_len + 1
  end

(** Shade a value gray: if it is a (tidy) pointer to an unmarked heap
    object, mark it and queue it. Values outside the heap (NIL, globals,
    static text) and already-marked objects are left alone. *)
let inc_shade t (inc : inc_state) v =
  if v >= t.from_base && v < t.alloc then begin
    let i = v - t.from_base in
    if not (Support.Bitset.mem inc.inc_marks i) then begin
      Support.Bitset.set inc.inc_marks i;
      inc.inc_marked_objects <- inc.inc_marked_objects + 1;
      inc_push inc v
    end
  end

(** The runtime half of the dual-purpose write barrier, shared by both
    execution engines. [Wbar] is emitted after a pointer-valued store
    against the stored slot's effective address, which serves two
    semantics off the same instruction:

    - {e generational} (SSB): record the slot in the remembered set if it
      may now hold an old→young reference;
    - {e incremental} (Dijkstra insertion barrier): the slot currently
      holds exactly the just-stored pointer, so shading [mem[a]] shades
      the new target — a black object can never come to point at an
      unshaded white object, which is the tri-color invariant the marking
      phase preserves.

    The two modes never compose (see [Driver.Compile]); outside both the
    barrier is two option tests. *)
let barrier_hit t a =
  (match t.gen with Some g -> wbar_record t g a | None -> ());
  match t.inc with
  | Some inc when inc.inc_phase = Inc_marking ->
      inc.inc_barrier_execs <- inc.inc_barrier_execs + 1;
      let v = read t a in
      if
        inc.inc_barrier_storm
        && v >= t.from_base && v < t.alloc
        && Support.Bitset.mem inc.inc_marks (v - t.from_base)
      then
        (* Barrier storm (fault injection): re-gray targets that are
           already marked, flooding the work list with redundant entries
           (scanning is idempotent, so this only stresses the queue and
           its spill recovery). *)
        inc_push inc v
      else inc_shade t inc v
  | _ -> ()

let reset t =
  Array.fill t.regs 0 (Array.length t.regs) 0;
  set_sp t t.image.Image.stack_top;
  push t sentinel_ret;
  t.pc <- t.image.Image.procs.(t.image.Image.main_fid).Image.pi_entry;
  t.halted <- false;
  (* A fresh run starts with empty output; without this, repeated [run]s
     on one machine accumulate every previous run's output. *)
  Buffer.clear t.out

let step t =
  let insn = t.image.Image.code.(t.pc) in
  t.icount <- t.icount + 1;
  match insn with
  | I.Mov (d, s) ->
      store t d (eval t s);
      t.pc <- t.pc + 1
  | I.Lea (r, o) ->
      t.regs.(r) <- addr_of t o;
      t.pc <- t.pc + 1
  | I.Arith (op, d, a, b) ->
      store t d (apply_aop op (eval t a) (eval t b));
      t.pc <- t.pc + 1
  | I.Cbr (r, a, b, target) ->
      if I.relop_eval r (eval t a) (eval t b) then t.pc <- target else t.pc <- t.pc + 1
  | I.Jmp target -> t.pc <- target
  | I.Push o ->
      push t (eval t o);
      t.pc <- t.pc + 1
  | I.Call (I.Cproc fid) ->
      push t (t.pc + 1);
      t.pc <- t.image.Image.procs.(fid).Image.pi_entry
  | I.Call (I.Crt rc) ->
      exec_rt t rc;
      if not t.halted then t.pc <- t.pc + 1
  | I.Enter { frame_size; saves } ->
      push t (fp t);
      set_fp t (sp t);
      let f = fp t in
      if f - frame_size < t.image.Image.stack_base then Vm_error.fail "stack overflow";
      (* Block fill of the frame, then the save slots; the old word-by-word
         zero loop and the [List.iteri] closure both cost on every call. *)
      Mem.fill t.mem (f - frame_size) frame_size 0;
      for i = 0 to Array.length saves - 1 do
        Mem.unsafe_set t.mem (f - 1 - i) t.regs.(Array.unsafe_get saves i)
      done;
      set_sp t (f - frame_size);
      t.pc <- t.pc + 1
  | I.Leave ->
      let f = fp t in
      (* Restore callee-saved registers from this procedure's save slots.
         The owning procedure comes from the per-instruction [code_fid]
         annotation — one array load, where a binary search used to run on
         every procedure return. *)
      let fid = t.image.Image.code_fid.(t.pc) in
      let saves = t.image.Image.procs.(fid).Image.pi_saves in
      for i = 0 to Array.length saves - 1 do
        let r, off = Array.unsafe_get saves i in
        t.regs.(r) <- read t (f + off)
      done;
      set_sp t f;
      set_fp t (read t f);
      set_sp t (sp t + 1);
      t.pc <- t.pc + 1
  | I.Ret n ->
      let ra = read t (sp t) in
      set_sp t (sp t + 1 + n);
      if ra = sentinel_ret then t.halted <- true else t.pc <- ra
  | I.Wbar o ->
      barrier_hit t (addr_of t o);
      t.pc <- t.pc + 1
  | I.Trap msg -> raise (Guest_error msg)

(** Shared run wrapper: reset, telemetry span, counter sync and the
    out-of-fuel check — everything around the dispatch itself, which each
    execution engine supplies as [loop t ~fuel] (the reference switch loop
    below, or {!Threaded}'s pre-translated closure dispatch). Keeping one
    wrapper guarantees both engines run over identical allocation,
    collection and generational state. *)
let run_with ~loop ?(fuel = max_int) t =
  reset t;
  let icount0 = t.icount in
  let bar0, rs0 =
    match t.gen with
    | Some g -> (g.barrier_execs, g.remset_inserts)
    | None -> (0, 0)
  in
  Telemetry.Trace.begin_span ~cat:"vm" "vm.run";
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Metrics.incr ~by:(t.icount - icount0) c_instructions;
      (match t.gen with
      | Some g ->
          Telemetry.Metrics.incr ~by:(g.barrier_execs - bar0) c_barriers;
          Telemetry.Metrics.incr ~by:(g.remset_inserts - rs0) c_remset_inserts
      | None -> ());
      Telemetry.Trace.end_span
        ~args:[ ("instructions", Telemetry.Json.Int (t.icount - icount0)) ]
        ())
    (fun () -> loop t ~fuel);
  if not t.halted then Vm_error.(error (Out_of_fuel { instructions = fuel }))

let switch_loop t ~fuel =
  let budget = ref fuel in
  while (not t.halted) && !budget > 0 do
    step t;
    decr budget
  done

let run ?fuel t = run_with ~loop:switch_loop ?fuel t

let output t = Buffer.contents t.out
