(** Executable images: code, data layout, procedure metadata and gc tables.

    Memory map (word addresses):
    {v
      0..7                  reserved (address 0 is NIL)
      globals_base..        global variables
      texts..               static TEXT literals (header, length, chars)
      stack_base..stack_top the stack (grows downward from stack_top)
      heap_base..           semispace 0
      heap_base+semi..      semispace 1
    v}

    The heap is deliberately the {e last} region: untagged heap pointers
    can never be rebased, so the only way the heap can grow at run time
    is for the store to be extended in place ({!Mem.realloc}) with every
    existing address — globals, stack, live objects — unchanged. The
    [semi_words]/[heap_base] fields describe the {e initial} geometry;
    the live geometry (which may have grown or shrunk) lives on the
    interpreter state ({!Interp.t.from_words} etc.). *)

module I = Machine.Insn
module RM = Gcmaps.Rawmaps

type proc_info = {
  pi_fid : int;
  pi_name : string;
  pi_entry : int; (* code index of the Enter *)
  pi_code_end : int; (* one past the last instruction *)
  pi_frame_size : int;
  pi_nargs : int;
  pi_saves : (int * int) array; (* (reg, FP-relative offset) *)
}

type t = {
  code : I.t array;
  insn_offsets : int array; (* byte offset of each instruction; length n+1 *)
  code_bytes : int;
  procs : proc_info array; (* indexed by fid *)
  code_fid : int array; (* per-instruction owning fid: O(1) proc lookup *)
  main_fid : int;
  globals_base : int;
  global_addrs : int array;
  global_roots : int list; (* absolute addresses of pointer-holding global words *)
  text_addrs : int array;
  static_init : (int * int) list; (* (address, value) installed at reset *)
  tdescs : Rt.Typedesc.t array;
  layouts : Rt.Typedesc.layout array; (* precomputed, same index as tdescs *)
  text_tdesc : int; (* descriptor id for TEXT payloads *)
  heap_base : int;
  semi_words : int;
  stack_base : int;
  stack_top : int;
  total_words : int;
  tables : Gcmaps.Encode.program_tables; (* operational tables *)
  decode_cache : Gcmaps.Decode_cache.t; (* memoized pc→table lookups *)
  rawmaps : RM.proc_maps array; (* unencoded, for stats and tests *)
  folds_applied : int;
  folds_suppressed : int;
  barriers : int; (* generational write barriers in the code *)
  barriers_elided : int; (* pointer stores proven barrier-free at compile time *)
  gc_safe : bool; (* false when built with --no-gc-restrict (§6.2): the
                     tables may miss live pointers, so running a moving
                     collector over this image is unsound *)
  alloc_sites : Mir.Ir.alloc_site array; (* static allocation sites, index = id *)
}

type build_options = {
  heap_words : int; (* words per semispace *)
  stack_words : int;
  select : Codegen.Select.options;
  scheme : Gcmaps.Encode.scheme;
  table_opts : Gcmaps.Encode.options;
}

let default_build_options =
  {
    heap_words = 65536;
    stack_words = 16384;
    select = Codegen.Select.default_options;
    scheme = Gcmaps.Encode.Delta_main;
    table_opts = { Gcmaps.Encode.packing = true; previous = true };
  }

let build ?(opts = default_build_options) (prog : Mir.Ir.program) : t =
  (* 1. Lay out globals. *)
  let globals_base = 8 in
  let nglobals = Array.length prog.Mir.Ir.globals in
  let global_addrs = Array.make nglobals 0 in
  let cursor = ref globals_base in
  Array.iteri
    (fun i (g : Mir.Ir.global_info) ->
      global_addrs.(i) <- !cursor;
      cursor := !cursor + g.Mir.Ir.g_size)
    prog.Mir.Ir.globals;
  let global_roots =
    Array.to_list prog.Mir.Ir.globals
    |> List.mapi (fun i (g : Mir.Ir.global_info) ->
           List.map (fun o -> global_addrs.(i) + o) g.Mir.Ir.g_ptrs)
    |> List.concat
  in
  (* 2. Lay out static texts; make sure a TEXT type descriptor exists. *)
  let tdescs = Array.to_list prog.Mir.Ir.tdescs in
  let text_desc = Rt.Typedesc.Open { elt_size = 1; elt_ptr_offsets = [] } in
  let tdescs, text_tdesc =
    match List.find_index (fun d -> d = text_desc) tdescs with
    | Some i -> (Array.of_list tdescs, i)
    | None -> (Array.of_list (tdescs @ [ text_desc ]), List.length tdescs)
  in
  let ntexts = Array.length prog.Mir.Ir.texts in
  let text_addrs = Array.make ntexts 0 in
  let static_init = ref [] in
  Array.iteri
    (fun i s ->
      let addr = !cursor in
      text_addrs.(i) <- addr;
      static_init := (addr, text_tdesc) :: (addr + 1, String.length s) :: !static_init;
      String.iteri
        (fun j c -> static_init := (addr + 2 + j, Char.code c) :: !static_init)
        s;
      cursor := addr + 2 + String.length s)
    prog.Mir.Ir.texts;
  (* 3. Select code for every function. *)
  let outs =
    Telemetry.Timer.time ~cat:"compile" "codegen.select" (fun () ->
        Array.map
          (fun f ->
            Codegen.Select.func ~prog opts.select
              ~global_addr:(fun g -> global_addrs.(g))
              ~text_addr:(fun x -> text_addrs.(x))
              f)
          prog.Mir.Ir.funcs)
  in
  (* 4. Concatenate code, adjusting branch targets. *)
  let total_insns = Array.fold_left (fun acc o -> acc + Array.length o.Codegen.Select.of_code) 0 outs in
  let code = Array.make total_insns (I.Trap "pad") in
  let entries = Array.make (Array.length outs) 0 in
  let pos = ref 0 in
  Array.iteri
    (fun fid (o : Codegen.Select.out_func) ->
      let base = !pos in
      entries.(fid) <- base;
      Array.iteri
        (fun i insn ->
          code.(base + i) <-
            (match insn with
            | I.Jmp l -> I.Jmp (base + l)
            | I.Cbr (r, a, b, l) -> I.Cbr (r, a, b, base + l)
            | other -> other))
        o.Codegen.Select.of_code;
      pos := base + Array.length o.Codegen.Select.of_code)
    outs;
  let insn_offsets = Machine.Encode_insn.offsets code in
  let code_bytes = insn_offsets.(total_insns) in
  (* 5. Procedure metadata and raw gc maps (byte offsets now known). *)
  let procs =
    Array.mapi
      (fun fid (o : Codegen.Select.out_func) ->
        let entry = entries.(fid) in
        let code_end =
          if fid + 1 < Array.length outs then entries.(fid + 1) else total_insns
        in
        {
          pi_fid = fid;
          pi_name = o.Codegen.Select.of_name;
          pi_entry = entry;
          pi_code_end = code_end;
          pi_frame_size = o.Codegen.Select.of_frame.Codegen.Frame.frame_size;
          pi_nargs = o.Codegen.Select.of_frame.Codegen.Frame.nparams;
          pi_saves = Array.of_list o.Codegen.Select.of_frame.Codegen.Frame.save_offs;
        })
      outs
  in
  let rawmaps =
    Array.mapi
      (fun fid (o : Codegen.Select.out_func) ->
        let entry = entries.(fid) in
        let proc_byte_start = insn_offsets.(entry) in
        let code_end = procs.(fid).pi_code_end in
        let gcpoints =
          List.map
            (fun (rg : Codegen.Select.raw_gcpoint) ->
              {
                RM.gp_index = entry + rg.Codegen.Select.rg_item;
                gp_offset =
                  insn_offsets.(entry + rg.Codegen.Select.rg_item) - proc_byte_start;
                stack_ptrs = rg.Codegen.Select.rg_stack_ptrs;
                reg_ptrs = rg.Codegen.Select.rg_reg_ptrs;
                derivs = rg.Codegen.Select.rg_derivs;
                variants = rg.Codegen.Select.rg_variants;
              })
            o.Codegen.Select.of_gcpoints
        in
        {
          RM.pm_fid = fid;
          pm_name = o.Codegen.Select.of_name;
          pm_frame_size = o.Codegen.Select.of_frame.Codegen.Frame.frame_size;
          pm_nargs = o.Codegen.Select.of_frame.Codegen.Frame.nparams;
          pm_saves = o.Codegen.Select.of_frame.Codegen.Frame.save_offs;
          pm_code_bytes = insn_offsets.(code_end) - proc_byte_start;
          pm_gcpoints = gcpoints;
        })
      outs
  in
  let code_starts = Array.map (fun (pi : proc_info) -> insn_offsets.(pi.pi_entry)) procs in
  let tables = Gcmaps.Encode.encode_program opts.scheme opts.table_opts rawmaps code_starts in
  (* Load-time integrity check: every table stream must decode end to end
     and agree with the raw maps it was encoded from, so the collector
     never meets a stream that cannot decode. One-time cost, off the
     collection path. *)
  Gcmaps.Decode.validate_tables ~against:rawmaps tables;
  (* Per-instruction owning procedure, so return paths and the stack walk
     resolve code index → fid with one array load instead of a search. *)
  let code_fid = Array.make total_insns 0 in
  Array.iter
    (fun (pi : proc_info) ->
      for i = pi.pi_entry to pi.pi_code_end - 1 do
        code_fid.(i) <- pi.pi_fid
      done)
    procs;
  (* 6. Memory map: statics, then the stack, then the heap last (so the
     store can be extended without moving any existing address). *)
  let stack_base = ((!cursor + 7) / 8 * 8) + 8 in
  let stack_top = stack_base + opts.stack_words in
  let heap_base = (stack_top + 7) / 8 * 8 in
  let semi = opts.heap_words in
  {
    code;
    insn_offsets;
    code_bytes;
    procs;
    code_fid;
    main_fid = prog.Mir.Ir.main_fid;
    globals_base;
    global_addrs;
    global_roots;
    text_addrs;
    static_init = List.rev !static_init;
    tdescs;
    layouts = Array.map Rt.Typedesc.layout tdescs;
    text_tdesc;
    heap_base;
    semi_words = semi;
    stack_base;
    stack_top;
    total_words = heap_base + (2 * semi);
    tables;
    decode_cache = Gcmaps.Decode_cache.create tables;
    rawmaps;
    folds_applied =
      Array.fold_left (fun a o -> a + o.Codegen.Select.of_folds_applied) 0 outs;
    folds_suppressed =
      Array.fold_left (fun a o -> a + o.Codegen.Select.of_folds_suppressed) 0 outs;
    barriers = Array.fold_left (fun a o -> a + o.Codegen.Select.of_barriers) 0 outs;
    barriers_elided =
      Array.fold_left (fun a o -> a + o.Codegen.Select.of_barriers_elided) 0 outs;
    gc_safe = opts.select.Codegen.Select.gc_restrict;
    alloc_sites = prog.Mir.Ir.alloc_sites;
  }

(** Fresh machine memory for this image: one flat word store covering the
    whole memory map (globals, text, both semispaces, stack), zeroed, with
    the static initialization (text literals and their headers) applied. *)
let init_mem (t : t) : Mem.t =
  let mem = Mem.create t.total_words in
  List.iter (fun (a, v) -> Mem.set mem a v) t.static_init;
  mem

(** fid of the procedure containing a code index — a single array load
    against the per-instruction annotation built at image time (the old
    binary search ran on every [Leave] and every stack-walk frame). *)
let proc_of_code_index t idx =
  if idx < 0 || idx >= Array.length t.code_fid then
    Vm_error.fail "code index %d outside the image (0..%d)" idx (Array.length t.code_fid - 1)
  else t.code_fid.(idx)
