(** Runtime type descriptors.

    Modula-3 requires a type descriptor in every heap object; this is what
    makes requirements (i) and (ii) of the paper ("determine the size of heap
    objects" / "locate pointers contained in heap objects") straightforward.
    Every heap object starts with a one-word header holding its descriptor
    index; open arrays add a second header word holding the element count.

    Object layouts (word offsets from the object pointer, which is tidy and
    points at the header):
    {v
      fixed:  [0] tdesc id   [1..size]      data words
      open:   [0] tdesc id   [1] length     [2..2+len*elt_size-1] elements
    v} *)

type t =
  | Fixed of { size : int; ptr_offsets : int list }
      (** [size] data words; [ptr_offsets] are data-relative (0-based) word
          offsets containing pointers. *)
  | Open of { elt_size : int; elt_ptr_offsets : int list }
      (** Open array: per-element size and pointer offsets within an element. *)

let fixed_header_words = 1
let open_header_words = 2

(** Total object size in words given the descriptor and (for open arrays)
    the length. *)
let object_words t ~length =
  match t with
  | Fixed { size; _ } -> fixed_header_words + size
  | Open { elt_size; _ } -> open_header_words + (length * elt_size)

(** Object-relative word offsets of the pointers inside an object. *)
let object_ptr_offsets t ~length =
  match t with
  | Fixed { ptr_offsets; _ } -> List.map (fun o -> o + fixed_header_words) ptr_offsets
  | Open { elt_size; elt_ptr_offsets } ->
      if elt_ptr_offsets = [] then []
      else
        List.concat
          (List.init length (fun i ->
               List.map (fun o -> open_header_words + (i * elt_size) + o) elt_ptr_offsets))

(* ------------------------------------------------------------------ *)
(* Precomputed layouts (collector hot path)                            *)
(* ------------------------------------------------------------------ *)

(** A descriptor flattened for the collector: [object_ptr_offsets] builds
    fresh offset lists — per live object, per collection — which is pure
    allocation on the Cheney scan's hot path. A [layout] precomputes the
    same information once (at image-load time) into int arrays that can be
    iterated in place.

    - [Lfixed]: [offsets] are object-relative (header included), [words]
      is the total object size;
    - [Lopen]: [elt_offsets] are element-relative; the scanner walks
      elements by [elt_size] stride starting at [open_header_words]. *)
type layout =
  | Lfixed of { words : int; offsets : int array }
  | Lopen of { elt_size : int; elt_offsets : int array }

let layout (t : t) : layout =
  match t with
  | Fixed { size; ptr_offsets } ->
      Lfixed
        {
          words = fixed_header_words + size;
          offsets = Array.of_list (List.map (fun o -> o + fixed_header_words) ptr_offsets);
        }
  | Open { elt_size; elt_ptr_offsets } ->
      Lopen { elt_size; elt_offsets = Array.of_list elt_ptr_offsets }

(** Same as {!object_words}, reading a precomputed layout. *)
let layout_words (l : layout) ~length =
  match l with
  | Lfixed { words; _ } -> words
  | Lopen { elt_size; _ } -> open_header_words + (length * elt_size)

(* ------------------------------------------------------------------ *)
(* Interning table built at compile time                               *)
(* ------------------------------------------------------------------ *)

type table = { mutable descs : t list (* reversed *); mutable count : int }

let create_table () = { descs = []; count = 0 }

let intern tbl d =
  (* Linear search is fine: programs have few distinct heap types. *)
  let rec find i = function
    | [] -> None
    | d' :: rest -> if d' = d then Some (tbl.count - 1 - i) else find (i + 1) rest
  in
  match find 0 tbl.descs with
  | Some id -> id
  | None ->
      let id = tbl.count in
      tbl.descs <- d :: tbl.descs;
      tbl.count <- tbl.count + 1;
      id

let of_m3l_type (ty : M3l.Types.ty) : t =
  match ty with
  | M3l.Types.Topen elt ->
      Open
        {
          elt_size = M3l.Types.size_words elt;
          elt_ptr_offsets = M3l.Types.pointer_offsets elt;
        }
  | other ->
      Fixed
        {
          size = M3l.Types.size_words other;
          ptr_offsets = M3l.Types.pointer_offsets other;
        }

let to_array tbl = Array.of_list (List.rev tbl.descs)

let pp fmt = function
  | Fixed { size; ptr_offsets } ->
      Format.fprintf fmt "fixed(size=%d, ptrs=[%s])" size
        (String.concat ";" (List.map string_of_int ptr_offsets))
  | Open { elt_size; elt_ptr_offsets } ->
      Format.fprintf fmt "open(elt=%d, ptrs=[%s])" elt_size
        (String.concat ";" (List.map string_of_int elt_ptr_offsets))
