(** The telemetry master switch and clock.

    Instrumentation sites throughout the compiler, VM and collectors guard
    every recording with {!on}; with the switch off (the default) a probe
    is a single flag test, no allocation, no clock read — "zero dependency
    when disabled". Enabling is a runtime decision made by the CLI flags
    ([mmrun --trace/--metrics/--gc-stats], [mmc --timings]) or by tests
    and benchmarks. *)

let enabled = ref false

let on () = !enabled

let enable () = enabled := true
let disable () = enabled := false

(** Run [f] with telemetry enabled, restoring the previous state. *)
let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f

(** Wall-clock in nanoseconds (the repo's collectors already time with
    [Unix.gettimeofday]; telemetry uses the same clock so the numbers are
    directly comparable). *)
let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let ns_to_us ns = Int64.to_float ns /. 1e3
