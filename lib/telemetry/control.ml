(** The telemetry master switch and clock.

    Instrumentation sites throughout the compiler, VM and collectors guard
    every recording with {!on}; with the switch off (the default) a probe
    is a single flag test, no allocation, no clock read — "zero dependency
    when disabled". Enabling is a runtime decision made by the CLI flags
    ([mmrun --trace/--metrics/--gc-stats], [mmc --timings]) or by tests
    and benchmarks. *)

let enabled = ref false

let on () = !enabled

let enable () = enabled := true
let disable () = enabled := false

(** Run [f] with telemetry enabled, restoring the previous state. *)
let with_enabled f =
  let prev = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := prev) f

(** Monotonic clock in nanoseconds ([CLOCK_MONOTONIC] via bechamel's
    noalloc C stub). The previous [Unix.gettimeofday]-derived source
    bottomed out at microsecond granularity rounded through a float, which
    quantized short GC pauses to multiples of hundreds of nanoseconds and
    reported minima of 0. All collectors and timers read this one clock so
    the numbers stay directly comparable. *)
let now_ns () = Monotonic_clock.now ()

(** Measured tick of {!now_ns}: the smallest positive delta observed over
    a burst of back-to-back reads. Computed once, on first use; reported in
    the metrics header so consumers know the floor under the timings. *)
let clock_granularity_ns =
  lazy
    (let best = ref Int64.max_int in
     let prev = ref (now_ns ()) in
     for _ = 1 to 1000 do
       let t = now_ns () in
       let d = Int64.sub t !prev in
       if Int64.compare d 0L > 0 && Int64.compare d !best < 0 then best := d;
       prev := t
     done;
     if !best = Int64.max_int then 1L else !best)

let granularity_ns () = Lazy.force clock_granularity_ns

let ns_to_us ns = Int64.to_float ns /. 1e3
