(** The telemetry layer's logger.

    Warnings and errors go to stderr regardless of the telemetry switch —
    a user running gc-unsafe code should hear about it even with tracing
    off — but every emitted record is also mirrored into the trace buffer
    as an instant event (when tracing is on) and counted in [log.<level>]
    metrics, so exports carry the diagnostics alongside the spans.
    [Debug]/[Info] print only when {!verbosity} admits them. *)

type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(** Minimum level that reaches stderr. *)
let verbosity = ref Warn

(* Test hook: capture records instead of (as well as) printing. *)
let sink : (level -> string -> unit) option ref = ref None

(* Deduplicate repeated warnings (e.g. one per collection). *)
let seen : (string, unit) Hashtbl.t = Hashtbl.create 8

let reset_once () = Hashtbl.reset seen

let emit level msg =
  (match !sink with Some f -> f level msg | None -> ());
  if Control.on () then begin
    Metrics.add ("log." ^ level_name level) 1;
    Trace.instant ~cat:"log" ~args:[ ("message", Json.Str msg) ] (level_name level)
  end;
  if level_rank level >= level_rank !verbosity then
    Printf.eprintf "[%s] %s\n%!" (level_name level) msg

let debug fmt = Printf.ksprintf (emit Debug) fmt
let info fmt = Printf.ksprintf (emit Info) fmt
let warn fmt = Printf.ksprintf (emit Warn) fmt
let error fmt = Printf.ksprintf (emit Error) fmt

(** Like {!warn} but each distinct message prints at most once per
    process ({!reset_once} clears the memory). *)
let warn_once fmt =
  Printf.ksprintf
    (fun msg ->
      if not (Hashtbl.mem seen msg) then begin
        Hashtbl.replace seen msg ();
        emit Warn msg
      end)
    fmt
