(** Named monotonic counters, gauges and histograms.

    The registry is global and handles are stable: a probe site resolves
    its handle once (e.g. in a module-level [lazy]) and the handle stays
    valid across {!reset}, which zeroes values but never unregisters.
    Histograms retain their raw samples (capped) so per-event reporting —
    e.g. [mmrun --gc-stats]'s per-collection table — can read individual
    observations back instead of keeping a parallel log. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_samples : float array; (* grows; reservoir of the stream *)
  h_buckets : int array; (* log-scaled bucket counts; length n_buckets *)
  mutable h_prng : Support.Prng.t; (* reservoir replacement source *)
}

(* Retain at most this many raw samples per histogram. Below the cap the
   reservoir holds the whole stream in arrival order; past it, samples are
   replaced uniformly at random (algorithm R), so the retained set stays an
   unbiased sample of the full stream. count/sum/min/max/buckets keep
   accumulating past the cap. *)
let max_samples = 65536

(* Every histogram's reservoir uses the same deterministic seed: two
   histograms fed the same number of observations replace the same indices,
   which keeps parallel per-event arrays (e.g. the --gc-stats per-collection
   table reading several gc.* histograms positionally) row-aligned even
   past the cap. *)
let reservoir_seed = 0x6d687267 (* "mhrg" *)

(* --- log-scaled buckets (HdrHistogram-style) ---

   Bucket 0 holds values below 1.0; past that, each power-of-two octave
   [2^o, 2^(o+1)) is split into [n_sub] equal sub-buckets, giving a
   constant relative error of 1/n_sub (25%) at every magnitude. 256
   buckets at 4 sub-buckets per octave span 63 octaves — more than the
   dynamic range of an int64 nanosecond clock — in 2 KiB per histogram,
   so quantiles never need the raw samples and cannot be biased by the
   sample cap. *)

let n_sub = 4
let n_buckets = 256

let bucket_index v =
  if not (v >= 1.0) then 0 (* v < 1, and NaN *)
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1), so e >= 1 here. *)
    let sub = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int n_sub) in
    let sub = if sub < 0 then 0 else if sub >= n_sub then n_sub - 1 else sub in
    let idx = ((e - 1) * n_sub) + sub + 1 in
    if idx >= n_buckets then n_buckets - 1 else idx
  end

(** Inclusive lower bound of a bucket. *)
let bucket_lo i =
  if i <= 0 then 0.0
  else
    let o = (i - 1) / n_sub and s = (i - 1) mod n_sub in
    Float.ldexp (1.0 +. (float_of_int s /. float_of_int n_sub)) o

(** Exclusive upper bound of a bucket (infinity for the last). *)
let bucket_hi i = if i >= n_buckets - 1 then infinity else bucket_lo (i + 1)

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* Registration order is preserved for reporting. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []

let register name m =
  Hashtbl.replace registry name m;
  order := name :: !order

let find name = Hashtbl.find_opt registry name

let counter name : counter =
  match find name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (name ^ " is registered as a non-counter metric")
  | None ->
      let c = { c_name = name; c_value = 0 } in
      register name (Counter c);
      c

let gauge name : gauge =
  match find name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (name ^ " is registered as a non-gauge metric")
  | None ->
      let g = { g_name = name; g_value = 0.0 } in
      register name (Gauge g);
      g

let histogram name : histogram =
  match find name with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg (name ^ " is registered as a non-histogram metric")
  | None ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_samples = [||];
          h_buckets = Array.make n_buckets 0;
          h_prng = Support.Prng.create reservoir_seed;
        }
      in
      register name (Histogram h);
      h

(* --- recording (all gated on the master switch) --- *)

let incr ?(by = 1) (c : counter) = if Control.on () then c.c_value <- c.c_value + by

(** Add to a counter looked up by name — for cold paths. *)
let add name n =
  if Control.on () then begin
    let c = counter name in
    c.c_value <- c.c_value + n
  end

let set (g : gauge) v = if Control.on () then g.g_value <- v

let observe (h : histogram) v =
  if Control.on () then begin
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = bucket_index v in
    h.h_buckets.(b) <- h.h_buckets.(b) + 1;
    let i = h.h_count - 1 in
    if i < max_samples then begin
      if i >= Array.length h.h_samples then begin
        let cap = max 16 (min max_samples (2 * Array.length h.h_samples)) in
        let bigger = Array.make cap 0.0 in
        Array.blit h.h_samples 0 bigger 0 (Array.length h.h_samples);
        h.h_samples <- bigger
      end;
      h.h_samples.(i) <- v
    end
    else begin
      (* Reservoir replacement: keep each of the i+1 observations so far
         with equal probability max_samples/(i+1). *)
      let j = Support.Prng.int h.h_prng (i + 1) in
      if j < max_samples then h.h_samples.(j) <- v
    end
  end

let observe_ns (h : histogram) ns = observe h (Int64.to_float ns)

(* --- reading --- *)

let value (c : counter) = c.c_value

(** Counter value by name; 0 if never registered. *)
let counter_value name =
  match find name with Some (Counter c) -> c.c_value | _ -> 0

let gauge_value name = match find name with Some (Gauge g) -> g.g_value | _ -> 0.0

let samples (h : histogram) : float array =
  Array.sub h.h_samples 0 (min h.h_count max_samples)

let mean (h : histogram) = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

(** Histogram handle by name; [None] if absent or registered otherwise. *)
let find_histogram name =
  match find name with Some (Histogram h) -> Some h | _ -> None

(** Quantile [q] in [0,1] from the bucket counts — exact to within one
    sub-bucket (25% relative error bound), unaffected by the sample cap.
    Returns the bucket's upper bound clamped to the observed [min,max], so
    [percentile h 1.0] is exactly [h.h_max]. *)
let percentile (h : histogram) q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
    let rank = if rank < 1 then 1 else if rank > h.h_count then h.h_count else rank in
    let idx = ref (n_buckets - 1) in
    let cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.h_buckets.(i);
         if !cum >= rank then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    let v = bucket_hi !idx in
    if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
  end

(** Non-empty buckets as [(lo, hi, count)], in increasing value order.
    The counts sum to [h.h_count]. *)
let nonzero_buckets (h : histogram) : (float * float * int) list =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then acc := (bucket_lo i, bucket_hi i, h.h_buckets.(i)) :: !acc
  done;
  !acc

(* --- lifecycle --- *)

(** Zero every metric; handles remain valid. *)
let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity;
          Array.fill h.h_buckets 0 n_buckets 0;
          h.h_prng <- Support.Prng.create reservoir_seed)
    registry

(** All metrics in registration order. *)
let all () : metric list =
  List.rev_map (fun name -> Hashtbl.find registry name) !order

(* --- reporting --- *)

let summary_lines () : string list =
  let name_of = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name
  in
  all ()
  |> List.sort (fun a b -> compare (name_of a) (name_of b))
  |> List.map (fun m ->
         match m with
         | Counter c -> Printf.sprintf "%-28s %d" c.c_name c.c_value
         | Gauge g -> Printf.sprintf "%-28s %g" g.g_name g.g_value
         | Histogram h ->
             if h.h_count = 0 then Printf.sprintf "%-28s (no samples)" h.h_name
             else
               Printf.sprintf "%-28s n=%d sum=%.0f min=%.0f mean=%.1f max=%.0f"
                 h.h_name h.h_count h.h_sum h.h_min (mean h) h.h_max)

let to_text () =
  Printf.sprintf "# clock: monotonic, measured granularity %Ld ns\n"
    (Control.granularity_ns ())
  ^ String.concat "\n" (summary_lines ())
  ^ "\n"

(** Metrics as a JSON object, for embedding in trace exports. The
    [clock.granularity_ns] entry records the measured tick of the
    monotonic source under every timing. *)
let to_json () : Json.t =
  let entries =
    all ()
    |> List.map (fun m ->
           match m with
           | Counter c -> (c.c_name, Json.Int c.c_value)
           | Gauge g -> (g.g_name, Json.Float g.g_value)
           | Histogram h ->
               ( h.h_name,
                 Json.Obj
                   [
                     ("count", Json.Int h.h_count);
                     ("sum", Json.Float h.h_sum);
                     ("min", Json.Float (if h.h_count = 0 then 0.0 else h.h_min));
                     ("mean", Json.Float (mean h));
                     ("max", Json.Float (if h.h_count = 0 then 0.0 else h.h_max));
                   ] ))
    |> List.sort compare
  in
  Json.Obj
    (("clock.granularity_ns", Json.Int (Int64.to_int (Control.granularity_ns ())))
    :: entries)
