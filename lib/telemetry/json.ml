(** A minimal JSON value type with a printer and a parser.

    The telemetry layer must not pull in external dependencies (the repo
    vendors no JSON library), yet the Chrome-trace exporter needs to emit
    well-formed JSON and the smoke tooling needs to re-parse what it
    emitted. This module is just enough JSON for both: the full value
    grammar, UTF-8 passed through opaquely, strings escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must stay valid JSON: no "nan"/"inf" tokens, and always carry
   a decimal point or exponent so they round-trip as numbers. *)
let float_to_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else if f > 0.0 then "1e308"
  else "-1e308"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail_at p msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" p.pos msg))
let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail_at p (Printf.sprintf "expected %c" c)

let parse_literal p lit value =
  if
    p.pos + String.length lit <= String.length p.src
    && String.sub p.src p.pos (String.length lit) = lit
  then begin
    p.pos <- p.pos + String.length lit;
    value
  end
  else fail_at p ("expected " ^ lit)

let parse_string_body p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail_at p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some '"' -> advance p; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance p; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance p; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance p; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance p; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance p; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance p; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance p; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then fail_at p "truncated \\u escape";
            let hex = String.sub p.src p.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail_at p ("bad \\u escape " ^ hex)
            in
            p.pos <- p.pos + 4;
            (* Encode the code point as UTF-8 (surrogates passed through
               as replacement chars; the emitter never produces them). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail_at p "bad escape")
    | Some c ->
        advance p;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail_at p ("bad number " ^ s))

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail_at p "unexpected end of input"
  | Some 'n' -> parse_literal p "null" Null
  | Some 't' -> parse_literal p "true" (Bool true)
  | Some 'f' -> parse_literal p "false" (Bool false)
  | Some '"' -> Str (parse_string_body p)
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin advance p; List [] end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' -> advance p; items (v :: acc)
          | Some ']' -> advance p; List.rev (v :: acc)
          | _ -> fail_at p "expected , or ] in array"
        in
        List (items [])
      end
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin advance p; Obj [] end
      else begin
        let member () =
          skip_ws p;
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws p;
          match peek p with
          | Some ',' -> advance p; members (kv :: acc)
          | Some '}' -> advance p; List.rev (kv :: acc)
          | _ -> fail_at p "expected , or } in object"
        in
        Obj (members [])
      end
  | Some c -> (
      match c with
      | '0' .. '9' | '-' -> parse_number p
      | _ -> fail_at p (Printf.sprintf "unexpected character %c" c))

(** Parse a complete JSON document. @raise Parse_error on malformed input
    or trailing garbage. *)
let parse s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail_at p "trailing garbage after document";
  v

(* Accessors used by the validators. *)
let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List xs -> Some xs | _ -> None
let to_str = function Str s -> Some s | _ -> None
