(** Wall-clock timing of named program phases (compiler passes, codegen,
    table encoding).

    [time name f] runs [f], records a {!Trace} span (so the pass appears in
    Chrome exports nested under whatever is open) and accumulates the
    duration in its own first-use-ordered table, which [mmc --timings] and
    the bench harness print. Disabled telemetry makes [time] a plain call. *)

type entry = { t_name : string; mutable t_count : int; mutable t_total_ns : int64 }

let table : (string, entry) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

let entry name =
  match Hashtbl.find_opt table name with
  | Some e -> e
  | None ->
      let e = { t_name = name; t_count = 0; t_total_ns = 0L } in
      Hashtbl.replace table name e;
      order := name :: !order;
      e

let record name ns =
  let e = entry name in
  e.t_count <- e.t_count + 1;
  e.t_total_ns <- Int64.add e.t_total_ns ns

let time ?(cat = "timer") name f =
  if not (Control.on ()) then f ()
  else begin
    Trace.begin_span ~cat name;
    let t0 = Control.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        record name (Int64.sub (Control.now_ns ()) t0);
        Trace.end_span ())
      f
  end

let clear () =
  Hashtbl.reset table;
  order := []

(** Entries in first-use order: (name, count, total ns). *)
let entries () : (string * int * int64) list =
  List.rev_map
    (fun name ->
      let e = Hashtbl.find table name in
      (e.t_name, e.t_count, e.t_total_ns))
    !order

let total_ns name =
  match Hashtbl.find_opt table name with Some e -> e.t_total_ns | None -> 0L

let summary_lines () : string list =
  List.map
    (fun (name, n, total) ->
      Printf.sprintf "%-28s %4d run(s) %12.0f us" name n (Control.ns_to_us total))
    (entries ())

let to_text () = String.concat "\n" (summary_lines ()) ^ "\n"
