(** Structured span events: begin/end pairs with nesting, instants, an
    in-memory ring buffer, and exporters (Chrome [trace_event] JSON and a
    plain-text per-span summary).

    Invariant maintained by construction: in the recorded stream, every
    [End] closes the most recent unclosed [Begin] (proper nesting). When
    the buffer fills, whole spans are dropped — a dropped [Begin] swallows
    its matching [End] — so the exported stream always balances; the
    number of dropped events is reported in {!dropped}. *)

type phase = B | E | I (* begin / end / instant *)

type event = {
  ph : phase;
  name : string; (* "" for End: the name is the matching Begin's *)
  cat : string;
  ts_ns : int64;
  args : (string * Json.t) list;
}

(* Fixed-capacity event store. 1<<16 events ≈ a few thousand collections
   with their phase spans; enough for every workload in bench/. *)
let capacity = 1 lsl 16

let events : event array =
  Array.make capacity { ph = I; name = ""; cat = ""; ts_ns = 0L; args = [] }

let count = ref 0
let dropped = ref 0

(* Names of currently-open spans, innermost first. *)
let open_stack : (string * string) list ref = ref []

(* When the buffer is full, Begins increment this and are discarded; the
   matching Ends are discarded while it is positive. *)
let drop_depth = ref 0

let clear () =
  count := 0;
  dropped := 0;
  open_stack := [];
  drop_depth := 0

let depth () = List.length !open_stack

let record ev =
  if !count < capacity then begin
    events.(!count) <- ev;
    incr count
  end
  else incr dropped

let begin_span ?(args = []) ?(cat = "default") name =
  if Control.on () then begin
    if !count >= capacity || !drop_depth > 0 then begin
      incr drop_depth;
      incr dropped
    end
    else begin
      open_stack := (name, cat) :: !open_stack;
      record { ph = B; name; cat; ts_ns = Control.now_ns (); args }
    end
  end

let end_span ?(args = []) () =
  if Control.on () then begin
    if !drop_depth > 0 then begin
      decr drop_depth;
      incr dropped
    end
    else
      match !open_stack with
      | [] -> () (* unmatched end: ignore rather than corrupt the stream *)
      | (name, cat) :: rest ->
          open_stack := rest;
          record { ph = E; name; cat; ts_ns = Control.now_ns (); args }
  end

let instant ?(args = []) ?(cat = "default") name =
  if Control.on () then record { ph = I; name; cat; ts_ns = Control.now_ns (); args }

(** [span name f] wraps [f] in a begin/end pair (ends on exception too). *)
let span ?args ?cat name f =
  if Control.on () then begin
    begin_span ?args ?cat name;
    Fun.protect ~finally:(fun () -> end_span ()) f
  end
  else f ()

let recorded () : event list = Array.to_list (Array.sub events 0 !count)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

(* Chrome's JSON format wants microsecond timestamps; B/E events pair up
   per (pid, tid), and we record a single logical thread. End events carry
   the name of the Begin they close (recorded from the open-span stack). *)
let chrome_event ev : Json.t =
  let base =
    [
      ("name", Json.Str ev.name);
      ("cat", Json.Str ev.cat);
      ( "ph",
        Json.Str (match ev.ph with B -> "B" | E -> "E" | I -> "i") );
      ("ts", Json.Float (Control.ns_to_us ev.ts_ns));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let base = if ev.ph = I then base @ [ ("s", Json.Str "t") ] else base in
  if ev.args = [] then Json.Obj base
  else Json.Obj (base @ [ ("args", Json.Obj ev.args) ])

let to_chrome_json ?(metrics = true) () : Json.t =
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.Str "gcmaps") ]);
      ]
  in
  let evs = List.map chrome_event (recorded ()) in
  (* Close any spans still open at export time so B/E counts balance. *)
  let closers =
    List.map
      (fun (name, cat) ->
        chrome_event { ph = E; name; cat; ts_ns = Control.now_ns (); args = [] })
      !open_stack
  in
  let fields =
    [
      ("traceEvents", Json.List ((meta :: evs) @ closers));
      ("displayTimeUnit", Json.Str "ms");
      ("droppedEvents", Json.Int !dropped);
    ]
  in
  let fields =
    if metrics then fields @ [ ("metrics", Metrics.to_json ()) ] else fields
  in
  Json.Obj fields

let to_chrome_string ?metrics () = Json.to_string (to_chrome_json ?metrics ())

let write_chrome_file ?metrics path =
  let oc = open_out path in
  output_string oc (to_chrome_string ?metrics ());
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* Plain-text summary                                                  *)
(* ------------------------------------------------------------------ *)

(** Aggregate spans by name: count and total wall time. Unclosed spans are
    excluded. *)
let aggregate () : (string * int * int64) list =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let stack = ref [] in
  List.iter
    (fun ev ->
      match ev.ph with
      | B -> stack := (ev.name, ev.ts_ns) :: !stack
      | E -> (
          match !stack with
          | (name, t0) :: rest ->
              stack := rest;
              let dt = Int64.sub ev.ts_ns t0 in
              (match Hashtbl.find_opt tbl name with
              | Some (n, total) -> Hashtbl.replace tbl name (n + 1, Int64.add total dt)
              | None ->
                  order := name :: !order;
                  Hashtbl.replace tbl name (1, dt))
          | [] -> ())
      | I -> ())
    (recorded ());
  List.rev_map
    (fun name ->
      let n, total = Hashtbl.find tbl name in
      (name, n, total))
    !order

let summary_lines () : string list =
  List.map
    (fun (name, n, total_ns) ->
      Printf.sprintf "%-28s %6d span(s) %10.0f us total %10.1f us avg" name n
        (Control.ns_to_us total_ns)
        (Control.ns_to_us total_ns /. float_of_int (max 1 n)))
    (aggregate ())

let to_text () = String.concat "\n" (summary_lines ()) ^ "\n"
