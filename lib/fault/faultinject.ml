(** Fault injection against the encoded gc tables.

    The integrity layer's claim is that no corruption of the table bytes
    can take the runtime down ungracefully: any mutation is either
    rejected with a typed error ([Decode.Table_corrupt] at load, a typed
    [Vm_error] at collection time), flagged by the heap verifier, or
    provably without effect (the mutated stream decodes to the same
    tables, so the run is bit-identical). This module tests the claim
    mechanically: compile a real program once, then mutate its encoded
    streams — bit flips, byte rewrites, truncations, continuation-bit
    padding, byte swaps — and classify what each mutated image does.

    Two modes:
    - [cross_check = true] (the default, matching image load): the
      mutated tables first pass [Decode.validate_tables ~against:rawmaps].
      Any mutation with a semantic effect is rejected there; a mutation
      that survives must decode identically, so the run must match the
      reference output exactly. Divergence, a crash or a hang is a
      harness failure.
    - [cross_check = false]: load validation is skipped entirely, so
      corrupt tables reach the collector. This exercises the decoder's
      own totality and the runtime verifier; crashes and hangs are still
      failures, but a silently-diverging run is only counted (a single
      bit flip in a liveness bitmap can be locally undetectable — the
      reason image load keeps the redundancy check on). *)

module E = Gcmaps.Encode
module D = Gcmaps.Decode
module P = Support.Prng

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

type mutation = {
  m_name : string;
  m_fid : int;
  m_pos : int; (* stream byte the mutation anchors at *)
  m_apply : Bytes.t -> Bytes.t; (* pure: input is already a copy *)
}

let describe m = Printf.sprintf "%s@proc%d+%d" m.m_name m.m_fid m.m_pos

(* Pick a procedure with a non-empty stream, biased toward bigger streams
   (more interesting bytes), then a mutation kind and a position. *)
let random_mutation rng (tables : E.program_tables) : mutation option =
  let candidates =
    Array.to_list tables.E.procs
    |> List.filter (fun ep -> Bytes.length ep.E.ep_stream > 0)
  in
  match candidates with
  | [] -> None
  | _ ->
      let ep = List.nth candidates (P.int rng (List.length candidates)) in
      let fid = ep.E.ep_fid in
      let len = Bytes.length ep.E.ep_stream in
      let pos = P.int rng len in
      let m =
        match P.int rng 6 with
        | 0 ->
            let bit = P.int rng 8 in
            {
              m_name = Printf.sprintf "bitflip(b%d)" bit;
              m_fid = fid;
              m_pos = pos;
              m_apply =
                (fun b ->
                  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
                  b);
            }
        | 1 ->
            let v = P.int rng 256 in
            {
              m_name = Printf.sprintf "byteset(0x%02x)" v;
              m_fid = fid;
              m_pos = pos;
              m_apply =
                (fun b ->
                  Bytes.set b pos (Char.chr v);
                  b);
            }
        | 2 ->
            (* Truncation: drop everything from [pos] on. *)
            { m_name = "truncate"; m_fid = fid; m_pos = pos; m_apply = (fun b -> Bytes.sub b 0 pos) }
        | 3 ->
            (* Varint padding: splice in continuation bytes, the classic
               unterminated/overlong-encoding attack. *)
            let n = 1 + P.int rng 12 in
            {
              m_name = Printf.sprintf "pad(0x80*%d)" n;
              m_fid = fid;
              m_pos = pos;
              m_apply =
                (fun b ->
                  let out = Bytes.create (Bytes.length b + n) in
                  Bytes.blit b 0 out 0 pos;
                  Bytes.fill out pos n '\x80';
                  Bytes.blit b pos out (pos + n) (Bytes.length b - pos);
                  out);
            }
        | 4 ->
            (* Swap two stream bytes — e.g. a descriptor with a payload
               byte, reordering tables without changing the multiset. *)
            let pos2 = P.int rng len in
            {
              m_name = Printf.sprintf "swap(%d)" pos2;
              m_fid = fid;
              m_pos = pos;
              m_apply =
                (fun b ->
                  let x = Bytes.get b pos and y = Bytes.get b pos2 in
                  Bytes.set b pos y;
                  Bytes.set b pos2 x;
                  b);
            }
        | _ ->
            (* Descriptor-style rewrite: force the 2-bit fields into a
               chosen state (present/same/undefined-3) at a random byte. *)
            let f = P.int rng 4 in
            let v = f lor (f lsl 2) lor (f lsl 4) in
            {
              m_name = Printf.sprintf "descswap(%d)" f;
              m_fid = fid;
              m_pos = pos;
              m_apply =
                (fun b ->
                  Bytes.set b pos (Char.chr v);
                  b);
            }
      in
      Some m

let mutate_tables (tables : E.program_tables) (m : mutation) : E.program_tables =
  let procs =
    Array.map
      (fun ep ->
        if ep.E.ep_fid <> m.m_fid then ep
        else { ep with E.ep_stream = m.m_apply (Bytes.copy ep.E.ep_stream) })
      tables.E.procs
  in
  { tables with E.procs }

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

type outcome =
  | Rejected_load (* Table_corrupt from the load-time cross-check *)
  | Rejected_run (* typed Corrupt_table / Bad_root / other Vm_error mid-run *)
  | Verifier_flagged (* the heap verifier reported violations *)
  | Benign (* ran to completion with the reference output *)
  | Recovered (* reference output AND the collector degraded at least one
                 parallel round to the serial replay — the runtime-fault
                 modes' success class *)
  | Diverged (* ran to completion with different output — silent mis-decode *)
  | Hung (* exceeded the fuel budget *)
  | Crashed of string (* any untyped exception: the bug class this layer removes *)

let outcome_name = function
  | Rejected_load -> "rejected_load"
  | Rejected_run -> "rejected_run"
  | Verifier_flagged -> "verifier_flagged"
  | Benign -> "benign"
  | Recovered -> "recovered"
  | Diverged -> "diverged"
  | Hung -> "hung"
  | Crashed _ -> "crashed"

type case = { mutation : string; outcome : outcome }

type sweep = {
  program : string;
  config : string;
  iterations : int;
  counts : (string * int) list; (* outcome name -> count *)
  failures : case list; (* crashed/hung (+ diverged when cross-checking) *)
}

let count sweep name = try List.assoc name sweep.counts with Not_found -> 0

(* ------------------------------------------------------------------ *)
(* Running one mutated image                                           *)
(* ------------------------------------------------------------------ *)

(* Rebuild the image around mutated tables. The decode cache must be
   recreated: it memoizes decoded streams, and the point is to decode the
   mutated ones. *)
let with_tables (img : Vm.Image.t) (tables : E.program_tables) : Vm.Image.t =
  { img with Vm.Image.tables; decode_cache = Gcmaps.Decode_cache.create tables }

let run_mutated ~(reference : string) ~fuel (img : Vm.Image.t) : outcome =
  let st = Vm.Interp.create img in
  (* Honor MM_GEN like every precise-collector entry point: the CI gen job
     re-runs the whole sweep with the nursery collector (and its
     old→young verifier check) decoding the mutated tables. *)
  if Gc.Nursery.env_enabled () then Gc.Nursery.install st else Gc.Cheney.install st;
  match Vm.Interp.run ~fuel st with
  | () -> if Vm.Interp.output st = reference then Benign else Diverged
  | exception Vm.Vm_error.Error e -> (
      match e with
      | Vm.Vm_error.Verify_failed _ -> Verifier_flagged
      | Vm.Vm_error.Out_of_fuel _ -> Hung
      | _ -> Rejected_run)
  | exception Vm.Interp.Guest_error _ ->
      (* A corrupt table can redirect control into a guest-level trap;
         that is still a clean, reported rejection. *)
      Rejected_run
  | exception D.Table_corrupt _ -> Rejected_run
  | exception e -> Crashed (Printexc.to_string e)

(* ------------------------------------------------------------------ *)
(* Sweeps                                                              *)
(* ------------------------------------------------------------------ *)

type target = {
  t_name : string;
  t_source : string;
  t_heap : int; (* small enough to force collections *)
}

(* Small-heap variants of the paper's benchmarks: every run collects many
   times, so mutated tables actually get decoded. *)
let default_targets =
  [
    { t_name = "fieldlist"; t_source = Programs.Fieldlist_src.src; t_heap = 300 };
    { t_name = "ambig"; t_source = Programs.Ambig_src.src; t_heap = 400 };
    {
      t_name = "destroy-small";
      t_source = Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations:80;
      t_heap = 1200;
    };
  ]

let all_configs : (string * E.scheme * E.options) list =
  [
    ("delta+pack+prev", E.Delta_main, { E.packing = true; previous = true });
    ("delta+plain", E.Delta_main, { E.packing = false; previous = false });
    ("full+pack+prev", E.Full_info, { E.packing = true; previous = true });
    ("full+plain", E.Full_info, { E.packing = false; previous = false });
  ]

let with_verifier f =
  let was = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  Fun.protect ~finally:(fun () -> Gc.Verify.set_post was) f

(** Run [iterations] random mutations of [target] compiled under
    [config]. The image is compiled once; each iteration mutates a copy
    of its tables. *)
let sweep_target ?(cross_check = true) ~seed ~iterations (target : target)
    ((cfg_name, scheme, opts) : string * E.scheme * E.options) : sweep =
  let options =
    {
      Driver.Compile.default_options with
      heap_words = target.t_heap;
      scheme;
      table_opts = opts;
    }
  in
  let img = Driver.Compile.compile ~options target.t_source in
  let reference = Driver.Compile.run ~collector:Driver.Compile.Precise img in
  (* Generous but bounded budget: a hang is a decode loop, not a slow
     program. *)
  let fuel = (4 * reference.Driver.Compile.instructions) + 1_000_000 in
  let rng = P.create seed in
  let counts = Hashtbl.create 8 in
  let bump o = Hashtbl.replace counts o (1 + try Hashtbl.find counts o with Not_found -> 0) in
  let failures = ref [] in
  with_verifier (fun () ->
      for _i = 1 to iterations do
        match random_mutation rng img.Vm.Image.tables with
        | None -> bump "benign" (* nothing to mutate: empty streams *)
        | Some m ->
            let tables = mutate_tables img.Vm.Image.tables m in
            let outcome =
              if cross_check then
                match D.validate_tables ~against:img.Vm.Image.rawmaps tables with
                | () ->
                    run_mutated ~reference:reference.Driver.Compile.output ~fuel
                      (with_tables img tables)
                | exception D.Table_corrupt _ -> Rejected_load
                | exception e -> Crashed (Printexc.to_string e)
              else
                run_mutated ~reference:reference.Driver.Compile.output ~fuel
                  (with_tables img tables)
            in
            bump (outcome_name outcome);
            let is_failure =
              match outcome with
              | Crashed _ | Hung -> true
              | Diverged -> cross_check (* silent mis-decode past the cross-check *)
              | _ -> false
            in
            if is_failure then failures := { mutation = describe m; outcome } :: !failures
      done);
  {
    program = target.t_name;
    config = cfg_name;
    iterations;
    counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [];
    failures = List.rev !failures;
  }

(** The full matrix: every target × every scheme/packing config. *)
let sweep_all ?(cross_check = true) ?(targets = default_targets) ~seed ~iterations_per_config ()
    : sweep list =
  List.concat_map
    (fun t ->
      List.mapi
        (fun i cfg ->
          sweep_target ~cross_check ~seed:(seed + (1000 * i) + Hashtbl.hash t.t_name)
            ~iterations:iterations_per_config t cfg)
        all_configs)
    targets

let total_failures sweeps = List.fold_left (fun a s -> a + List.length s.failures) 0 sweeps

(* ------------------------------------------------------------------ *)
(* Runtime fault modes: worker raises/stalls, allocation storms        *)
(* ------------------------------------------------------------------ *)

(* Where the table-corruption sweeps attack the encoded data, these modes
   attack the running collector itself: a worker domain that raises in a
   chosen parallel round, a worker that stalls past the round watchdog
   deadline, and a forced collection every Nth allocation (an
   allocation-failure storm). The containment claim under test: every
   such fault degrades to the byte-identical serial replay — reference
   output, reference final heap image, verifier clean. *)

exception Injected_fault

type runtime_mode =
  | Worker_raise of { round : int } (* a worker raises in parallel round N *)
  | Worker_stall of { round : int; ms : int } (* ... stalls for [ms] there *)
  | Alloc_storm of { every : int } (* force a collection every Nth alloc *)

let runtime_mode_name = function
  | Worker_raise { round } -> Printf.sprintf "worker-raise@r%d" round
  | Worker_stall { round; ms } -> Printf.sprintf "worker-stall@r%d(%dms)" round ms
  | Alloc_storm { every } -> Printf.sprintf "alloc-storm(every=%d)" every

(* Arm the collector's per-(phase, round, worker) hook. Worker 0 is the
   dispatching mutator thread: it is never stalled (the watchdog runs on
   it) and never raised (so the fault always lands in a pool domain). *)
let arm_hook = function
  | Worker_raise { round } ->
      Gc.Gc_pool.fault_hook :=
        Some
          (fun ~phase:_ ~round:r ~worker ->
            if r = round && worker > 0 then raise Injected_fault)
  | Worker_stall { round; ms } ->
      Gc.Gc_pool.fault_hook :=
        Some
          (fun ~phase:_ ~round:r ~worker ->
            if r = round && worker > 0 then Unix.sleepf (float_of_int ms /. 1e3))
  | Alloc_storm _ -> ()

let disarm_hook () = Gc.Gc_pool.fault_hook := None

(* Reference run with a counting hook: how many parallel rounds does the
   deepest collection reach? (Counted on worker 0, so no cross-domain
   writes.) Also yields the reference output and final heap image. *)
let count_rounds img ~fuel =
  let seen = ref (-1) in
  Gc.Gc_pool.fault_hook :=
    Some (fun ~phase:_ ~round ~worker -> if worker = 0 && round > !seen then seen := round);
  let st = Vm.Interp.create img in
  Gc.Cheney.install st;
  Vm.Interp.run ~fuel st;
  disarm_hook ();
  (!seen + 1, Vm.Interp.output st, Vm.Mem.copy st.Vm.Interp.mem)

let run_runtime_case ~reference ~ref_mem ~fuel img mode : outcome =
  let st = Vm.Interp.create img in
  Gc.Cheney.install st;
  (match mode with
  | Alloc_storm { every } -> st.Vm.Interp.alloc_pressure_every <- every
  | _ -> arm_hook mode);
  let finish () = disarm_hook () in
  match Vm.Interp.run ~fuel st with
  | () ->
      finish ();
      let out_ok = Vm.Interp.output st = reference in
      let heap_ok =
        (* Worker faults must leave the final heap byte-identical to the
           fault-free run (the serial replay reproduces the layout; a
           quarantined store is an identical copy). An allocation storm
           legitimately collects extra times, so only output is compared. *)
        match ref_mem with
        | Some m -> Vm.Mem.equal st.Vm.Interp.mem m
        | None -> true
      in
      if not (out_ok && heap_ok) then Diverged
      else if st.Vm.Interp.gc.Vm.Interp.serial_replays > 0 then Recovered
      else Benign
  | exception Vm.Vm_error.Error e -> (
      finish ();
      match e with
      | Vm.Vm_error.Verify_failed _ -> Verifier_flagged
      | Vm.Vm_error.Out_of_fuel _ -> Hung
      | _ -> Rejected_run)
  | exception Vm.Interp.Guest_error _ ->
      finish ();
      Rejected_run
  | exception e ->
      finish ();
      Crashed (Printexc.to_string e)

(** Worker-fault-at-every-round sweep over one target, with the
    post-collection verifier armed: a raise in every parallel round a
    fault-free run performs, a stall past the watchdog in each of those
    rounds, and an allocation storm. Expected outcomes are [Recovered]
    (or [Benign] where a mode never triggers); crash/hang/diverge and
    verifier flags are failures. *)
let runtime_sweep ?(workers = 4) ?(stall_ms = 60) ?(deadline_ms = 15)
    ?(storm_every = 7) (target : target) : sweep =
  let options =
    { Driver.Compile.default_options with heap_words = target.t_heap }
  in
  let img = Driver.Compile.compile ~options target.t_source in
  let w0 = !Gc.Gc_pool.forced_workers
  and t0 = !Gc.Gc_pool.forced_threshold
  and d0 = !Gc.Gc_pool.forced_deadline_ms in
  Gc.Gc_pool.set_workers workers;
  Gc.Gc_pool.set_par_threshold 2;
  Gc.Gc_pool.set_deadline_ms deadline_ms;
  Fun.protect
    ~finally:(fun () ->
      disarm_hook ();
      ignore (Gc.Gc_pool.quiesce ~timeout_s:10.0);
      Gc.Gc_pool.forced_workers := w0;
      Gc.Gc_pool.forced_threshold := t0;
      Gc.Gc_pool.forced_deadline_ms := d0)
  @@ fun () ->
  with_verifier @@ fun () ->
  let fuel = 200_000_000 in
  let rounds, reference, ref_mem = count_rounds img ~fuel in
  let cases =
    List.init rounds (fun r -> Worker_raise { round = r })
    @ List.init rounds (fun r -> Worker_stall { round = r; ms = stall_ms })
    @ [ Alloc_storm { every = storm_every } ]
  in
  let counts = Hashtbl.create 8 in
  let bump o = Hashtbl.replace counts o (1 + try Hashtbl.find counts o with Not_found -> 0) in
  let failures = ref [] in
  List.iter
    (fun mode ->
      let ref_mem =
        match mode with Alloc_storm _ -> None | _ -> Some ref_mem
      in
      let outcome = run_runtime_case ~reference ~ref_mem ~fuel img mode in
      (* A stalled worker outlives its round by design; wait for it to
         retire so the next case starts on a healthy pool. *)
      (match mode with
      | Worker_stall _ -> ignore (Gc.Gc_pool.quiesce ~timeout_s:10.0)
      | _ -> ());
      bump (outcome_name outcome);
      match outcome with
      | Crashed _ | Hung | Diverged | Verifier_flagged ->
          failures := { mutation = runtime_mode_name mode; outcome } :: !failures
      | _ -> ())
    cases;
  {
    program = target.t_name;
    config = Printf.sprintf "runtime(workers=%d)" workers;
    iterations = List.length cases;
    counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [];
    failures = List.rev !failures;
  }

(** The runtime-fault matrix over the default targets. *)
let runtime_sweep_all ?workers ?stall_ms ?deadline_ms ?storm_every
    ?(targets = default_targets) () : sweep list =
  List.map (runtime_sweep ?workers ?stall_ms ?deadline_ms ?storm_every) targets

(* ------------------------------------------------------------------ *)
(* Incremental-collector interleaving faults                           *)
(* ------------------------------------------------------------------ *)

(* The incremental collector's bug surface is the interleaving: a slice
   at the worst gc-point, a barrier flood, a mark stack too small to hold
   the frontier. Each mode perturbs the slice schedule as far as the
   engine allows and asserts the STW contract anyway: reference output
   and instruction count (slices execute no guest instructions), with the
   heap verifier — including its tri-color check — armed at every slice
   boundary. The final heap image is NOT compared: a different slice
   schedule legitimately frees and reuses blocks in a different order,
   which is exactly why output/icount are the observable contract. *)

type incremental_mode =
  | Slice_storm (* force a slice at every gc-point *)
  | Barrier_storm (* re-gray already-marked barrier targets *)
  | Mark_spill of { cap : int } (* tiny mark stack: spill + rescan paths *)
  | Tiny_budget of { us : int } (* wall-clock-truncated slices *)

let incremental_mode_name = function
  | Slice_storm -> "slice-storm"
  | Barrier_storm -> "barrier-storm"
  | Mark_spill { cap } -> Printf.sprintf "mark-spill(cap=%d)" cap
  | Tiny_budget { us } -> Printf.sprintf "tiny-budget(%dus)" us

let run_incremental_case ~reference ~ref_icount ~fuel img mode : outcome =
  let st = Vm.Interp.create img in
  let gray_cap = match mode with Mark_spill { cap } -> Some cap | _ -> None in
  let pause_budget_us =
    match mode with Tiny_budget { us } -> Some us | _ -> None
  in
  ignore
    (Gc.Incremental.install ?gray_cap ?pause_budget_us
       ~slice_storm:(mode = Slice_storm)
       ~barrier_storm:(mode = Barrier_storm)
       st);
  match Vm.Interp.run ~fuel st with
  | () ->
      if Vm.Interp.output st = reference && st.Vm.Interp.icount = ref_icount
      then Benign
      else Diverged
  | exception Vm.Vm_error.Error e -> (
      match e with
      | Vm.Vm_error.Verify_failed _ -> Verifier_flagged
      | Vm.Vm_error.Out_of_fuel _ -> Hung
      | _ -> Rejected_run)
  | exception Vm.Interp.Guest_error _ -> Rejected_run
  | exception e -> Crashed (Printexc.to_string e)

(** Interleaving-fault sweep over one target under the incremental
    collector, verifier armed. Expected outcome for every mode is
    [Benign]; anything in the failure classes (including a verifier
    flag) is a real interleaving bug. The heap is doubled relative to
    the STW sweeps: the non-moving collector cannot compact, and the
    fragmentation headroom keeps tiny-heap targets honest about testing
    the schedule rather than the out-of-memory path. *)
let incremental_sweep (target : target) : sweep =
  let options =
    { Driver.Compile.default_options with heap_words = target.t_heap * 2 }
  in
  let img = Driver.Compile.compile ~options target.t_source in
  with_verifier @@ fun () ->
  let fuel = 200_000_000 in
  let reference, ref_icount =
    let st = Vm.Interp.create img in
    Gc.Cheney.install st;
    Vm.Interp.run ~fuel st;
    (Vm.Interp.output st, st.Vm.Interp.icount)
  in
  let cases =
    [
      Slice_storm;
      Barrier_storm;
      Mark_spill { cap = 1 };
      Mark_spill { cap = 8 };
      Tiny_budget { us = 50 };
    ]
  in
  let counts = Hashtbl.create 8 in
  let bump o = Hashtbl.replace counts o (1 + try Hashtbl.find counts o with Not_found -> 0) in
  let failures = ref [] in
  List.iter
    (fun mode ->
      let outcome = run_incremental_case ~reference ~ref_icount ~fuel img mode in
      bump (outcome_name outcome);
      match outcome with
      | Crashed _ | Hung | Diverged | Verifier_flagged | Rejected_run ->
          failures := { mutation = incremental_mode_name mode; outcome } :: !failures
      | _ -> ())
    cases;
  {
    program = target.t_name;
    config = "incremental";
    iterations = List.length cases;
    counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts [];
    failures = List.rev !failures;
  }

(** The incremental interleaving matrix over the default targets. *)
let incremental_sweep_all ?(targets = default_targets) () : sweep list =
  List.map incremental_sweep targets

(* ------------------------------------------------------------------ *)
(* JSON report                                                         *)
(* ------------------------------------------------------------------ *)

let json_of_sweep (s : sweep) : Telemetry.Json.t =
  Telemetry.Json.(
    Obj
      [
        ("program", Str s.program);
        ("config", Str s.config);
        ("iterations", Int s.iterations);
        ("counts", Obj (List.map (fun (k, v) -> (k, Int v)) s.counts));
        ( "failures",
          List
            (List.map
               (fun c ->
                 Obj
                   [
                     ("mutation", Str c.mutation);
                     ("outcome", Str (outcome_name c.outcome));
                     ( "detail",
                       Str (match c.outcome with Crashed e -> e | _ -> "") );
                   ])
               s.failures) );
      ])

let json_report ~cross_check (sweeps : sweep list) : Telemetry.Json.t =
  let total = List.fold_left (fun a s -> a + s.iterations) 0 sweeps in
  Telemetry.Json.(
    Obj
      [
        ("mode", Str (if cross_check then "cross-check" else "no-cross-check"));
        ("total_mutations", Int total);
        ("total_failures", Int (total_failures sweeps));
        ("sweeps", List (List.map json_of_sweep sweeps));
      ])
