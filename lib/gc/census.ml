(** Heap census: a linear walk over the live heap regions tallying objects
    and words by type descriptor and by allocation site.

    The walk is independent of both the collector and {!Verify} — it parses
    object headers directly off the allocation frontiers — so a test can
    cross-check its totals against the verifier's live-heap parse without
    the two sharing any code. Taken at collection boundaries (right after a
    collection retires the garbage) the census is exactly the live heap. *)

(** Header-driven size of the object at [addr]; [None] when the header is
    not a plausible type descriptor (a corrupt heap — the verifier's
    department, not ours). *)
let object_size (st : Vm.Interp.t) addr =
  let layouts = st.Vm.Interp.image.Vm.Image.layouts in
  let tdid = st.Vm.Interp.mem.{addr} in
  if tdid < 0 || tdid >= Array.length layouts then None
  else
    match layouts.(tdid) with
    | Rt.Typedesc.Lfixed { words; _ } -> Some (tdid, words)
    | Rt.Typedesc.Lopen { elt_size; _ } ->
        let len = st.Vm.Interp.mem.{addr + 1} in
        if len < 0 then None
        else Some (tdid, Rt.Typedesc.open_header_words + (len * elt_size))

(** Take one census of the machine's live regions — flat mode walks
    [from_base, alloc); generational mode walks the old generation and the
    nursery separately — and record it into the profiler. *)
let take (st : Vm.Interp.t) (p : Profile.t) =
  let by_tdesc = Hashtbl.create 32 in
  let by_site = Hashtbl.create 64 in
  let objects = ref 0 in
  let words = ref 0 in
  let tally tbl key w =
    let o, ww = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (o + 1, ww + w)
  in
  let walk lo hi =
    let a = ref lo in
    let ok = ref true in
    while !ok && !a < hi do
      (* Incremental mode leaves filler blocks (negative headers) in the
         live range; they hold no objects and are stepped over. *)
      let header = st.Vm.Interp.mem.{!a} in
      if header < 0 && st.Vm.Interp.inc <> None then a := !a - header
      else
        match object_size st !a with
        | None -> ok := false
        | Some (tdid, sz) ->
          incr objects;
          words := !words + sz;
          tally by_tdesc tdid sz;
          tally by_site (Profile.site_of_addr p !a) sz;
          a := !a + sz
    done
  in
  (match st.Vm.Interp.gen with
  | Some g ->
      (* Pool chunks carved from the old generation may have unfilled
         tails; walk the old generation in segments around those gaps. *)
      let lo = ref st.Vm.Interp.from_base in
      let old_hi = g.Vm.Interp.old_alloc in
      List.iter
        (fun (glo, ghi) ->
          if glo <= old_hi then begin
            walk !lo (min glo old_hi);
            lo := ghi
          end)
        (Vm.Interp.pool_gaps st);
      if !lo < old_hi then walk !lo old_hi;
      walk g.Vm.Interp.nursery_base g.Vm.Interp.nursery_alloc
  | None -> walk st.Vm.Interp.from_base st.Vm.Interp.alloc);
  let dump tbl =
    Hashtbl.fold (fun k (o, w) acc -> (k, o, w) :: acc) tbl [] |> List.sort compare
  in
  Profile.record_census p
    {
      Profile.c_collection = p.Profile.collections;
      c_objects = !objects;
      c_words = !words;
      c_by_tdesc = dump by_tdesc;
      c_by_site = dump by_site;
    }
