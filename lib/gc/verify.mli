(** Post- (and optionally pre-) collection heap-and-root verification.

    Re-derives the collector's invariants from scratch around each
    collection: the live region parses as a sequence of valid objects,
    every heap pointer field and every tidy root (global, stack slot,
    register) references NIL, a non-heap address or a live object header,
    walked frame pointers lie inside the stack, and every derived value
    re-derives with the same E the un-derive step recovered (§3).
    Violations accumulate into a {!report}; a non-empty report raises
    [Vm.Vm_error.Error (Verify_failed _)].

    Disabled passes cost one flag test per collection. *)

(** {2 Switches} *)

val set_post : bool -> unit
(** Enable/disable the after-collection pass ([mmrun --verify-heap]).
    Initial value: set iff the [MM_VERIFY_HEAP] environment variable is a
    non-empty, non-["0"] string. *)

val set_pre : bool -> unit
(** Enable/disable the before-collection pass ([mmrun --verify-pre]).
    Initial value: from [MM_VERIFY_PRE], as {!set_post}. *)

val post_enabled : unit -> bool
val pre_enabled : unit -> bool

(** {2 Reports} *)

type report = {
  collection : int;
  phase : string; (* "pre" | "post" *)
  objects : int; (* live objects walked *)
  roots : int; (* global + stack + register roots checked *)
  derived : int; (* derived entries re-checked *)
  violations : string list;
}

val last_report : unit -> report option
(** The most recent pass's report (also for passes that found nothing). *)

(** {2 Derived-value snapshots} *)

type derived_snapshot

val snapshot_derived :
  Vm.Interp.t -> (Stackwalk.frame * Gcmaps.Rawmaps.deriv_entry list) list -> derived_snapshot
(** Capture E for every adjusted derived value. Must be called between
    the un-derive step (targets hold exactly E) and the copy. *)

(** {2 Entry point} *)

val check :
  Vm.Interp.t ->
  phase:string ->
  frames:Stackwalk.frame list ->
  ?derived:derived_snapshot ->
  unit ->
  report
(** Run a full pass over the given collection's frames (the verifier
    never re-walks the stack, so a pre-pass checks exactly the frames the
    collector is about to trust).
    @raise Vm.Vm_error.Error [Verify_failed] if any check fails. *)
