(** Incremental tri-color mark-sweep collection with a hard pause budget.

    Every collector mode before this one is stop-the-world: the pause
    distributions of BENCH_5 grow linearly with live data, because a full
    collection must trace everything it keeps in one go. This engine
    derives an incremental collector from the same exact compiler-emitted
    machinery — the gc-point tables say precisely where the mutator can be
    pre-empted and precisely which registers, stack words and globals hold
    pointers there — and bounds every collection {e slice} to a budget.

    {2 Derivation (see DESIGN.md §13)}

    The classical derivation from a snapshot-at-the-beginning (SATB)
    deletion barrier does not fit this compiler: the emitted [Wbar] keys
    on the {e stored value} being pointer-kinded, so a NIL store carries
    no barrier, and an SATB log would miss exactly the overwrites that
    erase the snapshot. Instead the existing barrier — emitted {e after}
    the store, against the stored slot — is already a Dijkstra
    {e insertion} barrier: reading the slot at barrier time yields the
    just-stored pointer, and shading it maintains the strong tri-color
    invariant (no black object points at an unshaded white object).
    Incremental update needs a final stop-the-world {e flip} that rescans
    the roots (a pointer can hide in a register across the whole marking
    phase), but the exact tables make that rescan cheap and precise.

    The collector is {e non-moving}: derived (interior) pointers are the
    paper's central problem, and a moving incremental collector would
    have to un-derive and re-derive every derived value at {e every}
    slice boundary — or read-barrier the mutator. Marking in place keeps
    every derived value numerically valid through the whole cycle; only
    the base objects must be retained, and their tidy base pointers are
    in the very tables the slices already walk. Freed objects become
    {e filler} blocks (header [-size]) so the linear heap parse stays
    total, and a first-fit free list (shared with the conservative
    collector's machinery in [Vm.Interp]) recycles them.

    {2 Scheduling}

    Work is owed in proportion to allocation ([inc_ratio] units per
    allocated word) and paid in slices at gc-points. A slice processes
    [inc_slice_work] units in deterministic mode — the differential
    suites compare final heap images across engines, so the schedule must
    be a pure function of the allocation stream — or runs until the owed
    work is done or the wall-clock budget ([--pause-budget-us]) expires
    in time mode. Allocation failure forces a stop-the-world finish of
    the in-flight cycle (counted, and visible under [--gc-stats]). *)

module T = Telemetry
module VI = Vm.Interp
module RM = Gcmaps.Rawmaps

let now_ns = T.Control.now_ns

(* Telemetry handles. [gc.pause_ns] and [gc.collections] are shared with
   the stop-the-world collectors so cross-mode comparisons read one name;
   slices and flips get their own histograms for the per-mode rows of
   [--gc-stats]. *)
let c_collections = T.Metrics.counter "gc.collections"
let c_slices = T.Metrics.counter "gc.slices"
let c_overruns = T.Metrics.counter "gc.slice_overruns"
let c_forced = T.Metrics.counter "gc.forced_finish"
let c_spills = T.Metrics.counter "gc.mark_spills"
let c_rescans = T.Metrics.counter "gc.mark_rescans"
let c_budget_us = T.Metrics.counter "gc.budget_us"
let h_slice = T.Metrics.histogram "gc.slice_ns"
let h_flip = T.Metrics.histogram "gc.flip_ns"
let h_pause = T.Metrics.histogram "gc.pause_ns"

(* ------------------------------------------------------------------ *)
(* Marking                                                             *)
(* ------------------------------------------------------------------ *)

(* Scan one (marked) object: shade every pointer field. Returns the
   object's size in words — the unit of work accounting. Mirrors the
   Cheney scan loop over the precomputed layouts. *)
let scan_object (st : VI.t) (inc : VI.inc_state) a =
  let mem = st.VI.mem in
  let layouts = st.VI.image.Vm.Image.layouts in
  match layouts.(mem.{a}) with
  | Rt.Typedesc.Lfixed { words; offsets } ->
      for i = 0 to Array.length offsets - 1 do
        VI.inc_shade st inc mem.{a + Array.unsafe_get offsets i}
      done;
      words
  | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
      let len = mem.{a + 1} in
      let size = Rt.Typedesc.open_header_words + (len * elt_size) in
      if Array.length elt_offsets > 0 then
        for i = 0 to len - 1 do
          let base = a + Rt.Typedesc.open_header_words + (i * elt_size) in
          Array.iter (fun o -> VI.inc_shade st inc mem.{base + o}) elt_offsets
        done;
      size

(* Header-driven size of the object at [a] (headers are trusted here; the
   verifier is the integrity oracle). *)
let object_words (st : VI.t) a =
  let mem = st.VI.mem in
  match st.VI.image.Vm.Image.layouts.(mem.{a}) with
  | Rt.Typedesc.Lfixed { words; _ } -> words
  | Rt.Typedesc.Lopen { elt_size; _ } ->
      Rt.Typedesc.open_header_words + (mem.{a + 1} * elt_size)

(* Mark-stack overflow recovery: a linear pass over the heap re-scanning
   every marked object. Any marked→unmarked edge is re-shaded (and may
   re-spill, in which case the drain loop runs another pass). Terminates
   because marks only accumulate. *)
let rescan (st : VI.t) (inc : VI.inc_state) =
  inc.VI.inc_rescans <- inc.VI.inc_rescans + 1;
  T.Metrics.incr c_rescans;
  let mem = st.VI.mem in
  let a = ref st.VI.from_base in
  let work = ref 0 in
  while !a < st.VI.alloc do
    let h = mem.{!a} in
    if h < 0 then begin
      (* filler (free block) *)
      a := !a - h;
      incr work
    end
    else begin
      let size = object_words st !a in
      if Support.Bitset.mem inc.VI.inc_marks (!a - st.VI.from_base) then
        work := !work + scan_object st inc !a
      else incr work;
      a := !a + size
    end
  done;
  !work

(* Shade every root the exact tables describe at this gc-point: globals,
   tidy stack slots and tidy registers of every frame. Derived values
   need nothing here — nothing moves, so a derived value stays
   numerically valid, and its base object is itself a tidy root in the
   same tables (the un-derive machinery of the moving collectors depends
   on that already). Returns the number of roots visited. *)
let shade_roots (st : VI.t) (inc : VI.inc_state) frames =
  let n = ref 0 in
  List.iter
    (fun a ->
      incr n;
      VI.inc_shade st inc (VI.read st a))
    st.VI.image.Vm.Image.global_roots;
  List.iter
    (fun (fr : Stackwalk.frame) ->
      List.iter
        (fun l ->
          incr n;
          VI.inc_shade st inc (Stackwalk.read st fr l))
        fr.Stackwalk.fr_gcpoint.RM.stack_ptrs;
      List.iter
        (fun r ->
          incr n;
          VI.inc_shade st inc (Stackwalk.read st fr (Gcmaps.Loc.Lreg r)))
        fr.Stackwalk.fr_gcpoint.RM.reg_ptrs)
    frames;
  !n

(* Drain the work list completely, including spill-recovery passes. *)
let drain (st : VI.t) (inc : VI.inc_state) =
  let work = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    if inc.VI.inc_gray_len > 0 then begin
      inc.VI.inc_gray_len <- inc.VI.inc_gray_len - 1;
      work := !work + scan_object st inc inc.VI.inc_gray.(inc.VI.inc_gray_len)
    end
    else if inc.VI.inc_spilled then begin
      inc.VI.inc_spilled <- false;
      work := !work + rescan st inc
    end
    else continue_ := false
  done;
  !work

(* ------------------------------------------------------------------ *)
(* Cycle boundaries                                                    *)
(* ------------------------------------------------------------------ *)

let start_cycle (st : VI.t) (inc : VI.inc_state) =
  st.VI.gc.VI.collections <- st.VI.gc.VI.collections + 1;
  T.Metrics.incr c_collections;
  (* Fresh mark bits: the whole heap turns white. The bitset is cleared
     in place, not reallocated — an O(heap/62) Array.fill with no
     allocation, so the first (budgeted) slice of a cycle never triggers
     an OCaml-GC pause of its own. The width only changes if the guest
     heap was resized between cycles. *)
  if Support.Bitset.length inc.VI.inc_marks <> st.VI.from_words then
    inc.VI.inc_marks <- Support.Bitset.create st.VI.from_words
  else Support.Bitset.reset inc.VI.inc_marks;
  inc.VI.inc_gray_len <- 0;
  inc.VI.inc_spilled <- false;
  inc.VI.inc_work_base <- st.VI.alloc_words;
  inc.VI.inc_work_done <- 0;
  inc.VI.inc_phase <- VI.Inc_marking;
  let frames = Stackwalk.walk st in
  st.VI.gc.VI.frames_traced <- st.VI.gc.VI.frames_traced + List.length frames;
  shade_roots st inc frames

(* The final stop-the-world flip: rescan every root (an incremental-
   update collector must — the mutator may have kept the only pointer to
   a white object in a register since before marking began), drain the
   work list, and arm the sweep. The whole-heap snapshot of liveness is
   taken here: everything unmarked and below the captured frontier is
   garbage. *)
let flip (st : VI.t) (inc : VI.inc_state) =
  let t0 = now_ns () in
  let frames = Stackwalk.walk st in
  st.VI.gc.VI.frames_traced <- st.VI.gc.VI.frames_traced + List.length frames;
  (* Explicit sequencing: the roots must be shaded BEFORE the final drain
     ([+] evaluates right-to-left in OCaml — the one-expression form ran
     the drain first and left the re-shaded roots unscanned). *)
  let w_roots = shade_roots st inc frames in
  let w = w_roots + drain st inc in
  assert (inc.VI.inc_gray_len = 0 && not inc.VI.inc_spilled);
  inc.VI.inc_sweep_limit <- st.VI.alloc;
  inc.VI.inc_sweep_cursor <- st.VI.from_base;
  inc.VI.inc_run_lo <- -1;
  (* The free list is rebuilt by the sweep: old entries are fillers in
     the heap and will be rediscovered (coalesced with newly freed
     neighbours) as the cursor passes them. *)
  st.VI.free_list <- [];
  inc.VI.inc_phase <- VI.Inc_sweeping;
  T.Metrics.observe_ns h_flip (Int64.sub (now_ns ()) t0);
  w

(* Close the open free run at [hi]: write the filler header and publish
   the block. Blocks are prepended — first-fit order is then most-
   recently-swept first, which is deterministic (all that matters for the
   cross-engine image comparisons). *)
let close_run (st : VI.t) (inc : VI.inc_state) hi =
  if inc.VI.inc_run_lo >= 0 then begin
    let lo = inc.VI.inc_run_lo in
    inc.VI.inc_run_lo <- -1;
    let words = hi - lo in
    if words > 0 then begin
      Vm.Mem.set st.VI.mem lo (-words);
      st.VI.free_list <- (lo, words) :: st.VI.free_list
    end
  end

let finish_sweep (st : VI.t) (inc : VI.inc_state) =
  (* If the final run reaches the frontier (and nothing was bump-
     allocated past the flip), retreat the frontier instead of listing
     the block: bump room is better than a free-list block (no fit
     search, no split), and the retreat is a deterministic function of
     the same sweep state. *)
  (if inc.VI.inc_run_lo >= 0 && st.VI.alloc = inc.VI.inc_sweep_limit then begin
     st.VI.alloc <- inc.VI.inc_run_lo;
     inc.VI.inc_run_lo <- -1
   end);
  close_run st inc inc.VI.inc_sweep_limit;
  inc.VI.inc_phase <- VI.Inc_idle;
  inc.VI.inc_cycles <- inc.VI.inc_cycles + 1;
  inc.VI.inc_cycle_start_words <- st.VI.alloc_words

(* Sweep up to [quota] words from the cursor. Unmarked objects and old
   fillers merge into free runs; marked objects close the current run and
   survive (their mark bits die with the bitset at the next cycle
   start). Objects allocated after the flip sit beyond [inc_sweep_limit]
   and are never visited. *)
let sweep_chunk (st : VI.t) (inc : VI.inc_state) ~quota =
  let mem = st.VI.mem in
  let work = ref 0 in
  while !work < quota && inc.VI.inc_sweep_cursor < inc.VI.inc_sweep_limit do
    let a = inc.VI.inc_sweep_cursor in
    let h = mem.{a} in
    if h < 0 then begin
      let size = -h in
      if inc.VI.inc_run_lo < 0 then inc.VI.inc_run_lo <- a;
      inc.VI.inc_sweep_cursor <- a + size;
      work := !work + 1
    end
    else begin
      let size = object_words st a in
      if Support.Bitset.mem inc.VI.inc_marks (a - st.VI.from_base) then
        close_run st inc a
      else begin
        if inc.VI.inc_run_lo < 0 then inc.VI.inc_run_lo <- a;
        inc.VI.inc_swept_objects <- inc.VI.inc_swept_objects + 1;
        inc.VI.inc_swept_words <- inc.VI.inc_swept_words + size
      end;
      inc.VI.inc_sweep_cursor <- a + size;
      work := !work + size
    end
  done;
  if inc.VI.inc_sweep_cursor >= inc.VI.inc_sweep_limit then finish_sweep st inc;
  !work

(* ------------------------------------------------------------------ *)
(* Slices                                                              *)
(* ------------------------------------------------------------------ *)

(* Objects scanned between wall-clock checks in time mode: the budget's
   documented slack is one granule plus one object scan. *)
let mark_granule = 8

let run_work (st : VI.t) (inc : VI.inc_state) ~quota ~deadline =
  let work = ref 0 in
  let timed_out = ref false in
  let check_clock () =
    match deadline with
    | None -> ()
    | Some d -> if now_ns () >= d then timed_out := true
  in
  while (not !timed_out) && !work < quota && inc.VI.inc_phase <> VI.Inc_idle do
    (match inc.VI.inc_phase with
    | VI.Inc_idle -> ()
    | VI.Inc_marking ->
        if inc.VI.inc_gray_len = 0 then begin
          if inc.VI.inc_spilled then begin
            inc.VI.inc_spilled <- false;
            work := !work + rescan st inc
          end
          else work := !work + flip st inc
        end
        else begin
          let n = ref mark_granule in
          while !n > 0 && inc.VI.inc_gray_len > 0 do
            inc.VI.inc_gray_len <- inc.VI.inc_gray_len - 1;
            work := !work + scan_object st inc inc.VI.inc_gray.(inc.VI.inc_gray_len);
            decr n
          done
        end
    | VI.Inc_sweeping ->
        work :=
          !work
          + sweep_chunk st inc ~quota:(min (quota - !work) (mark_granule * 64)));
    check_clock ()
  done;
  !work

(* Work owed this cycle: proportional-to-allocation pacing. *)
let owed (st : VI.t) (inc : VI.inc_state) =
  (inc.VI.inc_ratio * (st.VI.alloc_words - inc.VI.inc_work_base))
  - inc.VI.inc_work_done

let verify_boundary (st : VI.t) ~phase =
  if Verify.post_enabled () then
    ignore (Verify.check st ~phase ~frames:(Stackwalk.walk st) ())

let slice (st : VI.t) (inc : VI.inc_state) ~start =
  let t0 = now_ns () in
  inc.VI.inc_slices <- inc.VI.inc_slices + 1;
  T.Metrics.incr c_slices;
  let deadline =
    if inc.VI.inc_budget_ns > 0 then
      Some (Int64.add t0 (Int64.of_int inc.VI.inc_budget_ns))
    else None
  in
  let w0 = if start then start_cycle st inc else 0 in
  let quota =
    if inc.VI.inc_budget_ns > 0 then max (owed st inc) inc.VI.inc_slice_work
    else inc.VI.inc_slice_work
  in
  let w = run_work st inc ~quota:(max 0 (quota - w0)) ~deadline in
  inc.VI.inc_work_done <- inc.VI.inc_work_done + w0 + w;
  let dt = Int64.sub (now_ns ()) t0 in
  T.Metrics.observe_ns h_slice dt;
  T.Metrics.observe_ns h_pause dt;
  let dt_i = Int64.to_int dt in
  if dt_i > inc.VI.inc_max_slice_ns then inc.VI.inc_max_slice_ns <- dt_i;
  if inc.VI.inc_budget_ns > 0 && dt_i > inc.VI.inc_budget_ns then begin
    inc.VI.inc_overruns <- inc.VI.inc_overruns + 1;
    T.Metrics.incr c_overruns;
    if Sys.getenv_opt "MM_INC_DEBUG" <> None then
      Printf.eprintf
        "[inc] overrun: dt=%dns start=%b w0=%d w=%d quota=%d phase=%s gray=%d\n%!"
        dt_i start w0 w quota
        (match inc.VI.inc_phase with
        | VI.Inc_idle -> "idle"
        | VI.Inc_marking -> "marking"
        | VI.Inc_sweeping -> "sweeping")
        inc.VI.inc_gray_len
  end;
  (* Tri-color and heap invariants at every slice boundary when the
     verifier is armed (the cost is the harness's, not the pause's). *)
  verify_boundary st ~phase:"slice"

(* The gc-point poll, installed as [Vm.Interp.inc_slice]. Both engines
   reach it through the shared [rt_alloc]/[Rt_gc_check] paths, so the
   pre-emption points are identical by construction. *)
let poll (st : VI.t) =
  match st.VI.inc with
  | None -> ()
  | Some inc -> (
      match inc.VI.inc_phase with
      | VI.Inc_idle ->
          if
            inc.VI.inc_slice_storm
            || st.VI.alloc_words - inc.VI.inc_cycle_start_words
               >= inc.VI.inc_trigger_words
          then slice st inc ~start:true
      | VI.Inc_marking | VI.Inc_sweeping ->
          if inc.VI.inc_slice_storm || owed st inc >= inc.VI.inc_slice_work then
            slice st inc ~start:false)

(* ------------------------------------------------------------------ *)
(* Forced (stop-the-world) finish                                      *)
(* ------------------------------------------------------------------ *)

(** The installed [collector] entry point: allocation failed (or a forced
    collection was requested), so a complete mark+sweep cycle runs
    stop-the-world. Any in-flight incremental cycle is {e abandoned}, not
    finished: the insertion barrier conservatively retains everything the
    mutator touched since that cycle's marking began (the classic
    incremental-update floating garbage), so finishing it can reclaim
    nothing at the very moment memory is exhausted. A fresh cycle from
    the roots reclaims exactly what a stop-the-world collection would —
    mid-sweep state needs no unwinding, because the fresh flip re-empties
    the free list and the full sweep re-parses every filler. This is the
    escalation backstop; the pacing exists to make it rare, and
    [--gc-stats] reports every occurrence. *)
let collect (st : VI.t) ~needed:_ =
  match st.VI.inc with
  | None -> ()
  | Some inc ->
      let t0 = now_ns () in
      inc.VI.inc_forced <- inc.VI.inc_forced + 1;
      T.Metrics.incr c_forced;
      ignore (start_cycle st inc);
      ignore (flip st inc);
      while inc.VI.inc_phase = VI.Inc_sweeping do
        ignore (sweep_chunk st inc ~quota:max_int)
      done;
      T.Metrics.observe_ns h_pause (Int64.sub (now_ns ()) t0);
      verify_boundary st ~phase:"post"

(* ------------------------------------------------------------------ *)
(* Configuration and installation                                      *)
(* ------------------------------------------------------------------ *)

let env_truthy name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let env_pos_int name =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n >= 1 -> Some n
  | _ -> None

(** [MM_GC_INCREMENTAL] flips every precise-collector entry point into
    incremental mode, exactly as [MM_GEN] does for generational mode. *)
let env_enabled () = env_truthy "MM_GC_INCREMENTAL"

(** Pause budget from [MM_PAUSE_BUDGET_US], if set. *)
let env_budget_us () = env_pos_int "MM_PAUSE_BUDGET_US"

let default_slice_work = 2048

(* Work ratio: GC work units retired per word allocated while a cycle is
   in flight. A cycle's total work is the live mark plus a full-heap
   sweep, so the ratio must cover (live + heap) / free-headroom with slack
   for floating garbage retained by the insertion barrier — at 4 the
   collector loses the race on ballast-heavy heaps (live ~ heap/3) and
   falls back to forced STW finishes, which is exactly the pause spike
   incremental mode exists to avoid. 16 finishes with margin across the
   bench and fault workloads while the trigger, not the ratio, still
   gates cycle frequency. *)
let default_ratio = 16

let install ?pause_budget_us ?slice_work ?work_ratio ?trigger_words ?gray_cap
    ?slice_storm ?barrier_storm (st : VI.t) : VI.inc_state =
  let pick opt env_name default =
    match opt with
    | Some v -> v
    | None -> ( match env_pos_int env_name with Some v -> v | None -> default)
  in
  let budget_us =
    match pause_budget_us with
    | Some u -> u
    | None -> ( match env_budget_us () with Some u -> u | None -> 0)
  in
  let slice_work = pick slice_work "MM_SLICE_WORK" default_slice_work in
  let ratio = pick work_ratio "MM_INC_RATIO" default_ratio in
  let trigger =
    pick trigger_words "MM_INC_TRIGGER_WORDS" (max 512 (st.VI.from_words / 4))
  in
  let cap =
    (* Default mark-stack capacity never spills on sane heaps (an object
       is at least 2 words); MM_INC_MARKSTACK shrinks it to exercise the
       spill recovery (fault injection). *)
    pick gray_cap "MM_INC_MARKSTACK" (min ((st.VI.from_words / 2) + 16) 65536)
  in
  let inc =
    {
      VI.inc_phase = VI.Inc_idle;
      inc_marks = Support.Bitset.create st.VI.from_words;
      inc_gray = Array.make (max 4 cap) 0;
      inc_gray_len = 0;
      inc_spilled = false;
      inc_sweep_cursor = st.VI.from_base;
      inc_sweep_limit = st.VI.from_base;
      inc_run_lo = -1;
      inc_ratio = ratio;
      inc_trigger_words = trigger;
      inc_slice_work = slice_work;
      inc_budget_ns = budget_us * 1000;
      inc_cycle_start_words = 0;
      inc_work_base = 0;
      inc_work_done = 0;
      inc_slice_storm =
        (match slice_storm with
        | Some b -> b
        | None -> env_truthy "MM_INC_SLICE_STORM");
      inc_barrier_storm =
        (match barrier_storm with
        | Some b -> b
        | None -> env_truthy "MM_INC_BARRIER_STORM");
      inc_cycles = 0;
      inc_slices = 0;
      inc_overruns = 0;
      inc_forced = 0;
      inc_max_slice_ns = 0;
      inc_rescans = 0;
      inc_barrier_execs = 0;
      inc_spills = 0;
      inc_marked_objects = 0;
      inc_swept_objects = 0;
      inc_swept_words = 0;
    }
  in
  st.VI.inc <- Some inc;
  st.VI.heap_fillers <- true;
  st.VI.inc_slice <- Some poll;
  st.VI.collector <- Some collect;
  if budget_us > 0 then T.Metrics.incr ~by:budget_us c_budget_us;
  inc

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  cycles : int;
  slices : int;
  overruns : int;
  forced : int;
  max_slice_ns : int;
  rescans : int;
  spills : int;
  barrier_execs : int;
  marked_objects : int;
  swept_objects : int;
  swept_words : int;
  budget_us : int;
}

let stats (st : VI.t) : stats option =
  match st.VI.inc with
  | None -> None
  | Some i ->
      Some
        {
          cycles = i.VI.inc_cycles;
          slices = i.VI.inc_slices;
          overruns = i.VI.inc_overruns;
          forced = i.VI.inc_forced;
          max_slice_ns = i.VI.inc_max_slice_ns;
          rescans = i.VI.inc_rescans;
          spills = i.VI.inc_spills;
          barrier_execs = i.VI.inc_barrier_execs;
          marked_objects = i.VI.inc_marked_objects;
          swept_objects = i.VI.inc_swept_objects;
          swept_words = i.VI.inc_swept_words;
          budget_us = i.VI.inc_budget_ns / 1000;
        }
