(** Generational collection layered on the unchanged gc-point tables: a
    bump-allocated nursery at the top of from-space, minor collections
    that promote survivors onto the old-generation frontier (no semispace
    flip), a remembered set filled by compiler-emitted write barriers, and
    fallback to the full {!Cheney} compaction when headroom runs out. The
    encoded tables are byte-identical to the non-generational build: the
    mode is a pure runtime switch. *)

val default_nursery_words : int -> int
(** Default nursery size for a given semispace size (a quarter of it,
    floored at 300 words and capped at the whole semispace). *)

val minor : Vm.Interp.t -> Vm.Interp.gen_state -> unit
(** One minor collection. The caller must have verified promotion
    headroom: old-generation free space at least the nursery's used
    words. Prefer {!collect}. *)

val collect : Vm.Interp.t -> needed:int -> unit
(** The generational policy: minor when survivors are guaranteed to fit,
    full {!Cheney.collect} otherwise. Installed by {!install}. *)

val install : ?nursery_words:int -> Vm.Interp.t -> unit
(** Put the machine in generational mode: initialize the nursery split
    and install {!collect} as the collector. *)

val env_enabled : unit -> bool
(** True when [MM_GEN] requests generational mode. *)

val env_nursery_words : unit -> int option
(** Nursery size override from [MM_NURSERY_WORDS]. *)
