(** The precise, fully compacting semispace collector.

    Every live object moves on every collection — the strongest exercise of
    the tables: tidy pointers in globals, stack slots and registers are
    forwarded; derived values are un-derived before the copy and re-derived
    after (paper §3). Derived values are never {e followed}: the dead-base
    rule guarantees any object reachable through a derived value is also
    reachable through one of its bases.

    Each collection is reported to the telemetry layer as a [gc.collect]
    span with four nested phase spans — [gc.stackwalk], [gc.underive],
    [gc.copy] (with a further [gc.forward_roots] sub-span) and
    [gc.rederive] — plus per-collection histogram observations, so
    [mmrun --trace]/[--gc-stats] and the bench harness all read one source
    of numbers. With telemetry disabled only the legacy [gc_stats] fields
    are touched, exactly as before. *)

module RM = Gcmaps.Rawmaps
module T = Telemetry

let now_ns = T.Control.now_ns

(* Telemetry handles (stable across Metrics.reset). *)
let c_collections = T.Metrics.counter "gc.collections"
let c_major = T.Metrics.counter "gc.major_collections"
let c_objects = T.Metrics.counter "gc.objects_forwarded"
let c_copy_words = T.Metrics.counter "gc.copy_words"
let h_pause = T.Metrics.histogram "gc.pause_ns"
let h_stackwalk = T.Metrics.histogram "gc.stackwalk_ns"
let h_underive = T.Metrics.histogram "gc.underive_ns"
let h_copy = T.Metrics.histogram "gc.copy_ns"
let h_rederive = T.Metrics.histogram "gc.rederive_ns"
let h_roots = T.Metrics.histogram "gc.forward_roots_ns"
let h_words = T.Metrics.histogram "gc.words_copied"
let h_objects = T.Metrics.histogram "gc.objects_copied"
let h_frames = T.Metrics.histogram "gc.frames"
let h_major_pause = T.Metrics.histogram "gc.major_pause_ns"
let h_major_words = T.Metrics.histogram "gc.major_words"
let h_is_minor = T.Metrics.histogram "gc.is_minor"

(* Fault-containment accounting (the Gc_pressure telemetry group). *)
let c_serial_replays = T.Metrics.counter "gc_pressure.serial_replays"
let c_worker_faults = T.Metrics.counter "gc_pressure.worker_faults"
let c_worker_timeouts = T.Metrics.counter "gc_pressure.worker_timeouts"

(* The copier is parametric in its source and destination regions so the
   same forwarding and scanning machinery serves both a full collection
   (source = from-space, destination = to-space) and a minor one (source =
   the nursery, destination = the old-generation frontier within the same
   semispace — see {!Nursery}). *)
type copier = {
  st : Vm.Interp.t;
  src_lo : int; (* objects in [src_lo, src_hi) are evacuated *)
  src_hi : int;
  dst_lo : int; (* evacuation region bounds *)
  dst_hi : int;
  mutable to_alloc : int;
}

let in_from c v = v >= c.src_lo && v < c.src_hi

(* A header inside [dst_lo, to_alloc) is a forwarding pointer: forwarding
   pointers are the only header-position values that can land there, and
   the test is tighter than the old whole-semispace check. *)
let in_to c v = v >= c.dst_lo && v < c.to_alloc

(** Forward a tidy pointer: copy its object to to-space if not already
    copied; pointers outside from-space (NIL, globals, static text, stack
    addresses) are left alone. *)
let bad_root c v reason =
  Vm.Vm_error.(
    error
      (Bad_root
         {
           loc = Printf.sprintf "from-space word %d" v;
           value = Vm.Mem.get c.st.Vm.Interp.mem v;
           reason;
         }))

let forward c v =
  if not (in_from c v) then v
  else begin
    let header = Vm.Mem.get c.st.Vm.Interp.mem v in
    if in_to c header then header (* already forwarded *)
    else begin
      let layouts = c.st.Vm.Interp.image.Vm.Image.layouts in
      if header < 0 || header >= Array.length layouts then
        bad_root c v
          (Printf.sprintf "header %d is not a type descriptor (untidy root?)" header);
      let size =
        match layouts.(header) with
        | Rt.Typedesc.Lfixed { words; _ } -> words
        | Rt.Typedesc.Lopen { elt_size; _ } ->
            let length = Vm.Mem.get c.st.Vm.Interp.mem (v + 1) in
            if length < 0 then
              bad_root c v (Printf.sprintf "open array has negative length %d" length);
            Rt.Typedesc.open_header_words + (length * elt_size)
      in
      (* Size checks before the blit: a fake "object" (an integer that
         happens to land on a plausible header) can claim any extent, and
         the blit would either throw a bare Invalid_argument or, worse,
         copy half the heap. *)
      if v + size > c.src_hi then
        bad_root c v (Printf.sprintf "object of %d words overruns its source region" size);
      if c.to_alloc + size > c.dst_hi then
        bad_root c v (Printf.sprintf "object of %d words overruns its destination region" size);
      let dst = c.to_alloc in
      Vm.Mem.blit c.st.Vm.Interp.mem ~src:v ~dst ~len:size;
      c.to_alloc <- dst + size;
      Vm.Mem.set c.st.Vm.Interp.mem v dst (* forwarding pointer *);
      c.st.Vm.Interp.gc.Vm.Interp.objects_copied <-
        c.st.Vm.Interp.gc.Vm.Interp.objects_copied + 1;
      T.Metrics.incr c_objects;
      (match c.st.Vm.Interp.prof with
      | Some p -> Profile.on_copy p ~src:v ~dst ~words:size
      | None -> ());
      dst
    end
  end

(* Scan one to-space object through its precomputed layout: the offset
   arrays are built once at image-load time, so the loop performs zero
   list (or any other) allocation per object — where it used to build a
   fresh offset list for every live object of every collection. *)
let scan_object c addr =
  let mem = c.st.Vm.Interp.mem in
  match c.st.Vm.Interp.image.Vm.Image.layouts.(Vm.Mem.unsafe_get mem addr) with
  | Rt.Typedesc.Lfixed { words; offsets } ->
      for k = 0 to Array.length offsets - 1 do
        let a = addr + Array.unsafe_get offsets k in
        Vm.Mem.unsafe_set mem a (forward c (Vm.Mem.unsafe_get mem a))
      done;
      addr + words
  | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
      let length = Vm.Mem.unsafe_get mem (addr + 1) in
      let nofs = Array.length elt_offsets in
      if nofs > 0 then begin
        let base = ref (addr + Rt.Typedesc.open_header_words) in
        for _i = 1 to length do
          for k = 0 to nofs - 1 do
            let a = !base + Array.unsafe_get elt_offsets k in
            Vm.Mem.unsafe_set mem a (forward c (Vm.Mem.unsafe_get mem a))
          done;
          base := !base + elt_size
        done
      end;
      addr + Rt.Typedesc.open_header_words + (length * elt_size)

(* ------------------------------------------------------------------ *)
(* Parallel scan                                                       *)
(* ------------------------------------------------------------------ *)

(* The scan frontier is processed in level-synchronized rounds: round k
   scans exactly the objects evacuated by round k-1 (round 0 scans the
   objects the root pass evacuated). Because the serial Cheney queue is
   FIFO, every level occupies a contiguous to-space range and the serial
   scan finishes level k before touching level k+1 — so a round-based scan
   that assigns destination addresses in the serial discovery order
   (frontier order × field order) reproduces the serial to-space layout
   word for word, for any worker count. Each wide round runs three phases:

     A (parallel) — workers claim fixed chunks of the frontier off an
       atomic cursor and classify every pointer field: targets already
       forwarded before this round are patched immediately (their
       destination is already fixed, so the write is deterministic and
       owned by this chunk); the rest are recorded as (field, target)
       pairs in per-chunk buffers.
     B (serial) — the recorded pairs are replayed in chunk × entry order:
       duplicates (targets forwarded earlier in this round) get the
       existing forwarding pointer; fresh targets are validated with
       exactly {!forward}'s checks and error messages, assigned the next
       bump address, and their original header is stashed — installing the
       forwarding pointer overwrites it before phase C copies the body.
       This is the only phase that moves [to_alloc], so the layout matches
       the serial collector's exactly.
     C (parallel) — workers blit the recorded bodies into to-space and
       write the stashed headers; the destination ranges are disjoint by
       construction, and no body word overlaps a phase-B write (the only
       from-space words B writes are headers, which C does not read).

   Rounds narrower than {!Gc_pool.par_threshold} (e.g. every round of a
   linked-list heap) run the fused serial scan instead — no dispatch, no
   buffers — so parallelism only engages where it can pay. All
   cross-domain visibility is through {!Gc_pool.run_guarded}'s mutex
   handshake.

   Fault containment: the parallel phases are dispatched guarded. If a
   worker raises, or misses the per-round watchdog deadline, the round is
   abandoned and replayed serially — which is sound because a failed
   phase A has only performed idempotent same-value patches of fields
   whose targets were forwarded in earlier rounds (phase B, the only
   mover of [to_alloc], has not run), and a failed phase C rewrites are
   redone in full (every C write is a deterministic function of phase B's
   committed records). On a timeout the stalled worker is still live and
   may keep writing, so the store is first {e quarantined}
   ({!Vm.Interp.quarantine_store}: the store is replaced by an identical
   copy, so the straggler's late writes land in an unreachable buffer —
   and any writes it made before the copy are same-value, so either
   snapshot order is the same heap), and the rest of the collection stays
   serial because the pool refuses dispatch until the straggler retires.
   Either way the result is byte-identical to the serial collector. *)

(* Size of an already-copied object, from its (valid) header. *)
let object_words layouts mem addr =
  match layouts.(Vm.Mem.unsafe_get mem addr) with
  | Rt.Typedesc.Lfixed { words; _ } -> words
  | Rt.Typedesc.Lopen { elt_size; _ } ->
      Rt.Typedesc.open_header_words + (Vm.Mem.unsafe_get mem (addr + 1) * elt_size)

(* Minimal growable int buffer (frontiers, phase buffers, copy records). *)
type ibuf = { mutable ib : int array; mutable in_ : int }

let ibuf_make cap = { ib = Array.make cap 0; in_ = 0 }

let[@inline] ibuf_push b v =
  if b.in_ = Array.length b.ib then begin
    let bigger = Array.make (2 * Array.length b.ib) 0 in
    Array.blit b.ib 0 bigger 0 b.in_;
    b.ib <- bigger
  end;
  b.ib.(b.in_) <- v;
  b.in_ <- b.in_ + 1

let scan_parallel c ~workers =
  let layouts = c.st.Vm.Interp.image.Vm.Image.layouts in
  let threshold = Gc_pool.par_threshold () in
  let deadline = Gc_pool.deadline_ns () in
  let cur = ref (ibuf_make 1024) and nxt = ref (ibuf_make 1024) in
  (* Round 0's frontier: whatever the root pass already evacuated. *)
  let seed = ref c.dst_lo in
  let mem0 = c.st.Vm.Interp.mem in
  while !seed < c.to_alloc do
    ibuf_push !cur !seed;
    seed := !seed + object_words layouts mem0 !seed
  done;
  let bufs = ref [||] and buf_lens = ref [||] in
  let copies = ibuf_make 4096 in
  let round = ref (-1) in
  let degraded = ref false in
  (* A guarded phase failed: count it, warn once, and on a timeout
     quarantine the store (the straggler may still be writing into the
     old one) and keep the rest of this collection serial — the pool
     refuses dispatch until the straggler retires anyway. *)
  let note_degrade status phase =
    c.st.Vm.Interp.gc.Vm.Interp.serial_replays <-
      c.st.Vm.Interp.gc.Vm.Interp.serial_replays + 1;
    T.Metrics.incr c_serial_replays;
    match status with
    | Gc_pool.Fault e ->
        T.Metrics.incr c_worker_faults;
        T.Log.warn_once
          "gc: worker fault in parallel phase %s (%s); round replayed serially"
          phase (Printexc.to_string e)
    | _ ->
        (* Timeout *)
        T.Metrics.incr c_worker_timeouts;
        degraded := true;
        Vm.Interp.quarantine_store c.st;
        T.Log.warn_once
          "gc: worker missed the round deadline in phase %s; store quarantined, collection degraded to serial"
          phase
  in
  while !cur.in_ > 0 do
    incr round;
    let frontier = !cur in
    let n = frontier.in_ in
    !nxt.in_ <- 0;
    (* Fused serial scan of this round's frontier, then a walk of the
       region it evacuated to build the next frontier. Runs narrow
       rounds, degraded (post-timeout) collections, and the replay of a
       round whose phase A was abandoned: replay is sound because an
       abandoned phase A has only patched fields whose targets were
       forwarded in earlier rounds — idempotent, and [scan_object] skips
       them (they no longer point into from-space) — while phase B, the
       only mover of [to_alloc], never ran. *)
    let serial_round () =
      let lo = c.to_alloc in
      for i = 0 to n - 1 do
        ignore (scan_object c frontier.ib.(i))
      done;
      let mem = c.st.Vm.Interp.mem in
      let a = ref lo in
      while !a < c.to_alloc do
        ibuf_push !nxt !a;
        a := !a + object_words layouts mem !a
      done
    in
    if n < threshold || !degraded then serial_round ()
    else begin
      let mem = c.st.Vm.Interp.mem in
      let r = !round in
      let chunk = max 32 (n / (workers * 4)) in
      let nchunks = (n + chunk - 1) / chunk in
      if Array.length !bufs < nchunks then begin
        bufs := Array.make nchunks [||];
        buf_lens := Array.make nchunks 0
      end;
      let bufs = !bufs and buf_lens = !buf_lens in
      let alloc0 = c.to_alloc in
      let src_lo = c.src_lo and src_hi = c.src_hi and dst_lo = c.dst_lo in
      (* --- phase A: classify fields, chunk-parallel (guarded). --- *)
      let cursor = Atomic.make 0 in
      let status_a =
        Gc_pool.run_guarded ~workers ~deadline_ns:deadline (fun w ->
          (match !Gc_pool.fault_hook with
          | Some h -> h ~phase:"A" ~round:r ~worker:w
          | None -> ());
          let visit local a =
            let v = Vm.Mem.unsafe_get mem a in
            if v >= src_lo && v < src_hi then begin
              let h = Vm.Mem.unsafe_get mem v in
              if h >= dst_lo && h < alloc0 then Vm.Mem.unsafe_set mem a h
              else begin
                ibuf_push local a;
                ibuf_push local v
              end
            end
          in
          let rec claim () =
            let k = Atomic.fetch_and_add cursor 1 in
            if k < nchunks then begin
              let local = ibuf_make 256 in
              let hi = min n ((k + 1) * chunk) in
              for i = k * chunk to hi - 1 do
                let addr = frontier.ib.(i) in
                match layouts.(Vm.Mem.unsafe_get mem addr) with
                | Rt.Typedesc.Lfixed { offsets; _ } ->
                    for j = 0 to Array.length offsets - 1 do
                      visit local (addr + Array.unsafe_get offsets j)
                    done
                | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
                    let nofs = Array.length elt_offsets in
                    if nofs > 0 then begin
                      let length = Vm.Mem.unsafe_get mem (addr + 1) in
                      let base = ref (addr + Rt.Typedesc.open_header_words) in
                      for _i = 1 to length do
                        for j = 0 to nofs - 1 do
                          visit local (!base + Array.unsafe_get elt_offsets j)
                        done;
                        base := !base + elt_size
                      done
                    end
              done;
              bufs.(k) <- local.ib;
              buf_lens.(k) <- local.in_;
              claim ()
            end
          in
          claim ())
      in
      match status_a with
      | Gc_pool.Fault _ | Gc_pool.Timeout ->
          note_degrade status_a "A";
          serial_round ()
      | Gc_pool.Done ->
      (* --- phase B: forward in serial discovery order. --- *)
      copies.in_ <- 0;
      for k = 0 to nchunks - 1 do
        let b = bufs.(k) and bn = buf_lens.(k) in
        let i = ref 0 in
        while !i < bn do
          let a = b.(!i) and v = b.(!i + 1) in
          i := !i + 2;
          let header = Vm.Mem.unsafe_get mem v in
          if in_to c header then Vm.Mem.unsafe_set mem a header
          else begin
            if header < 0 || header >= Array.length layouts then
              bad_root c v
                (Printf.sprintf "header %d is not a type descriptor (untidy root?)"
                   header);
            let size =
              match layouts.(header) with
              | Rt.Typedesc.Lfixed { words; _ } -> words
              | Rt.Typedesc.Lopen { elt_size; _ } ->
                  let length = Vm.Mem.get mem (v + 1) in
                  if length < 0 then
                    bad_root c v
                      (Printf.sprintf "open array has negative length %d" length);
                  Rt.Typedesc.open_header_words + (length * elt_size)
            in
            if v + size > c.src_hi then
              bad_root c v
                (Printf.sprintf "object of %d words overruns its source region" size);
            if c.to_alloc + size > c.dst_hi then
              bad_root c v
                (Printf.sprintf "object of %d words overruns its destination region"
                   size);
            let dst = c.to_alloc in
            c.to_alloc <- dst + size;
            Vm.Mem.unsafe_set mem v dst (* forwarding pointer *);
            Vm.Mem.unsafe_set mem a dst;
            ibuf_push copies v;
            ibuf_push copies dst;
            ibuf_push copies size;
            ibuf_push copies header;
            ibuf_push !nxt dst;
            c.st.Vm.Interp.gc.Vm.Interp.objects_copied <-
              c.st.Vm.Interp.gc.Vm.Interp.objects_copied + 1;
            T.Metrics.incr c_objects;
            match c.st.Vm.Interp.prof with
            | Some p -> Profile.on_copy p ~src:v ~dst ~words:size
            | None -> ()
          end
        done
      done;
      (* --- phase C: copy the bodies, chunk-parallel (guarded). --- *)
      let ncopies = copies.in_ / 4 in
      if ncopies > 0 then begin
        let carr = copies.ib in
        let cchunk = max 8 (ncopies / (workers * 4)) in
        let ncchunks = (ncopies + cchunk - 1) / cchunk in
        let ccursor = Atomic.make 0 in
        let status_c =
          Gc_pool.run_guarded ~workers ~deadline_ns:deadline (fun w ->
              (match !Gc_pool.fault_hook with
              | Some h -> h ~phase:"C" ~round:r ~worker:w
              | None -> ());
              let rec claim () =
                let k = Atomic.fetch_and_add ccursor 1 in
                if k < ncchunks then begin
                  let hi = min ncopies ((k + 1) * cchunk) in
                  for i = k * cchunk to hi - 1 do
                    let src = carr.(4 * i)
                    and dst = carr.((4 * i) + 1)
                    and size = carr.((4 * i) + 2)
                    and header = carr.((4 * i) + 3) in
                    Vm.Mem.unsafe_set mem dst header;
                    if size > 1 then
                      Vm.Mem.blit mem ~src:(src + 1) ~dst:(dst + 1) ~len:(size - 1)
                  done;
                  claim ()
                end
              in
              claim ())
        in
        match status_c with
        | Gc_pool.Done -> ()
        | s ->
            note_degrade s "C";
            (* Redo every copy serially on the (possibly quarantined)
               store: each phase-C write is a pure function of phase B's
               committed records, so the redo is idempotent whether the
               abandoned workers finished none, some or all of it. *)
            let mem = c.st.Vm.Interp.mem in
            for i = 0 to ncopies - 1 do
              let src = carr.(4 * i)
              and dst = carr.((4 * i) + 1)
              and size = carr.((4 * i) + 2)
              and header = carr.((4 * i) + 3) in
              Vm.Mem.unsafe_set mem dst header;
              if size > 1 then
                Vm.Mem.blit mem ~src:(src + 1) ~dst:(dst + 1) ~len:(size - 1)
            done
      end
    end;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done

(* Forward the tidy roots of one frame: stack-pointer table entries and
   register-pointer table entries (through the reconstruction map). *)
let forward_frame_roots c (fr : Stackwalk.frame) =
  List.iter
    (fun l ->
      let v = Stackwalk.read c.st fr l in
      Stackwalk.write c.st fr l (forward c v))
    fr.Stackwalk.fr_gcpoint.RM.stack_ptrs;
  List.iter
    (fun r ->
      let l = Gcmaps.Loc.Lreg r in
      let v = Stackwalk.read c.st fr l in
      Stackwalk.write c.st fr l (forward c v))
    fr.Stackwalk.fr_gcpoint.RM.reg_ptrs

let collect (st : Vm.Interp.t) ~needed =
  let t_start = now_ns () in
  let gcs = st.Vm.Interp.gc in
  gcs.Vm.Interp.collections <- gcs.Vm.Interp.collections + 1;
  T.Metrics.incr c_collections;
  (match st.Vm.Interp.prof with
  | Some p -> Profile.begin_collection p ~minor:false
  | None -> ());
  let objects0 = gcs.Vm.Interp.objects_copied in
  T.Trace.begin_span ~cat:"gc"
    ~args:[ ("collection", T.Json.Int gcs.Vm.Interp.collections) ]
    "gc.collect";
  (* --- stack tracing: locate tables, walk frames. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.stackwalk";
  let t_trace0 = now_ns () in
  let frames = Stackwalk.walk st in
  gcs.Vm.Interp.frames_traced <- gcs.Vm.Interp.frames_traced + List.length frames;
  let t_walk1 = now_ns () in
  T.Trace.end_span ~args:[ ("frames", T.Json.Int (List.length frames)) ] ();
  (* Optional pre-pass: check the heap and the roots the tables just
     produced before anything is moved, so a violation is attributed to
     the mutator (or the tables), not to this collection. *)
  if Verify.pre_enabled () then ignore (Verify.check st ~phase:"pre" ~frames ());
  (* --- un-derive: recover E for every live derived value. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.underive";
  let adjusted = Derived_update.adjust_all st frames in
  let t_trace1 = now_ns () in
  T.Trace.end_span ();
  (* Targets hold exactly E between un-derive and copy: snapshot it so the
     post-pass can re-check the §3 invariant over the moved values. *)
  let derived_snap =
    if Verify.post_enabled () then Some (Verify.snapshot_derived st adjusted) else None
  in
  (* --- copy phase --- *)
  T.Trace.begin_span ~cat:"gc" "gc.copy";
  (* (Re)establish a to-space at least as large as from-space before
     anything moves: with [from_words >= used >= live] the copy can never
     overrun its destination, whatever resizing has happened since the
     last collection. For the fixed-size configuration this reproduces
     the classic semispace alternation exactly. *)
  Vm.Interp.place_to_space st st.Vm.Interp.from_words;
  let c =
    {
      st;
      src_lo = st.Vm.Interp.from_base;
      src_hi = st.Vm.Interp.from_base + st.Vm.Interp.from_words;
      dst_lo = st.Vm.Interp.to_base;
      dst_hi = st.Vm.Interp.to_base + st.Vm.Interp.to_words;
      to_alloc = st.Vm.Interp.to_base;
    }
  in
  (* Global roots. *)
  List.iter
    (fun a ->
      Vm.Mem.set st.Vm.Interp.mem a (forward c (Vm.Mem.get st.Vm.Interp.mem a)))
    st.Vm.Interp.image.Vm.Image.global_roots;
  (* Stack and register roots (trace time, per the paper's accounting). *)
  T.Trace.begin_span ~cat:"gc" "gc.forward_roots";
  let t_roots0 = now_ns () in
  List.iter (forward_frame_roots c) frames;
  let t_roots1 = now_ns () in
  T.Trace.end_span ();
  (* Cheney scan: the exact serial loop at 1 worker, the level-synchronized
     parallel rounds otherwise — same layout, outputs and errors either
     way (see {!scan_parallel}). *)
  let workers = Gc_pool.workers () in
  if workers <= 1 then begin
    let scan = ref c.dst_lo in
    while !scan < c.to_alloc do
      scan := scan_object c !scan
    done
  end
  else scan_parallel c ~workers;
  let t_copy1 = now_ns () in
  T.Trace.end_span ();
  (* --- re-derive and flip --- *)
  T.Trace.begin_span ~cat:"gc" "gc.rederive";
  let t_red0 = now_ns () in
  Derived_update.rederive_all st adjusted;
  let t_red1 = now_ns () in
  T.Trace.end_span ();
  let old_from = st.Vm.Interp.from_base
  and old_fw = st.Vm.Interp.from_words in
  st.Vm.Interp.from_base <- st.Vm.Interp.to_base;
  st.Vm.Interp.from_words <- st.Vm.Interp.to_words;
  st.Vm.Interp.to_base <- old_from;
  st.Vm.Interp.to_words <- old_fw;
  st.Vm.Interp.alloc <- c.to_alloc;
  (* Post-collection safe point: the only place the semispace target size
     changes under the adaptive policy (no-op unless --heap-grow). Before
     [gen_reset_after_full] so the generational reset sees the final
     store geometry. *)
  Vm.Interp.resize_after_collection st ~needed;
  (* In generational mode the survivors become the new (empty-nursery) old
     generation and the remembered set is void; reset before the post-pass
     so the verifier sees a consistent generational view. *)
  Vm.Interp.gen_reset_after_full st;
  let words = c.to_alloc - st.Vm.Interp.from_base in
  gcs.Vm.Interp.words_copied <- gcs.Vm.Interp.words_copied + words;
  T.Metrics.incr ~by:words c_copy_words;
  let t_end = now_ns () in
  T.Trace.end_span ~args:[ ("words_copied", T.Json.Int words) ] ();
  let open Int64 in
  gcs.Vm.Interp.copy_ns <- add gcs.Vm.Interp.copy_ns (sub t_copy1 t_trace1);
  gcs.Vm.Interp.total_gc_ns <- add gcs.Vm.Interp.total_gc_ns (sub t_end t_start);
  gcs.Vm.Interp.trace_ns <-
    add gcs.Vm.Interp.trace_ns
      (add
         (add (sub t_trace1 t_trace0) (sub t_roots1 t_roots0))
         (sub t_red1 t_red0));
  if T.Control.on () then begin
    T.Metrics.observe_ns h_pause (sub t_end t_start);
    T.Metrics.observe_ns h_stackwalk (sub t_walk1 t_trace0);
    T.Metrics.observe_ns h_underive (sub t_trace1 t_walk1);
    T.Metrics.observe_ns h_copy (sub t_copy1 t_trace1);
    T.Metrics.observe_ns h_roots (sub t_roots1 t_roots0);
    T.Metrics.observe_ns h_rederive (sub t_red1 t_red0);
    T.Metrics.observe h_words (float_of_int words);
    T.Metrics.observe h_objects (float_of_int (gcs.Vm.Interp.objects_copied - objects0));
    T.Metrics.observe h_frames (float_of_int (List.length frames));
    T.Metrics.incr c_major;
    T.Metrics.observe_ns h_major_pause (sub t_end t_start);
    T.Metrics.observe h_major_words (float_of_int words);
    T.Metrics.observe h_is_minor 0.0
  end;
  (* Lifetime accounting: whatever is still keyed in the evacuated
     from-space was not forwarded, i.e. it died in this collection. *)
  (match st.Vm.Interp.prof with
  | Some p ->
      Profile.end_collection p ~src_lo:c.src_lo ~src_hi:c.src_hi;
      if Profile.census_due p then Census.take st p
  | None -> ());
  (* Post-pass, after the flip so it sees exactly the heap the mutator is
     about to resume on. *)
  match derived_snap with
  | Some snap -> ignore (Verify.check st ~phase:"post" ~frames ~derived:snap ())
  | None -> ()

(** A "null collection": locate the tables, walk the stack, adjust and
    immediately re-derive, moving nothing. Used to reproduce the paper's
    differencing methodology for the stack-trace timing (§6.3). *)
let trace_only (st : Vm.Interp.t) =
  let frames = Stackwalk.walk st in
  st.Vm.Interp.gc.Vm.Interp.frames_traced <-
    st.Vm.Interp.gc.Vm.Interp.frames_traced + List.length frames;
  let adjusted = Derived_update.adjust_all st frames in
  Derived_update.rederive_all st adjusted

let install (st : Vm.Interp.t) = st.Vm.Interp.collector <- Some collect
