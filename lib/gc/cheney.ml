(** The precise, fully compacting semispace collector.

    Every live object moves on every collection — the strongest exercise of
    the tables: tidy pointers in globals, stack slots and registers are
    forwarded; derived values are un-derived before the copy and re-derived
    after (paper §3). Derived values are never {e followed}: the dead-base
    rule guarantees any object reachable through a derived value is also
    reachable through one of its bases.

    Each collection is reported to the telemetry layer as a [gc.collect]
    span with four nested phase spans — [gc.stackwalk], [gc.underive],
    [gc.copy] (with a further [gc.forward_roots] sub-span) and
    [gc.rederive] — plus per-collection histogram observations, so
    [mmrun --trace]/[--gc-stats] and the bench harness all read one source
    of numbers. With telemetry disabled only the legacy [gc_stats] fields
    are touched, exactly as before. *)

module RM = Gcmaps.Rawmaps
module T = Telemetry

let now_ns = T.Control.now_ns

(* Telemetry handles (stable across Metrics.reset). *)
let c_collections = T.Metrics.counter "gc.collections"
let c_major = T.Metrics.counter "gc.major_collections"
let c_objects = T.Metrics.counter "gc.objects_forwarded"
let h_pause = T.Metrics.histogram "gc.pause_ns"
let h_stackwalk = T.Metrics.histogram "gc.stackwalk_ns"
let h_underive = T.Metrics.histogram "gc.underive_ns"
let h_copy = T.Metrics.histogram "gc.copy_ns"
let h_rederive = T.Metrics.histogram "gc.rederive_ns"
let h_roots = T.Metrics.histogram "gc.forward_roots_ns"
let h_words = T.Metrics.histogram "gc.words_copied"
let h_objects = T.Metrics.histogram "gc.objects_copied"
let h_frames = T.Metrics.histogram "gc.frames"
let h_major_pause = T.Metrics.histogram "gc.major_pause_ns"
let h_major_words = T.Metrics.histogram "gc.major_words"
let h_is_minor = T.Metrics.histogram "gc.is_minor"

(* The copier is parametric in its source and destination regions so the
   same forwarding and scanning machinery serves both a full collection
   (source = from-space, destination = to-space) and a minor one (source =
   the nursery, destination = the old-generation frontier within the same
   semispace — see {!Nursery}). *)
type copier = {
  st : Vm.Interp.t;
  src_lo : int; (* objects in [src_lo, src_hi) are evacuated *)
  src_hi : int;
  dst_lo : int; (* evacuation region bounds *)
  dst_hi : int;
  mutable to_alloc : int;
}

let in_from c v = v >= c.src_lo && v < c.src_hi

(* A header inside [dst_lo, to_alloc) is a forwarding pointer: forwarding
   pointers are the only header-position values that can land there, and
   the test is tighter than the old whole-semispace check. *)
let in_to c v = v >= c.dst_lo && v < c.to_alloc

(** Forward a tidy pointer: copy its object to to-space if not already
    copied; pointers outside from-space (NIL, globals, static text, stack
    addresses) are left alone. *)
let bad_root c v reason =
  Vm.Vm_error.(
    error
      (Bad_root { loc = Printf.sprintf "from-space word %d" v; value = c.st.Vm.Interp.mem.(v); reason }))

let forward c v =
  if not (in_from c v) then v
  else begin
    let header = c.st.Vm.Interp.mem.(v) in
    if in_to c header then header (* already forwarded *)
    else begin
      let layouts = c.st.Vm.Interp.image.Vm.Image.layouts in
      if header < 0 || header >= Array.length layouts then
        bad_root c v
          (Printf.sprintf "header %d is not a type descriptor (untidy root?)" header);
      let size =
        match layouts.(header) with
        | Rt.Typedesc.Lfixed { words; _ } -> words
        | Rt.Typedesc.Lopen { elt_size; _ } ->
            let length = c.st.Vm.Interp.mem.(v + 1) in
            if length < 0 then
              bad_root c v (Printf.sprintf "open array has negative length %d" length);
            Rt.Typedesc.open_header_words + (length * elt_size)
      in
      (* Size checks before the blit: a fake "object" (an integer that
         happens to land on a plausible header) can claim any extent, and
         Array.blit would either throw a bare Invalid_argument or, worse,
         copy half the heap. *)
      if v + size > c.src_hi then
        bad_root c v (Printf.sprintf "object of %d words overruns its source region" size);
      if c.to_alloc + size > c.dst_hi then
        bad_root c v (Printf.sprintf "object of %d words overruns its destination region" size);
      let dst = c.to_alloc in
      Array.blit c.st.Vm.Interp.mem v c.st.Vm.Interp.mem dst size;
      c.to_alloc <- dst + size;
      c.st.Vm.Interp.mem.(v) <- dst (* forwarding pointer *);
      c.st.Vm.Interp.gc.Vm.Interp.objects_copied <-
        c.st.Vm.Interp.gc.Vm.Interp.objects_copied + 1;
      T.Metrics.incr c_objects;
      (match c.st.Vm.Interp.prof with
      | Some p -> Profile.on_copy p ~src:v ~dst ~words:size
      | None -> ());
      dst
    end
  end

(* Scan one to-space object through its precomputed layout: the offset
   arrays are built once at image-load time, so the loop performs zero
   list (or any other) allocation per object — where it used to build a
   fresh offset list for every live object of every collection. *)
let scan_object c addr =
  let mem = c.st.Vm.Interp.mem in
  match c.st.Vm.Interp.image.Vm.Image.layouts.(mem.(addr)) with
  | Rt.Typedesc.Lfixed { words; offsets } ->
      for k = 0 to Array.length offsets - 1 do
        let a = addr + Array.unsafe_get offsets k in
        mem.(a) <- forward c mem.(a)
      done;
      addr + words
  | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
      let length = mem.(addr + 1) in
      let nofs = Array.length elt_offsets in
      if nofs > 0 then begin
        let base = ref (addr + Rt.Typedesc.open_header_words) in
        for _i = 1 to length do
          for k = 0 to nofs - 1 do
            let a = !base + Array.unsafe_get elt_offsets k in
            mem.(a) <- forward c mem.(a)
          done;
          base := !base + elt_size
        done
      end;
      addr + Rt.Typedesc.open_header_words + (length * elt_size)

(* Forward the tidy roots of one frame: stack-pointer table entries and
   register-pointer table entries (through the reconstruction map). *)
let forward_frame_roots c (fr : Stackwalk.frame) =
  List.iter
    (fun l ->
      let v = Stackwalk.read c.st fr l in
      Stackwalk.write c.st fr l (forward c v))
    fr.Stackwalk.fr_gcpoint.RM.stack_ptrs;
  List.iter
    (fun r ->
      let l = Gcmaps.Loc.Lreg r in
      let v = Stackwalk.read c.st fr l in
      Stackwalk.write c.st fr l (forward c v))
    fr.Stackwalk.fr_gcpoint.RM.reg_ptrs

let collect (st : Vm.Interp.t) ~needed =
  ignore needed;
  let t_start = now_ns () in
  let gcs = st.Vm.Interp.gc in
  gcs.Vm.Interp.collections <- gcs.Vm.Interp.collections + 1;
  T.Metrics.incr c_collections;
  (match st.Vm.Interp.prof with
  | Some p -> Profile.begin_collection p ~minor:false
  | None -> ());
  let objects0 = gcs.Vm.Interp.objects_copied in
  T.Trace.begin_span ~cat:"gc"
    ~args:[ ("collection", T.Json.Int gcs.Vm.Interp.collections) ]
    "gc.collect";
  (* --- stack tracing: locate tables, walk frames. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.stackwalk";
  let t_trace0 = now_ns () in
  let frames = Stackwalk.walk st in
  gcs.Vm.Interp.frames_traced <- gcs.Vm.Interp.frames_traced + List.length frames;
  let t_walk1 = now_ns () in
  T.Trace.end_span ~args:[ ("frames", T.Json.Int (List.length frames)) ] ();
  (* Optional pre-pass: check the heap and the roots the tables just
     produced before anything is moved, so a violation is attributed to
     the mutator (or the tables), not to this collection. *)
  if Verify.pre_enabled () then ignore (Verify.check st ~phase:"pre" ~frames ());
  (* --- un-derive: recover E for every live derived value. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.underive";
  let adjusted = Derived_update.adjust_all st frames in
  let t_trace1 = now_ns () in
  T.Trace.end_span ();
  (* Targets hold exactly E between un-derive and copy: snapshot it so the
     post-pass can re-check the §3 invariant over the moved values. *)
  let derived_snap =
    if Verify.post_enabled () then Some (Verify.snapshot_derived st adjusted) else None
  in
  (* --- copy phase --- *)
  T.Trace.begin_span ~cat:"gc" "gc.copy";
  let semi = st.Vm.Interp.image.Vm.Image.semi_words in
  let c =
    {
      st;
      src_lo = st.Vm.Interp.from_base;
      src_hi = st.Vm.Interp.from_base + semi;
      dst_lo = st.Vm.Interp.to_base;
      dst_hi = st.Vm.Interp.to_base + semi;
      to_alloc = st.Vm.Interp.to_base;
    }
  in
  (* Global roots. *)
  List.iter
    (fun a -> st.Vm.Interp.mem.(a) <- forward c st.Vm.Interp.mem.(a))
    st.Vm.Interp.image.Vm.Image.global_roots;
  (* Stack and register roots (trace time, per the paper's accounting). *)
  T.Trace.begin_span ~cat:"gc" "gc.forward_roots";
  let t_roots0 = now_ns () in
  List.iter (forward_frame_roots c) frames;
  let t_roots1 = now_ns () in
  T.Trace.end_span ();
  (* Cheney scan. *)
  let scan = ref c.dst_lo in
  while !scan < c.to_alloc do
    scan := scan_object c !scan
  done;
  let t_copy1 = now_ns () in
  T.Trace.end_span ();
  (* --- re-derive and flip --- *)
  T.Trace.begin_span ~cat:"gc" "gc.rederive";
  let t_red0 = now_ns () in
  Derived_update.rederive_all st adjusted;
  let t_red1 = now_ns () in
  T.Trace.end_span ();
  let old_from = st.Vm.Interp.from_base in
  st.Vm.Interp.from_base <- st.Vm.Interp.to_base;
  st.Vm.Interp.to_base <- old_from;
  st.Vm.Interp.alloc <- c.to_alloc;
  (* In generational mode the survivors become the new (empty-nursery) old
     generation and the remembered set is void; reset before the post-pass
     so the verifier sees a consistent generational view. *)
  Vm.Interp.gen_reset_after_full st;
  let words = c.to_alloc - st.Vm.Interp.from_base in
  gcs.Vm.Interp.words_copied <- gcs.Vm.Interp.words_copied + words;
  let t_end = now_ns () in
  T.Trace.end_span ~args:[ ("words_copied", T.Json.Int words) ] ();
  let open Int64 in
  gcs.Vm.Interp.total_gc_ns <- add gcs.Vm.Interp.total_gc_ns (sub t_end t_start);
  gcs.Vm.Interp.trace_ns <-
    add gcs.Vm.Interp.trace_ns
      (add
         (add (sub t_trace1 t_trace0) (sub t_roots1 t_roots0))
         (sub t_red1 t_red0));
  if T.Control.on () then begin
    T.Metrics.observe_ns h_pause (sub t_end t_start);
    T.Metrics.observe_ns h_stackwalk (sub t_walk1 t_trace0);
    T.Metrics.observe_ns h_underive (sub t_trace1 t_walk1);
    T.Metrics.observe_ns h_copy (sub t_copy1 t_trace1);
    T.Metrics.observe_ns h_roots (sub t_roots1 t_roots0);
    T.Metrics.observe_ns h_rederive (sub t_red1 t_red0);
    T.Metrics.observe h_words (float_of_int words);
    T.Metrics.observe h_objects (float_of_int (gcs.Vm.Interp.objects_copied - objects0));
    T.Metrics.observe h_frames (float_of_int (List.length frames));
    T.Metrics.incr c_major;
    T.Metrics.observe_ns h_major_pause (sub t_end t_start);
    T.Metrics.observe h_major_words (float_of_int words);
    T.Metrics.observe h_is_minor 0.0
  end;
  (* Lifetime accounting: whatever is still keyed in the evacuated
     from-space was not forwarded, i.e. it died in this collection. *)
  (match st.Vm.Interp.prof with
  | Some p ->
      Profile.end_collection p ~src_lo:c.src_lo ~src_hi:c.src_hi;
      if Profile.census_due p then Census.take st p
  | None -> ());
  (* Post-pass, after the flip so it sees exactly the heap the mutator is
     about to resume on. *)
  match derived_snap with
  | Some snap -> ignore (Verify.check st ~phase:"post" ~frames ~derived:snap ())
  | None -> ()

(** A "null collection": locate the tables, walk the stack, adjust and
    immediately re-derive, moving nothing. Used to reproduce the paper's
    differencing methodology for the stack-trace timing (§6.3). *)
let trace_only (st : Vm.Interp.t) =
  let frames = Stackwalk.walk st in
  st.Vm.Interp.gc.Vm.Interp.frames_traced <-
    st.Vm.Interp.gc.Vm.Interp.frames_traced + List.length frames;
  let adjusted = Derived_update.adjust_all st frames in
  Derived_update.rederive_all st adjusted

let install (st : Vm.Interp.t) = st.Vm.Interp.collector <- Some collect
