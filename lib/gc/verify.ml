(** Post- (and optionally pre-) collection heap-and-root verification.

    The paper's machinery only works if the compiler-emitted tables are
    exactly right — "an incorrect program can destroy data even in
    type-safe languages" (§2). This module re-derives the collector's
    invariants from scratch after every collection and reports every
    violation it finds, instead of letting a wrong table entry surface as
    silent data corruption a million instructions later:

    - the live region [from_base, alloc) parses as a sequence of valid
      objects: every header names a real type descriptor and every
      object's size keeps it inside the live region;
    - every heap pointer field of every live object is NIL, a non-heap
      address (static text), or the address of a live object's header;
    - every global, stack and register root the tables call tidy
      satisfies the same rule;
    - frame pointers of the walked stack lie inside the stack segment;
    - every derived value re-derives consistently: the E recovered by the
      un-derive step equals [target − Σplus + Σminus] recomputed from the
      post-collection values (the §3 invariant [target = Σplus − Σminus + E]).

    Checks accumulate into a {!report} rather than dying on the first
    failure; a non-empty report raises [Vm.Vm_error.Verify_failed].

    Both passes are off by default and cost one flag test per collection
    when disabled (telemetry-style). They are enabled by [mmrun
    --verify-heap] / [--verify-pre], or by the [MM_VERIFY_HEAP] /
    [MM_VERIFY_PRE] environment variables so a whole test run can be
    forced through verification without threading flags. *)

module RM = Gcmaps.Rawmaps
module L = Gcmaps.Loc

let c_runs = Telemetry.Metrics.counter "verify.runs"
let c_violations = Telemetry.Metrics.counter "verify.violations"

(* ------------------------------------------------------------------ *)
(* Switches                                                            *)
(* ------------------------------------------------------------------ *)

let env_on name = match Sys.getenv_opt name with Some ("" | "0") | None -> false | Some _ -> true
let post_flag = ref (env_on "MM_VERIFY_HEAP")
let pre_flag = ref (env_on "MM_VERIFY_PRE")
let set_post b = post_flag := b
let set_pre b = pre_flag := b
let post_enabled () = !post_flag
let pre_enabled () = !pre_flag

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  collection : int;
  phase : string; (* "pre" | "post" *)
  objects : int; (* live objects walked *)
  roots : int; (* global + stack + register roots checked *)
  derived : int; (* derived entries re-checked *)
  violations : string list;
}

let last : report option ref = ref None
let last_report () = !last

(* Cap the accumulated violations: one corrupt header typically cascades,
   and the report is for a human. *)
let max_violations = 64

type ctx = {
  st : Vm.Interp.t;
  mutable violations : string list; (* reversed *)
  mutable nviol : int;
  mutable objects : int;
  mutable roots : int;
  mutable nderived : int;
  starts : (int, int) Hashtbl.t; (* object header address -> size *)
  mutable walk_ok : bool; (* heap parse completed; starts is total *)
}

let violate c fmt =
  Printf.ksprintf
    (fun s ->
      c.nviol <- c.nviol + 1;
      if c.nviol <= max_violations then c.violations <- s :: c.violations)
    fmt

(* ------------------------------------------------------------------ *)
(* Heap walk                                                           *)
(* ------------------------------------------------------------------ *)

(* The heap region is everything from [heap_base] to the end of the
   current store: the heap is the last region of the memory map, and the
   adaptive policy may have grown or shrunk the store since startup, so
   the bound is read from the live store, not the image. *)
let heap_lo (st : Vm.Interp.t) = st.Vm.Interp.image.Vm.Image.heap_base
let heap_hi (st : Vm.Interp.t) = Vm.Mem.length st.Vm.Interp.mem

let in_heap_region st v = v >= heap_lo st && v < heap_hi st

(* In generational mode the live part of from-space is two regions: the
   old generation at the bottom and the nursery at the top, with dead
   space between the frontiers. *)
let in_live st v =
  match st.Vm.Interp.gen with
  | None -> v >= st.Vm.Interp.from_base && v < st.Vm.Interp.alloc
  | Some g ->
      (v >= st.Vm.Interp.from_base && v < g.Vm.Interp.old_alloc)
      || (v >= g.Vm.Interp.nursery_base && v < g.Vm.Interp.nursery_alloc)

let in_nursery st v =
  match st.Vm.Interp.gen with
  | None -> false
  | Some g -> v >= g.Vm.Interp.nursery_base && v < g.Vm.Interp.nursery_alloc

(* A value is a valid pointer target iff it is not a heap-region address
   at all (NIL, a global, static text — the tables legitimately cover
   such references), or it is the header address of a live object. Heap
   addresses outside the live range, or inside an object, are exactly the
   dangling/interior references a table bug produces. *)
let check_target c ~what v =
  if in_heap_region c.st v then begin
    if not (in_live c.st v) then
      violate c "%s holds %d: inside the heap but outside every live region" what v
    else if c.walk_ok && not (Hashtbl.mem c.starts v) then
      violate c "%s holds %d: inside the live region but not an object header" what v
  end

(* Parse one live region as a sequence of valid objects. *)
let walk_region c lo hi =
  let st = c.st in
  let mem = st.Vm.Interp.mem in
  let layouts = st.Vm.Interp.image.Vm.Image.layouts in
  let addr = ref lo in
  try
    while !addr < hi do
      let header = mem.{!addr} in
      (* Incremental mode frees in place: a negative header [-size] is a
         filler (free block), parsed but not an object. *)
      if header < 0 && st.Vm.Interp.inc <> None then begin
        let size = -header in
        if !addr + size > hi then begin
          violate c "filler at %d (size %d words) overruns the live region end %d" !addr size
            hi;
          raise Exit
        end;
        addr := !addr + size
      end
      else begin
        if header < 0 || header >= Array.length layouts then begin
          violate c "object at %d has header %d, not a type descriptor (0..%d)" !addr header
            (Array.length layouts - 1);
          raise Exit
        end;
        let size =
          match layouts.(header) with
          | Rt.Typedesc.Lfixed { words; _ } -> words
          | Rt.Typedesc.Lopen { elt_size; _ } ->
              let length = mem.{!addr + 1} in
              if length < 0 then begin
                violate c "open array at %d has negative length %d" !addr length;
                raise Exit
              end;
              Rt.Typedesc.open_header_words + (length * elt_size)
        in
        if size <= 0 || !addr + size > hi then begin
          violate c "object at %d (size %d words) overruns the live region end %d" !addr size hi;
          raise Exit
        end;
        Hashtbl.replace c.starts !addr size;
        c.objects <- c.objects + 1;
        addr := !addr + size
      end
    done
  with Exit -> c.walk_ok <- false

let walk_heap c =
  let st = c.st in
  let lo = st.Vm.Interp.from_base in
  let fw = st.Vm.Interp.from_words in
  let tb = st.Vm.Interp.to_base and tw = st.Vm.Interp.to_words in
  (* Geometry sanity under the adaptive policy: both spaces must lie
     inside the heap region of the current store, and must not overlap —
     the tracked fields replace the fixed two-semispace layout check. *)
  if lo < heap_lo st || fw < 0 || lo + fw > heap_hi st then begin
    violate c "from-space [%d, %d) outside the heap region [%d, %d)" lo (lo + fw)
      (heap_lo st) (heap_hi st);
    c.walk_ok <- false
  end
  else if tb < heap_lo st || tw < 0 || tb + tw > heap_hi st then begin
    violate c "to-space [%d, %d) outside the heap region [%d, %d)" tb (tb + tw)
      (heap_lo st) (heap_hi st);
    c.walk_ok <- false
  end
  else if tb < lo + fw && lo < tb + tw then begin
    violate c "to-space [%d, %d) overlaps from-space [%d, %d)" tb (tb + tw) lo (lo + fw);
    c.walk_ok <- false
  end
  else
    match st.Vm.Interp.gen with
    | None ->
        let hi = st.Vm.Interp.alloc in
        if hi < lo || hi > lo + fw then begin
          violate c "allocation frontier %d outside the current from-space [%d, %d]" hi lo
            (lo + fw);
          c.walk_ok <- false
        end
        else walk_region c lo hi
    | Some g ->
        (* Two live regions: old generation, then the nursery. *)
        let old_hi = g.Vm.Interp.old_alloc in
        let nb = g.Vm.Interp.nursery_base and na = g.Vm.Interp.nursery_alloc in
        if old_hi < lo || old_hi > nb || nb > na || na > lo + fw then begin
          violate c
            "generational frontiers out of order: from_base %d <= old_alloc %d <= \
             nursery_base %d <= nursery_alloc %d <= %d violated"
            lo old_hi nb na (lo + fw);
          c.walk_ok <- false
        end
        else begin
          (* Pool chunks leave object-free gaps (unfilled chunk tails)
             inside the old generation; the linear parse must step over
             them. The gap list is sorted and every gap lies within
             [from_base, old_alloc). *)
          let lo_ref = ref lo in
          List.iter
            (fun (glo, ghi) ->
              if c.walk_ok && glo <= old_hi then begin
                walk_region c !lo_ref (min glo old_hi);
                lo_ref := ghi
              end)
            (Vm.Interp.pool_gaps st);
          if c.walk_ok && !lo_ref < old_hi then walk_region c !lo_ref old_hi;
          if c.walk_ok then walk_region c nb na
        end

(* Mid-sweep, garbage objects above the cursor may legitimately point at
   blocks already turned into fillers below it — they are dead, the
   collector just has not reached them yet. Field checks are therefore
   restricted to objects the flip proved live (marked) or allocated after
   the flip (at or beyond the captured sweep limit). In every other phase
   all parsed objects are checked: live objects never reference fillers
   (inductively — a filler was garbage when created, so nothing live
   pointed at it, and the mutator only stores pointers it derived from
   live objects). *)
let field_checkable c addr =
  match c.st.Vm.Interp.inc with
  | Some inc when inc.Vm.Interp.inc_phase = Vm.Interp.Inc_sweeping ->
      addr >= inc.Vm.Interp.inc_sweep_limit
      || Support.Bitset.mem inc.Vm.Interp.inc_marks (addr - c.st.Vm.Interp.from_base)
  | _ -> true

(* Second pass over the parsed objects: every pointer field must reference
   a valid target. Only meaningful when the parse completed. *)
let check_heap_fields c =
  if c.walk_ok then begin
    let mem = c.st.Vm.Interp.mem in
    let layouts = c.st.Vm.Interp.image.Vm.Image.layouts in
    Hashtbl.iter
      (fun addr _size ->
        if field_checkable c addr then
        match layouts.(mem.{addr}) with
        | Rt.Typedesc.Lfixed { offsets; _ } ->
            Array.iter
              (fun o -> check_target c ~what:(Printf.sprintf "heap word %d" (addr + o)) mem.{addr + o})
              offsets
        | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
            if Array.length elt_offsets > 0 then begin
              let length = mem.{addr + 1} in
              for i = 0 to length - 1 do
                let base = addr + Rt.Typedesc.open_header_words + (i * elt_size) in
                Array.iter
                  (fun o -> check_target c ~what:(Printf.sprintf "heap word %d" (base + o)) mem.{base + o})
                  elt_offsets
              done
            end)
      c.starts
  end

(* Tri-color invariant (incremental marking, checked at slice
   boundaries): a black object — marked and no longer on the mark stack —
   must not reference an unmarked (white) object. The insertion barrier
   shades every stored pointer, so the only way to create a black→white
   edge is a missing or wrongly eliminated barrier; this check catches it
   at the first slice boundary instead of as a reclaimed-live-object
   corruption after the flip. Skipped while the mark stack has spilled
   (marked-but-unscanned objects are then indistinguishable from black);
   under barrier-storm fault injection re-grayed black objects simply
   land in the gray set and are skipped, which only weakens the check. *)
let check_tricolor c =
  match c.st.Vm.Interp.inc with
  | Some inc
    when inc.Vm.Interp.inc_phase = Vm.Interp.Inc_marking
         && (not inc.Vm.Interp.inc_spilled)
         && c.walk_ok ->
      let st = c.st in
      let mem = st.Vm.Interp.mem in
      let layouts = st.Vm.Interp.image.Vm.Image.layouts in
      let base = st.Vm.Interp.from_base in
      let marked a = Support.Bitset.mem inc.Vm.Interp.inc_marks (a - base) in
      let gray = Hashtbl.create 64 in
      for i = 0 to inc.Vm.Interp.inc_gray_len - 1 do
        Hashtbl.replace gray inc.Vm.Interp.inc_gray.(i) ()
      done;
      let in_from v = v >= base && v < st.Vm.Interp.alloc in
      let check_edge addr a =
        let v = mem.{a} in
        if in_from v && not (marked v) then
          violate c
            "tri-color violation: black object at %d (word %d) points at unmarked %d" addr a
            v
      in
      Hashtbl.iter
        (fun addr _size ->
          if marked addr && not (Hashtbl.mem gray addr) then
            match layouts.(mem.{addr}) with
            | Rt.Typedesc.Lfixed { offsets; _ } ->
                Array.iter (fun o -> check_edge addr (addr + o)) offsets
            | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
                if Array.length elt_offsets > 0 then begin
                  let length = mem.{addr + 1} in
                  for i = 0 to length - 1 do
                    let b = addr + Rt.Typedesc.open_header_words + (i * elt_size) in
                    Array.iter (fun o -> check_edge addr (b + o)) elt_offsets
                  done
                end)
        c.starts
  | _ -> ()

(* Generational invariant: every old-generation slot holding a nursery
   pointer must be covered — recorded in the remembered set by a write
   barrier, or inside a pretenured object, which minor collections scan
   wholesale. An uncovered old→young reference is exactly the bug a
   missing (or wrongly eliminated) barrier produces: the next minor
   collection would leave it dangling. *)
let check_old_young c =
  match c.st.Vm.Interp.gen with
  | None -> ()
  | Some g ->
      if c.walk_ok then begin
        let mem = c.st.Vm.Interp.mem in
        let layouts = c.st.Vm.Interp.image.Vm.Image.layouts in
        let big = Hashtbl.create 16 in
        List.iter (fun a -> Hashtbl.replace big a ()) g.Vm.Interp.big_objects;
        (* Pool-resident objects are wholesale-scanned at every minor, so
           (like the pretenured big objects) their slots need no remembered
           set entry. *)
        let pool_ranges = Vm.Interp.pool_filled_ranges c.st in
        let in_pool owner =
          List.exists (fun (lo, hi) -> owner >= lo && owner < hi) pool_ranges
        in
        let check_slot owner a =
          let v = mem.{a} in
          if
            in_nursery c.st v
            && (not (Remset.mem c.st g a))
            && (not (Hashtbl.mem big owner))
            && not (in_pool owner)
          then
            violate c
              "old-generation word %d holds nursery pointer %d but is neither remembered \
               nor inside a pretenured or pooled object"
              a v
        in
        Hashtbl.iter
          (fun addr _size ->
            if addr < g.Vm.Interp.old_alloc then
              match layouts.(mem.{addr}) with
              | Rt.Typedesc.Lfixed { offsets; _ } ->
                  Array.iter (fun o -> check_slot addr (addr + o)) offsets
              | Rt.Typedesc.Lopen { elt_size; elt_offsets } ->
                  if Array.length elt_offsets > 0 then begin
                    let length = mem.{addr + 1} in
                    for i = 0 to length - 1 do
                      let base = addr + Rt.Typedesc.open_header_words + (i * elt_size) in
                      Array.iter (fun o -> check_slot addr (base + o)) elt_offsets
                    done
                  end)
          c.starts
      end

(* ------------------------------------------------------------------ *)
(* Roots                                                               *)
(* ------------------------------------------------------------------ *)

let check_global_roots c =
  List.iter
    (fun a ->
      c.roots <- c.roots + 1;
      check_target c ~what:(Printf.sprintf "global root at %d" a) c.st.Vm.Interp.mem.{a})
    c.st.Vm.Interp.image.Vm.Image.global_roots

let check_frame_roots c (fr : Stackwalk.frame) =
  let img = c.st.Vm.Interp.image in
  if fr.Stackwalk.fr_fp < img.Vm.Image.stack_base || fr.Stackwalk.fr_fp >= img.Vm.Image.stack_top
  then
    violate c "frame of proc %d has fp %d outside the stack [%d, %d)" fr.Stackwalk.fr_fid
      fr.Stackwalk.fr_fp img.Vm.Image.stack_base img.Vm.Image.stack_top;
  if fr.Stackwalk.fr_sp < img.Vm.Image.stack_base || fr.Stackwalk.fr_sp > fr.Stackwalk.fr_fp then
    violate c "frame of proc %d has sp %d outside [stack_base, fp=%d]" fr.Stackwalk.fr_fid
      fr.Stackwalk.fr_sp fr.Stackwalk.fr_fp;
  let where l =
    Printf.sprintf "proc %d %s root %s" fr.Stackwalk.fr_fid
      (match l with L.Lreg _ -> "register" | L.Lmem _ -> "stack")
      (L.to_string l)
  in
  List.iter
    (fun l ->
      c.roots <- c.roots + 1;
      check_target c ~what:(where l) (Stackwalk.read c.st fr l))
    fr.Stackwalk.fr_gcpoint.RM.stack_ptrs;
  List.iter
    (fun r ->
      let l = L.Lreg r in
      c.roots <- c.roots + 1;
      check_target c ~what:(where l) (Stackwalk.read c.st fr l))
    fr.Stackwalk.fr_gcpoint.RM.reg_ptrs

(* ------------------------------------------------------------------ *)
(* Derived values (§3 invariant)                                       *)
(* ------------------------------------------------------------------ *)

(** The E of each live derived value, captured between the un-derive step
    (when targets hold exactly E) and the copy. After re-derivation the
    invariant [E = target − Σplus + Σminus] must hold again over the
    {e moved} values; {!check_derived} recomputes it. *)
type derived_snapshot = (Stackwalk.frame * RM.deriv_entry * int) list

let snapshot_derived (st : Vm.Interp.t)
    (adjusted : (Stackwalk.frame * RM.deriv_entry list) list) : derived_snapshot =
  List.concat_map
    (fun (fr, entries) ->
      List.map (fun (e : RM.deriv_entry) -> (fr, e, Stackwalk.read st fr e.RM.target)) entries)
    adjusted

let check_derived c (snap : derived_snapshot) =
  List.iter
    (fun ((fr : Stackwalk.frame), (e : RM.deriv_entry), expected_e) ->
      c.nderived <- c.nderived + 1;
      let v = ref (Stackwalk.read c.st fr e.RM.target) in
      List.iter (fun b -> v := !v - Stackwalk.read c.st fr b) e.RM.plus;
      List.iter (fun b -> v := !v + Stackwalk.read c.st fr b) e.RM.minus;
      if !v <> expected_e then
        violate c
          "derived value %s in proc %d re-derives with E=%d, un-derive recovered E=%d"
          (L.to_string e.RM.target) fr.Stackwalk.fr_fid !v expected_e)
    snap

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Run a full verification pass. [frames] is the stack walk of the
    collection being checked (the verifier never re-walks, so a pre-pass
    sees exactly the frames the collector is about to trust); [derived]
    is the E snapshot for post-passes.
    @raise Vm.Vm_error.Error [Verify_failed] if any check fails. *)
let check (st : Vm.Interp.t) ~phase ~frames ?(derived = []) () : report =
  Telemetry.Metrics.incr c_runs;
  let c =
    {
      st;
      violations = [];
      nviol = 0;
      objects = 0;
      roots = 0;
      nderived = 0;
      starts = Hashtbl.create 256;
      walk_ok = true;
    }
  in
  Telemetry.Trace.begin_span ~cat:"gc" "gc.verify";
  walk_heap c;
  check_heap_fields c;
  check_tricolor c;
  check_old_young c;
  check_global_roots c;
  List.iter (check_frame_roots c) frames;
  check_derived c derived;
  Telemetry.Trace.end_span ~args:[ ("phase", Telemetry.Json.Str phase) ] ();
  let violations =
    let vs = List.rev c.violations in
    if c.nviol > max_violations then
      vs @ [ Printf.sprintf "... and %d more" (c.nviol - max_violations) ]
    else vs
  in
  let r =
    {
      collection = st.Vm.Interp.gc.Vm.Interp.collections;
      phase;
      objects = c.objects;
      roots = c.roots;
      derived = c.nderived;
      violations;
    }
  in
  last := Some r;
  if c.nviol > 0 then begin
    Telemetry.Metrics.incr ~by:c.nviol c_violations;
    Vm.Vm_error.(
      error (Verify_failed { collection = r.collection; phase; violations = r.violations }))
  end;
  r
