(** The two-step update of derived values (paper §3).

    Step 1 (before anything moves): for every live derived value
    [a = Σp − Σq + E], compute and store E by applying the inverses:
    [a := a − Σp + Σq]. Step 2 (after collection): re-derive from the new
    base values: [a := a + Σp' − Σq'].

    Ordering: a derived value is adjusted before any of its base values
    (the table order guarantees this within a gc-point), and callee frames
    are processed before their callers; re-derivation happens in exactly
    the reverse order. *)

module RM = Gcmaps.Rawmaps

(* Telemetry: entries un-derived and re-derived. The two counters must end
   up equal after every collection — step 2 replays exactly the entry lists
   step 1 returned (an invariant the telemetry test suite checks). *)
let c_underived = Telemetry.Metrics.counter "derived.underived"
let c_rederived = Telemetry.Metrics.counter "derived.rederived"

(* The derivation entries active at a frame's gc-point: the unconditional
   ones plus, for each ambiguous derivation, the case selected by the path
   variable's current value (paper §4). The table builder orders the
   unconditional entries derived-before-base, but variant cases are stored
   apart from that sequence, so the combined list must be re-ordered here:
   a chain like [a = v + E1; v = b + E2] with [v]'s entry coming from a
   variant would otherwise un-derive [v] first, leaving [a]'s recovered E
   contaminated with a soon-to-move pointer. *)
let active_entries (st : Vm.Interp.t) (fr : Stackwalk.frame) : RM.deriv_entry list =
  let chosen =
    List.filter_map
      (fun (v : RM.variant) ->
        let path_value = Stackwalk.read st fr v.RM.path_loc in
        List.assoc_opt path_value v.RM.cases)
      fr.fr_gcpoint.RM.variants
  in
  match chosen with
  | [] -> fr.fr_gcpoint.RM.derivs
  | _ -> RM.order_derivs (chosen @ fr.fr_gcpoint.RM.derivs)

let adjust_entry st fr (e : RM.deriv_entry) =
  let a = ref (Stackwalk.read st fr e.RM.target) in
  List.iter (fun b -> a := !a - Stackwalk.read st fr b) e.RM.plus;
  List.iter (fun b -> a := !a + Stackwalk.read st fr b) e.RM.minus;
  Stackwalk.write st fr e.RM.target !a

let rederive_entry st fr (e : RM.deriv_entry) =
  let a = ref (Stackwalk.read st fr e.RM.target) in
  List.iter (fun b -> a := !a + Stackwalk.read st fr b) e.RM.plus;
  List.iter (fun b -> a := !a - Stackwalk.read st fr b) e.RM.minus;
  Stackwalk.write st fr e.RM.target !a

(** Step 1 over all frames (innermost first). Returns the per-frame entry
    lists so step 2 uses the same selections. *)
let adjust_all st (frames : Stackwalk.frame list) : (Stackwalk.frame * RM.deriv_entry list) list
    =
  List.map
    (fun fr ->
      let entries = active_entries st fr in
      List.iter (adjust_entry st fr) entries;
      Telemetry.Metrics.incr ~by:(List.length entries) c_underived;
      (fr, entries))
    frames

(** Step 2: reverse frame order, reverse entry order within each frame. *)
let rederive_all st (adjusted : (Stackwalk.frame * RM.deriv_entry list) list) =
  List.iter
    (fun (fr, entries) ->
      List.iter (rederive_entry st fr) (List.rev entries);
      Telemetry.Metrics.incr ~by:(List.length entries) c_rederived)
    (List.rev adjusted)
