(** Stack walking and register reconstruction.

    At a collection, the machine is stopped inside an allocating runtime
    call; the walk starts at the compiled frame that made that call and
    proceeds outward through saved frame pointers. Each frame's gc-point is
    identified from the return address stored in its callee's frame (or,
    for the innermost frame, from the current pc), and its tables are
    found through the pc→table mapping (paper §3).

    Register reconstruction: walking outward, every procedure's metadata
    says which callee-saved registers it saved and where; an outer frame's
    register contents "as of the time of the call" are therefore found
    either still in the register file or in the save area of some inner
    frame — the paper's "additional information about which registers were
    saved at each call point". *)

module L = Gcmaps.Loc
module RM = Gcmaps.Rawmaps

let c_frames = Telemetry.Metrics.counter "gc.frames_traced"

type reg_location = In_regs | In_mem of int

type frame = {
  fr_fid : int;
  fr_fp : int;
  fr_sp : int; (* fp - frame_size *)
  fr_ap : int; (* base of the outgoing argument words of this frame's call *)
  fr_gcpoint : RM.gcpoint;
  fr_reg_loc : reg_location array; (* where each register's value lives *)
}

(** Resolve a table location against a frame. *)
let resolve (fr : frame) (l : L.t) : [ `Reg of int | `Mem of int ] =
  match l with
  | L.Lreg r -> (
      match fr.fr_reg_loc.(r) with In_regs -> `Reg r | In_mem a -> `Mem a)
  | L.Lmem (L.FP, o) -> `Mem (fr.fr_fp + o)
  | L.Lmem (L.SP, o) -> `Mem (fr.fr_sp + o)
  | L.Lmem (L.AP, o) -> `Mem (fr.fr_ap + o)

(* [read]/[write] run once per table entry per frame per collection, so
   they dispatch on the location directly instead of going through
   {!resolve}, whose polymorphic-variant result is a fresh heap block. *)
let read (st : Vm.Interp.t) fr (l : L.t) =
  match l with
  | L.Lreg r -> (
      match fr.fr_reg_loc.(r) with
      | In_regs -> st.Vm.Interp.regs.(r)
      | In_mem a -> Vm.Interp.read st a)
  | L.Lmem (L.FP, o) -> Vm.Interp.read st (fr.fr_fp + o)
  | L.Lmem (L.SP, o) -> Vm.Interp.read st (fr.fr_sp + o)
  | L.Lmem (L.AP, o) -> Vm.Interp.read st (fr.fr_ap + o)

let write (st : Vm.Interp.t) fr (l : L.t) v =
  match l with
  | L.Lreg r -> (
      match fr.fr_reg_loc.(r) with
      | In_regs -> st.Vm.Interp.regs.(r) <- v
      | In_mem a -> Vm.Interp.write st a v)
  | L.Lmem (L.FP, o) -> Vm.Interp.write st (fr.fr_fp + o) v
  | L.Lmem (L.SP, o) -> Vm.Interp.write st (fr.fr_sp + o) v
  | L.Lmem (L.AP, o) -> Vm.Interp.write st (fr.fr_ap + o) v

(** Walk the stack at a collection. Returns frames innermost-first.
    [frames_traced] statistics are the caller's concern. *)
let walk (st : Vm.Interp.t) : frame list =
  let img = st.Vm.Interp.image in
  let cache = img.Vm.Image.decode_cache in
  let nregs = Machine.Reg.nregs in
  let find_tables ~fid ~code_index =
    let code_offset = img.Vm.Image.insn_offsets.(code_index) in
    (* Memoized pc→table lookup; falls back to the paper-faithful stream
       re-scan when the cache is disabled (--no-decode-cache). A decode
       failure here means the collector cannot trace this stack: surface
       it as a typed vm error rather than letting the gcmaps-level
       exception escape through the allocation path. *)
    try Gcmaps.Decode_cache.find cache ~fid ~code_offset
    with Gcmaps.Decode.Table_corrupt { fid; offset; pos; reason } ->
      let reason =
        if pos >= 0 then Printf.sprintf "%s (stream byte %d)" reason pos else reason
      in
      Vm.Vm_error.(error (Corrupt_table { fid; offset; reason }))
  in
  let rec go ~gp_code_index ~fp ~ap ~reg_loc acc =
    let fid = Vm.Image.proc_of_code_index img gp_code_index in
    let dp, gcpoint = find_tables ~fid ~code_index:gp_code_index in
    let frame =
      {
        fr_fid = fid;
        fr_fp = fp;
        fr_sp = fp - dp.Gcmaps.Decode.dp_frame_size;
        fr_ap = ap;
        fr_gcpoint = gcpoint;
        fr_reg_loc = reg_loc;
      }
    in
    let acc = frame :: acc in
    let retaddr = Vm.Interp.read st (fp + 1) in
    if retaddr = Vm.Interp.sentinel_ret then List.rev acc
    else begin
      (* Registers saved by this frame's procedure now shadow the register
         file for all outer frames. *)
      let reg_loc' = Array.copy reg_loc in
      List.iter (fun (r, off) -> reg_loc'.(r) <- In_mem (fp + off)) dp.Gcmaps.Decode.dp_saves;
      go ~gp_code_index:(retaddr - 1) ~fp:(Vm.Interp.read st fp) ~ap:(fp + 2)
        ~reg_loc:reg_loc' acc
    end
  in
  (* The machine is inside a runtime call: pc is the Call instruction, FP is
     the calling frame's, and the runtime arguments sit at SP (no return
     address is pushed for runtime calls). *)
  let frames =
    go ~gp_code_index:st.Vm.Interp.pc ~fp:(Vm.Interp.fp st) ~ap:(Vm.Interp.sp st)
      ~reg_loc:(Array.make nregs In_regs) []
  in
  Telemetry.Metrics.incr ~by:(List.length frames) c_frames;
  frames
