(** Generational collection layered on the unchanged gc-point tables.

    The semispace machinery of {!Cheney} already proves that the
    compiler-emitted tables can move every live object; this module shows
    the same tables support a collector the paper never built. From-space
    is split into an old generation growing up from the base and a
    bump-allocated nursery at the top (see {!Vm.Interp.gen_state}). A
    minor collection evacuates only the nursery, promoting survivors onto
    the old-generation frontier of the {e same} semispace — no flip — with
    roots drawn from exactly the same sources as a full collection
    (globals, the gc-point tables' stack and register entries, derived
    values through the un-derive/re-derive protocol of §3) plus two
    generational extras: the remembered set filled by the compiler-emitted
    [Wbar] barriers, and the pretenured [big_objects], whose fields are
    scanned wholesale so static barrier elimination stays sound for them.

    When the nursery cannot satisfy a request, or the old generation lacks
    promotion headroom, the ordinary full {!Cheney.collect} runs instead —
    the tables serve both collectors without a byte of difference. *)

module RM = Gcmaps.Rawmaps
module T = Telemetry

let now_ns = T.Control.now_ns

(* Shared per-collection histograms (same names as {!Cheney}, so the
   per-collection tables in [mmrun --gc-stats] stay parallel arrays), plus
   the minor-specific series. *)
let c_collections = T.Metrics.counter "gc.collections"
let c_minor = T.Metrics.counter "gc.minor_collections"
let c_copy_words = T.Metrics.counter "gc.copy_words"
let h_pause = T.Metrics.histogram "gc.pause_ns"
let h_stackwalk = T.Metrics.histogram "gc.stackwalk_ns"
let h_underive = T.Metrics.histogram "gc.underive_ns"
let h_copy = T.Metrics.histogram "gc.copy_ns"
let h_rederive = T.Metrics.histogram "gc.rederive_ns"
let h_roots = T.Metrics.histogram "gc.forward_roots_ns"
let h_words = T.Metrics.histogram "gc.words_copied"
let h_objects = T.Metrics.histogram "gc.objects_copied"
let h_frames = T.Metrics.histogram "gc.frames"
let h_minor_pause = T.Metrics.histogram "gc.minor_pause_ns"
let h_minor_words = T.Metrics.histogram "gc.minor_words"
let h_is_minor = T.Metrics.histogram "gc.is_minor"
let h_remset = T.Metrics.histogram "gc.remset_roots"
let c_emergency = T.Metrics.counter "gc_pressure.emergency_full"

(** Default nursery: a quarter semispace, but never less than 300 words —
    on tiny heaps the nursery degenerates to the whole semispace and every
    minor becomes a full collection, which is still correct. *)
let default_nursery_words semi = min semi (max 300 (semi / 4))

(** One minor collection: evacuate [nursery_base, nursery_alloc) onto the
    old-generation frontier. The caller has checked promotion headroom. *)
let minor (st : Vm.Interp.t) (g : Vm.Interp.gen_state) =
  let t_start = now_ns () in
  let gcs = st.Vm.Interp.gc in
  gcs.Vm.Interp.collections <- gcs.Vm.Interp.collections + 1;
  gcs.Vm.Interp.minor_collections <- gcs.Vm.Interp.minor_collections + 1;
  T.Metrics.incr c_collections;
  T.Metrics.incr c_minor;
  (match st.Vm.Interp.prof with
  | Some p -> Profile.begin_collection p ~minor:true
  | None -> ());
  let objects0 = gcs.Vm.Interp.objects_copied in
  T.Trace.begin_span ~cat:"gc"
    ~args:[ ("collection", T.Json.Int gcs.Vm.Interp.collections) ]
    "gc.minor";
  (* --- stack tracing: same tables, same walk as a full collection. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.stackwalk";
  let t_trace0 = now_ns () in
  let frames = Stackwalk.walk st in
  gcs.Vm.Interp.frames_traced <- gcs.Vm.Interp.frames_traced + List.length frames;
  let t_walk1 = now_ns () in
  T.Trace.end_span ~args:[ ("frames", T.Json.Int (List.length frames)) ] ();
  if Verify.pre_enabled () then ignore (Verify.check st ~phase:"minor-pre" ~frames ());
  (* --- un-derive (§3): identical protocol; bases move like any root. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.underive";
  let adjusted = Derived_update.adjust_all st frames in
  let t_trace1 = now_ns () in
  T.Trace.end_span ();
  let derived_snap =
    if Verify.post_enabled () then Some (Verify.snapshot_derived st adjusted) else None
  in
  (* --- copy phase: nursery → old frontier, no flip. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.copy";
  let c =
    {
      Cheney.st;
      src_lo = g.Vm.Interp.nursery_base;
      src_hi = g.Vm.Interp.nursery_alloc;
      dst_lo = g.Vm.Interp.old_alloc;
      dst_hi = g.Vm.Interp.nursery_base;
      to_alloc = g.Vm.Interp.old_alloc;
    }
  in
  let mem = st.Vm.Interp.mem in
  (* Global roots. *)
  List.iter
    (fun a -> Vm.Mem.set mem a (Cheney.forward c (Vm.Mem.get mem a)))
    st.Vm.Interp.image.Vm.Image.global_roots;
  (* Stack and register roots. *)
  T.Trace.begin_span ~cat:"gc" "gc.forward_roots";
  let t_roots0 = now_ns () in
  List.iter (Cheney.forward_frame_roots c) frames;
  (* Generational roots: old-generation slots recorded by the write
     barriers, and the fields of every pretenured object. *)
  Remset.iter (fun a -> Vm.Mem.set mem a (Cheney.forward c (Vm.Mem.get mem a))) g;
  List.iter
    (fun addr -> ignore (Cheney.scan_object c addr))
    g.Vm.Interp.big_objects;
  (* Pool regions: dense runs of policy-pooled objects, scanned wholesale
     for exactly the reason the pretenured big objects are — a statically
     elided write barrier may have stored a nursery pointer into them. *)
  List.iter
    (fun (lo, hi) ->
      let a = ref lo in
      while !a < hi do
        a := Cheney.scan_object c !a
      done)
    (Vm.Interp.pool_filled_ranges st);
  let t_roots1 = now_ns () in
  T.Trace.end_span ();
  (* Cheney scan of the promotion region. *)
  let scan = ref c.Cheney.dst_lo in
  while !scan < c.Cheney.to_alloc do
    scan := Cheney.scan_object c !scan
  done;
  let t_copy1 = now_ns () in
  T.Trace.end_span ();
  (* --- re-derive; reopen the nursery. --- *)
  T.Trace.begin_span ~cat:"gc" "gc.rederive";
  let t_red0 = now_ns () in
  Derived_update.rederive_all st adjusted;
  let t_red1 = now_ns () in
  T.Trace.end_span ();
  let remset_roots = Remset.length g in
  Remset.clear st g;
  g.Vm.Interp.old_alloc <- c.Cheney.to_alloc;
  g.Vm.Interp.nursery_alloc <- g.Vm.Interp.nursery_base;
  st.Vm.Interp.alloc <- g.Vm.Interp.old_alloc;
  let words = c.Cheney.to_alloc - c.Cheney.dst_lo in
  gcs.Vm.Interp.words_copied <- gcs.Vm.Interp.words_copied + words;
  T.Metrics.incr ~by:words c_copy_words;
  let t_end = now_ns () in
  T.Trace.end_span ~args:[ ("words_promoted", T.Json.Int words) ] ();
  let open Int64 in
  gcs.Vm.Interp.copy_ns <- add gcs.Vm.Interp.copy_ns (sub t_copy1 t_trace1);
  gcs.Vm.Interp.total_gc_ns <- add gcs.Vm.Interp.total_gc_ns (sub t_end t_start);
  gcs.Vm.Interp.trace_ns <-
    add gcs.Vm.Interp.trace_ns
      (add
         (add (sub t_trace1 t_trace0) (sub t_roots1 t_roots0))
         (sub t_red1 t_red0));
  if T.Control.on () then begin
    T.Metrics.observe_ns h_pause (sub t_end t_start);
    T.Metrics.observe_ns h_stackwalk (sub t_walk1 t_trace0);
    T.Metrics.observe_ns h_underive (sub t_trace1 t_walk1);
    T.Metrics.observe_ns h_copy (sub t_copy1 t_trace1);
    T.Metrics.observe_ns h_roots (sub t_roots1 t_roots0);
    T.Metrics.observe_ns h_rederive (sub t_red1 t_red0);
    T.Metrics.observe h_words (float_of_int words);
    T.Metrics.observe h_objects (float_of_int (gcs.Vm.Interp.objects_copied - objects0));
    T.Metrics.observe h_frames (float_of_int (List.length frames));
    T.Metrics.observe_ns h_minor_pause (sub t_end t_start);
    T.Metrics.observe h_minor_words (float_of_int words);
    T.Metrics.observe h_is_minor 1.0;
    T.Metrics.observe h_remset (float_of_int remset_roots)
  end;
  (* Lifetime accounting over the evacuated nursery range (captured in the
     copier before the nursery was reset): survivors were re-keyed to the
     old generation by [Cheney.forward]; the rest died young. *)
  (match st.Vm.Interp.prof with
  | Some p ->
      Profile.end_collection p ~src_lo:c.Cheney.src_lo ~src_hi:c.Cheney.src_hi;
      if Profile.census_due p then Census.take st p;
      (* Online adaptive placement: once the configured number of minor
         collections has fed the side table, derive the same decisions the
         offline profile→policy pipeline would (same classifier, same
         thresholds) and install them for the rest of the run. *)
      if
        st.Vm.Interp.adaptive_after > 0
        && st.Vm.Interp.placement = None
        && p.Profile.minor_collections >= st.Vm.Interp.adaptive_after
      then
        Vm.Interp.set_placement st ~source:"adaptive"
          (Policy.decision_codes_from_stats p)
  | None -> ());
  match derived_snap with
  | Some snap -> ignore (Verify.check st ~phase:"minor-post" ~frames ~derived:snap ())
  | None -> ()

(** The generational collection policy: a minor collection whenever the
    nursery's survivors are guaranteed to fit the old generation's
    headroom, the ordinary full compaction otherwise (or when the minor
    did not recover enough). *)
(* A full collection forced by promotion failure (no headroom for the
   nursery's survivors, or a minor that did not recover enough) — the
   escalation rung the Gc_pressure group counts as an emergency. *)
let emergency (st : Vm.Interp.t) ~needed =
  st.Vm.Interp.gc.Vm.Interp.emergency_full <-
    st.Vm.Interp.gc.Vm.Interp.emergency_full + 1;
  T.Metrics.incr c_emergency;
  Cheney.collect st ~needed

let collect (st : Vm.Interp.t) ~needed =
  match st.Vm.Interp.gen with
  | None -> Cheney.collect st ~needed
  | Some g ->
      let used = g.Vm.Interp.nursery_alloc - g.Vm.Interp.nursery_base in
      let headroom = g.Vm.Interp.nursery_base - g.Vm.Interp.old_alloc in
      (* An old-generation request (big object, policy pretenure, pool
         chunk) can only be helped by a full compaction: a minor promotes
         into the very region that is short of room. *)
      if g.Vm.Interp.old_request || needed > g.Vm.Interp.nursery_cap then
        Cheney.collect st ~needed
      else if headroom < used then emergency st ~needed
      else begin
        minor st g;
        if Vm.Interp.gen_nursery_free st g < needed then emergency st ~needed
      end

let install ?nursery_words (st : Vm.Interp.t) =
  let semi = st.Vm.Interp.from_words in
  let words =
    match nursery_words with Some w -> w | None -> default_nursery_words semi
  in
  ignore (Vm.Interp.gen_init st ~nursery_words:words);
  st.Vm.Interp.collector <- Some collect

(* Environment switches, so any existing entry point (tests, benches, the
   CLIs) can be flipped into generational mode without new plumbing. *)
let env_enabled () =
  match Sys.getenv_opt "MM_GEN" with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let env_nursery_words () =
  Option.bind (Sys.getenv_opt "MM_NURSERY_WORDS") int_of_string_opt
