(** A persistent pool of collector worker domains.

    The parallel copy phase ({!Cheney}) runs many short data-parallel jobs
    per collection — one per phase per round. Spawning domains at that rate
    would dwarf the work, so the pool spawns each worker domain once, on
    first use, and parks it on a condition variable between jobs. A job is
    dispatched by publishing a closure under the pool mutex and bumping a
    generation counter; the calling (mutator) thread participates as worker
    0, so [workers ()] = 1 never touches the pool at all.

    All cross-domain communication is through the pool mutex: the closure
    and its captured state are published before the wake-up broadcast, and
    workers retire through the same mutex before the dispatcher returns —
    so every memory write a worker makes during a job happens-before the
    dispatcher's next read, and the collector needs no atomics beyond the
    work-claiming cursor it manages itself.

    Worker count is a pure runtime switch: [--gc-workers]/[MM_GC_WORKERS],
    default 1 = the exact serial collector. The pool may hold more domains
    than a given job wants (the count can be lowered between collections);
    surplus domains wake, decline the job and retire, so a job dispatched
    for [k] workers is executed by exactly [k]. *)

(* --- configuration ------------------------------------------------- *)

let max_workers = 64

let env_int name =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n >= 1 -> Some n
  | _ -> None

let forced_workers = ref None

(** Set the worker count (clamped to [1, 64]); overrides [MM_GC_WORKERS]. *)
let set_workers n = forced_workers := Some (min max_workers (max 1 n))

(** Collector workers for the next collection: the forced count, else
    [MM_GC_WORKERS], else 1 (serial). *)
let workers () =
  match !forced_workers with
  | Some n -> n
  | None -> (
      match env_int "MM_GC_WORKERS" with
      | Some n -> min max_workers n
      | None -> 1)

(* Rounds narrower than this many objects are scanned serially even when
   workers > 1: a phase dispatch costs condition-variable wake-ups, which
   only amortize over wide rounds. Tests lower it (MM_GC_PAR_THRESHOLD or
   [set_par_threshold]) to force tiny heaps through the parallel phases. *)
let default_par_threshold = 512
let forced_threshold = ref None
let set_par_threshold n = forced_threshold := Some (max 1 n)

let par_threshold () =
  match !forced_threshold with
  | Some n -> n
  | None -> (
      match env_int "MM_GC_PAR_THRESHOLD" with
      | Some n -> n
      | None -> default_par_threshold)

(* Per-round watchdog deadline for guarded dispatches. 0 (the default)
   means no deadline: the dispatcher blocks on the condition variable
   exactly as the unguarded path always has. A positive deadline switches
   the retirement wait to a polling loop (OCaml's [Condition] has no timed
   wait), after which a round whose workers have not retired is reported
   as [Timeout] and the caller degrades to the serial collector. *)
let forced_deadline_ms = ref None

(** Set the per-round deadline in milliseconds (0 disables); overrides
    [MM_GC_DEADLINE_MS]. *)
let set_deadline_ms n = forced_deadline_ms := Some (max 0 n)

let deadline_ns () =
  let ms =
    match !forced_deadline_ms with
    | Some n -> n
    | None -> ( match env_int "MM_GC_DEADLINE_MS" with Some n -> n | None -> 0)
  in
  Int64.of_int (ms * 1_000_000)

(** Test-only fault injection: when set, the collector's parallel phases
    call this for every (phase, round, worker) before doing any work, so
    [lib/fault] can force a raise or a stall inside a chosen round of a
    chosen phase without patching collector code. *)
let fault_hook : (phase:string -> round:int -> worker:int -> unit) option ref =
  ref None

(* --- the pool ------------------------------------------------------ *)

type pool = {
  m : Mutex.t;
  cv_job : Condition.t; (* signalled when a job is published or on quit *)
  cv_done : Condition.t; (* signalled when the last domain retires *)
  mutable job : (int -> unit) option;
  mutable job_limit : int; (* domains with index >= job_limit decline *)
  mutable gen : int; (* job generation, distinguishes consecutive jobs *)
  mutable pending : int; (* domains that have not yet retired this job *)
  mutable failure : exn option; (* first worker exception, re-raised *)
  mutable quit : bool;
  mutable domains : unit Domain.t list;
  mutable spawned : int; (* domains alive; they carry indices 1..spawned *)
}

let pool =
  {
    m = Mutex.create ();
    cv_job = Condition.create ();
    cv_done = Condition.create ();
    job = None;
    job_limit = 0;
    gen = 0;
    pending = 0;
    failure = None;
    quit = false;
    domains = [];
    spawned = 0;
  }

let record_failure e =
  Mutex.lock pool.m;
  if pool.failure = None then pool.failure <- Some e;
  Mutex.unlock pool.m

let worker_body idx =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while pool.gen = !last && not pool.quit do
      Condition.wait pool.cv_job pool.m
    done;
    if pool.quit then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      last := pool.gen;
      let job = pool.job and limit = pool.job_limit in
      Mutex.unlock pool.m;
      (if idx < limit then
         match job with
         | Some f -> ( try f idx with e -> record_failure e)
         | None -> ());
      Mutex.lock pool.m;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.cv_done;
      Mutex.unlock pool.m
    end
  done

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let shutdown () =
  Mutex.lock pool.m;
  pool.quit <- true;
  Condition.broadcast pool.cv_job;
  let healthy = pool.pending = 0 in
  Mutex.unlock pool.m;
  (* Join only when every worker has retired. A stalled worker (watchdog
     Timeout) would make the join hang forever; leaving its domain to be
     reaped at process exit is the graceful option, and [quit] stays set
     so it exits its loop if it ever finishes. *)
  if healthy then begin
    List.iter Domain.join pool.domains;
    pool.domains <- [];
    pool.spawned <- 0;
    pool.quit <- false
  end

let ensure_spawned extra =
  if pool.spawned < extra then begin
    if pool.spawned = 0 then at_exit shutdown;
    for idx = pool.spawned + 1 to extra do
      pool.domains <- Domain.spawn (fun () -> worker_body idx) :: pool.domains
    done;
    pool.spawned <- extra
  end

(** Outcome of a guarded dispatch. [Fault] carries the first worker
    exception; [Timeout] means a worker missed the round deadline (or a
    worker stalled in an {e earlier} round never retired, in which case
    the pool refuses to dispatch at all). In both non-[Done] cases every
    side effect the job performed is already published or harmless, and
    the caller is expected to redo the round serially. *)
type status = Done | Fault of exn | Timeout

(** Run [f 0 .. f (k-1)] concurrently, [f 0] on the calling thread, and
    report how the round ended. [f] must partition its own work (e.g.
    through an [Atomic] cursor). With [deadline_ns <= 0] the retirement
    wait is the exact blocking wait the unguarded dispatcher always used;
    with a positive deadline the wait polls (brief cpu_relax spin, then
    0.1 ms sleeps) and gives up once the deadline passes, leaving the
    stalled worker un-retired — later dispatches refuse the pool until it
    retires ([quiesce]), so the collector degrades to serial rather than
    blocking. *)
let run_guarded ~workers:k ~deadline_ns (f : int -> unit) : status =
  if k <= 1 then ( try f 0; Done with e -> Fault e)
  else begin
    ensure_spawned (k - 1);
    Mutex.lock pool.m;
    if pool.pending > 0 then begin
      (* A worker from a previous round never retired: the pool is
         poisoned. Refuse the dispatch; the caller stays serial. *)
      Mutex.unlock pool.m;
      Timeout
    end
    else begin
      pool.failure <- None;
      pool.job <- Some f;
      pool.job_limit <- k;
      pool.pending <- pool.spawned;
      pool.gen <- pool.gen + 1;
      Condition.broadcast pool.cv_job;
      Mutex.unlock pool.m;
      let caller_fail = (try f 0; None with e -> Some e) in
      let timed_out =
        if Int64.compare deadline_ns 0L <= 0 then begin
          Mutex.lock pool.m;
          while pool.pending > 0 do
            Condition.wait pool.cv_done pool.m
          done;
          Mutex.unlock pool.m;
          false
        end
        else begin
          let t0 = now_ns () in
          let rec wait spins =
            Mutex.lock pool.m;
            let pending = pool.pending in
            Mutex.unlock pool.m;
            if pending = 0 then false
            else if Int64.compare (Int64.sub (now_ns ()) t0) deadline_ns > 0
            then true
            else begin
              if spins < 1000 then Domain.cpu_relax () else Unix.sleepf 1e-4;
              wait (spins + 1)
            end
          in
          wait 0
        end
      in
      if timed_out then Timeout
      else begin
        Mutex.lock pool.m;
        pool.job <- None;
        let fail = pool.failure in
        pool.failure <- None;
        Mutex.unlock pool.m;
        match (caller_fail, fail) with
        | Some e, _ | None, Some e -> Fault e
        | None, None -> Done
      end
    end
  end

(** Wait (bounded) for every worker of a timed-out round to retire, so the
    pool is healthy again. Tests call this between stall injections; the
    collector itself never waits — it degrades serially instead. *)
let quiesce ~timeout_s =
  let t0 = now_ns () in
  let limit = Int64.of_float (timeout_s *. 1e9) in
  let rec wait () =
    Mutex.lock pool.m;
    let pending = pool.pending in
    if pending = 0 then pool.job <- None;
    Mutex.unlock pool.m;
    if pending = 0 then true
    else if Int64.compare (Int64.sub (now_ns ()) t0) limit > 0 then false
    else begin
      Unix.sleepf 1e-3;
      wait ()
    end
  in
  wait ()

(** The unguarded dispatcher: [run_guarded] with no deadline, re-raising a
    worker exception once every worker has retired. *)
let run ~workers:k (f : int -> unit) =
  match run_guarded ~workers:k ~deadline_ns:0L f with
  | Done -> ()
  | Fault e -> raise e
  | Timeout -> failwith "Gc_pool.run: pool busy (un-retired stalled worker)"
