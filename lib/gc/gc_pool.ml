(** A persistent pool of collector worker domains.

    The parallel copy phase ({!Cheney}) runs many short data-parallel jobs
    per collection — one per phase per round. Spawning domains at that rate
    would dwarf the work, so the pool spawns each worker domain once, on
    first use, and parks it on a condition variable between jobs. A job is
    dispatched by publishing a closure under the pool mutex and bumping a
    generation counter; the calling (mutator) thread participates as worker
    0, so [workers ()] = 1 never touches the pool at all.

    All cross-domain communication is through the pool mutex: the closure
    and its captured state are published before the wake-up broadcast, and
    workers retire through the same mutex before the dispatcher returns —
    so every memory write a worker makes during a job happens-before the
    dispatcher's next read, and the collector needs no atomics beyond the
    work-claiming cursor it manages itself.

    Worker count is a pure runtime switch: [--gc-workers]/[MM_GC_WORKERS],
    default 1 = the exact serial collector. The pool may hold more domains
    than a given job wants (the count can be lowered between collections);
    surplus domains wake, decline the job and retire, so a job dispatched
    for [k] workers is executed by exactly [k]. *)

(* --- configuration ------------------------------------------------- *)

let max_workers = 64

let env_int name =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n >= 1 -> Some n
  | _ -> None

let forced_workers = ref None

(** Set the worker count (clamped to [1, 64]); overrides [MM_GC_WORKERS]. *)
let set_workers n = forced_workers := Some (min max_workers (max 1 n))

(** Collector workers for the next collection: the forced count, else
    [MM_GC_WORKERS], else 1 (serial). *)
let workers () =
  match !forced_workers with
  | Some n -> n
  | None -> (
      match env_int "MM_GC_WORKERS" with
      | Some n -> min max_workers n
      | None -> 1)

(* Rounds narrower than this many objects are scanned serially even when
   workers > 1: a phase dispatch costs condition-variable wake-ups, which
   only amortize over wide rounds. Tests lower it (MM_GC_PAR_THRESHOLD or
   [set_par_threshold]) to force tiny heaps through the parallel phases. *)
let default_par_threshold = 512
let forced_threshold = ref None
let set_par_threshold n = forced_threshold := Some (max 1 n)

let par_threshold () =
  match !forced_threshold with
  | Some n -> n
  | None -> (
      match env_int "MM_GC_PAR_THRESHOLD" with
      | Some n -> n
      | None -> default_par_threshold)

(* --- the pool ------------------------------------------------------ *)

type pool = {
  m : Mutex.t;
  cv_job : Condition.t; (* signalled when a job is published or on quit *)
  cv_done : Condition.t; (* signalled when the last domain retires *)
  mutable job : (int -> unit) option;
  mutable job_limit : int; (* domains with index >= job_limit decline *)
  mutable gen : int; (* job generation, distinguishes consecutive jobs *)
  mutable pending : int; (* domains that have not yet retired this job *)
  mutable failure : exn option; (* first worker exception, re-raised *)
  mutable quit : bool;
  mutable domains : unit Domain.t list;
  mutable spawned : int; (* domains alive; they carry indices 1..spawned *)
}

let pool =
  {
    m = Mutex.create ();
    cv_job = Condition.create ();
    cv_done = Condition.create ();
    job = None;
    job_limit = 0;
    gen = 0;
    pending = 0;
    failure = None;
    quit = false;
    domains = [];
    spawned = 0;
  }

let record_failure e =
  Mutex.lock pool.m;
  if pool.failure = None then pool.failure <- Some e;
  Mutex.unlock pool.m

let worker_body idx =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while pool.gen = !last && not pool.quit do
      Condition.wait pool.cv_job pool.m
    done;
    if pool.quit then begin
      Mutex.unlock pool.m;
      running := false
    end
    else begin
      last := pool.gen;
      let job = pool.job and limit = pool.job_limit in
      Mutex.unlock pool.m;
      (if idx < limit then
         match job with
         | Some f -> ( try f idx with e -> record_failure e)
         | None -> ());
      Mutex.lock pool.m;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.signal pool.cv_done;
      Mutex.unlock pool.m
    end
  done

let shutdown () =
  Mutex.lock pool.m;
  pool.quit <- true;
  Condition.broadcast pool.cv_job;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- [];
  pool.spawned <- 0;
  pool.quit <- false

let ensure_spawned extra =
  if pool.spawned < extra then begin
    if pool.spawned = 0 then at_exit shutdown;
    for idx = pool.spawned + 1 to extra do
      pool.domains <- Domain.spawn (fun () -> worker_body idx) :: pool.domains
    done;
    pool.spawned <- extra
  end

(** Run [f 0 .. f (k-1)] concurrently, [f 0] on the calling thread, and
    return when all have finished. [f] must partition its own work (e.g.
    through an [Atomic] cursor). A worker exception is re-raised here after
    every worker has retired; [k <= 1] calls [f 0] directly. *)
let run ~workers:k (f : int -> unit) =
  if k <= 1 then f 0
  else begin
    ensure_spawned (k - 1);
    Mutex.lock pool.m;
    pool.job <- Some f;
    pool.job_limit <- k;
    pool.pending <- pool.spawned;
    pool.gen <- pool.gen + 1;
    Condition.broadcast pool.cv_job;
    Mutex.unlock pool.m;
    (try f 0 with e -> record_failure e);
    Mutex.lock pool.m;
    while pool.pending > 0 do
      Condition.wait pool.cv_done pool.m
    done;
    pool.job <- None;
    let fail = pool.failure in
    pool.failure <- None;
    Mutex.unlock pool.m;
    match fail with Some e -> raise e | None -> ()
  end
