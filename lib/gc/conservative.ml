(** Ambiguous-roots (Boehm-style) mark–sweep baseline (paper §7).

    No tables are consulted: every word in the registers, the whole stack,
    and the global area is treated as a potential pointer; anything that
    {e looks like} a pointer into an allocated object pins that object.
    Objects never move (so no compaction and no derived-value update is
    needed — and none is possible), and interior pointers must pin the
    enclosing object, which is exactly the concern Boehm's gc-safety work
    addresses.

    Reclaimed objects go to a first-fit free list consumed by the
    allocator. The collector tracks allocations through the VM's
    [on_alloc] hook to know object boundaries, standing in for the
    allocator metadata a real conservative collector keeps. *)

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

module T = Telemetry

let c_collections = T.Metrics.counter "gc.collections"
let h_pause = T.Metrics.histogram "gc.pause_ns"
let h_marked = T.Metrics.histogram "gc.marked_objects"
let h_swept = T.Metrics.histogram "gc.swept_objects"

type t = {
  st : Vm.Interp.t;
  objects : (int, int) Hashtbl.t; (* address -> size in words *)
  mutable sorted : (int * int) array; (* rebuilt per collection *)
  mutable interior : bool; (* recognize interior pointers *)
  mutable marked_last : int;
  mutable swept_last : int;
  mutable false_roots : int; (* root words that looked like pointers *)
}

let register_alloc c addr size = Hashtbl.replace c.objects addr size

(* Find the object containing [v] (or starting at [v] when interior
   recognition is off). *)
let find_object c v =
  let arr = c.sorted in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let rec bsearch lo hi =
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if fst arr.(mid) <= v then bsearch mid hi else bsearch lo mid
    in
    if v < fst arr.(0) then None
    else
      let i = bsearch 0 n in
      let addr, size = arr.(i) in
      if c.interior then if v >= addr && v < addr + size then Some addr else None
      else if v = addr then Some addr
      else None
  end

let collect_now (c : t) =
  let st = c.st in
  let t0 = now_ns () in
  let gcs = st.Vm.Interp.gc in
  gcs.Vm.Interp.collections <- gcs.Vm.Interp.collections + 1;
  T.Metrics.incr c_collections;
  T.Trace.begin_span ~cat:"gc"
    ~args:[ ("collection", T.Json.Int gcs.Vm.Interp.collections) ]
    "gc.collect.conservative";
  c.sorted <-
    (let l = Hashtbl.fold (fun a s acc -> (a, s) :: acc) c.objects [] in
     let arr = Array.of_list l in
     Array.sort compare arr;
     arr);
  let marked = Hashtbl.create (Hashtbl.length c.objects) in
  let work = Queue.create () in
  let consider v =
    match find_object c v with
    | Some addr when not (Hashtbl.mem marked addr) ->
        Hashtbl.replace marked addr true;
        Queue.push addr work
    | _ -> ()
  in
  (* Ambiguous roots: registers, entire stack, entire global/static area. *)
  for r = 0 to Machine.Reg.ngeneral - 1 do
    consider st.Vm.Interp.regs.(r)
  done;
  for a = Vm.Interp.sp st to st.Vm.Interp.image.Vm.Image.stack_top - 1 do
    consider st.Vm.Interp.mem.{a}
  done;
  (* The static area ends at the stack (the map is statics, stack, heap):
     scanning up to [heap_base] would treat dead stack slots below sp as
     global roots and pin garbage. *)
  for a = st.Vm.Interp.image.Vm.Image.globals_base
      to st.Vm.Interp.image.Vm.Image.stack_base - 1
  do
    consider st.Vm.Interp.mem.{a}
  done;
  (* Mark transitively, scanning every word of every object (Boehm-style:
     the heap is ambiguous too). *)
  while not (Queue.is_empty work) do
    let addr = Queue.pop work in
    let size = Hashtbl.find c.objects addr in
    for i = 0 to size - 1 do
      consider st.Vm.Interp.mem.{addr + i}
    done
  done;
  (* Sweep: unmarked objects join the free list. *)
  let freed = ref [] in
  Hashtbl.iter
    (fun addr size -> if not (Hashtbl.mem marked addr) then freed := (addr, size) :: !freed)
    c.objects;
  List.iter (fun (addr, _) -> Hashtbl.remove c.objects addr) !freed;
  (* Coalesce adjacent free blocks. *)
  let blocks =
    List.sort compare (!freed @ st.Vm.Interp.free_list) |> fun sorted ->
    List.fold_left
      (fun acc (a, s) ->
        match acc with
        | (pa, ps) :: rest when pa + ps = a -> (pa, ps + s) :: rest
        | _ -> (a, s) :: acc)
      [] sorted
    |> List.rev
  in
  st.Vm.Interp.free_list <- blocks;
  c.marked_last <- Hashtbl.length marked;
  c.swept_last <- List.length !freed;
  let dt = Int64.sub (now_ns ()) t0 in
  gcs.Vm.Interp.total_gc_ns <- Int64.add gcs.Vm.Interp.total_gc_ns dt;
  T.Trace.end_span
    ~args:
      [
        ("marked", T.Json.Int c.marked_last); ("swept", T.Json.Int c.swept_last);
      ]
    ();
  if T.Control.on () then begin
    T.Metrics.observe_ns h_pause dt;
    T.Metrics.observe h_marked (float_of_int c.marked_last);
    T.Metrics.observe h_swept (float_of_int c.swept_last)
  end

(** Fragmentation summary of the current free list. *)
let free_list_stats (st : Vm.Interp.t) =
  let blocks = st.Vm.Interp.free_list in
  let total = List.fold_left (fun a (_, s) -> a + s) 0 blocks in
  let largest = List.fold_left (fun a (_, s) -> max a s) 0 blocks in
  (List.length blocks, total, largest)

(** Words retained (live per the conservative collector). *)
let retained_words c =
  Hashtbl.fold (fun _ s acc -> acc + s) c.objects 0

let install ?(interior = true) (st : Vm.Interp.t) : t =
  let c =
    {
      st;
      objects = Hashtbl.create 1024;
      sorted = [||];
      interior;
      marked_last = 0;
      swept_last = 0;
      false_roots = 0;
    }
  in
  st.Vm.Interp.on_alloc <- Some (fun addr size -> register_alloc c addr size);
  st.Vm.Interp.collector <- Some (fun _st ~needed:_ -> collect_now c);
  c
