(** The precise, fully compacting semispace collector.

    Every live object moves on every collection — the strongest exercise of
    the compiler-emitted tables: tidy pointers in globals, stack slots and
    registers are forwarded; derived values are un-derived before the copy
    and re-derived after (paper §3), never followed (the dead-base rule
    guarantees any object reachable through a derived value is also
    reachable through one of its bases).

    Timing instrumentation fills the interpreter's {!Vm.Interp.gc_stats}:
    [trace_ns] covers exactly the work the paper calls "stack tracing" —
    locating and decoding tables, walking frames, adjusting and re-deriving
    derived values, and updating stack/register roots. *)

(** Region-parametric copying machinery, shared with {!Nursery}: a full
    collection evacuates from-space into to-space, a minor collection
    evacuates the nursery onto the old-generation frontier of the same
    semispace. *)
type copier = {
  st : Vm.Interp.t;
  src_lo : int; (* objects in [src_lo, src_hi) are evacuated *)
  src_hi : int;
  dst_lo : int; (* evacuation region bounds *)
  dst_hi : int;
  mutable to_alloc : int;
}

val forward : copier -> int -> int
(** Forward a tidy pointer: copy its object to the destination region if
    not already copied; values outside [src_lo, src_hi) are returned
    unchanged. *)

val scan_object : copier -> int -> int
(** Forward every pointer field of the object at the given address (using
    the image's precomputed layouts); returns the address one past it. *)

val forward_frame_roots : copier -> Stackwalk.frame -> unit
(** Forward the tidy stack-slot and register roots of one frame through
    the gc-point tables. *)

val collect : Vm.Interp.t -> needed:int -> unit
(** Run one collection: walk, adjust, copy, re-derive, flip. Installed as
    the interpreter's collector by {!install}.
    @raise Vm.Vm_error.Error on a corrupt root (e.g. an untidy pointer in a
    tidy table entry — an invariant check that the tests rely on). *)

val trace_only : Vm.Interp.t -> unit
(** A "null collection": locate the tables, walk the stack, adjust and
    immediately re-derive, moving nothing. Used to reproduce the paper's
    §6.3 differencing methodology; must leave the machine state unchanged
    (asserted by the test suite). *)

val install : Vm.Interp.t -> unit

val now_ns : unit -> int64
(** Monotonic-enough wall clock used for the gc timers. *)
