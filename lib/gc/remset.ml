(** The remembered set, as seen by the collectors.

    The mutator side lives in {!Vm.Interp}: the compiler-emitted [Wbar]
    instruction records the exact address of an old-generation slot the
    moment a pointer is stored into it, deduplicated through a per-word
    dirty byte (a sequential-store-buffer with exact-slot precision, rather
    than card granularity — the heap is word-addressed, so the exactness is
    free). This module is the collector-side view: iterate the recorded
    slots as extra roots of a minor collection, and drop entries once the
    nursery they pointed into has been evacuated. *)

type t = Vm.Interp.gen_state

let length (g : t) = g.Vm.Interp.remset_len

(** Apply [f] to every recorded old-generation slot address. *)
let iter (f : int -> unit) (g : t) =
  for i = 0 to g.Vm.Interp.remset_len - 1 do
    f g.Vm.Interp.remset.(i)
  done

(** True when the slot address has been recorded since the last clear. *)
let mem (st : Vm.Interp.t) (g : t) addr =
  Bytes.get g.Vm.Interp.dirty (addr - st.Vm.Interp.image.Vm.Image.heap_base) <> '\000'

(** Empty the set, resetting the dirty map entries it covers. After a
    minor collection the nursery is empty, so no old→young references
    exist and every recorded slot is stale. *)
let clear (st : Vm.Interp.t) (g : t) =
  let hb = st.Vm.Interp.image.Vm.Image.heap_base in
  for i = 0 to g.Vm.Interp.remset_len - 1 do
    Bytes.set g.Vm.Interp.dirty (g.Vm.Interp.remset.(i) - hb) '\000'
  done;
  g.Vm.Interp.remset_len <- 0
