(** Profile-guided placement policy: turn measured per-site lifetimes into
    per-site allocation decisions.

    The measurement half lives in {!Profile}: every allocation site carries
    its survival rate (words copied out of an evacuated region over words
    that had the chance to die there). This module is the decision half —
    the classifier that maps a site's measured rate and sample mass onto
    one of three placements:

    - {e nursery}: the default. Allocate in the nursery and let minor
      collections sort the wheat from the chaff. Every site starts here,
      and every site without enough completed lifetimes to judge stays
      here — a low-confidence pretenure is worse than none, because a
      wrongly pretenured short-lived object is immortal until the next
      full collection.
    - {e pretenure}: the site's objects overwhelmingly survive, so paying
      the copy to promote them one at a time is pure waste. Allocate
      directly in the old generation.
    - {e pool}: pretenure-grade survival {e and} a high allocation count —
      a linked structure grown cell by cell from one site. Such sites get
      per-site bump regions carved from the old generation, so the
      structure ends up contiguous for locality instead of interleaved
      with every other promotion.

    A policy is serialized as a versioned [mm-policy] v1 JSON document.
    Sites are keyed by the stable (proc, line, col, tdesc) tuple rather
    than by site id, so a policy derived from one build maps onto an image
    recompiled with different optimization flags (site {e ids} are
    assigned in lowering order and may shift; source positions and the
    allocated type do not). *)

module J = Telemetry.Json

type decision = Nursery | Pretenure | Pool

(** Classifier knobs. [pretenure_rate] is the survival-rate floor for
    leaving the nursery; [min_sample_words] is the confidence floor —
    a site must have seen at least this many words complete a lifetime
    (survive or die) before its rate is trusted; [pool_min_allocs] routes
    high-count pretenure-grade sites to pooled placement. *)
type thresholds = {
  pretenure_rate : float;
  min_sample_words : int;
  pool_min_allocs : int;
}

let default_thresholds =
  { pretenure_rate = 0.8; min_sample_words = 64; pool_min_allocs = 32 }

(** One classified site. The measured rate and sample mass ride along for
    human inspection and for tooling that re-filters a policy; only the
    key and the decision affect execution. *)
type entry = {
  e_proc : string;
  e_line : int;
  e_col : int;
  e_tdesc : int;
  e_open : bool;
  e_decision : decision;
  e_rate : float; (* measured survival rate behind the decision *)
  e_samples : int; (* completed-lifetime words the rate rests on *)
  e_allocs : int; (* allocations observed at the site *)
}

type t = { thresholds : thresholds; entries : entry list }

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)
(* ------------------------------------------------------------------ *)

(** The classifier itself, shared verbatim by the offline path (a parsed
    [mm-profile] document) and the online adaptive path (a live
    {!Profile.t} side table) — one function, so the adaptive mode
    converges on exactly the decisions a prior profiled run would have
    produced from the same counts. *)
let classify th ~allocs ~survived_words ~dead_words =
  let samples = survived_words + dead_words in
  if samples < max 1 th.min_sample_words then Nursery
  else
    let rate = float_of_int survived_words /. float_of_int samples in
    if rate < th.pretenure_rate then Nursery
    else if allocs >= th.pool_min_allocs then Pool
    else Pretenure

let entry_of_counts th ~proc ~line ~col ~tdesc ~open_ ~allocs ~survived_words
    ~dead_words =
  let samples = survived_words + dead_words in
  {
    e_proc = proc;
    e_line = line;
    e_col = col;
    e_tdesc = tdesc;
    e_open = open_;
    e_decision = classify th ~allocs ~survived_words ~dead_words;
    e_rate =
      (if samples = 0 then 0.0
       else float_of_int survived_words /. float_of_int samples);
    e_samples = samples;
    e_allocs = allocs;
  }

(** Derive a policy from a live profiler side table (the online adaptive
    path). *)
let derive_from_stats ?(thresholds = default_thresholds) (p : Profile.t) : t =
  let entries =
    List.init (Array.length p.Profile.sites) (fun i ->
        let s = p.Profile.sites.(i) and st = p.Profile.stats.(i) in
        entry_of_counts thresholds ~proc:s.Profile.s_proc ~line:s.Profile.s_line
          ~col:s.Profile.s_col ~tdesc:s.Profile.s_tdesc ~open_:s.Profile.s_open
          ~allocs:st.Profile.st_allocs
          ~survived_words:(st.Profile.st_minor_words + st.Profile.st_full_words)
          ~dead_words:st.Profile.st_dead_words)
  in
  { thresholds; entries }

(* ------------------------------------------------------------------ *)
(* mm-profile input (the offline path)                                 *)
(* ------------------------------------------------------------------ *)

exception Policy_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Policy_error m)) fmt

let j_int k o = match J.member k o with Some (J.Int i) -> i | _ -> 0
let j_str k o = match J.member k o with Some (J.Str s) -> s | _ -> ""
let j_bool k o = match J.member k o with Some (J.Bool b) -> b | _ -> false

let j_float k o =
  match J.member k o with
  | Some (J.Float f) -> f
  | Some (J.Int i) -> float_of_int i
  | _ -> 0.0

(** Derive a policy from a parsed [mm-profile] v1 document (the output of
    [mmrun --profile]).
    @raise Policy_error when the document is not an mm-profile. *)
let derive_from_profile ?(thresholds = default_thresholds) (doc : J.t) : t =
  (match J.member "schema" doc with
  | Some (J.Str "mm-profile") -> ()
  | Some (J.Str s) -> fail "not an mm-profile document (schema %S)" s
  | _ -> fail "not an mm-profile document (no schema)");
  let sites =
    match Option.bind (J.member "sites" doc) J.to_list with
    | Some sites -> sites
    | None -> fail "mm-profile document has no sites array"
  in
  let entries =
    List.map
      (fun s ->
        entry_of_counts thresholds ~proc:(j_str "proc" s) ~line:(j_int "line" s)
          ~col:(j_int "col" s) ~tdesc:(j_int "tdesc" s)
          ~open_:(j_bool "open_array" s) ~allocs:(j_int "allocs" s)
          ~survived_words:
            (j_int "minor_survived_words" s + j_int "full_survived_words" s)
          ~dead_words:(j_int "dead_words" s))
      sites
  in
  { thresholds; entries }

(* ------------------------------------------------------------------ *)
(* mm-policy serialization                                             *)
(* ------------------------------------------------------------------ *)

let schema_name = "mm-policy"
let schema_version = 1

let decision_to_string = function
  | Nursery -> "nursery"
  | Pretenure -> "pretenure"
  | Pool -> "pool"

let decision_of_string = function
  | "nursery" -> Nursery
  | "pretenure" -> Pretenure
  | "pool" -> Pool
  | s -> fail "unknown placement decision %S" s

let entry_json (e : entry) : J.t =
  J.Obj
    [
      ("proc", J.Str e.e_proc);
      ("line", J.Int e.e_line);
      ("col", J.Int e.e_col);
      ("tdesc", J.Int e.e_tdesc);
      ("open_array", J.Bool e.e_open);
      ("decision", J.Str (decision_to_string e.e_decision));
      ("survival_rate", J.Float e.e_rate);
      ("sample_words", J.Int e.e_samples);
      ("allocs", J.Int e.e_allocs);
    ]

let to_json (t : t) : J.t =
  J.Obj
    [
      ("schema", J.Str schema_name);
      ("version", J.Int schema_version);
      ( "thresholds",
        J.Obj
          [
            ("pretenure_rate", J.Float t.thresholds.pretenure_rate);
            ("min_sample_words", J.Int t.thresholds.min_sample_words);
            ("pool_min_allocs", J.Int t.thresholds.pool_min_allocs);
          ] );
      ("sites", J.List (List.map entry_json t.entries));
    ]

(** Parse an [mm-policy] v1 document.
    @raise Policy_error on schema or version mismatch. *)
let of_json (doc : J.t) : t =
  (match J.member "schema" doc with
  | Some (J.Str s) when s = schema_name -> ()
  | Some (J.Str s) -> fail "not an mm-policy document (schema %S)" s
  | _ -> fail "not an mm-policy document (no schema)");
  (match J.member "version" doc with
  | Some (J.Int v) when v = schema_version -> ()
  | Some (J.Int v) -> fail "unsupported mm-policy version %d (want %d)" v schema_version
  | _ -> fail "mm-policy document has no version");
  let thresholds =
    match J.member "thresholds" doc with
    | Some th ->
        {
          pretenure_rate = j_float "pretenure_rate" th;
          min_sample_words = j_int "min_sample_words" th;
          pool_min_allocs = j_int "pool_min_allocs" th;
        }
    | None -> default_thresholds
  in
  let entries =
    match Option.bind (J.member "sites" doc) J.to_list with
    | None -> fail "mm-policy document has no sites array"
    | Some sites ->
        List.map
          (fun s ->
            {
              e_proc = j_str "proc" s;
              e_line = j_int "line" s;
              e_col = j_int "col" s;
              e_tdesc = j_int "tdesc" s;
              e_open = j_bool "open_array" s;
              e_decision = decision_of_string (j_str "decision" s);
              e_rate = j_float "survival_rate" s;
              e_samples = j_int "sample_words" s;
              e_allocs = j_int "allocs" s;
            })
          sites
  in
  { thresholds; entries }

(* ------------------------------------------------------------------ *)
(* Mapping a policy onto an image                                      *)
(* ------------------------------------------------------------------ *)

(* The per-site decision codes the allocator consults (O(1) array index on
   the allocation fast path; see Vm.Interp). *)
let nursery_code = 0
let pretenure_code = 1
let pool_code = 2

let decision_code = function
  | Nursery -> nursery_code
  | Pretenure -> pretenure_code
  | Pool -> pool_code

(** Map a policy onto an image's static site table: a decision-code array
    indexed by site id. Sites are matched by the stable
    (proc, line, col, tdesc) key; unmatched sites default to the nursery,
    so a policy from an older build degrades gracefully rather than
    failing. Returns the array and the number of sites matched. *)
let decisions_for (t : t) (sites : Profile.site array) : int array * int =
  let tbl = Hashtbl.create (List.length t.entries * 2) in
  List.iter
    (fun e -> Hashtbl.replace tbl (e.e_proc, e.e_line, e.e_col, e.e_tdesc) e.e_decision)
    t.entries;
  let matched = ref 0 in
  let codes =
    Array.map
      (fun (s : Profile.site) ->
        match
          Hashtbl.find_opt tbl
            (s.Profile.s_proc, s.Profile.s_line, s.Profile.s_col, s.Profile.s_tdesc)
        with
        | Some d ->
            incr matched;
            decision_code d
        | None -> nursery_code)
      sites
  in
  (codes, !matched)

(** Decision codes straight from a live profiler side table, indexed by
    site id — the online adaptive path, which needs no key matching since
    the ids are this run's own. Classification is {!classify}, the same
    function the offline pipeline runs, so the adaptive mode converges on
    the decisions a prior profiled run would have produced from the same
    counts. *)
let decision_codes_from_stats ?(thresholds = default_thresholds) (p : Profile.t) :
    int array =
  Array.map
    (fun (st : Profile.site_stats) ->
      decision_code
        (classify thresholds ~allocs:st.Profile.st_allocs
           ~survived_words:(st.Profile.st_minor_words + st.Profile.st_full_words)
           ~dead_words:st.Profile.st_dead_words))
    p.Profile.stats

(** A synthetic policy placing every given site with [decision] — the
    pretenure-all / pool-all configurations the differential tests sweep. *)
let uniform decision (sites : Profile.site array) : t =
  {
    thresholds = default_thresholds;
    entries =
      Array.to_list
        (Array.map
           (fun (s : Profile.site) ->
             {
               e_proc = s.Profile.s_proc;
               e_line = s.Profile.s_line;
               e_col = s.Profile.s_col;
               e_tdesc = s.Profile.s_tdesc;
               e_open = s.Profile.s_open;
               e_decision = decision;
               e_rate = 0.0;
               e_samples = 0;
               e_allocs = 0;
             })
           sites);
  }
