(** Allocation-site profiling: per-site allocation counts, object lifetime
    (survival) attribution across copying collections, and heap census
    snapshots.

    The profiler is entirely passive. Site ids are assigned at MIR lowering
    and ride inside the allocating runtime calls; the machine attributes
    each runtime allocation to its site through {!on_alloc}. Survival data
    piggybacks on the collector's copy path: every object evacuated by the
    Cheney [forward] routine is re-keyed from its old address to its new one
    ({!on_copy}), and whatever is still keyed inside the evacuated source
    range when the collection finishes died there ({!end_collection}). The
    side table is keyed by heap address — exact, because the runtime hands
    us every allocation and every copy, and addresses are unique within a
    space at any instant.

    Nothing here is gated on the telemetry master switch: a profiler is
    either attached to the machine (every event recorded) or absent (every
    hook is a [None] match on the hot path). Pause-time distributions come
    from the telemetry histograms, so emission ({!to_json}) expects
    telemetry to have been enabled for the run. *)

(** A static allocation site, as assigned at lowering (a mirror of
    [Mir.Ir.alloc_site], kept separate so this library sits below the
    compiler and VM in the dependency order). *)
type site = {
  s_id : int;
  s_proc : string; (* enclosing procedure *)
  s_line : int;
  s_col : int;
  s_tdesc : int; (* type descriptor allocated here *)
  s_open : bool; (* open-array site *)
}

type site_stats = {
  mutable st_allocs : int; (* objects allocated here *)
  mutable st_alloc_words : int; (* words allocated here *)
  mutable st_minor_survivals : int; (* objects copied out of a nursery *)
  mutable st_minor_words : int; (* words promoted at minor collections *)
  mutable st_full_survivals : int; (* objects copied at full collections *)
  mutable st_full_words : int; (* words copied at full collections *)
  mutable st_dead_objects : int; (* objects reclaimed *)
  mutable st_dead_words : int; (* words reclaimed *)
}

(** One heap census: live objects/words at a collection boundary, broken
    down by type descriptor and by allocation site. *)
type census = {
  c_collection : int; (* completed collections when taken *)
  c_objects : int;
  c_words : int;
  c_by_tdesc : (int * int * int) list; (* (tdesc, objects, words) *)
  c_by_site : (int * int * int) list; (* (site, objects, words); -1 = unknown *)
}

type t = {
  sites : site array; (* index = site id *)
  stats : site_stats array; (* parallel to [sites] *)
  live : (int, int * int) Hashtbl.t; (* heap addr -> (site id, words) *)
  mutable census_every : int; (* 0 = censuses off *)
  mutable collections : int; (* collections observed end-to-end *)
  mutable minor_collections : int;
  mutable full_collections : int;
  mutable cur_minor : bool; (* kind of the collection in progress *)
  mutable censuses : census list; (* most recent first *)
}

let fresh_stats () =
  {
    st_allocs = 0;
    st_alloc_words = 0;
    st_minor_survivals = 0;
    st_minor_words = 0;
    st_full_survivals = 0;
    st_full_words = 0;
    st_dead_objects = 0;
    st_dead_words = 0;
  }

let create (sites : site array) : t =
  {
    sites;
    stats = Array.init (Array.length sites) (fun _ -> fresh_stats ());
    live = Hashtbl.create 4096;
    census_every = 0;
    collections = 0;
    minor_collections = 0;
    full_collections = 0;
    cur_minor = false;
    censuses = [];
  }

let set_census_every t n = t.census_every <- max 0 n

let in_range t site = site >= 0 && site < Array.length t.stats

let credit_dead t site words =
  if in_range t site then begin
    let st = t.stats.(site) in
    st.st_dead_objects <- st.st_dead_objects + 1;
    st.st_dead_words <- st.st_dead_words + words
  end

(** Record an allocation of [words] words at heap address [addr] from
    static site [site]. A stale binding at the same address means the
    previous occupant was reclaimed without a copy-out (the non-moving
    conservative collector recycles addresses through its free list); it
    is credited as dead before being replaced. *)
let on_alloc t ~site ~addr ~words =
  (match Hashtbl.find_opt t.live addr with
  | Some (old_site, old_words) -> credit_dead t old_site old_words
  | None -> ());
  Hashtbl.replace t.live addr (site, words);
  if in_range t site then begin
    let st = t.stats.(site) in
    st.st_allocs <- st.st_allocs + 1;
    st.st_alloc_words <- st.st_alloc_words + words
  end

let begin_collection t ~minor = t.cur_minor <- minor

(** An object was evacuated from [src] to [dst]: re-key its side-table
    entry and credit the survival to its site. Objects the profiler never
    saw allocated (none, in practice) pass through unattributed. *)
let on_copy t ~src ~dst ~words =
  match Hashtbl.find_opt t.live src with
  | None -> ()
  | Some (site, _) ->
      Hashtbl.remove t.live src;
      Hashtbl.replace t.live dst (site, words);
      if in_range t site then begin
        let st = t.stats.(site) in
        if t.cur_minor then begin
          st.st_minor_survivals <- st.st_minor_survivals + 1;
          st.st_minor_words <- st.st_minor_words + words
        end
        else begin
          st.st_full_survivals <- st.st_full_survivals + 1;
          st.st_full_words <- st.st_full_words + words
        end
      end

(** The collection is over and [src_lo, src_hi) was evacuated: everything
    still keyed there was not forwarded, i.e. it died. Sweep those entries
    into the per-site death counts. *)
let end_collection t ~src_lo ~src_hi =
  let dead = ref [] in
  Hashtbl.iter
    (fun addr entry -> if addr >= src_lo && addr < src_hi then dead := (addr, entry) :: !dead)
    t.live;
  List.iter
    (fun (addr, (site, words)) ->
      Hashtbl.remove t.live addr;
      credit_dead t site words)
    !dead;
  t.collections <- t.collections + 1;
  if t.cur_minor then t.minor_collections <- t.minor_collections + 1
  else t.full_collections <- t.full_collections + 1

(** Is a census due right now (call after {!end_collection})? *)
let census_due t = t.census_every > 0 && t.collections mod t.census_every = 0

(** Site id of a live heap object, [-1] if the profiler never saw it. *)
let site_of_addr t addr =
  match Hashtbl.find_opt t.live addr with Some (site, _) -> site | None -> -1

let record_census t c = t.censuses <- c :: t.censuses

(** Fraction of this site's attributed words that survived a collection,
    in [0,1]; objects still live (never collected either way) count for
    neither side. An object surviving several collections is credited each
    time, which weights long-lived sites up — exactly the signal a
    pretenuring policy wants. *)
let survival_rate (st : site_stats) =
  let survived = st.st_minor_words + st.st_full_words in
  let denom = survived + st.st_dead_words in
  if denom = 0 then 0.0 else float_of_int survived /. float_of_int denom

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

module J = Telemetry.Json
module M = Telemetry.Metrics

let schema_name = "mm-profile"
let schema_version = 1

let hist_json name : J.t =
  match M.find_histogram name with
  | None -> J.Obj [ ("count", J.Int 0); ("buckets", J.List []) ]
  | Some h ->
      let buckets =
        M.nonzero_buckets h
        |> List.map (fun (lo, hi, n) ->
               J.Obj
                 [
                   ("lo", J.Float lo);
                   ("hi", if Float.is_finite hi then J.Float hi else J.Null);
                   ("count", J.Int n);
                 ])
      in
      J.Obj
        [
          ("count", J.Int h.M.h_count);
          ("min_ns", J.Float (if h.M.h_count = 0 then 0.0 else h.M.h_min));
          ("max_ns", J.Float (if h.M.h_count = 0 then 0.0 else h.M.h_max));
          ("mean_ns", J.Float (M.mean h));
          ("p50_ns", J.Float (M.percentile h 0.50));
          ("p90_ns", J.Float (M.percentile h 0.90));
          ("p99_ns", J.Float (M.percentile h 0.99));
          ("buckets", J.List buckets);
        ]

let site_json t i : J.t =
  let s = t.sites.(i) and st = t.stats.(i) in
  J.Obj
    [
      ("id", J.Int s.s_id);
      ("proc", J.Str s.s_proc);
      ("line", J.Int s.s_line);
      ("col", J.Int s.s_col);
      ("tdesc", J.Int s.s_tdesc);
      ("open_array", J.Bool s.s_open);
      ("allocs", J.Int st.st_allocs);
      ("alloc_words", J.Int st.st_alloc_words);
      ("minor_survivals", J.Int st.st_minor_survivals);
      ("minor_survived_words", J.Int st.st_minor_words);
      ("full_survivals", J.Int st.st_full_survivals);
      ("full_survived_words", J.Int st.st_full_words);
      ("dead_objects", J.Int st.st_dead_objects);
      ("dead_words", J.Int st.st_dead_words);
      ("survival_rate", J.Float (survival_rate st));
    ]

let census_json (c : census) : J.t =
  let breakdown key entries =
    J.List
      (List.map
         (fun (id, objects, words) ->
           J.Obj [ (key, J.Int id); ("objects", J.Int objects); ("words", J.Int words) ])
         entries)
  in
  J.Obj
    [
      ("collection", J.Int c.c_collection);
      ("live_objects", J.Int c.c_objects);
      ("live_words", J.Int c.c_words);
      ("by_tdesc", breakdown "tdesc" c.c_by_tdesc);
      ("by_site", breakdown "site" c.c_by_site);
    ]

(** The versioned profile document. Pause distributions are read from the
    telemetry histograms ([gc.pause_ns] for every collection, plus the
    generational minor/major split), so the run must have had telemetry
    enabled for them to be populated. *)
let to_json t : J.t =
  J.Obj
    [
      ("schema", J.Str schema_name);
      ("version", J.Int schema_version);
      ("sites", J.List (List.init (Array.length t.sites) (site_json t)));
      ( "collections",
        J.Obj
          [
            ("total", J.Int t.collections);
            ("minor", J.Int t.minor_collections);
            ("full", J.Int t.full_collections);
          ] );
      ( "pauses",
        J.Obj
          [
            ("all", hist_json "gc.pause_ns");
            ("minor", hist_json "gc.minor_pause_ns");
            ("full", hist_json "gc.major_pause_ns");
          ] );
      (* Copy-phase totals (serial and parallel paths both feed them): the
         gc.copy_words counter, the exact gc.copy_ns histogram sum, and the
         bandwidth they imply. *)
      ( "copy",
        let words = Telemetry.Metrics.counter_value "gc.copy_words" in
        let ns =
          match Telemetry.Metrics.find_histogram "gc.copy_ns" with
          | Some h -> h.Telemetry.Metrics.h_sum
          | None -> 0.0
        in
        J.Obj
          [
            ("copy_words", J.Int words);
            ("copy_ns", J.Float ns);
            ( "mwords_per_s",
              J.Float (if ns > 0.0 then float_of_int words /. (ns /. 1e3) else 0.0) );
          ] );
      ("censuses", J.List (List.rev_map census_json t.censuses));
    ]
