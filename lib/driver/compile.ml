(** End-to-end compilation driver:
    source → tokens → AST → typed AST → MIR → (optimizer) → UVM image. *)

type options = {
  optimize : bool;
  checks : bool; (* NIL / bounds checks (Modula-3 semantics) *)
  gc_restrict : bool; (* §6.2: off reproduces "without gc restrictions" *)
  noalloc_analysis : bool; (* calls to never-allocating procs are not gc-points *)
  loop_gcpoints : bool; (* §5.3: guarantee a gc-point in every loop *)
  barrier_elim : bool; (* drop write barriers on provably nursery-bound stores *)
  heap_words : int;
  stack_words : int;
  scheme : Gcmaps.Encode.scheme;
  table_opts : Gcmaps.Encode.options;
}

let default_options =
  {
    optimize = false;
    checks = true;
    gc_restrict = true;
    noalloc_analysis = false;
    loop_gcpoints = false;
    barrier_elim = true;
    heap_words = 65536;
    stack_words = 16384;
    scheme = Gcmaps.Encode.Delta_main;
    table_opts = { Gcmaps.Encode.packing = true; previous = true };
  }

let to_mir ?(options = default_options) (source : string) : Mir.Ir.program =
  let module T = Telemetry in
  let tast =
    T.Timer.time ~cat:"compile" "frontend.typecheck" (fun () ->
        M3l.Typecheck.check_source source)
  in
  let prog =
    T.Timer.time ~cat:"compile" "mir.lower" (fun () ->
        Mir.Lower.program ~checks:options.checks tast)
  in
  if options.optimize then Opt.Pipeline.optimize prog;
  if options.loop_gcpoints then
    ignore (T.Timer.time ~cat:"compile" "opt.loop_gcpoints" (fun () ->
        Opt.Loop_gcpoints.run prog));
  (* Must run after every pass that can insert gc-points: a gc-point the
     analysis did not see would make an elimination unsound. *)
  if options.barrier_elim then
    T.Timer.time ~cat:"compile" "opt.barrier_elim" (fun () ->
        Opt.Barrier_elim.run prog);
  prog

let image_of_mir ?(options = default_options) (prog : Mir.Ir.program) : Vm.Image.t =
  let module T = Telemetry in
  let noalloc =
    if options.noalloc_analysis then
      T.Timer.time ~cat:"compile" "opt.noalloc" (fun () -> Opt.Noalloc.analyze prog)
    else fun _ -> false
  in
  let build_opts =
    {
      Vm.Image.heap_words = options.heap_words;
      stack_words = options.stack_words;
      select = { Codegen.Select.gc_restrict = options.gc_restrict; noalloc };
      scheme = options.scheme;
      table_opts = options.table_opts;
    }
  in
  T.Timer.time ~cat:"compile" "codegen.image" (fun () -> Vm.Image.build ~opts:build_opts prog)

let compile ?(options = default_options) (source : string) : Vm.Image.t =
  image_of_mir ~options (to_mir ~options source)

type collector = Precise | Generational | Incremental | Conservative | No_gc

type run_result = {
  output : string;
  instructions : int;
  allocations : int;
  alloc_words : int;
  collections : int;
  engine : string; (* "threaded" or "switch" *)
  gc : Vm.Interp.gc_stats;
  placement : (string * int array) option;
      (* (source, per-site decision codes) when placement was active *)
}

(** An image's static site table converted to the profiler's own site
    records (so [lib/profile] stays below the compiler and VM in the
    dependency order). Shared by the profiler and the policy mapper, so a
    policy keys against exactly the sites a profile of the same image
    would report. *)
let sites_for (image : Vm.Image.t) : Profile.site array =
  Array.map
    (fun (s : Mir.Ir.alloc_site) ->
      {
        Profile.s_id = s.Mir.Ir.as_id;
        s_proc = s.Mir.Ir.as_proc;
        s_line = s.Mir.Ir.as_line;
        s_col = s.Mir.Ir.as_col;
        s_tdesc = s.Mir.Ir.as_tdesc;
        s_open = s.Mir.Ir.as_open;
      })
    image.Vm.Image.alloc_sites

(** A fresh profiler for an image. Attach it via [run ~profile]. *)
let profile_for (image : Vm.Image.t) : Profile.t = Profile.create (sites_for image)

(** Parse an [mm-policy] file. @raise Policy.Policy_error on schema
    mismatch, [Sys_error] on I/O failure. *)
let policy_of_file path : Policy.t =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Policy.of_json (Telemetry.Json.parse s)

(* Adaptive-heap switches shared by every entry point. [MM_HEAP_GROW]
   enables growth, [MM_HEAP_MAX] sets the semispace cap in words (growth
   is implied when a cap is given), [MM_ALLOC_STORM] forces a collection
   every Nth allocation (fault-injection pressure). *)
let env_truthy name =
  match Sys.getenv_opt name with
  | Some ("1" | "true" | "yes" | "on") -> true
  | _ -> false

let env_pos_int name =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n >= 1 -> Some n
  | _ -> None

(** Default semispace cap when growth is on but no cap was given: plenty
    for every workload in the repo, small enough to stay a sane bound. *)
let default_heap_max_words = 4_194_304

(** Arm the adaptive-resize policy on a fresh interpreter state.
    [heap_grow]/[heap_max_words] come from flags; the environment
    switches act when the flags are absent. Only the moving collectors
    resize: the conservative and incremental collectors' free-list blocks
    and the no-gc configuration have no post-collection safe point to
    resize at. *)
let arm_heap_policy ?heap_grow ?heap_max_words ~(collector : collector) st =
  let env_max = env_pos_int "MM_HEAP_MAX" in
  let grow =
    match heap_grow with
    | Some b -> b
    | None -> env_truthy "MM_HEAP_GROW" || heap_max_words <> None || env_max <> None
  in
  let moving = match collector with Precise | Generational -> true | _ -> false in
  if grow && moving then begin
    let cap =
      match heap_max_words with
      | Some w -> w
      | None -> ( match env_max with Some w -> w | None -> default_heap_max_words)
    in
    st.Vm.Interp.heap_resize <- true;
    st.Vm.Interp.heap_max_words <- max cap st.Vm.Interp.from_words;
    st.Vm.Interp.heap_min_words <- st.Vm.Interp.from_words
  end;
  match env_pos_int "MM_ALLOC_STORM" with
  | Some n -> st.Vm.Interp.alloc_pressure_every <- n
  | None -> ()

let run ?(collector = Precise) ?nursery_words ?pause_budget_us ?profile
    ?(fuel = 200_000_000) ?heap_grow ?heap_max_words ?policy ?adaptive
    (image : Vm.Image.t) : run_result =
  (* Environment mode switches are resolved up front so the heap policy
     (which keys on whether the collector moves) sees the effective mode.
     MM_GC_INCREMENTAL, like MM_GEN, flips every precise-collector entry
     point; if both are set the incremental mode wins (it subsumes the
     pause-latency motivation for the nursery). *)
  let collector =
    match collector with
    | Precise when Gc.Incremental.env_enabled () ->
        if Gc.Nursery.env_enabled () then
          Telemetry.Log.warn_once
            "MM_GEN and MM_GC_INCREMENTAL are both set: the incremental \
             collector wins; unset MM_GC_INCREMENTAL for generational mode";
        Incremental
    | c -> c
  in
  (* Fidelity note (§6.2): an image built with --no-gc-restrict may keep
     live pointers in forms the tables cannot describe; collecting while it
     runs can corrupt the heap. Warn whenever such output is executed under
     a collector. *)
  if (not image.Vm.Image.gc_safe) && collector <> No_gc then
    Telemetry.Log.warn_once
      "executing --no-gc-restrict output with a collector installed: code is \
       not gc-safe by construction; a collection may corrupt the heap";
  let st = Vm.Interp.create image in
  (* Adaptive pretenuring derives its decisions from live lifetime stats,
     so it needs a profiler attached even when the caller asked for none. *)
  let profile =
    match (profile, adaptive) with
    | None, Some _ -> Some (profile_for image)
    | p, _ -> p
  in
  st.Vm.Interp.prof <- profile;
  (* Placement policy: an explicit [?policy] wins; otherwise MM_POLICY
     names an mm-policy file to load. A loaded policy is mapped onto this
     image's site table by stable (proc, line, col, tdesc) key. *)
  let policy =
    match policy with
    | Some _ as p -> p
    | None -> Option.map policy_of_file (Sys.getenv_opt "MM_POLICY")
  in
  (match policy with
  | Some p ->
      let codes, _matched = Policy.decisions_for p (sites_for image) in
      Vm.Interp.set_placement st ~source:"file" codes
  | None -> (
      match adaptive with
      | Some n when n >= 1 -> st.Vm.Interp.adaptive_after <- n
      | _ -> ()));
  arm_heap_policy ?heap_grow ?heap_max_words ~collector st;
  let nursery_words =
    match nursery_words with
    | Some _ as w -> w
    | None -> Gc.Nursery.env_nursery_words ()
  in
  (match collector with
  | Precise ->
      (* MM_GEN flips every precise-collector entry point — the whole test
         suite, the benches, the CLIs — into generational mode without new
         plumbing, on the very same image. *)
      if Gc.Nursery.env_enabled () then Gc.Nursery.install ?nursery_words st
      else Gc.Cheney.install st
  | Generational -> Gc.Nursery.install ?nursery_words st
  | Incremental -> ignore (Gc.Incremental.install ?pause_budget_us st)
  | Conservative -> ignore (Gc.Conservative.install st)
  | No_gc -> ());
  (* Engine choice is a pure runtime switch over the same machine state:
     the threaded pre-translated dispatch by default, the reference switch
     interpreter under --no-threaded / MM_THREADED=0. *)
  let threaded = Vm.Threaded.enabled () in
  if threaded then Vm.Threaded.run ~fuel st else Vm.Interp.run ~fuel st;
  {
    output = Vm.Interp.output st;
    instructions = st.Vm.Interp.icount;
    allocations = st.Vm.Interp.alloc_count;
    alloc_words = st.Vm.Interp.alloc_words;
    collections = st.Vm.Interp.gc.Vm.Interp.collections;
    engine = (if threaded then "threaded" else "switch");
    gc = st.Vm.Interp.gc;
    placement = Vm.Interp.placement_info st;
  }

(** Compile and run in one step (tests and examples). *)
let run_source ?(options = default_options) ?collector ?nursery_words ?pause_budget_us
    ?profile ?fuel ?heap_grow ?heap_max_words ?policy ?adaptive source =
  run ?collector ?nursery_words ?pause_budget_us ?profile ?fuel ?heap_grow
    ?heap_max_words ?policy ?adaptive (compile ~options source)
