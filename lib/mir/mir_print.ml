(** Textual dump of MIR functions, for tests and -dump-mir. *)

open Ir

let pp_operand fmt = function
  | Otemp t -> Format.fprintf fmt "t%d" t
  | Oimm n -> Format.fprintf fmt "%d" n

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Min -> "min"
  | Max -> "max"

let relop_name = function
  | Req -> "eq"
  | Rne -> "ne"
  | Rlt -> "lt"
  | Rle -> "le"
  | Rgt -> "gt"
  | Rge -> "ge"

let callee_name prog = function
  | Cuser fid -> prog.funcs.(fid).fname
  | Crt rc -> rt_name rc

let pp_kind fmt = function
  | Kscalar -> Format.fprintf fmt "s"
  | Kptr -> Format.fprintf fmt "p"
  | Kstack -> Format.fprintf fmt "a"
  | Kderived d -> Format.fprintf fmt "d[%a]" Deriv.pp d

let pp_instr prog fmt i =
  match i with
  | Mov (d, s) -> Format.fprintf fmt "t%d := %a" d pp_operand s
  | Bin (op, d, a, b) ->
      Format.fprintf fmt "t%d := %s %a, %a" d (binop_name op) pp_operand a pp_operand b
  | Neg (d, s) -> Format.fprintf fmt "t%d := neg %a" d pp_operand s
  | Abs (d, s) -> Format.fprintf fmt "t%d := abs %a" d pp_operand s
  | Setrel (r, d, a, b) ->
      Format.fprintf fmt "t%d := set%s %a, %a" d (relop_name r) pp_operand a pp_operand b
  | Ld_local (d, l, o) -> Format.fprintf fmt "t%d := local%d[%d]" d l o
  | St_local (l, o, s) -> Format.fprintf fmt "local%d[%d] := %a" l o pp_operand s
  | Ld_global (d, g, o) -> Format.fprintf fmt "t%d := global%d[%d]" d g o
  | St_global (g, o, s) -> Format.fprintf fmt "global%d[%d] := %a" g o pp_operand s
  | Lda_local (d, l, o) -> Format.fprintf fmt "t%d := &local%d + %d" d l o
  | Lda_global (d, g, o) -> Format.fprintf fmt "t%d := &global%d + %d" d g o
  | Lda_text (d, x) -> Format.fprintf fmt "t%d := &text%d" d x
  | Load (d, a, o) -> Format.fprintf fmt "t%d := M[%a + %d]" d pp_operand a o
  | Store (a, o, v) -> Format.fprintf fmt "M[%a + %d] := %a" pp_operand a o pp_operand v
  | Store_nb (a, o, v) ->
      Format.fprintf fmt "M[%a + %d] :=[nb] %a" pp_operand a o pp_operand v
  | Call (d, c, args) ->
      (match d with
      | Some d -> Format.fprintf fmt "t%d := call %s(" d (callee_name prog c)
      | None -> Format.fprintf fmt "call %s(" (callee_name prog c));
      List.iteri
        (fun i a -> Format.fprintf fmt "%s%a" (if i > 0 then ", " else "") pp_operand a)
        args;
      Format.fprintf fmt ")"

let pp_term fmt = function
  | Jmp l -> Format.fprintf fmt "jmp L%d" l
  | Cjmp (r, a, b, t, e) ->
      Format.fprintf fmt "if %s %a, %a then L%d else L%d" (relop_name r) pp_operand a
        pp_operand b t e
  | Ret None -> Format.fprintf fmt "ret"
  | Ret (Some o) -> Format.fprintf fmt "ret %a" pp_operand o
  | Unreachable -> Format.fprintf fmt "unreachable"

let pp_func prog fmt (f : func) =
  Format.fprintf fmt "func %s(%d params) {@." f.fname f.nparams;
  Array.iteri
    (fun i (info : local_info) ->
      Format.fprintf fmt "  local%d %s : size=%d%s@." i info.l_name info.l_size
        (match info.l_slot with
        | Sscalar -> ""
        | Sptr -> " ptr"
        | Saddr -> " addr"
        | Sderived d -> Format.asprintf " derived[%a]" Deriv.pp d
        | Sambig a ->
            Printf.sprintf " ambig(path=local%d, %d cases)" a.Ir.path_local
              (List.length a.Ir.cases)
        | Saggregate ptrs ->
            Printf.sprintf " agg(ptrs=[%s])" (String.concat ";" (List.map string_of_int ptrs))))
    f.locals;
  Array.iteri
    (fun lbl (b : block) ->
      Format.fprintf fmt "L%d:@." lbl;
      List.iter
        (fun i ->
          Format.fprintf fmt "  %a" (pp_instr prog) i;
          (match instr_def i with
          | Some d -> Format.fprintf fmt "   ; %a" pp_kind (temp_kind f d)
          | None -> ());
          Format.fprintf fmt "@.")
        b.instrs;
      Format.fprintf fmt "  %a@." pp_term b.term)
    f.blocks;
  Format.fprintf fmt "}@."

let func_to_string prog f = Format.asprintf "%a" (pp_func prog) f

let pp_program fmt prog =
  Format.fprintf fmt "program %s (main=%s)@." prog.pname prog.funcs.(prog.main_fid).fname;
  Array.iter (fun f -> pp_func prog fmt f) prog.funcs
