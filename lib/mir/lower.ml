open Support
module T = M3l.Tast
module Ty = M3l.Types

(* ------------------------------------------------------------------ *)
(* Program-level builder                                               *)
(* ------------------------------------------------------------------ *)

type pb = {
  tdescs : Rt.Typedesc.table;
  texts : string Growarr.t;
  mutable text_ids : int Ints.Smap.t;
  globals : Ir.global_info array;
  global_ids : (int, int) Hashtbl.t; (* var_id -> global index *)
  nprocs : int; (* user procs; main gets fid = nprocs *)
  alloc_sites : Ir.alloc_site Growarr.t; (* one entry per lowered NEW *)
}

(* Register a static allocation site; the returned id is baked into the
   allocating call instruction. *)
let new_site pb ~proc ~(loc : M3l.Srcloc.t) ~tdesc ~is_open =
  let id = Growarr.length pb.alloc_sites in
  ignore
    (Growarr.push pb.alloc_sites
       {
         Ir.as_id = id;
         as_proc = proc;
         as_line = loc.M3l.Srcloc.line;
         as_col = loc.M3l.Srcloc.col;
         as_tdesc = tdesc;
         as_open = is_open;
       });
  id

let intern_text pb s =
  match Ints.Smap.find_opt s pb.text_ids with
  | Some id -> id
  | None ->
      let id = Growarr.push pb.texts s in
      pb.text_ids <- Ints.Smap.add s id pb.text_ids;
      id

(* ------------------------------------------------------------------ *)
(* Function-level builder                                              *)
(* ------------------------------------------------------------------ *)

type bb = { mutable rev_instrs : Ir.instr list; mutable bterm : Ir.term option }

type fb = {
  pb : pb;
  proc_name : string; (* for allocation-site attribution *)
  checks : bool;
  blocks : bb Growarr.t;
  mutable cur : int; (* current block label *)
  kinds : Ir.kind Growarr.t;
  locals : Ir.local_info Growarr.t;
  var_storage : (int, storage) Hashtbl.t;
  temp_origin : (int, Ir.local) Hashtbl.t; (* temp -> stable local it copies *)
  mutable nil_err : int option; (* shared error blocks *)
  mutable bounds_err : int option;
}

and storage = Lslot of Ir.local | Gslot of int

let new_block fb =
  Growarr.push fb.blocks { rev_instrs = []; bterm = None }

let switch_to fb lbl = fb.cur <- lbl

let emit fb i =
  let b = Growarr.get fb.blocks fb.cur in
  match b.bterm with
  | None -> b.rev_instrs <- i :: b.rev_instrs
  | Some _ ->
      (* Code after a terminator (e.g. after RETURN): put it in a fresh,
         unreachable block so the CFG stays well formed. *)
      let lbl = new_block fb in
      switch_to fb lbl;
      (Growarr.get fb.blocks lbl).rev_instrs <- [ i ]

let set_term fb t =
  let b = Growarr.get fb.blocks fb.cur in
  match b.bterm with
  | None -> b.bterm <- Some t
  | Some _ ->
      let lbl = new_block fb in
      switch_to fb lbl;
      (Growarr.get fb.blocks lbl).bterm <- Some t

let fresh fb kind =
  let t = Growarr.push fb.kinds kind in
  t

let kind_of fb t = Growarr.get fb.kinds t

let kind_of_operand fb = function
  | Ir.Oimm _ -> Ir.Kscalar
  | Ir.Otemp t -> kind_of fb t

(* Derivation base for a pointer-or-derived temp, applying the paper's base
   preference: stack-allocated user variables are chosen over compiler
   temporaries when the temp is a direct copy of a stable local (§4). *)
let base_of fb t =
  match Hashtbl.find_opt fb.temp_origin t with
  | Some l -> Deriv.Blocal l
  | None -> Deriv.Btemp t

let deriv_of_value fb (o : Ir.operand) : Deriv.t =
  match o with
  | Ir.Oimm _ -> Deriv.empty
  | Ir.Otemp t -> (
      match kind_of fb t with
      | Ir.Kscalar | Ir.Kstack -> Deriv.empty
      | Ir.Kptr -> Deriv.of_base (base_of fb t)
      | Ir.Kderived _ ->
          (* The derived temp itself becomes the base; the collector's
             ordering rules handle chains of derivations. *)
          Deriv.of_base (base_of fb t))

(* Kind of an additive combination a + b (or a - b with [sub]). *)
let combine_kind fb ~sub a b =
  let ka = kind_of_operand fb a and kb = kind_of_operand fb b in
  match (ka, kb) with
  | Ir.Kscalar, Ir.Kscalar -> Ir.Kscalar
  | (Ir.Kstack, _ | _, Ir.Kstack) -> Ir.Kstack
  | _ ->
      let da = deriv_of_value fb a and db = deriv_of_value fb b in
      let d = if sub then Deriv.sub da db else Deriv.add da db in
      if Deriv.is_empty d then Ir.Kscalar else Ir.Kderived d

(* Emit [dst := a + b] with correct gc kind; folds immediates. *)
let emit_add fb a b =
  match (a, b) with
  | Ir.Oimm x, Ir.Oimm y -> Ir.Oimm (x + y)
  | Ir.Oimm 0, o | o, Ir.Oimm 0 -> o
  | _ ->
      let k = combine_kind fb ~sub:false a b in
      let t = fresh fb k in
      emit fb (Ir.Bin (Ir.Add, t, a, b));
      Ir.Otemp t

let emit_mul fb a b =
  match (a, b) with
  | Ir.Oimm x, Ir.Oimm y -> Ir.Oimm (x * y)
  | Ir.Oimm 1, o | o, Ir.Oimm 1 -> o
  | _ ->
      let t = fresh fb Ir.Kscalar in
      emit fb (Ir.Bin (Ir.Mul, t, a, b));
      Ir.Otemp t

let emit_sub fb a b =
  match (a, b) with
  | Ir.Oimm x, Ir.Oimm y -> Ir.Oimm (x - y)
  | o, Ir.Oimm 0 -> o
  | _ ->
      let k = combine_kind fb ~sub:true a b in
      let t = fresh fb k in
      emit fb (Ir.Bin (Ir.Sub, t, a, b));
      Ir.Otemp t

(* ------------------------------------------------------------------ *)
(* Error blocks (shared per function; not gc-points)                   *)
(* ------------------------------------------------------------------ *)

let nil_err_block fb =
  match fb.nil_err with
  | Some l -> l
  | None ->
      let l = new_block fb in
      let b = Growarr.get fb.blocks l in
      b.rev_instrs <- [ Ir.Call (None, Ir.Crt Ir.Rt_nil_error, []) ];
      b.bterm <- Some Ir.Unreachable;
      fb.nil_err <- Some l;
      l

let bounds_err_block fb =
  match fb.bounds_err with
  | Some l -> l
  | None ->
      let l = new_block fb in
      let b = Growarr.get fb.blocks l in
      b.rev_instrs <- [ Ir.Call (None, Ir.Crt Ir.Rt_bounds_error, []) ];
      b.bterm <- Some Ir.Unreachable;
      fb.bounds_err <- Some l;
      l

(* Branch to [err] when [a rel b]; fall through otherwise. *)
let emit_guard fb rel a b err =
  let cont = new_block fb in
  set_term fb (Ir.Cjmp (rel, a, b, err, cont));
  switch_to fb cont

let emit_nil_check fb (p : Ir.operand) =
  if fb.checks then emit_guard fb Ir.Req p (Ir.Oimm 0) (nil_err_block fb)

(* ------------------------------------------------------------------ *)
(* Places                                                              *)
(* ------------------------------------------------------------------ *)

type place =
  | Pslot of Ir.local * int (* frame slot + static word offset *)
  | Pglob of int * int
  | Pmem of Ir.temp * int (* computed address + static word offset *)

let place_shift p d =
  match p with
  | Pslot (l, o) -> Pslot (l, o + d)
  | Pglob (g, o) -> Pglob (g, o + d)
  | Pmem (t, o) -> Pmem (t, o + d)

let slot_info fb l = Growarr.get fb.locals l

let scalar_kind_of_ty (ty : Ty.ty) : Ir.kind =
  if Ty.is_ref ty then Ir.Kptr else Ir.Kscalar

let load_place fb p (value_ty : Ty.ty) : Ir.operand =
  let k = scalar_kind_of_ty value_ty in
  match p with
  | Pslot (l, o) ->
      let t = fresh fb k in
      emit fb (Ir.Ld_local (t, l, o));
      (* Record copies of stable pointer locals for base preference. *)
      (match (k, o) with
      | Ir.Kptr, 0 ->
          let info = slot_info fb l in
          if info.Ir.l_slot = Ir.Sptr then Hashtbl.replace fb.temp_origin t l
      | _ -> ());
      Ir.Otemp t
  | Pglob (g, o) ->
      let t = fresh fb k in
      emit fb (Ir.Ld_global (t, g, o));
      Ir.Otemp t
  | Pmem (a, o) ->
      let t = fresh fb k in
      emit fb (Ir.Load (t, Ir.Otemp a, o));
      Ir.Otemp t

let store_place fb p (v : Ir.operand) =
  match p with
  | Pslot (l, o) ->
      (slot_info fb l).Ir.l_stores <- (slot_info fb l).Ir.l_stores + 1;
      emit fb (Ir.St_local (l, o, v))
  | Pglob (g, o) -> emit fb (Ir.St_global (g, o, v))
  | Pmem (a, o) -> emit fb (Ir.Store (Ir.Otemp a, o, v))

(* Address of a place, for VAR-argument passing and WITH aliases. *)
let addr_of_place fb p : Ir.operand =
  match p with
  | Pslot (l, o) ->
      (slot_info fb l).Ir.l_addr_taken <- true;
      let t = fresh fb Ir.Kstack in
      emit fb (Ir.Lda_local (t, l, o));
      Ir.Otemp t
  | Pglob (g, o) ->
      let t = fresh fb Ir.Kstack in
      emit fb (Ir.Lda_global (t, g, o));
      Ir.Otemp t
  | Pmem (a, o) -> if o = 0 then Ir.Otemp a else emit_add fb (Ir.Otemp a) (Ir.Oimm o)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let relop_of_binop : T.tbinop -> Ir.relop option = function
  | T.Beq -> Some Ir.Req
  | T.Bneq -> Some Ir.Rne
  | T.Blt -> Some Ir.Rlt
  | T.Ble -> Some Ir.Rle
  | T.Bgt -> Some Ir.Rgt
  | T.Bge -> Some Ir.Rge
  | T.Badd | T.Bsub | T.Bmul | T.Bdiv | T.Bmod | T.Bmin | T.Bmax | T.Band | T.Bor ->
      None

let arith_of_binop : T.tbinop -> Ir.binop option = function
  | T.Badd -> Some Ir.Add
  | T.Bsub -> Some Ir.Sub
  | T.Bmul -> Some Ir.Mul
  | T.Bdiv -> Some Ir.Div
  | T.Bmod -> Some Ir.Mod
  | T.Bmin -> Some Ir.Min
  | T.Bmax -> Some Ir.Max
  | T.Beq | T.Bneq | T.Blt | T.Ble | T.Bgt | T.Bge | T.Band | T.Bor -> None

let rec lower_expr fb (e : T.texpr) : Ir.operand =
  match e.T.desc with
  | T.Tconst_int n -> Ir.Oimm n
  | T.Tconst_bool b -> Ir.Oimm (if b then 1 else 0)
  | T.Tconst_char c -> Ir.Oimm (Char.code c)
  | T.Tconst_nil -> Ir.Oimm 0
  | T.Tconst_text s ->
      let id = intern_text fb.pb s in
      let t = fresh fb Ir.Kstack in
      emit fb (Ir.Lda_text (t, id));
      Ir.Otemp t
  | T.Tvar v -> (
      match Hashtbl.find_opt fb.var_storage v.T.v_id with
      | Some (Gslot g) -> load_place fb (Pglob (g, 0)) e.T.ty
      | Some (Lslot l) -> (
          match v.T.v_kind with
          | T.Vparam_ref | T.Valias ->
              (* The slot holds an address; the value is behind it. *)
              let ta = load_addr_slot fb l in
              load_place fb (Pmem (ta, 0)) e.T.ty
          | T.Vglobal | T.Vlocal | T.Vparam -> load_place fb (Pslot (l, 0)) e.T.ty)
      | None -> failwith ("Lower: unmapped variable " ^ v.T.v_name))
  | T.Tfield _ | T.Tindex _ | T.Tderef _ ->
      let p = lower_place fb e in
      load_place fb p e.T.ty
  | T.Tbinop ((T.Band | T.Bor), _, _) -> lower_bool_value fb e
  | T.Tbinop (op, a, b) -> (
      match relop_of_binop op with
      | Some r ->
          let oa = lower_expr fb a in
          let ob = lower_expr fb b in
          let t = fresh fb Ir.Kscalar in
          emit fb (Ir.Setrel (r, t, oa, ob));
          Ir.Otemp t
      | None -> (
          let oa = lower_expr fb a in
          let ob = lower_expr fb b in
          match arith_of_binop op with
          | Some Ir.Add -> emit_add fb oa ob
          | Some Ir.Sub -> emit_sub fb oa ob
          | Some Ir.Mul -> emit_mul fb oa ob
          | Some op -> (
              match (oa, ob) with
              | Ir.Oimm x, Ir.Oimm y when op = Ir.Div && y <> 0 ->
                  (* Modula-3 DIV rounds toward minus infinity. *)
                  Ir.Oimm (if (x < 0) <> (y < 0) && x mod y <> 0 then (x / y) - 1 else x / y)
              | _ ->
                  let t = fresh fb Ir.Kscalar in
                  emit fb (Ir.Bin (op, t, oa, ob));
                  Ir.Otemp t)
          | None -> failwith "Lower: non-arith binop fell through"))
  | T.Tunop (T.Uneg, a) ->
      let oa = lower_expr fb a in
      (match oa with
      | Ir.Oimm n -> Ir.Oimm (-n)
      | _ ->
          let t = fresh fb Ir.Kscalar in
          emit fb (Ir.Neg (t, oa));
          Ir.Otemp t)
  | T.Tunop (T.Uabs, a) ->
      let oa = lower_expr fb a in
      let t = fresh fb Ir.Kscalar in
      emit fb (Ir.Abs (t, oa));
      Ir.Otemp t
  | T.Tunop (T.Unot, a) ->
      let oa = lower_expr fb a in
      let t = fresh fb Ir.Kscalar in
      emit fb (Ir.Setrel (Ir.Req, t, oa, Ir.Oimm 0));
      Ir.Otemp t
  | T.Tconvert a -> lower_expr fb a
  | T.Tcall call -> (
      match lower_call fb call with
      | Some t -> Ir.Otemp t
      | None -> failwith "Lower: value call returned nothing")
  | T.Tnew (referent, len) -> lower_new fb ~loc:e.T.loc referent len
  | T.Tnumber inner -> (
      match inner.T.desc with
      | T.Tderef base ->
          let tp = lower_operand_temp fb (lower_expr fb base) in
          emit_nil_check fb (Ir.Otemp tp);
          let t = fresh fb Ir.Kscalar in
          emit fb (Ir.Load (t, Ir.Otemp tp, 1));
          Ir.Otemp t
      | _ -> failwith "Lower: NUMBER of a non-dereference place")

(* Force an operand into a temp (for address bases). *)
and lower_operand_temp fb (o : Ir.operand) : Ir.temp =
  match o with
  | Ir.Otemp t -> t
  | Ir.Oimm n ->
      let t = fresh fb Ir.Kscalar in
      emit fb (Ir.Mov (t, Ir.Oimm n));
      t

and load_addr_slot fb l : Ir.temp =
  (* Load a VAR-param or alias slot: the temp is derived from the slot
     (paper §3: call-by-reference derived values; §4 indirect references
     become explicit loads from a known location). *)
  let info = slot_info fb l in
  let kind =
    match info.Ir.l_slot with
    | Ir.Saddr | Ir.Sderived _ | Ir.Sambig _ ->
        Ir.Kderived (Deriv.of_base (Deriv.Blocal l))
    | Ir.Sscalar -> Ir.Kstack (* alias over a stack place *)
    | Ir.Sptr | Ir.Saggregate _ -> failwith "Lower: address slot of wrong kind"
  in
  let t = fresh fb kind in
  emit fb (Ir.Ld_local (t, l, 0));
  t

and lower_place fb (e : T.texpr) : place =
  match e.T.desc with
  | T.Tvar v -> (
      match Hashtbl.find_opt fb.var_storage v.T.v_id with
      | Some (Gslot g) -> Pglob (g, 0)
      | Some (Lslot l) -> (
          match v.T.v_kind with
          | T.Vparam_ref | T.Valias -> Pmem (load_addr_slot fb l, 0)
          | T.Vglobal | T.Vlocal | T.Vparam -> Pslot (l, 0))
      | None -> failwith ("Lower: unmapped variable " ^ v.T.v_name))
  | T.Tfield (base, off, _) ->
      let p = lower_place fb base in
      place_shift p off
  | T.Tderef base ->
      let tp = lower_operand_temp fb (lower_expr fb base) in
      emit_nil_check fb (Ir.Otemp tp);
      (* Fixed-size referent: data begins after the one-word header. *)
      Pmem (tp, Rt.Typedesc.fixed_header_words)
  | T.Tindex (base, idx) -> lower_index fb base idx
  | T.Tconst_int _ | T.Tconst_bool _ | T.Tconst_char _ | T.Tconst_nil | T.Tconst_text _
  | T.Tbinop _ | T.Tunop _ | T.Tconvert _ | T.Tcall _ | T.Tnew _ | T.Tnumber _ ->
      failwith "Lower: not a place"

and lower_index fb (base : T.texpr) (idx : T.texpr) : place =
  match base.T.ty with
  | Ty.Tarray { lo; hi; elt } -> (
      let p = lower_place fb base in
      let esz = Ty.size_words elt in
      let iop = lower_expr fb idx in
      if fb.checks then begin
        (match iop with
        | Ir.Oimm c ->
            if c < lo || c > hi then
              (* Statically out of range: trap unconditionally. *)
              emit_guard fb Ir.Req (Ir.Oimm 0) (Ir.Oimm 0) (bounds_err_block fb)
        | Ir.Otemp _ ->
            emit_guard fb Ir.Rlt iop (Ir.Oimm lo) (bounds_err_block fb);
            emit_guard fb Ir.Rgt iop (Ir.Oimm hi) (bounds_err_block fb))
      end;
      match iop with
      | Ir.Oimm c -> place_shift p ((c - lo) * esz)
      | Ir.Otemp _ ->
          (* offset = (i - lo) * esz, then add to the base address. *)
          let off = emit_mul fb (emit_sub fb iop (Ir.Oimm lo)) (Ir.Oimm esz) in
          (match p with
          | Pslot (l, o) ->
              (slot_info fb l).Ir.l_addr_taken <- true;
              let ta = fresh fb Ir.Kstack in
              emit fb (Ir.Lda_local (ta, l, o));
              Pmem (lower_operand_temp fb (emit_add fb (Ir.Otemp ta) off), 0)
          | Pglob (g, o) ->
              let ta = fresh fb Ir.Kstack in
              emit fb (Ir.Lda_global (ta, g, o));
              Pmem (lower_operand_temp fb (emit_add fb (Ir.Otemp ta) off), 0)
          | Pmem (t, o) ->
              Pmem (lower_operand_temp fb (emit_add fb (Ir.Otemp t) off), o)))
  | Ty.Topen elt -> (
      (* Open arrays exist only behind a REF; the checker guarantees the
         base is an explicit dereference. *)
      match base.T.desc with
      | T.Tderef refe ->
          let tp = lower_operand_temp fb (lower_expr fb refe) in
          emit_nil_check fb (Ir.Otemp tp);
          let esz = Ty.size_words elt in
          let iop = lower_expr fb idx in
          if fb.checks then begin
            emit_guard fb Ir.Rlt iop (Ir.Oimm 0) (bounds_err_block fb);
            let tlen = fresh fb Ir.Kscalar in
            emit fb (Ir.Load (tlen, Ir.Otemp tp, 1));
            emit_guard fb Ir.Rge iop (Ir.Otemp tlen) (bounds_err_block fb)
          end;
          let hdr = Rt.Typedesc.open_header_words in
          (match iop with
          | Ir.Oimm c -> Pmem (tp, hdr + (c * esz))
          | Ir.Otemp _ ->
              let off = emit_mul fb iop (Ir.Oimm esz) in
              let addr = emit_add fb (Ir.Otemp tp) off in
              Pmem (lower_operand_temp fb addr, hdr))
      | _ -> failwith "Lower: open array place is not a dereference")
  | _ -> failwith "Lower: indexing a non-array"

and lower_new fb ~(loc : M3l.Srcloc.t) (referent : Ty.ty) (len : T.texpr option) :
    Ir.operand =
  match (referent, len) with
  | Ty.Topen elt, Some n ->
      let tdid =
        Rt.Typedesc.intern fb.pb.tdescs (Rt.Typedesc.of_m3l_type (Ty.Topen elt))
      in
      let on = lower_expr fb n in
      if fb.checks then emit_guard fb Ir.Rlt on (Ir.Oimm 0) (bounds_err_block fb);
      let t = fresh fb Ir.Kptr in
      let site = new_site fb.pb ~proc:fb.proc_name ~loc ~tdesc:tdid ~is_open:true in
      emit fb (Ir.Call (Some t, Ir.Crt (Ir.Rt_alloc_open site), [ Ir.Oimm tdid; on ]));
      Ir.Otemp t
  | Ty.Topen _, None -> failwith "Lower: open NEW without length"
  | fixed, _ ->
      let tdid = Rt.Typedesc.intern fb.pb.tdescs (Rt.Typedesc.of_m3l_type fixed) in
      let t = fresh fb Ir.Kptr in
      let site = new_site fb.pb ~proc:fb.proc_name ~loc ~tdesc:tdid ~is_open:false in
      emit fb (Ir.Call (Some t, Ir.Crt (Ir.Rt_alloc site), [ Ir.Oimm tdid ]));
      Ir.Otemp t

and lower_call fb (call : T.call) : Ir.temp option =
  let args =
    List.map
      (fun (a : T.targ) ->
        match a with
        | T.Aval e -> lower_expr fb e
        | T.Aref place_e ->
            let p = lower_place fb place_e in
            addr_of_place fb p)
      call.T.args
  in
  let callee =
    match call.T.callee with
    | T.Cuser psym -> Ir.Cuser psym.T.p_id
    | T.Cbuiltin b ->
        Ir.Crt
          (match b with
          | T.Bput_int -> Ir.Rt_put_int
          | T.Bput_char -> Ir.Rt_put_char
          | T.Bput_text -> Ir.Rt_put_text
          | T.Bput_ln -> Ir.Rt_put_ln
          | T.Bhalt -> Ir.Rt_halt)
  in
  if Ty.equal call.T.ret Ty.Tunit then begin
    emit fb (Ir.Call (None, callee, args));
    None
  end
  else begin
    let k = scalar_kind_of_ty call.T.ret in
    let t = fresh fb k in
    emit fb (Ir.Call (Some t, callee, args));
    Some t
  end

(* Boolean expression in a value context: evaluate via control flow into a
   fresh temp (AND/OR are short-circuiting). *)
and lower_bool_value fb (e : T.texpr) : Ir.operand =
  let t = fresh fb Ir.Kscalar in
  let tl = new_block fb in
  let fl = new_block fb in
  let join = new_block fb in
  lower_cond fb e tl fl;
  switch_to fb tl;
  emit fb (Ir.Mov (t, Ir.Oimm 1));
  set_term fb (Ir.Jmp join);
  switch_to fb fl;
  emit fb (Ir.Mov (t, Ir.Oimm 0));
  set_term fb (Ir.Jmp join);
  switch_to fb join;
  Ir.Otemp t

and lower_cond fb (e : T.texpr) (tl : int) (fl : int) : unit =
  match e.T.desc with
  | T.Tconst_bool true -> set_term fb (Ir.Jmp tl)
  | T.Tconst_bool false -> set_term fb (Ir.Jmp fl)
  | T.Tunop (T.Unot, a) -> lower_cond fb a fl tl
  | T.Tbinop (T.Band, a, b) ->
      let mid = new_block fb in
      lower_cond fb a mid fl;
      switch_to fb mid;
      lower_cond fb b tl fl
  | T.Tbinop (T.Bor, a, b) ->
      let mid = new_block fb in
      lower_cond fb a tl mid;
      switch_to fb mid;
      lower_cond fb b tl fl
  | T.Tbinop (op, a, b) when relop_of_binop op <> None ->
      let r = Option.get (relop_of_binop op) in
      let oa = lower_expr fb a in
      let ob = lower_expr fb b in
      set_term fb (Ir.Cjmp (r, oa, ob, tl, fl))
  | _ ->
      let o = lower_expr fb e in
      set_term fb (Ir.Cjmp (Ir.Rne, o, Ir.Oimm 0, tl, fl))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec lower_stmts fb stmts = List.iter (lower_stmt fb) stmts

and lower_stmt fb (s : T.tstmt) : unit =
  match s with
  | T.Sassign (lhs, rhs) ->
      let v = lower_expr fb rhs in
      let p = lower_place fb lhs in
      store_place fb p v
  | T.Scall call -> ignore (lower_call fb call)
  | T.Sif (branches, els) ->
      let join = new_block fb in
      let rec go = function
        | [] ->
            lower_stmts fb els;
            set_term fb (Ir.Jmp join)
        | (cond, body) :: rest ->
            let bt = new_block fb in
            let bf = new_block fb in
            lower_cond fb cond bt bf;
            switch_to fb bt;
            lower_stmts fb body;
            set_term fb (Ir.Jmp join);
            switch_to fb bf;
            go rest
      in
      go branches;
      switch_to fb join
  | T.Swhile (cond, body) ->
      let header = new_block fb in
      let bodyl = new_block fb in
      let exit = new_block fb in
      set_term fb (Ir.Jmp header);
      switch_to fb header;
      lower_cond fb cond bodyl exit;
      switch_to fb bodyl;
      lower_stmts fb body;
      set_term fb (Ir.Jmp header);
      switch_to fb exit
  | T.Sfor (v, lo, hi, step, body) ->
      let l = local_of fb v in
      let olo = lower_expr fb lo in
      let ohi = lower_expr fb hi in
      (* Keep the loop bound in a temp that stays live through the body. *)
      let thi = lower_operand_temp fb ohi in
      store_place fb (Pslot (l, 0)) olo;
      let header = new_block fb in
      let bodyl = new_block fb in
      let exit = new_block fb in
      set_term fb (Ir.Jmp header);
      switch_to fb header;
      let ti = fresh fb Ir.Kscalar in
      emit fb (Ir.Ld_local (ti, l, 0));
      let rel = if step > 0 then Ir.Rle else Ir.Rge in
      set_term fb (Ir.Cjmp (rel, Ir.Otemp ti, Ir.Otemp thi, bodyl, exit));
      switch_to fb bodyl;
      lower_stmts fb body;
      let ti2 = fresh fb Ir.Kscalar in
      emit fb (Ir.Ld_local (ti2, l, 0));
      let tn = emit_add fb (Ir.Otemp ti2) (Ir.Oimm step) in
      store_place fb (Pslot (l, 0)) tn;
      set_term fb (Ir.Jmp header);
      switch_to fb exit
  | T.Sreturn e ->
      let o = Option.map (lower_expr fb) e in
      set_term fb (Ir.Ret o)
  | T.Swith_alias (v, place_e, body) ->
      let l = local_of fb v in
      let p = lower_place fb place_e in
      let addr = addr_of_place fb p in
      (* Classify the alias slot: heap places make it a derived slot whose
         bases the collector must know (paper §3); stack/global places make
         it an untraced address. *)
      let info = slot_info fb l in
      (match addr with
      | Ir.Oimm _ -> failwith "Lower: alias address is immediate"
      | Ir.Otemp ta -> (
          match kind_of fb ta with
          | Ir.Kstack | Ir.Kscalar -> info.Ir.l_slot <- Ir.Sscalar
          | Ir.Kptr -> info.Ir.l_slot <- Ir.Sderived (Deriv.of_base (base_of fb ta))
          | Ir.Kderived d -> info.Ir.l_slot <- Ir.Sderived d));
      store_place fb (Pslot (l, 0)) addr;
      lower_stmts fb body
  | T.Swith_value (v, e, body) ->
      let l = local_of fb v in
      let o = lower_expr fb e in
      store_place fb (Pslot (l, 0)) o;
      lower_stmts fb body

and local_of fb (v : T.var_sym) : Ir.local =
  match Hashtbl.find_opt fb.var_storage v.T.v_id with
  | Some (Lslot l) -> l
  | Some (Gslot _) | None -> failwith ("Lower: expected local storage for " ^ v.T.v_name)

(* ------------------------------------------------------------------ *)
(* Functions and program                                               *)
(* ------------------------------------------------------------------ *)

let slot_kind_of_var (v : T.var_sym) : Ir.slot_kind =
  match v.T.v_kind with
  | T.Vparam_ref -> Ir.Saddr
  | T.Valias -> Ir.Sscalar (* refined at the binding site *)
  | T.Vglobal | T.Vlocal | T.Vparam -> (
      match v.T.v_ty with
      | Ty.Tref _ | Ty.Tnil -> Ir.Sptr
      | Ty.Tint | Ty.Tbool | Ty.Tchar -> Ir.Sscalar
      | Ty.Trecord _ | Ty.Tarray _ -> Ir.Saggregate (Ty.pointer_offsets v.T.v_ty)
      | Ty.Topen _ | Ty.Tunit -> failwith "Lower: open array or unit local")

let size_of_var (v : T.var_sym) : int =
  match v.T.v_kind with
  | T.Vparam_ref | T.Valias -> 1 (* the slot holds an address *)
  | T.Vglobal | T.Vlocal | T.Vparam -> Ty.size_words v.T.v_ty

(* Variables mutated in a procedure body: assigned, or passed by VAR. *)
let mutated_vars (body : T.tstmt list) : Ints.Iset.t =
  let acc = ref Ints.Iset.empty in
  let add v = acc := Ints.Iset.add v.T.v_id !acc in
  let rec expr (e : T.texpr) =
    match e.T.desc with
    | T.Tcall c -> call c
    | T.Tfield (b, _, _) -> expr b
    | T.Tindex (b, i) ->
        expr b;
        expr i
    | T.Tderef b | T.Tconvert b | T.Tunop (_, b) | T.Tnumber b -> expr b
    | T.Tbinop (_, a, b) ->
        expr a;
        expr b
    | T.Tnew (_, n) -> Option.iter expr n
    | T.Tconst_int _ | T.Tconst_bool _ | T.Tconst_char _ | T.Tconst_nil
    | T.Tconst_text _ | T.Tvar _ -> ()
  and call (c : T.call) =
    List.iter
      (fun (a : T.targ) ->
        match a with
        | T.Aval e -> expr e
        | T.Aref pe -> (
            expr pe;
            match pe.T.desc with T.Tvar v -> add v | _ -> ()))
      c.T.args
  and stmt (s : T.tstmt) =
    match s with
    | T.Sassign (lhs, rhs) -> (
        expr rhs;
        expr lhs;
        match lhs.T.desc with T.Tvar v -> add v | _ -> ())
    | T.Scall c -> call c
    | T.Sif (brs, els) ->
        List.iter
          (fun (c, body) ->
            expr c;
            List.iter stmt body)
          brs;
        List.iter stmt els
    | T.Swhile (c, body) ->
        expr c;
        List.iter stmt body
    | T.Sfor (v, lo, hi, _, body) ->
        add v;
        expr lo;
        expr hi;
        List.iter stmt body
    | T.Sreturn e -> Option.iter expr e
    | T.Swith_alias (_, e, body) | T.Swith_value (_, e, body) ->
        expr e;
        List.iter stmt body
  in
  List.iter stmt body;
  !acc

let lower_func pb ~checks ~fid (tp : T.tproc) : Ir.func =
  let fb =
    {
      pb;
      proc_name = tp.T.sym.T.p_name;
      checks;
      blocks = Growarr.create ~dummy:{ rev_instrs = []; bterm = None };
      cur = 0;
      kinds = Growarr.create ~dummy:Ir.Kscalar;
      locals =
        Growarr.create
          ~dummy:
            {
              Ir.l_name = "";
              l_size = 0;
              l_slot = Ir.Sscalar;
              l_user = false;
              l_addr_taken = false;
              l_stores = 0;
            };
      var_storage = Hashtbl.create 16;
      temp_origin = Hashtbl.create 16;
      nil_err = None;
      bounds_err = None;
    }
  in
  (* Copy global storage mappings. *)
  Hashtbl.iter (fun vid g -> Hashtbl.replace fb.var_storage vid (Gslot g)) pb.global_ids;
  let entry = new_block fb in
  switch_to fb entry;
  let mutated = mutated_vars tp.T.body in
  (* Parameters first (locals 0..n-1).  Incoming argument slots are
     read-only (the caller's gc tables describe them for the duration of the
     call); a mutated by-value parameter is shadowed by a real local. *)
  let shadow_inits = ref [] in
  List.iter
    (fun (v : T.var_sym) ->
      let l =
        Growarr.push fb.locals
          {
            Ir.l_name = v.T.v_name;
            l_size = size_of_var v;
            l_slot = slot_kind_of_var v;
            l_user = true;
            l_addr_taken = false;
            l_stores = 0;
          }
      in
      if v.T.v_kind = T.Vparam && Ints.Iset.mem v.T.v_id mutated then
        shadow_inits := (v, l) :: !shadow_inits
      else Hashtbl.replace fb.var_storage v.T.v_id (Lslot l))
    tp.T.sym.T.p_params;
  let nparams = List.length tp.T.sym.T.p_params in
  (* Shadow locals for mutated by-value parameters. *)
  List.iter
    (fun ((v : T.var_sym), (param_slot : Ir.local)) ->
      let shadow =
        Growarr.push fb.locals
          {
            Ir.l_name = v.T.v_name ^ "$shadow";
            l_size = size_of_var v;
            l_slot = slot_kind_of_var v;
            l_user = true;
            l_addr_taken = false;
            l_stores = 1;
          }
      in
      Hashtbl.replace fb.var_storage v.T.v_id (Lslot shadow);
      let t = fresh fb (scalar_kind_of_ty v.T.v_ty) in
      emit fb (Ir.Ld_local (t, param_slot, 0));
      emit fb (Ir.St_local (shadow, 0, Ir.Otemp t)))
    (List.rev !shadow_inits);
  (* Declared locals and checker-introduced FOR/WITH variables. *)
  List.iter
    (fun (v : T.var_sym) ->
      let l =
        Growarr.push fb.locals
          {
            Ir.l_name = v.T.v_name;
            l_size = size_of_var v;
            l_slot = slot_kind_of_var v;
            l_user = true;
            l_addr_taken = false;
            l_stores = 0;
          }
      in
      Hashtbl.replace fb.var_storage v.T.v_id (Lslot l))
    tp.T.locals;
  lower_stmts fb tp.T.body;
  (* Implicit return at the end of the body. *)
  (match (Growarr.get fb.blocks fb.cur).bterm with
  | Some _ -> ()
  | None -> set_term fb (Ir.Ret None));
  let blocks =
    Array.map
      (fun (b : bb) ->
        {
          Ir.instrs = List.rev b.rev_instrs;
          term = (match b.bterm with Some t -> t | None -> Ir.Ret None);
        })
      (Growarr.to_array fb.blocks)
  in
  {
    Ir.fid;
    fname = tp.T.sym.T.p_name;
    params = List.init nparams (fun i -> i);
    nparams;
    ret = not (Ty.equal tp.T.sym.T.p_ret Ty.Tunit);
    ret_ptr = Ty.is_ref tp.T.sym.T.p_ret;
    locals = Growarr.to_array fb.locals;
    blocks;
    temp_kinds = Growarr.to_array fb.kinds;
    ntemps = Growarr.length fb.kinds;
  }

let program ?(checks = true) (tprog : T.tprogram) : Ir.program =
  let globals =
    Array.of_list
      (List.map
         (fun (v : T.var_sym) ->
           {
             Ir.g_name = v.T.v_name;
             g_size = Ty.size_words v.T.v_ty;
             g_ptrs = Ty.pointer_offsets v.T.v_ty;
           })
         tprog.T.globals)
  in
  let global_ids = Hashtbl.create 16 in
  List.iteri (fun i (v : T.var_sym) -> Hashtbl.replace global_ids v.T.v_id i) tprog.T.globals;
  let pb =
    {
      tdescs = Rt.Typedesc.create_table ();
      texts = Growarr.create ~dummy:"";
      text_ids = Ints.Smap.empty;
      globals;
      global_ids;
      nprocs = List.length tprog.T.procs;
      alloc_sites =
        Growarr.create
          ~dummy:
            {
              Ir.as_id = 0;
              as_proc = "";
              as_line = 0;
              as_col = 0;
              as_tdesc = 0;
              as_open = false;
            };
    }
  in
  let funcs =
    List.map (fun (p : T.tproc) -> lower_func pb ~checks ~fid:p.T.sym.T.p_id p) tprog.T.procs
  in
  let main = lower_func pb ~checks ~fid:pb.nprocs tprog.T.main in
  let funcs = Array.of_list (funcs @ [ main ]) in
  Array.iteri (fun i f -> if f.Ir.fid <> i then failwith "Lower: fid mismatch") funcs;
  {
    Ir.pname = tprog.T.prog_name;
    globals;
    texts = Growarr.to_array pb.texts;
    tdescs = Rt.Typedesc.to_array pb.tdescs;
    funcs;
    main_fid = pb.nprocs;
    alloc_sites = Growarr.to_array pb.alloc_sites;
  }
