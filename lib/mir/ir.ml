(** The mid-level intermediate representation: a control-flow graph of basic
    blocks over an unbounded supply of virtual registers ("temps") plus
    explicitly addressed frame "locals".

    Every temp carries a {!kind} describing what the value means to the
    garbage collector; the optimizer must keep kinds correct as it moves and
    rewrites code — this is exactly the bookkeeping the paper adds to gcc. *)

type temp = int
type local = int
type label = int

type operand = Otemp of temp | Oimm of int

type binop = Add | Sub | Mul | Div | Mod | Min | Max

type relop = Req | Rne | Rlt | Rle | Rgt | Rge

(** What a value is, to the collector. *)
type kind =
  | Kscalar (* integers, booleans, chars *)
  | Kptr (* tidy heap pointer (possibly NIL) *)
  | Kstack (* address of a stack slot, global, or static text: never moves *)
  | Kderived of Deriv.t (* pointer arithmetic over heap pointers *)

(** Runtime (native) routines. Only the allocating ones induce gc-points.

    The allocating calls carry their static {e allocation-site id}: a
    stable index into the program's {!alloc_site} table assigned at
    lowering. The id rides inside the instruction through codegen and both
    execution engines, so the profiler can attribute every runtime
    allocation to a source location; it has no operational effect (the
    byte-size model prices every call identically) and with profiling off
    it is never read. *)
type rt_call =
  | Rt_alloc of int (* (tdesc_id) -> ptr ; fixed-size object; site id *)
  | Rt_alloc_open of int (* (tdesc_id, length) -> ptr ; open array; site id *)
  | Rt_gc_check (* loop gc-point: may trigger a collection *)
  | Rt_put_int
  | Rt_put_char
  | Rt_put_text
  | Rt_put_ln
  | Rt_halt
  | Rt_bounds_error
  | Rt_nil_error

let rt_allocates = function
  | Rt_alloc _ | Rt_alloc_open _ | Rt_gc_check -> true
  | Rt_put_int | Rt_put_char | Rt_put_text | Rt_put_ln | Rt_halt | Rt_bounds_error
  | Rt_nil_error -> false

let rt_name = function
  | Rt_alloc _ -> "rt_alloc"
  | Rt_alloc_open _ -> "rt_alloc_open"
  | Rt_gc_check -> "rt_gc_check"
  | Rt_put_int -> "rt_put_int"
  | Rt_put_char -> "rt_put_char"
  | Rt_put_text -> "rt_put_text"
  | Rt_put_ln -> "rt_put_ln"
  | Rt_halt -> "rt_halt"
  | Rt_bounds_error -> "rt_bounds_error"
  | Rt_nil_error -> "rt_nil_error"

type callee = Cuser of int (* function id *) | Crt of rt_call

type instr =
  | Mov of temp * operand
  | Bin of binop * temp * operand * operand
  | Neg of temp * operand
  | Abs of temp * operand
  | Setrel of relop * temp * operand * operand (* temp := a REL b, 0/1 *)
  | Ld_local of temp * local * int (* temp := slot word at static offset *)
  | St_local of local * int * operand
  | Ld_global of temp * int * int
  | St_global of int * int * operand
  | Lda_local of temp * local * int (* temp := &slot + disp words (Kstack) *)
  | Lda_global of temp * int * int
  | Lda_text of temp * int (* address of static text literal *)
  | Load of temp * operand * int (* temp := M[addr + disp] *)
  | Store of operand * int * operand (* M[addr + disp] := value *)
  | Store_nb of operand * int * operand
    (* heap store whose write barrier has been statically eliminated: the
       target object is provably fresh (allocated in this procedure with
       no intervening gc-point). The one Wbar serves two collectors, and
       freshness discharges both at once: generationally the object is
       still nursery-resident, so the store cannot create an old→young
       reference; incrementally the object is still white (fresh objects
       are allocated white and slices run only at gc-points), so the
       store cannot create an unrecorded black→white edge. Produced only
       by {!Opt.Barrier_elim}; identical to [Store] in every other
       respect. *)
  | Call of temp option * callee * operand list

type term =
  | Jmp of label
  | Cjmp of relop * operand * operand * label * label (* then/else targets *)
  | Ret of operand option
  | Unreachable (* after a no-return runtime call *)

type block = { mutable instrs : instr list; mutable term : term }

(** Scalar-slot classification of a local (what the slot holds). *)
type slot_kind =
  | Sscalar
  | Sptr (* tidy pointer slot: appears in the stack-pointer tables *)
  | Saddr (* VAR-param slot: holds an address described by the CALLER *)
  | Sderived of Deriv.t (* WITH alias over a heap place, reduced pointer, … *)
  | Sambig of ambig
    (* ambiguously derived slot: the actual derivation is selected at run
       time by the path variable (paper §4) *)
  | Saggregate of int list (* embedded record/array; pointer offsets inside *)

and ambig = { path_local : int; cases : (int * Deriv.t) list }

type local_info = {
  l_name : string;
  l_size : int; (* words *)
  mutable l_slot : slot_kind; (* alias slots are classified at the binding site *)
  l_user : bool; (* user-declared (preferred as derivation base) *)
  mutable l_addr_taken : bool; (* someone takes its address: must stay in frame *)
  mutable l_stores : int; (* static count of stores (stability for bases) *)
}

type func = {
  fid : int;
  fname : string;
  params : local list; (* in declaration order; always locals 0..n-1 *)
  nparams : int;
  ret : bool; (* returns a value *)
  ret_ptr : bool; (* returned value is a pointer *)
  mutable locals : local_info array;
  mutable blocks : block array; (* index = label; entry = 0 *)
  mutable temp_kinds : kind array; (* index = temp *)
  mutable ntemps : int;
}

type global_info = {
  g_name : string;
  g_size : int;
  g_ptrs : int list; (* pointer offsets within the global, for roots *)
}

(** A static allocation site: one [NEW] in the source, identified by the
    procedure it lowers in and its source position. Site ids are dense
    (index = id) and stable across optimization — passes may move or
    delete an allocating call but never renumber it. *)
type alloc_site = {
  as_id : int;
  as_proc : string; (* enclosing procedure name *)
  as_line : int;
  as_col : int;
  as_tdesc : int; (* type descriptor allocated here *)
  as_open : bool; (* open-array (NEW with length) site *)
}

type program = {
  pname : string;
  globals : global_info array;
  texts : string array; (* static text literals *)
  tdescs : Rt.Typedesc.t array;
  funcs : func array; (* index = fid *)
  main_fid : int;
  alloc_sites : alloc_site array; (* index = site id *)
}

(* ------------------------------------------------------------------ *)
(* Accessors and helpers                                               *)
(* ------------------------------------------------------------------ *)

let temp_kind f t =
  if t < 0 || t >= f.ntemps then invalid_arg "Ir.temp_kind" else f.temp_kinds.(t)

let set_temp_kind f t k =
  if t < 0 || t >= f.ntemps then invalid_arg "Ir.set_temp_kind";
  f.temp_kinds.(t) <- k

let fresh_temp f k =
  let t = f.ntemps in
  if t >= Array.length f.temp_kinds then begin
    let bigger = Array.make (max 8 (2 * Array.length f.temp_kinds)) Kscalar in
    Array.blit f.temp_kinds 0 bigger 0 (Array.length f.temp_kinds);
    f.temp_kinds <- bigger
  end;
  f.temp_kinds.(t) <- k;
  f.ntemps <- t + 1;
  t

(** Temps read by an instruction. *)
let instr_uses = function
  | Mov (_, s) | Neg (_, s) | Abs (_, s) -> [ s ]
  | Bin (_, _, a, b) | Setrel (_, _, a, b) -> [ a; b ]
  | Ld_local _ | Ld_global _ | Lda_local _ | Lda_global _ | Lda_text _ -> []
  | St_local (_, _, s) | St_global (_, _, s) -> [ s ]
  | Load (_, a, _) -> [ a ]
  | Store (a, _, v) | Store_nb (a, _, v) -> [ a; v ]
  | Call (_, _, args) -> args

let instr_def = function
  | Mov (d, _) | Bin (_, d, _, _) | Neg (d, _) | Abs (d, _) | Setrel (_, d, _, _)
  | Ld_local (d, _, _) | Ld_global (d, _, _) | Lda_local (d, _, _)
  | Lda_global (d, _, _) | Lda_text (d, _) | Load (d, _, _) -> Some d
  | Store _ | Store_nb _ | St_local _ | St_global _ -> None
  | Call (d, _, _) -> d

let term_uses = function
  | Jmp _ | Unreachable -> []
  | Cjmp (_, a, b, _, _) -> [ a; b ]
  | Ret (Some o) -> [ o ]
  | Ret None -> []

let term_succs = function
  | Jmp l -> [ l ]
  | Cjmp (_, _, _, t, e) -> [ t; e ]
  | Ret _ | Unreachable -> []

let operand_temps ops =
  List.filter_map (function Otemp t -> Some t | Oimm _ -> None) ops

(** Locals read (as slots) by an instruction; [Lda_local] counts as an
    address-taken reference, returned separately. *)
let instr_local_reads = function
  | Ld_local (_, l, _) -> [ l ]
  | Mov _ | Bin _ | Neg _ | Abs _ | Setrel _ | Ld_global _ | St_local _ | St_global _
  | Lda_local _ | Lda_global _ | Lda_text _ | Load _ | Store _ | Store_nb _ | Call _ -> []

let instr_local_writes = function
  | St_local (l, _, _) -> [ l ]
  | Mov _ | Bin _ | Neg _ | Abs _ | Setrel _ | Ld_local _ | Ld_global _ | St_global _
  | Lda_local _ | Lda_global _ | Lda_text _ | Load _ | Store _ | Store_nb _ | Call _ -> []

let is_call = function Call _ -> true
  | Mov _ | Bin _ | Neg _ | Abs _ | Setrel _ | Ld_local _ | Ld_global _ | St_local _
  | St_global _ | Lda_local _ | Lda_global _ | Lda_text _ | Load _ | Store _ | Store_nb _ ->
      false

(** Does this call instruction constitute a gc-point?  All calls to user
    procedures do (unless the optional never-allocates analysis proves
    otherwise — see {!Opt.Noalloc}); runtime calls only if they may allocate
    or trigger a collection (paper §5.3). *)
let call_is_gcpoint ?(noalloc_funcs = fun (_ : int) -> false) callee =
  match callee with
  | Cuser fid -> not (noalloc_funcs fid)
  | Crt rc -> rt_allocates rc

let local_is_stable f l =
  let info = f.locals.(l) in
  info.l_stores <= (if l < f.nparams then 0 else 1)

(** Rewrite the operands an instruction reads (definitions untouched). *)
let map_instr_uses (g : operand -> operand) (i : instr) : instr =
  match i with
  | Mov (d, s) -> Mov (d, g s)
  | Bin (op, d, a, b) -> Bin (op, d, g a, g b)
  | Neg (d, s) -> Neg (d, g s)
  | Abs (d, s) -> Abs (d, g s)
  | Setrel (r, d, a, b) -> Setrel (r, d, g a, g b)
  | Ld_local _ | Ld_global _ | Lda_local _ | Lda_global _ | Lda_text _ -> i
  | St_local (l, o, s) -> St_local (l, o, g s)
  | St_global (gl, o, s) -> St_global (gl, o, g s)
  | Load (d, a, o) -> Load (d, g a, o)
  | Store (a, o, v) -> Store (g a, o, g v)
  | Store_nb (a, o, v) -> Store_nb (g a, o, g v)
  | Call (d, c, args) -> Call (d, c, List.map g args)

let map_term_uses (g : operand -> operand) (t : term) : term =
  match t with
  | Jmp _ | Unreachable -> t
  | Cjmp (r, a, b, tl, fl) -> Cjmp (r, g a, g b, tl, fl)
  | Ret (Some o) -> Ret (Some (g o))
  | Ret None -> t
