(** Instruction selection: MIR → UVM machine code, one function at a time.

    Besides translating instructions, this pass:

    - records, at every call that is a gc-point, the raw gc information
      (live tidy stack pointers, live pointer registers, live derivations
      with their located bases) that {!Gcmaps.Encode} later serializes — the
      compiler-side half of the paper's contribution;

    - applies (or, with [gc_restrict] set, suppresses) the folding of
      single-use intermediate loads into deferred addressing modes. With
      restrictions on, an intermediate reference that serves as a derivation
      base is kept in a register or stack slot so the derivation refers to a
      compile-time-known location (paper §4, "indirect references"; §6.2
      measures the instructions this adds). *)

type options = {
  gc_restrict : bool; (* default true; false reproduces "without gc restrictions" *)
  noalloc : int -> bool; (* user procedures proven never to allocate *)
}

val default_options : options

(** A gc-point whose byte offset is not yet known (filled at image layout). *)
type raw_gcpoint = {
  rg_item : int; (* index of the Call in the emitted code items *)
  rg_stack_ptrs : Gcmaps.Loc.t list;
  rg_reg_ptrs : int list;
  rg_derivs : Gcmaps.Rawmaps.deriv_entry list;
  rg_variants : Gcmaps.Rawmaps.variant list;
}

type out_func = {
  of_fid : int;
  of_name : string;
  of_code : Machine.Insn.t array; (* branch targets resolved to item indices *)
  of_frame : Frame.t;
  of_gcpoints : raw_gcpoint list; (* in code order *)
  of_folds_suppressed : int; (* §6.2: folds blocked by gc restrictions *)
  of_folds_applied : int;
  of_barriers : int; (* generational write barriers emitted *)
  of_barriers_elided : int; (* pointer stores proven barrier-free *)
}

val func :
  prog:Mir.Ir.program ->
  options ->
  ?global_addr:(int -> int) ->
  ?text_addr:(int -> int) ->
  Mir.Ir.func ->
  out_func
(** [global_addr] and [text_addr] map global/text indices to absolute word
    addresses; they must be supplied by the image layout before selection. *)
