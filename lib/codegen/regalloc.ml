open Support
module Ir = Mir.Ir

type assignment = Areg of int | Aspill of int

type t = {
  assign : assignment array;
  nspills : int;
  used_callee_saved : int list;
}

type interval = { tmp : int; mutable istart : int; mutable iend : int }

(* Collect the transitive temp-bases of a derivation. *)
let rec deriv_temp_bases (f : Ir.func) (d : Mir.Deriv.t) acc =
  List.fold_left
    (fun acc b ->
      match b with
      | Mir.Deriv.Blocal _ -> acc
      | Mir.Deriv.Btemp t ->
          if List.mem t acc then acc
          else
            let acc = t :: acc in
            (match Ir.temp_kind f t with
            | Ir.Kderived d' -> deriv_temp_bases f d' acc
            | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> acc))
    acc (Mir.Deriv.bases d)

let allocate (f : Ir.func) (liv : Mir.Liveness.t) : t =
  let nb = Array.length f.Ir.blocks in
  (* Linear position numbering: block b starts at base.(b); instruction i of
     block b is at base.(b) + i; the terminator takes one position. *)
  let base = Array.make (nb + 1) 0 in
  for b = 0 to nb - 1 do
    base.(b + 1) <- base.(b) + List.length f.Ir.blocks.(b).Ir.instrs + 1
  done;
  let nt = f.Ir.ntemps in
  let intervals = Array.init nt (fun tmp -> { tmp; istart = max_int; iend = min_int }) in
  let extend t p =
    let iv = intervals.(t) in
    if p < iv.istart then iv.istart <- p;
    if p > iv.iend then iv.iend <- p
  in
  let user_call_positions = ref [] in
  for b = 0 to nb - 1 do
    let blk = f.Ir.blocks.(b) in
    let live_after = Mir.Liveness.per_instr_live_out liv b in
    (* Temps live into (out of) the block are live at its first (last)
       position, so interval hulls have no one-position gaps at block
       boundaries. *)
    let in_temps, _ = Mir.Liveness.block_live_in liv b in
    Bitset.iter (fun t -> extend t base.(b)) in_temps;
    let out_temps, _ = Mir.Liveness.block_live_out liv b in
    Bitset.iter (fun t -> extend t (base.(b + 1) - 1)) out_temps;
    List.iteri
      (fun i instr ->
        let p = base.(b) + i in
        (match Ir.instr_def instr with Some d -> extend d (p + 1) | None -> ());
        List.iter
          (function Ir.Otemp t -> extend t p | Ir.Oimm _ -> ())
          (Ir.instr_uses instr);
        let lt, _ll = live_after.(i) in
        Bitset.iter (fun t -> extend t (p + 1)) lt;
        (* Calls: record clobber positions and force derived-argument bases
           live across the call. *)
        match instr with
        | Ir.Call (_, callee, args) ->
            let is_user = match callee with Ir.Cuser _ -> true | Ir.Crt _ -> false in
            if is_user then user_call_positions := p :: !user_call_positions;
            List.iter
              (function
                | Ir.Oimm _ -> ()
                | Ir.Otemp a -> (
                    match Ir.temp_kind f a with
                    | Ir.Kderived d ->
                        List.iter (fun tb -> extend tb (p + 1)) (deriv_temp_bases f d [])
                    | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> ()))
              args
        | Ir.Mov _ | Ir.Bin _ | Ir.Neg _ | Ir.Abs _ | Ir.Setrel _ | Ir.Ld_local _
        | Ir.St_local _ | Ir.Ld_global _ | Ir.St_global _ | Ir.Lda_local _
        | Ir.Lda_global _ | Ir.Lda_text _ | Ir.Load _ | Ir.Store _ | Ir.Store_nb _ -> ())
      blk.Ir.instrs;
    (* Terminator uses. *)
    let pterm = base.(b) + List.length blk.Ir.instrs in
    List.iter
      (function Ir.Otemp t -> extend t pterm | Ir.Oimm _ -> ())
      (Ir.term_uses blk.Ir.term)
  done;
  let user_calls = List.sort compare !user_call_positions in
  let crosses_user_call iv =
    List.exists (fun p -> iv.istart <= p && iv.iend > p) user_calls
  in
  (* Sort live intervals by start. *)
  let live_ivs =
    Array.to_list intervals |> List.filter (fun iv -> iv.iend >= iv.istart)
    |> List.sort (fun a b -> compare (a.istart, a.iend) (b.istart, b.iend))
  in
  let assign = Array.make nt (Aspill (-1)) in
  let active : (int * interval) list ref = ref [] (* (reg, interval) *) in
  let free_caller = ref Machine.Reg.caller_saved_allocatable in
  let free_callee = ref Machine.Reg.callee_saved in
  let used_callee = ref [] in
  let nspills = ref 0 in
  let expire pos =
    let expired, still = List.partition (fun (_, iv) -> iv.iend < pos) !active in
    List.iter
      (fun (r, _) ->
        if Machine.Reg.is_callee_saved r then free_callee := r :: !free_callee
        else free_caller := r :: !free_caller)
      expired;
    active := still
  in
  List.iter
    (fun iv ->
      expire iv.istart;
      let want_callee = crosses_user_call iv in
      let take_callee () =
        match !free_callee with
        | r :: rest ->
            free_callee := rest;
            if not (List.mem r !used_callee) then used_callee := !used_callee @ [ r ];
            Some r
        | [] -> None
      in
      let take_caller () =
        match !free_caller with
        | r :: rest ->
            free_caller := rest;
            Some r
        | [] -> None
      in
      let reg =
        if want_callee then take_callee ()
        else match take_caller () with Some r -> Some r | None -> take_callee ()
      in
      match reg with
      | Some r ->
          assign.(iv.tmp) <- Areg r;
          active := (r, iv) :: !active
      | None ->
          assign.(iv.tmp) <- Aspill !nspills;
          incr nspills)
    live_ivs;
  { assign; nspills = !nspills; used_callee_saved = !used_callee }

let loc_of_temp t (fr : Frame.t) tmp : Gcmaps.Loc.t =
  match t.assign.(tmp) with
  | Areg r -> Gcmaps.Loc.Lreg r
  | Aspill s -> Gcmaps.Loc.Lmem (Gcmaps.Loc.FP, Frame.spill_off fr s)
