open Support
module Ir = Mir.Ir
module I = Machine.Insn
module L = Gcmaps.Loc
module RM = Gcmaps.Rawmaps

type options = { gc_restrict : bool; noalloc : int -> bool }

let default_options = { gc_restrict = true; noalloc = (fun _ -> false) }

type raw_gcpoint = {
  rg_item : int;
  rg_stack_ptrs : L.t list;
  rg_reg_ptrs : int list;
  rg_derivs : RM.deriv_entry list;
  rg_variants : RM.variant list;
}

type out_func = {
  of_fid : int;
  of_name : string;
  of_code : I.t array;
  of_frame : Frame.t;
  of_gcpoints : raw_gcpoint list;
  of_folds_suppressed : int;
  of_folds_applied : int;
  of_barriers : int; (* generational write barriers emitted *)
  of_barriers_elided : int; (* pointer stores compiled barrier-free (Barrier_elim) *)
}

(* ------------------------------------------------------------------ *)
(* Analysis helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* Use counts per temp (to find single-use intermediates). *)
let use_counts (f : Ir.func) =
  let counts = Array.make f.Ir.ntemps 0 in
  let use = function Ir.Otemp t -> counts.(t) <- counts.(t) + 1 | Ir.Oimm _ -> () in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter (fun i -> List.iter use (Ir.instr_uses i)) b.Ir.instrs;
      List.iter use (Ir.term_uses b.Ir.term))
    f.Ir.blocks;
  counts

(* Temps that serve as derivation bases (of temps or derived slots). *)
let base_temps (f : Ir.func) =
  let is_base = Array.make f.Ir.ntemps false in
  let mark (d : Mir.Deriv.t) =
    List.iter
      (function Mir.Deriv.Btemp t -> is_base.(t) <- true | Mir.Deriv.Blocal _ -> ())
      (Mir.Deriv.bases d)
  in
  Array.iteri (fun _ k -> match k with Ir.Kderived d -> mark d | _ -> ()) f.Ir.temp_kinds;
  Array.iter
    (fun (li : Ir.local_info) ->
      match li.Ir.l_slot with Ir.Sderived d -> mark d | _ -> ())
    f.Ir.locals;
  is_base

(* ------------------------------------------------------------------ *)
(* Selection                                                           *)
(* ------------------------------------------------------------------ *)

type st = {
  f : Ir.func;
  opts : options;
  liv : Mir.Liveness.t;
  ra : Regalloc.t;
  fr : Frame.t;
  counts : int array;
  is_base : bool array;
  items : I.t Growarr.t;
  block_pos : int array; (* label -> item index of block start *)
  mutable gcpoints : raw_gcpoint list;
  mutable folds_suppressed : int;
  mutable folds_applied : int;
  mutable barriers : int;
  mutable barriers_elided : int;
  global_addr : int -> int; (* global index -> absolute word address *)
  text_addr : int -> int;
}

let emit st i = ignore (Growarr.push st.items i)

(* Operand for a temp that must already hold a value; spilled temps are
   reloaded into a scratch register. *)
let temp_src st ?(scratch = Machine.Reg.scratch0) t : I.operand =
  match st.ra.Regalloc.assign.(t) with
  | Regalloc.Areg r -> I.Reg r
  | Regalloc.Aspill s ->
      emit st (I.Mov (I.Reg scratch, I.Mem (Machine.Reg.fp, Frame.spill_off st.fr s)));
      I.Reg scratch

let operand_src st ?scratch (o : Ir.operand) : I.operand =
  match o with Ir.Oimm n -> I.Imm n | Ir.Otemp t -> temp_src st ?scratch t

(* Destination handling: returns the operand to write and a completion
   thunk that stores a spilled destination back to its slot. *)
let temp_dst st t : I.operand * (unit -> unit) =
  match st.ra.Regalloc.assign.(t) with
  | Regalloc.Areg r -> (I.Reg r, fun () -> ())
  | Regalloc.Aspill s ->
      ( I.Reg Machine.Reg.scratch0,
        fun () ->
          emit st
            (I.Mov (I.Mem (Machine.Reg.fp, Frame.spill_off st.fr s), I.Reg Machine.Reg.scratch0)) )

let local_mem st l o = I.Mem (Machine.Reg.fp, Frame.local_off st.fr l + o)

(* A heap store needs a write barrier iff the stored value may be a tidy
   heap pointer (or derived from one) — NIL/immediates, scalars and
   never-moving stack/static addresses cannot create old→young references.
   Stores through a [Kstack] address target a frame or global word, which
   the minor collection treats as a root, so they need no barrier either.
   The same Wbar doubles as the incremental collector's insertion barrier
   (shade the stored-to slot), and this predicate is sound for that
   reading too: frame and global words are roots the final flip rescans,
   and a NIL/scalar store cannot create a black→white edge. This is why
   the incremental design is an insertion barrier rather than a deletion
   (snapshot-at-the-beginning) barrier — NIL stores carry no Wbar here,
   so an overwritten-pointer log would have a coverage hole, while the
   insertion reading only ever needs the stores this predicate keeps. *)
let store_needs_barrier st (a : Ir.operand) (v : Ir.operand) =
  (match a with
  | Ir.Otemp ta -> (
      match Ir.temp_kind st.f ta with Ir.Kstack -> false | _ -> true)
  | Ir.Oimm _ -> true)
  &&
  match v with
  | Ir.Oimm _ -> false
  | Ir.Otemp tv -> (
      match Ir.temp_kind st.f tv with
      | Ir.Kptr | Ir.Kderived _ -> true
      | Ir.Kscalar | Ir.Kstack -> false)

(* ------------------------------------------------------------------ *)
(* GC info at a call                                                   *)
(* ------------------------------------------------------------------ *)

let loc_of_temp st t = Regalloc.loc_of_temp st.ra st.fr t

let loc_of_base st (b : Mir.Deriv.base) : L.t option =
  match b with
  | Mir.Deriv.Blocal l -> Some (L.Lmem (L.FP, Frame.local_off st.fr l))
  | Mir.Deriv.Btemp t -> (
      match st.ra.Regalloc.assign.(t) with
      | Regalloc.Aspill s when s < 0 -> None (* folded away: unrestricted mode only *)
      | _ -> Some (loc_of_temp st t))

let deriv_entry_of st ~target (d : Mir.Deriv.t) : RM.deriv_entry option =
  let map bs = List.map (loc_of_base st) bs in
  let plus = map d.Mir.Deriv.plus and minus = map d.Mir.Deriv.minus in
  if List.exists Option.is_none plus || List.exists Option.is_none minus then None
  else
    Some
      {
        RM.target;
        plus = List.map Option.get plus;
        minus = List.map Option.get minus;
      }

let rec close_bases st (d : Mir.Deriv.t) (temps : Bitset.t) (locals : Bitset.t) =
  List.iter
    (fun b ->
      match b with
      | Mir.Deriv.Blocal l -> Bitset.set locals l
      | Mir.Deriv.Btemp t ->
          if not (Bitset.mem temps t) then begin
            Bitset.set temps t;
            match Ir.temp_kind st.f t with
            | Ir.Kderived d' -> close_bases st d' temps locals
            | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> ()
          end)
    (Mir.Deriv.bases d)

let record_gcpoint st ~block ~instr_idx ~(args : Ir.operand list) ~call_item =
  let live_t, live_l = Mir.Liveness.live_at_gcpoint st.liv block instr_idx in
  let live_t = Bitset.copy live_t and live_l = Bitset.copy live_l in
  (* The bases of derivations passed as outgoing arguments live through the
     call (dead-base rule at call-by-reference, paper §3-4). *)
  List.iter
    (function
      | Ir.Oimm _ -> ()
      | Ir.Otemp a -> (
          match Ir.temp_kind st.f a with
          | Ir.Kderived d -> close_bases st d live_t live_l
          | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> ()))
    args;
  let stack_ptrs = ref [] and reg_ptrs = ref [] and derivs = ref [] in
  let variants = ref [] in
  (* Frame locals (never incoming parameters: those are described by the
     caller's tables for the whole duration of the call). *)
  Bitset.iter
    (fun l ->
      if l >= st.f.Ir.nparams then
        let info = st.f.Ir.locals.(l) in
        let off = Frame.local_off st.fr l in
        match info.Ir.l_slot with
        | Ir.Sptr -> stack_ptrs := L.Lmem (L.FP, off) :: !stack_ptrs
        | Ir.Saggregate ptrs ->
            List.iter (fun p -> stack_ptrs := L.Lmem (L.FP, off + p) :: !stack_ptrs) ptrs
        | Ir.Sderived d -> (
            match deriv_entry_of st ~target:(L.Lmem (L.FP, off)) d with
            | Some e -> derivs := e :: !derivs
            | None -> ())
        | Ir.Sambig a ->
            (* Ambiguous derivation: one variant per path value (§4). *)
            let path_loc = L.Lmem (L.FP, Frame.local_off st.fr a.Ir.path_local) in
            let cases =
              List.filter_map
                (fun (v, d) ->
                  match deriv_entry_of st ~target:(L.Lmem (L.FP, off)) d with
                  | Some e -> Some (v, e)
                  | None -> None)
                a.Ir.cases
            in
            if cases <> [] then variants := { RM.path_loc; cases } :: !variants
        | Ir.Sscalar | Ir.Saddr -> ())
    live_l;
  (* Live temps. *)
  Bitset.iter
    (fun t ->
      match (Ir.temp_kind st.f t, st.ra.Regalloc.assign.(t)) with
      | Ir.Kptr, Regalloc.Areg r -> reg_ptrs := r :: !reg_ptrs
      | Ir.Kptr, Regalloc.Aspill s when s >= 0 ->
          stack_ptrs := L.Lmem (L.FP, Frame.spill_off st.fr s) :: !stack_ptrs
      | Ir.Kderived d, a when (match a with Regalloc.Aspill s -> s >= 0 | _ -> true) -> (
          match deriv_entry_of st ~target:(loc_of_temp st t) d with
          | Some e -> derivs := e :: !derivs
          | None -> ())
      | (Ir.Kscalar | Ir.Kstack | Ir.Kptr | Ir.Kderived _), _ -> ())
    live_t;
  (* Outgoing argument words of this very call (AP-relative). *)
  List.iteri
    (fun j (a : Ir.operand) ->
      match a with
      | Ir.Oimm _ -> ()
      | Ir.Otemp t -> (
          match Ir.temp_kind st.f t with
          | Ir.Kptr -> stack_ptrs := L.Lmem (L.AP, j) :: !stack_ptrs
          | Ir.Kderived d -> (
              match deriv_entry_of st ~target:(L.Lmem (L.AP, j)) d with
              | Some e -> derivs := e :: !derivs
              | None -> ())
          | Ir.Kscalar | Ir.Kstack -> ()))
    args;
  let gp =
    {
      rg_item = call_item;
      rg_stack_ptrs = List.sort_uniq L.compare !stack_ptrs;
      rg_reg_ptrs = List.sort_uniq compare !reg_ptrs;
      rg_derivs = RM.order_derivs (List.rev !derivs);
      rg_variants = List.rev !variants;
    }
  in
  st.gcpoints <- gp :: st.gcpoints

(* ------------------------------------------------------------------ *)
(* Instruction translation                                             *)
(* ------------------------------------------------------------------ *)

(* Folding decision for the instruction pair (i, i+1); returns the folded
   instruction list, or None. Pattern 1:
     ta := local[l]  (address slot) ; t := M[ta + o]
   folds to  t := Defer(FP, off_l, o).  Pattern 2:
     t1 := M[ta + k1] ; t2 := t1 + k2
   folds to  t2 := lea Defer(ra, k1, k2). Both require the intermediate to
   be single-use; with gc restrictions the intermediate must additionally
   not be a derivation base (paper §4). *)
type wbar_action = Wb_emit | Wb_elided | Wb_none

type fold =
  | Fold_defer_load of Ir.temp * int * int * int (* dst, base local, d1, d2 *)
  | Fold_defer_lea of Ir.temp * Ir.temp * int * int (* dst, addr temp, d1, d2 *)
  | Fold_mem2_load of Ir.temp * Ir.temp * Ir.temp * int (* dst, r1, r2, disp *)
  | Fold_mem2_store of Ir.temp * Ir.temp * int * Ir.operand * wbar_action
    (* r1, r2, disp, value, barrier decision of the folded store *)

let try_fold st i1 i2 =
  let ok_intermediate t =
    st.counts.(t) = 1 && ((not st.opts.gc_restrict) || not st.is_base.(t))
  in
  match (i1, i2) with
  | Ir.Ld_local (ta, l, 0), Ir.Load (t, Ir.Otemp ta', o)
    when ta = ta' && ok_intermediate ta
         && (match st.f.Ir.locals.(l).Ir.l_slot with
            | Ir.Saddr | Ir.Sderived _ | Ir.Sambig _ -> true
            | Ir.Sscalar | Ir.Sptr | Ir.Saggregate _ -> false) ->
      Some (Fold_defer_load (t, l, 0, o))
  (* address through an indirect reference (paper §4, "Indirect
     References"):  t1 := M[ra+k1] ; taddr := t1 + k2.  Folding hides the
     intermediate pointer t1 inside a deferred operand; with gc
     restrictions the fold is suppressed whenever t1 is a derivation base,
     keeping the base in a compile-time-known location. *)
  | Ir.Load (t1, Ir.Otemp ra, k1), Ir.Bin (Ir.Add, taddr, Ir.Otemp t1', Ir.Oimm k2)
    when t1 = t1' && ok_intermediate t1
         && (match Ir.temp_kind st.f t1 with Ir.Kptr -> true | _ -> false) ->
      Some (Fold_defer_lea (taddr, ra, k1, k2))
  (* double indexing (paper §2's fourth example): an address formed from
     two register values feeds a single adjacent access; the sum is folded
     into a two-index addressing mode, like [*(t1 + t2)] on the SPARC or
     VAX. The components stay as table-described values when live at
     gc-points; only the transient sum disappears, so this fold is legal
     in restricted mode as long as the sum is not itself a derivation
     base. *)
  | Ir.Bin (Ir.Add, t3, Ir.Otemp t1, Ir.Otemp t2), Ir.Load (x, Ir.Otemp t3', d)
    when t3 = t3' && ok_intermediate t3 ->
      Some (Fold_mem2_load (x, t1, t2, d))
  | ( Ir.Bin (Ir.Add, t3, Ir.Otemp t1, Ir.Otemp t2),
      (Ir.Store (Ir.Otemp t3', d, v) | Ir.Store_nb (Ir.Otemp t3', d, v)) )
    when t3 = t3' && ok_intermediate t3
         && (* both scratch registers may be needed for the two index
               reloads, so the stored value must not need a third *)
         (match v with
         | Ir.Oimm _ -> true
         | Ir.Otemp tv -> (
             match st.ra.Regalloc.assign.(tv) with
             | Regalloc.Areg _ -> true
             | Regalloc.Aspill _ -> false)) ->
      let wb =
        if not (store_needs_barrier st (Ir.Otemp t3') v) then Wb_none
        else match i2 with Ir.Store_nb _ -> Wb_elided | _ -> Wb_emit
      in
      Some (Fold_mem2_store (t1, t2, d, v, wb))
  | _ -> None

let select_instr st ~block ~instr_idx (instr : Ir.instr) : unit =
  match instr with
  | Ir.Mov (d, s) ->
      let src = operand_src st s in
      let dst, fin = temp_dst st d in
      emit st (I.Mov (dst, src));
      fin ()
  | Ir.Bin (op, d, a, b) ->
      let sa = operand_src st ~scratch:Machine.Reg.scratch0 a in
      let sb = operand_src st ~scratch:Machine.Reg.scratch1 b in
      let dst, fin = temp_dst st d in
      emit st (I.Arith (I.aop_of_ir op, dst, sa, sb));
      fin ()
  | Ir.Neg (d, s) ->
      let src = operand_src st s in
      let dst, fin = temp_dst st d in
      emit st (I.Arith (I.Neg, dst, src, I.Imm 0));
      fin ()
  | Ir.Abs (d, s) ->
      let src = operand_src st s in
      let dst, fin = temp_dst st d in
      emit st (I.Arith (I.Abso, dst, src, I.Imm 0));
      fin ()
  | Ir.Setrel (r, d, a, b) ->
      let sa = operand_src st ~scratch:Machine.Reg.scratch0 a in
      let sb = operand_src st ~scratch:Machine.Reg.scratch1 b in
      let dst, fin = temp_dst st d in
      emit st (I.Arith (I.Setcc (I.relop_of_ir r), dst, sa, sb));
      fin ()
  | Ir.Ld_local (d, l, o) ->
      let dst, fin = temp_dst st d in
      emit st (I.Mov (dst, local_mem st l o));
      fin ()
  | Ir.St_local (l, o, s) ->
      let src = operand_src st s in
      emit st (I.Mov (local_mem st l o, src))
  | Ir.Ld_global (d, g, o) ->
      let dst, fin = temp_dst st d in
      emit st (I.Mov (dst, I.Abs (st.global_addr g + o)));
      fin ()
  | Ir.St_global (g, o, s) ->
      let src = operand_src st s in
      emit st (I.Mov (I.Abs (st.global_addr g + o), src))
  | Ir.Lda_local (d, l, o) -> (
      match st.ra.Regalloc.assign.(d) with
      | Regalloc.Areg r -> emit st (I.Lea (r, local_mem st l o))
      | Regalloc.Aspill s ->
          emit st (I.Lea (Machine.Reg.scratch0, local_mem st l o));
          emit st
            (I.Mov (I.Mem (Machine.Reg.fp, Frame.spill_off st.fr s), I.Reg Machine.Reg.scratch0)))
  | Ir.Lda_global (d, g, o) ->
      let dst, fin = temp_dst st d in
      emit st (I.Mov (dst, I.Imm (st.global_addr g + o)));
      fin ()
  | Ir.Lda_text (d, x) ->
      let dst, fin = temp_dst st d in
      emit st (I.Mov (dst, I.Imm (st.text_addr x)));
      fin ()
  | Ir.Load (d, a, o) ->
      let sa = operand_src st a in
      let ra = (match sa with I.Reg r -> r | _ -> failwith "Select: load address not in register") in
      let dst, fin = temp_dst st d in
      emit st (I.Mov (dst, I.Mem (ra, o)));
      fin ()
  | Ir.Store (a, o, v) ->
      let sa = operand_src st ~scratch:Machine.Reg.scratch0 a in
      let ra = (match sa with I.Reg r -> r | _ -> failwith "Select: store address not in register") in
      let sv = operand_src st ~scratch:Machine.Reg.scratch1 v in
      emit st (I.Mov (I.Mem (ra, o), sv));
      if store_needs_barrier st a v then begin
        emit st (I.Wbar (I.Mem (ra, o)));
        st.barriers <- st.barriers + 1
      end
  | Ir.Store_nb (a, o, v) ->
      let sa = operand_src st ~scratch:Machine.Reg.scratch0 a in
      let ra = (match sa with I.Reg r -> r | _ -> failwith "Select: store address not in register") in
      let sv = operand_src st ~scratch:Machine.Reg.scratch1 v in
      emit st (I.Mov (I.Mem (ra, o), sv));
      if store_needs_barrier st a v then
        st.barriers_elided <- st.barriers_elided + 1
  | Ir.Call (dst, callee, args) ->
      (* Push arguments right to left so argument 0 lands lowest. *)
      List.iter
        (fun a -> emit st (I.Push (operand_src st a)))
        (List.rev args);
      let mcallee =
        match callee with Ir.Cuser fid -> I.Cproc fid | Ir.Crt rc -> I.Crt rc
      in
      let call_item = Growarr.push st.items (I.Call mcallee) in
      if Ir.call_is_gcpoint ~noalloc_funcs:st.opts.noalloc callee then
        record_gcpoint st ~block ~instr_idx ~args ~call_item;
      (match dst with
      | None -> ()
      | Some d ->
          let dop, fin = temp_dst st d in
          emit st (I.Mov (dop, I.Reg Machine.Reg.ret));
          fin ())

let select_term st ~next_block (t : Ir.term) : unit =
  match t with
  | Ir.Jmp l -> if l <> next_block then emit st (I.Jmp l)
  | Ir.Cjmp (r, a, b, tl, fl) ->
      let sa = operand_src st ~scratch:Machine.Reg.scratch0 a in
      let sb = operand_src st ~scratch:Machine.Reg.scratch1 b in
      let mr = I.relop_of_ir r in
      if tl = next_block then begin
        (* invert: branch to fl when NOT r *)
        let inv =
          match mr with
          | I.Req -> I.Rne
          | I.Rne -> I.Req
          | I.Rlt -> I.Rge
          | I.Rle -> I.Rgt
          | I.Rgt -> I.Rle
          | I.Rge -> I.Rlt
        in
        emit st (I.Cbr (inv, sa, sb, fl))
      end
      else begin
        emit st (I.Cbr (mr, sa, sb, tl));
        if fl <> next_block then emit st (I.Jmp fl)
      end
  | Ir.Ret o ->
      (match o with
      | Some op ->
          let src = operand_src st op in
          emit st (I.Mov (I.Reg Machine.Reg.ret, src))
      | None -> ());
      emit st I.Leave;
      emit st (I.Ret st.f.Ir.nparams)
  | Ir.Unreachable -> emit st (I.Trap "unreachable")

(* ------------------------------------------------------------------ *)
(* Function driver                                                     *)
(* ------------------------------------------------------------------ *)

let func ~(prog : Ir.program) (opts : options)
    ?(global_addr = fun _ -> 0) ?(text_addr = fun _ -> 0) (f : Ir.func) : out_func =
  ignore prog;
  let liv = Mir.Liveness.compute f in
  let ra = Regalloc.allocate f liv in
  let fr =
    Frame.layout ~locals:f.Ir.locals ~nparams:f.Ir.nparams
      ~saves:ra.Regalloc.used_callee_saved ~nspills:ra.Regalloc.nspills
  in
  let st =
    {
      f;
      opts;
      liv;
      ra;
      fr;
      counts = use_counts f;
      is_base = base_temps f;
      items = Growarr.create ~dummy:(I.Trap "dummy");
      block_pos = Array.make (Array.length f.Ir.blocks) 0;
      gcpoints = [];
      folds_suppressed = 0;
      folds_applied = 0;
      barriers = 0;
      barriers_elided = 0;
      global_addr;
      text_addr;
    }
  in
  emit st
    (I.Enter
       {
         frame_size = fr.Frame.frame_size;
         saves = Array.of_list ra.Regalloc.used_callee_saved;
       });
  Array.iteri
    (fun b (blk : Ir.block) ->
      st.block_pos.(b) <- Growarr.length st.items;
      let instrs = Array.of_list blk.Ir.instrs in
      let n = Array.length instrs in
      let i = ref 0 in
      while !i < n do
        let folded =
          if !i + 1 < n then try_fold st instrs.(!i) instrs.(!i + 1) else None
        in
        (match folded with
        | Some (Fold_defer_load (t, l, d1, d2)) ->
            st.folds_applied <- st.folds_applied + 1;
            let dst, fin = temp_dst st t in
            emit st (I.Mov (dst, I.Defer (Machine.Reg.fp, Frame.local_off st.fr l + d1, d2)));
            fin ();
            i := !i + 2
        | Some (Fold_mem2_load (x, t1, t2, d)) ->
            st.folds_applied <- st.folds_applied + 1;
            let r1 =
              match temp_src st ~scratch:Machine.Reg.scratch0 t1 with
              | I.Reg r -> r
              | _ -> failwith "Select: mem2 base not in a register"
            in
            let r2 =
              match temp_src st ~scratch:Machine.Reg.scratch1 t2 with
              | I.Reg r -> r
              | _ -> failwith "Select: mem2 index not in a register"
            in
            let dst, fin = temp_dst st x in
            emit st (I.Mov (dst, I.Mem2 (r1, r2, d)));
            fin ();
            i := !i + 2
        | Some (Fold_mem2_store (t1, t2, d, v, wb)) ->
            st.folds_applied <- st.folds_applied + 1;
            let r1 =
              match temp_src st ~scratch:Machine.Reg.scratch0 t1 with
              | I.Reg r -> r
              | _ -> failwith "Select: mem2 base not in a register"
            in
            let r2 =
              match temp_src st ~scratch:Machine.Reg.scratch1 t2 with
              | I.Reg r -> r
              | _ -> failwith "Select: mem2 index not in a register"
            in
            let sv = operand_src st v in
            emit st (I.Mov (I.Mem2 (r1, r2, d), sv));
            (match wb with
            | Wb_emit ->
                emit st (I.Wbar (I.Mem2 (r1, r2, d)));
                st.barriers <- st.barriers + 1
            | Wb_elided -> st.barriers_elided <- st.barriers_elided + 1
            | Wb_none -> ());
            i := !i + 2
        | Some (Fold_defer_lea (taddr, ra, k1, k2)) ->
            st.folds_applied <- st.folds_applied + 1;
            let rsrc =
              match temp_src st ra with
              | I.Reg r -> r
              | _ -> failwith "Select: defer base not in a register"
            in
            (match st.ra.Regalloc.assign.(taddr) with
            | Regalloc.Areg r -> emit st (I.Lea (r, I.Defer (rsrc, k1, k2)))
            | Regalloc.Aspill sp ->
                emit st (I.Lea (Machine.Reg.scratch0, I.Defer (rsrc, k1, k2)));
                emit st
                  (I.Mov
                     ( I.Mem (Machine.Reg.fp, Frame.spill_off st.fr sp),
                       I.Reg Machine.Reg.scratch0 )));
            i := !i + 2
        | None ->
            (* Count folds blocked purely by gc restrictions (§6.2). *)
            (if st.opts.gc_restrict && !i + 1 < n then
               let unrestricted = { st with opts = { st.opts with gc_restrict = false } } in
               match try_fold unrestricted instrs.(!i) instrs.(!i + 1) with
               | Some _ -> st.folds_suppressed <- st.folds_suppressed + 1
               | None -> ());
            select_instr st ~block:b ~instr_idx:!i instrs.(!i);
            incr i)
      done;
      select_term st ~next_block:(b + 1) blk.Ir.term)
    f.Ir.blocks;
  (* Resolve branch targets from block labels to item indices. *)
  let code = Growarr.to_array st.items in
  let resolved =
    Array.map
      (function
        | I.Jmp l -> I.Jmp st.block_pos.(l)
        | I.Cbr (r, a, b, l) -> I.Cbr (r, a, b, st.block_pos.(l))
        | other -> other)
      code
  in
  {
    of_fid = f.Ir.fid;
    of_name = f.Ir.fname;
    of_code = resolved;
    of_frame = fr;
    of_gcpoints = List.rev st.gcpoints;
    of_folds_suppressed = st.folds_suppressed;
    of_folds_applied = st.folds_applied;
    of_barriers = st.barriers;
    of_barriers_elided = st.barriers_elided;
  }
