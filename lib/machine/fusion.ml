(** Branch-target and superinstruction-fusion metadata over UVM code.

    The threaded execution engine fuses hot adjacent instruction pairs into
    single dispatch closures. Fusion of the pair at [(i, i+1)] is legal
    only when control can never observe the seam:

    - instruction [i] must fall through unconditionally into [i+1] — it is
      not a branch, call, return or trap;
    - instruction [i] must not be a gc-point (any [Call]): a collection
      strikes with [pc] naming the call, so a call may only ever be the
      {e last} element of a superinstruction (the engine materializes the
      exact pc before executing it);
    - [i+1] must not be a branch target: a jump landing mid-pair would
      have to execute the second half alone, and the fused execution
      counters would stop meaning "this static pair ran".

    The analysis is purely static over the code array (targets are explicit
    operands of [Jmp]/[Cbr], return points follow every procedure [Call]),
    so it runs once at translation time and costs the mutator nothing. *)

(** [targets ?entries code] marks every code index control can reach other
    than by falling through from its predecessor: explicit [Jmp]/[Cbr]
    operands, the return point after every procedure call, and the given
    procedure [entries]. *)
let targets ?(entries = []) (code : Insn.t array) : bool array =
  let n = Array.length code in
  let t = Array.make n false in
  List.iter (fun e -> if e >= 0 && e < n then t.(e) <- true) entries;
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Jmp l -> if l >= 0 && l < n then t.(l) <- true
      | Insn.Cbr (_, _, _, l) -> if l >= 0 && l < n then t.(l) <- true
      | Insn.Call (Insn.Cproc _) ->
          (* [Ret] jumps to the pushed return address, pc + 1. *)
          if i + 1 < n then t.(i + 1) <- true
      | _ -> ())
    code;
  t

(** Instructions after which control always continues at [pc + 1] by plain
    fall-through (no indirect or computed successor). [Call (Crt _)] does
    continue sequentially, but it is a gc-point and thus never a legal
    {e first} element — see {!classify_pair}. *)
let falls_through = function
  | Insn.Mov _ | Insn.Lea _ | Insn.Arith _ | Insn.Push _ | Insn.Enter _
  | Insn.Wbar _ ->
      true
  | Insn.Cbr _ | Insn.Jmp _ | Insn.Call _ | Insn.Leave | Insn.Ret _ | Insn.Trap _
    ->
      false

(** The fused pair kinds, in the order dynamic instruction mixes rank them
    hot on the benchmark programs (a load feeding a conditional branch —
    the list-walk idiom — tops both destroy and takl; move chains are next;
    then pushes feeding calls and the frame idioms). *)
type pair_kind =
  | Mov_cbr
  | Mov_mov
  | Mov_arith
  | Mov_jmp
  | Mov_push
  | Mov_leave
  | Arith_cbr
  | Arith_mov
  | Push_push
  | Push_call
  | Enter_mov
  | Wbar_mov

let pair_name = function
  | Mov_cbr -> "mov_cbr"
  | Mov_mov -> "mov_mov"
  | Mov_arith -> "mov_arith"
  | Mov_jmp -> "mov_jmp"
  | Mov_push -> "mov_push"
  | Mov_leave -> "mov_leave"
  | Arith_cbr -> "arith_cbr"
  | Arith_mov -> "arith_mov"
  | Push_push -> "push_push"
  | Push_call -> "push_call"
  | Enter_mov -> "enter_mov"
  | Wbar_mov -> "wbar_mov"

let all_pairs =
  [
    Mov_cbr; Mov_mov; Mov_arith; Mov_jmp; Mov_push; Mov_leave; Arith_cbr;
    Arith_mov; Push_push; Push_call; Enter_mov; Wbar_mov;
  ]

(** Classify an adjacent pair as one of the fusible kinds. Purely shape
    matching — the caller also checks {!targets} and gc-point legality via
    {!fusible}. *)
let classify_pair (a : Insn.t) (b : Insn.t) : pair_kind option =
  match (a, b) with
  | Insn.Mov _, Insn.Cbr _ -> Some Mov_cbr
  | Insn.Mov _, Insn.Mov _ -> Some Mov_mov
  | Insn.Mov _, Insn.Arith _ -> Some Mov_arith
  | Insn.Mov _, Insn.Jmp _ -> Some Mov_jmp
  | Insn.Mov _, Insn.Push _ -> Some Mov_push
  | Insn.Mov _, Insn.Leave -> Some Mov_leave
  | Insn.Arith _, Insn.Cbr _ -> Some Arith_cbr
  | Insn.Arith _, Insn.Mov _ -> Some Arith_mov
  | Insn.Push _, Insn.Push _ -> Some Push_push
  | Insn.Push _, Insn.Call _ -> Some Push_call
  | Insn.Enter _, Insn.Mov _ -> Some Enter_mov
  | Insn.Wbar _, Insn.Mov _ -> Some Wbar_mov
  | _ -> None

(** Fusion legality and kind for the pair starting at [i], given the
    [targets] map of the same code array. *)
let fusible (code : Insn.t array) (tgt : bool array) i : pair_kind option =
  if i + 1 >= Array.length code then None
  else if tgt.(i + 1) then None
  else if not (falls_through code.(i)) then None
  else classify_pair code.(i) code.(i + 1)
