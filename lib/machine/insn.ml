(** The UVM instruction set.

    Code addresses are instruction indices into the program's code array.
    The byte encoding in {!Encode_insn} exists to give every instruction a
    realistic size so that "table size as a percentage of code size" (paper
    Tables 1-2) is a genuine measurement.

    Addressing modes deliberately include the two kinds the paper needs:
    [Mem2] (two index registers, the "double indexing" of §2) and [Defer]
    (VAX deferred addressing, which is what makes the "indirect references"
    problem of §4 arise). *)

type operand =
  | Reg of int
  | Imm of int
  | Mem of int * int (* M[reg + disp] *)
  | Mem2 of int * int * int (* M[r1 + r2 + disp] *)
  | Defer of int * int * int (* M[ M[reg + d1] + d2 ] *)
  | Abs of int (* M[addr] — globals *)

type aop = Add | Sub | Mul | Div | Mod | Min | Max | Neg | Abso | Setcc of relop
and relop = Req | Rne | Rlt | Rle | Rgt | Rge

type callee = Cproc of int (* function id *) | Crt of Mir.Ir.rt_call

type t =
  | Mov of operand * operand (* dst, src *)
  | Lea of int * operand (* reg := effective address of Mem/Mem2/Abs *)
  | Arith of aop * operand * operand * operand (* dst, a, b (Neg/Abs ignore b) *)
  | Cbr of relop * operand * operand * int (* branch to code index if a REL b *)
  | Jmp of int
  | Push of operand
  | Call of callee
  | Enter of { frame_size : int; saves : int array }
      (* prologue: push FP; FP := SP; save callee-saved regs at FP-1..;
         zero the rest of the frame; SP := FP - frame_size *)
  | Leave (* restore saves; SP := FP; FP := pop *)
  | Ret of int (* pop return address and n argument words; jump *)
  | Wbar of operand
      (* generational write barrier: record the effective address of the
         just-stored heap slot in the remembered set when it may hold an
         old→young reference. A no-op outside generational mode. *)
  | Trap of string (* unreachable / runtime error marker *)

let relop_eval r a b =
  match r with
  | Req -> a = b
  | Rne -> a <> b
  | Rlt -> a < b
  | Rle -> a <= b
  | Rgt -> a > b
  | Rge -> a >= b

let relop_of_ir : Mir.Ir.relop -> relop = function
  | Mir.Ir.Req -> Req
  | Mir.Ir.Rne -> Rne
  | Mir.Ir.Rlt -> Rlt
  | Mir.Ir.Rle -> Rle
  | Mir.Ir.Rgt -> Rgt
  | Mir.Ir.Rge -> Rge

let aop_of_ir : Mir.Ir.binop -> aop = function
  | Mir.Ir.Add -> Add
  | Mir.Ir.Sub -> Sub
  | Mir.Ir.Mul -> Mul
  | Mir.Ir.Div -> Div
  | Mir.Ir.Mod -> Mod
  | Mir.Ir.Min -> Min
  | Mir.Ir.Max -> Max

let pp_operand fmt = function
  | Reg r -> Format.fprintf fmt "%s" (Reg.name r)
  | Imm n -> Format.fprintf fmt "$%d" n
  | Mem (r, d) -> Format.fprintf fmt "%d(%s)" d (Reg.name r)
  | Mem2 (r1, r2, d) -> Format.fprintf fmt "%d(%s)[%s]" d (Reg.name r1) (Reg.name r2)
  | Defer (r, d1, d2) -> Format.fprintf fmt "%d(@%d(%s))" d2 d1 (Reg.name r)
  | Abs a -> Format.fprintf fmt "*%d" a

let aop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Min -> "min"
  | Max -> "max"
  | Neg -> "neg"
  | Abso -> "abs"
  | Setcc Req -> "seteq"
  | Setcc Rne -> "setne"
  | Setcc Rlt -> "setlt"
  | Setcc Rle -> "setle"
  | Setcc Rgt -> "setgt"
  | Setcc Rge -> "setge"

let relop_name = function
  | Req -> "eq"
  | Rne -> "ne"
  | Rlt -> "lt"
  | Rle -> "le"
  | Rgt -> "gt"
  | Rge -> "ge"

let pp ?(callee_name = fun _ -> None) fmt = function
  | Mov (d, s) -> Format.fprintf fmt "mov %a, %a" pp_operand d pp_operand s
  | Lea (r, o) -> Format.fprintf fmt "lea %s, %a" (Reg.name r) pp_operand o
  | Arith (op, d, a, b) ->
      Format.fprintf fmt "%s %a, %a, %a" (aop_name op) pp_operand d pp_operand a
        pp_operand b
  | Cbr (r, a, b, l) ->
      Format.fprintf fmt "b%s %a, %a, @%d" (relop_name r) pp_operand a pp_operand b l
  | Jmp l -> Format.fprintf fmt "jmp @%d" l
  | Push o -> Format.fprintf fmt "push %a" pp_operand o
  | Call (Cproc fid) -> (
      match callee_name (`Proc fid) with
      | Some n -> Format.fprintf fmt "call %s" n
      | None -> Format.fprintf fmt "call proc%d" fid)
  | Call (Crt rc) -> Format.fprintf fmt "call %s" (Mir.Ir.rt_name rc)
  | Enter { frame_size; saves } ->
      Format.fprintf fmt "enter %d, saves=[%s]" frame_size
        (String.concat ";" (List.map Reg.name (Array.to_list saves)))
  | Leave -> Format.fprintf fmt "leave"
  | Ret n -> Format.fprintf fmt "ret %d" n
  | Wbar o -> Format.fprintf fmt "wbar %a" pp_operand o
  | Trap msg -> Format.fprintf fmt "trap %S" msg
