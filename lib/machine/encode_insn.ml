(** Byte-size model of UVM instructions.

    Each instruction is assigned a realistic encoded size: one opcode byte
    plus per-operand bytes (a mode byte plus packed displacements, in the
    Fig. 3 varint format). Code size in bytes — the denominator of the
    paper's Tables 1 and 2 — is the sum over the code array. *)

open Support

let operand_bytes = function
  | Insn.Reg _ -> 1 (* mode+reg nibble pair *)
  | Insn.Imm n -> 1 + Varint.byte_length n
  | Insn.Mem (_, d) -> 1 + Varint.byte_length d
  | Insn.Mem2 (_, _, d) -> 2 + Varint.byte_length d
  | Insn.Defer (_, d1, d2) -> 1 + Varint.byte_length d1 + Varint.byte_length d2
  | Insn.Abs a -> 1 + Varint.byte_length a

(* Branch/call targets are counted as 2-byte displacements, as on the VAX
   (branch displacement words). *)
let target_bytes = 2

let bytes = function
  | Insn.Mov (d, s) -> 1 + operand_bytes d + operand_bytes s
  | Insn.Lea (_, o) -> 1 + 1 + operand_bytes o
  | Insn.Arith (_, d, a, b) -> 1 + operand_bytes d + operand_bytes a + operand_bytes b
  | Insn.Cbr (_, a, b, _) -> 1 + operand_bytes a + operand_bytes b + target_bytes
  | Insn.Jmp _ -> 1 + target_bytes
  | Insn.Push o -> 1 + operand_bytes o
  | Insn.Call _ -> 1 + target_bytes
  | Insn.Enter { saves; _ } -> 1 + 2 (* save mask *) + Varint.byte_length (Array.length saves)
  | Insn.Leave -> 1
  | Insn.Ret _ -> 1 + 1
  | Insn.Wbar o -> 1 + operand_bytes o
  | Insn.Trap _ -> 1

let code_bytes code = Array.fold_left (fun acc i -> acc + bytes i) 0 code

(** Byte offset of every instruction (for pc-to-table distance encoding). *)
let offsets code =
  let n = Array.length code in
  let offs = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offs.(i + 1) <- offs.(i) + bytes code.(i)
  done;
  offs
