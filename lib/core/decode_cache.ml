(** Memoized pc→table decoding.

    The paper's δ-main organization deliberately trades decode time for
    table space (§5.2): {!Decode.find} re-scans the enclosing procedure's
    table stream from the ground table on every lookup, and the collector
    pays that cost afresh for every frame of every collection. The table
    streams never change after image build, so that work is pure
    re-traversal of immutable metadata — exactly what a memo table
    eliminates.

    This module decodes each procedure's stream {e once}, materializes its
    gc-points into an offset-sorted array, and answers subsequent lookups
    with a binary search on [gp_offset]. Residency policy is per-image
    full residency: the cache holds at most one entry per procedure of the
    image, so its footprint is bounded by a small constant factor of the
    encoded table bytes (themselves ~16% of code size under
    packing+previous) — no eviction is ever needed. See DESIGN.md
    ("Decode cache and the §5.2 tradeoff") for the justification.

    The cache is switchable at run time ({!set_enabled}; [mmrun
    --no-decode-cache]) so the bench harness can still reproduce the
    paper's uncached decode-cost numbers bit-for-bit. Accounting keeps
    the two modes comparable:

    - [decode.finds] counts every lookup in both modes;
    - [decode.bytes] remains the paper's decode-work measure — stream
      bytes scanned {e at find time}. Cache hits scan nothing and add
      nothing; with the cache disabled the counter behaves exactly as
      before;
    - [decode.cache_hits] / [decode.cache_misses] count lookup outcomes;
    - [decode.cache_bytes] counts stream bytes decoded to fill the cache
      (each procedure's stream length, once). *)

module M = Telemetry.Metrics

let c_hits = M.counter "decode.cache_hits"
let c_misses = M.counter "decode.cache_misses"
let c_cache_bytes = M.counter "decode.cache_bytes"
let c_finds = M.counter "decode.finds" (* shared with Decode *)

type proc_entry = {
  ce_dp : Decode.decoded_proc;
  ce_offsets : int array; (* gp_offset per gc-point, ascending *)
  ce_points : Rawmaps.gcpoint array; (* same order as [ce_offsets] *)
}

type t = {
  tables : Encode.program_tables;
  slots : proc_entry option array; (* indexed by fid; per-image residency *)
  mutable resident_bytes : int; (* estimate of materialized structure size *)
  mutable stream_bytes : int; (* encoded stream bytes decoded into the cache *)
}

(* Master switch, global so one CLI flag reaches every cache instance. *)
let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let create (tables : Encode.program_tables) : t =
  {
    tables;
    slots = Array.make (Array.length tables.Encode.procs) None;
    resident_bytes = 0;
    stream_bytes = 0;
  }

let tables t = t.tables
let resident_bytes t = t.resident_bytes
let stream_bytes t = t.stream_bytes

let resident_procs t =
  Array.fold_left (fun n s -> if s = None then n else n + 1) 0 t.slots

(* ------------------------------------------------------------------ *)
(* Footprint estimate                                                  *)
(* ------------------------------------------------------------------ *)

(* Rough byte size of the materialized OCaml structures (boxed words =
   8 bytes, a cons cell 3 words, a small record 1 + #fields words). Used
   only for reporting; the residency bound itself is structural (one slot
   per procedure). *)

let word = 8
let list_bytes per_elt l = List.fold_left (fun a x -> a + (3 * word) + per_elt x) 0 l
let loc_bytes (_ : Loc.t) = 3 * word (* Lmem block; Lreg is immediate-ish *)

let deriv_bytes (d : Rawmaps.deriv_entry) =
  (4 * word) + list_bytes loc_bytes d.Rawmaps.plus + list_bytes loc_bytes d.Rawmaps.minus

let gcpoint_bytes (g : Rawmaps.gcpoint) =
  (7 * word)
  + list_bytes loc_bytes g.Rawmaps.stack_ptrs
  + list_bytes (fun _ -> 0) g.Rawmaps.reg_ptrs
  + list_bytes deriv_bytes g.Rawmaps.derivs
  + list_bytes
      (fun (v : Rawmaps.variant) ->
        (3 * word) + loc_bytes v.Rawmaps.path_loc
        + list_bytes (fun (_, d) -> (3 * word) + deriv_bytes d) v.Rawmaps.cases)
      g.Rawmaps.variants

let entry_bytes (e : proc_entry) =
  let n = Array.length e.ce_points in
  (5 * word) (* entry + decoded_proc records *)
  + (word * Array.length e.ce_dp.Decode.dp_ground)
  + list_bytes (fun _ -> 0) e.ce_dp.Decode.dp_saves
  + (2 * word * n) (* the two arrays *)
  + Array.fold_left (fun a g -> a + gcpoint_bytes g) 0 e.ce_points

(* ------------------------------------------------------------------ *)
(* Fill and lookup                                                     *)
(* ------------------------------------------------------------------ *)

let materialize (c : t) fid : proc_entry =
  let ep = c.tables.Encode.procs.(fid) in
  let dp, gps = Decode.decode_proc c.tables.Encode.scheme c.tables.Encode.opts ep in
  (* Stream order is offset order: pc deltas are non-negative by
     construction (Encode.put_pc_delta rejects negatives), so the arrays
     are already sorted for binary search. *)
  let points = Array.of_list gps in
  let offsets = Array.map (fun (g : Rawmaps.gcpoint) -> g.Rawmaps.gp_offset) points in
  let e = { ce_dp = dp; ce_offsets = offsets; ce_points = points } in
  c.slots.(fid) <- Some e;
  c.resident_bytes <- c.resident_bytes + entry_bytes e;
  c.stream_bytes <- c.stream_bytes + Bytes.length ep.Encode.ep_stream;
  M.incr ~by:(Bytes.length ep.Encode.ep_stream) c_cache_bytes;
  e

(* Leftmost binary search, mirroring the linear scan's first-match rule. *)
let search (offsets : int array) rel : int option =
  let n = Array.length offsets in
  let rec go lo hi =
    (* answer, if any, is in [lo, hi) *)
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let v = offsets.(mid) in
      if v < rel then go (mid + 1) hi
      else if v > rel then go lo mid
      else if mid > lo && offsets.(mid - 1) = rel then go lo mid
      else Some mid
  in
  go 0 n

(** Memoizing equivalent of {!Decode.find}: same results, same
    {!Decode.Table_corrupt} behaviour on a miss, but each procedure's
    stream is decoded at most once per image. Falls through to the
    uncached scanner when the cache is disabled. *)
let find (c : t) ~fid ~code_offset : Decode.decoded_proc * Rawmaps.gcpoint =
  if not !enabled_flag then Decode.find c.tables ~fid ~code_offset
  else begin
    if fid < 0 || fid >= Array.length c.slots then
      raise
        (Decode.Table_corrupt
           {
             fid;
             offset = code_offset;
             pos = -1;
             reason =
               Printf.sprintf "procedure id %d out of range (program has %d)" fid
                 (Array.length c.slots);
           });
    let e =
      match c.slots.(fid) with
      | Some e ->
          M.incr c_hits;
          e
      | None ->
          M.incr c_misses;
          materialize c fid
    in
    M.incr c_finds;
    let rel = code_offset - c.tables.Encode.code_starts.(fid) in
    match search e.ce_offsets rel with
    | Some i -> (e.ce_dp, e.ce_points.(i))
    | None -> raise (Decode.gcpoint_missing ~fid ~code_offset)
  end
