(** Memoized pc→table decoding.

    δ-main deliberately trades decode time for table space (§5.2):
    {!Decode.find} re-scans a procedure's immutable table stream on every
    lookup. This cache decodes each procedure once, materializes its
    gc-points into an offset-sorted array, and answers lookups by binary
    search. Residency is per-image full (one slot per procedure, bounded
    by a small multiple of the encoded table bytes); the cache is
    runtime-switchable so the paper-faithful uncached numbers remain
    reproducible. Counters: [decode.cache_hits], [decode.cache_misses],
    [decode.cache_bytes]; [decode.finds]/[decode.bytes] keep their
    uncached meaning (a cache hit scans zero stream bytes). *)

type t

val create : Encode.program_tables -> t
(** An empty cache over the given tables. Nothing is decoded until the
    first lookup of each procedure. *)

val set_enabled : bool -> unit
(** Global switch (all caches). Disabled ⇒ {!find} behaves exactly like
    {!Decode.find}, including its byte accounting. Default: enabled. *)

val enabled : unit -> bool

val find : t -> fid:int -> code_offset:int -> Decode.decoded_proc * Rawmaps.gcpoint
(** Memoizing equivalent of {!Decode.find} — structurally identical
    results. @raise Decode.Table_corrupt if [code_offset] is not a
    gc-point of procedure [fid], [fid] is out of range, or the stream is
    malformed (same error either side of the cache switch). *)

val tables : t -> Encode.program_tables

val resident_procs : t -> int
(** Procedures currently materialized. *)

val resident_bytes : t -> int
(** Estimated bytes of the materialized (decoded) structures. *)

val stream_bytes : t -> int
(** Encoded stream bytes decoded into the cache so far (the one-time fill
    cost, also accumulated in the [decode.cache_bytes] counter). *)
