(** Decoding of gc tables at collection time. The collector maps a return
    address (code byte offset) to its gc-point by locating the enclosing
    procedure and scanning that procedure's table stream, accumulating the
    inter-gc-point distances — the paper's pc→table mapping (§5.2).

    Decoding is {e total}: every read is bounds-checked, every count,
    register number, location offset and pc distance is range-checked, and
    any malformed stream surfaces as {!Table_corrupt} carrying the
    procedure, the code offset being looked up, and the stream byte where
    decoding failed — never [Not_found], an [Invalid_argument] escape, an
    unbounded scan, or silently decoded garbage. *)

open Support

exception Table_corrupt of { fid : int; offset : int; pos : int; reason : string }

let corrupt ~fid ~offset ~pos fmt =
  Printf.ksprintf (fun reason -> raise (Table_corrupt { fid; offset; pos; reason })) fmt

(** The error {!find} (and the decode cache) raise when a looked-up code
    offset maps to no gc-point: a pc→table lookup that cannot be answered
    means either a corrupt table stream or a corrupt return address. *)
let gcpoint_missing ~fid ~code_offset =
  Table_corrupt
    {
      fid;
      offset = code_offset;
      pos = -1;
      reason = "code offset is not a gc-point of this procedure";
    }

(* Sanity ceiling for frame sizes, argument counts and location offsets:
   far above anything a real procedure produces, low enough that a decoded
   value can never index memory out of range undetected. *)
let max_magnitude = 1 lsl 22

type reader = {
  data : Bytes.t;
  mutable pos : int;
  packed : bool;
  previous : bool;
  r_fid : int;
  r_offset : int; (* code offset being looked up; -1 for whole-proc decodes *)
}

let make_reader ?(fid = -1) ?(offset = -1) ~packed ~previous data =
  { data; pos = 0; packed; previous; r_fid = fid; r_offset = offset }

let bad r fmt = corrupt ~fid:r.r_fid ~offset:r.r_offset ~pos:r.pos fmt

let need r n =
  if r.pos < 0 || r.pos + n > Bytes.length r.data then
    bad r "truncated stream: need %d byte(s), %d remain" n (Bytes.length r.data - r.pos)

let get_word r =
  need r 4;
  let b i = Char.code (Bytes.get r.data (r.pos + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  (* sign-extend from 32 bits *)
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let get_int r =
  if r.packed then begin
    match Varint.decode r.data r.pos with
    | v, pos ->
        r.pos <- pos;
        v
    | exception Invalid_argument msg -> bad r "%s" msg
  end
  else get_word r

(* Element counts drive [List.init] loops; an adversarial count must not
   produce an unbounded scan or a huge allocation. Every encoded element
   consumes at least one byte (packed) or one word (plain), so the bytes
   remaining in the stream bound any honest count. *)
let get_count r ~what =
  let v = get_int r in
  if v < 0 then bad r "negative %s count (%d)" what v;
  let min_elt_bytes = if r.packed then 1 else 4 in
  let remaining = Bytes.length r.data - r.pos in
  (* divide, don't multiply: an adversarial count near max_int must not
     overflow the comparison into acceptance *)
  if v > remaining / min_elt_bytes then
    bad r "%s count %d exceeds the %d byte(s) left in the stream" what v remaining;
  v

let get_descriptor r =
  let v =
    if r.packed then begin
      need r 1;
      let v = Char.code (Bytes.get r.data r.pos) in
      r.pos <- r.pos + 1;
      v
    end
    else get_word r
  in
  if v land lnot 0x7f <> 0 then bad r "descriptor has bits outside the defined 7 (0x%x)" v;
  let field shift = (v lsr shift) land 3 in
  List.iter
    (fun (name, shift) ->
      let f = field shift in
      if f = 3 then bad r "descriptor %s field has undefined state 3" name;
      if f = Encode.tbl_same && not r.previous then
        bad r "descriptor %s field says identical-to-previous but Previous is off" name)
    [
      ("stack", Encode.desc_stack_shift);
      ("register", Encode.desc_reg_shift);
      ("derivation", Encode.desc_deriv_shift);
    ];
  v

let get_pc_delta r =
  if r.packed then begin
    need r 2;
    let hi = Char.code (Bytes.get r.data r.pos) in
    let lo = Char.code (Bytes.get r.data (r.pos + 1)) in
    r.pos <- r.pos + 2;
    (hi lsl 8) lor lo
  end
  else begin
    let v = get_word r in
    if v < 0 then bad r "negative inter-gc-point distance (%d)" v;
    v
  end

let get_bitmap r ~width =
  if r.packed then begin
    let nbytes = (width + 7) / 8 in
    need r nbytes;
    let bits, pos = Bitset.of_bytes ~width r.data r.pos in
    (* Bits past [width] carry no meaning; a set one is corruption the
       paper's format cannot express, not harmless padding. *)
    for i = width to (nbytes * 8) - 1 do
      if Char.code (Bytes.get r.data (r.pos + (i / 8))) land (1 lsl (i mod 8)) <> 0 then
        bad r "delta bitmap sets bit %d beyond its %d-entry ground table" i width
    done;
    r.pos <- pos;
    bits
  end
  else begin
    let nwords = (width + 31) / 32 in
    let bits = Bitset.create width in
    for wd = 0 to nwords - 1 do
      let v = get_word r in
      for i = 0 to 31 do
        let idx = (32 * wd) + i in
        if idx < width then begin
          if v land (1 lsl i) <> 0 then Bitset.set bits idx
        end
        else if v land (1 lsl i) <> 0 then
          bad r "delta bitmap sets bit %d beyond its %d-entry ground table" idx width
      done
    done;
    bits
  end

let check_reg r reg ~what =
  if reg < 0 || reg >= Machine.Reg.nregs then
    bad r "%s names register %d (machine has %d)" what reg Machine.Reg.nregs

let get_loc r =
  let l = Loc.of_int (get_int r) in
  (match l with
  | Loc.Lreg reg -> check_reg r reg ~what:"location"
  | Loc.Lmem (_, off) ->
      if off < -max_magnitude || off > max_magnitude then
        bad r "location offset %d out of range" off);
  l

let get_deriv_entry r : Rawmaps.deriv_entry =
  let target = get_loc r in
  let np = get_count r ~what:"plus-base" in
  let plus = List.init np (fun _ -> get_loc r) in
  let nm = get_count r ~what:"minus-base" in
  let minus = List.init nm (fun _ -> get_loc r) in
  { Rawmaps.target; plus; minus }

let get_derivs r =
  let n = get_count r ~what:"derivation" in
  List.init n (fun _ -> get_deriv_entry r)

let get_variants r : Rawmaps.variant list =
  let n = get_count r ~what:"variant" in
  List.init n (fun _ ->
      let path_loc = get_loc r in
      let ncases = get_count r ~what:"variant case" in
      let cases =
        List.init ncases (fun _ ->
            let value = get_int r in
            let d = get_deriv_entry r in
            (value, d))
      in
      { Rawmaps.path_loc; cases })

let get_reg_list r =
  let mask = get_int r in
  if mask land lnot ((1 lsl Machine.Reg.nregs) - 1) <> 0 then
    bad r "register mask 0x%x names registers beyond r%d" mask (Machine.Reg.nregs - 1);
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc) in
  go (Machine.Reg.nregs - 1) []

(* ------------------------------------------------------------------ *)
(* Procedure streams                                                   *)
(* ------------------------------------------------------------------ *)

type decoded_proc = {
  dp_frame_size : int;
  dp_nargs : int;
  dp_saves : (int * int) list;
  dp_ground : Loc.t array; (* empty under Full_info *)
}

let decode_proc_header (scheme : Encode.scheme) r : decoded_proc * int =
  let frame_size = get_int r in
  if frame_size < 0 || frame_size > max_magnitude then
    bad r "frame size %d out of range" frame_size;
  let nargs = get_int r in
  if nargs < 0 || nargs > max_magnitude then bad r "argument count %d out of range" nargs;
  let nsaves = get_count r ~what:"register save" in
  let saves =
    List.init nsaves (fun _ ->
        let reg = get_int r in
        check_reg r reg ~what:"save entry";
        let off = get_int r in
        if off < -max_magnitude || off > max_magnitude then
          bad r "save slot offset %d out of range" off;
        (reg, off))
  in
  let ground =
    match scheme with
    | Encode.Delta_main ->
        let n = get_count r ~what:"ground-table" in
        Array.init n (fun _ -> get_loc r)
    | Encode.Full_info -> [||]
  in
  let ngc = get_count r ~what:"gc-point" in
  ({ dp_frame_size = frame_size; dp_nargs = nargs; dp_saves = saves; dp_ground = ground }, ngc)

(* Scan state while walking the gc-points of one procedure. *)
type scan_state = {
  mutable offset : int;
  mutable stack : Loc.t list;
  mutable regs : int list;
  mutable derivs : Rawmaps.deriv_entry list;
}

let decode_next_gcpoint ?(code_bytes = max_int) scheme r (dp : decoded_proc)
    (st : scan_state) : Rawmaps.gcpoint =
  let desc = get_descriptor r in
  let delta = get_pc_delta r in
  st.offset <- st.offset + delta;
  if st.offset > code_bytes then
    bad r "gc-point offset %d runs past the procedure's %d code bytes" st.offset code_bytes;
  let field shift = (desc lsr shift) land 3 in
  let stack =
    match field Encode.desc_stack_shift with
    | 0 -> []
    | 1 -> st.stack
    | _ -> (
        match scheme with
        | Encode.Delta_main ->
            let bits = get_bitmap r ~width:(Array.length dp.dp_ground) in
            Bitset.fold (fun i acc -> dp.dp_ground.(i) :: acc) bits [] |> List.rev
        | Encode.Full_info ->
            let n = get_count r ~what:"stack-pointer" in
            List.init n (fun _ -> get_loc r))
  in
  let regs =
    match field Encode.desc_reg_shift with
    | 0 -> []
    | 1 -> st.regs
    | _ -> get_reg_list r
  in
  let derivs =
    match field Encode.desc_deriv_shift with
    | 0 -> []
    | 1 -> st.derivs
    | _ -> get_derivs r
  in
  let variants =
    if desc land (1 lsl Encode.desc_variant_bit) <> 0 then get_variants r else []
  in
  st.stack <- stack;
  st.regs <- regs;
  st.derivs <- derivs;
  {
    Rawmaps.gp_index = -1;
    gp_offset = st.offset;
    stack_ptrs = stack;
    reg_ptrs = regs;
    derivs;
    variants;
  }

(* Decode a whole stream, returning the reader so callers can check how
   much was consumed. *)
let decode_proc_stream (scheme : Encode.scheme) (opts : Encode.options)
    (ep : Encode.encoded_proc) : decoded_proc * Rawmaps.gcpoint list * reader =
  let r =
    make_reader ~fid:ep.Encode.ep_fid ~packed:opts.Encode.packing
      ~previous:opts.Encode.previous ep.Encode.ep_stream
  in
  let dp, ngc = decode_proc_header scheme r in
  let st = { offset = 0; stack = []; regs = []; derivs = [] } in
  let gps =
    List.init ngc (fun _ ->
        decode_next_gcpoint ~code_bytes:ep.Encode.ep_code_bytes scheme r dp st)
  in
  (dp, gps, r)

(** Decode a whole procedure stream back into raw maps (used by tests for
    the encode/decode round-trip, by the decode cache, and by the
    full-table dump). *)
let decode_proc (scheme : Encode.scheme) (opts : Encode.options)
    (ep : Encode.encoded_proc) : decoded_proc * Rawmaps.gcpoint list =
  let dp, gps, _ = decode_proc_stream scheme opts ep in
  (dp, gps)

(* ------------------------------------------------------------------ *)
(* Return-address lookup                                               *)
(* ------------------------------------------------------------------ *)

(** [find t ~code_offset] locates the gc tables for the gc-point whose call
    instruction starts at absolute [code_offset]. Returns the procedure's
    decoded header (frame size, saves, ground) and the gc-point's tables.
    @raise Table_corrupt if [code_offset] is not a gc-point or the stream
    is malformed. *)
let c_finds = Telemetry.Metrics.counter "decode.finds"
let c_find_bytes = Telemetry.Metrics.counter "decode.bytes"

let find (t : Encode.program_tables) ~fid ~code_offset :
    decoded_proc * Rawmaps.gcpoint =
  if fid < 0 || fid >= Array.length t.Encode.procs then
    corrupt ~fid ~offset:code_offset ~pos:(-1) "procedure id %d out of range (program has %d)"
      fid (Array.length t.Encode.procs);
  let ep = t.Encode.procs.(fid) in
  let rel = code_offset - t.Encode.code_starts.(fid) in
  let r =
    make_reader ~fid ~offset:code_offset ~packed:t.Encode.opts.Encode.packing
      ~previous:t.Encode.opts.Encode.previous ep.Encode.ep_stream
  in
  let dp, ngc = decode_proc_header t.Encode.scheme r in
  let st = { offset = 0; stack = []; regs = []; derivs = [] } in
  let rec scan i =
    if i >= ngc then raise (gcpoint_missing ~fid ~code_offset)
    else
      let gp =
        decode_next_gcpoint ~code_bytes:ep.Encode.ep_code_bytes t.Encode.scheme r dp st
      in
      if gp.Rawmaps.gp_offset = rel then (dp, gp) else scan (i + 1)
  in
  let result = scan 0 in
  (* The paper's decode-work measure: bytes of table stream consumed to
     reach this gc-point (δ-main re-scans the procedure's stream). *)
  Telemetry.Metrics.incr c_finds;
  Telemetry.Metrics.incr ~by:r.pos c_find_bytes;
  result

(** Locate the procedure containing an absolute code byte offset. *)
let proc_of_offset (t : Encode.program_tables) ~code_offset : int =
  let n = Array.length t.Encode.code_starts in
  let rec bsearch lo hi =
    (* invariant: code_starts.(lo) <= code_offset; answer in [lo, hi) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.Encode.code_starts.(mid) <= code_offset then bsearch mid hi else bsearch lo mid
  in
  if n = 0 || code_offset < t.Encode.code_starts.(0) then
    corrupt ~fid:(-1) ~offset:code_offset ~pos:(-1)
      "code offset %d precedes every procedure" code_offset
  else bsearch 0 n

(* ------------------------------------------------------------------ *)
(* Whole-image validation                                              *)
(* ------------------------------------------------------------------ *)

let sorted_locs ls = List.sort Loc.compare ls
let sorted_regs rs = List.sort compare rs

(* Compare a decoded gc-point against the compiler's raw maps, modulo the
   orderings serialization is allowed to lose: δ-main re-lists stack
   pointers in ground-table order and register masks sort ascending, but
   derivation order is semantic (the update relies on it) and must match. *)
let same_gcpoint (a : Rawmaps.gcpoint) (b : Rawmaps.gcpoint) =
  a.Rawmaps.gp_offset = b.Rawmaps.gp_offset
  && sorted_locs a.Rawmaps.stack_ptrs = sorted_locs b.Rawmaps.stack_ptrs
  && sorted_regs a.Rawmaps.reg_ptrs = sorted_regs b.Rawmaps.reg_ptrs
  && a.Rawmaps.derivs = b.Rawmaps.derivs
  && a.Rawmaps.variants = b.Rawmaps.variants

(** Decode one procedure's stream end to end and check structural health:
    the whole stream must be consumed (no trailing bytes). When [against]
    supplies the compiler's raw maps, the decoded tables must also agree
    with them entry for entry — a redundancy check that catches any
    corruption with a semantic effect, not just format violations.
    @raise Table_corrupt on the first failure. *)
let validate_proc ?against (scheme : Encode.scheme) (opts : Encode.options)
    (ep : Encode.encoded_proc) : unit =
  let fid = ep.Encode.ep_fid in
  let dp, gps, r = decode_proc_stream scheme opts ep in
  if r.pos <> Bytes.length ep.Encode.ep_stream then
    corrupt ~fid ~offset:(-1) ~pos:r.pos "%d trailing byte(s) after the last gc-point"
      (Bytes.length ep.Encode.ep_stream - r.pos);
  if List.length gps <> ep.Encode.ep_ngcpoints then
    corrupt ~fid ~offset:(-1) ~pos:r.pos "stream decodes %d gc-points, metadata says %d"
      (List.length gps) ep.Encode.ep_ngcpoints;
  match against with
  | None -> ()
  | Some (pm : Rawmaps.proc_maps) ->
      if dp.dp_frame_size <> pm.Rawmaps.pm_frame_size then
        corrupt ~fid ~offset:(-1) ~pos:(-1) "frame size decodes to %d, compiler emitted %d"
          dp.dp_frame_size pm.Rawmaps.pm_frame_size;
      if dp.dp_nargs <> pm.Rawmaps.pm_nargs then
        corrupt ~fid ~offset:(-1) ~pos:(-1) "argument count decodes to %d, compiler emitted %d"
          dp.dp_nargs pm.Rawmaps.pm_nargs;
      if dp.dp_saves <> pm.Rawmaps.pm_saves then
        corrupt ~fid ~offset:(-1) ~pos:(-1) "register save list disagrees with the compiler's";
      if List.length gps <> List.length pm.Rawmaps.pm_gcpoints then
        corrupt ~fid ~offset:(-1) ~pos:(-1) "stream decodes %d gc-points, compiler emitted %d"
          (List.length gps)
          (List.length pm.Rawmaps.pm_gcpoints);
      List.iteri
        (fun i (got, want) ->
          if not (same_gcpoint got want) then
            corrupt ~fid ~offset:want.Rawmaps.gp_offset ~pos:(-1)
              "gc-point %d decodes differently from the compiler's tables" i)
        (List.combine gps pm.Rawmaps.pm_gcpoints)

(** Validate every procedure's stream, once, at image-load time. With
    [against] (the image's raw maps) this is a full redundancy check of
    the encoded tables; without it, a structural (format-level) one. *)
let validate_tables ?against (t : Encode.program_tables) : unit =
  if Array.length t.Encode.code_starts <> Array.length t.Encode.procs then
    corrupt ~fid:(-1) ~offset:(-1) ~pos:(-1)
      "program tables list %d procedures but %d code starts"
      (Array.length t.Encode.procs)
      (Array.length t.Encode.code_starts);
  Array.iteri
    (fun fid ep ->
      let against = Option.map (fun pms -> pms.(fid)) against in
      validate_proc ?against t.Encode.scheme t.Encode.opts ep)
    t.Encode.procs
