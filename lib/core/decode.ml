(** Decoding of gc tables at collection time. The collector maps a return
    address (code byte offset) to its gc-point by locating the enclosing
    procedure and scanning that procedure's table stream, accumulating the
    inter-gc-point distances — the paper's pc→table mapping (§5.2). *)

open Support

type reader = { data : Bytes.t; mutable pos : int; packed : bool }

let make_reader ~packed data = { data; pos = 0; packed }

let get_word r =
  let b i = Char.code (Bytes.get r.data (r.pos + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  r.pos <- r.pos + 4;
  (* sign-extend from 32 bits *)
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let get_int r =
  if r.packed then begin
    let v, pos = Varint.decode r.data r.pos in
    r.pos <- pos;
    v
  end
  else get_word r

let get_descriptor r =
  if r.packed then begin
    let v = Char.code (Bytes.get r.data r.pos) in
    r.pos <- r.pos + 1;
    v
  end
  else get_word r

let get_pc_delta r =
  if r.packed then begin
    let hi = Char.code (Bytes.get r.data r.pos) in
    let lo = Char.code (Bytes.get r.data (r.pos + 1)) in
    r.pos <- r.pos + 2;
    (hi lsl 8) lor lo
  end
  else get_word r

let get_bitmap r ~width =
  if r.packed then begin
    let bits, pos = Bitset.of_bytes ~width r.data r.pos in
    r.pos <- pos;
    bits
  end
  else begin
    let nwords = (width + 31) / 32 in
    let bits = Bitset.create width in
    for wd = 0 to nwords - 1 do
      let v = get_word r in
      for i = 0 to 31 do
        let idx = (32 * wd) + i in
        if idx < width && v land (1 lsl i) <> 0 then Bitset.set bits idx
      done
    done;
    bits
  end

let get_loc r = Loc.of_int (get_int r)

let get_deriv_entry r : Rawmaps.deriv_entry =
  let target = get_loc r in
  let np = get_int r in
  let plus = List.init np (fun _ -> get_loc r) in
  let nm = get_int r in
  let minus = List.init nm (fun _ -> get_loc r) in
  { Rawmaps.target; plus; minus }

let get_derivs r =
  let n = get_int r in
  List.init n (fun _ -> get_deriv_entry r)

let get_variants r : Rawmaps.variant list =
  let n = get_int r in
  List.init n (fun _ ->
      let path_loc = get_loc r in
      let ncases = get_int r in
      let cases =
        List.init ncases (fun _ ->
            let value = get_int r in
            let d = get_deriv_entry r in
            (value, d))
      in
      { Rawmaps.path_loc; cases })

let get_reg_list r =
  let mask = get_int r in
  (* The mask can only name real machine registers, so scanning past
     [Reg.nregs - 1] (bit 13) is pure waste on a per-gc-point hot path. *)
  let rec go i acc = if i < 0 then acc else go (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc) in
  go (Machine.Reg.nregs - 1) []

(* ------------------------------------------------------------------ *)
(* Procedure streams                                                   *)
(* ------------------------------------------------------------------ *)

type decoded_proc = {
  dp_frame_size : int;
  dp_nargs : int;
  dp_saves : (int * int) list;
  dp_ground : Loc.t array; (* empty under Full_info *)
}

let decode_proc_header (scheme : Encode.scheme) r : decoded_proc * int =
  let frame_size = get_int r in
  let nargs = get_int r in
  let nsaves = get_int r in
  let saves =
    List.init nsaves (fun _ ->
        let reg = get_int r in
        let off = get_int r in
        (reg, off))
  in
  let ground =
    match scheme with
    | Encode.Delta_main ->
        let n = get_int r in
        Array.init n (fun _ -> get_loc r)
    | Encode.Full_info -> [||]
  in
  let ngc = get_int r in
  ({ dp_frame_size = frame_size; dp_nargs = nargs; dp_saves = saves; dp_ground = ground }, ngc)

(* Scan state while walking the gc-points of one procedure. *)
type scan_state = {
  mutable offset : int;
  mutable stack : Loc.t list;
  mutable regs : int list;
  mutable derivs : Rawmaps.deriv_entry list;
}

let decode_next_gcpoint scheme r (dp : decoded_proc) (st : scan_state) : Rawmaps.gcpoint =
  let desc = get_descriptor r in
  let delta = get_pc_delta r in
  st.offset <- st.offset + delta;
  let field shift = (desc lsr shift) land 3 in
  let stack =
    match field Encode.desc_stack_shift with
    | 0 -> []
    | 1 -> st.stack
    | _ -> (
        match scheme with
        | Encode.Delta_main ->
            let bits = get_bitmap r ~width:(Array.length dp.dp_ground) in
            Bitset.fold (fun i acc -> dp.dp_ground.(i) :: acc) bits [] |> List.rev
        | Encode.Full_info ->
            let n = get_int r in
            List.init n (fun _ -> get_loc r))
  in
  let regs =
    match field Encode.desc_reg_shift with
    | 0 -> []
    | 1 -> st.regs
    | _ -> get_reg_list r
  in
  let derivs =
    match field Encode.desc_deriv_shift with
    | 0 -> []
    | 1 -> st.derivs
    | _ -> get_derivs r
  in
  let variants =
    if desc land (1 lsl Encode.desc_variant_bit) <> 0 then get_variants r else []
  in
  st.stack <- stack;
  st.regs <- regs;
  st.derivs <- derivs;
  {
    Rawmaps.gp_index = -1;
    gp_offset = st.offset;
    stack_ptrs = stack;
    reg_ptrs = regs;
    derivs;
    variants;
  }

(** Decode a whole procedure stream back into raw maps (used by tests for
    the encode/decode round-trip, and by the full-table dump). *)
let decode_proc (scheme : Encode.scheme) (opts : Encode.options)
    (ep : Encode.encoded_proc) : decoded_proc * Rawmaps.gcpoint list =
  let r = make_reader ~packed:opts.Encode.packing ep.Encode.ep_stream in
  let dp, ngc = decode_proc_header scheme r in
  let st = { offset = 0; stack = []; regs = []; derivs = [] } in
  let gps = List.init ngc (fun _ -> decode_next_gcpoint scheme r dp st) in
  (dp, gps)

(* ------------------------------------------------------------------ *)
(* Return-address lookup                                               *)
(* ------------------------------------------------------------------ *)

(** [find t ~code_offset] locates the gc tables for the gc-point whose call
    instruction starts at absolute [code_offset]. Returns the procedure's
    decoded header (frame size, saves, ground) and the gc-point's tables.
    @raise Not_found if [code_offset] is not a gc-point. *)
let c_finds = Telemetry.Metrics.counter "decode.finds"
let c_find_bytes = Telemetry.Metrics.counter "decode.bytes"

let find (t : Encode.program_tables) ~fid ~code_offset :
    decoded_proc * Rawmaps.gcpoint =
  let ep = t.Encode.procs.(fid) in
  let rel = code_offset - t.Encode.code_starts.(fid) in
  let r = make_reader ~packed:t.Encode.opts.Encode.packing ep.Encode.ep_stream in
  let dp, ngc = decode_proc_header t.Encode.scheme r in
  let st = { offset = 0; stack = []; regs = []; derivs = [] } in
  let rec scan i =
    if i >= ngc then raise Not_found
    else
      let gp = decode_next_gcpoint t.Encode.scheme r dp st in
      if gp.Rawmaps.gp_offset = rel then (dp, gp) else scan (i + 1)
  in
  let result = scan 0 in
  (* The paper's decode-work measure: bytes of table stream consumed to
     reach this gc-point (δ-main re-scans the procedure's stream). *)
  Telemetry.Metrics.incr c_finds;
  Telemetry.Metrics.incr ~by:r.pos c_find_bytes;
  result

(** Locate the procedure containing an absolute code byte offset. *)
let proc_of_offset (t : Encode.program_tables) ~code_offset : int =
  let n = Array.length t.Encode.code_starts in
  let rec bsearch lo hi =
    (* invariant: code_starts.(lo) <= code_offset; answer in [lo, hi) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if t.Encode.code_starts.(mid) <= code_offset then bsearch mid hi else bsearch lo mid
  in
  if n = 0 || code_offset < t.Encode.code_starts.(0) then raise Not_found
  else bsearch 0 n
