(** Decoding of gc tables at collection time.

    The collector maps a return address (a code byte offset) to its
    gc-point tables by locating the enclosing procedure
    ({!proc_of_offset}) and scanning that procedure's table stream,
    accumulating the inter-gc-point distances — the paper's pc→table
    mapping (§5.2). "Identical to previous" descriptors are resolved
    during the scan.

    Decoding is {e total}: every read is bounds-checked, every count,
    register number, location offset and pc distance is range-checked,
    and any malformed stream surfaces as {!Table_corrupt} — never
    [Not_found], an unbounded scan, or silently decoded garbage. *)

exception Table_corrupt of { fid : int; offset : int; pos : int; reason : string }
(** A table stream failed to decode, or a pc→table lookup could not be
    answered. [fid] is the procedure (-1 if unknown), [offset] the code
    offset being looked up (-1 for whole-proc decodes), [pos] the stream
    byte position where decoding failed (-1 when not byte-specific). *)

val gcpoint_missing : fid:int -> code_offset:int -> exn
(** The {!Table_corrupt} raised when a looked-up code offset maps to no
    gc-point of its procedure (shared with the decode cache so both
    paths report misses identically). *)

type decoded_proc = {
  dp_frame_size : int; (* words below the saved-FP slot *)
  dp_nargs : int;
  dp_saves : (int * int) list; (* (callee-saved register, FP-relative slot) *)
  dp_ground : Loc.t array; (* empty under Full_info *)
}

val decode_proc :
  Encode.scheme ->
  Encode.options ->
  Encode.encoded_proc ->
  decoded_proc * Rawmaps.gcpoint list
(** Decode a whole procedure stream back into raw maps. Decoded gc-points
    carry [gp_index = -1] (indices are not serialized) and, under δ-main,
    their stack pointers in ground-table order.
    @raise Table_corrupt on any malformed stream. *)

val find :
  Encode.program_tables -> fid:int -> code_offset:int -> decoded_proc * Rawmaps.gcpoint
(** [find t ~fid ~code_offset] locates the tables for the gc-point whose
    call instruction starts at absolute byte [code_offset] inside procedure
    [fid]. This is the collector's hot path and is deliberately a linear
    scan of the procedure's stream — the decode cost the paper measures.
    @raise Table_corrupt if the offset is not a gc-point of that procedure
    or the stream is malformed. *)

val proc_of_offset : Encode.program_tables -> code_offset:int -> int
(** Procedure containing an absolute code byte offset (binary search).
    @raise Table_corrupt for offsets before the first procedure. *)

val validate_proc :
  ?against:Rawmaps.proc_maps ->
  Encode.scheme ->
  Encode.options ->
  Encode.encoded_proc ->
  unit
(** Decode one procedure's stream end to end and check structural health:
    every byte must decode and be consumed (no trailing garbage), and the
    gc-point count must match the stream's metadata. With [against] (the
    compiler's raw maps) the decoded tables must also agree entry for
    entry — a redundancy check that catches corruption with a purely
    semantic effect, not just format violations.
    @raise Table_corrupt on the first failure. *)

val validate_tables : ?against:Rawmaps.proc_maps array -> Encode.program_tables -> unit
(** {!validate_proc} over every procedure of an image, run once at load
    time so the collector never meets a stream that cannot decode.
    @raise Table_corrupt on the first failure. *)
