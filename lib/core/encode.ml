(** Serialization of gc tables, reproducing the paper's §5 design space:

    - {e organization}: [Delta_main] (per-procedure ground table of all stack
      pointer slots + per-gc-point liveness bitmaps — the paper's δ-main) or
      [Full_info] (complete stack-pointer list at every gc-point);
    - {e Packing}: the byte-level codec of Figs. 3–4 (continuation-bit
      varints) versus plain 32-bit words;
    - {e Previous}: a per-gc-point descriptor marks tables that are empty or
      identical to the table at the preceding gc-point, which are then
      omitted.

    All four combinations produce real byte streams that {!Decode} can read,
    so both the sizes (Table 2) and the decode cost (§6.3) are measurable. *)

open Support

type scheme = Delta_main | Full_info
type options = { packing : bool; previous : bool }

let pp_config fmt (scheme, { packing; previous }) =
  Format.fprintf fmt "%s%s%s"
    (match scheme with Delta_main -> "delta-main" | Full_info -> "full-info")
    (if previous then "+previous" else "")
    (if packing then "+packing" else "")

(* Descriptor bit fields (one descriptor per gc-point, paper §5.1-5.2). *)
let tbl_empty = 0
let tbl_same = 1
let tbl_present = 2
let desc_stack_shift = 0
let desc_reg_shift = 2
let desc_deriv_shift = 4
let desc_variant_bit = 6

(* ------------------------------------------------------------------ *)
(* Writers: packed bytes vs. plain 32-bit words                        *)
(* ------------------------------------------------------------------ *)

type writer = { buf : Buffer.t; packed : bool }

let make_writer ~packed = { buf = Buffer.create 256; packed }

(* A 32-bit word, big-endian (plain codec building block). *)
let put_word w v =
  Buffer.add_char w.buf (Char.chr ((v asr 24) land 0xff));
  Buffer.add_char w.buf (Char.chr ((v asr 16) land 0xff));
  Buffer.add_char w.buf (Char.chr ((v asr 8) land 0xff));
  Buffer.add_char w.buf (Char.chr (v land 0xff))

(* General integer: packed varint or one plain word. *)
let put_int w v = if w.packed then Varint.encode w.buf v else put_word w v

(* The per-gc-point descriptor: a single byte when packing (paper: "this
   information packs into 1 byte per gc-point"), else a word. *)
let put_descriptor w v = if w.packed then Buffer.add_char w.buf (Char.chr v) else put_word w v

(* pc distance to the previous gc-point: the paper's compiler assumes two
   bytes; plain uses a full word for the program counter entry. *)
let put_pc_delta w v =
  if w.packed then begin
    if v < 0 || v > 0xffff then invalid_arg "Encode.put_pc_delta: does not fit in 2 bytes";
    Buffer.add_char w.buf (Char.chr ((v asr 8) land 0xff));
    Buffer.add_char w.buf (Char.chr (v land 0xff))
  end
  else put_word w v

(* Delta bitmap over [width] ground entries: packed = ceil(width/8) bytes;
   plain = ceil(width/32) words. *)
let put_bitmap w (bits : Bitset.t) =
  let width = Bitset.length bits in
  let bytes = Bitset.to_bytes bits in
  if w.packed then Buffer.add_bytes w.buf bytes
  else begin
    let nwords = (width + 31) / 32 in
    let get i = if i < Bytes.length bytes then Char.code (Bytes.get bytes i) else 0 in
    for wd = 0 to nwords - 1 do
      let v =
        get (4 * wd)
        lor (get ((4 * wd) + 1) lsl 8)
        lor (get ((4 * wd) + 2) lsl 16)
        lor (get ((4 * wd) + 3) lsl 24)
      in
      put_word w v
    done
  end

(* ------------------------------------------------------------------ *)
(* Table payload encoding                                              *)
(* ------------------------------------------------------------------ *)

let put_loc w (l : Loc.t) = put_int w (Loc.to_int l)

let put_deriv_entry w (d : Rawmaps.deriv_entry) =
  put_loc w d.Rawmaps.target;
  put_int w (List.length d.Rawmaps.plus);
  List.iter (put_loc w) d.Rawmaps.plus;
  put_int w (List.length d.Rawmaps.minus);
  List.iter (put_loc w) d.Rawmaps.minus

let put_derivs w (ds : Rawmaps.deriv_entry list) =
  put_int w (List.length ds);
  List.iter (put_deriv_entry w) ds

let put_variants w (vs : Rawmaps.variant list) =
  put_int w (List.length vs);
  List.iter
    (fun (v : Rawmaps.variant) ->
      put_loc w v.Rawmaps.path_loc;
      put_int w (List.length v.Rawmaps.cases);
      List.iter
        (fun (value, d) ->
          put_int w value;
          put_deriv_entry w d)
        v.Rawmaps.cases)
    vs

let put_reg_mask w (regs : int list) =
  let mask = List.fold_left (fun m r -> m lor (1 lsl r)) 0 regs in
  put_int w mask

(* ------------------------------------------------------------------ *)
(* Ground table construction (δ-main)                                  *)
(* ------------------------------------------------------------------ *)

(** All distinct stack locations holding pointers at some gc-point of the
    procedure, sorted. This is the paper's per-procedure "main table". *)
let ground_table (pm : Rawmaps.proc_maps) : Loc.t array =
  let module S = Set.Make (struct
    type t = Loc.t

    let compare = Loc.compare
  end) in
  let s =
    List.fold_left
      (fun acc (g : Rawmaps.gcpoint) ->
        List.fold_left (fun acc l -> S.add l acc) acc g.Rawmaps.stack_ptrs)
      S.empty pm.Rawmaps.pm_gcpoints
  in
  Array.of_list (S.elements s)

let delta_bitmap (ground : Loc.t array) (ptrs : Loc.t list) : Bitset.t =
  let bits = Bitset.create (Array.length ground) in
  List.iter
    (fun l ->
      let found = ref false in
      Array.iteri (fun i g -> if Loc.equal g l then ( Bitset.set bits i; found := true )) ground;
      if not !found then invalid_arg "Encode.delta_bitmap: pointer not in ground table")
    ptrs;
  bits

(* ------------------------------------------------------------------ *)
(* Per-procedure encoding                                              *)
(* ------------------------------------------------------------------ *)

type encoded_proc = {
  ep_fid : int;
  ep_stream : Bytes.t;
  ep_code_bytes : int;
  ep_ngcpoints : int;
}

let encode_proc (scheme : scheme) (opts : options) (pm : Rawmaps.proc_maps) : encoded_proc =
  let w = make_writer ~packed:opts.packing in
  put_int w pm.Rawmaps.pm_frame_size;
  put_int w pm.Rawmaps.pm_nargs;
  put_int w (List.length pm.Rawmaps.pm_saves);
  List.iter
    (fun (reg, off) ->
      put_int w reg;
      put_int w off)
    pm.Rawmaps.pm_saves;
  let ground =
    match scheme with Delta_main -> ground_table pm | Full_info -> [||]
  in
  (match scheme with
  | Delta_main ->
      put_int w (Array.length ground);
      Array.iter (put_loc w) ground
  | Full_info -> ());
  put_int w (List.length pm.Rawmaps.pm_gcpoints);
  let prev_stack : Loc.t list option ref = ref None in
  let prev_regs : int list option ref = ref None in
  let prev_derivs : Rawmaps.deriv_entry list option ref = ref None in
  let prev_offset = ref 0 in
  List.iter
    (fun (g : Rawmaps.gcpoint) ->
      let state current prev =
        if current = [] then tbl_empty
        else if opts.previous && !prev = Some current then tbl_same
        else tbl_present
      in
      let st_stack = state g.Rawmaps.stack_ptrs prev_stack in
      let st_regs = state g.Rawmaps.reg_ptrs prev_regs in
      let st_derivs = state g.Rawmaps.derivs prev_derivs in
      let desc =
        (st_stack lsl desc_stack_shift)
        lor (st_regs lsl desc_reg_shift)
        lor (st_derivs lsl desc_deriv_shift)
        lor (if g.Rawmaps.variants <> [] then 1 lsl desc_variant_bit else 0)
      in
      put_descriptor w desc;
      put_pc_delta w (g.Rawmaps.gp_offset - !prev_offset);
      prev_offset := g.Rawmaps.gp_offset;
      if st_stack = tbl_present then begin
        match scheme with
        | Delta_main -> put_bitmap w (delta_bitmap ground g.Rawmaps.stack_ptrs)
        | Full_info ->
            put_int w (List.length g.Rawmaps.stack_ptrs);
            List.iter (put_loc w) g.Rawmaps.stack_ptrs
      end;
      if st_regs = tbl_present then put_reg_mask w g.Rawmaps.reg_ptrs;
      if st_derivs = tbl_present then put_derivs w g.Rawmaps.derivs;
      if g.Rawmaps.variants <> [] then put_variants w g.Rawmaps.variants;
      prev_stack := Some g.Rawmaps.stack_ptrs;
      prev_regs := Some g.Rawmaps.reg_ptrs;
      prev_derivs := Some g.Rawmaps.derivs)
    pm.Rawmaps.pm_gcpoints;
  {
    ep_fid = pm.Rawmaps.pm_fid;
    ep_stream = Buffer.to_bytes w.buf;
    ep_code_bytes = pm.Rawmaps.pm_code_bytes;
    ep_ngcpoints = List.length pm.Rawmaps.pm_gcpoints;
  }

(* ------------------------------------------------------------------ *)
(* Program-level tables                                                *)
(* ------------------------------------------------------------------ *)

type program_tables = {
  scheme : scheme;
  opts : options;
  procs : encoded_proc array; (* indexed by fid *)
  code_starts : int array; (* absolute code byte offset of each proc *)
}

let encode_program scheme opts (pms : Rawmaps.proc_maps array) (code_starts : int array) =
  let t =
    Telemetry.Timer.time ~cat:"compile" "encode.tables" (fun () ->
        {
          scheme;
          opts;
          procs = Array.map (encode_proc scheme opts) pms;
          code_starts;
        })
  in
  Telemetry.Metrics.add "encode.table_bytes"
    (Array.fold_left (fun acc ep -> acc + Bytes.length ep.ep_stream) 0 t.procs);
  t

let total_table_bytes t =
  Array.fold_left (fun acc ep -> acc + Bytes.length ep.ep_stream) 0 t.procs
