(** Ambiguous derivations via hoisted base selection (paper §4, "Ambiguous
    Derivations"), cured with {e path variables}.

    Recognized shape: a loop body contains a two-armed diamond on a
    loop-invariant condition, whose arms are instruction-for-instruction
    identical up to temp naming {e except} that each arm loads a different
    pointer slot as the base of an element address:

    {v
      FOR i := … DO
        IF inv THEN … P[i] … ELSE … Q[i] … END
      END
    v}

    The transformation hoists the selection out of the loop — evaluating the
    condition once in the preheader, computing the selected array's virtual
    element origin [sel := base + d − lo·esz] there — and merges the arms
    into one copy indexing off [sel]. Because [sel]'s derivation now depends
    on which path executed, a {e path variable} is stored alongside it
    (1 or 2), and [sel]'s slot is marked [Sambig]: the collector picks the
    derivation table variant by reading the path variable at run time. The
    alternative (path splitting, Fig. 2) duplicates the loop instead; we
    implement the path-variable scheme like the paper. *)

module Ir = Mir.Ir
module Iset = Support.Ints.Iset

(* Structural equality of two instructions under a temp bijection built on
   the fly. Returns false on mismatch; accumulates pairs in [bij]. *)
let match_operand bij (a : Ir.operand) (b : Ir.operand) =
  match (a, b) with
  | Ir.Oimm x, Ir.Oimm y -> x = y
  | Ir.Otemp x, Ir.Otemp y -> (
      match Hashtbl.find_opt bij x with
      | Some y' -> y = y'
      | None ->
          Hashtbl.replace bij x y;
          true)
  | _ -> false

let match_def bij a b =
  match Hashtbl.find_opt bij a with
  | Some b' -> b = b'
  | None ->
      Hashtbl.replace bij a b;
      true

(* Compare two instructions; [`Equal] under the bijection, or
   [`Differing_load (ta, va, tb, vb)] for the single permitted difference:
   loads of different slots. *)
let match_instr bij (ia : Ir.instr) (ib : Ir.instr) =
  match (ia, ib) with
  | Ir.Ld_local (ta, va, 0), Ir.Ld_local (tb, vb, 0) when va <> vb ->
      if match_def bij ta tb then `Differing_load (ta, va, tb, vb) else `Mismatch
  | Ir.Mov (da, sa), Ir.Mov (db, sb) ->
      if match_operand bij sa sb && match_def bij da db then `Equal else `Mismatch
  | Ir.Bin (opa, da, xa, ya), Ir.Bin (opb, db, xb, yb) ->
      if
        opa = opb && match_operand bij xa xb && match_operand bij ya yb
        && match_def bij da db
      then `Equal
      else `Mismatch
  | Ir.Neg (da, sa), Ir.Neg (db, sb) | Ir.Abs (da, sa), Ir.Abs (db, sb) ->
      if match_operand bij sa sb && match_def bij da db then `Equal else `Mismatch
  | Ir.Setrel (ra, da, xa, ya), Ir.Setrel (rb, db, xb, yb) ->
      if
        ra = rb && match_operand bij xa xb && match_operand bij ya yb
        && match_def bij da db
      then `Equal
      else `Mismatch
  | Ir.Ld_local (da, la, oa), Ir.Ld_local (db, lb, ob) ->
      if la = lb && oa = ob && match_def bij da db then `Equal else `Mismatch
  | Ir.St_local (la, oa, sa), Ir.St_local (lb, ob, sb) ->
      if la = lb && oa = ob && match_operand bij sa sb then `Equal else `Mismatch
  | Ir.Ld_global (da, ga, oa), Ir.Ld_global (db, gb, ob) ->
      if ga = gb && oa = ob && match_def bij da db then `Equal else `Mismatch
  | Ir.St_global (ga, oa, sa), Ir.St_global (gb, ob, sb) ->
      if ga = gb && oa = ob && match_operand bij sa sb then `Equal else `Mismatch
  | Ir.Load (da, aa, oa), Ir.Load (db, ab, ob) ->
      if oa = ob && match_operand bij aa ab && match_def bij da db then `Equal
      else `Mismatch
  | Ir.Store (aa, oa, va), Ir.Store (ab, ob, vb)
  | Ir.Store_nb (aa, oa, va), Ir.Store_nb (ab, ob, vb) ->
      if oa = ob && match_operand bij aa ab && match_operand bij va vb then `Equal
      else `Mismatch
  | _ -> `Mismatch

type candidate = {
  cond_block : int;
  arm_a : int;
  arm_b : int;
  join : int;
  va : int; (* pointer slot selected on path 1 *)
  vb : int; (* pointer slot selected on path 2 *)
  ta : int; (* arm A's base temp (bijection representative) *)
}

let find_candidate (f : Ir.func) (l : Mir.Cfg.loop) : candidate option =
  let body = l.Mir.Cfg.body in
  let found = ref None in
  Iset.iter
    (fun cb ->
      if !found = None then
        match f.Ir.blocks.(cb).Ir.term with
        | Ir.Cjmp (_, _, _, a, b)
          when a <> b && Iset.mem a body && Iset.mem b body -> (
            let ba = f.Ir.blocks.(a) and bb = f.Ir.blocks.(b) in
            match (ba.Ir.term, bb.Ir.term) with
            | Ir.Jmp ja, Ir.Jmp jb
              when ja = jb
                   && List.length ba.Ir.instrs = List.length bb.Ir.instrs -> (
                let bij = Hashtbl.create 16 in
                let diff = ref None in
                let ok =
                  List.for_all2
                    (fun ia ib ->
                      match match_instr bij ia ib with
                      | `Equal -> true
                      | `Mismatch -> false
                      | `Differing_load (ta, va, tb, vb) -> (
                          ignore tb;
                          match !diff with
                          | None ->
                              diff := Some (ta, va, vb);
                              true
                          | Some _ -> false (* at most one difference *)))
                    ba.Ir.instrs bb.Ir.instrs
                in
                match (ok, !diff) with
                | true, Some (ta, va, vb) ->
                    (* Both slots must be stable tidy-pointer slots. *)
                    let slot_ok v =
                      let info = f.Ir.locals.(v) in
                      info.Ir.l_slot = Ir.Sptr && not info.Ir.l_addr_taken
                    in
                    if slot_ok va && slot_ok vb then
                      found := Some { cond_block = cb; arm_a = a; arm_b = b; join = ja; va; vb; ta }
                | _ -> ())
            | _ -> ())
        | _ -> ())
    body;
  !found

(* The condition instructions at the tail of the cond block that feed the
   Cjmp: we replicate them in the preheader. They must be invariant:
   loads of slots unstored in the loop, and pure arithmetic. *)
let extract_condition (f : Ir.func) (l : Mir.Cfg.loop) (cb : int) :
    (Ir.instr list * Ir.relop * Ir.operand * Ir.operand) option =
  let stored = Hashtbl.create 8 in
  Iset.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.St_local (lo, _, _) -> Hashtbl.replace stored lo ()
          | _ -> ())
        f.Ir.blocks.(b).Ir.instrs)
    l.Mir.Cfg.body;
  match f.Ir.blocks.(cb).Ir.term with
  | Ir.Cjmp (r, x, y, _, _) ->
      (* Walk backward collecting the defs of the condition operands. *)
      let instrs = Array.of_list f.Ir.blocks.(cb).Ir.instrs in
      let wanted = Hashtbl.create 4 in
      let note (o : Ir.operand) =
        match o with Ir.Otemp t -> Hashtbl.replace wanted t () | Ir.Oimm _ -> ()
      in
      note x;
      note y;
      let picked = ref [] in
      let ok = ref true in
      for i = Array.length instrs - 1 downto 0 do
        match Ir.instr_def instrs.(i) with
        | Some d when Hashtbl.mem wanted d ->
            Hashtbl.remove wanted d;
            (match instrs.(i) with
            | Ir.Ld_local (_, lo, _)
              when (not (Hashtbl.mem stored lo))
                   && not f.Ir.locals.(lo).Ir.l_addr_taken ->
                List.iter note (Ir.instr_uses instrs.(i))
            | Ir.Mov _ | Ir.Bin _ | Ir.Neg _ | Ir.Abs _ | Ir.Setrel _ ->
                List.iter note (Ir.instr_uses instrs.(i))
            | _ -> ok := false);
            picked := instrs.(i) :: !picked
        | _ -> ()
      done;
      if !ok && Hashtbl.length wanted = 0 then Some (!picked, r, x, y) else None
  | _ -> None

(* Recompute derived kinds of arm instructions after the base substitution:
   walk in order, assigning each def a kind from its operands. *)
let refresh_kinds (f : Ir.func) (instrs : Ir.instr list) =
  let kind_of (o : Ir.operand) =
    match o with Ir.Oimm _ -> Ir.Kscalar | Ir.Otemp t -> Ir.temp_kind f t
  in
  let deriv_of (o : Ir.operand) =
    match o with
    | Ir.Oimm _ -> Mir.Deriv.empty
    | Ir.Otemp t -> (
        match Ir.temp_kind f t with
        | Ir.Kptr | Ir.Kderived _ -> Mir.Deriv.of_base (Mir.Deriv.Btemp t)
        | Ir.Kscalar | Ir.Kstack -> Mir.Deriv.empty)
  in
  List.iter
    (fun i ->
      match i with
      | Ir.Bin (op, d, a, b) when op = Ir.Add || op = Ir.Sub -> (
          match (kind_of a, kind_of b) with
          | (Ir.Kptr | Ir.Kderived _), _ | _, (Ir.Kptr | Ir.Kderived _) ->
              let da = deriv_of a and db = deriv_of b in
              let dd = if op = Ir.Add then Mir.Deriv.add da db else Mir.Deriv.sub da db in
              Ir.set_temp_kind f d
                (if Mir.Deriv.is_empty dd then Ir.Kscalar else Ir.Kderived dd)
          | (Ir.Kstack, _ | _, Ir.Kstack) -> Ir.set_temp_kind f d Ir.Kstack
          | _ -> ())
      | _ -> ())
    instrs

let apply (f : Ir.func) (l : Mir.Cfg.loop) (c : candidate) : bool =
  match extract_condition f l c.cond_block with
  | None -> false
  | Some (cond_instrs, rel, x, y) ->
      (* Locate arm A's address chain: ta feeds  taddr := add ta, off ;
         tx := load(taddr, d).  We fold [d - lo*esz] into the selected
         origin, so we need the Sub-by-lo (if any), the Mul-by-esz (if
         any), and the Load displacement. *)
      let arm = f.Ir.blocks.(c.arm_a) in
      let instrs = Array.of_list arm.Ir.instrs in
      let n = Array.length instrs in
      let find_def t =
        let r = ref None in
        for i = 0 to n - 1 do
          if Ir.instr_def instrs.(i) = Some t then r := Some i
        done;
        !r
      in
      let single_use t =
        let c = ref 0 in
        Array.iter
          (fun i ->
            List.iter
              (function Ir.Otemp u when u = t -> incr c | _ -> ())
              (Ir.instr_uses i))
          instrs;
        !c = 1
      in
      (* taddr := add ta, off  (ta single use in arm) *)
      let addr_site = ref None in
      for i = 0 to n - 1 do
        match instrs.(i) with
        | Ir.Bin (Ir.Add, taddr, Ir.Otemp b, off) when b = c.ta ->
            addr_site := Some (i, taddr, off)
        | Ir.Bin (Ir.Add, taddr, off, Ir.Otemp b) when b = c.ta ->
            addr_site := Some (i, taddr, off)
        | _ -> ()
      done;
      (match !addr_site with
      | None -> false
      | Some (addr_i, taddr, off) -> (
          if not (single_use c.ta && single_use taddr) then false
          else
            (* Find the load through taddr and the offset chain. *)
            let load_site = ref None in
            for i = 0 to n - 1 do
              match instrs.(i) with
              | Ir.Load (tx, Ir.Otemp a, d) when a = taddr -> load_site := Some (i, tx, d)
              | _ -> ()
            done;
            match !load_site with
            | None -> false
            | Some (load_i, _tx, disp) ->
                (* Decompose off = (i' - lo) * esz within the arm. The
                   multiplication stays (the element scaling is still
                   needed); only the lo-subtraction is cancelled, its value
                   being folded into the selected origin. *)
                let lo = ref 0 and esz = ref 1 in
                let kill = ref [] (* instruction indices to neutralize *) in
                let index_op = ref off in
                (match off with
                | Ir.Otemp t -> (
                    match find_def t with
                    | Some i -> (
                        match instrs.(i) with
                        | Ir.Bin (Ir.Mul, _, a, Ir.Oimm k) when single_use t ->
                            esz := k;
                            index_op := a
                        | _ -> ())
                    | None -> ())
                | Ir.Oimm _ -> ());
                (match !index_op with
                | Ir.Otemp t -> (
                    match find_def t with
                    | Some i -> (
                        match instrs.(i) with
                        | Ir.Bin (Ir.Sub, _, a, Ir.Oimm k) when single_use t ->
                            lo := k;
                            kill := i :: !kill;
                            index_op := a
                        | _ -> ())
                    | None -> ())
                | Ir.Oimm _ -> ());
                (* New locals: the selected origin and the path variable. *)
                let mk_local name slot =
                  let id = Array.length f.Ir.locals in
                  f.Ir.locals <-
                    Array.append f.Ir.locals
                      [|
                        {
                          Ir.l_name = name;
                          l_size = 1;
                          l_slot = slot;
                          l_user = false;
                          l_addr_taken = false;
                          l_stores = 2;
                        };
                      |];
                  id
                in
                let pv = mk_local "$path" Ir.Sscalar in
                let k = disp - (!lo * !esz) in
                let sel =
                  mk_local "$sel"
                    (Ir.Sambig
                       {
                         Ir.path_local = pv;
                         cases =
                           [
                             (1, Mir.Deriv.of_base (Mir.Deriv.Blocal c.va));
                             (2, Mir.Deriv.of_base (Mir.Deriv.Blocal c.vb));
                           ];
                       })
                in
                (* Preheader with the hoisted selection. *)
                let ph = Mir.Cfg.insert_preheader f l in
                let pa = Mir.Cfg.add_block f ~instrs:[] ~term:(Ir.Jmp l.Mir.Cfg.header) in
                let pb = Mir.Cfg.add_block f ~instrs:[] ~term:(Ir.Jmp l.Mir.Cfg.header) in
                let phb = f.Ir.blocks.(ph) in
                phb.Ir.instrs <- cond_instrs;
                phb.Ir.term <- Ir.Cjmp (rel, x, y, pa, pb);
                let fill_arm blk_lbl v path_value =
                  let tb = Ir.fresh_temp f Ir.Kptr in
                  let ts = Ir.fresh_temp f (Ir.Kderived (Mir.Deriv.of_base (Mir.Deriv.Blocal v))) in
                  let blk = f.Ir.blocks.(blk_lbl) in
                  blk.Ir.instrs <-
                    [
                      Ir.Ld_local (tb, v, 0);
                      Ir.Bin (Ir.Add, ts, Ir.Otemp tb, Ir.Oimm k);
                      Ir.St_local (sel, 0, Ir.Otemp ts);
                      Ir.St_local (pv, 0, Ir.Oimm path_value);
                    ]
                in
                fill_arm pa c.va 1;
                fill_arm pb c.vb 2;
                (* Rewrite arm A into the merged body: base load comes from
                   sel; the lo-subtraction is cancelled; the load uses
                   displacement 0. *)
                let merged =
                  Array.to_list
                    (Array.mapi
                       (fun i ins ->
                         if i = addr_i then Ir.Bin (Ir.Add, taddr, Ir.Otemp c.ta, off)
                         else if i = load_i then
                           match ins with
                           | Ir.Load (tx, a, _) -> Ir.Load (tx, a, 0)
                           | other -> other
                         else if List.mem i !kill then
                           match ins with
                           | Ir.Bin (_, d, a, _) -> Ir.Mov (d, a)
                           | other -> other
                         else
                           match ins with
                           | Ir.Ld_local (t, v, 0) when t = c.ta && v = c.va ->
                               Ir.Ld_local (t, sel, 0)
                           | other -> other)
                       instrs)
                in
                arm.Ir.instrs <- merged;
                (* ta now carries the ambiguous origin. *)
                Ir.set_temp_kind f c.ta
                  (Ir.Kderived (Mir.Deriv.of_base (Mir.Deriv.Blocal sel)));
                refresh_kinds f merged;
                (* The conditional inside the loop is gone: both paths take
                   the merged arm. *)
                f.Ir.blocks.(c.cond_block).Ir.term <- Ir.Jmp c.arm_a;
                true))

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  let processed = ref Iset.empty in
  let rec go () =
    let loops = Mir.Cfg.natural_loops f in
    match
      List.find_opt
        (fun (l : Mir.Cfg.loop) ->
          l.Mir.Cfg.header <> 0 && not (Iset.mem l.Mir.Cfg.header !processed))
        loops
    with
    | None -> ()
    | Some l ->
        processed := Iset.add l.Mir.Cfg.header !processed;
        (match find_candidate f l with
        | Some c -> if apply f l c then changed := true
        | None -> ());
        go ()
  in
  go ();
  !changed
