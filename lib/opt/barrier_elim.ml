(** Static elimination of generational write barriers.

    The paper's central currency — what the compiler provably knows at each
    point — pays one more dividend here. The generational collector's
    invariant is that every old→young reference lives in the remembered
    set, filled by a write barrier on every heap pointer store. But a store
    into an object that is {e provably still in the nursery} (or in the
    pretenured big-object set, which minor collections scan wholesale) can
    never create an unrecorded old→young reference, so its barrier is dead
    weight.

    A temp is "fresh" from the allocation call that defines it until the
    next gc-point: collections happen only at gc-points (allocating calls —
    the same definition the gc tables are built from), so between two
    gc-points a freshly allocated object cannot be promoted. Freshness
    propagates through moves and through pointer arithmetic whose
    pointer-kinded inputs are all fresh (a derived pointer into a fresh
    object is fresh), and dies at every gc-point and at any other
    definition. The analysis is a forward must-dataflow over the CFG (meet
    = intersection; entry starts empty; calls are treated as gc-points
    whenever {!Mir.Ir.call_is_gcpoint} cannot prove otherwise — this pass
    runs without the never-allocates analysis and stays conservative).

    M3L variables round-trip through frame and global slots
    ([St_local]/[Ld_local], [St_global]/[Ld_global]), so the alloc result
    is almost never the store's base temp directly — it is stored to the
    variable's slot and re-loaded. Freshness therefore also tracks {e
    slots}: a slot becomes fresh when a fresh temp is stored to it, a load
    from a fresh slot yields a fresh temp, and slot freshness dies at
    gc-points like everything else. Slots have no hidden aliases as long
    as (a) address-taken locals are never tracked ([l_addr_taken]), and
    (b) any [Store] through a base that is not a heap pointer
    (stack-kinded temp, immediate address) kills every slot — heap
    pointers cannot point at frame or global words, so heap stores leave
    slot freshness intact, and every other write path is one of
    [St_local]/[St_global] (keyed), a kill-all store, or a call that is
    either a gc-point (kill-all) or a runtime routine that writes no user
    memory.

    A [Store] whose target temp is fresh is rewritten to [Store_nb], which
    instruction selection translates without a [Wbar]. The rewrite is
    purely an optimization: running the generational collector with this
    pass disabled is always sound, and the old→young verifier re-checks
    the invariant behind the eliminated barriers at every collection.

    {b Dual semantics.} [Wbar] is also the incremental collector's
    insertion barrier (shade the stored-to slot, {!Gc.Incremental}), so a
    barrier may be elided only if it is dead under {e both} readings. The
    same freshness predicate proves both at once: the incremental
    collector allocates {e white} during marking and takes slices only at
    gc-points, so an object that has not crossed a gc-point since its
    allocation is still white — a store into it cannot create the
    black→white edge the insertion barrier exists to catch (a white
    object's fields are scanned if and when the object itself is shaded).
    The gc-point kill is exactly right for both collectors for the same
    reason: a gc-point is where a minor collection could promote the
    object, and also where a slice could shade it black. The tri-color
    verifier re-checks the invariant behind every elided barrier at each
    slice boundary, just as the old→young verifier does per collection. *)

module Ir = Mir.Ir
module Iset = Support.Ints.Iset
module T = Telemetry

let c_seen = T.Metrics.counter "barrier_elim.stores_seen"
let c_elided = T.Metrics.counter "barrier_elim.stores_elided"

let pointerish (f : Ir.func) (o : Ir.operand) =
  match o with
  | Ir.Oimm _ -> false
  | Ir.Otemp t -> (
      match Ir.temp_kind f t with
      | Ir.Kptr | Ir.Kderived _ -> true
      | Ir.Kscalar | Ir.Kstack -> false)

(* Would instruction selection emit a barrier for this store? Mirrors
   [Codegen.Select.store_needs_barrier]: the target may move (not a stack
   address) and the value is a pointer. *)
let store_needs_barrier (f : Ir.func) (a : Ir.operand) (v : Ir.operand) =
  (match a with
  | Ir.Otemp ta -> ( match Ir.temp_kind f ta with Ir.Kstack -> false | _ -> true)
  | Ir.Oimm _ -> true)
  && pointerish f v

(* Dataflow state: temps and variable slots currently known to hold a
   pointer into an object allocated since the last gc-point. *)
type state = { ft : Iset.t (* fresh temps *); fs : Iset.t (* fresh slot keys *) }

let empty_state = { ft = Iset.empty; fs = Iset.empty }
let state_equal a b = Iset.equal a.ft b.ft && Iset.equal a.fs b.fs
let state_meet a b = { ft = Iset.inter a.ft b.ft; fs = Iset.inter a.fs b.fs }

(* Slot keys: word offset in the low bits (bounded so indices never
   collide), local/global in bit 0. Out-of-range offsets are not tracked. *)
let slot_key ~global idx off =
  if off < 0 || off >= 0x80000 then None
  else Some ((idx lsl 20) lor (off lsl 1) lor if global then 1 else 0)

let trackable_local (f : Ir.func) l =
  not f.Ir.locals.(l).Ir.l_addr_taken

let set_temp st d fresh =
  { st with ft = (if fresh then Iset.add d st.ft else Iset.remove d st.ft) }

let set_slot st key fresh =
  match key with
  | None -> st
  | Some k -> { st with fs = (if fresh then Iset.add k st.fs else Iset.remove k st.fs) }

let operand_fresh st = function Ir.Otemp t -> Iset.mem t st.ft | Ir.Oimm _ -> false

(* One instruction's effect on the fresh state. *)
let transfer (f : Ir.func) (st : state) (i : Ir.instr) : state =
  match i with
  | Ir.Call (d, Ir.Crt (Ir.Rt_alloc _ | Ir.Rt_alloc_open _), _) ->
      (* The gc-point kills everything; the result is the one fresh temp. *)
      let st = empty_state in
      (match d with Some d -> set_temp st d true | None -> st)
  | Ir.Call (d, callee, _) ->
      let st = if Ir.call_is_gcpoint callee then empty_state else st in
      (match d with Some d -> set_temp st d false | None -> st)
  | Ir.Mov (d, s) -> set_temp st d (operand_fresh st s)
  | Ir.Bin (_, d, a, b) ->
      (* Pointer arithmetic: the result points into a fresh object iff
         every pointer-kinded input is fresh (and there is one). *)
      let ptr_temps =
        List.filter_map
          (function
            | Ir.Otemp t when pointerish f (Ir.Otemp t) -> Some t
            | Ir.Otemp _ | Ir.Oimm _ -> None)
          [ a; b ]
      in
      set_temp st d
        (ptr_temps <> [] && List.for_all (fun t -> Iset.mem t st.ft) ptr_temps)
  | Ir.St_local (l, o, v) ->
      set_slot st (slot_key ~global:false l o) (trackable_local f l && operand_fresh st v)
  | Ir.St_global (g, o, v) -> set_slot st (slot_key ~global:true g o) (operand_fresh st v)
  | Ir.Ld_local (d, l, o) ->
      set_temp st d
        (trackable_local f l
        &&
        match slot_key ~global:false l o with
        | Some k -> Iset.mem k st.fs
        | None -> false)
  | Ir.Ld_global (d, g, o) ->
      set_temp st d
        (match slot_key ~global:true g o with Some k -> Iset.mem k st.fs | None -> false)
  | Ir.Store (a, _, _) | Ir.Store_nb (a, _, _) ->
      (* A store through a heap pointer cannot touch a frame or global
         slot; any other base (stack-kinded temp, immediate address) may
         alias an address-taken slot, so it kills them all. *)
      let heap_base =
        match a with
        | Ir.Otemp t -> (
            match Ir.temp_kind f t with
            | Ir.Kptr | Ir.Kderived _ -> true
            | Ir.Kscalar | Ir.Kstack -> false)
        | Ir.Oimm _ -> false
      in
      if heap_base then st else { st with fs = Iset.empty }
  | _ -> (
      (* Any other definition is not provably fresh; remaining effects
         leave the state alone. *)
      match Ir.instr_def i with Some d -> set_temp st d false | None -> st)

let func (f : Ir.func) : bool =
  let n = Array.length f.Ir.blocks in
  let preds = Array.make n [] in
  Array.iteri
    (fun b (blk : Ir.block) ->
      List.iter (fun s -> preds.(s) <- b :: preds.(s)) (Ir.term_succs blk.Ir.term))
    f.Ir.blocks;
  (* Forward must-analysis to a fixpoint: [None] is the optimistic "not yet
     computed" top, ignored by the meet until the block has been visited. *)
  let outs : state option array = Array.make n None in
  let ins = Array.make n empty_state in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      let in_set =
        if b = 0 then empty_state
        else
          List.fold_left
            (fun acc p ->
              match (outs.(p), acc) with
              | None, acc -> acc
              | Some s, None -> Some s
              | Some s, Some a -> Some (state_meet a s))
            None preds.(b)
          |> Option.value ~default:empty_state
      in
      ins.(b) <- in_set;
      let out = List.fold_left (transfer f) in_set f.Ir.blocks.(b).Ir.instrs in
      match outs.(b) with
      | Some o when state_equal o out -> ()
      | _ ->
          outs.(b) <- Some out;
          changed := true
    done
  done;
  (* Rewrite pass: replay the transfer through each block and relabel the
     stores whose target is fresh at that point. *)
  let rewrote = ref false in
  Array.iteri
    (fun b (blk : Ir.block) ->
      let set = ref ins.(b) in
      blk.Ir.instrs <-
        List.map
          (fun i ->
            let i =
              match i with
              | Ir.Store ((Ir.Otemp t as a), o, v) when store_needs_barrier f a v ->
                  T.Metrics.incr c_seen;
                  if Iset.mem t !set.ft then begin
                    T.Metrics.incr c_elided;
                    rewrote := true;
                    Ir.Store_nb (a, o, v)
                  end
                  else i
              | Ir.Store (a, _, v) when store_needs_barrier f a v ->
                  T.Metrics.incr c_seen;
                  i
              | _ -> i
            in
            set := transfer f !set i;
            i)
          blk.Ir.instrs)
    f.Ir.blocks;
  !rewrote

(** Run over the whole program. Must run {e after} any pass that inserts
    gc-points (in particular {!Loop_gcpoints}): an unseen gc-point inside
    a "fresh" range would make an elimination unsound. *)
let run (prog : Ir.program) : unit =
  Telemetry.Trace.span ~cat:"compile" "opt.barrier_elim" (fun () ->
      Array.iter (fun f -> ignore (func f)) prog.Ir.funcs)
