(** The optimization pipeline. Passes transform MIR in place and must keep
    the gc kinds (derivations) of temps correct — the bookkeeping burden the
    paper adds to gcc's optimizer (§2, §4).

    Pass order, per function, iterated to a local fixed point:
    copy propagation → constant folding → CSE → virtual array origin →
    strength reduction → LICM (with path variables for hoisted ambiguous
    derivations) → dead code elimination. *)

type options = {
  copyprop : bool;
  constfold : bool;
  pathvar : bool;
  cse : bool;
  virtual_origin : bool;
  strength : bool;
  licm : bool;
  dce : bool;
}

let all_on =
  {
    copyprop = true;
    constfold = true;
    pathvar = true;
    cse = true;
    virtual_origin = true;
    strength = true;
    licm = true;
    dce = true;
  }

let optimize ?(opts = all_on) (prog : Mir.Ir.program) : unit =
  Telemetry.Trace.span ~cat:"compile" "opt.pipeline" (fun () ->
      Array.iter
        (fun f ->
          let budget = ref 6 in
          let changed = ref true in
          while !changed && !budget > 0 do
            changed := false;
            (* Each pass is timed individually so `mmc --timings` breaks the
               optimizer down per pass across all fixed-point iterations. *)
            let step cond name pass =
              if cond && Telemetry.Timer.time ~cat:"opt" name (fun () -> pass prog f)
              then changed := true
            in
            step opts.copyprop "opt.copyprop" Copyprop.run;
            step opts.constfold "opt.constfold" Constfold.run;
            step opts.pathvar "opt.pathvar" Pathvar.run;
            step opts.cse "opt.cse" Cse.run;
            step opts.virtual_origin "opt.virtual_origin" Virtual_origin.run;
            step opts.strength "opt.strength" Strength.run;
            step opts.licm "opt.licm" Licm.run;
            step opts.dce "opt.dce" Dce.run;
            decr budget
          done;
          ignore (Telemetry.Timer.time ~cat:"opt" "opt.cleanup" (fun () -> Cleanup.run prog f)))
        prog.Mir.Ir.funcs)
