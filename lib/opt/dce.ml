(** Dead code elimination.

    A pure instruction whose destination is never needed is removed.
    "Needed" includes the paper's dead-base rule: the bases of a derivation
    are needed wherever the derived value is (the collector must be able to
    update it), so an instruction computing a base value survives as long as
    anything derived from it does — this is precisely how the compiler
    "retains the base values for the lifetime of the values derived from
    them" (§4). *)

module Ir = Mir.Ir
module Iset = Support.Ints.Iset

let has_side_effects (i : Ir.instr) =
  match i with
  | Ir.St_local _ | Ir.St_global _ | Ir.Store _ | Ir.Store_nb _ | Ir.Call _ -> true
  | Ir.Bin ((Ir.Div | Ir.Mod), _, _, Ir.Oimm n) -> n = 0 (* keep the trap *)
  | Ir.Bin ((Ir.Div | Ir.Mod), _, _, (Ir.Otemp _ : Ir.operand)) -> true
  | Ir.Mov _ | Ir.Bin _ | Ir.Neg _ | Ir.Abs _ | Ir.Setrel _ | Ir.Ld_local _
  | Ir.Ld_global _ | Ir.Lda_local _ | Ir.Lda_global _ | Ir.Lda_text _ | Ir.Load _ ->
      false

let run (_prog : Ir.program) (f : Ir.func) : bool =
  (* Seed: temps read by side-effecting instructions and terminators. *)
  let needed = ref Iset.empty in
  let note (o : Ir.operand) =
    match o with Ir.Otemp t -> needed := Iset.add t !needed | Ir.Oimm _ -> ()
  in
  let note_deriv (d : Mir.Deriv.t) =
    List.iter
      (function
        | Mir.Deriv.Btemp t -> needed := Iset.add t !needed
        | Mir.Deriv.Blocal _ -> ())
      (Mir.Deriv.bases d)
  in
  (* Bases of derived slots are needed as long as the slot may be live —
     conservatively, always. *)
  Array.iter
    (fun (li : Ir.local_info) ->
      match li.Ir.l_slot with
      | Ir.Sderived d -> note_deriv d
      | Ir.Sambig a -> List.iter (fun (_, d) -> note_deriv d) a.Ir.cases
      | Ir.Sscalar | Ir.Sptr | Ir.Saddr | Ir.Saggregate _ -> ())
    f.Ir.locals;
  Array.iter
    (fun (blk : Ir.block) ->
      List.iter
        (fun i -> if has_side_effects i then List.iter note (Ir.instr_uses i))
        blk.Ir.instrs;
      List.iter note (Ir.term_uses blk.Ir.term))
    f.Ir.blocks;
  (* Fixpoint: a needed temp's defining instructions' uses are needed, and
     the bases of a needed derived temp are needed. *)
  let changed = ref true in
  while !changed do
    changed := false;
    let before = Iset.cardinal !needed in
    Array.iter
      (fun (blk : Ir.block) ->
        List.iter
          (fun i ->
            match Ir.instr_def i with
            | Some d when Iset.mem d !needed -> List.iter note (Ir.instr_uses i)
            | _ -> ())
          blk.Ir.instrs)
      f.Ir.blocks;
    Iset.iter
      (fun t ->
        match Ir.temp_kind f t with
        | Ir.Kderived d -> note_deriv d
        | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> ())
      !needed;
    if Iset.cardinal !needed <> before then changed := true
  done;
  let removed = ref false in
  Array.iter
    (fun (blk : Ir.block) ->
      let keep i =
        has_side_effects i
        ||
        match Ir.instr_def i with
        | Some d -> Iset.mem d !needed
        | None -> true
      in
      let filtered = List.filter keep blk.Ir.instrs in
      if List.length filtered <> List.length blk.Ir.instrs then begin
        removed := true;
        blk.Ir.instrs <- filtered
      end)
    f.Ir.blocks;
  !removed
