(** Local common-subexpression elimination.

    Address computations are prime candidates (the paper's §2 CSE example:
    [&A\[i\]] reused across two element accesses); reusing them extends the
    lifetime of derived values across gc-points, which is exactly what the
    derivation tables must then describe.

    Memory-reading expressions are invalidated conservatively: heap loads by
    any store or call; local slots by stores to the same slot, and by calls
    when the slot's address has been taken (a callee could write through a
    VAR parameter); globals by global stores and calls. *)

module Ir = Mir.Ir

type key =
  | Kbin of Ir.binop * Ir.operand * Ir.operand
  | Ksetrel of Ir.relop * Ir.operand * Ir.operand
  | Kneg of Ir.operand
  | Kabs of Ir.operand
  | Klda_local of int * int
  | Klda_global of int * int
  | Klda_text of int
  | Kld_local of int * int
  | Kld_global of int * int
  | Kload of Ir.operand * int

let key_of (i : Ir.instr) : key option =
  match i with
  | Ir.Bin (op, _, a, b) when op <> Ir.Div && op <> Ir.Mod -> Some (Kbin (op, a, b))
  | Ir.Setrel (r, _, a, b) -> Some (Ksetrel (r, a, b))
  | Ir.Neg (_, s) -> Some (Kneg s)
  | Ir.Abs (_, s) -> Some (Kabs s)
  | Ir.Lda_local (_, l, o) -> Some (Klda_local (l, o))
  | Ir.Lda_global (_, g, o) -> Some (Klda_global (g, o))
  | Ir.Lda_text (_, x) -> Some (Klda_text x)
  | Ir.Ld_local (_, l, o) -> Some (Kld_local (l, o))
  | Ir.Ld_global (_, g, o) -> Some (Kld_global (g, o))
  | Ir.Load (_, a, o) -> Some (Kload (a, o))
  | _ -> None

let key_mentions_temp t = function
  | Kbin (_, a, b) | Ksetrel (_, a, b) -> a = Ir.Otemp t || b = Ir.Otemp t
  | Kneg s | Kabs s | Kload (s, _) -> s = Ir.Otemp t
  | Klda_local _ | Klda_global _ | Klda_text _ | Kld_local _ | Kld_global _ -> false

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  Array.iter
    (fun (blk : Ir.block) ->
      let avail : (key * int) list ref = ref [] in
      let kill p = avail := List.filter (fun (k, v) -> not (p k v)) !avail in
      let on_def t =
        kill (fun k v -> v = t || key_mentions_temp t k)
      in
      let instrs =
        List.map
          (fun i ->
            let i' =
              match key_of i with
              | Some k -> (
                  match (List.assoc_opt k !avail, Ir.instr_def i) with
                  | Some s, Some d when s <> d ->
                      changed := true;
                      Ir.Mov (d, Ir.Otemp s)
                  | _ -> i)
              | None -> i
            in
            (* Kill invalidated entries, then record the new value. *)
            (match i' with
            | Ir.St_local (l, _, _) ->
                kill (fun k _ ->
                    match k with Kld_local (l', _) -> l' = l | _ -> false)
            | Ir.St_global (g, _, _) ->
                kill (fun k _ ->
                    match k with Kld_global (g', _) -> g' = g | _ -> false)
            | Ir.Store _ | Ir.Store_nb _ ->
                kill (fun k _ -> match k with Kload _ -> true | _ -> false)
            | Ir.Call _ ->
                kill (fun k _ ->
                    match k with
                    | Kload _ | Kld_global _ -> true
                    | Kld_local (l, _) -> f.Ir.locals.(l).Ir.l_addr_taken
                    | _ -> false)
            | _ -> ());
            (match Ir.instr_def i' with Some d -> on_def d | None -> ());
            (match (key_of i', Ir.instr_def i') with
            | Some k, Some d -> (
                match i' with
                | Ir.Mov _ -> ()
                | _ -> avail := (k, d) :: !avail)
            | _ -> ());
            i')
          blk.Ir.instrs
      in
      blk.Ir.instrs <- instrs)
    f.Ir.blocks;
  !changed
