(** Loop-invariant code motion.

    Pure computations whose operands are invariant in a loop are moved to a
    freshly inserted preheader. Address arithmetic is the interesting case
    for gc support: a hoisted (possibly untidy) address temp becomes live
    across every gc-point in the loop and must appear in the derivation
    tables there (paper §2's loop examples).

    Safety notes: memory-reading instructions are hoisted only out of the
    loop header (which runs at least once whenever the preheader does), so
    no speculative read can produce a garbage pointer; DIV/MOD are never
    hoisted (traps must not be made speculative). *)

module Ir = Mir.Ir
module Iset = Support.Ints.Iset

let hoist_loop (f : Ir.func) (l : Mir.Cfg.loop) : bool =
  let body = l.Mir.Cfg.body in
  let in_body b = Iset.mem b body in
  (* Def blocks per temp, over the whole function. *)
  let def_blocks = Hashtbl.create 64 in
  let def_count = Array.make f.Ir.ntemps 0 in
  Array.iteri
    (fun b (blk : Ir.block) ->
      List.iter
        (fun i ->
          match Ir.instr_def i with
          | Some d ->
              def_count.(d) <- def_count.(d) + 1;
              Hashtbl.replace def_blocks d
                (Iset.add b
                   (match Hashtbl.find_opt def_blocks d with Some s -> s | None -> Iset.empty))
          | None -> ())
        blk.Ir.instrs)
    f.Ir.blocks;
  let stored_locals = ref Iset.empty in
  let stored_globals = ref Iset.empty in
  let has_call = ref false in
  let has_store = ref false in
  Iset.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.St_local (lo, _, _) -> stored_locals := Iset.add lo !stored_locals
          | Ir.St_global (g, _, _) -> stored_globals := Iset.add g !stored_globals
          | Ir.Call _ -> has_call := true
          | Ir.Store _ | Ir.Store_nb _ -> has_store := true
          | _ -> ())
        f.Ir.blocks.(b).Ir.instrs)
    body;
  let invariant_op (o : Ir.operand) =
    match o with
    | Ir.Oimm _ -> true
    | Ir.Otemp t -> (
        match Hashtbl.find_opt def_blocks t with
        | None -> true (* no remaining def: only possible if dead *)
        | Some defs -> Iset.for_all (fun b -> not (in_body b)) defs)
  in
  let hoistable ~in_header (i : Ir.instr) =
    (match Ir.instr_def i with Some d -> def_count.(d) = 1 | None -> false)
    && List.for_all invariant_op (Ir.instr_uses i)
    &&
    match i with
    | Ir.Mov _ | Ir.Neg _ | Ir.Abs _ | Ir.Setrel _ | Ir.Lda_local _ | Ir.Lda_global _
    | Ir.Lda_text _ -> true
    | Ir.Bin (op, _, _, _) -> op <> Ir.Div && op <> Ir.Mod
    | Ir.Ld_local (_, lo, _) ->
        (not (Iset.mem lo !stored_locals))
        && ((not f.Ir.locals.(lo).Ir.l_addr_taken) || not !has_call)
    | Ir.Ld_global (_, g, _) -> (not !has_call) && not (Iset.mem g !stored_globals)
    | Ir.Load _ -> in_header && (not !has_call) && not !has_store
    | Ir.St_local _ | Ir.St_global _ | Ir.Store _ | Ir.Store_nb _ | Ir.Call _ -> false
  in
  let preheader = ref None in
  let get_preheader () =
    match !preheader with
    | Some p -> p
    | None ->
        let p = Mir.Cfg.insert_preheader f l in
        preheader := Some p;
        p
  in
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    Iset.iter
      (fun b ->
        let blk = f.Ir.blocks.(b) in
        let in_header = b = l.Mir.Cfg.header in
        let keep, hoist =
          List.partition (fun i -> not (hoistable ~in_header i)) blk.Ir.instrs
        in
        (* Memory loads outside the header stay; [hoistable] handled that. *)
        if hoist <> [] then begin
          let p = get_preheader () in
          let pblk = f.Ir.blocks.(p) in
          pblk.Ir.instrs <- pblk.Ir.instrs @ hoist;
          blk.Ir.instrs <- keep;
          (* Re-home the moved defs so they now count as invariant. *)
          List.iter
            (fun i ->
              match Ir.instr_def i with
              | Some d -> Hashtbl.replace def_blocks d (Iset.singleton p)
              | None -> ())
            hoist;
          changed := true;
          progress := true
        end)
      body
  done;
  !changed

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  let processed = ref Iset.empty in
  let rec go () =
    let loops = Mir.Cfg.natural_loops f in
    match
      List.find_opt
        (fun (l : Mir.Cfg.loop) ->
          l.Mir.Cfg.header <> 0 && not (Iset.mem l.Mir.Cfg.header !processed))
        loops
    with
    | None -> ()
    | Some l ->
        processed := Iset.add l.Mir.Cfg.header !processed;
        if hoist_loop f l then changed := true;
        go ()
  in
  go ();
  !changed
