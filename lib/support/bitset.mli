(** Fixed-width mutable bitsets, used for liveness vectors, the per-gc-point
    delta tables (one bit per ground-table entry) and register-pointer masks
    (one bit per hard register). *)

type t

val create : int -> t
(** [create n] is a bitset of width [n], all bits clear. *)

val length : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

(** Clear every bit in place, without allocating. Used by the incremental
    collector to whiten the heap at cycle start: reallocating a heap-sized
    bitset per cycle puts an OCaml-GC allocation spike inside the first
    (budgeted) slice of every cycle. *)
val reset : t -> unit

val is_empty : t -> bool
val count : t -> int

val equal : t -> t -> bool
val copy : t -> t

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] sets every bit of [src] in [dst]; widths must match. *)

val iter : (int -> unit) -> t -> unit
(** [iter f t] applies [f] to each set bit index, ascending. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_bytes : t -> Bytes.t
(** Pack into ⌈n/8⌉ bytes, bit [i] at byte [i/8], position [i mod 8] (LSB first). *)

val of_bytes : width:int -> Bytes.t -> int -> t * int
(** [of_bytes ~width b pos] unpacks a bitset of [width] bits starting at byte
    [pos]; returns the bitset and the position past it. *)

val pp : Format.formatter -> t -> unit
