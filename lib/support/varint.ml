(* Packed-word codec (paper Fig. 3): 7 payload bits per byte, high bit =
   continuation, most-significant group first, first byte sign-extended. *)

let fits_signed ~bits v =
  let lo = -(1 lsl (bits - 1)) in
  let hi = (1 lsl (bits - 1)) - 1 in
  v >= lo && v <= hi

let byte_length v =
  let rec go n = if fits_signed ~bits:(7 * n) v then n else go (n + 1) in
  go 1

let encode buf v =
  let n = byte_length v in
  for i = n - 1 downto 0 do
    let group = (v asr (7 * i)) land 0x7f in
    let cont = if i = 0 then 0 else 0x80 in
    Buffer.add_char buf (Char.chr (cont lor group))
  done

(* Longest legal encoding: 9 bytes cover 7 + 8×7 = 63 bits, the full range
   of an OCaml int. [encode] never emits more (see [byte_length]); a tenth
   continuation byte can therefore only come from corrupt or adversarial
   input, and accepting it would silently shift payload bits off the top. *)
let max_bytes = 9

let decode bytes pos =
  let len = Bytes.length bytes in
  if pos < 0 || pos >= len then invalid_arg "Varint.decode: position out of bounds";
  let b0 = Char.code (Bytes.get bytes pos) in
  (* Sign-extend the 7-bit payload of the first byte. *)
  let v0 =
    let p = b0 land 0x7f in
    if p land 0x40 <> 0 then p - 0x80 else p
  in
  let rec go v pos n cont =
    if not cont then (v, pos)
    else if pos >= len then invalid_arg "Varint.decode: truncated encoding"
    else if n >= max_bytes then invalid_arg "Varint.decode: overlong encoding (> 63 bits)"
    else
      let b = Char.code (Bytes.get bytes pos) in
      go ((v lsl 7) lor (b land 0x7f)) (pos + 1) (n + 1) (b land 0x80 <> 0)
  in
  go v0 (pos + 1) 1 (b0 land 0x80 <> 0)

let encode_to_bytes v =
  let buf = Buffer.create 4 in
  encode buf v;
  Buffer.to_bytes buf
