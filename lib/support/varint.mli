(** Byte-level packing of words, exactly the format of Fig. 3 of the paper:
    each word is encoded in one or more bytes; the high bit of a byte is set
    iff the following byte is also part of the word (continuation); bytes are
    stored from most- to least-significant 7-bit group; the first byte's
    payload is sign-extended, since many stack offsets are negative. *)

val byte_length : int -> int
(** [byte_length v] is the number of bytes [encode] emits for [v] (≥ 1). *)

val encode : Buffer.t -> int -> unit
(** [encode buf v] appends the packed encoding of [v] to [buf]. *)

val max_bytes : int
(** The longest encoding [encode] can emit (9 bytes = 63 payload bits). *)

val decode : Bytes.t -> int -> int * int
(** [decode bytes pos] reads one packed word starting at [pos]; returns
    [(value, next_pos)]. The scan is total: it consumes at most
    {!max_bytes} bytes and never reads past the end of [bytes].
    @raise Invalid_argument if [pos] is out of bounds, the encoding runs
    past the end of [bytes] (truncated), or the continuation bits extend
    beyond {!max_bytes} bytes (overlong — the accumulator would silently
    wrap past 63 bits). *)

val encode_to_bytes : int -> Bytes.t
(** [encode_to_bytes v] is the packed encoding of [v] alone. *)
