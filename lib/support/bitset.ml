type t = { width : int; words : int array }

let bits_per_word = 62

let create width =
  if width < 0 then invalid_arg "Bitset.create";
  { width; words = Array.make ((width + bits_per_word - 1) / bits_per_word + 1) 0 }

let length t = t.width

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of bounds"

let set t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let equal a b = a.width = b.width && a.words = b.words

let copy t = { t with words = Array.copy t.words }

let union_into ~dst src =
  if dst.width <> src.width then invalid_arg "Bitset.union_into: width mismatch";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let iter f t =
  for i = 0 to t.width - 1 do
    if mem t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_bytes t =
  let nbytes = (t.width + 7) / 8 in
  let b = Bytes.make nbytes '\000' in
  iter
    (fun i ->
      let byte = Char.code (Bytes.get b (i / 8)) in
      Bytes.set b (i / 8) (Char.chr (byte lor (1 lsl (i mod 8)))))
    t;
  b

let of_bytes ~width b pos =
  let nbytes = (width + 7) / 8 in
  if pos + nbytes > Bytes.length b then invalid_arg "Bitset.of_bytes: truncated";
  let t = create width in
  for i = 0 to width - 1 do
    let byte = Char.code (Bytes.get b (pos + (i / 8))) in
    if byte land (1 lsl (i mod 8)) <> 0 then set t i
  done;
  (t, pos + nbytes)

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if not !first then Format.fprintf fmt ",";
      first := false;
      Format.fprintf fmt "%d" i)
    t;
  Format.fprintf fmt "}"
