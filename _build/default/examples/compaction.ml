(* Compaction: what precise tables buy you.

   The same fragmentation-inducing workload — allocate big and small
   objects interleaved, drop the big ones — run under the table-driven
   compacting collector and under the conservative non-moving baseline.
   The precise collector ends with a contiguous heap; the conservative one
   ends with a free list full of holes.

     dune exec examples/compaction.exe *)

let source =
  {|
MODULE Frag;

TYPE
  Big = REF ARRAY OF INTEGER;
  SmallRec = RECORD v: INTEGER; next: Small END;
  Small = REF SmallRec;

VAR keep: Small; b: Big; i: INTEGER; count: INTEGER;

BEGIN
  keep := NIL;
  FOR i := 1 TO 120 DO
    (* a big transient object ... *)
    b := NEW(Big, 20);
    b[0] := i;
    (* ... and a small survivor between every two of them *)
    WITH n = NEW(Small) DO
      n.next := keep;
      keep := n
    END;
    keep.v := i
  END;
  count := 0;
  WHILE keep # NIL DO count := count + 1; keep := keep.next END;
  PutText("survivors: ");
  PutInt(count);
  PutLn()
END Frag.
|}

let () =
  let heap = 1500 in
  let options = { Driver.Compile.default_options with heap_words = heap } in
  (* Precise compacting collector. *)
  let img = Driver.Compile.compile ~options source in
  let st = Vm.Interp.create img in
  Gc.Cheney.install st;
  Vm.Interp.run st;
  Printf.printf "precise      : %s" (Vm.Interp.output st);
  Printf.printf "  collections=%d, free list: none (heap is compacted; bump allocation)\n"
    st.Vm.Interp.gc.Vm.Interp.collections;
  (* Conservative, non-moving. *)
  let img2 = Driver.Compile.compile ~options source in
  let st2 = Vm.Interp.create img2 in
  let _ = Gc.Conservative.install st2 in
  Vm.Interp.run st2;
  let blocks, total, largest = Gc.Conservative.free_list_stats st2 in
  Printf.printf "conservative : %s" (Vm.Interp.output st2);
  Printf.printf "  collections=%d, free list: %d blocks, %d words free, largest %d\n"
    st2.Vm.Interp.gc.Vm.Interp.collections blocks total largest;
  assert (Vm.Interp.output st = Vm.Interp.output st2);
  print_endline "(same outputs; only the heap shapes differ)"
