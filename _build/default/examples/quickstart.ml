(* Quickstart: compile an M3L program, run it under the table-driven
   compacting collector, and look at what the compiler emitted.

     dune exec examples/quickstart.exe *)

let source =
  {|
MODULE Quickstart;

TYPE
  Node = RECORD value: INTEGER; next: List END;
  List = REF Node;

VAR l: List; i, round, sum: INTEGER;

PROCEDURE Cons(v: INTEGER; t: List): List;
VAR n: List;
BEGIN
  n := NEW(List);
  n.value := v;
  n.next := t;
  RETURN n
END Cons;

BEGIN
  sum := 0;
  FOR round := 1 TO 5 DO
    (* each round's list becomes garbage when the next one starts *)
    l := NIL;
    FOR i := 1 TO 40 DO l := Cons(i, l) END;
    WHILE l # NIL DO sum := sum + l.value; l := l.next END
  END;
  PutText("sum = ");
  PutInt(sum);
  PutLn()
END Quickstart.
|}

let () =
  (* A tiny heap forces the collector to run — and to move every live
     object — many times during this program. *)
  let options = { Driver.Compile.default_options with optimize = true; heap_words = 200 } in
  let image = Driver.Compile.compile ~options source in
  Printf.printf "compiled: %d UVM instructions, %d code bytes, %d bytes of gc tables\n"
    (Array.length image.Vm.Image.code)
    image.Vm.Image.code_bytes
    (Gcmaps.Encode.total_table_bytes image.Vm.Image.tables);
  let result = Driver.Compile.run image in
  Printf.printf "program output   : %s" result.Driver.Compile.output;
  Printf.printf "collections      : %d (every one moved every live object)\n"
    result.Driver.Compile.collections;
  Printf.printf "objects copied   : %d\n"
    result.Driver.Compile.gc.Vm.Interp.objects_copied;
  Printf.printf "frames traced    : %d\n"
    result.Driver.Compile.gc.Vm.Interp.frames_traced;
  (* The same program, same heap, under the conservative baseline. *)
  let r2 =
    Driver.Compile.run ~collector:Driver.Compile.Conservative
      (Driver.Compile.compile
         ~options:{ options with heap_words = 600 }
         source)
  in
  Printf.printf "conservative run : %s" r2.Driver.Compile.output;
  assert (r2.Driver.Compile.output = result.Driver.Compile.output);
  print_endline "precise and conservative collectors agree."
