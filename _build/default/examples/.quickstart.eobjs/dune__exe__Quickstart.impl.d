examples/quickstart.ml: Array Driver Gcmaps Printf Vm
