examples/quickstart.mli:
