examples/interior_pointers.ml: Array Driver Format Gcmaps List Printf String Vm
