examples/compaction.mli:
