examples/compaction.ml: Driver Gc Printf Vm
