examples/interior_pointers.mli:
