(* Interior pointers: the paper's hard case.

   VAR parameters and WITH bindings produce pointers into the middle of
   heap objects ("untidy" / derived values). This example prints the
   derivation tables the compiler emits for them and then runs the program
   with a heap so small that the collector relocates the objects while the
   interior pointers are live.

     dune exec examples/interior_pointers.exe *)

let source =
  {|
MODULE Interior;

TYPE
  Pair = RECORD a, b: INTEGER END;
  P = REF Pair;
  Junk = REF RECORD x: INTEGER END;

VAR p: P; i: INTEGER; j: Junk;

PROCEDURE Churn(n: INTEGER);
VAR k: INTEGER;
BEGIN
  FOR k := 1 TO n DO j := NEW(Junk); j.x := k END
END Churn;

PROCEDURE AddInto(VAR cell: INTEGER; v: INTEGER);
BEGIN
  (* While this body runs, the caller's argument slot holds a pointer INTO
     p's record. A collection here moves the record; the tables let the
     collector update the slot. *)
  Churn(25);
  cell := cell + v
END AddInto;

BEGIN
  p := NEW(P);
  p.a := 0;
  p.b := 0;
  FOR i := 1 TO 10 DO
    AddInto(p.a, 1);
    AddInto(p.b, 2);
    WITH slot = p.b DO
      Churn(10);
      slot := slot + 1
    END
  END;
  PutInt(p.a); PutChar(' '); PutInt(p.b); PutLn()
END Interior.
|}

let () =
  let options = { Driver.Compile.default_options with heap_words = 200 } in
  let image = Driver.Compile.compile ~options source in
  (* Show every gc-point that carries a derivation table. *)
  print_endline "derivation tables emitted by the compiler:";
  Array.iter
    (fun (pm : Gcmaps.Rawmaps.proc_maps) ->
      List.iter
        (fun (gp : Gcmaps.Rawmaps.gcpoint) ->
          if gp.Gcmaps.Rawmaps.derivs <> [] then begin
            Printf.printf "  in %s at code byte %d:\n" pm.Gcmaps.Rawmaps.pm_name
              gp.Gcmaps.Rawmaps.gp_offset;
            List.iter
              (fun d -> Format.printf "    %a@." Gcmaps.Rawmaps.pp_deriv d)
              gp.Gcmaps.Rawmaps.derivs
          end)
        pm.Gcmaps.Rawmaps.pm_gcpoints)
    image.Vm.Image.rawmaps;
  let r = Driver.Compile.run image in
  Printf.printf "\noutput: %s" r.Driver.Compile.output;
  Printf.printf "(with %d collections relocating the record mid-call)\n"
    r.Driver.Compile.collections;
  assert (String.trim r.Driver.Compile.output = "10 30")
