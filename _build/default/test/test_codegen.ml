(* Code generation tests: frame layout, register allocation constraints,
   addressing-mode folds, and the raw gc information captured at calls. *)

module Ir = Mir.Ir
module I = Machine.Insn
module L = Gcmaps.Loc

let check = Alcotest.check

let lower ?(checks = false) src = Mir.Lower.program ~checks (M3l.Typecheck.check_source src)

let select ?(opts = Codegen.Select.default_options) prog fid =
  Codegen.Select.func ~prog opts
    ~global_addr:(fun g -> 100 + g)
    ~text_addr:(fun t -> 200 + t)
    prog.Ir.funcs.(fid)

let func_named (p : Ir.program) name =
  match Array.find_opt (fun (f : Ir.func) -> f.Ir.fname = name) p.Ir.funcs with
  | Some f -> f.Ir.fid
  | None -> Alcotest.failf "no function %s" name

(* ------------------------------------------------------------------ *)
(* Frame layout                                                        *)
(* ------------------------------------------------------------------ *)

let mk_local ?(size = 1) ?(slot = Ir.Sscalar) name =
  {
    Ir.l_name = name;
    l_size = size;
    l_slot = slot;
    l_user = true;
    l_addr_taken = false;
    l_stores = 0;
  }

let test_frame_layout () =
  let locals =
    [| mk_local "p0"; mk_local "p1"; mk_local ~size:3 "arr"; mk_local "x" |]
  in
  let fr = Codegen.Frame.layout ~locals ~nparams:2 ~saves:[ 6; 7 ] ~nspills:2 in
  (* Parameters above the frame. *)
  check Alcotest.int "param 0 at FP+2" 2 (Codegen.Frame.local_off fr 0);
  check Alcotest.int "param 1 at FP+3" 3 (Codegen.Frame.local_off fr 1);
  (* Saves occupy FP-1 and FP-2; locals below. *)
  check Alcotest.bool "saves at -1,-2" true (fr.Codegen.Frame.save_offs = [ (6, -1); (7, -2) ]);
  let arr = Codegen.Frame.local_off fr 2 in
  let x = Codegen.Frame.local_off fr 3 in
  check Alcotest.bool "arr below saves" true (arr <= -3);
  check Alcotest.bool "x below arr" true (x < arr);
  (* No overlap: arr occupies [arr, arr+2]; x is 1 word. *)
  check Alcotest.bool "no overlap" true (x + 1 <= arr || x >= arr + 3);
  (* Spills below everything; frame size covers them. *)
  let s0 = Codegen.Frame.spill_off fr 0 and s1 = Codegen.Frame.spill_off fr 1 in
  check Alcotest.bool "spills distinct" true (s0 <> s1);
  check Alcotest.bool "frame covers spills" true
    (-fr.Codegen.Frame.frame_size <= min s0 s1)

let test_frame_word_order () =
  (* Words of an aggregate ascend in memory: &arr[0] < &arr[1]. *)
  let locals = [| mk_local ~size:4 "arr" |] in
  let fr = Codegen.Frame.layout ~locals ~nparams:0 ~saves:[] ~nspills:0 in
  let base = Codegen.Frame.local_off fr 0 in
  check Alcotest.int "frame size" 4 fr.Codegen.Frame.frame_size;
  check Alcotest.int "base is lowest" (-4) base

(* ------------------------------------------------------------------ *)
(* Register allocation                                                 *)
(* ------------------------------------------------------------------ *)

let test_callee_saved_across_calls () =
  (* A pointer live across a user call must be in a callee-saved register
     or spilled — never in a caller-saved register. *)
  let src =
    "MODULE T;\n\
     TYPE P = REF RECORD v: INTEGER END;\n\
     PROCEDURE Id(x: INTEGER): INTEGER; BEGIN RETURN x END Id;\n\
     PROCEDURE Go(): INTEGER;\n\
     VAR p: P; a: INTEGER;\n\
     BEGIN\n\
     p := NEW(P); p.v := 5;\n\
     a := Id(1);\n\
     RETURN p.v + a\n\
     END Go;\n\
     VAR r: INTEGER; BEGIN r := Go(); PutInt(r) END T."
  in
  let prog = lower src in
  let fid = func_named prog "Go" in
  let f = prog.Ir.funcs.(fid) in
  let liv = Mir.Liveness.compute f in
  let ra = Codegen.Regalloc.allocate f liv in
  (* Find temps of pointer kind live across the Id call: they must not sit
     in caller-saved registers. *)
  Array.iteri
    (fun b (_ : Ir.block) ->
      List.iteri
        (fun i instr ->
          match instr with
          | Ir.Call (_, Ir.Cuser _, _) ->
              let lt, _ = Mir.Liveness.live_at_gcpoint liv b i in
              Support.Bitset.iter
                (fun t ->
                  match ra.Codegen.Regalloc.assign.(t) with
                  | Codegen.Regalloc.Areg r ->
                      check Alcotest.bool
                        (Printf.sprintf "t%d live across call in callee-saved r%d" t r)
                        true
                        (Machine.Reg.is_callee_saved r)
                  | Codegen.Regalloc.Aspill _ -> ())
                lt
          | _ -> ())
        f.Ir.blocks.(b).Ir.instrs)
    f.Ir.blocks;
  ignore ra

let test_spill_when_pressured () =
  (* Twelve simultaneously live values cannot all fit in 10 allocatable
     registers: some must spill, and the program must still be correct. *)
  let src =
    "MODULE T;\n\
     VAR a, b, c, d, e, f, g, h, i, j, k, l, s: INTEGER;\n\
     BEGIN\n\
     a := 1; b := 2; c := 3; d := 4; e := 5; f := 6; g := 7; h := 8;\n\
     i := 9; j := 10; k := 11; l := 12;\n\
     s := a + b + c + d + e + f + g + h + i + j + k + l;\n\
     s := s + a * b * c * d;\n\
     PutInt(s)\n\
     END T."
  in
  let r = Driver.Compile.run_source src in
  check Alcotest.string "sum with pressure" "102" (String.trim r.Driver.Compile.output)

(* ------------------------------------------------------------------ *)
(* Addressing-mode folds                                               *)
(* ------------------------------------------------------------------ *)

let count_ops pred (out : Codegen.Select.out_func) =
  Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) 0
    out.Codegen.Select.of_code

let test_mem2_fold () =
  (* v[i] with a dynamic index produces base+offset adds whose sums are
     single-use: they fold into Mem2 operands. *)
  let src =
    "MODULE T;\n\
     TYPE V = REF ARRAY OF INTEGER;\n\
     VAR v: V; i, x: INTEGER;\n\
     BEGIN v := NEW(V, 10); i := 3; v[i] := 8; x := v[i]; PutInt(x) END T."
  in
  let prog = lower src in
  let out = select prog prog.Ir.main_fid in
  let mem2 =
    count_ops
      (fun insn ->
        match insn with
        | I.Mov (I.Mem2 _, _) | I.Mov (_, I.Mem2 _) -> true
        | _ -> false)
      out
  in
  check Alcotest.bool "mem2 operands used" true (mem2 >= 1);
  (* And the program still runs correctly. *)
  let r = Driver.Compile.run_source ~options:{ Driver.Compile.default_options with checks = false } src in
  check Alcotest.string "output" "8" (String.trim r.Driver.Compile.output)

let test_defer_fold_restricted_vs_not () =
  let src = Programs.Indirect_src.src in
  let prog = lower ~checks:false src in
  let totals opts =
    Array.fold_left
      (fun (a, s) (f : Ir.func) ->
        let out = Codegen.Select.func ~prog opts ~global_addr:(fun g -> 100 + g)
            ~text_addr:(fun t -> 500 + t) f in
        (a + out.Codegen.Select.of_folds_applied, s + out.Codegen.Select.of_folds_suppressed))
      (0, 0) prog.Ir.funcs
  in
  let applied_r, suppressed_r = totals Codegen.Select.default_options in
  let applied_u, suppressed_u =
    totals { Codegen.Select.default_options with gc_restrict = false }
  in
  check Alcotest.bool "restricted suppresses some folds" true (suppressed_r > 0);
  check Alcotest.int "unrestricted suppresses none" 0 suppressed_u;
  check Alcotest.bool "unrestricted folds more" true (applied_u > applied_r)

(* ------------------------------------------------------------------ *)
(* Raw gc info at calls                                                *)
(* ------------------------------------------------------------------ *)

let gcinfo_of src fname =
  let prog = lower src in
  let out = select prog (func_named prog fname) in
  out.Codegen.Select.of_gcpoints

let test_gcinfo_ptr_local () =
  (* A pointer local live across a call appears as an FP-relative stack
     entry at that gc-point. *)
  let gps =
    gcinfo_of
      "MODULE T;\n\
       TYPE P = REF RECORD v: INTEGER END;\n\
       PROCEDURE Nop(); BEGIN END Nop;\n\
       PROCEDURE Go(): INTEGER;\n\
       VAR p: P;\n\
       BEGIN p := NEW(P); Nop(); RETURN p.v END Go;\n\
       BEGIN END T."
      "Go"
  in
  (* The Nop call site (second gc-point; the first is rt_alloc). *)
  check Alcotest.bool "two gc-points" true (List.length gps = 2);
  let nop_gp = List.nth gps 1 in
  let has_fp_entry =
    List.exists
      (function L.Lmem (L.FP, o) -> o < 0 | _ -> false)
      nop_gp.Codegen.Select.rg_stack_ptrs
  in
  check Alcotest.bool "frame slot in stack table" true has_fp_entry

let test_gcinfo_outgoing_ptr_arg () =
  (* A pointer passed by value appears as an AP-relative entry at the call. *)
  let gps =
    gcinfo_of
      "MODULE T;\n\
       TYPE P = REF RECORD v: INTEGER END;\n\
       PROCEDURE Use(q: P); BEGIN q.v := 1 END Use;\n\
       PROCEDURE Go();\n\
       VAR p: P;\n\
       BEGIN p := NEW(P); Use(p) END Go;\n\
       BEGIN END T."
      "Go"
  in
  let use_gp = List.nth gps 1 in
  let has_ap0 =
    List.exists
      (function L.Lmem (L.AP, 0) -> true | _ -> false)
      use_gp.Codegen.Select.rg_stack_ptrs
  in
  check Alcotest.bool "outgoing arg 0 in stack table (AP-relative)" true has_ap0

let test_gcinfo_derived_var_arg () =
  (* A VAR argument pointing into a heap object appears as a derivation
     entry targeting the AP slot, with a live base. *)
  let gps =
    gcinfo_of
      "MODULE T;\n\
       TYPE R = RECORD a, b: INTEGER END; P = REF R;\n\
       PROCEDURE Take(VAR x: INTEGER); BEGIN x := 1 END Take;\n\
       PROCEDURE Go();\n\
       VAR p: P;\n\
       BEGIN p := NEW(P); Take(p.b) END Go;\n\
       BEGIN END T."
      "Go"
  in
  let take_gp = List.nth gps 1 in
  let ap_deriv =
    List.find_opt
      (fun (d : Gcmaps.Rawmaps.deriv_entry) ->
        match d.Gcmaps.Rawmaps.target with L.Lmem (L.AP, 0) -> true | _ -> false)
      take_gp.Codegen.Select.rg_derivs
  in
  (match ap_deriv with
  | None -> Alcotest.fail "no derivation for the VAR argument slot"
  | Some d ->
      check Alcotest.bool "derivation has a base" true (d.Gcmaps.Rawmaps.plus <> []));
  (* The base itself must be traced at the same gc-point (dead-base rule):
     either a register in the register table or a stack slot. *)
  let base =
    match ap_deriv with
    | Some { Gcmaps.Rawmaps.plus = [ b ]; _ } -> b
    | _ -> Alcotest.fail "expected exactly one base"
  in
  let base_traced =
    match base with
    | L.Lreg r -> List.mem r take_gp.Codegen.Select.rg_reg_ptrs
    | L.Lmem _ -> List.mem base take_gp.Codegen.Select.rg_stack_ptrs
  in
  check Alcotest.bool "base is traced at the gc-point" true base_traced

let test_gcinfo_scalars_excluded () =
  (* Scalar locals never appear in the pointer tables. *)
  let gps =
    gcinfo_of
      "MODULE T;\n\
       PROCEDURE Nop(); BEGIN END Nop;\n\
       PROCEDURE Go(): INTEGER;\n\
       VAR x, y: INTEGER;\n\
       BEGIN x := 1; y := 2; Nop(); RETURN x + y END Go;\n\
       BEGIN END T."
      "Go"
  in
  List.iter
    (fun (gp : Codegen.Select.raw_gcpoint) ->
      check Alcotest.int "no stack pointers" 0 (List.length gp.Codegen.Select.rg_stack_ptrs);
      check Alcotest.int "no register pointers" 0 (List.length gp.Codegen.Select.rg_reg_ptrs))
    gps

let test_gcinfo_noalloc_callee_has_no_gcpoint () =
  let src =
    "MODULE T;\n\
     PROCEDURE Pure(x: INTEGER): INTEGER; BEGIN RETURN x END Pure;\n\
     PROCEDURE Go(): INTEGER; BEGIN RETURN Pure(3) END Go;\n\
     BEGIN END T."
  in
  let prog = lower src in
  let noalloc = Opt.Noalloc.analyze prog in
  let out =
    select ~opts:{ Codegen.Select.default_options with noalloc } prog
      (func_named prog "Go")
  in
  check Alcotest.int "no gc-points in Go" 0 (List.length out.Codegen.Select.of_gcpoints)

let () =
  Alcotest.run "codegen"
    [
      ( "frame",
        [
          Alcotest.test_case "layout" `Quick test_frame_layout;
          Alcotest.test_case "word order" `Quick test_frame_word_order;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "callee-saved across calls" `Quick
            test_callee_saved_across_calls;
          Alcotest.test_case "spilling" `Quick test_spill_when_pressured;
        ] );
      ( "folds",
        [
          Alcotest.test_case "mem2 double indexing" `Quick test_mem2_fold;
          Alcotest.test_case "defer restricted vs not" `Quick
            test_defer_fold_restricted_vs_not;
        ] );
      ( "gcinfo",
        [
          Alcotest.test_case "pointer local" `Quick test_gcinfo_ptr_local;
          Alcotest.test_case "outgoing pointer arg" `Quick test_gcinfo_outgoing_ptr_arg;
          Alcotest.test_case "derived VAR arg + dead-base" `Quick
            test_gcinfo_derived_var_arg;
          Alcotest.test_case "scalars excluded" `Quick test_gcinfo_scalars_excluded;
          Alcotest.test_case "noalloc callee" `Quick test_gcinfo_noalloc_callee_has_no_gcpoint;
        ] );
    ]
