(* Lexer, parser and typechecker tests. *)

let check = Alcotest.check

let toks src = List.map fst (M3l.Lexer.tokenize src)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lex_basics () =
  check Alcotest.int "count includes EOF" 6 (List.length (toks "x := 1 + y"));
  match toks "x := 1" with
  | [ M3l.Token.IDENT "x"; M3l.Token.ASSIGN; M3l.Token.INT_LIT 1; M3l.Token.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_keywords () =
  match toks "MODULE WHILE Module" with
  | [ M3l.Token.MODULE; M3l.Token.WHILE; M3l.Token.IDENT "Module"; M3l.Token.EOF ] -> ()
  | _ -> Alcotest.fail "keywords are case-sensitive uppercase"

let test_lex_operators () =
  match toks ":= <= >= < > = # .. . ^" with
  | [
   M3l.Token.ASSIGN;
   M3l.Token.LE;
   M3l.Token.GE;
   M3l.Token.LT;
   M3l.Token.GT;
   M3l.Token.EQ;
   M3l.Token.NEQ;
   M3l.Token.DOTDOT;
   M3l.Token.DOT;
   M3l.Token.CARET;
   M3l.Token.EOF;
  ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lex_literals () =
  (match toks "'a' '\\n' \"hi\\tthere\"" with
  | [ M3l.Token.CHAR_LIT 'a'; M3l.Token.CHAR_LIT '\n'; M3l.Token.STR_LIT "hi\tthere"; M3l.Token.EOF ]
    -> ()
  | _ -> Alcotest.fail "literal lexing");
  match toks "12345" with
  | [ M3l.Token.INT_LIT 12345; M3l.Token.EOF ] -> ()
  | _ -> Alcotest.fail "int literal"

let test_lex_comments () =
  (match toks "a (* comment (* nested *) still *) b" with
  | [ M3l.Token.IDENT "a"; M3l.Token.IDENT "b"; M3l.Token.EOF ] -> ()
  | _ -> Alcotest.fail "nested comments");
  match M3l.Lexer.tokenize "(* unterminated" with
  | exception M3l.M3l_error.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_lex_positions () =
  let t = M3l.Lexer.tokenize "a\n  b" in
  match t with
  | [ (_, p1); (_, p2); _ ] ->
      check Alcotest.int "line a" 1 p1.M3l.Srcloc.line;
      check Alcotest.int "line b" 2 p2.M3l.Srcloc.line;
      check Alcotest.int "col b" 3 p2.M3l.Srcloc.col
  | _ -> Alcotest.fail "token count"

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parse = M3l.Parser.parse

let wrap body = Printf.sprintf "MODULE T;\nBEGIN\n%s\nEND T.\n" body

let test_parse_module () =
  let cu = parse "MODULE Empty; END Empty." in
  check Alcotest.string "name" "Empty" cu.M3l.Ast.module_name;
  check Alcotest.int "no decls" 0 (List.length cu.M3l.Ast.decls);
  check Alcotest.int "no body" 0 (List.length cu.M3l.Ast.main)

let test_parse_mismatched_end () =
  match parse "MODULE A; END B." with
  | exception M3l.M3l_error.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

let test_parse_precedence () =
  (* a + b * c parses as a + (b * c); comparisons bind tighter than AND/OR. *)
  let cu = parse (wrap "x := a + b * c") in
  (match cu.M3l.Ast.main with
  | [ M3l.Ast.Assign (_, M3l.Ast.Binop (M3l.Ast.Add, _, M3l.Ast.Binop (M3l.Ast.Mul, _, _, _), _), _) ]
    -> ()
  | _ -> Alcotest.fail "mul binds tighter than add");
  let cu = parse (wrap "x := a < b AND c > d") in
  match cu.M3l.Ast.main with
  | [ M3l.Ast.Assign (_, M3l.Ast.Binop (M3l.Ast.And, _, _, _), _) ] -> ()
  | _ -> Alcotest.fail "AND is lower than comparisons"

let test_parse_statements () =
  let cu =
    parse
      (wrap
         "IF a THEN x := 1 ELSIF b THEN x := 2 ELSE x := 3 END;\n\
          WHILE c DO x := x + 1 END;\n\
          FOR i := 1 TO 10 BY 2 DO x := i END;\n\
          RETURN;\n\
          WITH y = x DO x := y END")
  in
  check Alcotest.int "five statements" 5 (List.length cu.M3l.Ast.main)

let test_parse_types () =
  let cu =
    parse
      "MODULE T;\n\
       TYPE R = RECORD a, b: INTEGER; c: REF R END;\n\
      \     A = ARRAY [1..10] OF INTEGER;\n\
      \     V = REF ARRAY OF CHAR;\n\
       VAR x: R; v: V;\n\
       END T."
  in
  check Alcotest.int "decls" 5 (List.length cu.M3l.Ast.decls)

let test_parse_procs () =
  let cu =
    parse
      "MODULE T;\n\
       PROCEDURE F(x: INTEGER; VAR y: INTEGER): INTEGER;\n\
       VAR t: INTEGER;\n\
       BEGIN RETURN x + t END F;\n\
       END T."
  in
  match cu.M3l.Ast.decls with
  | [ M3l.Ast.Proc_decl p ] ->
      check Alcotest.int "params" 2 (List.length p.M3l.Ast.params);
      check Alcotest.bool "var param" true
        (List.exists (fun (pr : M3l.Ast.param) -> pr.M3l.Ast.p_var) p.M3l.Ast.params)
  | _ -> Alcotest.fail "proc decl"

(* ------------------------------------------------------------------ *)
(* Typechecker                                                         *)
(* ------------------------------------------------------------------ *)

let accepts src =
  match M3l.Typecheck.check_source src with
  | _ -> ()
  | exception M3l.M3l_error.Type_error (loc, m) ->
      Alcotest.failf "expected to typecheck, got %s: %s" (M3l.Srcloc.to_string loc) m

let rejects src =
  match M3l.Typecheck.check_source src with
  | exception M3l.M3l_error.Type_error _ -> ()
  | _ -> Alcotest.fail "expected a type error"

let test_tc_basics () =
  accepts "MODULE T; VAR x: INTEGER; BEGIN x := 1 + 2 * 3 END T.";
  rejects "MODULE T; VAR x: INTEGER; BEGIN x := TRUE END T.";
  rejects "MODULE T; VAR x: BOOLEAN; BEGIN x := 1 END T.";
  rejects "MODULE T; BEGIN y := 1 END T."

let test_tc_recursive_types () =
  accepts
    "MODULE T; TYPE Node = RECORD v: INTEGER; next: List END; List = REF Node;\n\
     VAR l: List; BEGIN l := NIL END T.";
  (* Self-embedding without REF is illegal. *)
  rejects "MODULE T; TYPE R = RECORD x: R END; VAR r: R; BEGIN END T.";
  (* Mutual recursion entirely through REF is fine. *)
  accepts
    "MODULE T; TYPE A = RECORD b: RB END; RB = REF B; B = RECORD a: RA END; RA = REF A;\n\
     VAR a: A; BEGIN END T."

let test_tc_nil_and_refs () =
  accepts "MODULE T; TYPE L = REF INTEGER; VAR l: L; BEGIN l := NIL END T.";
  rejects "MODULE T; VAR x: INTEGER; BEGIN x := NIL END T.";
  accepts
    "MODULE T; TYPE L = REF INTEGER; VAR a, b: L; f: BOOLEAN; BEGIN f := a = b; f := a # NIL END T.";
  (* Comparing refs of different types is rejected. *)
  rejects
    "MODULE T; TYPE A = REF INTEGER; B = REF BOOLEAN; VAR a: A; b: B; f: BOOLEAN;\n\
     BEGIN f := a = b END T."

let test_tc_arrays () =
  accepts
    "MODULE T; VAR a: ARRAY [3..7] OF INTEGER; x: INTEGER; BEGIN a[3] := 1; x := a[7] END T.";
  rejects "MODULE T; VAR a: ARRAY [3..7] OF INTEGER; BEGIN a[TRUE] := 1 END T.";
  accepts
    "MODULE T; TYPE V = REF ARRAY OF INTEGER; VAR v: V; x: INTEGER;\n\
     BEGIN v := NEW(V, 10); v[0] := 5; x := NUMBER(v) END T.";
  (* Open arrays may not be declared outside REF. *)
  rejects "MODULE T; VAR a: ARRAY OF INTEGER; BEGIN END T.";
  (* NEW of an open array needs a length; fixed NEW must not get one. *)
  rejects "MODULE T; TYPE V = REF ARRAY OF INTEGER; VAR v: V; BEGIN v := NEW(V) END T.";
  rejects "MODULE T; TYPE P = REF INTEGER; VAR p: P; BEGIN p := NEW(P, 3) END T."

let test_tc_procedures () =
  accepts
    "MODULE T;\n\
     PROCEDURE Inc(VAR x: INTEGER; by: INTEGER); BEGIN x := x + by END Inc;\n\
     VAR v: INTEGER; BEGIN Inc(v, 2) END T.";
  (* VAR argument must be a designator. *)
  rejects
    "MODULE T;\n\
     PROCEDURE Inc(VAR x: INTEGER); BEGIN x := x + 1 END Inc;\n\
     BEGIN Inc(1 + 2) END T.";
  (* Wrong arity. *)
  rejects
    "MODULE T; PROCEDURE F(x: INTEGER); BEGIN END F; BEGIN F() END T.";
  (* Using a proper procedure as an expression. *)
  rejects
    "MODULE T; PROCEDURE F(); BEGIN END F; VAR x: INTEGER; BEGIN x := F() END T.";
  (* Return type mismatches. *)
  rejects
    "MODULE T; PROCEDURE F(): INTEGER; BEGIN RETURN TRUE END F; BEGIN END T.";
  rejects "MODULE T; PROCEDURE F(); BEGIN RETURN 1 END F; BEGIN END T."

let test_tc_intrinsics () =
  accepts
    "MODULE T; VAR x: INTEGER; c: CHAR;\n\
     BEGIN x := ORD('a'); c := CHR(65); x := ABS(-3); x := MIN(1,2); x := MAX(3,4) END T.";
  accepts
    "MODULE T; VAR a: ARRAY [2..9] OF INTEGER; x: INTEGER;\n\
     BEGIN x := NUMBER(a) + FIRST(a) + LAST(a) END T.";
  rejects "MODULE T; VAR x: INTEGER; BEGIN x := CHR(TRUE) END T."

let test_tc_with () =
  accepts
    "MODULE T; TYPE R = RECORD f: INTEGER END; P = REF R; VAR p: P;\n\
     BEGIN p := NEW(P); WITH x = p.f DO x := 3 END END T.";
  (* WITH over a non-designator binds a value; assigning to it is a plain
     local store (allowed). Non-scalar value bindings are rejected. *)
  accepts "MODULE T; VAR y: INTEGER; BEGIN WITH x = y + 1 DO y := x END END T."

let test_tc_builtin_io () =
  accepts
    "MODULE T; BEGIN PutInt(1); PutChar('x'); PutText(\"hi\"); PutLn(); Halt() END T.";
  rejects "MODULE T; BEGIN PutInt(TRUE) END T.";
  rejects "MODULE T; BEGIN PutText(42) END T."

let test_tc_assign_aggregates () =
  (* Whole-record and whole-array assignment are not supported. *)
  rejects
    "MODULE T; TYPE R = RECORD x: INTEGER END; VAR a, b: R; BEGIN a := b END T."

let test_tc_duplicates () =
  rejects "MODULE T; TYPE A = INTEGER; A = BOOLEAN; BEGIN END T.";
  rejects "MODULE T; VAR x: INTEGER; x: BOOLEAN; BEGIN END T.";
  rejects
    "MODULE T; PROCEDURE F(); BEGIN END F; PROCEDURE F(); BEGIN END F; BEGIN END T."

let () =
  Alcotest.run "frontend"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "keywords" `Quick test_lex_keywords;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "positions" `Quick test_lex_positions;
        ] );
      ( "parser",
        [
          Alcotest.test_case "module" `Quick test_parse_module;
          Alcotest.test_case "mismatched END" `Quick test_parse_mismatched_end;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "statements" `Quick test_parse_statements;
          Alcotest.test_case "types" `Quick test_parse_types;
          Alcotest.test_case "procedures" `Quick test_parse_procs;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "basics" `Quick test_tc_basics;
          Alcotest.test_case "recursive types" `Quick test_tc_recursive_types;
          Alcotest.test_case "NIL and refs" `Quick test_tc_nil_and_refs;
          Alcotest.test_case "arrays" `Quick test_tc_arrays;
          Alcotest.test_case "procedures" `Quick test_tc_procedures;
          Alcotest.test_case "intrinsics" `Quick test_tc_intrinsics;
          Alcotest.test_case "WITH" `Quick test_tc_with;
          Alcotest.test_case "builtin IO" `Quick test_tc_builtin_io;
          Alcotest.test_case "aggregate assignment" `Quick test_tc_assign_aggregates;
          Alcotest.test_case "duplicates" `Quick test_tc_duplicates;
        ] );
    ]
