test/test_support.ml: Alcotest Array Bitset Buffer Bytes Growarr List Printf Prng QCheck QCheck_alcotest Support Varint
