test/test_programs.ml: Alcotest Array Driver Gcmaps List Machine Printf Programs String Vm
