test/test_toys.ml: Alcotest Driver List Printf
