test/test_toys.mli:
