test/test_codegen.ml: Alcotest Array Codegen Driver Gcmaps List M3l Machine Mir Opt Printf Programs String Support
