test/test_frontend.ml: Alcotest List M3l Printf
