test/test_opt.ml: Alcotest Array Driver Gcmaps Lazy List Mir Opt Programs String Support Vm
