test/test_tables.ml: Alcotest Bytes Gcmaps List Printf QCheck QCheck_alcotest Support
