test/test_vm.ml: Alcotest Array Driver Encode_insn Insn List Machine Printf String Vm
