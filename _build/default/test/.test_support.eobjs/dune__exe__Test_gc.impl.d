test/test_gc.ml: Alcotest Array Driver Gc Gcmaps List Option Printf Programs Vm
