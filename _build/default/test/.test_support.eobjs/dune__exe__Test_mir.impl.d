test/test_mir.ml: Alcotest Array List M3l Mir Printf Support
