test/test_random.ml: Alcotest Array Buffer Driver List Printf QCheck QCheck_alcotest
