(* A broader set of real programs — classic small algorithms — each run
   under the full configuration matrix (optimizer on/off, checks on/off,
   big and tiny heaps, both collectors). These give the language and both
   collectors wide structural coverage beyond the paper's benchmarks. *)

let check = Alcotest.check

let run ?(collector = Driver.Compile.Precise) ?(optimize = false) ?(checks = true)
    ?(heap = 65536) src =
  let options =
    { Driver.Compile.default_options with optimize; checks; heap_words = heap }
  in
  Driver.Compile.run_source ~options ~collector src

let matrix name src expected ~small =
  List.iter
    (fun (tag, optimize, checks, heap, collector) ->
      let r = run ~optimize ~checks ~heap ~collector src in
      check Alcotest.string (Printf.sprintf "%s/%s" name tag) expected
        r.Driver.Compile.output)
    [
      ("plain", false, true, 65536, Driver.Compile.Precise);
      ("opt", true, true, 65536, Driver.Compile.Precise);
      ("small", false, true, small, Driver.Compile.Precise);
      ("opt-small", true, true, small, Driver.Compile.Precise);
      ("opt-small-nochk", true, false, small, Driver.Compile.Precise);
      ("conservative", false, true, small * 3, Driver.Compile.Conservative);
    ]

(* Sieve of Eratosthenes over an open boolean array. *)
let sieve =
  "MODULE Sieve;\n\
   TYPE Bits = REF ARRAY OF BOOLEAN;\n\
   VAR isComposite: Bits; i, j, count: INTEGER;\n\
   BEGIN\n\
   isComposite := NEW(Bits, 50);\n\
   count := 0;\n\
   FOR i := 2 TO 49 DO\n\
   \  IF NOT isComposite[i] THEN\n\
   \    count := count + 1;\n\
   \    j := i * i;\n\
   \    WHILE j < 50 DO isComposite[j] := TRUE; j := j + i END\n\
   \  END\n\
   END;\n\
   PutInt(count); PutLn()\n\
   END Sieve.\n"

let test_sieve () = matrix "sieve" sieve "15\n" ~small:200

(* N-queens with a heap-allocated board, counting solutions. *)
let queens =
  "MODULE Queens;\n\
   TYPE Board = REF ARRAY OF INTEGER;\n\
   VAR solutions: INTEGER; board: Board;\n\
   PROCEDURE Safe(row, col: INTEGER): BOOLEAN;\n\
   VAR r: INTEGER;\n\
   BEGIN\n\
   FOR r := 0 TO row - 1 DO\n\
   \  IF board[r] = col THEN RETURN FALSE END;\n\
   \  IF ABS(board[r] - col) = row - r THEN RETURN FALSE END\n\
   END;\n\
   RETURN TRUE\n\
   END Safe;\n\
   PROCEDURE Place(row, n: INTEGER);\n\
   VAR c: INTEGER;\n\
   BEGIN\n\
   IF row = n THEN solutions := solutions + 1; RETURN END;\n\
   FOR c := 0 TO n - 1 DO\n\
   \  IF Safe(row, c) THEN board[row] := c; Place(row + 1, n) END\n\
   END\n\
   END Place;\n\
   BEGIN\n\
   board := NEW(Board, 6);\n\
   solutions := 0;\n\
   Place(0, 6);\n\
   PutInt(solutions); PutLn()\n\
   END Queens.\n"

let test_queens () = matrix "queens" queens "4\n" ~small:150

(* Binary search tree: insert a shuffled sequence, verify the in-order
   traversal is sorted and complete; allocation-heavy. *)
let bst =
  "MODULE Bst;\n\
   TYPE NodeRec = RECORD key: INTEGER; left, right: Tree END;\n\
   Tree = REF NodeRec;\n\
   VAR root: Tree; i, prev, ok, count: INTEGER;\n\
   PROCEDURE Insert(t: Tree; key: INTEGER): Tree;\n\
   VAR n: Tree;\n\
   BEGIN\n\
   IF t = NIL THEN\n\
   \  n := NEW(Tree); n.key := key; RETURN n\n\
   END;\n\
   IF key < t.key THEN t.left := Insert(t.left, key)\n\
   ELSIF key > t.key THEN t.right := Insert(t.right, key)\n\
   END;\n\
   RETURN t\n\
   END Insert;\n\
   PROCEDURE Walk(t: Tree);\n\
   BEGIN\n\
   IF t = NIL THEN RETURN END;\n\
   Walk(t.left);\n\
   IF t.key <= prev THEN ok := 0 END;\n\
   prev := t.key;\n\
   count := count + 1;\n\
   Walk(t.right)\n\
   END Walk;\n\
   BEGIN\n\
   root := NIL;\n\
   FOR i := 1 TO 100 DO\n\
   \  root := Insert(root, (i * 37) MOD 101)\n\
   END;\n\
   prev := -1; ok := 1; count := 0;\n\
   Walk(root);\n\
   PutInt(ok); PutChar(' '); PutInt(count); PutLn()\n\
   END Bst.\n"

let test_bst () = matrix "bst" bst "1 100\n" ~small:600

(* String manipulation over TEXT: reverse and palindrome check. *)
let strings =
  "MODULE Strings;\n\
   VAR t, r: TEXT; i, n: INTEGER; pal: BOOLEAN;\n\
   PROCEDURE Reverse(s: TEXT): TEXT;\n\
   VAR out: TEXT; k, len: INTEGER;\n\
   BEGIN\n\
   len := NUMBER(s);\n\
   out := NEW(TEXT, len);\n\
   FOR k := 0 TO len - 1 DO out[k] := s[len - 1 - k] END;\n\
   RETURN out\n\
   END Reverse;\n\
   PROCEDURE Equal(a, b: TEXT): BOOLEAN;\n\
   VAR k: INTEGER;\n\
   BEGIN\n\
   IF NUMBER(a) # NUMBER(b) THEN RETURN FALSE END;\n\
   FOR k := 0 TO NUMBER(a) - 1 DO\n\
   \  IF a[k] # b[k] THEN RETURN FALSE END\n\
   END;\n\
   RETURN TRUE\n\
   END Equal;\n\
   BEGIN\n\
   t := \"stressed\";\n\
   r := Reverse(t);\n\
   PutText(r); PutChar(' ');\n\
   pal := Equal(\"racecar\", Reverse(\"racecar\"));\n\
   IF pal THEN PutText(\"yes\") ELSE PutText(\"no\") END;\n\
   PutLn();\n\
   (* churn: many transient reversals *)\n\
   n := 0;\n\
   FOR i := 1 TO 60 DO\n\
   \  n := n + NUMBER(Reverse(\"abcdefghij\"))\n\
   END;\n\
   PutInt(n); PutLn()\n\
   END Strings.\n"

let test_strings () = matrix "strings" strings "desserts yes\n600\n" ~small:200

(* 2-D matrix multiply through REF ARRAY OF REF ARRAY (rows are separate
   heap objects — pointer-rich data). *)
let matmul =
  "MODULE Matmul;\n\
   TYPE Row = REF ARRAY OF INTEGER; Mat = REF ARRAY OF Row;\n\
   VAR a, b, c: Mat; i, j, k, n, sum: INTEGER;\n\
   PROCEDURE MkMat(n: INTEGER): Mat;\n\
   VAR m: Mat; i: INTEGER;\n\
   BEGIN\n\
   m := NEW(Mat, n);\n\
   FOR i := 0 TO n - 1 DO m[i] := NEW(Row, n) END;\n\
   RETURN m\n\
   END MkMat;\n\
   BEGIN\n\
   n := 6;\n\
   a := MkMat(n); b := MkMat(n); c := MkMat(n);\n\
   FOR i := 0 TO n - 1 DO\n\
   \  FOR j := 0 TO n - 1 DO\n\
   \    a[i][j] := i + j;\n\
   \    b[i][j] := i - j\n\
   \  END\n\
   END;\n\
   FOR i := 0 TO n - 1 DO\n\
   \  FOR j := 0 TO n - 1 DO\n\
   \    c[i][j] := 0;\n\
   \    FOR k := 0 TO n - 1 DO\n\
   \      c[i][j] := c[i][j] + a[i][k] * b[k][j]\n\
   \    END\n\
   \  END\n\
   END;\n\
   sum := 0;\n\
   FOR i := 0 TO n - 1 DO\n\
   \  FOR j := 0 TO n - 1 DO sum := sum + c[i][j] END\n\
   END;\n\
   PutInt(sum); PutLn()\n\
   END Matmul.\n"

let test_matmul () =
  (* compute expected: sum over i,j,k of (i+k)(k-j) for n=6 *)
  let n = 6 in
  let expected = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      for k = 0 to n - 1 do
        expected := !expected + ((i + k) * (k - j))
      done
    done
  done;
  matrix "matmul" matmul (Printf.sprintf "%d\n" !expected) ~small:300

(* Ackermann (small): deep recursion, no allocation in the hot path;
   collections triggered only by the surrounding churn. *)
let ack =
  "MODULE Ack;\n\
   TYPE L = REF RECORD v: INTEGER END;\n\
   VAR r, i: INTEGER; junk: L;\n\
   PROCEDURE A(m, n: INTEGER): INTEGER;\n\
   BEGIN\n\
   IF m = 0 THEN RETURN n + 1 END;\n\
   IF n = 0 THEN RETURN A(m - 1, 1) END;\n\
   RETURN A(m - 1, A(m, n - 1))\n\
   END A;\n\
   BEGIN\n\
   FOR i := 1 TO 30 DO junk := NEW(L); junk.v := i END;\n\
   r := A(2, 3);\n\
   PutInt(r); PutLn()\n\
   END Ack.\n"

let test_ack () = matrix "ackermann" ack "9\n" ~small:100

let () =
  Alcotest.run "toys"
    [
      ( "programs",
        [
          Alcotest.test_case "sieve" `Quick test_sieve;
          Alcotest.test_case "n-queens" `Quick test_queens;
          Alcotest.test_case "binary search tree" `Quick test_bst;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "matrix multiply" `Quick test_matmul;
          Alcotest.test_case "ackermann" `Quick test_ack;
        ] );
    ]
