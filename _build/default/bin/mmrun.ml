(* mmrun — compile and execute an M3L program on the UVM.

     mmrun file.m3l
     mmrun -O --heap 4096 --collector conservative file.m3l
     mmrun --gc-stats file.m3l *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run file optimize checks heap stack collector gc_stats fuel =
  let options =
    {
      Driver.Compile.default_options with
      optimize;
      checks;
      heap_words = heap;
      stack_words = stack;
    }
  in
  let collector =
    match collector with
    | "precise" -> Driver.Compile.Precise
    | "conservative" -> Driver.Compile.Conservative
    | "none" -> Driver.Compile.No_gc
    | other -> failwith ("unknown collector " ^ other)
  in
  try
    let r = Driver.Compile.run_source ~options ~collector ~fuel (read_file file) in
    print_string r.Driver.Compile.output;
    if gc_stats then begin
      Printf.eprintf "instructions : %d\n" r.Driver.Compile.instructions;
      Printf.eprintf "allocations  : %d (%d words)\n" r.Driver.Compile.allocations
        r.Driver.Compile.alloc_words;
      Printf.eprintf "collections  : %d\n" r.Driver.Compile.collections;
      Printf.eprintf "words copied : %d\n" r.Driver.Compile.gc.Vm.Interp.words_copied;
      Printf.eprintf "frames traced: %d\n" r.Driver.Compile.gc.Vm.Interp.frames_traced;
      Printf.eprintf "gc time      : %.0f us (stack tracing %.0f us)\n"
        (Int64.to_float r.Driver.Compile.gc.Vm.Interp.total_gc_ns /. 1e3)
        (Int64.to_float r.Driver.Compile.gc.Vm.Interp.trace_ns /. 1e3)
    end;
    `Ok ()
  with
  | M3l.M3l_error.Lex_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: lexical error: %s" (M3l.Srcloc.to_string loc) m)
  | M3l.M3l_error.Parse_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: parse error: %s" (M3l.Srcloc.to_string loc) m)
  | M3l.M3l_error.Type_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: type error: %s" (M3l.Srcloc.to_string loc) m)
  | Vm.Interp.Guest_error m -> `Error (false, "runtime error: " ^ m)
  | Vm.Vm_error.Error m -> `Error (false, "vm error: " ^ m)
  | Sys_error m -> `Error (false, m)

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let optimize = Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the optimizer.")
let checks = Arg.(value & opt bool true & info [ "checks" ] ~doc:"NIL/bounds checks.")
let heap =
  Arg.(value & opt int 65536 & info [ "heap" ] ~doc:"Words per semispace.")
let stack = Arg.(value & opt int 16384 & info [ "stack" ] ~doc:"Stack words.")
let collector =
  Arg.(
    value
    & opt string "precise"
    & info [ "collector" ] ~doc:"precise | conservative | none.")
let gc_stats = Arg.(value & flag & info [ "gc-stats" ] ~doc:"Report gc statistics.")
let fuel =
  Arg.(value & opt int 1_000_000_000 & info [ "fuel" ] ~doc:"Instruction budget.")

let cmd =
  let doc = "run M3L programs under the table-driven compacting collector" in
  Cmd.v
    (Cmd.info "mmrun" ~doc)
    Term.(
      ret (const run $ file $ optimize $ checks $ heap $ stack $ collector $ gc_stats $ fuel))

let () = exit (Cmd.eval cmd)
