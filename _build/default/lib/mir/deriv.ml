(** Compiler-side derivation metadata.

    A {e derived value} (paper §2) is any value created by pointer
    arithmetic; a {e base value} is any value participating in the
    derivation. We track deriving expressions of the shape the paper
    handles:

    {v a  =  Σᵢ pᵢ  −  Σⱼ qⱼ  +  E v}

    where the [pᵢ]/[qⱼ] are pointers or derived values held in temps or
    locals and [E] involves neither. Only the bases are recorded; [E] never
    needs to be known because + and − are invertible (paper §3). *)

type base = Btemp of int | Blocal of int

type t = { plus : base list; minus : base list }

let empty = { plus = []; minus = [] }
let is_empty d = d.plus = [] && d.minus = []
let of_base b = { plus = [ b ]; minus = [] }

(** Remove pairs that appear on both sides: [±M\[x\]] cancels exactly. *)
let normalize d =
  let rec cancel plus minus acc_plus =
    match plus with
    | [] -> (List.rev acc_plus, minus)
    | p :: rest ->
        if List.mem p minus then
          (* remove one occurrence of p from minus *)
          let rec remove_one = function
            | [] -> []
            | q :: qs -> if q = p then qs else q :: remove_one qs
          in
          cancel rest (remove_one minus) acc_plus
        else cancel rest minus (p :: acc_plus)
  in
  let plus, minus = cancel d.plus d.minus [] in
  { plus; minus }

let add a b = normalize { plus = a.plus @ b.plus; minus = a.minus @ b.minus }
let sub a b = normalize { plus = a.plus @ b.minus; minus = a.minus @ b.plus }
let neg a = { plus = a.minus; minus = a.plus }

let bases d = d.plus @ d.minus

let equal a b =
  let sort = List.sort compare in
  sort a.plus = sort b.plus && sort a.minus = sort b.minus

let pp_base fmt = function
  | Btemp t -> Format.fprintf fmt "t%d" t
  | Blocal l -> Format.fprintf fmt "l%d" l

let pp fmt d =
  List.iter (fun b -> Format.fprintf fmt "+%a" pp_base b) d.plus;
  List.iter (fun b -> Format.fprintf fmt "-%a" pp_base b) d.minus
