(** Backward liveness over temps and frame locals, including the paper's
    {e dead base} rule (§4): a use of a derived value is treated as a use of
    each of its base values, transitively, so that bases outlive everything
    derived from them and the collector can always update derived values.

    Address-taken locals and embedded aggregates are conservatively live
    everywhere (their slots are reachable through stored addresses, and
    frames are zeroed on entry so this is sound). *)

type t

val compute : Ir.func -> t

val block_live_out : t -> int -> Support.Bitset.t * Support.Bitset.t
(** [(temps, locals)] live at the end of a block. *)

val block_live_in : t -> int -> Support.Bitset.t * Support.Bitset.t
(** [(temps, locals)] live at the start of a block. *)

val per_instr_live_out : t -> int -> (Support.Bitset.t * Support.Bitset.t) array
(** For block [b] with instructions [i0..in-1], element [i] is the pair of
    live sets immediately {e after} instruction [i] (before the next one).
    Computed on demand; arrays are fresh. *)

val live_at_gcpoint :
  t -> int -> int -> Support.Bitset.t * Support.Bitset.t
(** [live_at_gcpoint t b i] is the live (temps, locals) during the call at
    instruction [i] of block [b]: live-out of the call minus the call's own
    result temp. *)

val close_uses : Ir.func -> Support.Bitset.t -> Support.Bitset.t -> unit
(** In-place transitive closure of the dead-base rule over a (temps, locals)
    pair of live sets. *)
