open Support

type t = {
  f : Ir.func;
  temp_in : Bitset.t array;
  temp_out : Bitset.t array;
  local_in : Bitset.t array;
  local_out : Bitset.t array;
  always_locals : Bitset.t;
}

let deriv_bases_into (d : Deriv.t) temps locals =
  List.iter
    (fun b ->
      match b with
      | Deriv.Btemp t -> Bitset.set temps t
      | Deriv.Blocal l -> Bitset.set locals l)
    (Deriv.bases d)

(* Transitive closure of the dead-base rule. *)
let close_uses (f : Ir.func) temps locals =
  let changed = ref true in
  while !changed do
    changed := false;
    let tc = Bitset.count temps and lc = Bitset.count locals in
    Bitset.iter
      (fun t ->
        match Ir.temp_kind f t with
        | Ir.Kderived d -> deriv_bases_into d temps locals
        | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> ())
      temps;
    Bitset.iter
      (fun l ->
        match f.Ir.locals.(l).Ir.l_slot with
        | Ir.Sderived d -> deriv_bases_into d temps locals
        | Ir.Sambig a ->
            Bitset.set locals a.Ir.path_local;
            List.iter (fun (_, d) -> deriv_bases_into d temps locals) a.Ir.cases
        | Ir.Sscalar | Ir.Sptr | Ir.Saddr | Ir.Saggregate _ -> ())
      locals;
    if Bitset.count temps <> tc || Bitset.count locals <> lc then changed := true
  done

let instr_transfer f instr temps locals =
  (* Backward: kill defs, then gen uses, then close. *)
  (match Ir.instr_def instr with Some d -> Bitset.clear temps d | None -> ());
  (match instr with
  | Ir.St_local (l, 0, _) when f.Ir.locals.(l).Ir.l_size = 1 -> Bitset.clear locals l
  | _ -> ());
  List.iter
    (function Ir.Otemp t -> Bitset.set temps t | Ir.Oimm _ -> ())
    (Ir.instr_uses instr);
  List.iter (fun l -> Bitset.set locals l) (Ir.instr_local_reads instr);
  close_uses f temps locals

let term_transfer f term temps locals =
  List.iter
    (function Ir.Otemp t -> Bitset.set temps t | Ir.Oimm _ -> ())
    (Ir.term_uses term);
  close_uses f temps locals

let compute (f : Ir.func) : t =
  let nb = Array.length f.Ir.blocks in
  let nt = f.Ir.ntemps in
  let nl = Array.length f.Ir.locals in
  let always = Bitset.create nl in
  Array.iteri
    (fun l (info : Ir.local_info) ->
      let aggregate =
        match info.Ir.l_slot with
        | Ir.Saggregate _ -> true
        | Ir.Sscalar | Ir.Sptr | Ir.Saddr | Ir.Sderived _ | Ir.Sambig _ ->
            info.Ir.l_size > 1
      in
      if info.Ir.l_addr_taken || aggregate then Bitset.set always l)
    f.Ir.locals;
  let temp_in = Array.init nb (fun _ -> Bitset.create nt) in
  let temp_out = Array.init nb (fun _ -> Bitset.create nt) in
  let local_in = Array.init nb (fun _ -> Bitset.create nl) in
  let local_out = Array.init nb (fun _ -> Bitset.create nl) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      let blk = f.Ir.blocks.(b) in
      let t_out = Bitset.create nt and l_out = Bitset.create nl in
      List.iter
        (fun s ->
          Bitset.union_into ~dst:t_out temp_in.(s);
          Bitset.union_into ~dst:l_out local_in.(s))
        (Ir.term_succs blk.Ir.term);
      let t = Bitset.copy t_out and l = Bitset.copy l_out in
      term_transfer f blk.Ir.term t l;
      List.iter (fun i -> instr_transfer f i t l) (List.rev blk.Ir.instrs);
      if
        (not (Bitset.equal t temp_in.(b)))
        || (not (Bitset.equal l local_in.(b)))
        || (not (Bitset.equal t_out temp_out.(b)))
        || not (Bitset.equal l_out local_out.(b))
      then begin
        changed := true;
        temp_in.(b) <- t;
        local_in.(b) <- l;
        temp_out.(b) <- t_out;
        local_out.(b) <- l_out
      end
    done
  done;
  (* Fold the always-live locals in. *)
  Array.iter (fun s -> Bitset.union_into ~dst:s always) local_in;
  Array.iter (fun s -> Bitset.union_into ~dst:s always) local_out;
  { f; temp_in; temp_out; local_in; local_out; always_locals = always }

let block_live_out t b = (t.temp_out.(b), t.local_out.(b))
let block_live_in t b = (t.temp_in.(b), t.local_in.(b))

let per_instr_live_out t b =
  let blk = t.f.Ir.blocks.(b) in
  let instrs = Array.of_list blk.Ir.instrs in
  let n = Array.length instrs in
  let result = Array.make n (Bitset.create 0, Bitset.create 0) in
  let temps = Bitset.copy t.temp_out.(b) in
  let locals = Bitset.copy t.local_out.(b) in
  term_transfer t.f blk.Ir.term temps locals;
  (* live-out of instr n-1 is live-in of the terminator. *)
  for i = n - 1 downto 0 do
    Bitset.union_into ~dst:locals t.always_locals;
    result.(i) <- (Bitset.copy temps, Bitset.copy locals);
    instr_transfer t.f instrs.(i) temps locals
  done;
  result

let live_at_gcpoint t b i =
  let per = per_instr_live_out t b in
  if i < 0 || i >= Array.length per then invalid_arg "Liveness.live_at_gcpoint";
  let temps, locals = per.(i) in
  let blk = t.f.Ir.blocks.(b) in
  let instr = List.nth blk.Ir.instrs i in
  let temps = Bitset.copy temps in
  (match Ir.instr_def instr with Some d -> Bitset.clear temps d | None -> ());
  (temps, locals)
