lib/mir/lower.ml: Array Char Deriv Growarr Hashtbl Ints Ir List M3l Option Rt Support
