lib/mir/liveness.ml: Array Bitset Deriv Ir List Support
