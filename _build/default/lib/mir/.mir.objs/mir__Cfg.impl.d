lib/mir/cfg.ml: Array Hashtbl Ints Ir List Support
