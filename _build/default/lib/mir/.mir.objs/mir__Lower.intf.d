lib/mir/lower.mli: Ir M3l
