lib/mir/mir_print.ml: Array Deriv Format Ir List Printf String
