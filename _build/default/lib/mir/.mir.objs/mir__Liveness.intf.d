lib/mir/liveness.mli: Ir Support
