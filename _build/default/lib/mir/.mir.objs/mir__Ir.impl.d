lib/mir/ir.ml: Array Deriv List Rt
