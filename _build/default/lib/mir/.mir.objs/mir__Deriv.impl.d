lib/mir/deriv.ml: Format List
