(** CFG utilities shared by the optimizer: predecessors, reverse postorder,
    dominators, natural-loop discovery, and block surgery (preheaders). *)

open Support
module Iset = Ints.Iset

let predecessors (f : Ir.func) : int list array =
  let nb = Array.length f.Ir.blocks in
  let preds = Array.make nb [] in
  Array.iteri
    (fun b (blk : Ir.block) ->
      List.iter (fun s -> preds.(s) <- b :: preds.(s)) (Ir.term_succs blk.Ir.term))
    f.Ir.blocks;
  preds

let reverse_postorder (f : Ir.func) : int array =
  let nb = Array.length f.Ir.blocks in
  let visited = Array.make nb false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Ir.term_succs f.Ir.blocks.(b).Ir.term);
      order := b :: !order
    end
  in
  dfs 0;
  Array.of_list !order

(** Immediate dominators (Cooper–Harvey–Kennedy); unreachable blocks map to
    themselves and should be ignored by clients. *)
let dominators (f : Ir.func) : int array =
  let nb = Array.length f.Ir.blocks in
  let rpo = reverse_postorder f in
  let rpo_num = Array.make nb (-1) in
  Array.iteri (fun i b -> rpo_num.(b) <- i) rpo;
  let preds = predecessors f in
  let idom = Array.make nb (-1) in
  idom.(0) <- 0;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let ps = List.filter (fun p -> idom.(p) <> -1) preds.(b) in
          match ps with
          | [] -> ()
          | p0 :: rest ->
              let new_idom = List.fold_left intersect p0 rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom

let dominates idom a b =
  (* does a dominate b? *)
  let rec up x = if x = a then true else if x = idom.(x) then false else up idom.(x) in
  if idom.(b) = -1 then false else up b

(** A natural loop: header plus body block set (including the header). *)
type loop = { header : int; body : Iset.t }

let natural_loops (f : Ir.func) : loop list =
  let idom = dominators f in
  let preds = predecessors f in
  let loops = Hashtbl.create 8 in
  (* back edge: b -> h where h dominates b *)
  Array.iteri
    (fun b (blk : Ir.block) ->
      List.iter
        (fun h ->
          if idom.(b) <> -1 && dominates idom h b then begin
            (* collect the natural loop of this back edge *)
            let body = ref (Iset.add h (Iset.singleton b)) in
            let stack = ref [ b ] in
            while !stack <> [] do
              let x = List.hd !stack in
              stack := List.tl !stack;
              if x <> h then
                List.iter
                  (fun p ->
                    if not (Iset.mem p !body) then begin
                      body := Iset.add p !body;
                      stack := p :: !stack
                    end)
                  preds.(x)
            done;
            let existing =
              match Hashtbl.find_opt loops h with Some s -> s | None -> Iset.empty
            in
            Hashtbl.replace loops h (Iset.union existing !body)
          end)
        (Ir.term_succs blk.Ir.term))
    f.Ir.blocks;
  Hashtbl.fold (fun header body acc -> { header; body } :: acc) loops []

(* ------------------------------------------------------------------ *)
(* Block surgery                                                       *)
(* ------------------------------------------------------------------ *)

(** Append a new block; returns its label. *)
let add_block (f : Ir.func) ~(instrs : Ir.instr list) ~(term : Ir.term) : int =
  let nb = Array.length f.Ir.blocks in
  f.Ir.blocks <- Array.append f.Ir.blocks [| { Ir.instrs; term } |];
  nb

let retarget_term (t : Ir.term) ~from ~dest : Ir.term =
  match t with
  | Ir.Jmp l -> Ir.Jmp (if l = from then dest else l)
  | Ir.Cjmp (r, a, b, tl, fl) ->
      Ir.Cjmp (r, a, b, (if tl = from then dest else tl), if fl = from then dest else fl)
  | Ir.Ret _ | Ir.Unreachable -> t

(** Insert a preheader for a loop: a fresh empty block through which every
    edge into the header from outside the loop is redirected. Returns its
    label. The loop's [body] set remains valid (the preheader is outside). *)
let insert_preheader (f : Ir.func) (l : loop) : int =
  let ph = add_block f ~instrs:[] ~term:(Ir.Jmp l.header) in
  Array.iteri
    (fun b (blk : Ir.block) ->
      if b <> ph && not (Iset.mem b l.body) then
        blk.Ir.term <- retarget_term blk.Ir.term ~from:l.header ~dest:ph)
    f.Ir.blocks;
  ph
