(** Lowering from the typed AST to MIR.

    This is the point where addresses come into existence: heap accesses
    become explicit pointer arithmetic, and every address temp is given a
    {!Ir.kind} recording its derivation — the metadata the paper's tables
    are ultimately built from. VAR-parameter passing and WITH aliases over
    heap places produce interior (untidy) pointers here, exactly as in
    Modula-3 (paper §2).

    When [checks] is set (the default, matching Modula-3 semantics), NIL
    dereferences and out-of-range indexing branch to runtime error routines;
    those routines are statically known not to allocate, so the branches are
    not gc-points (paper §5.3). *)

val program : ?checks:bool -> M3l.Tast.tprogram -> Ir.program
