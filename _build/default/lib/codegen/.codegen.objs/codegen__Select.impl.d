lib/codegen/select.ml: Array Bitset Frame Gcmaps Growarr List Machine Mir Option Regalloc Support
