lib/codegen/frame.ml: Array List Mir
