lib/codegen/regalloc.ml: Array Bitset Frame Gcmaps List Machine Mir Support
