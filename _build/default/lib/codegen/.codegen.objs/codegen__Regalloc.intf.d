lib/codegen/regalloc.mli: Frame Gcmaps Mir
