lib/codegen/select.mli: Frame Gcmaps Machine Mir
