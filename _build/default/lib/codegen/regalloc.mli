(** Linear-scan register allocation over MIR temps.

    Constraints relevant to gc support:
    - a temp live across a call to a user procedure must be placed in a
      callee-saved register or spilled (user calls clobber caller-saved
      registers);
    - runtime calls preserve all registers (the collector updates any
      register holding a pointer through the register-pointers table), so
      caller-saved registers may stay live across them;
    - the bases of a derivation passed as an outgoing argument are forced
      live across that call (the paper's dead-base rule applied to
      call-by-reference: the argument slot is live for the whole call, so
      its bases must be too). *)

type assignment = Areg of int | Aspill of int

type t = {
  assign : assignment array; (* per temp *)
  nspills : int;
  used_callee_saved : int list; (* in save order *)
}

val allocate : Mir.Ir.func -> Mir.Liveness.t -> t

val loc_of_temp : t -> Frame.t -> int -> Gcmaps.Loc.t
(** Location of a temp after allocation (register or FP-relative spill). *)
