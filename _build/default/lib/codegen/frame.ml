(** Frame layout of compiled procedures.

    The stack grows downward. After the prologue ([Enter]) of a procedure
    with frame size S and k callee-save slots:

    {v
      FP+2+i : incoming argument word i   (the caller's outgoing AP region)
      FP+1   : return address
      FP     : saved FP (FP points here)
      FP-1-j : callee-save slot j
      ...    : locals (each local occupies contiguous words, word 0 lowest)
      ...    : spill slots
      SP = FP - S
    v}

    Incoming parameter slots are read-only: they are described by the
    caller's gc tables for the duration of the call, so the callee never
    lists them in its own stack-pointer tables. *)

type t = {
  frame_size : int; (* words below the saved-FP slot *)
  nsaves : int;
  save_offs : (int * int) list; (* (reg, FP-relative offset) *)
  local_base : int array; (* FP-relative offset of word 0 of each local *)
  spill_base : int; (* FP-relative offset of spill slot 0 *)
  nparams : int;
}

let layout ~(locals : Mir.Ir.local_info array) ~nparams ~(saves : int list) ~nspills : t =
  let nsaves = List.length saves in
  let save_offs = List.mapi (fun i r -> (r, -1 - i)) saves in
  let local_base = Array.make (Array.length locals) 0 in
  (* Parameters live above the frame, at FP+2, one word each. *)
  for i = 0 to nparams - 1 do
    local_base.(i) <- 2 + i
  done;
  let next_free = ref (-nsaves) in
  for l = nparams to Array.length locals - 1 do
    let sz = locals.(l).Mir.Ir.l_size in
    next_free := !next_free - sz;
    local_base.(l) <- !next_free
  done;
  let spill_base = !next_free - nspills in
  (* The frame covers FP-1 down to FP+spill_base inclusive. *)
  let frame_size = -spill_base in
  {
    frame_size;
    nsaves;
    save_offs;
    local_base;
    spill_base;
    nparams;
  }

let local_off t l = t.local_base.(l)
let spill_off t s = t.spill_base + s
