(** typereg — modelled on the paper's description: "implements type
    registration and type comparisons using structural equivalence for our
    Modula-3 runtime system"; "a number of short routines with frequent
    calls" (the worst case for per-call gc-points).

    The benchmark builds descriptors for synthetic types (integers, pointers,
    arrays, records with field lists), registers them in a hash table keyed
    by a structural hash, and looks types up by structural equivalence. *)

let src =
  {|
MODULE Typereg;

TYPE
  (* kind codes: 0 = INT, 1 = BOOL, 2 = PTR(elt), 3 = ARRAY(elt, size),
     4 = RECORD(fields) *)
  TypeRec = RECORD
    kind: INTEGER;
    size: INTEGER;
    elt: Type;
    fields: Field
  END;
  Type = REF TypeRec;

  FieldRec = RECORD
    ftype: Type;
    next: Field
  END;
  Field = REF FieldRec;

  BucketRec = RECORD
    t: Type;
    next: Bucket
  END;
  Bucket = REF BucketRec;

  Table = REF ARRAY OF Bucket;

VAR
  registry: Table;
  nregistered, nhits, probes, i, j: INTEGER;
  t, u: Type;

PROCEDURE MkPrim(kind: INTEGER): Type;
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := kind;
  t.size := 1;
  RETURN t
END MkPrim;

PROCEDURE MkPtr(elt: Type): Type;
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := 2;
  t.size := 1;
  t.elt := elt;
  RETURN t
END MkPtr;

PROCEDURE MkArray(elt: Type; size: INTEGER): Type;
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := 3;
  t.size := size;
  t.elt := elt;
  RETURN t
END MkArray;

PROCEDURE AddField(t: Type; ftype: Type);
VAR f: Field;
BEGIN
  f := NEW(Field);
  f.ftype := ftype;
  f.next := t.fields;
  t.fields := f;
  t.size := t.size + ftype.size
END AddField;

PROCEDURE MkRecord(): Type;
VAR t: Type;
BEGIN
  t := NEW(Type);
  t.kind := 4;
  t.size := 0;
  RETURN t
END MkRecord;

PROCEDURE Hash(t: Type): INTEGER;
VAR h: INTEGER; f: Field;
BEGIN
  h := t.kind * 31 + t.size;
  IF t.elt # NIL THEN
    h := h * 31 + Hash(t.elt)
  END;
  f := t.fields;
  WHILE f # NIL DO
    h := h * 7 + Hash(f.ftype);
    f := f.next
  END;
  RETURN ABS(h)
END Hash;

PROCEDURE FieldsEqual(a, b: Field): BOOLEAN;
BEGIN
  WHILE a # NIL AND b # NIL DO
    IF NOT Equal(a.ftype, b.ftype) THEN RETURN FALSE END;
    a := a.next;
    b := b.next
  END;
  RETURN a = NIL AND b = NIL
END FieldsEqual;

PROCEDURE Equal(a, b: Type): BOOLEAN;
BEGIN
  probes := probes + 1;
  IF a = b THEN RETURN TRUE END;
  IF a.kind # b.kind THEN RETURN FALSE END;
  IF a.size # b.size THEN RETURN FALSE END;
  IF a.elt # NIL THEN
    IF b.elt = NIL THEN RETURN FALSE END;
    IF NOT Equal(a.elt, b.elt) THEN RETURN FALSE END
  ELSIF b.elt # NIL THEN
    RETURN FALSE
  END;
  RETURN FieldsEqual(a.fields, b.fields)
END Equal;

PROCEDURE Lookup(t: Type): Type;
VAR b: Bucket; h: INTEGER;
BEGIN
  h := Hash(t) MOD NUMBER(registry);
  b := registry[h];
  WHILE b # NIL DO
    IF Equal(b.t, t) THEN RETURN b.t END;
    b := b.next
  END;
  RETURN NIL
END Lookup;

PROCEDURE Register(t: Type): Type;
VAR existing: Type; b: Bucket; h: INTEGER;
BEGIN
  existing := Lookup(t);
  IF existing # NIL THEN
    nhits := nhits + 1;
    RETURN existing
  END;
  h := Hash(t) MOD NUMBER(registry);
  b := NEW(Bucket);
  b.t := t;
  b.next := registry[h];
  registry[h] := b;
  nregistered := nregistered + 1;
  RETURN t
END Register;

PROCEDURE BuildChain(depth: INTEGER): Type;
BEGIN
  IF depth = 0 THEN RETURN MkPrim(0) END;
  RETURN MkPtr(BuildChain(depth - 1))
END BuildChain;

PROCEDURE BuildRecord(nfields, fdepth: INTEGER): Type;
VAR r: Type; k: INTEGER;
BEGIN
  r := MkRecord();
  FOR k := 1 TO nfields DO
    AddField(r, BuildChain(fdepth))
  END;
  RETURN r
END BuildRecord;

BEGIN
  registry := NEW(Table, 64);
  nregistered := 0;
  nhits := 0;
  probes := 0;
  (* pointer chains of varying depth, registered twice each *)
  FOR i := 1 TO 40 DO
    t := Register(BuildChain(i MOD 13));
    u := Register(BuildChain(i MOD 13));
    IF t # u THEN PutText("BUG: chain not shared"); PutLn() END
  END;
  (* arrays over chains *)
  FOR i := 1 TO 40 DO
    t := Register(MkArray(BuildChain(i MOD 7), i MOD 9 + 1));
    u := Register(MkArray(BuildChain(i MOD 7), i MOD 9 + 1));
    IF t # u THEN PutText("BUG: array not shared"); PutLn() END
  END;
  (* records with field lists *)
  FOR i := 1 TO 30 DO
    FOR j := 1 TO 3 DO
      t := Register(BuildRecord(i MOD 5 + 1, j))
    END
  END;
  PutText("typereg: registered=");
  PutInt(nregistered);
  PutText(" hits=");
  PutInt(nhits);
  PutText(" probes>0=");
  IF probes > 0 THEN PutInt(1) ELSE PutInt(0) END;
  PutLn()
END Typereg.
|}
