lib/programs/takl_src.ml:
