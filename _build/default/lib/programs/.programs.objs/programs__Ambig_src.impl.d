lib/programs/ambig_src.ml:
