lib/programs/indirect_src.ml:
