lib/programs/fieldlist_src.ml:
