lib/programs/destroy_src.ml: Printf
