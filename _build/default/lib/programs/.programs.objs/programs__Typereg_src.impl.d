lib/programs/typereg_src.ml:
