(** takl — the Gabriel benchmark the paper uses ("a well known benchmark"):
    Takeuchi's function computed on lists, allocation-heavy and deeply
    recursive. Parameters below are the classic (18, 12, 6). *)

let src =
  {|
MODULE Takl;

TYPE
  Cell = RECORD head: INTEGER; tail: List END;
  List = REF Cell;

VAR result: List;

PROCEDURE Listn(n: INTEGER): List;
VAR c: List;
BEGIN
  IF n = 0 THEN RETURN NIL END;
  c := NEW(List);
  c.head := n;
  c.tail := Listn(n - 1);
  RETURN c
END Listn;

PROCEDURE Shorterp(x, y: List): BOOLEAN;
BEGIN
  WHILE y # NIL DO
    IF x = NIL THEN RETURN TRUE END;
    x := x.tail;
    y := y.tail
  END;
  RETURN FALSE
END Shorterp;

PROCEDURE Mas(x, y, z: List): List;
BEGIN
  IF NOT Shorterp(y, x) THEN RETURN z END;
  RETURN Mas(Mas(x.tail, y, z), Mas(y.tail, z, x), Mas(z.tail, x, y))
END Mas;

PROCEDURE Length(l: List): INTEGER;
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE l # NIL DO n := n + 1; l := l.tail END;
  RETURN n
END Length;

BEGIN
  result := Mas(Listn(18), Listn(12), Listn(6));
  PutText("takl: length=");
  PutInt(Length(result));
  PutText(" head=");
  PutInt(result.head);
  PutLn()
END Takl.
|}

(* tak(18,12,6) = 7, so the resulting list is [7,6,...,1]. *)
let expected = "takl: length=7 head=7\n"
