(** fieldlist — modelled on the paper's description: "implements command
    parsing for a UNIX shell". Splits command lines into whitespace-
    separated fields, builds a linked field list per command, and
    interprets a couple of tiny built-ins. Lots of short string-handling
    procedures called frequently, like the original. *)

let src =
  {|
MODULE Fieldlist;

TYPE
  FieldRec = RECORD
    text: TEXT;
    next: FieldList
  END;
  FieldList = REF FieldRec;

VAR
  commands: REF ARRAY OF TEXT;
  i, totalFields, echoed: INTEGER;

PROCEDURE IsSpace(c: CHAR): BOOLEAN;
BEGIN
  RETURN c = ' ' OR c = '\t'
END IsSpace;

PROCEDURE SubText(t: TEXT; start, len: INTEGER): TEXT;
VAR r: TEXT; k: INTEGER;
BEGIN
  r := NEW(TEXT, len);
  FOR k := 0 TO len - 1 DO
    r[k] := t[start + k]
  END;
  RETURN r
END SubText;

PROCEDURE TextEqual(a, b: TEXT): BOOLEAN;
VAR k: INTEGER;
BEGIN
  IF NUMBER(a) # NUMBER(b) THEN RETURN FALSE END;
  FOR k := 0 TO NUMBER(a) - 1 DO
    IF a[k] # b[k] THEN RETURN FALSE END
  END;
  RETURN TRUE
END TextEqual;

PROCEDURE Append(list: FieldList; f: FieldList): FieldList;
VAR p: FieldList;
BEGIN
  IF list = NIL THEN RETURN f END;
  p := list;
  WHILE p.next # NIL DO p := p.next END;
  p.next := f;
  RETURN list
END Append;

PROCEDURE MkField(t: TEXT): FieldList;
VAR f: FieldList;
BEGIN
  f := NEW(FieldList);
  f.text := t;
  RETURN f
END MkField;

PROCEDURE Split(line: TEXT): FieldList;
VAR
  fields: FieldList;
  pos, start, n: INTEGER;
BEGIN
  fields := NIL;
  pos := 0;
  n := NUMBER(line);
  WHILE pos < n DO
    WHILE pos < n AND IsSpace(line[pos]) DO pos := pos + 1 END;
    start := pos;
    WHILE pos < n AND NOT IsSpace(line[pos]) DO pos := pos + 1 END;
    IF pos > start THEN
      fields := Append(fields, MkField(SubText(line, start, pos - start)))
    END
  END;
  RETURN fields
END Split;

PROCEDURE CountFields(f: FieldList): INTEGER;
VAR n: INTEGER;
BEGIN
  n := 0;
  WHILE f # NIL DO n := n + 1; f := f.next END;
  RETURN n
END CountFields;

PROCEDURE Execute(f: FieldList): INTEGER;
VAR n: INTEGER;
BEGIN
  IF f = NIL THEN RETURN 0 END;
  IF TextEqual(f.text, "echo") THEN
    n := 0;
    f := f.next;
    WHILE f # NIL DO
      IF n > 0 THEN PutChar(' ') END;
      PutText(f.text);
      n := n + 1;
      f := f.next
    END;
    PutLn();
    RETURN n
  ELSIF TextEqual(f.text, "count") THEN
    PutInt(CountFields(f.next));
    PutLn();
    RETURN CountFields(f.next)
  END;
  RETURN 0
END Execute;

BEGIN
  commands := NEW(REF ARRAY OF TEXT, 6);
  commands[0] := "echo hello world";
  commands[1] := "   count a b c   d ";
  commands[2] := "ls -l /usr/local/bin";
  commands[3] := "echo   gc tables   are small";
  commands[4] := "count";
  commands[5] := "echo done";
  totalFields := 0;
  echoed := 0;
  FOR i := 0 TO NUMBER(commands) - 1 DO
    WITH line = commands[i] DO
      totalFields := totalFields + CountFields(Split(line));
      echoed := echoed + Execute(Split(line))
    END
  END;
  PutText("fieldlist: fields=");
  PutInt(totalFields);
  PutText(" echoed=");
  PutInt(echoed);
  PutLn()
END Fieldlist.
|}
