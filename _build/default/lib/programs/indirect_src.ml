(** indirect — micro-benchmark for the paper's §4 "Indirect References"
    scenario and the §6.2 code-effect measurement: elements of a
    two-dimensional REF structure are passed by VAR, so the address pushed
    is derived from a value fetched from memory (an intermediate
    reference). With gc restrictions the compiler keeps that intermediate
    pointer in a register (the derivation base must have a compile-time-
    known location); without them it may fold the fetch into a deferred
    addressing mode — the paper counted 12 such splits in typereg and 32 in
    FieldList on the VAX. *)

let src =
  {|
MODULE Indirect;

TYPE
  Row = REF ARRAY OF INTEGER;
  Mat = REF ARRAY OF Row;

VAR m: Mat; i: INTEGER; total: INTEGER;

PROCEDURE Bump(VAR cell: INTEGER);
BEGIN
  cell := cell + 1
END Bump;

PROCEDURE Sum(): INTEGER;
VAR r, c, s: INTEGER;
BEGIN
  s := 0;
  FOR r := 0 TO 3 DO
    FOR c := 0 TO 3 DO
      s := s + m[r][c]
    END
  END;
  RETURN s
END Sum;

BEGIN
  m := NEW(Mat, 4);
  FOR i := 0 TO 3 DO
    m[i] := NEW(Row, 4)
  END;
  (* statically indexed VAR passes: the pushed address derives from the
     intermediate row pointer fetched from m *)
  FOR i := 1 TO 5 DO
    Bump(m[0][0]);
    Bump(m[0][3]);
    Bump(m[1][2]);
    Bump(m[2][1]);
    Bump(m[3][3]);
    Bump(m[3][0])
  END;
  total := Sum();
  PutText("indirect: total=");
  PutInt(total);
  PutLn()
END Indirect.
|}

let expected = "indirect: total=30\n"
