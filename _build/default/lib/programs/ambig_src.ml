(** ambig — a synthetic program whose optimized form contains an
    {e ambiguous derivation} (paper §4): inside the loop, an array element
    address derives from either [p] or [q] depending on a loop-invariant
    condition. The optimizer hoists the base selection out of the loop
    (computing the selected array's untidy element origin once), so the
    origin's derivation depends on the path taken — disambiguated at
    collection time by a {e path variable}. None of the paper's four
    benchmarks had one ("the compiler introduced no path variables"), so
    this program exists to exercise that machinery end to end.

    Compile with checks off for the hoist to fire (bounds-check branches
    split the diamond arms); correctness is verified in both modes. *)

let src =
  {|
MODULE Ambig;

TYPE
  Arr = REF ARRAY [3..18] OF INTEGER;
  Cell = RECORD v: INTEGER; n: L END;
  L = REF Cell;

VAR
  p, q: Arr;
  round, s: INTEGER;

PROCEDURE Fill(a: Arr; mult: INTEGER);
VAR k: INTEGER;
BEGIN
  FOR k := 3 TO 18 DO
    a[k] := k * mult
  END
END Fill;

PROCEDURE Churn(n: INTEGER): INTEGER;
VAR l: L; k: INTEGER;
BEGIN
  l := NIL;
  FOR k := 1 TO n DO
    l := NEW(L);
    l.v := k
  END;
  RETURN l.v
END Churn;

PROCEDURE Pass(pa, qa: Arr; inv: BOOLEAN): INTEGER;
VAR i, s: INTEGER;
BEGIN
  s := 0;
  FOR i := 3 TO 18 DO
    (* gc pressure inside the loop: the hoisted, ambiguously derived
       origin is live across a gc-point *)
    s := s + Churn(3);
    IF inv THEN
      s := s + pa[i]
    ELSE
      s := s + qa[i]
    END
  END;
  RETURN s
END Pass;

BEGIN
  p := NEW(Arr);
  q := NEW(Arr);
  Fill(p, 2);
  Fill(q, 5);
  s := 0;
  FOR round := 1 TO 10 DO
    s := s + Pass(p, q, round MOD 2 = 0)
  END;
  PutText("ambig: s=");
  PutInt(s);
  PutLn()
END Ambig.
|}

(* Per round: Churn contributes 3*16 = 48; even rounds add sum(k*2, k=3..18)
   = 2*168 = 336; odd rounds add 5*168 = 840. Five rounds each:
   s = 10*48 + 5*336 + 5*840 = 480 + 1680 + 4200 = 6360. *)
let expected = "ambig: s=6360\n"
