lib/driver/compile.ml: Codegen Gc Gcmaps M3l Mir Opt Vm
