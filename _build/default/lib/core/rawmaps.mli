(** Raw (unencoded) per-gc-point gc information, as produced by the code
    generator: the conceptual content of the paper's three table kinds
    (§3) — stack pointers, register pointers, derivations — plus the
    path-variable variants of §4, before any organization or compression. *)

(** One derivation: [target = Σ plus − Σ minus + E]. Only the base
    locations are recorded; E is recovered at collection time by applying
    the inverse operations (paper §3: invertibility means no information
    about E is ever needed). *)
type deriv_entry = { target : Loc.t; plus : Loc.t list; minus : Loc.t list }

(** An ambiguous derivation (paper §4): the derivation of [target] in force
    is selected at run time by the value found at [path_loc]. *)
type variant = {
  path_loc : Loc.t;
  cases : (int * deriv_entry) list; (* path value -> derivation *)
}

type gcpoint = {
  gp_index : int; (* instruction index of the call within the function *)
  gp_offset : int; (* byte offset of the call within the function's code *)
  stack_ptrs : Loc.t list; (* live tidy pointers in stack words *)
  reg_ptrs : int list; (* registers holding live tidy pointers *)
  derivs : deriv_entry list; (* ordered: a derived value precedes its bases *)
  variants : variant list;
}

type proc_maps = {
  pm_fid : int;
  pm_name : string;
  pm_frame_size : int; (* words below the saved-FP slot *)
  pm_nargs : int; (* incoming argument words *)
  pm_saves : (int * int) list; (* (callee-saved reg, FP-relative offset) *)
  pm_code_bytes : int;
  pm_gcpoints : gcpoint list; (* sorted by gp_offset *)
}

val empty_gcpoint : index:int -> offset:int -> gcpoint
val gcpoint_is_empty : gcpoint -> bool

val order_derivs : deriv_entry list -> deriv_entry list
(** Order entries so every derived value comes before any of its base
    values — the paper's second ordering rule for the two-step update.
    Entries not related by a base edge keep a deterministic order.
    @raise Invalid_argument on a derivation cycle (impossible for
    well-formed input: "derivations are always made from previously
    calculated base values"). *)

val pp_deriv : Format.formatter -> deriv_entry -> unit
val pp_gcpoint : Format.formatter -> gcpoint -> unit
