(** Serialization of gc tables — the design space of the paper's §5.

    Two {e organizations}:
    - {!Delta_main} (the paper's δ-main): each procedure carries a ground
      ("main") table of every stack location that holds a tidy pointer at
      {e some} gc-point; each gc-point then stores only a liveness bitmap
      over the ground entries.
    - {!Full_info}: each gc-point stores its complete stack-pointer list.

    Two independent compressions ({!options}):
    - [packing]: the byte-level codec of Figs. 3–4 (continuation-bit
      varints, one descriptor byte per gc-point, two-byte pc distances)
      versus plain 32-bit words;
    - [previous]: a table identical to the one at the preceding gc-point is
      replaced by a descriptor flag and omitted.

    All configurations produce real byte streams that {!Decode} reads, so
    both the sizes (Table 2) and the decode cost (§6.1/§6.3) are
    measurable. *)

type scheme = Delta_main | Full_info

type options = { packing : bool; previous : bool }

val pp_config : Format.formatter -> scheme * options -> unit

(** {2 Descriptor encoding}

    One descriptor per gc-point; two bits per table kind
    ([tbl_empty]/[tbl_same]/[tbl_present]) plus a variant-presence bit. *)

val tbl_empty : int
val tbl_same : int
val tbl_present : int
val desc_stack_shift : int
val desc_reg_shift : int
val desc_deriv_shift : int
val desc_variant_bit : int

(** {2 Ground tables} *)

val ground_table : Rawmaps.proc_maps -> Loc.t array
(** All distinct stack locations holding pointers at some gc-point of the
    procedure, sorted — the paper's per-procedure "main table". *)

val delta_bitmap : Loc.t array -> Loc.t list -> Support.Bitset.t
(** Liveness bitmap of the given pointers over a ground table.
    @raise Invalid_argument if a pointer is missing from the ground table. *)

(** {2 Encoding} *)

type encoded_proc = {
  ep_fid : int;
  ep_stream : Bytes.t; (* header, ground table, then one record per gc-point *)
  ep_code_bytes : int;
  ep_ngcpoints : int;
}

val encode_proc : scheme -> options -> Rawmaps.proc_maps -> encoded_proc

type program_tables = {
  scheme : scheme;
  opts : options;
  procs : encoded_proc array; (* indexed by function id *)
  code_starts : int array; (* absolute code byte offset of each procedure *)
}

val encode_program :
  scheme -> options -> Rawmaps.proc_maps array -> int array -> program_tables

val total_table_bytes : program_tables -> int
