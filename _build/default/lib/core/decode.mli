(** Decoding of gc tables at collection time.

    The collector maps a return address (a code byte offset) to its
    gc-point tables by locating the enclosing procedure
    ({!proc_of_offset}) and scanning that procedure's table stream,
    accumulating the inter-gc-point distances — the paper's pc→table
    mapping (§5.2). "Identical to previous" descriptors are resolved
    during the scan. *)

type decoded_proc = {
  dp_frame_size : int; (* words below the saved-FP slot *)
  dp_nargs : int;
  dp_saves : (int * int) list; (* (callee-saved register, FP-relative slot) *)
  dp_ground : Loc.t array; (* empty under Full_info *)
}

val decode_proc :
  Encode.scheme ->
  Encode.options ->
  Encode.encoded_proc ->
  decoded_proc * Rawmaps.gcpoint list
(** Decode a whole procedure stream back into raw maps. Decoded gc-points
    carry [gp_index = -1] (indices are not serialized) and, under δ-main,
    their stack pointers in ground-table order. *)

val find :
  Encode.program_tables -> fid:int -> code_offset:int -> decoded_proc * Rawmaps.gcpoint
(** [find t ~fid ~code_offset] locates the tables for the gc-point whose
    call instruction starts at absolute byte [code_offset] inside procedure
    [fid]. This is the collector's hot path and is deliberately a linear
    scan of the procedure's stream — the decode cost the paper measures.
    @raise Not_found if the offset is not a gc-point of that procedure. *)

val proc_of_offset : Encode.program_tables -> code_offset:int -> int
(** Procedure containing an absolute code byte offset (binary search).
    @raise Not_found for offsets before the first procedure. *)
