(** Raw (unencoded) per-gc-point garbage collection information, as handed
    over by the code generator. This is the conceptual content of the
    paper's three tables (§3): stack pointers, register pointers, and
    derivations — before any organization or compression is applied. *)

(** One derivation: [target = Σ plus − Σ minus + E].  Only the bases are
    recorded; E is recovered by inverting the operations (paper §3). *)
type deriv_entry = { target : Loc.t; plus : Loc.t list; minus : Loc.t list }

(** Ambiguous derivations (paper §4): the actual derivation of [target] is
    selected at run time by the value of the {e path variable} stored at
    [path_loc]. *)
type variant = {
  path_loc : Loc.t;
  cases : (int * deriv_entry) list; (* path value -> derivation *)
}

type gcpoint = {
  gp_index : int; (* instruction index of the call, within the function *)
  gp_offset : int; (* byte offset of the call within the function's code *)
  stack_ptrs : Loc.t list; (* live tidy pointers in stack words *)
  reg_ptrs : int list; (* registers holding live tidy pointers *)
  derivs : deriv_entry list; (* ordered: a derived value precedes its bases *)
  variants : variant list;
}

type proc_maps = {
  pm_fid : int;
  pm_name : string;
  pm_frame_size : int; (* words below the saved-FP slot *)
  pm_nargs : int; (* incoming argument words *)
  pm_saves : (int * int) list; (* (callee-saved reg, FP-relative offset) *)
  pm_code_bytes : int;
  pm_gcpoints : gcpoint list; (* sorted by gp_offset *)
}

let empty_gcpoint ~index ~offset =
  {
    gp_index = index;
    gp_offset = offset;
    stack_ptrs = [];
    reg_ptrs = [];
    derivs = [];
    variants = [];
  }

let gcpoint_is_empty g = g.stack_ptrs = [] && g.reg_ptrs = [] && g.derivs = [] && g.variants = []

(** Order derivation entries so that every derived value comes before any of
    its base values (paper §3's second ordering rule); entries whose targets
    are not bases of others keep their relative order. Raises
    [Invalid_argument] on a cycle (impossible for well-formed derivations). *)
let order_derivs (entries : deriv_entry list) : deriv_entry list =
  (* target t must come before any entry whose target appears in t's bases. *)
  let n = List.length entries in
  let arr = Array.of_list entries in
  let uses_target i j =
    (* entry i has entry j's target among its bases -> i before j *)
    let bases = arr.(i).plus @ arr.(i).minus in
    List.exists (Loc.equal arr.(j).target) bases
  in
  let visited = Array.make n 0 (* 0 unvisited, 1 in progress, 2 done *) in
  let out = ref [] in
  let rec visit i =
    match visited.(i) with
    | 1 -> invalid_arg "Rawmaps.order_derivs: cyclic derivation"
    | 2 -> ()
    | _ ->
        visited.(i) <- 1;
        (* successors: entries that must come after i are those that have i's
           target as base... wait: i uses j's target => i must be adjusted
           before j; so j is a successor of i. *)
        for j = 0 to n - 1 do
          if j <> i && uses_target i j then visit j
        done;
        visited.(i) <- 2;
        out := arr.(i) :: !out
  in
  for i = 0 to n - 1 do
    visit i
  done;
  (* [out] currently lists entries such that successors (bases) were pushed
     first; reversing puts each derived value before its bases. *)
  !out

let pp_deriv fmt (d : deriv_entry) =
  Format.fprintf fmt "%a =" Loc.pp d.target;
  List.iter (fun b -> Format.fprintf fmt " +%a" Loc.pp b) d.plus;
  List.iter (fun b -> Format.fprintf fmt " -%a" Loc.pp b) d.minus;
  Format.fprintf fmt " + E"

let pp_gcpoint fmt g =
  Format.fprintf fmt "@[<v2>gc-point @%d (byte %d):@," g.gp_index g.gp_offset;
  Format.fprintf fmt "stack: [%s]@,"
    (String.concat "; " (List.map Loc.to_string g.stack_ptrs));
  Format.fprintf fmt "regs: [%s]@,"
    (String.concat "; " (List.map (fun r -> Printf.sprintf "r%d" r) g.reg_ptrs));
  List.iter (fun d -> Format.fprintf fmt "deriv: %a@," pp_deriv d) g.derivs;
  List.iter
    (fun v ->
      Format.fprintf fmt "variant on %a:@," Loc.pp v.path_loc;
      List.iter
        (fun (value, d) -> Format.fprintf fmt "  path=%d: %a@," value pp_deriv d)
        v.cases)
    g.variants;
  Format.fprintf fmt "@]"
