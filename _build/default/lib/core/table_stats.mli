(** Statistics over the generated tables: the columns of the paper's
    Table 1 and the size-vs-code percentages of Table 2. *)

type t = {
  size_bytes : int; (* program code size in bytes *)
  ngc : int; (* gc-points with at least one non-empty table *)
  nptrs : int; (* pointer entries (stack + register) over all gc-points *)
  ndel : int; (* delta tables emitted (non-empty, not identical-to-previous) *)
  nreg : int; (* register tables emitted *)
  nder : int; (* derivation tables emitted *)
  ngcpoints : int; (* all gc-points, including those with empty tables *)
}

val compute : Rawmaps.proc_maps array -> t

val configs : (string * Encode.scheme * Encode.options) list
(** The six configurations of Table 2: full-info × {plain, packing} and
    δ-main × {plain, previous, packing, packing+previous}. *)

val sizes : Rawmaps.proc_maps array -> (string * int) list
(** Total encoded table bytes under every configuration. *)

val size_percentages : Rawmaps.proc_maps array -> (string * float) list
(** Table sizes as a percentage of code size — the cells of Table 2. *)
