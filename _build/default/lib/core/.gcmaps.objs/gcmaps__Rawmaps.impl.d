lib/core/rawmaps.ml: Array Format List Loc Printf String
