lib/core/table_stats.ml: Array Bytes Encode List Rawmaps
