lib/core/encode.ml: Array Bitset Buffer Bytes Char Format List Loc Rawmaps Set Support Varint
