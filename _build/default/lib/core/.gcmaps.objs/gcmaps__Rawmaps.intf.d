lib/core/rawmaps.mli: Format Loc
