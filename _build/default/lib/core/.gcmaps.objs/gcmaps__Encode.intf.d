lib/core/encode.mli: Bytes Format Loc Rawmaps Support
