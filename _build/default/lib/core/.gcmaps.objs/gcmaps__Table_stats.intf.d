lib/core/table_stats.mli: Encode Rawmaps
