lib/core/decode.ml: Array Bitset Bytes Char Encode List Loc Rawmaps Support Varint
