lib/core/decode.mli: Encode Loc Rawmaps
