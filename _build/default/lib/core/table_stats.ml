(** Statistics over the generated tables: the columns of the paper's
    Table 1, and the size-vs-code-size percentages of Table 2. *)

type t = {
  size_bytes : int; (* program code size in bytes *)
  ngc : int; (* gc-points with at least one non-empty table *)
  nptrs : int; (* total pointer entries over all gc-points (stack + regs) *)
  ndel : int; (* delta tables emitted (non-empty, not identical-to-previous) *)
  nreg : int; (* register tables emitted *)
  nder : int; (* derivations tables emitted *)
  ngcpoints : int; (* all gc-points, including empty ones *)
}

let compute (pms : Rawmaps.proc_maps array) : t =
  let ngc = ref 0 and nptrs = ref 0 and ndel = ref 0 and nreg = ref 0 and nder = ref 0 in
  let total = ref 0 in
  let size = Array.fold_left (fun acc pm -> acc + pm.Rawmaps.pm_code_bytes) 0 pms in
  Array.iter
    (fun (pm : Rawmaps.proc_maps) ->
      let prev_stack = ref [] and prev_regs = ref [] and prev_derivs = ref [] in
      List.iter
        (fun (g : Rawmaps.gcpoint) ->
          incr total;
          if not (Rawmaps.gcpoint_is_empty g) then incr ngc;
          nptrs := !nptrs + List.length g.Rawmaps.stack_ptrs + List.length g.Rawmaps.reg_ptrs;
          if g.Rawmaps.stack_ptrs <> [] && g.Rawmaps.stack_ptrs <> !prev_stack then incr ndel;
          if g.Rawmaps.reg_ptrs <> [] && g.Rawmaps.reg_ptrs <> !prev_regs then incr nreg;
          if g.Rawmaps.derivs <> [] && g.Rawmaps.derivs <> !prev_derivs then incr nder;
          prev_stack := g.Rawmaps.stack_ptrs;
          prev_regs := g.Rawmaps.reg_ptrs;
          prev_derivs := g.Rawmaps.derivs)
        pm.Rawmaps.pm_gcpoints)
    pms;
  {
    size_bytes = size;
    ngc = !ngc;
    nptrs = !nptrs;
    ndel = !ndel;
    nreg = !nreg;
    nder = !nder;
    ngcpoints = !total;
  }

(** The six configurations of the paper's Table 2. *)
let configs : (string * Encode.scheme * Encode.options) list =
  [
    ("full/plain", Encode.Full_info, { Encode.packing = false; previous = false });
    ("full/packing", Encode.Full_info, { Encode.packing = true; previous = false });
    ("delta/plain", Encode.Delta_main, { Encode.packing = false; previous = false });
    ("delta/previous", Encode.Delta_main, { Encode.packing = false; previous = true });
    ("delta/packing", Encode.Delta_main, { Encode.packing = true; previous = false });
    ("delta/pp", Encode.Delta_main, { Encode.packing = true; previous = true });
  ]

(** Table sizes (bytes) for every configuration. *)
let sizes (pms : Rawmaps.proc_maps array) : (string * int) list =
  List.map
    (fun (name, scheme, opts) ->
      let total =
        Array.fold_left
          (fun acc pm ->
            acc + Bytes.length (Encode.encode_proc scheme opts pm).Encode.ep_stream)
          0 pms
      in
      (name, total))
    configs

(** Table sizes as a percentage of code size (the cells of Table 2). *)
let size_percentages (pms : Rawmaps.proc_maps array) : (string * float) list =
  let code = Array.fold_left (fun acc pm -> acc + pm.Rawmaps.pm_code_bytes) 0 pms in
  List.map
    (fun (name, bytes) -> (name, 100.0 *. float_of_int bytes /. float_of_int (max 1 code)))
    (sizes pms)
