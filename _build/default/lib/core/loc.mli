(** Locations named by the gc tables: a hard register, or a memory word
    relative to one of the three stack base registers — the {FP, SP, AP}
    set encoded in two bits by the paper's ground-table entries (Fig. 4).

    Resolution during a stack walk:
    - [FP] — the frame pointer of the frame being processed;
    - [SP] — its stack pointer, [FP - frame_size] (frames have static size);
    - [AP] — the base of the {e outgoing} argument words of the call made
      at this frame's gc-point (equivalently: the callee frame's incoming
      arguments). The caller's tables describe pointer- and derived-valued
      argument slots AP-relative for the whole duration of the call, so
      callees never list their incoming parameters. *)

type base_reg = FP | SP | AP

type t =
  | Lreg of int (* hard register *)
  | Lmem of base_reg * int (* word offset from the base register *)

val base_code : base_reg -> int
val base_of_code : int -> base_reg

val to_int : t -> int
(** Fig. 4 encoding: memory locations put the base register in the low two
    bits with the signed word offset above; registers use tag 3. Small
    frame offsets therefore pack into a single byte. *)

val of_int : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
