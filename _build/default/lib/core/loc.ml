(** Locations named by the gc tables: a hard register, or a memory word
    addressed relative to one of the three stack base registers — exactly
    the {FP, SP, AP} set the paper's ground-table entries encode in two bits
    (Fig. 4).

    During a stack walk the three bases are resolved per frame:
    - [FP]: the frame pointer of the frame being processed;
    - [SP]: its stack pointer, [FP - frame_size] (frames have static size);
    - [AP]: the base of the {e outgoing} argument words of the call made at
      this gc-point, i.e. the incoming-argument base of the callee frame.
      Derivation bases in a {e callee} may also name its own incoming
      arguments as [AP]-relative words. *)

type base_reg = FP | SP | AP

type t =
  | Lreg of int (* hard register *)
  | Lmem of base_reg * int (* word offset from the base register *)

let base_code = function FP -> 0 | SP -> 1 | AP -> 2
let base_of_code = function 0 -> FP | 1 -> SP | 2 -> AP | _ -> invalid_arg "Loc.base_of_code"

(** Integer encoding: memory locations put the base register in the low two
    bits and the (signed) word offset above them (Fig. 4); registers use the
    remaining tag value 3. *)
let to_int = function
  | Lmem (b, off) -> (off lsl 2) lor base_code b
  | Lreg r -> (r lsl 2) lor 3

let of_int v =
  let tag = v land 3 in
  if tag = 3 then Lreg (v asr 2) else Lmem (base_of_code tag, v asr 2)

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = compare a b

let pp fmt = function
  | Lreg r -> Format.fprintf fmt "r%d" r
  | Lmem (FP, o) -> Format.fprintf fmt "FP%+d" o
  | Lmem (SP, o) -> Format.fprintf fmt "SP%+d" o
  | Lmem (AP, o) -> Format.fprintf fmt "AP%+d" o

let to_string l = Format.asprintf "%a" pp l
