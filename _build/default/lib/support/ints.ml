(** Shared instantiations of integer sets and maps, so every compiler pass
    uses the same modules (and the same physical comparison function). *)

module Iset = Set.Make (Int)
module Imap = Map.Make (Int)
module Smap = Map.Make (String)
module Sset = Set.Make (String)
