(* Packed-word codec (paper Fig. 3): 7 payload bits per byte, high bit =
   continuation, most-significant group first, first byte sign-extended. *)

let fits_signed ~bits v =
  let lo = -(1 lsl (bits - 1)) in
  let hi = (1 lsl (bits - 1)) - 1 in
  v >= lo && v <= hi

let byte_length v =
  let rec go n = if fits_signed ~bits:(7 * n) v then n else go (n + 1) in
  go 1

let encode buf v =
  let n = byte_length v in
  for i = n - 1 downto 0 do
    let group = (v asr (7 * i)) land 0x7f in
    let cont = if i = 0 then 0 else 0x80 in
    Buffer.add_char buf (Char.chr (cont lor group))
  done

let decode bytes pos =
  let len = Bytes.length bytes in
  if pos < 0 || pos >= len then invalid_arg "Varint.decode: position out of bounds";
  let b0 = Char.code (Bytes.get bytes pos) in
  (* Sign-extend the 7-bit payload of the first byte. *)
  let v0 =
    let p = b0 land 0x7f in
    if p land 0x40 <> 0 then p - 0x80 else p
  in
  let rec go v pos cont =
    if not cont then (v, pos)
    else if pos >= len then invalid_arg "Varint.decode: truncated encoding"
    else
      let b = Char.code (Bytes.get bytes pos) in
      go ((v lsl 7) lor (b land 0x7f)) (pos + 1) (b land 0x80 <> 0)
  in
  go v0 (pos + 1) (b0 land 0x80 <> 0)

let encode_to_bytes v =
  let buf = Buffer.create 4 in
  encode buf v;
  Buffer.to_bytes buf
