(** Growable arrays (OCaml 5.1 has no Dynarray yet). *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Growarr.get";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Growarr.set";
  t.data.(i) <- v

let push t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) t.dummy in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.len - 1

let to_array t = Array.sub t.data 0 t.len
let iter f t = for i = 0 to t.len - 1 do f t.data.(i) done
let iteri f t = for i = 0 to t.len - 1 do f i t.data.(i) done
