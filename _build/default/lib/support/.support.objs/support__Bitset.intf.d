lib/support/bitset.mli: Bytes Format
