lib/support/varint.mli: Buffer Bytes
