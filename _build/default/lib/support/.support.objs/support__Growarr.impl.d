lib/support/growarr.ml: Array
