lib/support/varint.ml: Buffer Bytes Char
