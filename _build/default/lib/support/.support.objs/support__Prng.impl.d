lib/support/prng.ml: Int64
