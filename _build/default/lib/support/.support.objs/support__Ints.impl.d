lib/support/ints.ml: Int Map Set String
