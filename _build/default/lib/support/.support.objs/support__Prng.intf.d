lib/support/prng.mli:
