(** Small deterministic PRNG (xorshift64-star), used by tests and workload
    generators so experiments are reproducible run-to-run. *)

type t

val create : int -> t
(** [create seed] makes a generator; [seed] 0 is remapped to a fixed nonzero. *)

val next : t -> int
(** Next raw 62-bit nonnegative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). @raise Invalid_argument if bound ≤ 0. *)

val bool : t -> bool
