type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let loc st : Srcloc.t = { line = st.line; col = st.pos - st.bol + 1 }
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.bol <- st.pos + 1
  | Some _ | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_comment st depth start_loc =
  match (peek st, peek2 st) with
  | None, _ -> M3l_error.lex_error start_loc "unterminated comment"
  | Some '*', Some ')' ->
      advance st;
      advance st;
      if depth > 1 then skip_comment st (depth - 1) start_loc
  | Some '(', Some '*' ->
      advance st;
      advance st;
      skip_comment st (depth + 1) start_loc
  | Some _, _ ->
      advance st;
      skip_comment st depth start_loc

let lex_ident st =
  let start = st.pos in
  while match peek st with Some c -> is_alnum c | None -> false do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s Token.keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT s

let lex_int st =
  let start = st.pos in
  while match peek st with Some c -> is_digit c | None -> false do
    advance st
  done;
  Token.INT_LIT (int_of_string (String.sub st.src start (st.pos - start)))

let escape_char l = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | '0' -> '\000'
  | c -> M3l_error.lex_error l "unknown escape '\\%c'" c

let lex_char st =
  let l = loc st in
  advance st (* opening quote *);
  let c =
    match peek st with
    | None -> M3l_error.lex_error l "unterminated character literal"
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> M3l_error.lex_error l "unterminated character literal"
        | Some e ->
            advance st;
            escape_char l e)
    | Some c ->
        advance st;
        c
  in
  (match peek st with
  | Some '\'' -> advance st
  | Some _ | None -> M3l_error.lex_error l "unterminated character literal");
  Token.CHAR_LIT c

let lex_string st =
  let l = loc st in
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None | Some '\n' -> M3l_error.lex_error l "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> M3l_error.lex_error l "unterminated string literal"
        | Some e ->
            advance st;
            Buffer.add_char buf (escape_char l e);
            go ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Token.STR_LIT (Buffer.contents buf)

let tokenize src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  let toks = ref [] in
  let emit tok l = toks := (tok, l) :: !toks in
  let rec go () =
    match peek st with
    | None -> emit Token.EOF (loc st)
    | Some (' ' | '\t' | '\r' | '\n') ->
        advance st;
        go ()
    | Some '(' when peek2 st = Some '*' ->
        let l = loc st in
        advance st;
        advance st;
        skip_comment st 1 l;
        go ()
    | Some c ->
        let l = loc st in
        (if is_alpha c then emit (lex_ident st) l
         else if is_digit c then emit (lex_int st) l
         else if c = '\'' then emit (lex_char st) l
         else if c = '"' then emit (lex_string st) l
         else
           let simple tok =
             advance st;
             emit tok l
           in
           let two tok =
             advance st;
             advance st;
             emit tok l
           in
           match (c, peek2 st) with
           | ':', Some '=' -> two Token.ASSIGN
           | ':', _ -> simple Token.COLON
           | '.', Some '.' -> two Token.DOTDOT
           | '.', _ -> simple Token.DOT
           | '<', Some '=' -> two Token.LE
           | '<', _ -> simple Token.LT
           | '>', Some '=' -> two Token.GE
           | '>', _ -> simple Token.GT
           | ';', _ -> simple Token.SEMI
           | ',', _ -> simple Token.COMMA
           | '(', _ -> simple Token.LPAREN
           | ')', _ -> simple Token.RPAREN
           | '[', _ -> simple Token.LBRACKET
           | ']', _ -> simple Token.RBRACKET
           | '^', _ -> simple Token.CARET
           | '=', _ -> simple Token.EQ
           | '#', _ -> simple Token.NEQ
           | '+', _ -> simple Token.PLUS
           | '-', _ -> simple Token.MINUS
           | '*', _ -> simple Token.STAR
           | _ -> M3l_error.lex_error l "unexpected character %C" c);
        go ()
  in
  go ();
  List.rev !toks
