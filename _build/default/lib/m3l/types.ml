(** Semantic types of M3L.

    All scalars occupy one word. Records and fixed arrays may be embedded
    (in other records, arrays, or stack frames); open arrays exist only on
    the heap, under [Tref]. Record identity is nominal via [rec_id], which
    also permits recursive types ([fields] is filled in after allocation). *)

type ty =
  | Tint
  | Tbool
  | Tchar
  | Trecord of record_info
  | Tarray of array_info (* fixed bounds *)
  | Topen of ty (* open array; only under Tref *)
  | Tref of ty
  | Tnil (* type of NIL, compatible with any Tref *)
  | Tunit (* "no value"; procedure return *)

and record_info = {
  rec_id : int;
  rec_name : string;
  mutable fields : (string * ty) list;
}

and array_info = { lo : int; hi : int; elt : ty }

let next_rec_id = ref 0

let fresh_record name =
  let id = !next_rec_id in
  incr next_rec_id;
  { rec_id = id; rec_name = name; fields = [] }

let rec equal a b =
  match (a, b) with
  | Tint, Tint | Tbool, Tbool | Tchar, Tchar | Tnil, Tnil | Tunit, Tunit -> true
  | Trecord r1, Trecord r2 -> r1.rec_id = r2.rec_id
  | Tarray a1, Tarray a2 -> a1.lo = a2.lo && a1.hi = a2.hi && equal a1.elt a2.elt
  | Topen t1, Topen t2 -> equal t1 t2
  | Tref t1, Tref t2 -> equal t1 t2
  | (Tint | Tbool | Tchar | Trecord _ | Tarray _ | Topen _ | Tref _ | Tnil | Tunit), _ ->
      false

(** [assignable ~dst ~src]: may a value of type [src] be stored into a
    location of type [dst]? *)
let assignable ~dst ~src =
  match (dst, src) with
  | Tref _, Tnil -> true
  | _ -> equal dst src

(** Size in words of an embedded value of this type. Open arrays have no
    embedded size. *)
let rec size_words = function
  | Tint | Tbool | Tchar | Tref _ | Tnil -> 1
  | Trecord r -> List.fold_left (fun acc (_, t) -> acc + size_words t) 0 r.fields
  | Tarray { lo; hi; elt } ->
      let n = hi - lo + 1 in
      if n < 0 then 0 else n * size_words elt
  | Topen _ -> invalid_arg "Types.size_words: open array has no embedded size"
  | Tunit -> invalid_arg "Types.size_words: unit has no size"

let is_ref = function Tref _ | Tnil -> true | Tint | Tbool | Tchar | Trecord _ | Tarray _ | Topen _ | Tunit -> false
let is_scalar = function Tint | Tbool | Tchar | Tref _ | Tnil -> true | Trecord _ | Tarray _ | Topen _ | Tunit -> false

(** Word offsets (relative to the start of the embedded value) that hold
    pointers. *)
let rec pointer_offsets ty =
  match ty with
  | Tref _ -> [ 0 ]
  | Tint | Tbool | Tchar | Tnil | Tunit -> []
  | Trecord r ->
      let _, offs =
        List.fold_left
          (fun (off, acc) (_, fty) ->
            let sub = List.map (fun o -> o + off) (pointer_offsets fty) in
            (off + size_words fty, acc @ sub))
          (0, []) r.fields
      in
      offs
  | Tarray { lo; hi; elt } ->
      let n = hi - lo + 1 in
      let esz = size_words elt in
      let eoffs = pointer_offsets elt in
      if eoffs = [] then []
      else
        List.concat (List.init (max 0 n) (fun i -> List.map (fun o -> (i * esz) + o) eoffs))
  | Topen _ -> invalid_arg "Types.pointer_offsets: open array"

(** Field lookup: returns (word offset, field type). *)
let field_offset r name =
  let rec go off = function
    | [] -> None
    | (f, fty) :: _ when f = name -> Some (off, fty)
    | (_, fty) :: rest -> go (off + size_words fty) rest
  in
  go 0 r.fields

let rec pp fmt = function
  | Tint -> Format.fprintf fmt "INTEGER"
  | Tbool -> Format.fprintf fmt "BOOLEAN"
  | Tchar -> Format.fprintf fmt "CHAR"
  | Trecord r -> Format.fprintf fmt "%s" (if r.rec_name = "" then "RECORD..." else r.rec_name)
  | Tarray { lo; hi; elt } -> Format.fprintf fmt "ARRAY [%d..%d] OF %a" lo hi pp elt
  | Topen t -> Format.fprintf fmt "ARRAY OF %a" pp t
  | Tref t -> Format.fprintf fmt "REF %a" pp t
  | Tnil -> Format.fprintf fmt "NIL"
  | Tunit -> Format.fprintf fmt "(no type)"

let to_string t = Format.asprintf "%a" pp t
