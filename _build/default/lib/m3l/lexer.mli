(** Hand-written lexer for M3L. Keywords are upper-case, identifiers are
    case-sensitive, comments are [(* ... *)] and nest. *)

val tokenize : string -> (Token.t * Srcloc.t) list
(** Tokenize a whole compilation unit. The result always ends with [EOF].
    @raise M3l_error.Lex_error on malformed input. *)
