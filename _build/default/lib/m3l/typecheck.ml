open Support

let err = M3l_error.type_error

(* ------------------------------------------------------------------ *)
(* Type resolution                                                     *)
(* ------------------------------------------------------------------ *)

type tenv = {
  mutable decls : Ast.type_expr Ints.Smap.t; (* unresolved TYPE decls *)
  mutable resolved : Types.ty Ints.Smap.t;
  mutable in_progress : int Ints.Smap.t; (* name -> ref depth at entry *)
  mutable guard : int; (* bound on re-entrant resolution *)
}

let text_ty = Types.Tref (Types.Topen Types.Tchar)

(* [refs] counts the REF constructors crossed on the path from the
   outermost resolution; a recursive mention of an in-progress name is
   legal exactly when at least one REF separates it from its own
   definition (otherwise the type would embed itself and have infinite
   size). [allow_open] permits an open array, which may appear only
   directly under REF. *)
let rec resolve_type (env : tenv) ~refs ?(allow_open = false) (t : Ast.type_expr) :
    Types.ty =
  match t with
  | Ast.Tname (name, loc) -> resolve_name env ~refs ~allow_open name loc
  | Ast.Tref (t, _) -> Types.Tref (resolve_type env ~refs:(refs + 1) ~allow_open:true t)
  | Ast.Trecord (fields, loc) ->
      let r = Types.fresh_record "" in
      r.Types.fields <- List.map (fun (f, ft) -> (f, resolve_type env ~refs ft)) fields;
      let names = List.map fst fields in
      let sorted = List.sort_uniq compare names in
      if List.length sorted <> List.length names then
        err loc "duplicate field name in record";
      Types.Trecord r
  | Ast.Tarray (lo, hi, elt, loc) ->
      if hi < lo then err loc "array upper bound below lower bound";
      Types.Tarray { lo; hi; elt = resolve_type env ~refs elt }
  | Ast.Topen_array (elt, loc) ->
      if not allow_open then err loc "open arrays are only allowed under REF";
      Types.Topen (resolve_type env ~refs elt)

and resolve_name env ~refs ~allow_open name loc =
  let check_open ty =
    match ty with
    | Types.Topen _ when not allow_open ->
        err loc "open array type %s is only allowed under REF" name
    | _ -> ty
  in
  match name with
  | "INTEGER" -> Types.Tint
  | "BOOLEAN" -> Types.Tbool
  | "CHAR" -> Types.Tchar
  | "TEXT" -> text_ty
  | _ -> (
      (* The in-progress check must come before the resolved map: a record
         pre-allocated in [resolved] must not silence an illegal
         self-embedding. *)
      match Ints.Smap.find_opt name env.in_progress with
      | Some entry_refs when refs <= entry_refs ->
          err loc "illegal recursive type %s (recursion must go through REF)" name
      | Some _ -> (
          (* Legal re-entry through a REF. Records were pre-allocated; other
             definitions are re-resolved (bounded by guard). *)
          env.guard <- env.guard + 1;
          if env.guard > 10_000 then err loc "type %s is too deeply recursive" name;
          match Ints.Smap.find_opt name env.resolved with
          | Some ty -> check_open ty
          | None -> (
              match Ints.Smap.find_opt name env.decls with
              | None -> err loc "unknown type %s" name
              | Some def -> check_open (resolve_type env ~refs ~allow_open def)))
      | None -> (
          match Ints.Smap.find_opt name env.resolved with
          | Some ty -> check_open ty
          | None -> (
              match Ints.Smap.find_opt name env.decls with
              | None -> err loc "unknown type %s" name
              | Some def ->
                  env.in_progress <- Ints.Smap.add name refs env.in_progress;
                  let ty =
                    match def with
                    | Ast.Trecord (fields, floc) ->
                        (* Pre-allocate so recursive mentions resolve to the
                           same record. *)
                        let r = Types.fresh_record name in
                        env.resolved <- Ints.Smap.add name (Types.Trecord r) env.resolved;
                        r.Types.fields <-
                          List.map (fun (f, ft) -> (f, resolve_type env ~refs ft)) fields;
                        let names = List.map fst fields in
                        if
                          List.length (List.sort_uniq compare names)
                          <> List.length names
                        then err floc "duplicate field name in record %s" name;
                        Types.Trecord r
                    | other -> resolve_type env ~refs ~allow_open:true other
                  in
                  env.resolved <- Ints.Smap.add name ty env.resolved;
                  env.in_progress <- Ints.Smap.remove name env.in_progress;
                  check_open ty)))

(* ------------------------------------------------------------------ *)
(* Value environment                                                   *)
(* ------------------------------------------------------------------ *)

type venv = {
  tenv : tenv;
  procs : Tast.proc_sym Ints.Smap.t;
  mutable scope : Tast.var_sym Ints.Smap.t;
  mutable next_var : int ref;
  mutable proc_locals : Tast.var_sym list; (* accumulates WITH/FOR temps *)
  current_ret : Types.ty;
}

let fresh_var env ?(kind = Tast.Vlocal) name ty : Tast.var_sym =
  let id = !(env.next_var) in
  incr env.next_var;
  { Tast.v_id = id; v_name = name; v_ty = ty; v_kind = kind }

let lookup_var env name loc =
  match Ints.Smap.find_opt name env.scope with
  | Some v -> v
  | None -> err loc "unknown variable %s" name

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk desc ty loc : Tast.texpr = { Tast.desc; ty; loc }

let require_int (e : Tast.texpr) =
  if not (Types.equal e.ty Types.Tint) then
    err e.loc "expected INTEGER, found %s" (Types.to_string e.ty)

let require_bool (e : Tast.texpr) =
  if not (Types.equal e.ty Types.Tbool) then
    err e.loc "expected BOOLEAN, found %s" (Types.to_string e.ty)

let binop_of_ast : Ast.binop -> Tast.tbinop = function
  | Ast.Add -> Tast.Badd
  | Ast.Sub -> Tast.Bsub
  | Ast.Mul -> Tast.Bmul
  | Ast.Div -> Tast.Bdiv
  | Ast.Mod -> Tast.Bmod
  | Ast.Eq -> Tast.Beq
  | Ast.Neq -> Tast.Bneq
  | Ast.Lt -> Tast.Blt
  | Ast.Le -> Tast.Ble
  | Ast.Gt -> Tast.Bgt
  | Ast.Ge -> Tast.Bge
  | Ast.And -> Tast.Band
  | Ast.Or -> Tast.Bor

(* Auto-deref: if [e] is a REF to record/array and a place is wanted,
   insert an explicit dereference. *)
let auto_deref (e : Tast.texpr) =
  match e.ty with
  | Types.Tref inner -> mk (Tast.Tderef e) inner e.loc
  | Types.Tint | Types.Tbool | Types.Tchar | Types.Trecord _ | Types.Tarray _
  | Types.Topen _ | Types.Tnil | Types.Tunit -> e

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  match e with
  | Ast.Int_lit (n, l) -> mk (Tast.Tconst_int n) Types.Tint l
  | Ast.Char_lit (c, l) -> mk (Tast.Tconst_char c) Types.Tchar l
  | Ast.Bool_lit (b, l) -> mk (Tast.Tconst_bool b) Types.Tbool l
  | Ast.Str_lit (s, l) -> mk (Tast.Tconst_text s) text_ty l
  | Ast.Nil_lit l -> mk Tast.Tconst_nil Types.Tnil l
  | Ast.Var (name, l) ->
      let v = lookup_var env name l in
      mk (Tast.Tvar v) v.Tast.v_ty l
  | Ast.Field (base, fname, l) -> (
      let b = auto_deref (check_expr env base) in
      match b.ty with
      | Types.Trecord r -> (
          match Types.field_offset r fname with
          | Some (off, fty) -> mk (Tast.Tfield (b, off, fname)) fty l
          | None -> err l "record %s has no field %s" r.Types.rec_name fname)
      | other -> err l "field selection on non-record type %s" (Types.to_string other))
  | Ast.Index (base, idx, l) -> (
      let b = auto_deref (check_expr env base) in
      let i = check_expr env idx in
      (match i.ty with
      | Types.Tint | Types.Tchar -> ()
      | other -> err i.loc "array index must be INTEGER or CHAR, found %s" (Types.to_string other));
      match b.ty with
      | Types.Tarray { elt; _ } -> mk (Tast.Tindex (b, i)) elt l
      | Types.Topen elt -> mk (Tast.Tindex (b, i)) elt l
      | other -> err l "indexing a non-array type %s" (Types.to_string other))
  | Ast.Deref (base, l) -> (
      let b = check_expr env base in
      match b.ty with
      | Types.Tref inner -> mk (Tast.Tderef b) inner l
      | other -> err l "dereference of non-REF type %s" (Types.to_string other))
  | Ast.Unop (Ast.Neg, e, l) ->
      let te = check_expr env e in
      require_int te;
      mk (Tast.Tunop (Tast.Uneg, te)) Types.Tint l
  | Ast.Unop (Ast.Not, e, l) ->
      let te = check_expr env e in
      require_bool te;
      mk (Tast.Tunop (Tast.Unot, te)) Types.Tbool l
  | Ast.Binop (op, a, b, l) -> check_binop env op a b l
  | Ast.New_expr (te, len, l) -> (
      let ty = resolve_type env.tenv ~refs:0 te in
      match ty with
      | Types.Tref (Types.Topen elt) -> (
          match len with
          | None -> err l "NEW of an open array type needs a length argument"
          | Some n ->
              let tn = check_expr env n in
              require_int tn;
              ignore (Types.size_words elt);
              mk (Tast.Tnew (Types.Topen elt, Some tn)) ty l)
      | Types.Tref inner -> (
          match len with
          | Some _ -> err l "NEW of a fixed-size type takes no length argument"
          | None -> mk (Tast.Tnew (inner, None)) ty l)
      | other -> err l "NEW requires a REF type, found %s" (Types.to_string other))
  | Ast.Call_expr (name, args, l) -> check_call_expr env name args l

and check_binop env op a b l : Tast.texpr =
  let ta = check_expr env a in
  let tb = check_expr env b in
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      require_int ta;
      require_int tb;
      mk (Tast.Tbinop (binop_of_ast op, ta, tb)) Types.Tint l
  | Ast.And | Ast.Or ->
      require_bool ta;
      require_bool tb;
      mk (Tast.Tbinop (binop_of_ast op, ta, tb)) Types.Tbool l
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      (match (ta.ty, tb.ty) with
      | Types.Tint, Types.Tint | Types.Tchar, Types.Tchar -> ()
      | _ ->
          err l "ordered comparison requires two INTEGERs or two CHARs (%s vs %s)"
            (Types.to_string ta.ty) (Types.to_string tb.ty));
      mk (Tast.Tbinop (binop_of_ast op, ta, tb)) Types.Tbool l
  | Ast.Eq | Ast.Neq ->
      let ok =
        match (ta.ty, tb.ty) with
        | Types.Tnil, Types.Tref _ | Types.Tref _, Types.Tnil | Types.Tnil, Types.Tnil -> true
        | x, y -> Types.is_scalar x && Types.equal x y
      in
      if not ok then
        err l "incomparable types %s and %s" (Types.to_string ta.ty) (Types.to_string tb.ty);
      mk (Tast.Tbinop (binop_of_ast op, ta, tb)) Types.Tbool l

and check_call_expr env name args l : Tast.texpr =
  let one () =
    match args with
    | [ Ast.Arg e ] -> check_expr env e
    | _ -> err l "%s expects exactly one argument" name
  in
  let two () =
    match args with
    | [ Ast.Arg a; Ast.Arg b ] -> (check_expr env a, check_expr env b)
    | _ -> err l "%s expects exactly two arguments" name
  in
  match name with
  | "ORD" ->
      let e = one () in
      (match e.ty with
      | Types.Tchar | Types.Tbool | Types.Tint -> ()
      | other -> err l "ORD requires CHAR/BOOLEAN/INTEGER, found %s" (Types.to_string other));
      mk (Tast.Tconvert e) Types.Tint l
  | "CHR" ->
      let e = one () in
      require_int e;
      mk (Tast.Tconvert e) Types.Tchar l
  | "ABS" ->
      let e = one () in
      require_int e;
      mk (Tast.Tunop (Tast.Uabs, e)) Types.Tint l
  | "MIN" ->
      let a, b = two () in
      require_int a;
      require_int b;
      mk (Tast.Tbinop (Tast.Bmin, a, b)) Types.Tint l
  | "MAX" ->
      let a, b = two () in
      require_int a;
      require_int b;
      mk (Tast.Tbinop (Tast.Bmax, a, b)) Types.Tint l
  | "NUMBER" -> (
      let e = one () in
      match e.ty with
      | Types.Tarray { lo; hi; _ } -> mk (Tast.Tconst_int (hi - lo + 1)) Types.Tint l
      | Types.Topen _ -> mk (Tast.Tnumber e) Types.Tint l
      | Types.Tref (Types.Topen _) -> mk (Tast.Tnumber (auto_deref e)) Types.Tint l
      | other -> err l "NUMBER requires an array, found %s" (Types.to_string other))
  | "FIRST" -> (
      let e = one () in
      match e.ty with
      | Types.Tarray { lo; _ } -> mk (Tast.Tconst_int lo) Types.Tint l
      | Types.Topen _ | Types.Tref (Types.Topen _) -> mk (Tast.Tconst_int 0) Types.Tint l
      | other -> err l "FIRST requires an array, found %s" (Types.to_string other))
  | "LAST" -> (
      let e = one () in
      match e.ty with
      | Types.Tarray { hi; _ } -> mk (Tast.Tconst_int hi) Types.Tint l
      | Types.Topen _ -> mk (Tast.Tbinop (Tast.Bsub, mk (Tast.Tnumber e) Types.Tint l,
                                          mk (Tast.Tconst_int 1) Types.Tint l)) Types.Tint l
      | Types.Tref (Types.Topen _) ->
          let place = auto_deref e in
          mk (Tast.Tbinop (Tast.Bsub, mk (Tast.Tnumber place) Types.Tint l,
                           mk (Tast.Tconst_int 1) Types.Tint l)) Types.Tint l
      | other -> err l "LAST requires an array, found %s" (Types.to_string other))
  | _ -> (
      match Ints.Smap.find_opt name env.procs with
      | None -> err l "unknown procedure %s" name
      | Some psym ->
          if Types.equal psym.Tast.p_ret Types.Tunit then
            err l "procedure %s returns no value and cannot be used in an expression" name;
          let call = check_user_call env psym args l in
          mk (Tast.Tcall call) psym.Tast.p_ret l)

and check_user_call env (psym : Tast.proc_sym) args l : Tast.call =
  let nparams = List.length psym.Tast.p_params in
  if List.length args <> nparams then
    err l "procedure %s expects %d argument(s), got %d" psym.Tast.p_name nparams
      (List.length args);
  let targs =
    List.map2
      (fun (p : Tast.var_sym) (Ast.Arg a) ->
        let ta = check_expr env a in
        match p.Tast.v_kind with
        | Tast.Vparam_ref ->
            if not (Tast.is_place ta) then
              err ta.Tast.loc "argument to VAR parameter %s must be a designator"
                p.Tast.v_name;
            if not (Types.equal ta.Tast.ty p.Tast.v_ty) then
              err ta.Tast.loc "VAR parameter %s expects %s, got %s" p.Tast.v_name
                (Types.to_string p.Tast.v_ty)
                (Types.to_string ta.Tast.ty);
            Tast.Aref ta
        | Tast.Vparam ->
            if not (Types.assignable ~dst:p.Tast.v_ty ~src:ta.Tast.ty) then
              err ta.Tast.loc "parameter %s expects %s, got %s" p.Tast.v_name
                (Types.to_string p.Tast.v_ty)
                (Types.to_string ta.Tast.ty);
            Tast.Aval ta
        | Tast.Vglobal | Tast.Vlocal | Tast.Valias ->
            err l "internal: parameter with non-parameter kind")
      psym.Tast.p_params args
  in
  { Tast.callee = Tast.Cuser psym; args = targs; ret = psym.Tast.p_ret }

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let check_builtin_call env name args l : Tast.call option =
  let mkcall b args = Some { Tast.callee = Tast.Cbuiltin b; args; ret = Types.Tunit } in
  match (name, args) with
  | "PutInt", [ Ast.Arg e ] ->
      let te = check_expr env e in
      require_int te;
      mkcall Tast.Bput_int [ Tast.Aval te ]
  | "PutChar", [ Ast.Arg e ] ->
      let te = check_expr env e in
      (match te.Tast.ty with
      | Types.Tchar -> ()
      | other -> err l "PutChar requires CHAR, found %s" (Types.to_string other));
      mkcall Tast.Bput_char [ Tast.Aval te ]
  | "PutText", [ Ast.Arg e ] ->
      let te = check_expr env e in
      if not (Types.equal te.Tast.ty text_ty) then
        err l "PutText requires TEXT, found %s" (Types.to_string te.Tast.ty);
      mkcall Tast.Bput_text [ Tast.Aval te ]
  | "PutLn", [] -> mkcall Tast.Bput_ln []
  | "Halt", [] -> mkcall Tast.Bhalt []
  | ("PutInt" | "PutChar" | "PutText" | "PutLn" | "Halt"), _ ->
      err l "wrong arguments for builtin %s" name
  | _ -> None

let rec check_stmts env stmts = List.map (check_stmt env) stmts

and check_stmt env (s : Ast.stmt) : Tast.tstmt =
  match s with
  | Ast.Assign (lhs, rhs, l) ->
      let tl = check_expr env lhs in
      if not (Tast.is_place tl) then err l "left-hand side of := is not a designator";
      if not (Types.is_scalar tl.Tast.ty) then
        err l "only scalar and REF values can be assigned (type %s)"
          (Types.to_string tl.Tast.ty);
      let tr = check_expr env rhs in
      if not (Types.assignable ~dst:tl.Tast.ty ~src:tr.Tast.ty) then
        err l "cannot assign %s to %s" (Types.to_string tr.Tast.ty)
          (Types.to_string tl.Tast.ty);
      Tast.Sassign (tl, tr)
  | Ast.Call_stmt (name, args, l) -> (
      match check_builtin_call env name args l with
      | Some call -> Tast.Scall call
      | None -> (
          match Ints.Smap.find_opt name env.procs with
          | None -> err l "unknown procedure %s" name
          | Some psym -> Tast.Scall (check_user_call env psym args l)))
  | Ast.If (branches, els, _) ->
      let tbranches =
        List.map
          (fun (c, body) ->
            let tc = check_expr env c in
            require_bool tc;
            (tc, check_scoped env body))
          branches
      in
      Tast.Sif (tbranches, check_scoped env els)
  | Ast.While (c, body, _) ->
      let tc = check_expr env c in
      require_bool tc;
      Tast.Swhile (tc, check_scoped env body)
  | Ast.For (vname, lo, hi, step, body, l) ->
      let tlo = check_expr env lo in
      let thi = check_expr env hi in
      require_int tlo;
      require_int thi;
      ignore l;
      let v = fresh_var env vname Types.Tint in
      env.proc_locals <- v :: env.proc_locals;
      let saved = env.scope in
      env.scope <- Ints.Smap.add vname v env.scope;
      let tbody = check_stmts env body in
      env.scope <- saved;
      Tast.Sfor (v, tlo, thi, step, tbody)
  | Ast.Return (e, l) -> (
      match (e, env.current_ret) with
      | None, Types.Tunit -> Tast.Sreturn None
      | None, ty -> err l "RETURN needs a value of type %s" (Types.to_string ty)
      | Some _, Types.Tunit -> err l "this procedure returns no value"
      | Some e, ty ->
          let te = check_expr env e in
          if not (Types.assignable ~dst:ty ~src:te.Tast.ty) then
            err l "RETURN type mismatch: expected %s, got %s" (Types.to_string ty)
              (Types.to_string te.Tast.ty);
          Tast.Sreturn (Some te))
  | Ast.With (vname, e, body, _) ->
      let te = check_expr env e in
      let is_alias = Tast.is_place te in
      let kind = if is_alias then Tast.Valias else Tast.Vlocal in
      if not is_alias && not (Types.is_scalar te.Tast.ty) then
        err te.Tast.loc "WITH over a non-designator requires a scalar value";
      let v = fresh_var env ~kind vname te.Tast.ty in
      env.proc_locals <- v :: env.proc_locals;
      let saved = env.scope in
      env.scope <- Ints.Smap.add vname v env.scope;
      let tbody = check_stmts env body in
      env.scope <- saved;
      if is_alias then Tast.Swith_alias (v, te, tbody)
      else Tast.Swith_value (v, te, tbody)

and check_scoped env body =
  let saved = env.scope in
  let r = check_stmts env body in
  env.scope <- saved;
  r

(* ------------------------------------------------------------------ *)
(* Program                                                             *)
(* ------------------------------------------------------------------ *)

let check (cu : Ast.compilation_unit) : Tast.tprogram =
  let tenv =
    { decls = Ints.Smap.empty; resolved = Ints.Smap.empty; in_progress = Ints.Smap.empty; guard = 0 }
  in
  List.iter
    (function
      | Ast.Type_decl (name, def, loc) ->
          if Ints.Smap.mem name tenv.decls then err loc "duplicate type %s" name;
          tenv.decls <- Ints.Smap.add name def tenv.decls
      | Ast.Var_decl _ | Ast.Proc_decl _ -> ())
    cu.Ast.decls;
  (* Force resolution of all declared types (detects bad definitions even if
     unused). *)
  Ints.Smap.iter
    (fun name def ->
      ignore
        (resolve_name tenv ~refs:0 ~allow_open:true name
           (match def with
           | Ast.Tname (_, l) | Ast.Trecord (_, l) | Ast.Tarray (_, _, _, l)
           | Ast.Topen_array (_, l) | Ast.Tref (_, l) -> l)))
    tenv.decls;

  let next_var = ref 0 in
  (* Globals. *)
  let globals = ref [] in
  let global_scope = ref Ints.Smap.empty in
  List.iter
    (function
      | Ast.Var_decl (name, te, loc) ->
          if Ints.Smap.mem name !global_scope then err loc "duplicate global %s" name;
          let ty = resolve_type tenv ~refs:0 te in
          (match ty with
          | Types.Topen _ -> err loc "global %s: open arrays must be under REF" name
          | _ -> ());
          let v =
            { Tast.v_id = !next_var; v_name = name; v_ty = ty; v_kind = Tast.Vglobal }
          in
          incr next_var;
          globals := v :: !globals;
          global_scope := Ints.Smap.add name v !global_scope
      | Ast.Type_decl _ | Ast.Proc_decl _ -> ())
    cu.Ast.decls;

  (* Procedure signatures (two passes to allow forward calls). *)
  let next_proc = ref 0 in
  let proc_syms = ref Ints.Smap.empty in
  let proc_decls =
    List.filter_map
      (function Ast.Proc_decl p -> Some p | Ast.Type_decl _ | Ast.Var_decl _ -> None)
      cu.Ast.decls
  in
  List.iter
    (fun (p : Ast.proc_decl) ->
      if Ints.Smap.mem p.Ast.proc_name !proc_syms then
        err p.Ast.proc_loc "duplicate procedure %s" p.Ast.proc_name;
      let params =
        List.map
          (fun (prm : Ast.param) ->
            let ty = resolve_type tenv ~refs:0 prm.Ast.p_type in
            (match ty with
            | Types.Topen _ ->
                err prm.Ast.p_loc "open array parameters are not supported; pass a REF"
            | _ -> ());
            if (not prm.Ast.p_var) && not (Types.is_scalar ty) then
              err prm.Ast.p_loc
                "records and arrays must be passed as VAR parameters or by REF";
            let v =
              {
                Tast.v_id = !next_var;
                v_name = prm.Ast.p_name;
                v_ty = ty;
                v_kind = (if prm.Ast.p_var then Tast.Vparam_ref else Tast.Vparam);
              }
            in
            incr next_var;
            v)
          p.Ast.params
      in
      let ret =
        match p.Ast.ret_type with
        | None -> Types.Tunit
        | Some t -> (
            let ty = resolve_type tenv ~refs:0 t in
            match ty with
            | ty when Types.is_scalar ty -> ty
            | other ->
                err p.Ast.proc_loc "procedures can only return scalar or REF values, not %s"
                  (Types.to_string other))
      in
      let sym =
        { Tast.p_id = !next_proc; p_name = p.Ast.proc_name; p_params = params; p_ret = ret }
      in
      incr next_proc;
      proc_syms := Ints.Smap.add p.Ast.proc_name sym !proc_syms)
    proc_decls;

  (* Check each procedure body. *)
  let check_proc (p : Ast.proc_decl) : Tast.tproc =
    let sym = Ints.Smap.find p.Ast.proc_name !proc_syms in
    let env =
      {
        tenv;
        procs = !proc_syms;
        scope = !global_scope;
        next_var = ref 0;
        proc_locals = [];
        current_ret = sym.Tast.p_ret;
      }
    in
    env.next_var <- next_var;
    List.iter
      (fun (v : Tast.var_sym) -> env.scope <- Ints.Smap.add v.Tast.v_name v env.scope)
      sym.Tast.p_params;
    let locals =
      List.map
        (fun (name, te, loc) ->
          if Ints.Smap.mem name env.scope &&
             (match Ints.Smap.find name env.scope with
              | { Tast.v_kind = Tast.Vparam | Tast.Vparam_ref; _ } -> true
              | _ -> false)
          then err loc "local %s shadows a parameter" name;
          let ty = resolve_type tenv ~refs:0 te in
          (match ty with
          | Types.Topen _ -> err loc "local %s: open arrays must be under REF" name
          | _ -> ());
          let v = fresh_var env name ty in
          env.scope <- Ints.Smap.add name v env.scope;
          v)
        p.Ast.locals
    in
    let body = check_stmts env p.Ast.body in
    { Tast.sym; locals = locals @ List.rev env.proc_locals; body }
  in
  let procs = List.map check_proc proc_decls in

  (* Module body as a synthetic parameterless procedure. *)
  let main_sym =
    { Tast.p_id = !next_proc; p_name = "$main"; p_params = []; p_ret = Types.Tunit }
  in
  let env =
    {
      tenv;
      procs = !proc_syms;
      scope = !global_scope;
      next_var;
      proc_locals = [];
      current_ret = Types.Tunit;
    }
  in
  let main_body = check_stmts env cu.Ast.main in
  let main = { Tast.sym = main_sym; locals = List.rev env.proc_locals; body = main_body } in
  {
    Tast.prog_name = cu.Ast.module_name;
    globals = List.rev !globals;
    procs;
    main;
    text_ty;
  }

let check_source src = check (Parser.parse src)
