(** Recursive-descent parser for M3L.

    Grammar sketch (see README for the full language description):
    {v
    unit    ::= MODULE id ';' decl* [BEGIN stmts] END id '.'
    decl    ::= TYPE (id '=' type ';')+
              | VAR (id (',' id)* ':' type ';')+
              | PROCEDURE id '(' params ')' [':' type] ';'
                  [VAR vardecls] BEGIN stmts END id ';'
    type    ::= id | RECORD fields END | ARRAY '[' int '..' int ']' OF type
              | ARRAY OF type | REF type
    stmt    ::= desig ':=' expr | id '(' args ')' | IF ... | WHILE ... |
                FOR id ':=' e TO e [BY int] DO ... END | RETURN [e] |
                WITH id '=' expr DO ... END
    v} *)

val parse : string -> Ast.compilation_unit
(** Parse a full compilation unit from source text.
    @raise M3l_error.Lex_error or M3l_error.Parse_error on bad input. *)

val parse_tokens : (Token.t * Srcloc.t) list -> Ast.compilation_unit
