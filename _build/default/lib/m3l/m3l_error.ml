(** Compilation errors raised by the M3L front end. *)

exception Lex_error of Srcloc.t * string
exception Parse_error of Srcloc.t * string
exception Type_error of Srcloc.t * string

let lex_error loc fmt = Printf.ksprintf (fun s -> raise (Lex_error (loc, s))) fmt
let parse_error loc fmt = Printf.ksprintf (fun s -> raise (Parse_error (loc, s))) fmt
let type_error loc fmt = Printf.ksprintf (fun s -> raise (Type_error (loc, s))) fmt

let describe = function
  | Lex_error (loc, msg) -> Some (Printf.sprintf "%s: lexical error: %s" (Srcloc.to_string loc) msg)
  | Parse_error (loc, msg) -> Some (Printf.sprintf "%s: parse error: %s" (Srcloc.to_string loc) msg)
  | Type_error (loc, msg) -> Some (Printf.sprintf "%s: type error: %s" (Srcloc.to_string loc) msg)
  | _ -> None
