(** Typed abstract syntax, the output of the checker and input to MIR
    lowering. Implicit dereferences have been made explicit ([Tfield]'s base
    always has record type, [Tindex]'s base always has array type); every
    variable reference is resolved to a {!var_sym}. *)

type var_kind =
  | Vglobal
  | Vlocal
  | Vparam (* by-value parameter *)
  | Vparam_ref (* VAR parameter: the slot holds the address of the actual *)
  | Valias (* WITH-bound alias over a designator: slot holds an address *)

type var_sym = {
  v_id : int; (* unique within the program *)
  v_name : string;
  v_ty : Types.ty; (* the type of the denoted value (not the slot) *)
  v_kind : var_kind;
}

type proc_sym = {
  p_id : int;
  p_name : string;
  p_params : var_sym list;
  p_ret : Types.ty; (* Tunit for proper procedures *)
}

type builtin =
  | Bput_int
  | Bput_char
  | Bput_text
  | Bput_ln
  | Bhalt

type tunop = Uneg | Unot | Uabs

type tbinop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Bmin
  | Bmax
  | Beq
  | Bneq
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band (* short-circuit *)
  | Bor (* short-circuit *)

type texpr = { desc : tdesc; ty : Types.ty; loc : Srcloc.t }

and tdesc =
  | Tconst_int of int
  | Tconst_bool of bool
  | Tconst_char of char
  | Tconst_nil
  | Tconst_text of string (* static TEXT literal *)
  | Tvar of var_sym
  | Tfield of texpr * int * string (* base place of record type, word offset *)
  | Tindex of texpr * texpr (* base place of (fixed or open) array type *)
  | Tderef of texpr (* base of ref type; yields a heap place *)
  | Tbinop of tbinop * texpr * texpr
  | Tunop of tunop * texpr
  | Tconvert of texpr (* identity conversion (ORD/CHR): retype only *)
  | Tcall of call
  | Tnew of Types.ty * texpr option (* referent type; length for open arrays *)
  | Tnumber of texpr (* length of an open-array place *)

and call = { callee : callee; args : targ list; ret : Types.ty }
and callee = Cuser of proc_sym | Cbuiltin of builtin

and targ =
  | Aval of texpr
  | Aref of texpr (* place passed by reference (VAR parameter) *)

type tstmt =
  | Sassign of texpr * texpr (* place := value *)
  | Scall of call
  | Sif of (texpr * tstmt list) list * tstmt list
  | Swhile of texpr * tstmt list
  | Sfor of var_sym * texpr * texpr * int * tstmt list
  | Sreturn of texpr option
  | Swith_alias of var_sym * texpr * tstmt list (* alias over a place *)
  | Swith_value of var_sym * texpr * tstmt list

type tproc = {
  sym : proc_sym;
  locals : var_sym list; (* not including params; includes WITH/FOR temps *)
  body : tstmt list;
}

type tprogram = {
  prog_name : string;
  globals : var_sym list;
  procs : tproc list;
  main : tproc; (* module body as a parameterless procedure *)
  text_ty : Types.ty; (* the TEXT type, REF ARRAY OF CHAR *)
}

(** Is this typed expression a place (assignable / addressable designator)? *)
let rec is_place e =
  match e.desc with
  | Tvar _ -> true
  | Tfield (b, _, _) -> is_place b
  | Tindex (b, _) -> is_place b
  | Tderef _ -> true
  | Tconst_int _ | Tconst_bool _ | Tconst_char _ | Tconst_nil | Tconst_text _
  | Tbinop _ | Tunop _ | Tconvert _ | Tcall _ | Tnew _ | Tnumber _ -> false
