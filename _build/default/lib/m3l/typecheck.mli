(** Static checker: resolves names and types, inserts implicit dereferences,
    resolves intrinsics (ORD, CHR, ABS, MIN, MAX, NUMBER, FIRST, LAST), and
    produces the typed AST consumed by MIR lowering. *)

val check : Ast.compilation_unit -> Tast.tprogram
(** @raise M3l_error.Type_error on ill-typed programs. *)

val check_source : string -> Tast.tprogram
(** Lex, parse and check in one step. *)
