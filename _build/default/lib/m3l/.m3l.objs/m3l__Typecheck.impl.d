lib/m3l/typecheck.ml: Ast Ints List M3l_error Parser Support Tast Types
