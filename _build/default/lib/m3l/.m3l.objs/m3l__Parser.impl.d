lib/m3l/parser.ml: Ast Lexer List M3l_error Srcloc Token
