lib/m3l/parser.mli: Ast Srcloc Token
