lib/m3l/token.ml: Printf
