lib/m3l/tast.ml: Srcloc Types
