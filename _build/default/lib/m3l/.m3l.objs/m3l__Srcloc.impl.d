lib/m3l/srcloc.ml: Format Printf
