lib/m3l/typecheck.mli: Ast Tast
