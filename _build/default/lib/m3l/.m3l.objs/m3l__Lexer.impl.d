lib/m3l/lexer.ml: Buffer List M3l_error Srcloc String Token
