lib/m3l/ast.ml: Srcloc
