lib/m3l/types.ml: Format List
