lib/m3l/m3l_error.ml: Printf Srcloc
