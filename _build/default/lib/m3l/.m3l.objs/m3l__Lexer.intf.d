lib/m3l/lexer.mli: Srcloc Token
