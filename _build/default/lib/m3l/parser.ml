type state = { mutable toks : (Token.t * Srcloc.t) list }

let peek st = match st.toks with [] -> (Token.EOF, Srcloc.dummy) | t :: _ -> t
let peek_tok st = fst (peek st)
let cur_loc st = snd (peek st)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got, l = peek st in
  if got = tok then advance st
  else
    M3l_error.parse_error l "expected %s but found %s" (Token.to_string tok)
      (Token.to_string got)

let accept st tok = if peek_tok st = tok then ( advance st; true ) else false

let expect_ident st =
  match next st with
  | Token.IDENT s, _ -> s
  | t, l -> M3l_error.parse_error l "expected identifier, found %s" (Token.to_string t)

let expect_int st =
  match next st with
  | Token.INT_LIT n, _ -> n
  | Token.MINUS, _ -> (
      match next st with
      | Token.INT_LIT n, _ -> -n
      | t, l ->
          M3l_error.parse_error l "expected integer literal, found %s" (Token.to_string t))
  | t, l -> M3l_error.parse_error l "expected integer literal, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_type st : Ast.type_expr =
  let l = cur_loc st in
  match peek_tok st with
  | Token.IDENT name ->
      advance st;
      Ast.Tname (name, l)
  | Token.REF ->
      advance st;
      Ast.Tref (parse_type st, l)
  | Token.RECORD ->
      advance st;
      let fields = ref [] in
      while peek_tok st <> Token.END do
        (* field group: id (',' id)* ':' type [';'] *)
        let names = ref [ expect_ident st ] in
        while accept st Token.COMMA do
          names := expect_ident st :: !names
        done;
        expect st Token.COLON;
        let ty = parse_type st in
        List.iter (fun n -> fields := (n, ty) :: !fields) (List.rev !names);
        ignore (accept st Token.SEMI)
      done;
      expect st Token.END;
      Ast.Trecord (List.rev !fields, l)
  | Token.ARRAY ->
      advance st;
      if accept st Token.LBRACKET then begin
        let lo = expect_int st in
        expect st Token.DOTDOT;
        let hi = expect_int st in
        expect st Token.RBRACKET;
        expect st Token.OF;
        Ast.Tarray (lo, hi, parse_type st, l)
      end
      else begin
        expect st Token.OF;
        Ast.Topen_array (parse_type st, l)
      end
  | t -> M3l_error.parse_error l "expected a type, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Precedence (lowest first): OR | AND | NOT | relations | + - | * DIV MOD |
   unary - | suffixes. *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek_tok st = Token.OR then begin
    let l = cur_loc st in
    advance st;
    let rhs = parse_or st in
    Ast.Binop (Ast.Or, lhs, rhs, l)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek_tok st = Token.AND then begin
    let l = cur_loc st in
    advance st;
    let rhs = parse_and st in
    Ast.Binop (Ast.And, lhs, rhs, l)
  end
  else lhs

and parse_not st =
  if peek_tok st = Token.NOT then begin
    let l = cur_loc st in
    advance st;
    Ast.Unop (Ast.Not, parse_not st, l)
  end
  else parse_rel st

and parse_rel st =
  let lhs = parse_add st in
  let op =
    match peek_tok st with
    | Token.EQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Neq
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
      let l = cur_loc st in
      advance st;
      let rhs = parse_add st in
      Ast.Binop (op, lhs, rhs, l)

and parse_add st =
  let rec go lhs =
    match peek_tok st with
    | Token.PLUS ->
        let l = cur_loc st in
        advance st;
        go (Ast.Binop (Ast.Add, lhs, parse_mul st, l))
    | Token.MINUS ->
        let l = cur_loc st in
        advance st;
        go (Ast.Binop (Ast.Sub, lhs, parse_mul st, l))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match peek_tok st with
    | Token.STAR ->
        let l = cur_loc st in
        advance st;
        go (Ast.Binop (Ast.Mul, lhs, parse_unary st, l))
    | Token.DIV ->
        let l = cur_loc st in
        advance st;
        go (Ast.Binop (Ast.Div, lhs, parse_unary st, l))
    | Token.MOD ->
        let l = cur_loc st in
        advance st;
        go (Ast.Binop (Ast.Mod, lhs, parse_unary st, l))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  if peek_tok st = Token.MINUS then begin
    let l = cur_loc st in
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st, l)
  end
  else parse_suffix st

and parse_suffix st =
  let rec go e =
    match peek_tok st with
    | Token.DOT ->
        let l = cur_loc st in
        advance st;
        let f = expect_ident st in
        go (Ast.Field (e, f, l))
    | Token.LBRACKET ->
        let l = cur_loc st in
        advance st;
        let i = parse_expr st in
        expect st Token.RBRACKET;
        go (Ast.Index (e, i, l))
    | Token.CARET ->
        let l = cur_loc st in
        advance st;
        go (Ast.Deref (e, l))
    | _ -> e
  in
  go (parse_atom st)

and parse_args st =
  expect st Token.LPAREN;
  let args = ref [] in
  if peek_tok st <> Token.RPAREN then begin
    args := [ Ast.Arg (parse_expr st) ];
    while accept st Token.COMMA do
      args := Ast.Arg (parse_expr st) :: !args
    done
  end;
  expect st Token.RPAREN;
  List.rev !args

and parse_atom st =
  let tok, l = peek st in
  match tok with
  | Token.INT_LIT n ->
      advance st;
      Ast.Int_lit (n, l)
  | Token.CHAR_LIT c ->
      advance st;
      Ast.Char_lit (c, l)
  | Token.STR_LIT s ->
      advance st;
      Ast.Str_lit (s, l)
  | Token.TRUE ->
      advance st;
      Ast.Bool_lit (true, l)
  | Token.FALSE ->
      advance st;
      Ast.Bool_lit (false, l)
  | Token.NIL ->
      advance st;
      Ast.Nil_lit l
  | Token.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Token.RPAREN;
      e
  | Token.IDENT "NEW" ->
      advance st;
      expect st Token.LPAREN;
      let ty = parse_type st in
      let n = if accept st Token.COMMA then Some (parse_expr st) else None in
      expect st Token.RPAREN;
      Ast.New_expr (ty, n, l)
  | Token.IDENT name ->
      advance st;
      if peek_tok st = Token.LPAREN then Ast.Call_expr (name, parse_args st, l)
      else Ast.Var (name, l)
  | t -> M3l_error.parse_error l "expected an expression, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmts st ~terminators : Ast.stmt list =
  let stmts = ref [] in
  let at_end () = List.mem (peek_tok st) terminators in
  while not (at_end ()) do
    stmts := parse_stmt st :: !stmts;
    (* Statements are separated by semicolons; trailing semicolon allowed. *)
    if not (at_end ()) then expect st Token.SEMI
  done;
  List.rev !stmts

and parse_stmt st : Ast.stmt =
  let tok, l = peek st in
  match tok with
  | Token.IF ->
      advance st;
      let rec branches () =
        let cond = parse_expr st in
        expect st Token.THEN;
        let body = parse_stmts st ~terminators:[ Token.ELSIF; Token.ELSE; Token.END ] in
        match peek_tok st with
        | Token.ELSIF ->
            advance st;
            let rest, els = branches () in
            ((cond, body) :: rest, els)
        | Token.ELSE ->
            advance st;
            let els = parse_stmts st ~terminators:[ Token.END ] in
            ([ (cond, body) ], els)
        | _ -> ([ (cond, body) ], [])
      in
      let brs, els = branches () in
      expect st Token.END;
      Ast.If (brs, els, l)
  | Token.WHILE ->
      advance st;
      let cond = parse_expr st in
      expect st Token.DO;
      let body = parse_stmts st ~terminators:[ Token.END ] in
      expect st Token.END;
      Ast.While (cond, body, l)
  | Token.FOR ->
      advance st;
      let v = expect_ident st in
      expect st Token.ASSIGN;
      let lo = parse_expr st in
      expect st Token.TO;
      let hi = parse_expr st in
      let step = if accept st Token.BY then expect_int st else 1 in
      if step = 0 then M3l_error.parse_error l "FOR step must be nonzero";
      expect st Token.DO;
      let body = parse_stmts st ~terminators:[ Token.END ] in
      expect st Token.END;
      Ast.For (v, lo, hi, step, body, l)
  | Token.RETURN ->
      advance st;
      let e =
        match peek_tok st with
        | Token.SEMI | Token.END | Token.ELSE | Token.ELSIF -> None
        | _ -> Some (parse_expr st)
      in
      Ast.Return (e, l)
  | Token.WITH ->
      advance st;
      let v = expect_ident st in
      expect st Token.EQ;
      let e = parse_expr st in
      expect st Token.DO;
      let body = parse_stmts st ~terminators:[ Token.END ] in
      expect st Token.END;
      Ast.With (v, e, body, l)
  | Token.IDENT name -> (
      advance st;
      (* Either a call statement or the start of a designator assignment. *)
      if peek_tok st = Token.LPAREN then Ast.Call_stmt (name, parse_args st, l)
      else
        let desig =
          let rec go e =
            match peek_tok st with
            | Token.DOT ->
                let dl = cur_loc st in
                advance st;
                let f = expect_ident st in
                go (Ast.Field (e, f, dl))
            | Token.LBRACKET ->
                let dl = cur_loc st in
                advance st;
                let i = parse_expr st in
                expect st Token.RBRACKET;
                go (Ast.Index (e, i, dl))
            | Token.CARET ->
                let dl = cur_loc st in
                advance st;
                go (Ast.Deref (e, dl))
            | _ -> e
          in
          go (Ast.Var (name, l))
        in
        match peek_tok st with
        | Token.ASSIGN ->
            advance st;
            let rhs = parse_expr st in
            Ast.Assign (desig, rhs, l)
        | t ->
            M3l_error.parse_error (cur_loc st) "expected ':=' after designator, found %s"
              (Token.to_string t))
  | t -> M3l_error.parse_error l "expected a statement, found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_var_group st =
  (* id (',' id)* ':' type ';' — returns the list of (name, ty, loc). *)
  let l = cur_loc st in
  let names = ref [ expect_ident st ] in
  while accept st Token.COMMA do
    names := expect_ident st :: !names
  done;
  expect st Token.COLON;
  let ty = parse_type st in
  expect st Token.SEMI;
  List.rev_map (fun n -> (n, ty, l)) !names

let parse_params st : Ast.param list =
  expect st Token.LPAREN;
  let params = ref [] in
  let parse_group () =
    let l = cur_loc st in
    let is_var = accept st Token.VAR in
    let names = ref [ expect_ident st ] in
    while accept st Token.COMMA do
      names := expect_ident st :: !names
    done;
    expect st Token.COLON;
    let ty = parse_type st in
    List.iter
      (fun n -> params := { Ast.p_name = n; p_type = ty; p_var = is_var; p_loc = l } :: !params)
      (List.rev !names)
  in
  if peek_tok st <> Token.RPAREN then begin
    parse_group ();
    while accept st Token.SEMI do
      parse_group ()
    done
  end;
  expect st Token.RPAREN;
  List.rev !params

let parse_proc st : Ast.proc_decl =
  let l = cur_loc st in
  expect st Token.PROCEDURE;
  let name = expect_ident st in
  let params = parse_params st in
  let ret = if accept st Token.COLON then Some (parse_type st) else None in
  expect st Token.SEMI;
  let locals = ref [] in
  while peek_tok st = Token.VAR do
    advance st;
    let rec groups () =
      match peek_tok st with
      | Token.IDENT _ ->
          locals := !locals @ parse_var_group st;
          groups ()
      | _ -> ()
    in
    groups ()
  done;
  expect st Token.BEGIN;
  let body = parse_stmts st ~terminators:[ Token.END ] in
  expect st Token.END;
  let close = expect_ident st in
  if close <> name then
    M3l_error.parse_error (cur_loc st) "procedure %s closed by END %s" name close;
  expect st Token.SEMI;
  { Ast.proc_name = name; params; ret_type = ret; locals = !locals; body; proc_loc = l }

let parse_tokens toks : Ast.compilation_unit =
  let st = { toks } in
  expect st Token.MODULE;
  let module_name = expect_ident st in
  expect st Token.SEMI;
  let decls = ref [] in
  let rec go () =
    match peek_tok st with
    | Token.TYPE ->
        advance st;
        let rec types () =
          match peek_tok st with
          | Token.IDENT name ->
              let l = cur_loc st in
              advance st;
              expect st Token.EQ;
              let ty = parse_type st in
              expect st Token.SEMI;
              decls := Ast.Type_decl (name, ty, l) :: !decls;
              types ()
          | _ -> ()
        in
        types ();
        go ()
    | Token.VAR ->
        advance st;
        let rec vars () =
          match peek_tok st with
          | Token.IDENT _ ->
              List.iter
                (fun (n, ty, l) -> decls := Ast.Var_decl (n, ty, l) :: !decls)
                (parse_var_group st);
              vars ()
          | _ -> ()
        in
        vars ();
        go ()
    | Token.PROCEDURE ->
        decls := Ast.Proc_decl (parse_proc st) :: !decls;
        go ()
    | _ -> ()
  in
  go ();
  let main =
    if accept st Token.BEGIN then parse_stmts st ~terminators:[ Token.END ] else []
  in
  expect st Token.END;
  let close = expect_ident st in
  if close <> module_name then
    M3l_error.parse_error (cur_loc st) "module %s closed by END %s" module_name close;
  expect st Token.DOT;
  { Ast.module_name; decls = List.rev !decls; main }

let parse src = parse_tokens (Lexer.tokenize src)
