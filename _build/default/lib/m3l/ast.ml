(** Abstract syntax of M3L, as produced by the parser (untyped). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And (* short-circuit *)
  | Or (* short-circuit *)

type unop = Neg | Not

(** Type expressions as written in the source. *)
type type_expr =
  | Tname of string * Srcloc.t (* INTEGER, BOOLEAN, CHAR, TEXT or a declared name *)
  | Trecord of (string * type_expr) list * Srcloc.t
  | Tarray of int * int * type_expr * Srcloc.t (* ARRAY [lo..hi] OF T *)
  | Topen_array of type_expr * Srcloc.t (* ARRAY OF T — only under REF *)
  | Tref of type_expr * Srcloc.t

type expr =
  | Int_lit of int * Srcloc.t
  | Char_lit of char * Srcloc.t
  | Str_lit of string * Srcloc.t
  | Bool_lit of bool * Srcloc.t
  | Nil_lit of Srcloc.t
  | Var of string * Srcloc.t
  | Field of expr * string * Srcloc.t (* e.f (implicit deref on REF) *)
  | Index of expr * expr * Srcloc.t (* e[i] (implicit deref on REF) *)
  | Deref of expr * Srcloc.t (* e^ *)
  | Binop of binop * expr * expr * Srcloc.t
  | Unop of unop * expr * Srcloc.t
  | Call_expr of string * arg list * Srcloc.t
  | New_expr of type_expr * expr option * Srcloc.t (* NEW(T) / NEW(T, n) *)

and arg = Arg of expr (* argument expression; VAR-ness resolved by checker *)

type stmt =
  | Assign of expr * expr * Srcloc.t (* designator := expr *)
  | Call_stmt of string * arg list * Srcloc.t
  | If of (expr * stmt list) list * stmt list * Srcloc.t
    (* branches (cond, body) for IF/ELSIF chain; final else *)
  | While of expr * stmt list * Srcloc.t
  | For of string * expr * expr * int * stmt list * Srcloc.t
    (* FOR id := lo TO hi BY step DO ... END, step a nonzero constant *)
  | Return of expr option * Srcloc.t
  | With of string * expr * stmt list * Srcloc.t (* WITH id = e DO ... END *)

type param = { p_name : string; p_type : type_expr; p_var : bool; p_loc : Srcloc.t }

type proc_decl = {
  proc_name : string;
  params : param list;
  ret_type : type_expr option;
  locals : (string * type_expr * Srcloc.t) list;
  body : stmt list;
  proc_loc : Srcloc.t;
}

type decl =
  | Type_decl of string * type_expr * Srcloc.t
  | Var_decl of string * type_expr * Srcloc.t
  | Proc_decl of proc_decl

type compilation_unit = {
  module_name : string;
  decls : decl list;
  main : stmt list; (* module body *)
}

let loc_of_expr = function
  | Int_lit (_, l)
  | Char_lit (_, l)
  | Str_lit (_, l)
  | Bool_lit (_, l)
  | Nil_lit l
  | Var (_, l)
  | Field (_, _, l)
  | Index (_, _, l)
  | Deref (_, l)
  | Binop (_, _, _, l)
  | Unop (_, _, l)
  | Call_expr (_, _, l)
  | New_expr (_, _, l) -> l
