(** Lexical tokens of M3L, the Modula-3-like source language. *)

type t =
  | IDENT of string
  | INT_LIT of int
  | CHAR_LIT of char
  | STR_LIT of string
  (* Keywords *)
  | MODULE
  | TYPE
  | VAR
  | PROCEDURE
  | BEGIN
  | END
  | IF
  | THEN
  | ELSIF
  | ELSE
  | WHILE
  | DO
  | FOR
  | TO
  | BY
  | RETURN
  | RECORD
  | ARRAY
  | OF
  | REF
  | WITH
  | DIV
  | MOD
  | AND
  | OR
  | NOT
  | NIL
  | TRUE
  | FALSE
  (* Punctuation and operators *)
  | SEMI
  | COMMA
  | COLON
  | DOT
  | DOTDOT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | CARET
  | ASSIGN (* := *)
  | EQ (* = *)
  | NEQ (* # *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | EOF

let keyword_table : (string * t) list =
  [
    ("MODULE", MODULE);
    ("TYPE", TYPE);
    ("VAR", VAR);
    ("PROCEDURE", PROCEDURE);
    ("BEGIN", BEGIN);
    ("END", END);
    ("IF", IF);
    ("THEN", THEN);
    ("ELSIF", ELSIF);
    ("ELSE", ELSE);
    ("WHILE", WHILE);
    ("DO", DO);
    ("FOR", FOR);
    ("TO", TO);
    ("BY", BY);
    ("RETURN", RETURN);
    ("RECORD", RECORD);
    ("ARRAY", ARRAY);
    ("OF", OF);
    ("REF", REF);
    ("WITH", WITH);
    ("DIV", DIV);
    ("MOD", MOD);
    ("AND", AND);
    ("OR", OR);
    ("NOT", NOT);
    ("NIL", NIL);
    ("TRUE", TRUE);
    ("FALSE", FALSE);
  ]

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | CHAR_LIT c -> Printf.sprintf "character %C" c
  | STR_LIT s -> Printf.sprintf "string %S" s
  | MODULE -> "MODULE"
  | TYPE -> "TYPE"
  | VAR -> "VAR"
  | PROCEDURE -> "PROCEDURE"
  | BEGIN -> "BEGIN"
  | END -> "END"
  | IF -> "IF"
  | THEN -> "THEN"
  | ELSIF -> "ELSIF"
  | ELSE -> "ELSE"
  | WHILE -> "WHILE"
  | DO -> "DO"
  | FOR -> "FOR"
  | TO -> "TO"
  | BY -> "BY"
  | RETURN -> "RETURN"
  | RECORD -> "RECORD"
  | ARRAY -> "ARRAY"
  | OF -> "OF"
  | REF -> "REF"
  | WITH -> "WITH"
  | DIV -> "DIV"
  | MOD -> "MOD"
  | AND -> "AND"
  | OR -> "OR"
  | NOT -> "NOT"
  | NIL -> "NIL"
  | TRUE -> "TRUE"
  | FALSE -> "FALSE"
  | SEMI -> "';'"
  | COMMA -> "','"
  | COLON -> "':'"
  | DOT -> "'.'"
  | DOTDOT -> "'..'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | CARET -> "'^'"
  | ASSIGN -> "':='"
  | EQ -> "'='"
  | NEQ -> "'#'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | EOF -> "end of input"
