(** Constant folding and algebraic simplification, including folding
    conditional branches on constant operands. Division and modulo follow
    Modula-3 semantics (round toward minus infinity) and are not folded when
    the divisor is zero (the trap must still happen at run time). *)

module Ir = Mir.Ir

let m3_div a b =
  let q = a / b in
  if (a < 0) <> (b < 0) && q * b <> a then q - 1 else q

let m3_mod a b = a - (b * m3_div a b)

let eval_binop (op : Ir.binop) a b : int option =
  match op with
  | Ir.Add -> Some (a + b)
  | Ir.Sub -> Some (a - b)
  | Ir.Mul -> Some (a * b)
  | Ir.Div -> if b = 0 then None else Some (m3_div a b)
  | Ir.Mod -> if b = 0 then None else Some (m3_mod a b)
  | Ir.Min -> Some (min a b)
  | Ir.Max -> Some (max a b)

let eval_relop (r : Ir.relop) a b =
  match r with
  | Ir.Req -> a = b
  | Ir.Rne -> a <> b
  | Ir.Rlt -> a < b
  | Ir.Rle -> a <= b
  | Ir.Rgt -> a > b
  | Ir.Rge -> a >= b

let fold_instr (i : Ir.instr) : Ir.instr option =
  match i with
  | Ir.Bin (op, d, Ir.Oimm a, Ir.Oimm b) -> (
      match eval_binop op a b with Some v -> Some (Ir.Mov (d, Ir.Oimm v)) | None -> None)
  | Ir.Bin (Ir.Add, d, s, Ir.Oimm 0) | Ir.Bin (Ir.Add, d, Ir.Oimm 0, s) ->
      Some (Ir.Mov (d, s))
  | Ir.Bin (Ir.Sub, d, s, Ir.Oimm 0) -> Some (Ir.Mov (d, s))
  | Ir.Bin (Ir.Mul, d, s, Ir.Oimm 1) | Ir.Bin (Ir.Mul, d, Ir.Oimm 1, s) ->
      Some (Ir.Mov (d, s))
  | Ir.Bin (Ir.Mul, d, _, Ir.Oimm 0) | Ir.Bin (Ir.Mul, d, Ir.Oimm 0, _) ->
      Some (Ir.Mov (d, Ir.Oimm 0))
  | Ir.Neg (d, Ir.Oimm n) -> Some (Ir.Mov (d, Ir.Oimm (-n)))
  | Ir.Abs (d, Ir.Oimm n) -> Some (Ir.Mov (d, Ir.Oimm (abs n)))
  | Ir.Setrel (r, d, Ir.Oimm a, Ir.Oimm b) ->
      Some (Ir.Mov (d, Ir.Oimm (if eval_relop r a b then 1 else 0)))
  | _ -> None

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  Array.iter
    (fun (blk : Ir.block) ->
      blk.Ir.instrs <-
        List.map
          (fun i ->
            match fold_instr i with
            | Some i' ->
                changed := true;
                i'
            | None -> i)
          blk.Ir.instrs;
      match blk.Ir.term with
      | Ir.Cjmp (r, Ir.Oimm a, Ir.Oimm b, tl, fl) ->
          changed := true;
          blk.Ir.term <- Ir.Jmp (if eval_relop r a b then tl else fl)
      | Ir.Cjmp (_, _, _, tl, fl) when tl = fl ->
          changed := true;
          blk.Ir.term <- Ir.Jmp tl
      | _ -> ())
    f.Ir.blocks;
  !changed
