(** Virtual array origin (paper §2).

    Accessing [A\[i\]] for [A : ARRAY \[lo..hi\] OF T] with nonzero [lo]
    naively computes [base + (i - lo) * esz]. The subtraction is avoided by
    rewriting to [(base - lo*esz) + i*esz]: the parenthesized part is the
    {e virtual origin} — an untidy pointer that may point outside the object
    it refers to, and must therefore be described as a derived value.

    Pattern (produced by lowering, possibly after CSE):
    {v  t1 := sub i, lo ; t2 := mul t1, esz ; t3 := add base, t2  v}
    (or without the [mul] when [esz = 1]) rewrites to
    {v  tv := add base, -(lo*esz) ; t2' := mul i, esz ; t3 := add tv, t2'  v}
    The derivation recorded for [t3] keeps its original bases, which remain
    valid ([t3 = Σbases + E'] still holds with the new [E']). *)

module Ir = Mir.Ir

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  (* Count uses so we only rewrite single-use chains. *)
  let uses = Array.make f.Ir.ntemps 0 in
  let count (o : Ir.operand) =
    match o with Ir.Otemp t -> uses.(t) <- uses.(t) + 1 | Ir.Oimm _ -> ()
  in
  Array.iter
    (fun (blk : Ir.block) ->
      List.iter (fun i -> List.iter count (Ir.instr_uses i)) blk.Ir.instrs;
      List.iter count (Ir.term_uses blk.Ir.term))
    f.Ir.blocks;
  let deriv_of_operand (o : Ir.operand) =
    match o with
    | Ir.Oimm _ -> Mir.Deriv.empty
    | Ir.Otemp t -> (
        match Ir.temp_kind f t with
        | Ir.Kptr | Ir.Kderived _ -> Mir.Deriv.of_base (Mir.Deriv.Btemp t)
        | Ir.Kscalar | Ir.Kstack -> Mir.Deriv.empty)
  in
  let is_addr_kind (o : Ir.operand) =
    match o with
    | Ir.Otemp t -> (
        match Ir.temp_kind f t with
        | Ir.Kptr | Ir.Kderived _ -> true
        | Ir.Kscalar | Ir.Kstack -> false)
    | Ir.Oimm _ -> false
  in
  Array.iter
    (fun (blk : Ir.block) ->
      let rec rewrite (instrs : Ir.instr list) : Ir.instr list =
        match instrs with
        (* t1 := i - lo ; t2 := t1 * esz ; t3 := base + t2 *)
        | Ir.Bin (Ir.Sub, t1, i_op, Ir.Oimm lo)
          :: Ir.Bin (Ir.Mul, t2, Ir.Otemp t1', Ir.Oimm esz)
          :: Ir.Bin (Ir.Add, t3, base, Ir.Otemp t2')
          :: rest
          when t1 = t1' && t2 = t2' && lo <> 0 && uses.(t1) = 1 && uses.(t2) = 1
               && is_addr_kind base ->
            changed := true;
            let d = deriv_of_operand base in
            let tv = Ir.fresh_temp f (Ir.Kderived d) in
            Ir.Bin (Ir.Add, tv, base, Ir.Oimm (-lo * esz))
            :: Ir.Bin (Ir.Mul, t2, i_op, Ir.Oimm esz)
            :: Ir.Bin (Ir.Add, t3, Ir.Otemp tv, Ir.Otemp t2)
            :: rewrite rest
        (* esz = 1: t1 := i - lo ; t3 := base + t1 *)
        | Ir.Bin (Ir.Sub, t1, i_op, Ir.Oimm lo)
          :: Ir.Bin (Ir.Add, t3, base, Ir.Otemp t1')
          :: rest
          when t1 = t1' && lo <> 0 && uses.(t1) = 1 && is_addr_kind base ->
            changed := true;
            let d = deriv_of_operand base in
            let tv = Ir.fresh_temp f (Ir.Kderived d) in
            Ir.Bin (Ir.Add, tv, base, Ir.Oimm (-lo))
            :: Ir.Bin (Ir.Add, t3, Ir.Otemp tv, i_op)
            :: rewrite rest
        | i :: rest -> i :: rewrite rest
        | [] -> []
      in
      blk.Ir.instrs <- rewrite blk.Ir.instrs)
    f.Ir.blocks;
  !changed
