(** Interprocedural never-allocates analysis (the refinement the paper's
    §5.3 leaves open: "If the compiler performs inter-procedural analysis
    then it can determine that some procedures never allocate any heap
    storage and thus calls to them need not be gc-points").

    A procedure allocates if it contains an allocating runtime call or a
    call to an allocating procedure; the fixpoint starts from "nothing
    allocates" and grows. *)

module Ir = Mir.Ir

let analyze (prog : Ir.program) : int -> bool =
  let n = Array.length prog.Ir.funcs in
  let allocates = Array.make n false in
  let direct fid =
    Array.exists
      (fun (blk : Ir.block) ->
        List.exists
          (fun i ->
            match i with
            | Ir.Call (_, Ir.Crt rc, _) -> Ir.rt_allocates rc
            | _ -> false)
          blk.Ir.instrs)
      prog.Ir.funcs.(fid).Ir.blocks
  in
  for fid = 0 to n - 1 do
    allocates.(fid) <- direct fid
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for fid = 0 to n - 1 do
      if not allocates.(fid) then
        let calls_allocating =
          Array.exists
            (fun (blk : Ir.block) ->
              List.exists
                (fun i ->
                  match i with
                  | Ir.Call (_, Ir.Cuser g, _) -> allocates.(g)
                  | _ -> false)
                blk.Ir.instrs)
            prog.Ir.funcs.(fid).Ir.blocks
        in
        if calls_allocating then begin
          allocates.(fid) <- true;
          changed := true
        end
    done
  done;
  fun fid -> fid >= 0 && fid < n && not allocates.(fid)
