(** CFG cleanup: remove unreachable blocks (left behind by branch folding
    and path-variable merging) and renumber the remainder. *)

module Ir = Mir.Ir

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let nb = Array.length f.Ir.blocks in
  let reachable = Array.make nb false in
  let rec dfs b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter dfs (Ir.term_succs f.Ir.blocks.(b).Ir.term)
    end
  in
  dfs 0;
  if Array.for_all (fun x -> x) reachable then false
  else begin
    let remap = Array.make nb (-1) in
    let next = ref 0 in
    for b = 0 to nb - 1 do
      if reachable.(b) then begin
        remap.(b) <- !next;
        incr next
      end
    done;
    let blocks =
      Array.of_list
        (List.filteri (fun b _ -> reachable.(b)) (Array.to_list f.Ir.blocks))
    in
    Array.iter
      (fun (blk : Ir.block) ->
        blk.Ir.term <-
          (match blk.Ir.term with
          | Ir.Jmp l -> Ir.Jmp remap.(l)
          | Ir.Cjmp (r, a, b, tl, fl) -> Ir.Cjmp (r, a, b, remap.(tl), remap.(fl))
          | (Ir.Ret _ | Ir.Unreachable) as t -> t))
      blocks;
    f.Ir.blocks <- blocks;
    true
  end
