(** Local (per-block) copy and constant propagation: uses of a temp defined
    by [t := s] are replaced by [s] while the copy is transparent. *)

module Ir = Mir.Ir

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  Array.iter
    (fun (blk : Ir.block) ->
      let env : (int, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
      let invalidate_temp t =
        Hashtbl.remove env t;
        (* Drop any mapping whose value mentions t. *)
        let stale =
          Hashtbl.fold
            (fun k v acc -> if v = Ir.Otemp t then k :: acc else acc)
            env []
        in
        List.iter (Hashtbl.remove env) stale
      in
      let subst (o : Ir.operand) =
        match o with
        | Ir.Oimm _ -> o
        | Ir.Otemp t -> (
            match Hashtbl.find_opt env t with
            | Some o' ->
                changed := true;
                o'
            | None -> o)
      in
      let instrs =
        List.map
          (fun i ->
            let i' = Ir.map_instr_uses subst i in
            (match Ir.instr_def i' with Some d -> invalidate_temp d | None -> ());
            (match i' with
            | Ir.Mov (d, src) when src <> Ir.Otemp d -> Hashtbl.replace env d src
            | _ -> ());
            i')
          blk.Ir.instrs
      in
      blk.Ir.instrs <- instrs;
      blk.Ir.term <- Ir.map_term_uses subst blk.Ir.term)
    f.Ir.blocks;
  !changed
