(** GC-points in loops (paper §5.3).

    In a pre-emptively scheduled multi-threaded system, a suspended thread
    must reach a gc-point in bounded time, so every loop needs a
    {e guaranteed} gc-point: one reached on every iteration regardless of
    the path taken. A loop already has one if every path from the header
    back to the header passes an allocating call (including through nested
    loops, whose own guaranteed gc-points count). Loops without one get an
    [rt_gc_check] call inserted at the loop header. *)

module Ir = Mir.Ir
module Iset = Support.Ints.Iset

let block_has_gcpoint (blk : Ir.block) =
  List.exists
    (fun i ->
      match i with
      | Ir.Call (_, callee, _) -> Ir.call_is_gcpoint callee
      | _ -> false)
    blk.Ir.instrs

(* Is there a cycle through [header] that avoids gc-point blocks entirely?
   DFS within the loop body through "clean" blocks. *)
let needs_gcpoint (f : Ir.func) (l : Mir.Cfg.loop) =
  if block_has_gcpoint f.Ir.blocks.(l.Mir.Cfg.header) then false
  else begin
    let visited = ref Iset.empty in
    let found = ref false in
    let rec dfs b ~first =
      if (not !found) && ((not (Iset.mem b !visited)) || (b = l.Mir.Cfg.header && not first))
      then begin
        if b = l.Mir.Cfg.header && not first then found := true
        else begin
          visited := Iset.add b !visited;
          if not (block_has_gcpoint f.Ir.blocks.(b)) then
            List.iter
              (fun s -> if Iset.mem s l.Mir.Cfg.body then dfs s ~first:false)
              (Ir.term_succs f.Ir.blocks.(b).Ir.term)
        end
      end
    in
    dfs l.Mir.Cfg.header ~first:true;
    !found
  end

let run_func (f : Ir.func) : int =
  let loops = Mir.Cfg.natural_loops f in
  (* Inner loops first so their inserted gc-points count for outer loops. *)
  let loops =
    List.sort (fun a b -> compare (Iset.cardinal a.Mir.Cfg.body) (Iset.cardinal b.Mir.Cfg.body)) loops
  in
  let inserted = ref 0 in
  List.iter
    (fun l ->
      if needs_gcpoint f l then begin
        let header = f.Ir.blocks.(l.Mir.Cfg.header) in
        header.Ir.instrs <- Ir.Call (None, Ir.Crt Ir.Rt_gc_check, []) :: header.Ir.instrs;
        incr inserted
      end)
    loops;
  !inserted

let run (prog : Ir.program) : int =
  Array.fold_left (fun acc f -> acc + run_func f) 0 prog.Ir.funcs
