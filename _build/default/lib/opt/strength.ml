(** Strength reduction of array addressing in counted loops — the paper's
    first optimization example (§2): an indexing loop becomes a pointer
    marching through the array. The marching pointer is a {e derived value}
    that is live at every gc-point in the loop, which is exactly what the
    derivation tables must describe.

    Recognized shape (produced by lowering, possibly after CSE/LICM):
    - an induction local [iv] with exactly one in-loop store
      [iv := load(iv) + step];
    - an address [taddr := base + off] where [base] is loop-invariant (an
      invariant temp, or a fresh load of a slot never stored in the loop)
      and [off] is [(load(iv) − lo) · esz] (with the [−lo] and [·esz] parts
      optional).

    The rewrite materializes a new frame slot [pl] holding
    [base + (iv − lo)·esz], initialized in the preheader and incremented by
    [step·esz] right after [iv]'s own increment; the address computation
    becomes a load of [pl]. [pl] is recorded as a derived slot whose base is
    the array pointer, so every gc-point in the loop gets a derivation
    table entry for it. *)

module Ir = Mir.Ir
module Iset = Support.Ints.Iset

type defsite = { db : int (* block *); instr : Ir.instr }

let build_defs (f : Ir.func) =
  let defs = Hashtbl.create 64 in
  let count = Array.make f.Ir.ntemps 0 in
  Array.iteri
    (fun b (blk : Ir.block) ->
      List.iter
        (fun i ->
          match Ir.instr_def i with
          | Some d ->
              count.(d) <- count.(d) + 1;
              Hashtbl.replace defs d { db = b; instr = i }
          | None -> ())
        blk.Ir.instrs)
    f.Ir.blocks;
  (defs, count)

(* Decompose an offset operand into (iv, lo, esz): off = (load iv - lo) * esz. *)
let decompose_offset (defs, count) ~in_body (off : Ir.operand) : (int * int * int) option =
  let single_def t = count.(t) = 1 in
  let def t = Hashtbl.find_opt defs t in
  let iv_load (o : Ir.operand) =
    match o with
    | Ir.Otemp t when single_def t -> (
        match def t with
        | Some { db; instr = Ir.Ld_local (_, iv, 0) } when in_body db -> Some iv
        | _ -> None)
    | _ -> None
  in
  let sub_lo (o : Ir.operand) =
    (* o = load(iv) - lo  |  load(iv) *)
    match o with
    | Ir.Otemp t when single_def t -> (
        match def t with
        | Some { db; instr = Ir.Bin (Ir.Sub, _, a, Ir.Oimm lo) } when in_body db -> (
            match iv_load a with Some iv -> Some (iv, lo) | None -> None)
        | _ -> (
            match iv_load o with Some iv -> Some (iv, 0) | None -> None))
    | _ -> None
  in
  match off with
  | Ir.Otemp t when single_def t -> (
      match def t with
      | Some { db; instr = Ir.Bin (Ir.Mul, _, a, Ir.Oimm esz) } when in_body db -> (
          match sub_lo a with Some (iv, lo) -> Some (iv, lo, esz) | None -> None)
      | _ -> (
          match sub_lo off with Some (iv, lo) -> Some (iv, lo, 1) | None -> None))
  | _ -> None

let reduce_loop (f : Ir.func) (l : Mir.Cfg.loop) : bool =
  let body = l.Mir.Cfg.body in
  let in_body b = Iset.mem b body in
  let defs, count = build_defs f in
  (* Locals stored in the loop, with their single-store description. *)
  let store_sites = Hashtbl.create 8 in
  let store_counts = Hashtbl.create 8 in
  let has_call = ref false in
  Iset.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.St_local (lo, 0, v) ->
              Hashtbl.replace store_counts lo
                (1 + Option.value ~default:0 (Hashtbl.find_opt store_counts lo));
              Hashtbl.replace store_sites lo (b, v)
          | Ir.St_local (lo, _, _) ->
              Hashtbl.replace store_counts lo
                (2 + Option.value ~default:0 (Hashtbl.find_opt store_counts lo))
          | Ir.Call _ -> has_call := true
          | _ -> ())
        f.Ir.blocks.(b).Ir.instrs)
    body;
  (* Induction variables: iv := load(iv) + step. *)
  let induction iv =
    match (Hashtbl.find_opt store_counts iv, Hashtbl.find_opt store_sites iv) with
    | Some 1, Some (sb, Ir.Otemp tn) when count.(tn) = 1 -> (
        match Hashtbl.find_opt defs tn with
        | Some { db; instr = Ir.Bin (Ir.Add, _, Ir.Otemp tc, Ir.Oimm step) }
          when in_body db && count.(tc) = 1 -> (
            match Hashtbl.find_opt defs tc with
            | Some { db = db2; instr = Ir.Ld_local (_, iv', 0) }
              when in_body db2 && iv' = iv ->
                Some (sb, step)
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  let stored_in_loop lo = Hashtbl.mem store_counts lo in
  (* Is [base] loop-invariant?  Either a temp whose single definition is
     outside the loop and dominates the header (usable directly in the
     preheader), or a single in-loop load of a slot never stored in the
     loop and safe from modification through its address (re-loaded fresh
     in the preheader). *)
  let idom = Mir.Cfg.dominators f in
  let base_info (o : Ir.operand) : (Mir.Deriv.t * [ `Temp of int | `Slot of int ]) option =
    match o with
    | Ir.Oimm _ -> None
    | Ir.Otemp t -> (
        let ptrish =
          match Ir.temp_kind f t with
          | Ir.Kptr | Ir.Kderived _ -> true
          | Ir.Kscalar | Ir.Kstack -> false
        in
        if not ptrish then None
        else if count.(t) = 1 then
          match Hashtbl.find_opt defs t with
          | Some { db; instr = Ir.Ld_local (_, bslot, 0) }
            when in_body db && (not (stored_in_loop bslot))
                 && (not f.Ir.locals.(bslot).Ir.l_addr_taken)
                 && (match f.Ir.locals.(bslot).Ir.l_slot with
                    | Ir.Sambig _ -> false
                    | _ -> true) ->
              Some (Mir.Deriv.of_base (Mir.Deriv.Blocal bslot), `Slot bslot)
          | Some { db; _ }
            when (not (in_body db)) && Mir.Cfg.dominates idom db l.Mir.Cfg.header ->
              Some (Mir.Deriv.of_base (Mir.Deriv.Btemp t), `Temp t)
          | _ -> None
        else None)
  in
  (* Collect candidates: (block, taddr, base op, iv, lo, esz). *)
  let candidates = ref [] in
  Iset.iter
    (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.Bin (Ir.Add, taddr, base, off) -> (
              match Ir.temp_kind f taddr with
              | Ir.Kderived _ -> (
                  match decompose_offset (defs, count) ~in_body off with
                  | Some (iv, lo, esz) -> (
                      match (induction iv, base_info base) with
                      | Some (sb, step), Some (bd, bsrc) ->
                          candidates :=
                            (b, taddr, base, bd, bsrc, iv, lo, esz, sb, step) :: !candidates
                      | _ -> ())
                  | None -> ())
              | Ir.Kscalar | Ir.Kptr | Ir.Kstack -> ())
          | _ -> ())
        f.Ir.blocks.(b).Ir.instrs)
    body;
  if !candidates = [] then false
  else begin
    let preheader = Mir.Cfg.insert_preheader f l in
    (* One reduced pointer per (base, iv, lo, esz) group. *)
    let groups = Hashtbl.create 4 in
    List.iter
      (fun (b, taddr, base, bd, bsrc, iv, lo, esz, sb, step) ->
        let key = (base, iv, lo, esz) in
        let pl =
          match Hashtbl.find_opt groups key with
          | Some pl -> pl
          | None ->
              let pl = Array.length f.Ir.locals in
              f.Ir.locals <-
                Array.append f.Ir.locals
                  [|
                    {
                      Ir.l_name = Printf.sprintf "$sr%d" pl;
                      l_size = 1;
                      l_slot = Ir.Sderived bd;
                      l_user = false;
                      l_addr_taken = false;
                      l_stores = 2;
                    };
                  |];
              (* Preheader initialization: pl := base + (load(iv) - lo)*esz.
                 A slot-based base is re-loaded fresh (its defining load
                 lives inside the loop and cannot be referenced here). *)
              let ph = f.Ir.blocks.(preheader) in
              let ti = Ir.fresh_temp f Ir.Kscalar in
              let t1 = Ir.fresh_temp f Ir.Kscalar in
              let t2 = Ir.fresh_temp f Ir.Kscalar in
              let p0 = Ir.fresh_temp f (Ir.Kderived bd) in
              let base_load, base_op =
                match bsrc with
                | `Temp t -> ([], Ir.Otemp t)
                | `Slot bslot ->
                    let tb = Ir.fresh_temp f Ir.Kptr in
                    ([ Ir.Ld_local (tb, bslot, 0) ], Ir.Otemp tb)
              in
              let init =
                base_load
                @ [ Ir.Ld_local (ti, iv, 0) ]
                @ (if lo <> 0 then [ Ir.Bin (Ir.Sub, t1, Ir.Otemp ti, Ir.Oimm lo) ]
                   else [ Ir.Mov (t1, Ir.Otemp ti) ])
                @ (if esz <> 1 then [ Ir.Bin (Ir.Mul, t2, Ir.Otemp t1, Ir.Oimm esz) ]
                   else [ Ir.Mov (t2, Ir.Otemp t1) ])
                @ [
                    Ir.Bin (Ir.Add, p0, base_op, Ir.Otemp t2);
                    Ir.St_local (pl, 0, Ir.Otemp p0);
                  ]
              in
              ph.Ir.instrs <- ph.Ir.instrs @ init;
              (* Increment right after iv's store. *)
              let sblk = f.Ir.blocks.(sb) in
              let tp = Ir.fresh_temp f (Ir.Kderived (Mir.Deriv.of_base (Mir.Deriv.Blocal pl))) in
              let tp2 = Ir.fresh_temp f (Ir.Kderived (Mir.Deriv.of_base (Mir.Deriv.Blocal pl))) in
              let rec insert = function
                | [] -> []
                | (Ir.St_local (lo', 0, _) as s) :: rest when lo' = iv ->
                    s
                    :: Ir.Ld_local (tp, pl, 0)
                    :: Ir.Bin (Ir.Add, tp2, Ir.Otemp tp, Ir.Oimm (step * esz))
                    :: Ir.St_local (pl, 0, Ir.Otemp tp2)
                    :: rest
                | x :: rest -> x :: insert rest
              in
              sblk.Ir.instrs <- insert sblk.Ir.instrs;
              Hashtbl.replace groups key pl;
              pl
        in
        (* Replace the address computation with a load of pl. *)
        let blk = f.Ir.blocks.(b) in
        blk.Ir.instrs <-
          List.map
            (fun i ->
              match i with
              | Ir.Bin (Ir.Add, t, base', off') when t = taddr && base' = base ->
                  ignore off';
                  Ir.set_temp_kind f taddr
                    (Ir.Kderived (Mir.Deriv.of_base (Mir.Deriv.Blocal pl)));
                  Ir.Ld_local (taddr, pl, 0)
              | other -> other)
            blk.Ir.instrs)
      !candidates;
    true
  end

let run (_prog : Ir.program) (f : Ir.func) : bool =
  let changed = ref false in
  let processed = ref Iset.empty in
  let rec go () =
    let loops = Mir.Cfg.natural_loops f in
    match
      List.find_opt
        (fun (l : Mir.Cfg.loop) ->
          l.Mir.Cfg.header <> 0 && not (Iset.mem l.Mir.Cfg.header !processed))
        loops
    with
    | None -> ()
    | Some l ->
        processed := Iset.add l.Mir.Cfg.header !processed;
        if reduce_loop f l then changed := true;
        go ()
  in
  go ();
  !changed
