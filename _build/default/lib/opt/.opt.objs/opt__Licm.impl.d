lib/opt/licm.ml: Array Hashtbl List Mir Support
