lib/opt/noalloc.ml: Array List Mir
