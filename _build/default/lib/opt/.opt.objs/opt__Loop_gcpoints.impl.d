lib/opt/loop_gcpoints.ml: Array List Mir Support
