lib/opt/virtual_origin.ml: Array List Mir
