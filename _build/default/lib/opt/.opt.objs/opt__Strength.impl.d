lib/opt/strength.ml: Array Hashtbl List Mir Option Printf Support
