lib/opt/pathvar.ml: Array Hashtbl List Mir Support
