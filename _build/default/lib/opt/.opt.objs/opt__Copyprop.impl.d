lib/opt/copyprop.ml: Array Hashtbl List Mir
