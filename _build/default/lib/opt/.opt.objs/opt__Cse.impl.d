lib/opt/cse.ml: Array List Mir
