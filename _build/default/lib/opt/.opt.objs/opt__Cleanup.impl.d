lib/opt/cleanup.ml: Array List Mir
