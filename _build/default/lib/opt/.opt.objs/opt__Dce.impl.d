lib/opt/dce.ml: Array List Mir Support
