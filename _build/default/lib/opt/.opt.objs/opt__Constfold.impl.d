lib/opt/constfold.ml: Array List Mir
