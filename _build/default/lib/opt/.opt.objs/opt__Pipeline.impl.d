lib/opt/pipeline.ml: Array Cleanup Constfold Copyprop Cse Dce Licm Mir Pathvar Strength Virtual_origin
