(** The precise, fully compacting semispace collector.

    Every live object moves on every collection — the strongest exercise of
    the compiler-emitted tables: tidy pointers in globals, stack slots and
    registers are forwarded; derived values are un-derived before the copy
    and re-derived after (paper §3), never followed (the dead-base rule
    guarantees any object reachable through a derived value is also
    reachable through one of its bases).

    Timing instrumentation fills the interpreter's {!Vm.Interp.gc_stats}:
    [trace_ns] covers exactly the work the paper calls "stack tracing" —
    locating and decoding tables, walking frames, adjusting and re-deriving
    derived values, and updating stack/register roots. *)

val collect : Vm.Interp.t -> needed:int -> unit
(** Run one collection: walk, adjust, copy, re-derive, flip. Installed as
    the interpreter's collector by {!install}.
    @raise Vm.Vm_error.Error on a corrupt root (e.g. an untidy pointer in a
    tidy table entry — an invariant check that the tests rely on). *)

val trace_only : Vm.Interp.t -> unit
(** A "null collection": locate the tables, walk the stack, adjust and
    immediately re-derive, moving nothing. Used to reproduce the paper's
    §6.3 differencing methodology; must leave the machine state unchanged
    (asserted by the test suite). *)

val install : Vm.Interp.t -> unit

val now_ns : unit -> int64
(** Monotonic-enough wall clock used for the gc timers. *)
