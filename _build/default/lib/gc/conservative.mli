(** Ambiguous-roots (Boehm-style) mark–sweep baseline (paper §7).

    No tables: every word in the registers, the whole stack and the global
    area is treated as a potential pointer, and anything it might address
    is pinned. Objects never move — no compaction, no derived-value
    update, and interior pointers pin their objects (with [interior] set,
    the default, matching the behaviour Boehm's gc-safety work assumes).

    Reclaimed objects feed the interpreter's first-fit free list. Object
    boundaries come from the VM's [on_alloc] hook, standing in for the
    allocator metadata a real conservative collector keeps. *)

type t

val install : ?interior:bool -> Vm.Interp.t -> t
(** Install as the interpreter's collector and allocation observer. *)

val collect_now : t -> unit

val free_list_stats : Vm.Interp.t -> int * int * int
(** [(blocks, total free words, largest block)] — the fragmentation the
    precise compacting collector never has. *)

val retained_words : t -> int
(** Words currently considered live (ambiguously retained included). *)

val register_alloc : t -> int -> int -> unit
val find_object : t -> int -> int option
(** Exposed for tests: the object (if any) an ambiguous word pins. *)
