(** Stack walking and register reconstruction (paper §3).

    At a collection the machine is stopped inside an allocating runtime
    call; the walk starts at the compiled frame that made the call and
    follows saved frame pointers outward. Each frame's gc-point is found
    from the return address stored in its callee's frame (for the
    innermost frame, from the current pc), and its tables are located
    through the pc→table mapping.

    Register reconstruction: walking outward, each procedure's metadata
    says which callee-saved registers it saved and where, so an outer
    frame's register contents "as of the time of the call" are found
    either still in the register file or in the save area of some inner
    frame — the paper's "additional information about which registers were
    saved at each call point". *)

type reg_location = In_regs | In_mem of int

type frame = {
  fr_fid : int;
  fr_fp : int;
  fr_sp : int; (* fp - frame_size *)
  fr_ap : int; (* base of the outgoing argument words of this frame's call *)
  fr_gcpoint : Gcmaps.Rawmaps.gcpoint;
  fr_reg_loc : reg_location array; (* where each register's value lives *)
}

val resolve : frame -> Gcmaps.Loc.t -> [ `Reg of int | `Mem of int ]
(** Resolve a table location against a frame (FP/SP/AP bases and the
    register reconstruction map). *)

val read : Vm.Interp.t -> frame -> Gcmaps.Loc.t -> int
val write : Vm.Interp.t -> frame -> Gcmaps.Loc.t -> int -> unit

val walk : Vm.Interp.t -> frame list
(** Walk the stack at a collection; frames are returned innermost first
    (the order required by the derived-value update). *)
