lib/gc/derived_update.ml: Gcmaps List Stackwalk Vm
