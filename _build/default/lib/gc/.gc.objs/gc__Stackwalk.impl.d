lib/gc/stackwalk.ml: Array Gcmaps List Machine Vm
