lib/gc/derived_update.mli: Gcmaps Stackwalk Vm
