lib/gc/cheney.mli: Vm
