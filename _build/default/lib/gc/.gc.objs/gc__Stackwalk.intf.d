lib/gc/stackwalk.mli: Gcmaps Vm
