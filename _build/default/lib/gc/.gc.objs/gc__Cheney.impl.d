lib/gc/cheney.ml: Array Derived_update Gcmaps Int64 List Rt Stackwalk Unix Vm
