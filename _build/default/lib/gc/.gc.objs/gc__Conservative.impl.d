lib/gc/conservative.ml: Array Hashtbl Int64 List Machine Queue Unix Vm
