lib/gc/conservative.mli: Vm
