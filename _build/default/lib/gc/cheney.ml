(** The precise, fully compacting semispace collector.

    Every live object moves on every collection — the strongest exercise of
    the tables: tidy pointers in globals, stack slots and registers are
    forwarded; derived values are un-derived before the copy and re-derived
    after (paper §3). Derived values are never {e followed}: the dead-base
    rule guarantees any object reachable through a derived value is also
    reachable through one of its bases. *)

module RM = Gcmaps.Rawmaps

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

type copier = {
  st : Vm.Interp.t;
  mutable to_lo : int; (* current to-space bounds *)
  mutable to_alloc : int;
}

let in_from c v =
  v >= c.st.Vm.Interp.from_base
  && v < c.st.Vm.Interp.from_base + c.st.Vm.Interp.image.Vm.Image.semi_words

let in_to c v = v >= c.to_lo && v < c.to_lo + c.st.Vm.Interp.image.Vm.Image.semi_words

(** Forward a tidy pointer: copy its object to to-space if not already
    copied; pointers outside from-space (NIL, globals, static text, stack
    addresses) are left alone. *)
let forward c v =
  if not (in_from c v) then v
  else begin
    let header = c.st.Vm.Interp.mem.(v) in
    if in_to c header then header (* already forwarded *)
    else begin
      let tdescs = c.st.Vm.Interp.image.Vm.Image.tdescs in
      if header < 0 || header >= Array.length tdescs then
        Vm.Vm_error.fail "gc: bad object header %d at %d (untidy root?)" header v;
      let td = tdescs.(header) in
      let length =
        match td with
        | Rt.Typedesc.Open _ -> c.st.Vm.Interp.mem.(v + 1)
        | Rt.Typedesc.Fixed _ -> 0
      in
      let size = Rt.Typedesc.object_words td ~length in
      let dst = c.to_alloc in
      Array.blit c.st.Vm.Interp.mem v c.st.Vm.Interp.mem dst size;
      c.to_alloc <- dst + size;
      c.st.Vm.Interp.mem.(v) <- dst (* forwarding pointer *);
      c.st.Vm.Interp.gc.Vm.Interp.objects_copied <-
        c.st.Vm.Interp.gc.Vm.Interp.objects_copied + 1;
      dst
    end
  end

let scan_object c addr =
  let tdescs = c.st.Vm.Interp.image.Vm.Image.tdescs in
  let td = tdescs.(c.st.Vm.Interp.mem.(addr)) in
  let length =
    match td with
    | Rt.Typedesc.Open _ -> c.st.Vm.Interp.mem.(addr + 1)
    | Rt.Typedesc.Fixed _ -> 0
  in
  List.iter
    (fun off ->
      c.st.Vm.Interp.mem.(addr + off) <- forward c c.st.Vm.Interp.mem.(addr + off))
    (Rt.Typedesc.object_ptr_offsets td ~length);
  addr + Rt.Typedesc.object_words td ~length

(* Forward the tidy roots of one frame: stack-pointer table entries and
   register-pointer table entries (through the reconstruction map). *)
let forward_frame_roots c (fr : Stackwalk.frame) =
  List.iter
    (fun l ->
      let v = Stackwalk.read c.st fr l in
      Stackwalk.write c.st fr l (forward c v))
    fr.Stackwalk.fr_gcpoint.RM.stack_ptrs;
  List.iter
    (fun r ->
      let l = Gcmaps.Loc.Lreg r in
      let v = Stackwalk.read c.st fr l in
      Stackwalk.write c.st fr l (forward c v))
    fr.Stackwalk.fr_gcpoint.RM.reg_ptrs

let collect (st : Vm.Interp.t) ~needed =
  ignore needed;
  let t_start = now_ns () in
  let gcs = st.Vm.Interp.gc in
  gcs.Vm.Interp.collections <- gcs.Vm.Interp.collections + 1;
  (* --- stack tracing: locate tables, walk frames, adjust derived. --- *)
  let t_trace0 = now_ns () in
  let frames = Stackwalk.walk st in
  gcs.Vm.Interp.frames_traced <- gcs.Vm.Interp.frames_traced + List.length frames;
  let adjusted = Derived_update.adjust_all st frames in
  let t_trace1 = now_ns () in
  (* --- copy phase --- *)
  let c = { st; to_lo = st.Vm.Interp.to_base; to_alloc = st.Vm.Interp.to_base } in
  (* Global roots. *)
  List.iter
    (fun a -> st.Vm.Interp.mem.(a) <- forward c st.Vm.Interp.mem.(a))
    st.Vm.Interp.image.Vm.Image.global_roots;
  (* Stack and register roots (trace time, per the paper's accounting). *)
  let t_roots0 = now_ns () in
  List.iter (forward_frame_roots c) frames;
  let t_roots1 = now_ns () in
  (* Cheney scan. *)
  let scan = ref c.to_lo in
  while !scan < c.to_alloc do
    scan := scan_object c !scan
  done;
  (* --- re-derive and flip --- *)
  let t_red0 = now_ns () in
  Derived_update.rederive_all st adjusted;
  let t_red1 = now_ns () in
  let old_from = st.Vm.Interp.from_base in
  st.Vm.Interp.from_base <- st.Vm.Interp.to_base;
  st.Vm.Interp.to_base <- old_from;
  st.Vm.Interp.alloc <- c.to_alloc;
  gcs.Vm.Interp.words_copied <-
    gcs.Vm.Interp.words_copied + (c.to_alloc - st.Vm.Interp.from_base);
  let t_end = now_ns () in
  let open Int64 in
  gcs.Vm.Interp.total_gc_ns <- add gcs.Vm.Interp.total_gc_ns (sub t_end t_start);
  gcs.Vm.Interp.trace_ns <-
    add gcs.Vm.Interp.trace_ns
      (add
         (add (sub t_trace1 t_trace0) (sub t_roots1 t_roots0))
         (sub t_red1 t_red0))

(** A "null collection": locate the tables, walk the stack, adjust and
    immediately re-derive, moving nothing. Used to reproduce the paper's
    differencing methodology for the stack-trace timing (§6.3). *)
let trace_only (st : Vm.Interp.t) =
  let frames = Stackwalk.walk st in
  st.Vm.Interp.gc.Vm.Interp.frames_traced <-
    st.Vm.Interp.gc.Vm.Interp.frames_traced + List.length frames;
  let adjusted = Derived_update.adjust_all st frames in
  Derived_update.rederive_all st adjusted

let install (st : Vm.Interp.t) = st.Vm.Interp.collector <- Some collect
