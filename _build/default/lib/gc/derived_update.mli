(** The two-step update of derived values (paper §3).

    Step 1, before anything moves: for every live derived value
    [a = Σp − Σq + E], store E by applying the inverses
    ([a := a − Σp + Σq]). Step 2, after the copy: re-derive from the new
    base values ([a := a + Σp' − Σq']).

    Ordering (both of the paper's rules): a derived value is processed
    before any of its base values — guaranteed by the table order within a
    gc-point — and callee frames before their callers; step 2 runs in
    exactly the reverse order.

    Ambiguous derivations (§4) are resolved here: the path variable is
    read from the frame and selects the table variant; the same selection
    is reused for step 2. *)

val active_entries :
  Vm.Interp.t -> Stackwalk.frame -> Gcmaps.Rawmaps.deriv_entry list
(** The derivation entries in force at a frame's gc-point: unconditional
    entries plus the variant cases selected by the path variables. *)

val adjust_all :
  Vm.Interp.t ->
  Stackwalk.frame list ->
  (Stackwalk.frame * Gcmaps.Rawmaps.deriv_entry list) list
(** Step 1 over all frames (innermost first); returns the per-frame entry
    selections for {!rederive_all}. *)

val rederive_all :
  Vm.Interp.t -> (Stackwalk.frame * Gcmaps.Rawmaps.deriv_entry list) list -> unit
(** Step 2: reverse frame order, reverse entry order within each frame. *)
