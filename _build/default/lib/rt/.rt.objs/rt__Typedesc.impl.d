lib/rt/typedesc.ml: Array Format List M3l String
