(** Runtime failures of the UVM (distinct from guest-program error traps,
    which are reported with their own messages). *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
