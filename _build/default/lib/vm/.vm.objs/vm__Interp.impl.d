lib/vm/interp.ml: Array Buffer Char Image List Machine Mir Rt Vm_error
