lib/vm/image.ml: Array Char Codegen Gcmaps List Machine Mir Rt String
