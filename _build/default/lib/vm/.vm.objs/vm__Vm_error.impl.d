lib/vm/vm_error.ml: Printf
