lib/machine/reg.ml: Printf
