lib/machine/insn.ml: Format List Mir Reg String
