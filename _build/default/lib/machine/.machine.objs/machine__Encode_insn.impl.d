lib/machine/encode_insn.ml: Array Insn List Support Varint
