(** Register model of the UVM target, a VAX-flavoured register machine.

    Twelve general registers plus dedicated FP and SP. AP (the VAX argument
    pointer) is not a physical register here: the incoming-argument base of a
    frame is [FP + 2], and the collector reconstructs per-frame AP values
    while walking the stack, exactly as the paper's {FP, SP, AP} base-register
    encoding assumes. *)

let ngeneral = 12
let fp = 12
let sp = 13
let nregs = 14

(** r0 carries return values and is a scratch register; r1 is the second
    scratch (both excluded from allocation). *)
let ret = 0

let scratch0 = 0
let scratch1 = 1

let is_callee_saved r = r >= 6 && r <= 11
let callee_saved = [ 6; 7; 8; 9; 10; 11 ]
let caller_saved_allocatable = [ 2; 3; 4; 5 ]

let name r =
  if r = fp then "fp"
  else if r = sp then "sp"
  else if r >= 0 && r < ngeneral then Printf.sprintf "r%d" r
  else invalid_arg "Reg.name"
