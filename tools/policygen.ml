(* policygen — derive an mm-policy placement file from an mmrun --profile
   document: classify every allocation site by its measured survival rate
   and sample mass into nursery / pretenure / pool placement, and print
   the versioned mm-policy v1 JSON that mmrun --policy consumes.

     policygen profile.json > policy.json
     policygen -o policy.json profile.json
     policygen --pretenure-rate 0.9 --min-sample-words 128 \
               --pool-min-allocs 64 profile.json

   The thresholds are the same knobs Policy.default_thresholds bakes in;
   the flags exist so a closed PGO loop can be tuned without recompiling.
   Exit 0 on success; prints the failure and exits 1 otherwise. *)

module J = Telemetry.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("policygen: " ^ m); exit 1) fmt

let usage () =
  prerr_endline
    "usage: policygen [-o FILE] [--pretenure-rate R] [--min-sample-words N]\n\
    \                 [--pool-min-allocs N] PROFILE.json";
  exit 2

let () =
  let th = ref Policy.default_thresholds in
  let out = ref None in
  let path = ref None in
  let float_arg name v k =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> k f
    | _ -> fail "%s wants a rate in [0,1], got %s" name v
  in
  let int_arg name v k =
    match int_of_string_opt v with
    | Some n when n >= 0 -> k n
    | _ -> fail "%s wants a non-negative integer, got %s" name v
  in
  let rec parse = function
    | [] -> ()
    | "-o" :: f :: rest ->
        out := Some f;
        parse rest
    | "--pretenure-rate" :: v :: rest ->
        float_arg "--pretenure-rate" v (fun f ->
            th := { !th with Policy.pretenure_rate = f });
        parse rest
    | "--min-sample-words" :: v :: rest ->
        int_arg "--min-sample-words" v (fun n ->
            th := { !th with Policy.min_sample_words = n });
        parse rest
    | "--pool-min-allocs" :: v :: rest ->
        int_arg "--pool-min-allocs" v (fun n ->
            th := { !th with Policy.pool_min_allocs = n });
        parse rest
    | [ p ] when !path = None -> path := Some p
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  let contents =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error m -> fail "%s" m
  in
  let doc = try J.parse contents with J.Parse_error m -> fail "%s: %s" path m in
  let policy =
    try Policy.derive_from_profile ~thresholds:!th doc
    with Policy.Policy_error m -> fail "%s: %s" path m
  in
  let n_of d =
    List.length (List.filter (fun e -> e.Policy.e_decision = d) policy.Policy.entries)
  in
  Printf.eprintf "policygen: %d sites — %d pretenure, %d pool, %d nursery\n"
    (List.length policy.Policy.entries)
    (n_of Policy.Pretenure) (n_of Policy.Pool) (n_of Policy.Nursery);
  let text = J.to_string (Policy.to_json policy) ^ "\n" in
  match !out with
  | None -> print_string text
  | Some f ->
      let oc = open_out f in
      output_string oc text;
      close_out oc
