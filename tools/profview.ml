(* profview — render a human-readable report from an mmrun --profile JSON
   document: collection counts, the pause-time percentile table, the top
   allocation sites by survived words (the pretenuring signal), and a
   summary of any heap censuses.

     profview profile.json
     profview --top 20 profile.json
     profview --sort survival profile.json

   Exit 0 on success; prints the failure and exits 1 otherwise. *)

module J = Telemetry.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("profview: " ^ m); exit 1) fmt

let num = function Some (J.Int i) -> float_of_int i | Some (J.Float f) -> f | _ -> 0.0
let int_of v = int_of_float (num v)
let str = function Some (J.Str s) -> s | _ -> ""
let bool_of = function Some (J.Bool b) -> b | _ -> false

let usage () =
  prerr_endline "usage: profview [--top N] [--sort survived|survival] PROFILE.json";
  exit 2

let () =
  let top, sort, path =
    let rec parse top sort = function
      | "--top" :: n :: rest -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> parse n sort rest
          | _ -> fail "--top wants a positive integer, got %s" n)
      | "--sort" :: key :: rest -> (
          match key with
          | "survived" | "survival" -> parse top key rest
          | _ -> fail "--sort wants survived or survival, got %s" key)
      | [ path ] -> (top, sort, path)
      | _ -> usage ()
    in
    parse 10 "survived" (List.tl (Array.to_list Sys.argv))
  in
  let contents =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error m -> fail "%s" m
  in
  let doc = try J.parse contents with J.Parse_error m -> fail "%s: %s" path m in
  let schema = str (J.member "schema" doc) in
  if schema <> "mm-profile" then fail "%s: not an mm-profile document (schema %S)" path schema;
  Printf.printf "profile      : %s (schema %s v%d)\n" path schema
    (int_of (J.member "version" doc));
  (match J.member "collections" doc with
  | Some c ->
      Printf.printf "collections  : %d total (%d minor, %d full)\n"
        (int_of (J.member "total" c))
        (int_of (J.member "minor" c))
        (int_of (J.member "full" c))
  | None -> ());
  (* --- pause percentiles --- *)
  (match J.member "pauses" doc with
  | Some p ->
      List.iter
        (fun key ->
          match J.member key p with
          | Some h when int_of (J.member "count" h) > 0 ->
              Printf.printf
                "pauses %-6s: n=%-6d p50 %8.1f us  p90 %8.1f us  p99 %8.1f us  max %8.1f us\n"
                key
                (int_of (J.member "count" h))
                (num (J.member "p50_ns" h) /. 1e3)
                (num (J.member "p90_ns" h) /. 1e3)
                (num (J.member "p99_ns" h) /. 1e3)
                (num (J.member "max_ns" h) /. 1e3)
          | _ -> ())
        [ "all"; "minor"; "full" ]
  | None -> ());
  (* --- top sites --- *)
  let sites = Option.value ~default:[] (Option.bind (J.member "sites" doc) J.to_list) in
  let survived s =
    int_of (J.member "minor_survived_words" s) + int_of (J.member "full_survived_words" s)
  in
  (* Completed-lifetime words — the sample mass behind a site's survival
     rate. A site whose every object is still in flight (nothing has yet
     survived a collection or died in one) has no rate at all, which is
     not the same thing as 100%. *)
  let samples s = survived s + int_of (J.member "dead_words" s) in
  let rate s =
    if samples s = 0 then None
    else Some (float_of_int (survived s) /. float_of_int (samples s))
  in
  let key =
    match sort with
    | "survival" ->
        (* Rate-sorted: sites with a measured rate first (highest rate,
           then heaviest sample mass); unmeasured sites sink to the end. *)
        fun s -> (Option.value ~default:(-1.0) (rate s), float_of_int (samples s))
    | _ -> fun s -> (float_of_int (survived s), float_of_int (int_of (J.member "alloc_words" s)))
  in
  let ranked =
    sites
    |> List.filter (fun s -> int_of (J.member "allocs" s) > 0)
    |> List.sort (fun a b -> compare (key b) (key a))
  in
  Printf.printf "sites        : %d static, %d hit (sorted by %s)\n" (List.length sites)
    (List.length ranked) sort;
  if ranked <> [] then begin
    Printf.printf "%4s %-24s %9s %10s %10s %10s %9s  %s\n" "id" "site" "allocs" "words"
      "survived" "samples" "survival" "";
    List.iteri
      (fun i s ->
        if i < top then
          Printf.printf "%4d %-24s %9d %10d %10d %10d %9s  %s\n"
            (int_of (J.member "id" s))
            (Printf.sprintf "%s:%d:%d" (str (J.member "proc" s))
               (int_of (J.member "line" s))
               (int_of (J.member "col" s)))
            (int_of (J.member "allocs" s))
            (int_of (J.member "alloc_words" s))
            (survived s) (samples s)
            (match rate s with
            | None -> "-"
            | Some r -> Printf.sprintf "%.1f%%" (100.0 *. r))
            (if bool_of (J.member "open_array" s) then "open" else ""))
      ranked
  end;
  (* --- censuses --- *)
  let censuses =
    Option.value ~default:[] (Option.bind (J.member "censuses" doc) J.to_list)
  in
  List.iter
    (fun c ->
      Printf.printf "census @%-4d : %d live objects, %d live words, %d tdescs, %d sites\n"
        (int_of (J.member "collection" c))
        (int_of (J.member "live_objects" c))
        (int_of (J.member "live_words" c))
        (List.length (Option.value ~default:[] (Option.bind (J.member "by_tdesc" c) J.to_list)))
        (List.length (Option.value ~default:[] (Option.bind (J.member "by_site" c) J.to_list))))
    censuses
