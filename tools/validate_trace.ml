(* validate_trace — smoke-check a Chrome trace_event JSON file emitted by
   `mmrun --trace`: the document must parse, carry a traceEvents array with
   balanced B/E spans, and (when phases are requested) contain every named
   span at least once.

     validate_trace t.json
     validate_trace t.json gc.stackwalk gc.underive gc.copy gc.rederive

   Exit 0 on success; prints the failure and exits 1 otherwise. Used by
   `make check` / CI. *)

module J = Telemetry.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_trace: " ^ m); exit 1) fmt

let () =
  let path, required =
    match Array.to_list Sys.argv with
    | _ :: path :: rest -> (path, rest)
    | _ ->
        prerr_endline "usage: validate_trace FILE.json [required-span-name...]";
        exit 2
  in
  let contents =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error m -> fail "%s" m
  in
  let doc = try J.parse contents with J.Parse_error m -> fail "%s: %s" path m in
  let events =
    match Option.bind (J.member "traceEvents" doc) J.to_list with
    | Some evs -> evs
    | None -> fail "%s: no traceEvents array" path
  in
  let begins = Hashtbl.create 16 in
  let depth = ref 0 in
  List.iter
    (fun ev ->
      let str k = Option.bind (J.member k ev) J.to_str in
      match str "ph" with
      | Some "B" ->
          incr depth;
          (match str "name" with
          | Some n -> Hashtbl.replace begins n (1 + Option.value ~default:0 (Hashtbl.find_opt begins n))
          | None -> fail "%s: B event without a name" path)
      | Some "E" ->
          decr depth;
          if !depth < 0 then fail "%s: E event with no open span" path
      | Some _ -> ()
      | None -> fail "%s: event without ph" path)
    events;
  if !depth <> 0 then fail "%s: %d span(s) left open" path !depth;
  List.iter
    (fun name ->
      if not (Hashtbl.mem begins name) then fail "%s: required span %s missing" path name)
    required;
  Printf.printf "validate_trace: %s ok (%d events, %d distinct spans)\n" path
    (List.length events) (Hashtbl.length begins)
