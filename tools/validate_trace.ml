(* validate_trace — smoke-check a Chrome trace_event JSON file emitted by
   `mmrun --trace`: the document must parse, carry a traceEvents array with
   balanced B/E spans, and (when phases are requested) contain every named
   span at least once.

     validate_trace t.json
     validate_trace t.json gc.stackwalk gc.underive gc.copy gc.rederive

   With --profile it instead validates an mmrun --profile document: schema
   name and version, every site id resolving to a source location, survival
   rates in [0,1], each pause histogram's bucket counts summing to its pause
   count, and census site references resolving to the site table.

     validate_trace --profile p.json

   Exit 0 on success; prints the failure and exits 1 otherwise. Used by
   `make check` / CI. *)

module J = Telemetry.Json

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("validate_trace: " ^ m); exit 1) fmt

let num = function Some (J.Int i) -> Some (float_of_int i) | Some (J.Float f) -> Some f | _ -> None

let validate_profile path doc =
  (match J.member "schema" doc with
  | Some (J.Str "mm-profile") -> ()
  | _ -> fail "%s: schema is not \"mm-profile\"" path);
  (match J.member "version" doc with
  | Some (J.Int 1) -> ()
  | _ -> fail "%s: unsupported profile version (want 1)" path);
  let sites =
    match Option.bind (J.member "sites" doc) J.to_list with
    | Some ss -> ss
    | None -> fail "%s: no sites array" path
  in
  let nsites = List.length sites in
  List.iteri
    (fun i s ->
      (match J.member "id" s with
      | Some (J.Int id) when id = i -> ()
      | _ -> fail "%s: site %d: id does not match its index" path i);
      (* Every site id must resolve to a source location. *)
      (match (J.member "proc" s, J.member "line" s) with
      | Some (J.Str proc), Some (J.Int line) when proc <> "" && line >= 1 -> ()
      | _ -> fail "%s: site %d: missing or empty source location" path i);
      match num (J.member "survival_rate" s) with
      | Some r when r >= 0.0 && r <= 1.0 -> ()
      | _ -> fail "%s: site %d: survival_rate outside [0,1]" path i)
    sites;
  let pause_hists = ref 0 in
  (match J.member "pauses" doc with
  | Some p ->
      List.iter
        (fun key ->
          match J.member key p with
          | None -> fail "%s: pauses.%s missing" path key
          | Some h ->
              incr pause_hists;
              let count =
                match J.member "count" h with
                | Some (J.Int n) -> n
                | _ -> fail "%s: pauses.%s: no count" path key
              in
              let buckets =
                Option.value ~default:[] (Option.bind (J.member "buckets" h) J.to_list)
              in
              let total =
                List.fold_left
                  (fun acc b ->
                    match J.member "count" b with
                    | Some (J.Int n) when n > 0 -> acc + n
                    | _ -> fail "%s: pauses.%s: bucket without a positive count" path key)
                  0 buckets
              in
              if total <> count then
                fail "%s: pauses.%s: bucket counts sum to %d, want %d" path key total count)
        [ "all"; "minor"; "full" ]
  | None -> fail "%s: no pauses object" path);
  let censuses =
    Option.value ~default:[] (Option.bind (J.member "censuses" doc) J.to_list)
  in
  List.iteri
    (fun i c ->
      let entries =
        Option.value ~default:[] (Option.bind (J.member "by_site" c) J.to_list)
      in
      List.iter
        (fun e ->
          match J.member "site" e with
          | Some (J.Int id) when id = -1 || (id >= 0 && id < nsites) -> ()
          | _ -> fail "%s: census %d: site reference outside the site table" path i)
        entries)
    censuses;
  Printf.printf "validate_trace: %s ok (profile: %d sites, %d pause histograms, %d censuses)\n"
    path nsites !pause_hists (List.length censuses)

let () =
  let profile_mode, path, required =
    match Array.to_list Sys.argv with
    | _ :: "--profile" :: path :: rest -> (true, path, rest)
    | _ :: path :: rest -> (false, path, rest)
    | _ ->
        prerr_endline "usage: validate_trace [--profile] FILE.json [required-span-name...]";
        exit 2
  in
  let contents =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error m -> fail "%s" m
  in
  let doc = try J.parse contents with J.Parse_error m -> fail "%s: %s" path m in
  if profile_mode then begin
    validate_profile path doc;
    exit 0
  end;
  let events =
    match Option.bind (J.member "traceEvents" doc) J.to_list with
    | Some evs -> evs
    | None -> fail "%s: no traceEvents array" path
  in
  let begins = Hashtbl.create 16 in
  let depth = ref 0 in
  List.iter
    (fun ev ->
      let str k = Option.bind (J.member k ev) J.to_str in
      match str "ph" with
      | Some "B" ->
          incr depth;
          (match str "name" with
          | Some n -> Hashtbl.replace begins n (1 + Option.value ~default:0 (Hashtbl.find_opt begins n))
          | None -> fail "%s: B event without a name" path)
      | Some "E" ->
          decr depth;
          if !depth < 0 then fail "%s: E event with no open span" path
      | Some _ -> ()
      | None -> fail "%s: event without ph" path)
    events;
  if !depth <> 0 then fail "%s: %d span(s) left open" path !depth;
  List.iter
    (fun name ->
      if not (Hashtbl.mem begins name) then fail "%s: required span %s missing" path name)
    required;
  Printf.printf "validate_trace: %s ok (%d events, %d distinct spans)\n" path
    (List.length events) (Hashtbl.length begins)
