(* faultgen — the fault-injection sweeps as a standalone tool.

     faultgen                         # default: 60 mutations/config, cross-check on
     faultgen --iters 50 --seed 7
     faultgen --no-cross-check        # let corrupt tables reach the collector
     faultgen --no-runtime            # skip the runtime (worker/storm) sweep
     faultgen --out report.json      # machine-readable report (CI artifact)

   Two sweeps share the outcome classification table:

   - Table mutations: the encoded gc-table streams of the benchmark
     programs are mutated (bit flips, byte rewrites, truncations, varint
     padding, byte swaps) across every scheme × packing config and each
     run is classified.
   - Runtime faults: the running collector itself is attacked — a worker
     raise in every parallel round, a stall past the round watchdog in
     every round, and an allocation-failure storm — with the
     post-collection verifier armed. The expected outcome is "recovered"
     (the serial round replay contained the fault with byte-identical
     results) or "benign" (the fault never triggered).
   - Incremental interleaving faults (skip with --no-incremental): the
     incremental collector's slice schedule is perturbed — a slice at
     every gc-point, a barrier storm, a starved mark stack, a 50 us
     wall-clock budget — and each run must still match the STW output
     and instruction count with the tri-color verifier armed.

   Exit 0 iff no case crashed the runtime, hung it, flagged the verifier,
   or (under the cross-check) silently diverged; prints the failing cases
   and exits 1 otherwise. Used by `make fault` / CI. *)

let usage =
  "usage: faultgen [--iters N] [--seed N] [--out FILE.json] [--no-cross-check] \
   [--no-runtime] [--no-incremental]"

let () =
  let iters = ref 60 in
  let seed = ref 0x7a11 in
  let out = ref "" in
  let cross_check = ref true in
  let runtime = ref true in
  let incremental = ref true in
  let rec parse = function
    | [] -> ()
    | "--iters" :: v :: rest ->
        iters := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--no-cross-check" :: rest ->
        cross_check := false;
        parse rest
    | "--no-runtime" :: rest ->
        runtime := false;
        parse rest
    | "--no-incremental" :: rest ->
        incremental := false;
        parse rest
    | arg :: _ ->
        prerr_endline ("faultgen: unknown argument " ^ arg);
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let table_sweeps =
    Fault.Faultinject.sweep_all ~cross_check:!cross_check ~seed:!seed
      ~iterations_per_config:!iters ()
  in
  let runtime_sweeps =
    if !runtime then Fault.Faultinject.runtime_sweep_all () else []
  in
  let incremental_sweeps =
    if !incremental then Fault.Faultinject.incremental_sweep_all () else []
  in
  let sweeps = table_sweeps @ runtime_sweeps @ incremental_sweeps in
  let total = List.fold_left (fun a (s : Fault.Faultinject.sweep) -> a + s.iterations) 0 sweeps in
  Printf.printf "%-14s %-18s %6s %s\n" "program" "config" "iters" "outcomes";
  List.iter
    (fun (s : Fault.Faultinject.sweep) ->
      let outcomes =
        s.counts
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        |> String.concat " "
      in
      Printf.printf "%-14s %-18s %6d %s\n" s.program s.config s.iterations outcomes)
    sweeps;
  let failures =
    List.concat_map
      (fun (s : Fault.Faultinject.sweep) ->
        List.map (fun c -> (s.program, s.config, c)) s.failures)
      sweeps
  in
  Printf.printf "total: %d cases, %d failure(s)\n" total (List.length failures);
  List.iter
    (fun (prog, cfg, (c : Fault.Faultinject.case)) ->
      Printf.printf "FAILURE %s/%s %s: %s%s\n" prog cfg c.mutation
        (Fault.Faultinject.outcome_name c.outcome)
        (match c.outcome with Fault.Faultinject.Crashed e -> " (" ^ e ^ ")" | _ -> ""))
    failures;
  if !out <> "" then begin
    let oc = open_out !out in
    output_string oc
      (Telemetry.Json.to_string (Fault.Faultinject.json_report ~cross_check:!cross_check sweeps));
    output_char oc '\n';
    close_out oc
  end;
  exit (if failures = [] then 0 else 1)
