(* faultgen — the table fault-injection sweep as a standalone tool.

     faultgen                         # default: 60 mutations/config, cross-check on
     faultgen --iters 50 --seed 7
     faultgen --no-cross-check        # let corrupt tables reach the collector
     faultgen --out report.json      # machine-readable report (CI artifact)

   Mutates the encoded gc-table streams of the benchmark programs (bit
   flips, byte rewrites, truncations, varint padding, byte swaps) across
   every scheme × packing config and classifies each run. Exit 0 iff no
   mutation crashed the runtime, hung it, or (under the cross-check)
   silently diverged; prints the failing mutations and exits 1 otherwise.
   Used by `make fault` / CI. *)

let usage = "usage: faultgen [--iters N] [--seed N] [--out FILE.json] [--no-cross-check]"

let () =
  let iters = ref 60 in
  let seed = ref 0x7a11 in
  let out = ref "" in
  let cross_check = ref true in
  let rec parse = function
    | [] -> ()
    | "--iters" :: v :: rest ->
        iters := int_of_string v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--no-cross-check" :: rest ->
        cross_check := false;
        parse rest
    | arg :: _ ->
        prerr_endline ("faultgen: unknown argument " ^ arg);
        prerr_endline usage;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sweeps =
    Fault.Faultinject.sweep_all ~cross_check:!cross_check ~seed:!seed
      ~iterations_per_config:!iters ()
  in
  let total = List.fold_left (fun a (s : Fault.Faultinject.sweep) -> a + s.iterations) 0 sweeps in
  Printf.printf "%-14s %-16s %6s %s\n" "program" "config" "iters" "outcomes";
  List.iter
    (fun (s : Fault.Faultinject.sweep) ->
      let outcomes =
        s.counts
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        |> String.concat " "
      in
      Printf.printf "%-14s %-16s %6d %s\n" s.program s.config s.iterations outcomes)
    sweeps;
  let failures =
    List.concat_map
      (fun (s : Fault.Faultinject.sweep) ->
        List.map (fun c -> (s.program, s.config, c)) s.failures)
      sweeps
  in
  Printf.printf "total: %d mutations, %d failure(s)\n" total (List.length failures);
  List.iter
    (fun (prog, cfg, (c : Fault.Faultinject.case)) ->
      Printf.printf "FAILURE %s/%s %s: %s%s\n" prog cfg c.mutation
        (Fault.Faultinject.outcome_name c.outcome)
        (match c.outcome with Fault.Faultinject.Crashed e -> " (" ^ e ^ ")" | _ -> ""))
    failures;
  if !out <> "" then begin
    let oc = open_out !out in
    output_string oc
      (Telemetry.Json.to_string (Fault.Faultinject.json_report ~cross_check:!cross_check sweeps));
    output_char oc '\n';
    close_out oc
  end;
  exit (if failures = [] then 0 else 1)
