(* Collector tests: the heart of the reproduction. Every scenario is run
   with heaps small enough to force many collections; since the collector
   moves every live object on every collection, any error in the tables,
   the stack walk, register reconstruction or the derived-value update
   changes program output or crashes. *)

let check = Alcotest.check

let run ?(collector = Driver.Compile.Precise) ?(optimize = false) ?(checks = true)
    ?(heap = 65536) src =
  let options =
    { Driver.Compile.default_options with optimize; checks; heap_words = heap }
  in
  (* heap_grow pinned off: these scenarios assert that their deliberately
     small heaps really collect, which an ambient MM_HEAP_GROW=1 (the
     pressure CI sweep) would sidestep by growing instead. *)
  Driver.Compile.run_source ~options ~collector ~heap_grow:false src

(* Run a program under a matrix of configurations; all outputs must agree
   with the big-heap precise run, and the small heaps must actually
   collect. *)
let matrix ?(small = 400) ?(tiny = 250) name src =
  let reference = run ~heap:65536 src in
  check Alcotest.bool (name ^ ": reference runs gc-free") true
    (reference.Driver.Compile.collections = 0);
  List.iter
    (fun (tag, optimize, checks, heap, collector, expect_gc) ->
      let r = run ~collector ~optimize ~checks ~heap src in
      check Alcotest.string
        (Printf.sprintf "%s/%s output" name tag)
        reference.Driver.Compile.output r.Driver.Compile.output;
      if expect_gc then
        check Alcotest.bool
          (Printf.sprintf "%s/%s collected" name tag)
          true
          (r.Driver.Compile.collections > 0))
    [
      ("opt-big", true, true, 65536, Driver.Compile.Precise, false);
      ("noopt-small", false, true, small, Driver.Compile.Precise, true);
      ("opt-small", true, true, small, Driver.Compile.Precise, true);
      ("noopt-tiny", false, true, tiny, Driver.Compile.Precise, true);
      ("opt-tiny", true, true, tiny, Driver.Compile.Precise, true);
      ("nochk-small", false, false, small, Driver.Compile.Precise, true);
      ("optnochk-small", true, false, small, Driver.Compile.Precise, true);
      ("conservative", false, true, small * 3, Driver.Compile.Conservative, false);
    ]

(* ------------------------------------------------------------------ *)
(* Scenario programs                                                   *)
(* ------------------------------------------------------------------ *)

(* Garbage churn with a survivor list. *)
let churn_src =
  "MODULE C;\n\
   TYPE Node = RECORD v: INTEGER; n: L END; L = REF Node;\n\
   VAR keep, t: L; i, r, s: INTEGER;\n\
   PROCEDURE Build(n: INTEGER): L;\n\
   VAR l: L; i: INTEGER;\n\
   BEGIN l := NIL;\n\
   FOR i := 1 TO n DO t := NEW(L); t.v := i; t.n := l; l := t END;\n\
   RETURN l END Build;\n\
   PROCEDURE Sum(l: L): INTEGER;\n\
   VAR s: INTEGER; BEGIN s := 0; WHILE l # NIL DO s := s + l.v; l := l.n END; RETURN s\n\
   END Sum;\n\
   BEGIN\n\
   keep := Build(12); s := 0;\n\
   FOR r := 1 TO 40 DO s := s + Sum(Build(30)) END;\n\
   PutInt(s + Sum(keep)); PutLn()\n\
   END C.\n"

(* VAR parameters into heap objects across collections (derived argument
   slots, AP-relative derivations). *)
let varparam_src =
  "MODULE V;\n\
   TYPE R = RECORD a, b, c: INTEGER END; P = REF R;\n\
   L = REF RECORD x: INTEGER; n: REF INTEGER END;\n\
   VAR g: P; i: INTEGER;\n\
   PROCEDURE Churn(n: INTEGER): INTEGER;\n\
   VAR l: L; k: INTEGER;\n\
   BEGIN FOR k := 1 TO n DO l := NEW(L); l.x := k END; RETURN l.x END Churn;\n\
   PROCEDURE Bump(VAR slot: INTEGER; by: INTEGER): INTEGER;\n\
   VAR w: INTEGER;\n\
   BEGIN w := Churn(20); slot := slot + by; RETURN w END Bump;\n\
   BEGIN\n\
   g := NEW(P); g.a := 1; g.b := 10; g.c := 100;\n\
   FOR i := 1 TO 20 DO\n\
   \  i := i + 0 + Bump(g.b, 1) * 0;\n\
   \  i := i + Bump(g.c, 2) * 0\n\
   END;\n\
   PutInt(g.a); PutChar(' '); PutInt(g.b); PutChar(' '); PutInt(g.c); PutLn()\n\
   END V.\n"

(* WITH aliases over heap places across collections. *)
let alias_src =
  "MODULE W;\n\
   TYPE E = RECORD v: INTEGER END;\n\
   A = REF ARRAY OF E;\n\
   L = REF RECORD x: INTEGER END;\n\
   VAR arr: A; i, r: INTEGER; l: L;\n\
   PROCEDURE Churn(n: INTEGER): INTEGER;\n\
   VAR k: INTEGER;\n\
   BEGIN FOR k := 1 TO n DO l := NEW(L); l.x := k END; RETURN l.x END Churn;\n\
   BEGIN\n\
   arr := NEW(A, 10);\n\
   FOR i := 0 TO 9 DO arr[i].v := i END;\n\
   FOR r := 1 TO 15 DO\n\
   \  FOR i := 0 TO 9 DO\n\
   \    WITH cell = arr[i] DO\n\
   \      r := r + Churn(5) * 0;\n\
   \      cell.v := cell.v + 1\n\
   \    END\n\
   \  END\n\
   END;\n\
   PutInt(arr[0].v); PutChar(' '); PutInt(arr[9].v); PutLn()\n\
   END W.\n"

(* Deep recursion: pointers in callee-saved registers and frames at many
   depths, reconstructed during the walk. *)
let deep_src =
  "MODULE D;\n\
   TYPE Node = RECORD v: INTEGER; n: L END; L = REF Node;\n\
   VAR x: INTEGER;\n\
   PROCEDURE Deep(n: INTEGER; acc: L): INTEGER;\n\
   VAR mine, junk: L; k: INTEGER;\n\
   BEGIN\n\
   \  mine := NEW(L); mine.v := n; mine.n := acc;\n\
   \  FOR k := 1 TO 6 DO junk := NEW(L); junk.v := k END;\n\
   \  IF n = 0 THEN RETURN Count(mine) END;\n\
   \  RETURN Deep(n - 1, mine) + mine.v * 0\n\
   END Deep;\n\
   PROCEDURE Count(l: L): INTEGER;\n\
   VAR c: INTEGER;\n\
   BEGIN c := 0; WHILE l # NIL DO c := c + 1; l := l.n END; RETURN c END Count;\n\
   BEGIN\n\
   x := Deep(120, NIL);\n\
   PutInt(x); PutLn()\n\
   END D.\n"

(* Pointers inside records inside local (stack) aggregates: frame aggregate
   entries in the ground table. *)
let stackagg_src =
  "MODULE S;\n\
   TYPE P = REF RECORD v: INTEGER END;\n\
   VAR i, s: INTEGER;\n\
   PROCEDURE Go(): INTEGER;\n\
   VAR slots: ARRAY [0..4] OF P; i, s: INTEGER; junk: P;\n\
   BEGIN\n\
   \  FOR i := 0 TO 4 DO slots[i] := NEW(P); slots[i].v := i * 10 END;\n\
   \  (* churn to force moves while the array of pointers sits in the frame *)\n\
   \  FOR i := 1 TO 50 DO junk := NEW(P); junk.v := i END;\n\
   \  s := 0;\n\
   \  FOR i := 0 TO 4 DO s := s + slots[i].v END;\n\
   \  RETURN s\n\
   END Go;\n\
   BEGIN\n\
   s := 0;\n\
   FOR i := 1 TO 10 DO s := s + Go() END;\n\
   PutInt(s); PutLn()\n\
   END S.\n"

(* Globals with pointers, including a global record and text survival. *)
let globals_src =
  "MODULE G;\n\
   TYPE P = REF RECORD v: INTEGER END;\n\
   R = RECORD first: P; second: P END;\n\
   VAR box: R; t: TEXT; i: INTEGER; junk: P;\n\
   BEGIN\n\
   box.first := NEW(P); box.first.v := 5;\n\
   box.second := NEW(P); box.second.v := 6;\n\
   t := \"survives\";\n\
   FOR i := 1 TO 200 DO junk := NEW(P); junk.v := i END;\n\
   PutInt(box.first.v + box.second.v); PutChar(' '); PutText(t); PutLn()\n\
   END G.\n"

let test_churn () = matrix "churn" churn_src
let test_varparam () = matrix "varparam" varparam_src
let test_alias () = matrix "alias" alias_src
let test_deep () = matrix ~small:700 ~tiny:500 "deep" deep_src
let test_stackagg () = matrix "stackagg" stackagg_src
let test_globals () = matrix ~small:300 ~tiny:150 "globals" globals_src
let test_srgc () =
  matrix ~small:400 ~tiny:300 "ambig" Programs.Ambig_src.src

(* ------------------------------------------------------------------ *)
(* Collector-level properties                                          *)
(* ------------------------------------------------------------------ *)

let test_compaction () =
  (* After every precise collection the live data is contiguous at the
     bottom of the new from-space: allocation resumes right after it. *)
  let img =
    Driver.Compile.compile
      ~options:{ Driver.Compile.default_options with heap_words = 400 }
      churn_src
  in
  let st = Vm.Interp.create img in
  Gc.Cheney.install st;
  (* Wrap the collector to record the post-collection invariant. *)
  let orig = Option.get st.Vm.Interp.collector in
  let ok = ref true in
  st.Vm.Interp.collector <-
    Some
      (fun s ~needed ->
        orig s ~needed;
        if s.Vm.Interp.alloc < s.Vm.Interp.from_base then ok := false;
        if s.Vm.Interp.alloc > s.Vm.Interp.from_base + s.Vm.Interp.from_words then
          ok := false);
  Vm.Interp.run st;
  check Alcotest.bool "collected" true (st.Vm.Interp.gc.Vm.Interp.collections > 0);
  check Alcotest.bool "allocation pointer stays inside the new space" true !ok

let test_live_shrinks_garbage () =
  (* The words copied per collection are bounded by the survivors, far less
     than what was allocated. *)
  let r = run ~heap:400 churn_src in
  let gc = r.Driver.Compile.gc in
  check Alcotest.bool "copied less than allocated" true
    (gc.Vm.Interp.words_copied < r.Driver.Compile.alloc_words)

let test_frames_traced () =
  let r = run ~heap:500 deep_src in
  let gc = r.Driver.Compile.gc in
  check Alcotest.bool "collections happened" true (gc.Vm.Interp.collections > 0);
  check Alcotest.bool "frames traced at every collection" true
    (gc.Vm.Interp.frames_traced > gc.Vm.Interp.collections)

let test_conservative_retains_reachable () =
  (* The conservative collector must never free reachable data either. *)
  List.iter
    (fun src ->
      let precise = run src in
      let cons = run ~collector:Driver.Compile.Conservative ~heap:1500 src in
      check Alcotest.string "conservative output" precise.Driver.Compile.output
        cons.Driver.Compile.output)
    [ churn_src; varparam_src; alias_src; stackagg_src; globals_src ]

let test_conservative_fragmentation_visible () =
  (* After conservative collections there is a free list (non-moving);
     the precise collector never needs one. *)
  let img =
    Driver.Compile.compile
      ~options:{ Driver.Compile.default_options with heap_words = 1500 }
      churn_src
  in
  let st = Vm.Interp.create img in
  let _c = Gc.Conservative.install st in
  Vm.Interp.run st;
  check Alcotest.bool "conservative collected" true
    (st.Vm.Interp.gc.Vm.Interp.collections > 0);
  let nblocks, total, largest = Gc.Conservative.free_list_stats st in
  check Alcotest.bool "free list exists" true (nblocks > 0 && total > 0 && largest > 0)

let test_trace_only_is_identity () =
  (* The "null collection" used for the paper's timing methodology must not
     change the machine state. *)
  let img =
    Driver.Compile.compile
      ~options:{ Driver.Compile.default_options with heap_words = 65536 }
      churn_src
  in
  let st = Vm.Interp.create img in
  st.Vm.Interp.collector <-
    Some
      (fun s ~needed:_ ->
        let before_regs = Array.copy s.Vm.Interp.regs in
        let before_mem = Vm.Mem.copy s.Vm.Interp.mem in
        Gc.Cheney.trace_only s;
        if s.Vm.Interp.regs <> before_regs then failwith "trace_only changed registers";
        if not (Vm.Mem.equal s.Vm.Interp.mem before_mem) then
          failwith "trace_only changed memory");
  st.Vm.Interp.gc_check_forces <- true;
  (* Run with a program that calls no gc_check: install pressure instead by
     shrinking the heap via a fresh image. *)
  let img2 =
    Driver.Compile.compile
      ~options:{ Driver.Compile.default_options with heap_words = 400 }
      churn_src
  in
  let st2 = Vm.Interp.create img2 in
  st2.Vm.Interp.collector <-
    Some
      (fun s ~needed ->
        let before_regs = Array.copy s.Vm.Interp.regs in
        Gc.Cheney.trace_only s;
        if s.Vm.Interp.regs <> before_regs then failwith "trace_only changed registers";
        Gc.Cheney.collect s ~needed);
  Vm.Interp.run st2;
  check Alcotest.bool "ran with interposed null traces" true
    (st2.Vm.Interp.gc.Vm.Interp.collections > 0);
  ignore st

let test_forced_gc_checks () =
  (* loop gc-points + forced checks: collections at loop headers (threads
     story of §5.3) must preserve behaviour. *)
  let options =
    {
      Driver.Compile.default_options with
      loop_gcpoints = true;
      heap_words = 2000;
    }
  in
  let img = Driver.Compile.compile ~options churn_src in
  let st = Vm.Interp.create img in
  Gc.Cheney.install st;
  st.Vm.Interp.gc_check_forces <- true;
  Vm.Interp.run st;
  let reference = run churn_src in
  check Alcotest.string "output under forced loop collections" reference.Driver.Compile.output
    (Vm.Interp.output st);
  check Alcotest.bool "many forced collections" true
    (st.Vm.Interp.gc.Vm.Interp.collections > 10)

let test_noalloc_configuration_safe () =
  (* With the noalloc analysis on, fewer calls are gc-points, but behaviour
     under pressure must be identical. *)
  List.iter
    (fun src ->
      let reference = run src in
      let options =
        {
          Driver.Compile.default_options with
          noalloc_analysis = true;
          heap_words = 400;
          optimize = true;
        }
      in
      let r = Driver.Compile.run_source ~options src in
      check Alcotest.string "noalloc output" reference.Driver.Compile.output
        r.Driver.Compile.output)
    [ churn_src; varparam_src; alias_src ]

let test_table_scheme_configurations () =
  (* The collector must decode every table configuration identically. *)
  let reference = run churn_src in
  List.iter
    (fun (name, scheme, opts) ->
      let options =
        {
          Driver.Compile.default_options with
          heap_words = 400;
          scheme;
          table_opts = opts;
        }
      in
      let r = Driver.Compile.run_source ~options ~heap_grow:false churn_src in
      check Alcotest.string name reference.Driver.Compile.output r.Driver.Compile.output;
      check Alcotest.bool (name ^ " collected") true (r.Driver.Compile.collections > 0))
    Gcmaps.Table_stats.configs

(* ------------------------------------------------------------------ *)
(* Parallel copy: worker-count independence                            *)
(* ------------------------------------------------------------------ *)

(* Pin the copy-phase worker count and round threshold for [f], restoring
   both afterwards. The threshold drops to 2 so the small test heaps
   actually route their frontier rounds through the three-phase parallel
   machinery — the production default of 512 objects would leave heaps
   this size entirely on the serial fast path and the sweep would test
   nothing. *)
let with_copy_workers n f =
  let w0 = !Gc.Gc_pool.forced_workers and t0 = !Gc.Gc_pool.forced_threshold in
  Gc.Gc_pool.set_workers n;
  Gc.Gc_pool.set_par_threshold 2;
  Fun.protect
    ~finally:(fun () ->
      Gc.Gc_pool.forced_workers := w0;
      Gc.Gc_pool.forced_threshold := t0)
    f

type snapshot = {
  sn_output : string;
  sn_collections : int;
  sn_words : int;
  sn_objects : int;
  sn_mem : Vm.Mem.t;
  sn_regs : int array;
}

let snapshot ~gen ~workers img =
  with_copy_workers workers (fun () ->
      let st = Vm.Interp.create img in
      if gen then Gc.Nursery.install st else Gc.Cheney.install st;
      Vm.Interp.run st;
      {
        sn_output = Vm.Interp.output st;
        sn_collections = st.Vm.Interp.gc.Vm.Interp.collections;
        sn_words = st.Vm.Interp.gc.Vm.Interp.words_copied;
        sn_objects = st.Vm.Interp.gc.Vm.Interp.objects_copied;
        sn_mem = Vm.Mem.copy st.Vm.Interp.mem;
        sn_regs = Array.copy st.Vm.Interp.regs;
      })

let same_snapshot what (a : snapshot) (b : snapshot) =
  check Alcotest.string (what ^ ": output") a.sn_output b.sn_output;
  check Alcotest.int (what ^ ": collections") a.sn_collections b.sn_collections;
  check Alcotest.int (what ^ ": words copied") a.sn_words b.sn_words;
  check Alcotest.int (what ^ ": objects copied") a.sn_objects b.sn_objects;
  check Alcotest.bool (what ^ ": final registers") true (a.sn_regs = b.sn_regs);
  check Alcotest.bool (what ^ ": final heap image") true
    (Vm.Mem.equal a.sn_mem b.sn_mem)

let test_worker_sweep () =
  (* {1,2,4} workers x {flat, gen} over collection-heavy scenarios: every
     observable — output, collection count, copy totals, final registers
     and the final heap image, word for word — must match the serial
     collector exactly, with the post-collection verifier armed for every
     run. *)
  let post0 = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  Fun.protect
    ~finally:(fun () -> Gc.Verify.set_post post0)
    (fun () ->
      List.iter
        (fun (name, src, heap) ->
          let img =
            Driver.Compile.compile
              ~options:{ Driver.Compile.default_options with heap_words = heap }
              src
          in
          List.iter
            (fun gen ->
              let mode = if gen then "gen" else "flat" in
              let serial = snapshot ~gen ~workers:1 img in
              check Alcotest.bool
                (Printf.sprintf "%s/%s: serial baseline collected" name mode)
                true (serial.sn_collections > 0);
              List.iter
                (fun w ->
                  let par = snapshot ~gen ~workers:w img in
                  same_snapshot
                    (Printf.sprintf "%s/%s workers=%d" name mode w)
                    serial par)
                [ 2; 4 ])
            [ false; true ])
        [
          ("churn", churn_src, 400);
          ("deep", deep_src, 700);
          ( "destroy",
            Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2
              ~iterations:120,
            4000 );
        ])

(* Single evacuation, as a property: if some object were copied twice (a
   race between claimants), either two to-space copies exist — words and
   object counts diverge from the serial collector — or a from-space
   pointer survives and the armed verifier trips. Equality of every
   observable with workers=1 therefore certifies exactly-once evacuation
   on top of determinism. *)
let prop_single_evacuation =
  let gen =
    QCheck.Gen.(
      let* branch = int_range 2 3 in
      let* depth = int_range 2 4 in
      let* replace_depth = int_range 1 depth in
      let* iterations = int_range 5 30 in
      let* heap = int_range 2500 8000 in
      let* gen_mode = bool in
      return (branch, depth, replace_depth, iterations, heap, gen_mode))
  in
  QCheck.Test.make
    ~name:"parallel copy evacuates each object exactly once" ~count:20
    (QCheck.make
       ~print:(fun (b, d, r, i, h, g) ->
         Printf.sprintf "destroy b=%d d=%d r=%d i=%d h=%d gen=%b" b d r i h g)
       gen)
    (fun (branch, depth, replace_depth, iterations, heap, gen_mode) ->
      let src = Programs.Destroy_src.make ~branch ~depth ~replace_depth ~iterations in
      let img =
        Driver.Compile.compile
          ~options:{ Driver.Compile.default_options with heap_words = heap }
          src
      in
      let post0 = Gc.Verify.post_enabled () in
      Gc.Verify.set_post true;
      Fun.protect
        ~finally:(fun () -> Gc.Verify.set_post post0)
        (fun () ->
          (* Exhaustion on an aggressive parameterization is legitimate,
             but then every worker count must exhaust identically. *)
          let snap workers =
            try Some (snapshot ~gen:gen_mode ~workers img)
            with Vm.Vm_error.Error (Vm.Vm_error.Heap_exhausted _) -> None
          in
          match (snap 1, snap 4) with
          | None, None -> true
          | Some a, Some b ->
              a.sn_output = b.sn_output
              && a.sn_collections = b.sn_collections
              && a.sn_words = b.sn_words
              && a.sn_objects = b.sn_objects
              && a.sn_regs = b.sn_regs
              && Vm.Mem.equal a.sn_mem b.sn_mem
          | _ -> false))

let () =
  Alcotest.run "gc"
    [
      ( "scenarios",
        [
          Alcotest.test_case "churn" `Quick test_churn;
          Alcotest.test_case "VAR params into heap" `Quick test_varparam;
          Alcotest.test_case "WITH aliases" `Quick test_alias;
          Alcotest.test_case "deep recursion" `Quick test_deep;
          Alcotest.test_case "stack aggregates" `Quick test_stackagg;
          Alcotest.test_case "global roots and texts" `Quick test_globals;
          Alcotest.test_case "ambiguous derivations" `Quick test_srgc;
        ] );
      ( "properties",
        [
          Alcotest.test_case "compaction" `Quick test_compaction;
          Alcotest.test_case "copies bounded by survivors" `Quick
            test_live_shrinks_garbage;
          Alcotest.test_case "frames traced" `Quick test_frames_traced;
          Alcotest.test_case "conservative retains" `Quick
            test_conservative_retains_reachable;
          Alcotest.test_case "conservative fragmentation" `Quick
            test_conservative_fragmentation_visible;
          Alcotest.test_case "null trace is identity" `Quick test_trace_only_is_identity;
          Alcotest.test_case "forced loop gc-points" `Quick test_forced_gc_checks;
          Alcotest.test_case "noalloc analysis safe" `Quick test_noalloc_configuration_safe;
          Alcotest.test_case "all table schemes" `Quick test_table_scheme_configurations;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "worker sweep {1,2,4} x {flat,gen}" `Quick
            test_worker_sweep;
          QCheck_alcotest.to_alcotest prop_single_evacuation;
        ] );
    ]
