(* Profile-guided placement tests.

   Placement is a pure runtime switch: every configuration — no policy,
   pretenure-all, pool-all, a policy derived from a real profile, and the
   in-run adaptive mode — must produce byte-identical output and
   instruction counts on both engines and both precise collectors, under
   the post-collection heap verifier. A profile-derived policy must also
   never increase the total words the collectors copy (that is the whole
   point). The boundary units pin the nursery-capacity cutoff between the
   placed path and the big-object path, and the mutation unit pins the
   old→young edge created by storing a nursery pointer into a pretenured
   object. The mm-policy serialization round-trips under qcheck. *)

module T = Telemetry
module C = Driver.Compile

let check = Alcotest.check

let fresh f () =
  T.Metrics.reset ();
  T.Trace.clear ();
  T.Control.enable ();
  Fun.protect ~finally:T.Control.disable f

(* Every run in this file executes under the post-collection verifier. *)
let verified f =
  Gc.Verify.set_post true;
  Fun.protect ~finally:(fun () -> Gc.Verify.set_post false) f

let compile ~heap src =
  C.compile ~options:{ C.default_options with heap_words = heap } src

(* Run [img] under an explicit engine, bypassing MM_THREADED. *)
let run_with ?policy ?adaptive ?profile ?(nursery = 512) ~threaded ~gen img =
  let was = Vm.Threaded.enabled () in
  Fun.protect
    ~finally:(fun () -> Vm.Threaded.set_enabled was)
    (fun () ->
      Vm.Threaded.set_enabled threaded;
      C.run
        ~collector:(if gen then C.Generational else C.Precise)
        ~nursery_words:nursery ?policy ?adaptive ?profile img)

(* ------------------------------------------------------------------ *)
(* mm-policy JSON round-trip                                           *)
(* ------------------------------------------------------------------ *)

let gen_policy =
  let open QCheck.Gen in
  let ident = string_size ~gen:(char_range 'a' 'z') (int_range 1 12) in
  let entry =
    ident >>= fun proc ->
    int_range 1 999 >>= fun line ->
    int_range 0 80 >>= fun col ->
    int_range 0 50 >>= fun tdesc ->
    bool >>= fun open_ ->
    oneofl [ Policy.Nursery; Policy.Pretenure; Policy.Pool ] >>= fun d ->
    float_range 0.0 1.0 >>= fun rate ->
    int_range 0 100_000 >>= fun samples ->
    int_range 0 100_000 >>= fun allocs ->
    return
      {
        Policy.e_proc = proc;
        e_line = line;
        e_col = col;
        e_tdesc = tdesc;
        e_open = open_;
        e_decision = d;
        e_rate = rate;
        e_samples = samples;
        e_allocs = allocs;
      }
  in
  float_range 0.0 1.0 >>= fun pr ->
  int_range 0 1000 >>= fun msw ->
  int_range 0 1000 >>= fun pma ->
  list_size (int_range 0 20) entry >>= fun entries ->
  return
    {
      Policy.thresholds =
        { Policy.pretenure_rate = pr; min_sample_words = msw; pool_min_allocs = pma };
      entries;
    }

let test_roundtrip =
  QCheck.Test.make ~count:200 ~name:"mm-policy JSON round-trip"
    (QCheck.make gen_policy) (fun p ->
      let text = T.Json.to_string (Policy.to_json p) in
      Policy.of_json (T.Json.parse text) = p)

let test_bad_documents () =
  let rejects doc =
    match Policy.of_json (T.Json.parse doc) with
    | exception Policy.Policy_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "wrong schema rejected" true
    (rejects {|{"schema":"mm-profile","version":1,"sites":[]}|});
  check Alcotest.bool "wrong version rejected" true
    (rejects {|{"schema":"mm-policy","version":99,"sites":[]}|});
  check Alcotest.bool "missing sites rejected" true
    (rejects {|{"schema":"mm-policy","version":1}|});
  check Alcotest.bool "bad decision rejected" true
    (rejects
       {|{"schema":"mm-policy","version":1,"sites":[{"proc":"P","line":1,"col":1,"tdesc":0,"decision":"eden"}]}|})

(* ------------------------------------------------------------------ *)
(* Classifier                                                          *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let th = Policy.default_thresholds in
  let c = Policy.classify th in
  check Alcotest.bool "under-sampled site stays in the nursery" true
    (c ~allocs:1000 ~survived_words:63 ~dead_words:0 = Policy.Nursery);
  check Alcotest.bool "low survival stays in the nursery" true
    (c ~allocs:1000 ~survived_words:50 ~dead_words:950 = Policy.Nursery);
  check Alcotest.bool "high survival, few allocs pretenures" true
    (c ~allocs:10 ~survived_words:900 ~dead_words:100 = Policy.Pretenure);
  check Alcotest.bool "high survival, many allocs pools" true
    (c ~allocs:1000 ~survived_words:900 ~dead_words:100 = Policy.Pool);
  check Alcotest.bool "exactly at the rate floor leaves the nursery" true
    (c ~allocs:10 ~survived_words:80 ~dead_words:20 = Policy.Pretenure)

(* ------------------------------------------------------------------ *)
(* Nursery-capacity boundary                                           *)
(* ------------------------------------------------------------------ *)

(* An open INTEGER array of W words occupies header + W heap words; with
   the header that is exactly the nursery capacity at W = cap - header,
   one word over it at W = cap - header + 1. At or under the capacity a
   pretenure policy routes the object through the placed path (counted in
   gc.pretenured_words); over it the ordinary big-object path takes over
   and the placement counters must not move. *)
let edge_src words =
  Printf.sprintf
    {|MODULE Edge;
TYPE Ints = REF ARRAY OF INTEGER;
VAR a, b: Ints; i, sum: INTEGER;
BEGIN
  a := NEW(Ints, %d);
  a[%d] := 42;
  sum := 0;
  FOR i := 1 TO 400 DO
    b := NEW(Ints, 8);
    b[0] := i;
    sum := sum + b[0]
  END;
  PutInt(a[%d]); PutText(" "); PutInt(sum); PutLn()
END Edge.|}
    words (words - 1) (words - 1)

let test_boundary () =
  verified (fun () ->
      let nursery = 400 in
      let cap_words = nursery - Rt.Typedesc.open_header_words in
      List.iter
        (fun (label, words, expect_pretenured) ->
          T.Metrics.reset ();
          let img = compile ~heap:8192 (edge_src words) in
          let policy = Policy.uniform Policy.Pretenure (C.sites_for img) in
          let r = run_with ~policy ~nursery ~threaded:false ~gen:true img in
          let base = run_with ~nursery ~threaded:false ~gen:true img in
          check Alcotest.string (label ^ ": output matches no-policy run")
            base.C.output r.C.output;
          check Alcotest.int (label ^ ": icount matches no-policy run")
            base.C.instructions r.C.instructions;
          (* The 400 churn arrays (10 words each) are pretenured under the
             pretenure-all policy in both cases; the boundary object's own
             words land in the counter only when it fits the capacity. *)
          let churn_words = 400 * (8 + Rt.Typedesc.open_header_words) in
          check Alcotest.int
            (label
            ^
            if expect_pretenured then ": boundary object itself was pretenured"
            else ": over-capacity object not placement-counted")
            (if expect_pretenured then churn_words + nursery else churn_words)
            (T.Metrics.counter_value "gc.pretenured_words"))
        [
          ("exactly nursery-sized", cap_words, true);
          ("nursery-sized + 1", cap_words + 1, false);
        ])

(* A pretenured object mutated to point at a nursery object: the nursery
   referent must survive every minor collection (the pretenured object is
   wholesale-scanned until the next full collection, covering even
   stores whose write barrier the compiler elided), and the verifier's
   old→young check must accept the un-remembered edge. *)
let mutation_src =
  {|MODULE Mut;
TYPE Node = RECORD v: INTEGER; next: Ref END; Ref = REF Node;
VAR a, t: Ref; i, sum: INTEGER;
BEGIN
  a := NEW(Ref);
  a.v := 7;
  a.next := NIL;
  sum := 0;
  FOR i := 1 TO 2000 DO
    t := NEW(Ref);
    t.v := i;
    a.next := t;
    sum := sum + a.next.v
  END;
  PutInt(a.v); PutText(" "); PutInt(a.next.v); PutText(" "); PutInt(sum); PutLn()
END Mut.|}

let test_pretenured_mutation () =
  verified (fun () ->
      let img = compile ~heap:4096 mutation_src in
      let policy = Policy.uniform Policy.Pretenure (C.sites_for img) in
      let base = run_with ~nursery:400 ~threaded:false ~gen:true img in
      check Alcotest.bool "minors happened" true (base.C.gc.Vm.Interp.minor_collections > 0);
      List.iter
        (fun threaded ->
          let r = run_with ~policy ~nursery:400 ~threaded ~gen:true img in
          let label = if threaded then "threaded" else "switch" in
          check Alcotest.string (label ^ ": output survives the mutated edge")
            base.C.output r.C.output;
          check Alcotest.int (label ^ ": icount unchanged") base.C.instructions
            r.C.instructions)
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Differential suite                                                  *)
(* ------------------------------------------------------------------ *)

let destroy_small =
  Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations:200

let destroy_ballast =
  Programs.Destroy_src.make_ballast ~ballast:300 ~branch:3 ~depth:4 ~replace_depth:2
    ~iterations:150

(* Derive a policy from a real profiled run of [img] (generational, so
   the lifetime stats are populated by minor collections). *)
let derived_policy img =
  let p = C.profile_for img in
  ignore (run_with ~profile:p ~threaded:false ~gen:true img);
  Policy.derive_from_stats p

let test_differential () =
  verified (fun () ->
      List.iter
        (fun (name, src) ->
          let img = compile ~heap:8192 src in
          let derived = derived_policy img in
          let uniform d = Policy.uniform d (C.sites_for img) in
          List.iter
            (fun threaded ->
              List.iter
                (fun gen ->
                  let label cfg =
                    Printf.sprintf "%s/%s/%s/%s" name
                      (if threaded then "threaded" else "switch")
                      (if gen then "gen" else "flat")
                      cfg
                  in
                  let base = run_with ~threaded ~gen img in
                  let same cfg (r : C.run_result) =
                    check Alcotest.string (label cfg ^ ": output") base.C.output
                      r.C.output;
                    check Alcotest.int (label cfg ^ ": icount") base.C.instructions
                      r.C.instructions
                  in
                  same "pretenure-all"
                    (run_with ~policy:(uniform Policy.Pretenure) ~threaded ~gen img);
                  same "pool-all"
                    (run_with ~policy:(uniform Policy.Pool) ~threaded ~gen img);
                  let d = run_with ~policy:derived ~threaded ~gen img in
                  same "derived" d;
                  if gen then
                    check Alcotest.bool
                      (label "derived" ^ ": no more words copied than baseline")
                      true
                      (d.C.gc.Vm.Interp.words_copied
                      <= base.C.gc.Vm.Interp.words_copied);
                  same "adaptive" (run_with ~adaptive:8 ~threaded ~gen img))
                [ false; true ])
            [ false; true ])
        [ ("destroy", destroy_small); ("destroy-ballast", destroy_ballast) ])

(* ------------------------------------------------------------------ *)
(* Adaptive convergence                                                *)
(* ------------------------------------------------------------------ *)

(* The in-run adaptive mode and the offline profile→policygen pipeline
   share one classifier, so on a workload whose per-site lifetime ratios
   are stable (ballast: 100% survival; tree churn: far below the rate
   floor) the adaptive decisions must equal the decisions a policy
   derived from a full profiled run maps back onto the same image. *)
let test_adaptive_convergence () =
  verified (fun () ->
      let img = compile ~heap:8192 destroy_ballast in
      let p = C.profile_for img in
      ignore (run_with ~profile:p ~threaded:false ~gen:true img);
      let offline = Policy.decision_codes_from_stats p in
      let via_file, matched =
        Policy.decisions_for (Policy.derive_from_stats p) (C.sites_for img)
      in
      check Alcotest.int "file policy matches every site" (Array.length offline) matched;
      check
        Alcotest.(list int)
        "stats path and file path agree" (Array.to_list offline)
        (Array.to_list via_file);
      let r = run_with ~adaptive:8 ~threaded:false ~gen:true img in
      match r.C.placement with
      | None -> Alcotest.fail "adaptive run produced no placement"
      | Some (src, codes) ->
          check Alcotest.string "placement source" "adaptive" src;
          check
            Alcotest.(list int)
            "adaptive decisions converge on the offline policy"
            (Array.to_list offline) (Array.to_list codes);
          check Alcotest.bool "adaptive actually placed something" true
            (Array.exists (fun c -> c <> Policy.nursery_code) codes))

let () =
  Alcotest.run "policy"
    [
      ( "serialization",
        [
          QCheck_alcotest.to_alcotest test_roundtrip;
          Alcotest.test_case "bad documents" `Quick (fresh test_bad_documents);
        ] );
      ("classifier", [ Alcotest.test_case "thresholds" `Quick (fresh test_classify) ]);
      ( "placement",
        [
          Alcotest.test_case "nursery-capacity boundary" `Quick (fresh test_boundary);
          Alcotest.test_case "pretenured object points at nursery" `Quick
            (fresh test_pretenured_mutation);
        ] );
      ( "differential",
        [ Alcotest.test_case "all configs byte-identical" `Slow (fresh test_differential) ]
      );
      ( "adaptive",
        [
          Alcotest.test_case "converges on the offline policy" `Quick
            (fresh test_adaptive_convergence);
        ] );
    ]
