(* Memory-pressure regression suite: adaptive heap growth must be
   observationally invisible (output, icount, final heap image) across
   collectors, execution engines and gc worker counts; injected worker
   faults must be contained by the serial round replay; and each runtime
   failure class must keep its distinct typed exit code. *)

module D = Driver.Compile
module I = Vm.Interp
module F = Fault.Faultinject

let tiny_heap = 600
let big_heap = 16384
let fuel = 50_000_000

(* ------------------------------------------------------------------ *)
(* A parameterized list-churn program: pushes [iters] nodes, dropping
   the accumulated list every [period] pushes (so most of the heap is
   garbage at any collection) and summing the last kept batch.          *)
(* ------------------------------------------------------------------ *)

let churn_src ~iters ~period =
  Printf.sprintf
    "MODULE Churn;\n\
     TYPE Node = RECORD v: INTEGER; n: List END; List = REF Node;\n\
     VAR head, keep: List; i, k, s: INTEGER;\n\n\
     PROCEDURE Push(v: INTEGER);\n\
     VAR c: List;\n\
     BEGIN c := NEW(List); c.v := v; c.n := head; head := c END Push;\n\n\
     BEGIN\n\
     \  k := 0;\n\
     \  FOR i := 1 TO %d DO\n\
     \    Push(i);\n\
     \    k := k + 1;\n\
     \    IF k > %d THEN\n\
     \      keep := head; head := NIL; k := 0\n\
     \    ELSE\n\
     \      s := s + 0\n\
     \    END\n\
     \  END;\n\
     \  s := 0;\n\
     \  WHILE keep # NIL DO s := s + keep.v; keep := keep.n END;\n\
     \  PutInt(s); PutLn()\n\
     END Churn.\n"
    iters (period - 1)

(* ------------------------------------------------------------------ *)
(* One cell of the matrix, driven through Vm.Interp directly so the
   final store is observable.                                           *)
(* ------------------------------------------------------------------ *)

type cell = {
  out : string;
  icount : int;
  collections : int;
  resizes : int;
  mem : Vm.Mem.t;
}

let run_cell ?(storm = 0) ~gen ~threaded ~heap ~grow src : cell =
  let options = { D.default_options with heap_words = heap } in
  let img = D.compile ~options src in
  let st = I.create img in
  if grow then begin
    st.I.heap_resize <- true;
    st.I.heap_max_words <- big_heap;
    st.I.heap_min_words <- st.I.from_words
  end;
  if storm > 0 then st.I.alloc_pressure_every <- storm;
  if gen then Gc.Nursery.install st else Gc.Cheney.install st;
  let e0 = Vm.Threaded.enabled () in
  Vm.Threaded.set_enabled threaded;
  Fun.protect
    ~finally:(fun () -> Vm.Threaded.set_enabled e0)
    (fun () -> if threaded then Vm.Threaded.run ~fuel st else I.run ~fuel st);
  {
    out = I.output st;
    icount = st.I.icount;
    collections = st.I.gc.I.collections;
    resizes = st.I.gc.I.resizes;
    mem = st.I.mem;
  }

let with_pool ~workers f =
  let w0 = !Gc.Gc_pool.forced_workers and t0 = !Gc.Gc_pool.forced_threshold in
  Gc.Gc_pool.set_workers workers;
  Gc.Gc_pool.set_par_threshold 2;
  Fun.protect
    ~finally:(fun () ->
      Gc.Gc_pool.forced_workers := w0;
      Gc.Gc_pool.forced_threshold := t0)
    f

let with_post_verifier f =
  let post0 = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  Fun.protect ~finally:(fun () -> Gc.Verify.set_post post0) f

(* ------------------------------------------------------------------ *)
(* The growth-equivalence property: {tiny heap + growth} × {flat, gen}
   × {switch, threaded} × workers {1, 4} all agree with the big
   fixed-heap reference on output and icount; flat cells additionally
   agree on the collection count (eager pre-collection growth reproduces
   the big heap's collection points exactly) and on the byte-identical
   final store across engines and worker counts.                        *)
(* ------------------------------------------------------------------ *)

let check_matrix src =
  with_post_verifier (fun () ->
      let reference = run_cell ~gen:false ~threaded:false ~heap:big_heap ~grow:false src in
      let cells =
        List.concat_map
          (fun gen ->
            List.concat_map
              (fun threaded ->
                List.map
                  (fun workers ->
                    let c =
                      with_pool ~workers (fun () ->
                          run_cell ~gen ~threaded ~heap:tiny_heap ~grow:true src)
                    in
                    ((gen, threaded, workers), c))
                  [ 1; 4 ])
              [ false; true ])
          [ false; true ]
      in
      List.iter
        (fun ((gen, threaded, workers), c) ->
          let tag =
            Printf.sprintf "%s/%s/w%d"
              (if gen then "gen" else "flat")
              (if threaded then "threaded" else "switch")
              workers
          in
          if c.out <> reference.out then
            Alcotest.failf "%s: output diverged under growth" tag;
          if c.icount <> reference.icount then
            Alcotest.failf "%s: icount %d <> reference %d" tag c.icount
              reference.icount;
          if (not gen) && c.collections <> reference.collections then
            Alcotest.failf "%s: collections %d <> reference %d (eager growth)"
              tag c.collections reference.collections)
        cells;
      (* Engines and worker counts must not leave a trace in the store:
         within a collector mode every cell's final image is one byte
         pattern. *)
      List.iter
        (fun gen ->
          match List.filter (fun ((g, _, _), _) -> g = gen) cells with
        | ((_, base) :: rest : ((bool * bool * int) * cell) list) ->
              List.iter
                (fun ((_, t, w), c) ->
                  if not (Vm.Mem.equal base.mem c.mem) then
                    Alcotest.failf
                      "%s/%s/w%d: final store differs within mode"
                      (if gen then "gen" else "flat")
                      (if t then "threaded" else "switch")
                      w)
                rest
          | [] -> ())
        [ false; true ];
      reference)

let test_growth_matrix () =
  (* ~24k allocated words: even the big reference heap collects, and the
     tiny cells must grow through several resizes to keep up. *)
  let src = churn_src ~iters:6000 ~period:11 in
  let reference = check_matrix src in
  (* The tiny cells really grew (the property is not vacuous). *)
  let tiny =
    run_cell ~gen:false ~threaded:false ~heap:tiny_heap ~grow:true src
  in
  Alcotest.(check bool) "growth exercised" true (tiny.resizes > 0);
  Alcotest.(check bool) "reference collected" true (reference.collections > 0)

let prop_growth_matrix =
  QCheck.Test.make ~name:"growth invisible across random churn parameters"
    ~count:8
    (QCheck.make
       ~print:(fun (i, p) -> Printf.sprintf "iters=%d period=%d" i p)
       QCheck.Gen.(pair (int_range 80 500) (int_range 3 17)))
    (fun (iters, period) ->
      ignore (check_matrix (churn_src ~iters ~period));
      true)

(* ------------------------------------------------------------------ *)
(* Allocation storms: forcing the collect/grow slow path every Nth
   allocation changes collection counts but never observable behavior.  *)
(* ------------------------------------------------------------------ *)

let test_alloc_storm () =
  let src = churn_src ~iters:700 ~period:9 in
  with_post_verifier (fun () ->
      let calm = run_cell ~gen:false ~threaded:false ~heap:big_heap ~grow:false src in
      List.iter
        (fun gen ->
          let stormy =
            run_cell ~storm:7 ~gen ~threaded:false ~heap:tiny_heap ~grow:true src
          in
          Alcotest.(check string)
            (if gen then "gen storm output" else "flat storm output")
            calm.out stormy.out;
          Alcotest.(check int) "storm icount" calm.icount stormy.icount;
          Alcotest.(check bool) "storm forced collections" true
            (stormy.collections > calm.collections))
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Typed OOM: a fixed tiny heap exhausts; the same heap with growth
   completes; growth capped below the live set still exhausts — and the
   failure is the typed [Heap_exhausted], exit code 13.                 *)
(* ------------------------------------------------------------------ *)

(* Keeps every node live: growth can only delay — not avoid — the cap. *)
let hoard_src ~iters =
  Printf.sprintf
    "MODULE Hoard;\n\
     TYPE Node = RECORD v: INTEGER; n: List END; List = REF Node;\n\
     VAR head: List; i, s: INTEGER;\n\
     PROCEDURE Push(v: INTEGER);\n\
     VAR c: List;\n\
     BEGIN c := NEW(List); c.v := v; c.n := head; head := c END Push;\n\
     BEGIN\n\
     \  FOR i := 1 TO %d DO Push(i) END;\n\
     \  s := 0;\n\
     \  WHILE head # NIL DO s := s + head.v; head := head.n END;\n\
     \  PutInt(s); PutLn()\n\
     END Hoard.\n"
    iters

let expect_heap_exhausted name f =
  match f () with
  | (_ : cell) -> Alcotest.failf "%s: expected Heap_exhausted" name
  | exception Vm.Vm_error.Error (Vm.Vm_error.Heap_exhausted _ as e) ->
      Alcotest.(check int) (name ^ " exit code") 13 (Vm.Vm_error.exit_code e)

let test_typed_oom () =
  let src = hoard_src ~iters:4000 in
  expect_heap_exhausted "fixed tiny heap" (fun () ->
      run_cell ~gen:false ~threaded:false ~heap:tiny_heap ~grow:false src);
  (* With growth the same program completes, identically to a big heap. *)
  let grown = run_cell ~gen:false ~threaded:false ~heap:tiny_heap ~grow:true src in
  let fixed = run_cell ~gen:false ~threaded:false ~heap:big_heap ~grow:false src in
  Alcotest.(check string) "grown output" fixed.out grown.out;
  Alcotest.(check int) "grown icount" fixed.icount grown.icount;
  Alcotest.(check bool) "grown resizes" true (grown.resizes > 0)

let test_capped_oom () =
  (* A live set that cannot fit below the cap exhausts with the typed
     error even though growth is armed. *)
  let src = hoard_src ~iters:20000 in
  expect_heap_exhausted "capped growth" (fun () ->
      run_cell ~gen:false ~threaded:false ~heap:tiny_heap ~grow:true src)

(* ------------------------------------------------------------------ *)
(* Exit-code mapping: one distinct code per failure class.              *)
(* ------------------------------------------------------------------ *)

let test_exit_codes () =
  let open Vm.Vm_error in
  let codes =
    List.map exit_code
      [
        Generic "x";
        Corrupt_table { fid = 0; offset = 0; reason = "r" };
        Bad_root { loc = "l"; value = 0; reason = "r" };
        Heap_exhausted { needed = 1; free = 0 };
        Verify_failed { collection = 0; phase = "post"; violations = [] };
        Out_of_fuel { instructions = 0 };
      ]
  in
  Alcotest.(check (list int)) "typed exit codes" [ 10; 11; 12; 13; 14; 15 ] codes;
  (* All distinct, and clear of 0 (success), 3 (guest trap) and the
     cmdliner range. *)
  Alcotest.(check int) "distinct" (List.length codes)
    (List.length (List.sort_uniq compare codes))

(* ------------------------------------------------------------------ *)
(* Fault-contained parallel collection: a worker raise or stall in every
   parallel round, with the post-verifier armed, never crashes, hangs,
   diverges or corrupts — and the serial replay is actually exercised.   *)
(* ------------------------------------------------------------------ *)

let test_runtime_fault_sweep () =
  (* The tree-shaped target: its scan frontier goes wide (≥ the parallel
     threshold), so raises and stalls actually land in dispatched rounds.
     List-shaped heaps never leave the fused serial path — nothing to
     fault. *)
  let target = List.nth F.default_targets 2 in
  let s = with_post_verifier (fun () -> F.runtime_sweep ~workers:4 target) in
  Alcotest.(check int) "crashed" 0 (F.count s "crashed");
  Alcotest.(check int) "hung" 0 (F.count s "hung");
  Alcotest.(check int) "diverged" 0 (F.count s "diverged");
  Alcotest.(check int) "verifier_flagged" 0 (F.count s "verifier_flagged");
  Alcotest.(check bool) "serial replay exercised" true
    (F.count s "recovered" > 0)

let () =
  Alcotest.run "pressure"
    [
      ( "growth",
        [
          Alcotest.test_case "matrix on churn" `Quick test_growth_matrix;
          QCheck_alcotest.to_alcotest prop_growth_matrix;
          Alcotest.test_case "alloc storm" `Quick test_alloc_storm;
        ] );
      ( "oom",
        [
          Alcotest.test_case "typed exhaustion and recovery" `Quick test_typed_oom;
          Alcotest.test_case "exhaustion at the cap" `Quick test_capped_oom;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "worker faults recover" `Slow test_runtime_fault_sweep;
        ] );
    ]
