(* Differential testing of the threaded-code execution engine against the
   reference switch interpreter: same image, same collector, every
   observable — output, instruction count, collection count, the final
   heap/stack/register state — must agree exactly, with the heap verifier
   armed after every collection. The engine matrix covers {flat, gen} ×
   {unopt, opt} over the benchmark programs, plus qcheck-randomized
   benchmark parameterizations and heap sizes. *)

let check = Alcotest.check

module C = Driver.Compile

type observed = {
  output : string;
  icount : int;
  collections : int;
  allocs : int;
  alloc_words : int;
  regs : int array;
  mem : Vm.Mem.t;
}

(* Run one machine over [img] under the chosen engine and collector and
   capture everything the guest can observe (and some it cannot). *)
let observe ~threaded ~gen (img : Vm.Image.t) : observed =
  let st = Vm.Interp.create img in
  if gen then Gc.Nursery.install st else Gc.Cheney.install st;
  if threaded then Vm.Threaded.run st else Vm.Interp.run st;
  {
    output = Vm.Interp.output st;
    icount = st.Vm.Interp.icount;
    collections = st.Vm.Interp.gc.Vm.Interp.collections;
    allocs = st.Vm.Interp.alloc_count;
    alloc_words = st.Vm.Interp.alloc_words;
    regs = Array.copy st.Vm.Interp.regs;
    mem = Vm.Mem.copy st.Vm.Interp.mem;
  }

let agree ~what ~gen (img : Vm.Image.t) =
  (* Verifier armed: any collection that corrupts the heap fails the run
     itself, not just the comparison. *)
  let post0 = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  Fun.protect
    ~finally:(fun () -> Gc.Verify.set_post post0)
    (fun () ->
      let s = observe ~threaded:false ~gen img in
      let t = observe ~threaded:true ~gen img in
      check Alcotest.string (what ^ ": output") s.output t.output;
      check Alcotest.int (what ^ ": icount") s.icount t.icount;
      check Alcotest.int (what ^ ": collections") s.collections t.collections;
      check Alcotest.int (what ^ ": allocations") s.allocs t.allocs;
      check Alcotest.int (what ^ ": alloc words") s.alloc_words t.alloc_words;
      check Alcotest.bool (what ^ ": final registers") true (s.regs = t.regs);
      check Alcotest.bool (what ^ ": final heap image") true (Vm.Mem.equal s.mem t.mem);
      s.collections)

let compile ~optimize ~heap src =
  C.compile ~options:{ C.default_options with optimize; heap_words = heap } src

(* ------------------------------------------------------------------ *)
(* The benchmark matrix: {flat, gen} x {unopt, opt} x programs          *)
(* ------------------------------------------------------------------ *)

let test_benchmark_matrix () =
  let progs =
    [
      ( "destroy",
        Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations:120,
        4000 );
      ("takl", Programs.Takl_src.make ~n1:10 ~n2:6 ~n3:4 ~repeats:3 ~ballast:50, 900);
      ("typereg", Programs.Typereg_src.src, 8000);
      ("FieldList", Programs.Fieldlist_src.src, 4000);
    ]
  in
  let total_collections = ref 0 in
  List.iter
    (fun (name, src, heap) ->
      List.iter
        (fun optimize ->
          let img = compile ~optimize ~heap src in
          List.iter
            (fun gen ->
              let what =
                Printf.sprintf "%s%s %s" name
                  (if optimize then "-opt" else "")
                  (if gen then "gen" else "flat")
              in
              total_collections := !total_collections + agree ~what ~gen img)
            [ false; true ])
        [ false; true ])
    progs;
  (* The matrix is only meaningful if collections actually struck. *)
  check Alcotest.bool
    (Printf.sprintf "matrix exercised the collectors (%d collections)"
       !total_collections)
    true
    (!total_collections > 20)

(* ------------------------------------------------------------------ *)
(* Parallel copy x engines                                             *)
(* ------------------------------------------------------------------ *)

(* Pin the copy-phase worker count and round threshold for [f], restoring
   both; threshold 2 forces the small test heaps through the parallel
   round machinery (the 512-object default would leave them serial). *)
let with_copy_workers n f =
  let w0 = !Gc.Gc_pool.forced_workers and t0 = !Gc.Gc_pool.forced_threshold in
  Gc.Gc_pool.set_workers n;
  Gc.Gc_pool.set_par_threshold 2;
  Fun.protect
    ~finally:(fun () ->
      Gc.Gc_pool.forced_workers := w0;
      Gc.Gc_pool.forced_threshold := t0)
    f

let test_worker_engine_sweep () =
  (* {1,2,4} workers x {flat, gen} x {switch, threaded}: every run must
     reproduce the serial switch-engine observables exactly — the copy
     phase's worker count is invisible to both engines. Post verifier
     armed throughout. *)
  let img =
    compile ~optimize:true ~heap:4000
      (Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations:120)
  in
  let post0 = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  Fun.protect
    ~finally:(fun () -> Gc.Verify.set_post post0)
    (fun () ->
      List.iter
        (fun gen ->
          let mode = if gen then "gen" else "flat" in
          let base = with_copy_workers 1 (fun () -> observe ~threaded:false ~gen img) in
          check Alcotest.bool (mode ^ ": baseline collected") true
            (base.collections > 0);
          List.iter
            (fun w ->
              List.iter
                (fun threaded ->
                  let what =
                    Printf.sprintf "%s workers=%d %s" mode w
                      (if threaded then "threaded" else "switch")
                  in
                  let r = with_copy_workers w (fun () -> observe ~threaded ~gen img) in
                  check Alcotest.string (what ^ ": output") base.output r.output;
                  check Alcotest.int (what ^ ": icount") base.icount r.icount;
                  check Alcotest.int (what ^ ": collections") base.collections
                    r.collections;
                  check Alcotest.int (what ^ ": allocations") base.allocs r.allocs;
                  check Alcotest.int (what ^ ": alloc words") base.alloc_words
                    r.alloc_words;
                  check Alcotest.bool (what ^ ": final registers") true
                    (base.regs = r.regs);
                  check Alcotest.bool (what ^ ": final heap image") true
                    (Vm.Mem.equal base.mem r.mem))
                [ false; true ])
            [ 1; 2; 4 ])
        [ false; true ])

(* ------------------------------------------------------------------ *)
(* Engine selection plumbing                                           *)
(* ------------------------------------------------------------------ *)

let test_engine_switch () =
  let src = "MODULE T; BEGIN PutInt(42) END T.\n" in
  (* The default tracks MM_THREADED (CI runs the whole suite both ways). *)
  let dflt = if Vm.Threaded.enabled () then "threaded" else "switch" in
  let r0 = C.run_source src in
  check Alcotest.string "default engine honors MM_THREADED" dflt r0.C.engine;
  let was = Vm.Threaded.enabled () in
  Fun.protect
    ~finally:(fun () -> Vm.Threaded.set_enabled was)
    (fun () ->
      Vm.Threaded.set_enabled true;
      let rt = C.run_source src in
      Vm.Threaded.set_enabled false;
      let rs = C.run_source src in
      check Alcotest.string "set_enabled true selects threaded" "threaded"
        rt.C.engine;
      check Alcotest.string "set_enabled false selects switch" "switch" rs.C.engine;
      check Alcotest.string "same output" rt.C.output rs.C.output;
      check Alcotest.int "same icount" rt.C.instructions rs.C.instructions)

(* ------------------------------------------------------------------ *)
(* Fuel semantics                                                      *)
(* ------------------------------------------------------------------ *)

(* A fuel-killed threaded run may overshoot the budget by at most one
   instruction (a fused pair straddling the boundary); a completed run is
   exact. *)
let test_fuel_tolerance () =
  let src =
    "MODULE T; VAR i, s: INTEGER;\n\
     BEGIN s := 0; FOR i := 1 TO 100000 DO s := s + i END; PutInt(s) END T.\n"
  in
  let img = C.compile src in
  let spent threaded fuel =
    let st = Vm.Interp.create img in
    Gc.Cheney.install st;
    match if threaded then Vm.Threaded.run ~fuel st else Vm.Interp.run ~fuel st with
    | () -> Error st.Vm.Interp.icount (* completed inside the budget *)
    | exception Vm.Vm_error.Error _ -> Ok st.Vm.Interp.icount
  in
  List.iter
    (fun fuel ->
      match (spent false fuel, spent true fuel) with
      | Ok s, Ok t ->
          check Alcotest.bool
            (Printf.sprintf "fuel %d: overshoot at most 1 (switch %d, threaded %d)"
               fuel s t)
            true
            (t >= s && t <= s + 1)
      | Error s, Error t ->
          check Alcotest.int (Printf.sprintf "fuel %d: both completed" fuel) s t
      | _ -> Alcotest.fail (Printf.sprintf "fuel %d: engines disagree on completion" fuel))
    [ 1; 2; 100; 101; 1000; 100_000_000 ]

(* ------------------------------------------------------------------ *)
(* Fusion legality (unit)                                              *)
(* ------------------------------------------------------------------ *)

let test_fusion_legality () =
  let module I = Machine.Insn in
  let module F = Machine.Fusion in
  (* mov ; add ; jmp@1 — the add is a branch target, so the pair (0,1) is
     illegal; with the jump gone it fuses. *)
  let looped =
    [| I.Mov (I.Reg 2, I.Imm 1); I.Arith (I.Add, I.Reg 2, I.Reg 2, I.Imm 1); I.Jmp 1 |]
  in
  let tgt = F.targets looped in
  check Alcotest.bool "jump target marked" true tgt.(1);
  check Alcotest.bool "no fusion into a branch target" true
    (F.fusible looped tgt 0 = None);
  let straight =
    [| I.Mov (I.Reg 2, I.Imm 1); I.Arith (I.Add, I.Reg 2, I.Reg 2, I.Imm 1) |]
  in
  let tgt = F.targets straight in
  check Alcotest.bool "mov+arith fuses" true
    (F.fusible straight tgt 0 = Some F.Mov_arith);
  (* A call is a gc-point: legal only as the last element of a pair. *)
  let callpair = [| I.Push (I.Imm 3); I.Call (I.Crt (Mir.Ir.Rt_alloc 0)) |] in
  let tgt = F.targets callpair in
  check Alcotest.bool "push+call fuses (call last)" true
    (F.fusible callpair tgt 0 = Some F.Push_call);
  let callfirst = [| I.Call (I.Crt (Mir.Ir.Rt_alloc 0)); I.Mov (I.Reg 2, I.Imm 0) |] in
  let tgt = F.targets callfirst in
  check Alcotest.bool "call never fuses as first element" true
    (F.fusible callfirst tgt 0 = None);
  (* The instruction after a procedure call is a return point. *)
  let retpoint =
    [| I.Push (I.Reg 2); I.Call (I.Cproc 0); I.Mov (I.Reg 2, I.Reg 0); I.Ret 1 |]
  in
  let tgt = F.targets retpoint in
  check Alcotest.bool "return point marked" true tgt.(2)

(* ------------------------------------------------------------------ *)
(* qcheck: randomized benchmark parameterizations                      *)
(* ------------------------------------------------------------------ *)

let prop_random_params =
  let gen =
    QCheck.Gen.(
      let* which = int_range 0 1 in
      let* optimize = bool in
      let* gen_mode = bool in
      match which with
      | 0 ->
          let* branch = int_range 2 3 in
          let* depth = int_range 2 4 in
          let* replace_depth = int_range 1 depth in
          let* iterations = int_range 5 30 in
          let* heap = int_range 2500 8000 in
          return
            ( Printf.sprintf "destroy b=%d d=%d r=%d i=%d h=%d" branch depth
                replace_depth iterations heap,
              Programs.Destroy_src.make ~branch ~depth ~replace_depth ~iterations,
              heap,
              optimize,
              gen_mode )
      | _ ->
          let* n1 = int_range 8 11 in
          let* n2 = int_range 5 7 in
          let* n3 = int_range 3 5 in
          let* repeats = int_range 1 2 in
          let* ballast = int_range 0 120 in
          let* heap = int_range 800 2500 in
          return
            ( Printf.sprintf "takl %d,%d,%d r=%d b=%d h=%d" n1 n2 n3 repeats ballast
                heap,
              Programs.Takl_src.make ~n1 ~n2 ~n3 ~repeats ~ballast,
              heap,
              optimize,
              gen_mode ))
  in
  QCheck.Test.make ~name:"threaded and switch agree on randomized benchmarks"
    ~count:25
    (QCheck.make ~print:(fun (what, _, heap, o, g) ->
         Printf.sprintf "%s heap=%d opt=%b gen=%b" what heap o g)
       gen)
    (fun (what, src, heap, optimize, gen_mode) ->
      let img = compile ~optimize ~heap src in
      (* Heap exhaustion on an aggressive parameterization is a legitimate
         outcome — but both engines must then agree on the failure, which
         [agree] cannot express; surface it by comparing exceptions. *)
      match agree ~what ~gen:gen_mode img with
      | _ -> true
      | exception Vm.Vm_error.Error (Vm.Vm_error.Heap_exhausted _) ->
          let fails threaded =
            match observe ~threaded ~gen:gen_mode img with
            | _ -> false
            | exception Vm.Vm_error.Error (Vm.Vm_error.Heap_exhausted _) -> true
          in
          fails false && fails true)

let () =
  Alcotest.run "threaded"
    [
      ( "differential",
        [
          Alcotest.test_case "benchmark matrix" `Quick test_benchmark_matrix;
          Alcotest.test_case "worker sweep x engines" `Quick
            test_worker_engine_sweep;
          QCheck_alcotest.to_alcotest prop_random_params;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runtime switch" `Quick test_engine_switch;
          Alcotest.test_case "fuel tolerance" `Quick test_fuel_tolerance;
          Alcotest.test_case "fusion legality" `Quick test_fusion_legality;
        ] );
    ]
