(* Allocation-site profiling tests: both engines and both precise
   collectors attribute identical per-site counts, survival accounting is
   deterministic, the destroy-with-ballast benchmark ranks the long-lived
   ballast site's survival rate above every short-lived tree site, the
   heap census agrees with the verifier's independent live-heap parse, and
   attaching a profiler does not perturb execution. *)

module T = Telemetry
module C = Driver.Compile

let check = Alcotest.check

let fresh f () =
  T.Metrics.reset ();
  T.Trace.clear ();
  T.Control.enable ();
  Fun.protect ~finally:T.Control.disable f

let destroy_small =
  Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations:200

let compile_opts ~optimize ~heap = { C.default_options with optimize; heap_words = heap }

(* Run [img] with a fresh profiler under an explicit engine and collector
   (bypassing the driver's MM_GEN / MM_THREADED environment switches so the
   matrix below is exactly what it says); returns the profiler. *)
let run_profiled ?(census_every = 0) ~threaded ~gen img =
  let p = C.profile_for img in
  Profile.set_census_every p census_every;
  let was = Vm.Threaded.enabled () in
  Fun.protect
    ~finally:(fun () -> Vm.Threaded.set_enabled was)
    (fun () ->
      Vm.Threaded.set_enabled threaded;
      let st = Vm.Interp.create img in
      st.Vm.Interp.prof <- Some p;
      if gen then Gc.Nursery.install st else Gc.Cheney.install st;
      if threaded then Vm.Threaded.run st else Vm.Interp.run st);
  p

(* The full per-site record, as a comparable value. *)
let stats_list (p : Profile.t) =
  Array.to_list
    (Array.map
       (fun (s : Profile.site_stats) ->
         ( s.Profile.st_allocs,
           s.Profile.st_alloc_words,
           s.Profile.st_minor_survivals,
           s.Profile.st_minor_words,
           s.Profile.st_full_survivals,
           s.Profile.st_full_words,
           s.Profile.st_dead_objects,
           s.Profile.st_dead_words ))
       p.Profile.stats)

let rates_of (p : Profile.t) proc =
  Array.to_list p.Profile.sites
  |> List.filter (fun (s : Profile.site) -> s.Profile.s_proc = proc)
  |> List.map (fun (s : Profile.site) ->
         Profile.survival_rate p.Profile.stats.(s.Profile.s_id))

let test_engine_agreement () =
  List.iter
    (fun optimize ->
      let img = C.compile ~options:(compile_opts ~optimize ~heap:1500) destroy_small in
      List.iter
        (fun gen ->
          let label =
            Printf.sprintf "%s/%s"
              (if optimize then "opt" else "unopt")
              (if gen then "gen" else "flat")
          in
          let a = run_profiled ~threaded:false ~gen img in
          let b = run_profiled ~threaded:true ~gen img in
          check Alcotest.bool (label ^ ": collections happened") true
            (a.Profile.collections >= 1);
          check Alcotest.int
            (label ^ ": engines agree on collections")
            a.Profile.collections b.Profile.collections;
          check Alcotest.bool
            (label ^ ": engines agree on every per-site stat")
            true
            (stats_list a = stats_list b))
        [ false; true ])
    [ false; true ]

let test_survival_deterministic () =
  let img = C.compile ~options:(compile_opts ~optimize:true ~heap:1500) destroy_small in
  let a = run_profiled ~threaded:false ~gen:true img in
  let b = run_profiled ~threaded:false ~gen:true img in
  check Alcotest.bool "minor collections happened" true (a.Profile.minor_collections >= 1);
  check Alcotest.int "repeat run: same collection count" a.Profile.collections
    b.Profile.collections;
  check Alcotest.bool "repeat run: identical survival attribution" true
    (stats_list a = stats_list b)

(* The acceptance experiment: destroy with a long-lived ballast list — the
   ballast site's survival rate must rank above every short-lived tree
   site. Flat mode, so every collection copies every survivor. *)
let test_ballast_ordering () =
  let src =
    Programs.Destroy_src.make_ballast ~ballast:400 ~branch:3 ~depth:5 ~replace_depth:2
      ~iterations:40
  in
  let img = C.compile ~options:(compile_opts ~optimize:true ~heap:6000) src in
  let p = run_profiled ~threaded:false ~gen:false img in
  check Alcotest.bool "collections happened" true (p.Profile.collections >= 1);
  let ballast_rate =
    match rates_of p "MkBallast" with
    | [ r ] -> r
    | rs -> Alcotest.fail (Printf.sprintf "want 1 MkBallast site, got %d" (List.length rs))
  in
  let tree_rates = rates_of p "MkTree" in
  check Alcotest.bool "tree sites exist" true (tree_rates <> []);
  check Alcotest.bool "ballast survives nearly everything" true (ballast_rate > 0.9);
  List.iter
    (fun r ->
      check Alcotest.bool "ballast site outranks every tree site" true (ballast_rate > r))
    tree_rates

let census_checks ~heap ~iterations =
  let src = Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations in
  let img = C.compile ~options:(compile_opts ~optimize:true ~heap) src in
  let was = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  let p =
    Fun.protect
      ~finally:(fun () -> Gc.Verify.set_post was)
      (fun () -> run_profiled ~census_every:1 ~threaded:false ~gen:false img)
  in
  if p.Profile.collections = 0 then Alcotest.fail "no collections, census never taken";
  let c =
    match p.Profile.censuses with
    | c :: _ -> c
    | [] -> Alcotest.fail "census due every collection but none recorded"
  in
  (* Internal consistency: both breakdowns tile the censused heap. *)
  let total sel entries = List.fold_left (fun acc (_, o, w) -> acc + sel (o, w)) 0 entries in
  check Alcotest.int "by_tdesc objects tile the census" c.Profile.c_objects
    (total fst c.Profile.c_by_tdesc);
  check Alcotest.int "by_tdesc words tile the census" c.Profile.c_words
    (total snd c.Profile.c_by_tdesc);
  check Alcotest.int "by_site objects tile the census" c.Profile.c_objects
    (total fst c.Profile.c_by_site);
  check Alcotest.int "by_site words tile the census" c.Profile.c_words
    (total snd c.Profile.c_by_site);
  (* Cross-check against the verifier, which parsed the same post-collection
     heap through entirely separate code. *)
  match Gc.Verify.last_report () with
  | None -> Alcotest.fail "verifier enabled but no report"
  | Some r ->
      check Alcotest.int "census taken at the verified collection"
        r.Gc.Verify.collection c.Profile.c_collection;
      check Alcotest.int "census live objects equal the verifier's live-heap parse"
        r.Gc.Verify.objects c.Profile.c_objects

let test_census_matches_verifier () = census_checks ~heap:1500 ~iterations:200

let qcheck_census =
  QCheck.Test.make ~name:"census agrees with the verifier across heap shapes" ~count:8
    QCheck.(pair (int_range 1500 2400) (int_range 60 200))
    (fun (heap, iterations) ->
      (fresh (fun () -> census_checks ~heap ~iterations)) ();
      true)

let test_profiler_transparent () =
  let img = C.compile ~options:(compile_opts ~optimize:true ~heap:1500) destroy_small in
  let bare = C.run img in
  let p = C.profile_for img in
  let profiled = C.run ~profile:p img in
  check Alcotest.string "output identical" bare.C.output profiled.C.output;
  check Alcotest.int "instruction count identical" bare.C.instructions
    profiled.C.instructions;
  check Alcotest.int "allocation count identical" bare.C.allocations profiled.C.allocations;
  check Alcotest.int "collection count identical" bare.C.collections profiled.C.collections;
  (* The profiler's totals are exactly the machine's own counters. *)
  let total f = Array.fold_left (fun acc s -> acc + f s) 0 p.Profile.stats in
  check Alcotest.int "per-site allocs sum to the machine total" profiled.C.allocations
    (total (fun s -> s.Profile.st_allocs));
  check Alcotest.int "per-site words sum to the machine total" profiled.C.alloc_words
    (total (fun s -> s.Profile.st_alloc_words));
  (* And the emitted document is well-formed JSON carrying every site. *)
  let doc = T.Json.parse (T.Json.to_string (Profile.to_json p)) in
  check Alcotest.bool "schema present" true
    (T.Json.member "schema" doc = Some (T.Json.Str "mm-profile"));
  match Option.bind (T.Json.member "sites" doc) T.Json.to_list with
  | Some sites ->
      check Alcotest.int "one JSON entry per static site"
        (Array.length p.Profile.sites) (List.length sites)
  | None -> Alcotest.fail "no sites array in emitted profile"

let () =
  Alcotest.run "profile"
    [
      ( "attribution",
        [
          Alcotest.test_case "engine and collector agreement" `Quick
            (fresh test_engine_agreement);
          Alcotest.test_case "survival is deterministic" `Quick
            (fresh test_survival_deterministic);
          Alcotest.test_case "ballast outlives cons sites" `Quick
            (fresh test_ballast_ordering);
        ] );
      ( "census",
        [
          Alcotest.test_case "census matches verifier" `Quick
            (fresh test_census_matches_verifier);
          QCheck_alcotest.to_alcotest qcheck_census;
        ] );
      ( "transparency",
        [
          Alcotest.test_case "profiler does not perturb the run" `Quick
            (fresh test_profiler_transparent);
        ] );
    ]
