(* UVM semantics: arithmetic, control flow, machine errors, frame
   behaviour, instruction encoding. Exercised through compiled M3L. *)

let check = Alcotest.check

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0


let run ?(options = Driver.Compile.default_options) src =
  (Driver.Compile.run_source ~options src).Driver.Compile.output

let wrap body = Printf.sprintf "MODULE T;\n%s T.\n" body

let expect_output name src expected = check Alcotest.string name expected (run src)

let test_arith () =
  expect_output "add/sub/mul"
    (wrap "VAR x: INTEGER; BEGIN x := (2 + 3) * 4 - 5; PutInt(x) END")
    "15";
  (* Modula-3 DIV rounds toward minus infinity; MOD takes divisor's sign. *)
  expect_output "div floor"
    (wrap "VAR x: INTEGER; BEGIN PutInt((-7) DIV 2); PutChar(' '); PutInt(7 DIV 2) END")
    "-4 3";
  expect_output "mod sign"
    (wrap "VAR x: INTEGER; BEGIN PutInt((-7) MOD 2); PutChar(' '); PutInt(7 MOD 2) END")
    "1 1";
  expect_output "min/max/abs"
    (wrap "BEGIN PutInt(MIN(3, -4)); PutInt(MAX(3, -4)); PutInt(ABS(-9)) END")
    "-439";
  expect_output "ord/chr" (wrap "BEGIN PutInt(ORD('A')); PutChar(CHR(66)) END") "65B"

let test_control () =
  expect_output "if chain"
    (wrap
       "VAR x: INTEGER; BEGIN x := 7;\n\
        IF x < 5 THEN PutInt(1) ELSIF x < 10 THEN PutInt(2) ELSE PutInt(3) END END")
    "2";
  expect_output "while" (wrap "VAR i: INTEGER; BEGIN i := 0; WHILE i < 4 DO i := i + 1 END; PutInt(i) END") "4";
  expect_output "for by"
    (wrap "VAR i, s: INTEGER; BEGIN s := 0; FOR i := 10 TO 0 BY -2 DO s := s + i END; PutInt(s) END")
    "30";
  expect_output "for zero trips"
    (wrap "VAR i, s: INTEGER; BEGIN s := 0; FOR i := 5 TO 1 DO s := 99 END; PutInt(s) END")
    "0";
  expect_output "short circuit and"
    (wrap
       "TYPE L = REF INTEGER; VAR l: L; f: BOOLEAN;\n\
        BEGIN l := NIL; f := l # NIL AND l^ > 0; IF f THEN PutInt(1) ELSE PutInt(0) END END")
    "0";
  expect_output "short circuit or"
    (wrap
       "TYPE L = REF INTEGER; VAR l: L; f: BOOLEAN;\n\
        BEGIN l := NIL; f := l = NIL OR l^ > 0; IF f THEN PutInt(1) ELSE PutInt(0) END END")
    "1"

let test_procedures () =
  expect_output "recursion"
    (wrap
       "PROCEDURE Fib(n: INTEGER): INTEGER;\n\
        BEGIN IF n < 2 THEN RETURN n END; RETURN Fib(n-1) + Fib(n-2) END Fib;\n\
        BEGIN PutInt(Fib(15)) END")
    "610";
  expect_output "var params"
    (wrap
       "PROCEDURE Swap(VAR a, b: INTEGER);\n\
        VAR t: INTEGER; BEGIN t := a; a := b; b := t END Swap;\n\
        VAR x, y: INTEGER;\n\
        BEGIN x := 1; y := 2; Swap(x, y); PutInt(x); PutInt(y) END")
    "21";
  expect_output "many args"
    (wrap
       "PROCEDURE S(a, b, c, d, e, f, g, h: INTEGER): INTEGER;\n\
        BEGIN RETURN a + b + c + d + e + f + g + h END S;\n\
        BEGIN PutInt(S(1, 2, 3, 4, 5, 6, 7, 8)) END")
    "36"

let test_data () =
  expect_output "local fixed array"
    (wrap
       "VAR a: ARRAY [2..6] OF INTEGER; i, s: INTEGER;\n\
        BEGIN FOR i := 2 TO 6 DO a[i] := i END; s := 0;\n\
        FOR i := 2 TO 6 DO s := s + a[i] END; PutInt(s) END")
    "20";
  expect_output "records and refs"
    (wrap
       "TYPE R = RECORD x, y: INTEGER END; P = REF R;\n\
        VAR p: P; BEGIN p := NEW(P); p.x := 3; p.y := 4; PutInt(p.x * p.y) END")
    "12";
  expect_output "nested records"
    (wrap
       "TYPE Inner = RECORD a, b: INTEGER END;\n\
        Outer = RECORD pre: INTEGER; mid: Inner; post: INTEGER END;\n\
        P = REF Outer;\n\
        VAR p: P; BEGIN p := NEW(P); p.mid.b := 42; p.post := 1; PutInt(p.mid.b) END")
    "42";
  expect_output "open arrays"
    (wrap
       "TYPE V = REF ARRAY OF INTEGER; VAR v: V; i, s: INTEGER;\n\
        BEGIN v := NEW(V, 8); FOR i := 0 TO NUMBER(v) - 1 DO v[i] := i * i END;\n\
        s := 0; FOR i := 0 TO 7 DO s := s + v[i] END; PutInt(s) END")
    "140";
  expect_output "texts"
    (wrap "VAR t: TEXT; BEGIN t := \"hello\"; PutInt(NUMBER(t)); PutChar(t[1]) END")
    "5e"

let expect_guest_error name src fragment =
  match Driver.Compile.run_source src with
  | exception Vm.Interp.Guest_error msg ->
      check Alcotest.bool
        (name ^ ": message mentions " ^ fragment)
        true
        (contains ~needle:fragment msg)
  | _ -> Alcotest.failf "%s: expected a guest error" name

let test_runtime_errors () =
  expect_guest_error "nil deref"
    (wrap "TYPE P = REF INTEGER; VAR p: P; x: INTEGER; BEGIN p := NIL; x := p^ END")
    "NIL";
  expect_guest_error "bounds low"
    (wrap
       "VAR a: ARRAY [2..6] OF INTEGER; i: INTEGER; BEGIN i := 1; a[i] := 0 END")
    "range";
  expect_guest_error "bounds high open"
    (wrap
       "TYPE V = REF ARRAY OF INTEGER; VAR v: V; i: INTEGER;\n\
        BEGIN v := NEW(V, 3); i := 3; v[i] := 1 END")
    "range";
  (* Without checks, the same NIL dereference is a machine-level fault. *)
  let options = { Driver.Compile.default_options with checks = false } in
  match
    Driver.Compile.run_source ~options
      (wrap "TYPE P = REF INTEGER; VAR p: P; x: INTEGER; BEGIN p := NIL; x := p^ END")
  with
  | exception Vm.Vm_error.Error _ -> ()
  | r ->
      (* Reading M[1] happens to be silent; accept either a fault or a read
         of the reserved region. *)
      ignore r

let test_div_by_zero () =
  match
    Driver.Compile.run_source
      (wrap "VAR x, y: INTEGER; BEGIN y := 0; x := 4 DIV y; PutInt(x) END")
  with
  | exception Vm.Vm_error.Error e ->
      check Alcotest.bool "mentions zero" true
        (contains ~needle:"zero" (Vm.Vm_error.to_string e))
  | _ -> Alcotest.fail "expected division fault"

let test_stack_overflow () =
  let src =
    wrap
      "PROCEDURE Loop(n: INTEGER): INTEGER; BEGIN RETURN Loop(n + 1) END Loop;\n\
       BEGIN PutInt(Loop(0)) END"
  in
  match
    Driver.Compile.run_source
      ~options:{ Driver.Compile.default_options with stack_words = 2000 }
      src
  with
  | exception Vm.Vm_error.Error e ->
      check Alcotest.bool "stack overflow" true
        (contains ~needle:"stack" (Vm.Vm_error.to_string e))
  | _ -> Alcotest.fail "expected stack overflow"

let test_heap_exhaustion () =
  let src =
    wrap
      "TYPE Node = RECORD v: INTEGER; n: L END; L = REF Node;\n\
       VAR l, keep: L; i: INTEGER;\n\
       BEGIN keep := NIL;\n\
       FOR i := 1 TO 1000 DO l := NEW(L); l.n := keep; keep := l END END"
  in
  match
    Driver.Compile.run_source
      ~options:{ Driver.Compile.default_options with heap_words = 100 }
      ~heap_grow:false (* exhaustion is the point; don't let MM_HEAP_GROW save it *)
      src
  with
  | exception Vm.Vm_error.Error e ->
      check Alcotest.bool "heap exhausted" true
        (contains ~needle:"heap" (Vm.Vm_error.to_string e))
  | _ -> Alcotest.fail "expected heap exhaustion (everything is live)"

let test_fuel () =
  let src = wrap "VAR x: INTEGER; BEGIN x := 0; WHILE TRUE DO x := x + 1 END END" in
  match Driver.Compile.run_source ~fuel:10_000 src with
  | exception Vm.Vm_error.Error _ -> ()
  | _ -> Alcotest.fail "expected out-of-fuel"

(* Regression: [Interp.reset] must clear buffered guest output — a reused
   machine used to replay the previous run's text in front of its own. *)
let test_reset_clears_output () =
  let img = Driver.Compile.compile (wrap "BEGIN PutInt(7) END") in
  let st = Vm.Interp.create img in
  Vm.Interp.run st;
  check Alcotest.string "first run" "7" (Vm.Interp.output st);
  Vm.Interp.reset st;
  Vm.Interp.run st;
  check Alcotest.string "output does not accumulate across reset" "7"
    (Vm.Interp.output st)

(* ------------------------------------------------------------------ *)
(* Instruction encoding model                                          *)
(* ------------------------------------------------------------------ *)

let test_insn_sizes () =
  let open Machine in
  check Alcotest.int "mov r,r" 3 (Encode_insn.bytes (Insn.Mov (Insn.Reg 1, Insn.Reg 2)));
  check Alcotest.bool "mem disp grows" true
    (Encode_insn.bytes (Insn.Mov (Insn.Reg 1, Insn.Mem (2, 1000)))
    > Encode_insn.bytes (Insn.Mov (Insn.Reg 1, Insn.Mem (2, 1))));
  let code = [| Insn.Jmp 0; Insn.Leave; Insn.Ret 2 |] in
  let offs = Encode_insn.offsets code in
  check Alcotest.int "offsets length" 4 (Array.length offs);
  check Alcotest.int "total" (Encode_insn.code_bytes code) offs.(3);
  (* Offsets strictly increase: every instruction has positive size. *)
  for i = 0 to 2 do
    check Alcotest.bool "monotonic" true (offs.(i + 1) > offs.(i))
  done

let test_image_layout () =
  let img =
    Driver.Compile.compile
      (wrap "VAR g: INTEGER; t: TEXT; BEGIN g := 1; t := \"ab\" END")
  in
  let open Vm.Image in
  (* Heap last, so the store can be extended in place without moving any
     existing address (statics and stack keep their positions). *)
  check Alcotest.bool "globals below stack below heap" true
    (img.globals_base < img.stack_base && img.stack_base < img.heap_base);
  check Alcotest.bool "stack + two semispaces" true
    (img.stack_top = img.stack_base + 16384
    && img.heap_base >= img.stack_top
    && img.total_words = img.heap_base + (2 * img.semi_words));
  (* The text literal is installed with a header and its two chars. *)
  check Alcotest.int "one text" 1 (Array.length img.text_addrs);
  let addr = img.text_addrs.(0) in
  check Alcotest.bool "text words present" true
    (List.mem_assoc (addr + 1) img.static_init
    && List.assoc (addr + 1) img.static_init = 2)

let () =
  Alcotest.run "vm"
    [
      ( "semantics",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "control flow" `Quick test_control;
          Alcotest.test_case "procedures" `Quick test_procedures;
          Alcotest.test_case "data structures" `Quick test_data;
        ] );
      ( "faults",
        [
          Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
          Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "reset clears output" `Quick test_reset_clears_output;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "insn sizes" `Quick test_insn_sizes;
          Alcotest.test_case "image layout" `Quick test_image_layout;
        ] );
    ]
