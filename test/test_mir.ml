(* Lowering, kinds/derivations, liveness (dead-base rule), CFG utilities. *)

module Ir = Mir.Ir

let check = Alcotest.check

let lower ?(checks = false) src = Mir.Lower.program ~checks (M3l.Typecheck.check_source src)

let func_named (p : Ir.program) name =
  match Array.find_opt (fun (f : Ir.func) -> f.Ir.fname = name) p.Ir.funcs with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

let all_instrs (f : Ir.func) =
  Array.to_list f.Ir.blocks |> List.concat_map (fun (b : Ir.block) -> b.Ir.instrs)

(* ------------------------------------------------------------------ *)
(* Kinds and derivations out of lowering                               *)
(* ------------------------------------------------------------------ *)

let test_ptr_kinds () =
  let p =
    lower
      "MODULE T; TYPE L = REF INTEGER; VAR g: L; x: INTEGER;\n\
       BEGIN g := NEW(L); x := g^ END T."
  in
  let main = p.Ir.funcs.(p.Ir.main_fid) in
  (* The NEW result temp must be a tidy pointer. *)
  let has_ptr_call =
    List.exists
      (fun i ->
        match i with
        | Ir.Call (Some t, Ir.Crt (Ir.Rt_alloc _), _) -> Ir.temp_kind main t = Ir.Kptr
        | _ -> false)
      (all_instrs main)
  in
  check Alcotest.bool "alloc result is Kptr" true has_ptr_call

let test_field_addr_derived () =
  (* The address of a heap record field used as a VAR argument must be a
     derived value whose base is visible. *)
  let p =
    lower
      "MODULE T;\n\
       TYPE R = RECORD a, b: INTEGER END; P = REF R;\n\
       VAR g: P;\n\
       PROCEDURE Take(VAR x: INTEGER); BEGIN x := 1 END Take;\n\
       BEGIN g := NEW(P); Take(g.b) END T."
  in
  let main = p.Ir.funcs.(p.Ir.main_fid) in
  let derived_args =
    List.exists
      (fun i ->
        match i with
        | Ir.Call (_, Ir.Cuser _, args) ->
            List.exists
              (function
                | Ir.Otemp t -> (
                    match Ir.temp_kind main t with Ir.Kderived _ -> true | _ -> false)
                | Ir.Oimm _ -> false)
              args
        | _ -> false)
      (all_instrs main)
  in
  check Alcotest.bool "VAR arg into heap is derived" true derived_args

let test_stack_addr_not_derived () =
  (* The address of a local passed by VAR is a stack address: no tables. *)
  let p =
    lower
      "MODULE T;\n\
       PROCEDURE Take(VAR x: INTEGER); BEGIN x := 1 END Take;\n\
       VAR v: INTEGER;\n\
       PROCEDURE Go(); VAR loc: INTEGER; BEGIN Take(loc) END Go;\n\
       BEGIN Go() END T."
  in
  let go = func_named p "Go" in
  let ok =
    List.for_all
      (fun i ->
        match i with
        | Ir.Call (_, Ir.Cuser _, args) ->
            List.for_all
              (function
                | Ir.Otemp t -> Ir.temp_kind go t = Ir.Kstack
                | Ir.Oimm _ -> true)
              args
        | _ -> true)
      (all_instrs go)
  in
  check Alcotest.bool "local VAR arg is Kstack" true ok

let test_with_alias_slot () =
  let p =
    lower
      "MODULE T;\n\
       TYPE R = RECORD a: INTEGER END; P = REF R;\n\
       VAR g: P;\n\
       BEGIN g := NEW(P); WITH x = g.a DO x := 2 END END T."
  in
  let main = p.Ir.funcs.(p.Ir.main_fid) in
  let has_derived_slot =
    Array.exists
      (fun (li : Ir.local_info) ->
        match li.Ir.l_slot with Ir.Sderived _ -> true | _ -> false)
      main.Ir.locals
  in
  check Alcotest.bool "WITH alias over heap place is a derived slot" true has_derived_slot

let test_mutated_param_shadowed () =
  let p =
    lower
      "MODULE T;\n\
       PROCEDURE F(x: INTEGER): INTEGER; BEGIN x := x + 1; RETURN x END F;\n\
       VAR r: INTEGER; BEGIN r := F(1) END T."
  in
  let f = func_named p "F" in
  let has_shadow =
    Array.exists (fun (li : Ir.local_info) -> li.Ir.l_name = "x$shadow") f.Ir.locals
  in
  check Alcotest.bool "mutated by-value param gets a shadow local" true has_shadow;
  (* And the incoming parameter slot itself is never stored to. *)
  let param_stored =
    List.exists
      (fun i -> match i with Ir.St_local (0, _, _) -> true | _ -> false)
      (all_instrs f)
  in
  check Alcotest.bool "incoming param slot is read-only" false param_stored

let test_checks_emit_guards () =
  let count_rt rc p =
    Array.fold_left
      (fun acc (f : Ir.func) ->
        acc
        + List.length
            (List.filter
               (fun i -> match i with Ir.Call (_, Ir.Crt r, _) -> r = rc | _ -> false)
               (all_instrs f)))
      0 p.Ir.funcs
  in
  let src =
    "MODULE T; TYPE V = REF ARRAY OF INTEGER; VAR v: V; x: INTEGER;\n\
     BEGIN v := NEW(V, 5); x := v[3] END T."
  in
  let with_checks = lower ~checks:true src in
  let without = lower ~checks:false src in
  check Alcotest.bool "bounds guard present with checks" true
    (count_rt Ir.Rt_bounds_error with_checks > 0);
  check Alcotest.int "no guards without checks" 0 (count_rt Ir.Rt_bounds_error without);
  check Alcotest.int "no nil guards without checks" 0 (count_rt Ir.Rt_nil_error without)

(* ------------------------------------------------------------------ *)
(* Liveness: the dead-base rule                                        *)
(* ------------------------------------------------------------------ *)

let test_dead_base_rule () =
  (* Build a tiny function by hand: t0 := ptr; t1 := t0 + 8 (derived);
     call; use t1. The base t0 must be live at the call even though its
     last textual use is before it. *)
  let f : Ir.func =
    {
      Ir.fid = 0;
      fname = "h";
      params = [];
      nparams = 0;
      ret = false;
      ret_ptr = false;
      locals =
        [|
          {
            Ir.l_name = "p";
            l_size = 1;
            l_slot = Ir.Sptr;
            l_user = true;
            l_addr_taken = false;
            l_stores = 0;
          };
        |];
      blocks =
        [|
          {
            Ir.instrs =
              [
                Ir.Ld_local (0, 0, 0);
                Ir.Bin (Ir.Add, 1, Ir.Otemp 0, Ir.Oimm 8);
                Ir.Call (None, Ir.Crt Ir.Rt_gc_check, []);
                Ir.Store (Ir.Otemp 1, 0, Ir.Oimm 5);
              ];
            term = Ir.Ret None;
          };
        |];
      temp_kinds =
        [| Ir.Kptr; Ir.Kderived { Mir.Deriv.plus = [ Mir.Deriv.Btemp 0 ]; minus = [] } |];
      ntemps = 2;
    }
  in
  let liv = Mir.Liveness.compute f in
  let live_t, _ = Mir.Liveness.live_at_gcpoint liv 0 2 in
  check Alcotest.bool "derived temp live at call" true (Support.Bitset.mem live_t 1);
  check Alcotest.bool "base temp live at call (dead-base rule)" true
    (Support.Bitset.mem live_t 0)

let test_liveness_kill () =
  (* A scalar temp dead after its last use is not live at a later call. *)
  let f : Ir.func =
    {
      Ir.fid = 0;
      fname = "h";
      params = [];
      nparams = 0;
      ret = false;
      ret_ptr = false;
      locals = [||];
      blocks =
        [|
          {
            Ir.instrs =
              [
                Ir.Mov (0, Ir.Oimm 1);
                Ir.Mov (1, Ir.Otemp 0);
                Ir.Call (None, Ir.Crt Ir.Rt_gc_check, []);
              ];
            term = Ir.Ret None;
          };
        |];
      temp_kinds = [| Ir.Kscalar; Ir.Kscalar |];
      ntemps = 2;
    }
  in
  let liv = Mir.Liveness.compute f in
  let live_t, _ = Mir.Liveness.live_at_gcpoint liv 0 2 in
  check Alcotest.bool "dead scalar not live" false (Support.Bitset.mem live_t 0)

(* ------------------------------------------------------------------ *)
(* CFG utilities                                                       *)
(* ------------------------------------------------------------------ *)

let test_natural_loops () =
  let p =
    lower
      "MODULE T; VAR i, s: INTEGER; BEGIN\n\
       i := 0; WHILE i < 10 DO s := s + i; i := i + 1 END END T."
  in
  let main = p.Ir.funcs.(p.Ir.main_fid) in
  let loops = Mir.Cfg.natural_loops main in
  check Alcotest.int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check Alcotest.bool "header in body" true (Support.Ints.Iset.mem l.Mir.Cfg.header l.Mir.Cfg.body)

let test_dominators () =
  let p =
    lower
      "MODULE T; VAR x: INTEGER; BEGIN\n\
       IF x > 0 THEN x := 1 ELSE x := 2 END; x := 3 END T."
  in
  let main = p.Ir.funcs.(p.Ir.main_fid) in
  let idom = Mir.Cfg.dominators main in
  (* Entry dominates every reachable block. *)
  Array.iteri
    (fun b _ ->
      if idom.(b) <> -1 then
        check Alcotest.bool (Printf.sprintf "entry dom %d" b) true
          (Mir.Cfg.dominates idom 0 b))
    main.Ir.blocks

let test_preheader () =
  let p =
    lower
      "MODULE T; VAR i: INTEGER; BEGIN i := 0; WHILE i < 5 DO i := i + 1 END END T."
  in
  let main = p.Ir.funcs.(p.Ir.main_fid) in
  let nb_before = Array.length main.Ir.blocks in
  let l = List.hd (Mir.Cfg.natural_loops main) in
  let ph = Mir.Cfg.insert_preheader main l in
  check Alcotest.int "one new block" (nb_before + 1) (Array.length main.Ir.blocks);
  (* The preheader jumps to the header, and no block outside the loop jumps
     directly to the header anymore. *)
  check Alcotest.bool "preheader jumps to header" true
    (main.Ir.blocks.(ph).Ir.term = Ir.Jmp l.Mir.Cfg.header);
  Array.iteri
    (fun b (blk : Ir.block) ->
      if b <> ph && not (Support.Ints.Iset.mem b l.Mir.Cfg.body) then
        List.iter
          (fun s ->
            check Alcotest.bool "no outside edge to header" false (s = l.Mir.Cfg.header))
          (Ir.term_succs blk.Ir.term))
    main.Ir.blocks

let test_deriv_algebra () =
  let open Mir.Deriv in
  let a = of_base (Btemp 1) in
  let b = of_base (Btemp 2) in
  let s = add a b in
  check Alcotest.int "two plus bases" 2 (List.length s.plus);
  let d = sub s b in
  check Alcotest.bool "b cancels" true (equal d a);
  let n = neg a in
  check Alcotest.bool "neg swaps" true (n.minus = [ Btemp 1 ] && n.plus = []);
  check Alcotest.bool "empty normal form" true (is_empty (sub a a))

let () =
  Alcotest.run "mir"
    [
      ( "lowering",
        [
          Alcotest.test_case "pointer kinds" `Quick test_ptr_kinds;
          Alcotest.test_case "heap field addr derived" `Quick test_field_addr_derived;
          Alcotest.test_case "stack addr untracked" `Quick test_stack_addr_not_derived;
          Alcotest.test_case "WITH alias derived slot" `Quick test_with_alias_slot;
          Alcotest.test_case "param shadowing" `Quick test_mutated_param_shadowed;
          Alcotest.test_case "checks emit guards" `Quick test_checks_emit_guards;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "dead-base rule" `Quick test_dead_base_rule;
          Alcotest.test_case "kill" `Quick test_liveness_kill;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "natural loops" `Quick test_natural_loops;
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "preheader" `Quick test_preheader;
          Alcotest.test_case "derivation algebra" `Quick test_deriv_algebra;
        ] );
    ]
