(* Telemetry layer tests: metric arithmetic, span nesting invariants,
   Chrome-trace JSON well-formedness, and a driver-level end-to-end check
   that a collecting run reports all four pause phases with balanced
   derived-value work. *)

module T = Telemetry

let check = Alcotest.check

(* Every test starts from a clean, enabled telemetry state and leaves the
   layer disabled (the other suites in this binary assume it off). *)
let fresh f () =
  T.Metrics.reset ();
  T.Trace.clear ();
  T.Timer.clear ();
  T.Log.reset_once ();
  T.Control.enable ();
  Fun.protect ~finally:T.Control.disable f

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let c = T.Metrics.counter "test.counter" in
  T.Metrics.incr c;
  T.Metrics.incr ~by:41 c;
  check Alcotest.int "counter accumulates" 42 (T.Metrics.value c);
  check Alcotest.int "lookup by name" 42 (T.Metrics.counter_value "test.counter");
  (* The same name returns the same handle. *)
  T.Metrics.incr (T.Metrics.counter "test.counter");
  check Alcotest.int "single registry entry" 43 (T.Metrics.value c);
  (* Disabled increments are dropped. *)
  T.Control.disable ();
  T.Metrics.incr ~by:100 c;
  T.Control.enable ();
  check Alcotest.int "disabled incr is a no-op" 43 (T.Metrics.value c);
  (* Reset zeroes but keeps the handle valid. *)
  T.Metrics.reset ();
  check Alcotest.int "reset zeroes" 0 (T.Metrics.value c);
  T.Metrics.incr c;
  check Alcotest.int "handle survives reset" 1 (T.Metrics.value c)

let test_gauges () =
  let g = T.Metrics.gauge "test.gauge" in
  T.Metrics.set g 2.5;
  check (Alcotest.float 1e-9) "gauge set" 2.5 (T.Metrics.gauge_value "test.gauge");
  T.Metrics.set g 1.0;
  check (Alcotest.float 1e-9) "gauge overwrites" 1.0 (T.Metrics.gauge_value "test.gauge")

let test_histograms () =
  let h = T.Metrics.histogram "test.hist" in
  List.iter (fun v -> T.Metrics.observe h v) [ 4.0; 1.0; 7.0; 2.0 ];
  check Alcotest.int "count" 4 h.T.Metrics.h_count;
  check (Alcotest.float 1e-9) "sum" 14.0 h.T.Metrics.h_sum;
  check (Alcotest.float 1e-9) "min" 1.0 h.T.Metrics.h_min;
  check (Alcotest.float 1e-9) "max" 7.0 h.T.Metrics.h_max;
  check (Alcotest.float 1e-9) "mean" 3.5 (T.Metrics.mean h);
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "samples retained in order" [ 4.0; 1.0; 7.0; 2.0 ]
    (Array.to_list (T.Metrics.samples h));
  T.Metrics.reset ();
  check Alcotest.int "reset clears samples" 0 (Array.length (T.Metrics.samples h))

let test_reservoir () =
  let h = T.Metrics.histogram "test.reservoir" in
  let n = 100_000 in
  for i = 0 to n - 1 do
    T.Metrics.observe h (float_of_int i)
  done;
  check Alcotest.int "count keeps the full stream" n h.T.Metrics.h_count;
  let s = T.Metrics.samples h in
  check Alcotest.int "reservoir capped" 65536 (Array.length s);
  (* Algorithm R keeps late arrivals: a ramp must retain samples past the
     cap, where a head-truncating cap would keep only the first 65536. *)
  check Alcotest.bool "late samples retained" true
    (Array.exists (fun v -> v >= 65536.0) s);
  (* And the retained set is roughly unbiased: the mean of a uniform
     subsample of a 0..n ramp sits near n/2, not near cap/2. *)
  let mean = Array.fold_left ( +. ) 0.0 s /. float_of_int (Array.length s) in
  check Alcotest.bool "sample mean near stream mean" true
    (mean > 0.4 *. float_of_int n && mean < 0.6 *. float_of_int n);
  (* Equal-length streams replace identical indices (shared deterministic
     seed), so parallel per-event histograms stay row-aligned past the cap. *)
  let h2 = T.Metrics.histogram "test.reservoir2" in
  for i = 0 to n - 1 do
    T.Metrics.observe h2 (float_of_int i)
  done;
  check Alcotest.bool "parallel histograms stay aligned" true
    (T.Metrics.samples h = T.Metrics.samples h2)

let test_percentiles () =
  let h = T.Metrics.histogram "test.pct" in
  for i = 1 to 1000 do
    T.Metrics.observe h (float_of_int i)
  done;
  (* Bucket quantiles overestimate by at most one sub-bucket (25% relative
     error at 4 sub-buckets per octave), clamped to the observed range. *)
  let p50 = T.Metrics.percentile h 0.50 in
  check Alcotest.bool "p50 within bucket error" true (p50 >= 500.0 && p50 <= 625.0);
  let p90 = T.Metrics.percentile h 0.90 in
  check Alcotest.bool "p90 within bucket error" true (p90 >= 900.0 && p90 <= 1125.0);
  check (Alcotest.float 1e-9) "p100 is exactly the max" 1000.0
    (T.Metrics.percentile h 1.0);
  let buckets = T.Metrics.nonzero_buckets h in
  check Alcotest.int "bucket counts sum to count" h.T.Metrics.h_count
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets);
  check Alcotest.bool "buckets are ordered and disjoint" true
    (fst
       (List.fold_left
          (fun (ok, prev) (lo, hi, _) -> (ok && lo >= prev && hi > lo, hi))
          (true, 0.0) buckets));
  let e = T.Metrics.histogram "test.pct.empty" in
  check (Alcotest.float 1e-9) "empty histogram percentile" 0.0
    (T.Metrics.percentile e 0.5)

(* ------------------------------------------------------------------ *)
(* Trace: nesting invariants                                           *)
(* ------------------------------------------------------------------ *)

(* Fold over the recorded stream checking that every End closes the most
   recent open Begin; returns the maximum depth seen. *)
let check_balance events =
  let max_depth = ref 0 in
  let final =
    List.fold_left
      (fun stack (ev : T.Trace.event) ->
        match ev.T.Trace.ph with
        | T.Trace.B ->
            let stack = ev.T.Trace.name :: stack in
            max_depth := max !max_depth (List.length stack);
            stack
        | T.Trace.E -> (
            match stack with
            | top :: rest ->
                check Alcotest.string "end closes innermost begin" top ev.T.Trace.name;
                rest
            | [] -> Alcotest.fail "end event with no open span")
        | T.Trace.I -> stack)
      [] events
  in
  check Alcotest.int "all spans closed" 0 (List.length final);
  !max_depth

let test_span_nesting () =
  T.Trace.span "outer" (fun () ->
      T.Trace.span "inner1" (fun () -> ());
      T.Trace.span "inner2" (fun () -> T.Trace.instant "tick"));
  let max_depth = check_balance (T.Trace.recorded ()) in
  check Alcotest.int "nesting depth" 2 max_depth;
  check Alcotest.int "nothing left open" 0 (T.Trace.depth ());
  (* 3 begins + 3 ends + 1 instant *)
  check Alcotest.int "event count" 7 (List.length (T.Trace.recorded ()))

let test_span_exception_safety () =
  (try T.Trace.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  check Alcotest.int "span closed on exception" 0 (T.Trace.depth ());
  ignore (check_balance (T.Trace.recorded ()))

let test_unmatched_end_ignored () =
  T.Trace.end_span ();
  check Alcotest.int "stray end recorded nothing" 0 (List.length (T.Trace.recorded ()));
  T.Trace.begin_span "a";
  T.Trace.end_span ();
  T.Trace.end_span ();
  ignore (check_balance (T.Trace.recorded ()))

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                 *)
(* ------------------------------------------------------------------ *)

let get_exn = function Some v -> v | None -> Alcotest.fail "missing JSON member"

let test_chrome_json_well_formed () =
  T.Trace.span ~cat:"t" "outer" (fun () ->
      T.Trace.span ~cat:"t" "inner \"quoted\"\n" (fun () -> ()));
  T.Trace.begin_span "left-open";
  let s = T.Trace.to_chrome_string () in
  T.Trace.end_span ();
  let j = T.Json.parse s in
  let events = get_exn (T.Json.to_list (get_exn (T.Json.member "traceEvents" j))) in
  (* B and E counts balance even though a span was open at export time. *)
  let count ph =
    List.length
      (List.filter
         (fun e -> T.Json.member "ph" e = Some (T.Json.Str ph))
         events)
  in
  check Alcotest.int "B/E balanced" (count "B") (count "E");
  check Alcotest.bool "has metadata event" true (count "M" >= 1);
  (* Timestamps are non-decreasing within the stream. *)
  let ts =
    List.filter_map
      (fun e ->
        match T.Json.member "ts" e with
        | Some (T.Json.Float f) -> Some f
        | Some (T.Json.Int i) -> Some (float_of_int i)
        | _ -> None)
      events
  in
  check Alcotest.bool "timestamps monotonic" true
    (fst
       (List.fold_left (fun (ok, prev) t -> (ok && t >= prev, t)) (true, neg_infinity) ts))

let test_json_roundtrip () =
  let v =
    T.Json.Obj
      [
        ("s", T.Json.Str "a\"b\\c\nd\te\r\x01");
        ("i", T.Json.Int (-42));
        ("f", T.Json.Float 1.5);
        ("l", T.Json.List [ T.Json.Null; T.Json.Bool true; T.Json.Bool false ]);
        ("o", T.Json.Obj [ ("nested", T.Json.Int 1) ]);
        ("e", T.Json.List []);
        ("eo", T.Json.Obj []);
      ]
  in
  check Alcotest.bool "roundtrip" true (T.Json.parse (T.Json.to_string v) = v);
  List.iter
    (fun bad ->
      match T.Json.parse bad with
      | exception T.Json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed input " ^ bad))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Timer                                                               *)
(* ------------------------------------------------------------------ *)

let test_timer () =
  ignore (T.Timer.time "t.pass" (fun () -> 1 + 1));
  ignore (T.Timer.time "t.pass" (fun () -> ()));
  ignore (T.Timer.time "t.other" (fun () -> ()));
  (match T.Timer.entries () with
  | [ ("t.pass", 2, _); ("t.other", 1, _) ] -> ()
  | e ->
      Alcotest.fail
        (Printf.sprintf "unexpected timer entries (%d)" (List.length e)));
  check Alcotest.bool "timer spans recorded in trace" true
    (List.exists
       (fun (ev : T.Trace.event) -> ev.T.Trace.name = "t.pass")
       (T.Trace.recorded ()))

(* ------------------------------------------------------------------ *)
(* Driver-level: a collecting run reports all four pause phases         *)
(* ------------------------------------------------------------------ *)

let test_end_to_end_gc_phases () =
  (* Optimized ambig under heap pressure: collections with live derived
     values, so every phase of the pause does real work. This test is
     about the moving collector's four pause phases, so it pins the
     stop-the-world compactor even when MM_GC_INCREMENTAL is exported
     (the incremental collector's phase structure — slices and flips —
     has its own accounting, checked in test_incremental). *)
  let inc0 = Option.value ~default:"" (Sys.getenv_opt "MM_GC_INCREMENTAL") in
  Unix.putenv "MM_GC_INCREMENTAL" "";
  Fun.protect ~finally:(fun () -> Unix.putenv "MM_GC_INCREMENTAL" inc0)
  @@ fun () ->
  let options =
    { Driver.Compile.default_options with optimize = true; heap_words = 300 }
  in
  let r =
    Driver.Compile.run_source ~options
      ~heap_grow:false (* the small heap must collect, not grow *)
      Programs.Ambig_src.src
  in
  check Alcotest.bool "at least one collection" true (r.Driver.Compile.collections >= 1);
  let n = T.Metrics.counter_value "gc.collections" in
  check Alcotest.int "metrics agree with run result" r.Driver.Compile.collections n;
  List.iter
    (fun phase ->
      let h = T.Metrics.histogram phase in
      check Alcotest.int
        (phase ^ " observed once per collection")
        n h.T.Metrics.h_count)
    [ "gc.pause_ns"; "gc.stackwalk_ns"; "gc.underive_ns"; "gc.copy_ns"; "gc.rederive_ns" ];
  let under = T.Metrics.counter_value "derived.underived" in
  let reder = T.Metrics.counter_value "derived.rederived" in
  check Alcotest.bool "derived values were live at some gc" true (under > 0);
  check Alcotest.int "un-derive count equals re-derive count" under reder;
  (* The trace contains the four phases properly nested inside gc.collect. *)
  ignore (check_balance (T.Trace.recorded ()));
  let begins =
    List.filter_map
      (fun (ev : T.Trace.event) ->
        if ev.T.Trace.ph = T.Trace.B then Some ev.T.Trace.name else None)
      (T.Trace.recorded ())
  in
  List.iter
    (fun phase ->
      check Alcotest.bool ("trace has " ^ phase) true (List.mem phase begins))
    [ "gc.collect"; "gc.stackwalk"; "gc.underive"; "gc.copy"; "gc.rederive" ];
  (* And the export of that real trace parses back. *)
  let j = T.Json.parse (T.Trace.to_chrome_string ()) in
  check Alcotest.bool "export parses" true (T.Json.member "traceEvents" j <> None)

let test_gc_unsafe_warning () =
  let captured = ref [] in
  T.Log.sink := Some (fun level msg -> captured := (level, msg) :: !captured);
  let saved = !T.Log.verbosity in
  T.Log.verbosity := T.Log.Error (* keep stderr quiet during the test *);
  Fun.protect
    ~finally:(fun () ->
      T.Log.sink := None;
      T.Log.verbosity := saved)
    (fun () ->
      let options =
        { Driver.Compile.default_options with gc_restrict = false; heap_words = 4096 }
      in
      let r = Driver.Compile.run_source ~options Programs.Typereg_src.src in
      check Alcotest.bool "program still runs" true
        (String.length r.Driver.Compile.output > 0);
      check Alcotest.bool "warning emitted for gc-unsafe execution" true
        (List.exists (fun (l, _) -> l = T.Log.Warn) !captured);
      (* warn_once: a second run does not warn again. *)
      let before = List.length !captured in
      ignore (Driver.Compile.run_source ~options Programs.Typereg_src.src);
      check Alcotest.int "warning deduplicated" before (List.length !captured))

let test_disabled_is_inert () =
  T.Control.disable ();
  T.Trace.span "nope" (fun () -> ());
  T.Metrics.add "test.disabled" 5;
  ignore (T.Timer.time "nope.pass" (fun () -> ()));
  check Alcotest.int "no events recorded" 0 (List.length (T.Trace.recorded ()));
  check Alcotest.int "no counter movement" 0 (T.Metrics.counter_value "test.disabled");
  check Alcotest.bool "no timer entries" true (T.Timer.entries () = []);
  T.Control.enable ()

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick (fresh test_counters);
          Alcotest.test_case "gauges" `Quick (fresh test_gauges);
          Alcotest.test_case "histograms" `Quick (fresh test_histograms);
          Alcotest.test_case "reservoir sampling" `Quick (fresh test_reservoir);
          Alcotest.test_case "bucket percentiles" `Quick (fresh test_percentiles);
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick (fresh test_span_nesting);
          Alcotest.test_case "exception safety" `Quick (fresh test_span_exception_safety);
          Alcotest.test_case "unmatched end" `Quick (fresh test_unmatched_end_ignored);
          Alcotest.test_case "chrome json" `Quick (fresh test_chrome_json_well_formed);
          Alcotest.test_case "json roundtrip" `Quick (fresh test_json_roundtrip);
        ] );
      ( "timer",
        [ Alcotest.test_case "aggregation" `Quick (fresh test_timer) ] );
      ( "end-to-end",
        [
          Alcotest.test_case "gc phases" `Quick (fresh test_end_to_end_gc_phases);
          Alcotest.test_case "gc-unsafe warning" `Quick (fresh test_gc_unsafe_warning);
          Alcotest.test_case "disabled is inert" `Quick (fresh test_disabled_is_inert);
        ] );
    ]
