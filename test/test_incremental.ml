(* Incremental-collector equivalence suite: the tri-color sliced
   collector must be observationally identical to the stop-the-world
   collectors — same program output, same instruction count (slices
   execute no guest instructions) — across both execution engines and
   both optimization levels, with the heap verifier (including its
   tri-color check) armed at every slice boundary. Because the default
   work-quota pacing is a pure function of the allocation stream, the two
   engines must additionally agree on the byte-identical final heap image
   and collection count. A qcheck property then drives random programs
   under random slice schedules (work quotas, triggers, storms, starved
   mark stacks) against the STW reference, and the fault-injection
   interleaving sweep must come back clean. *)

module D = Driver.Compile
module I = Vm.Interp
module F = Fault.Faultinject

let fuel = 50_000_000

let churn_src ~iters ~period =
  Printf.sprintf
    "MODULE Churn;\n\
     TYPE Node = RECORD v: INTEGER; n: List END; List = REF Node;\n\
     VAR head, keep: List; i, k, s: INTEGER;\n\n\
     PROCEDURE Push(v: INTEGER);\n\
     VAR c: List;\n\
     BEGIN c := NEW(List); c.v := v; c.n := head; head := c END Push;\n\n\
     BEGIN\n\
     \  k := 0;\n\
     \  FOR i := 1 TO %d DO\n\
     \    Push(i);\n\
     \    k := k + 1;\n\
     \    IF k > %d THEN\n\
     \      keep := head; head := NIL; k := 0\n\
     \    ELSE\n\
     \      s := s + 0\n\
     \    END\n\
     \  END;\n\
     \  s := 0;\n\
     \  WHILE keep # NIL DO s := s + keep.v; keep := keep.n END;\n\
     \  PutInt(s); PutLn()\n\
     END Churn.\n"
    iters (period - 1)

type cell = {
  out : string;
  icount : int;
  collections : int;
  mem : Vm.Mem.t;
  stats : Gc.Incremental.stats option;
}

type mode =
  | Stw
  | Inc of {
      slice_work : int option;
      trigger_words : int option;
      gray_cap : int option;
      slice_storm : bool;
      barrier_storm : bool;
      pause_budget_us : int option;
    }

let inc_default =
  Inc
    {
      slice_work = None;
      trigger_words = None;
      gray_cap = None;
      slice_storm = false;
      barrier_storm = false;
      pause_budget_us = None;
    }

let run_cell ~mode ~threaded ~optimize ~heap src : cell =
  let options = { D.default_options with optimize; heap_words = heap } in
  let img = D.compile ~options src in
  let st = I.create img in
  (match mode with
  | Stw -> Gc.Cheney.install st
  | Inc { slice_work; trigger_words; gray_cap; slice_storm; barrier_storm; pause_budget_us }
    ->
      ignore
        (Gc.Incremental.install ?slice_work ?trigger_words ?gray_cap
           ?pause_budget_us ~slice_storm ~barrier_storm st));
  let e0 = Vm.Threaded.enabled () in
  Vm.Threaded.set_enabled threaded;
  Fun.protect
    ~finally:(fun () -> Vm.Threaded.set_enabled e0)
    (fun () -> if threaded then Vm.Threaded.run ~fuel st else I.run ~fuel st);
  {
    out = I.output st;
    icount = st.I.icount;
    collections = st.I.gc.I.collections;
    mem = st.I.mem;
    stats = Gc.Incremental.stats st;
  }

let with_post_verifier f =
  let post0 = Gc.Verify.post_enabled () in
  Gc.Verify.set_post true;
  Fun.protect ~finally:(fun () -> Gc.Verify.set_post post0) f

(* ------------------------------------------------------------------ *)
(* Differential matrix                                                 *)
(* ------------------------------------------------------------------ *)

let test_matrix () =
  with_post_verifier @@ fun () ->
  let src = churn_src ~iters:20000 ~period:64 in
  List.iter
    (fun optimize ->
      let tag b = Printf.sprintf "%s/O%d" (if b then "threaded" else "switch")
          (if optimize then 1 else 0)
      in
      let reference = run_cell ~mode:Stw ~threaded:false ~optimize ~heap:16384 src in
      let cells =
        List.map
          (fun threaded ->
            (threaded, run_cell ~mode:inc_default ~threaded ~optimize ~heap:16384 src))
          [ false; true ]
      in
      List.iter
        (fun (threaded, c) ->
          if c.out <> reference.out then
            Alcotest.failf "%s: output diverged from STW" (tag threaded);
          if c.icount <> reference.icount then
            Alcotest.failf "%s: icount %d <> STW %d" (tag threaded) c.icount
              reference.icount;
          let s = Option.get c.stats in
          if s.Gc.Incremental.cycles < 1 then
            Alcotest.failf "%s: collector never cycled (heap too big?)" (tag threaded))
        cells;
      (* Deterministic work pacing: both engines took slices at identical
         gc-points with identical quotas, so the final stores must be
         byte-identical and the collection counts equal. *)
      match cells with
      | [ (_, a); (_, b) ] ->
          if not (Vm.Mem.equal a.mem b.mem) then
            Alcotest.failf "O%d: final heap images differ across engines"
              (if optimize then 1 else 0);
          if a.collections <> b.collections then
            Alcotest.failf "O%d: collection counts differ across engines (%d vs %d)"
              (if optimize then 1 else 0)
              a.collections b.collections
      | _ -> assert false)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Budget smoke                                                        *)
(* ------------------------------------------------------------------ *)

let test_budget () =
  with_post_verifier @@ fun () ->
  let src = churn_src ~iters:30000 ~period:256 in
  let reference = run_cell ~mode:Stw ~threaded:false ~optimize:false ~heap:16384 src in
  let budgeted =
    Inc
      {
        slice_work = None;
        trigger_words = None;
        gray_cap = None;
        slice_storm = false;
        barrier_storm = false;
        pause_budget_us = Some 200;
      }
  in
  let c = run_cell ~mode:budgeted ~threaded:false ~optimize:false ~heap:16384 src in
  Alcotest.(check string) "output" reference.out c.out;
  Alcotest.(check int) "icount" reference.icount c.icount;
  let s = Option.get c.stats in
  Alcotest.(check bool) "took slices" true (s.Gc.Incremental.slices > 0);
  Alcotest.(check int) "budget recorded" 200 s.Gc.Incremental.budget_us;
  (* Lenient wall-clock sanity bound, not the real budget claim (that is
     BENCH_9's job on a quiet machine): a 200 us budget must not produce
     a 50 ms slice on any machine CI runs on. *)
  if s.Gc.Incremental.max_slice_ns > 50_000_000 then
    Alcotest.failf "200us-budget slice took %d ns" s.Gc.Incremental.max_slice_ns

(* ------------------------------------------------------------------ *)
(* qcheck: random programs x random slice schedules == STW             *)
(* ------------------------------------------------------------------ *)

(* The program family keeps every heap object the same size (3-word list
   nodes), so the non-moving free list always fits a dead block and the
   property never trips over fragmentation out-of-memory — mixed-size
   stress lives in the fault-target sweep below. The schedule knobs span
   the extremes: near-STW quotas, one-object quotas, storms, and mark
   stacks far too small for the live frontier. *)
let gen_case =
  QCheck.Gen.(
    let* iters = int_range 500 8000 in
    let* period = int_range 2 100 in
    let* heap = int_range 900 8192 in
    let* slice_work = int_range 8 4096 in
    let* trigger = int_range 32 2048 in
    let* slice_storm = bool in
    let* barrier_storm = bool in
    let* gray_cap = oneof [ return None; map (fun c -> Some c) (int_range 2 64) ] in
    return (iters, period, heap, slice_work, trigger, slice_storm, barrier_storm, gray_cap))

let print_case (iters, period, heap, sw, tr, ss, bs, gc) =
  Printf.sprintf
    "iters=%d period=%d heap=%d slice_work=%d trigger=%d storm=%b bstorm=%b cap=%s"
    iters period heap sw tr ss bs
    (match gc with None -> "-" | Some c -> string_of_int c)

let prop_interleaving =
  QCheck.Test.make ~name:"random schedules match STW across engines" ~count:25
    (QCheck.make ~print:print_case gen_case)
    (fun (iters, period, heap, slice_work, trigger, slice_storm, barrier_storm, gray_cap)
       ->
      with_post_verifier @@ fun () ->
      let src = churn_src ~iters ~period in
      let mode =
        Inc
          {
            slice_work = Some slice_work;
            trigger_words = Some trigger;
            gray_cap;
            slice_storm;
            barrier_storm;
            pause_budget_us = None;
          }
      in
      let reference = run_cell ~mode:Stw ~threaded:false ~optimize:false ~heap src in
      let a = run_cell ~mode ~threaded:false ~optimize:false ~heap src in
      let b = run_cell ~mode ~threaded:true ~optimize:false ~heap src in
      a.out = reference.out && a.icount = reference.icount
      && b.out = reference.out && b.icount = reference.icount
      && Vm.Mem.equal a.mem b.mem
      && a.collections = b.collections)

(* ------------------------------------------------------------------ *)
(* Interleaving fault sweep                                            *)
(* ------------------------------------------------------------------ *)

let test_fault_sweep () =
  let sweeps = F.incremental_sweep_all () in
  List.iter
    (fun (s : F.sweep) ->
      if s.F.failures <> [] then
        Alcotest.failf "%s/%s: %s" s.F.program s.F.config
          (String.concat ", "
             (List.map
                (fun (c : F.case) ->
                  Printf.sprintf "%s->%s" c.F.mutation (F.outcome_name c.F.outcome))
                s.F.failures)))
    sweeps

(* ------------------------------------------------------------------ *)
(* Mode precedence                                                     *)
(* ------------------------------------------------------------------ *)

(* MM_GC_INCREMENTAL beats MM_GEN on the shared precise entry point: the
   run must behave as pure incremental (no minor collections) and still
   produce the reference output. *)
let test_env_precedence () =
  let src = churn_src ~iters:5000 ~period:32 in
  let options = { D.default_options with heap_words = 8192 } in
  let reference = D.run_source ~options ~collector:D.Precise ~fuel src in
  Unix.putenv "MM_GC_INCREMENTAL" "1";
  Unix.putenv "MM_GEN" "1";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MM_GC_INCREMENTAL" "";
      Unix.putenv "MM_GEN" "")
    (fun () ->
      Alcotest.(check bool) "env flag" true (Gc.Incremental.env_enabled ());
      let r = D.run_source ~options ~collector:D.Precise ~fuel src in
      Alcotest.(check string) "output" reference.D.output r.D.output;
      Alcotest.(check int) "icount" reference.D.instructions r.D.instructions;
      Alcotest.(check int) "no minor collections (incremental won)" 0
        r.D.gc.I.minor_collections;
      Alcotest.(check bool) "collected" true (r.D.collections > 0))

let () =
  Alcotest.run "incremental"
    [
      ( "equivalence",
        [
          Alcotest.test_case "differential matrix" `Quick test_matrix;
          Alcotest.test_case "pause budget smoke" `Quick test_budget;
          QCheck_alcotest.to_alcotest prop_interleaving;
        ] );
      ( "faults",
        [
          Alcotest.test_case "interleaving sweep clean" `Quick test_fault_sweep;
          Alcotest.test_case "env precedence" `Quick test_env_precedence;
        ] );
    ]
