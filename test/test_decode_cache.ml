(* The memoized pc→table decode cache must be observationally identical to
   the paper-faithful stream re-scan ({!Gcmaps.Decode.find}): same decoded
   procedure metadata, same gc-point, same Table_corrupt behaviour — across
   both table schemes and both packings, for any lookup order. *)

module L = Gcmaps.Loc
module RM = Gcmaps.Rawmaps
module E = Gcmaps.Encode
module D = Gcmaps.Decode
module DC = Gcmaps.Decode_cache

let check = Alcotest.check

(* Both schemes × both packings (previous on/off rides along via the
   shared config list). *)
let configs = Gcmaps.Table_stats.configs

(* ------------------------------------------------------------------ *)
(* Random raw-map programs (generators in the style of test_tables)     *)
(* ------------------------------------------------------------------ *)

let gen_loc =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> L.Lreg r) (int_range 0 11);
        map2
          (fun b o -> L.Lmem ((match b with 0 -> L.FP | 1 -> L.SP | _ -> L.AP), o))
          (int_range 0 2) (int_range (-100) 100);
      ])

let gen_deriv =
  QCheck.Gen.(
    map3
      (fun t p m -> { RM.target = t; plus = p; minus = m })
      gen_loc
      (list_size (int_range 1 3) gen_loc)
      (list_size (int_range 0 2) gen_loc))

let gen_gcpoint =
  QCheck.Gen.(
    map
      (fun (stack, regs, derivs) ->
        {
          RM.gp_index = 0;
          gp_offset = 0;
          stack_ptrs = List.sort_uniq L.compare stack;
          reg_ptrs = List.sort_uniq compare regs;
          derivs;
          variants = [];
        })
      (triple
         (list_size (int_range 0 6) gen_loc)
         (list_size (int_range 0 4) (int_range 0 11))
         (list_size (int_range 0 2) gen_deriv)))

let gen_proc fid =
  QCheck.Gen.(
    map3
      (fun gps gaps (frame, nargs) ->
        (* Offsets ascend by random gaps; a zero gap yields duplicate
           offsets, exercising the cache's first-match tie-break. *)
        let off = ref 0 in
        let gps =
          List.map2
            (fun g gap ->
              off := !off + gap;
              { g with RM.gp_offset = !off })
            gps
            (List.filteri (fun i _ -> i < List.length gps) gaps)
        in
        let gps = List.mapi (fun i g -> { g with RM.gp_index = i }) gps in
        {
          RM.pm_fid = fid;
          pm_name = Printf.sprintf "p%d" fid;
          pm_frame_size = frame;
          pm_nargs = nargs;
          pm_saves = [ (6, -1); (7, -2) ];
          pm_code_bytes = !off + 20;
          pm_gcpoints = gps;
        })
      (list_size (int_range 1 8) gen_gcpoint)
      (list_repeat 8 (int_range 0 9))
      (pair (int_range 0 40) (int_range 0 6)))

let gen_program =
  QCheck.Gen.(
    (int_range 1 5 >>= fun n ->
     let rec go i acc =
       if i >= n then return (Array.of_list (List.rev acc))
       else gen_proc i >>= fun p -> go (i + 1) (p :: acc)
     in
     go 0 [])
    >>= fun procs ->
    (* Arbitrary (ascending) code starts, as the image builder would lay
       the procedures out. *)
    let starts = Array.make (Array.length procs) 0 in
    let pos = ref 0 in
    Array.iteri
      (fun i p ->
        starts.(i) <- !pos;
        pos := !pos + p.RM.pm_code_bytes)
      procs;
    return (procs, starts))

(* Deterministic shuffle so failures reproduce from the qcheck seed. *)
let shuffle rand arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rand (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let same_result (dp1, gp1) (dp2, gp2) =
  dp1.D.dp_frame_size = dp2.D.dp_frame_size
  && dp1.D.dp_nargs = dp2.D.dp_nargs
  && dp1.D.dp_saves = dp2.D.dp_saves
  && dp1.D.dp_ground = dp2.D.dp_ground
  && gp1 = gp2

(* Every gc-point of every procedure, visited in random order, twice (the
   second pass hits the warm cache): the cached result must equal a fresh
   uncached decode. Non-gc-point offsets must raise Table_corrupt both
   ways. *)
let prop_cache_equivalent =
  QCheck.Test.make ~name:"cached find = uncached find, all configs" ~count:60
    (QCheck.make gen_program) (fun (procs, starts) ->
      let rand = Random.State.make [| 0x5eed; Array.length procs |] in
      List.for_all
        (fun (_, scheme, opts) ->
          let tables = E.encode_program scheme opts procs starts in
          let cache = DC.create tables in
          let points =
            Array.of_list
              (Array.to_list procs
              |> List.concat_map (fun p ->
                     List.map
                       (fun g -> (p.RM.pm_fid, starts.(p.RM.pm_fid) + g.RM.gp_offset))
                       p.RM.pm_gcpoints))
          in
          let order = shuffle rand points in
          let ok_points =
            Array.for_all
              (fun (fid, code_offset) ->
                let fresh = D.find tables ~fid ~code_offset in
                same_result fresh (DC.find cache ~fid ~code_offset)
                && same_result fresh (DC.find cache ~fid ~code_offset))
              order
          in
          (* An offset past every gc-point of proc 0 is never mapped. *)
          let bogus = starts.(0) + procs.(0).RM.pm_code_bytes + 1 in
          let nf f =
            match f () with exception D.Table_corrupt _ -> true | _ -> false
          in
          ok_points
          && nf (fun () -> D.find tables ~fid:0 ~code_offset:bogus)
          && nf (fun () -> DC.find cache ~fid:0 ~code_offset:bogus))
        configs)

(* ------------------------------------------------------------------ *)
(* The runtime switch                                                  *)
(* ------------------------------------------------------------------ *)

let with_cache_enabled enabled f =
  let was = DC.enabled () in
  DC.set_enabled enabled;
  Fun.protect ~finally:(fun () -> DC.set_enabled was) f

let test_disabled_defers () =
  (* With the switch off, DC.find must behave exactly like Decode.find —
     including identical Table_corrupt on unmapped offsets — without
     materializing anything. *)
  let procs, starts =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 42 |]) gen_program
  in
  let _, scheme, opts = List.hd configs in
  let tables = E.encode_program scheme opts procs starts in
  let cache = DC.create tables in
  with_cache_enabled false (fun () ->
      Array.iteri
        (fun fid p ->
          List.iter
            (fun g ->
              let code_offset = starts.(fid) + g.RM.gp_offset in
              check Alcotest.bool "same result" true
                (same_result
                   (D.find tables ~fid ~code_offset)
                   (DC.find cache ~fid ~code_offset)))
            p.RM.pm_gcpoints)
        procs;
      check Alcotest.int "nothing materialized" 0 (DC.resident_procs cache))

(* ------------------------------------------------------------------ *)
(* End to end: a gc-heavy run is bit-identical with the cache on or off *)
(* ------------------------------------------------------------------ *)

let test_end_to_end_identical () =
  let src = Programs.Destroy_src.make ~branch:3 ~depth:4 ~replace_depth:2 ~iterations:120 in
  let options =
    { Driver.Compile.default_options with optimize = true; heap_words = 1500 }
  in
  let run enabled =
    with_cache_enabled enabled (fun () ->
        Driver.Compile.run_source ~options ~collector:Driver.Compile.Precise
          ~heap_grow:false (* the small heap must collect, not grow *) src)
  in
  let on = run true in
  let off = run false in
  check Alcotest.string "output" off.Driver.Compile.output on.Driver.Compile.output;
  check Alcotest.int "collections" off.Driver.Compile.collections
    on.Driver.Compile.collections;
  check Alcotest.int "words copied" off.Driver.Compile.gc.Vm.Interp.words_copied
    on.Driver.Compile.gc.Vm.Interp.words_copied;
  check Alcotest.int "frames traced" off.Driver.Compile.gc.Vm.Interp.frames_traced
    on.Driver.Compile.gc.Vm.Interp.frames_traced;
  check Alcotest.bool "collections happened" true (on.Driver.Compile.collections > 0)

let () =
  Alcotest.run "decode_cache"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_cache_equivalent;
          Alcotest.test_case "disabled defers to Decode.find" `Quick test_disabled_defers;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "destroy: cache on = cache off" `Quick test_end_to_end_identical ] );
    ]
