(* Optimizer pass tests: each pass preserves behaviour (checked by running
   programs compiled with and without it) and performs its transformation
   on a witness program. *)

module Ir = Mir.Ir

let check = Alcotest.check

let run_with_opts ?(heap = 2000) ?(checks = true) opts src =
  let options =
    { Driver.Compile.default_options with optimize = false; checks; heap_words = heap }
  in
  let prog = Driver.Compile.to_mir ~options src in
  Opt.Pipeline.optimize ~opts prog;
  let img = Driver.Compile.image_of_mir ~options prog in
  (Driver.Compile.run img).Driver.Compile.output

let no_opts =
  {
    Opt.Pipeline.copyprop = false;
    constfold = false;
    pathvar = false;
    cse = false;
    virtual_origin = false;
    strength = false;
    licm = false;
    dce = false;
  }

(* A program exercising arrays with nonzero bounds, loops, conditionals and
   allocation, whose output is sensitive to misoptimization. *)
let witness =
  "MODULE W;\n\
   TYPE A = REF ARRAY [5..20] OF INTEGER; L = REF RECORD v: INTEGER; n: REF INTEGER END;\n\
   VAR a: A; i, s: INTEGER;\n\
   PROCEDURE Churn(): INTEGER;\n\
   VAR l: L; k: INTEGER;\n\
   BEGIN\n\
   \  FOR k := 1 TO 5 DO l := NEW(L); l.v := k END;\n\
   \  RETURN l.v\n\
   END Churn;\n\
   BEGIN\n\
   \  a := NEW(A);\n\
   \  FOR i := 5 TO 20 DO a[i] := i * i END;\n\
   \  s := 0;\n\
   \  FOR i := 5 TO 20 DO\n\
   \    IF i MOD 2 = 0 THEN s := s + a[i] ELSE s := s - a[i] END;\n\
   \    s := s + Churn()\n\
   \  END;\n\
   \  PutInt(s); PutLn()\n\
   END W.\n"

let baseline = lazy (run_with_opts no_opts witness)

let same_behaviour name opts =
  let out = run_with_opts opts witness in
  check Alcotest.string name (Lazy.force baseline) out;
  (* Also under gc pressure. *)
  let out_small = run_with_opts ~heap:350 opts witness in
  check Alcotest.string (name ^ " under gc") (Lazy.force baseline) out_small

let test_each_pass_preserves () =
  same_behaviour "copyprop" { no_opts with copyprop = true };
  same_behaviour "constfold" { no_opts with constfold = true };
  same_behaviour "cse" { no_opts with cse = true };
  same_behaviour "virtual origin" { no_opts with virtual_origin = true };
  same_behaviour "strength" { no_opts with strength = true };
  same_behaviour "licm" { no_opts with licm = true };
  same_behaviour "dce" { no_opts with dce = true };
  same_behaviour "all" Opt.Pipeline.all_on

let count_instrs (p : Ir.program) =
  Array.fold_left
    (fun acc (f : Ir.func) ->
      acc
      + Array.fold_left
          (fun acc (b : Ir.block) -> acc + List.length b.Ir.instrs)
          0 f.Ir.blocks)
    0 p.Ir.funcs

let mir_with opts src =
  let options = { Driver.Compile.default_options with optimize = false; checks = false } in
  let prog = Driver.Compile.to_mir ~options src in
  Opt.Pipeline.optimize ~opts prog;
  prog

let test_constfold_folds () =
  let prog = mir_with { no_opts with constfold = true; copyprop = true; dce = true }
      "MODULE T; VAR x: INTEGER; BEGIN x := 2 + 3 * 4 END T." in
  let main = prog.Ir.funcs.(prog.Ir.main_fid) in
  let has_arith =
    Array.exists
      (fun (b : Ir.block) ->
        List.exists (fun i -> match i with Ir.Bin _ -> true | _ -> false) b.Ir.instrs)
      main.Ir.blocks
  in
  check Alcotest.bool "constants folded away" false has_arith

let test_dce_removes () =
  let src = "MODULE T; VAR x: INTEGER; BEGIN x := 1; x := 2; PutInt(x) END T." in
  let before = count_instrs (mir_with no_opts src) in
  let after = count_instrs (mir_with { no_opts with dce = true; copyprop = true } src) in
  check Alcotest.bool "dce shrinks code" true (after <= before)

let test_dce_keeps_bases () =
  (* The load of a base pointer must survive DCE while a derived value
     needs it, even if the load's result has no direct remaining use. *)
  let f : Ir.func =
    {
      Ir.fid = 0;
      fname = "h";
      params = [];
      nparams = 0;
      ret = false;
      ret_ptr = false;
      locals =
        [|
          {
            Ir.l_name = "p";
            l_size = 1;
            l_slot = Ir.Sptr;
            l_user = true;
            l_addr_taken = false;
            l_stores = 0;
          };
        |];
      blocks =
        [|
          {
            Ir.instrs =
              [
                Ir.Ld_local (0, 0, 0) (* base: no direct use below *);
                Ir.Bin (Ir.Add, 1, Ir.Otemp 0, Ir.Oimm 4);
                Ir.Call (None, Ir.Crt Ir.Rt_gc_check, []);
                Ir.Store (Ir.Otemp 1, 0, Ir.Oimm 9);
              ];
            term = Ir.Ret None;
          };
        |];
      temp_kinds =
        [| Ir.Kptr; Ir.Kderived { Mir.Deriv.plus = [ Mir.Deriv.Btemp 0 ]; minus = [] } |];
      ntemps = 2;
    }
  in
  let prog : Ir.program =
    {
      Ir.pname = "t";
      globals = [||];
      texts = [||];
      tdescs = [||];
      funcs = [| f |];
      main_fid = 0;
      alloc_sites = [||];
    }
  in
  ignore (Opt.Dce.run prog f);
  let still_there =
    List.exists
      (fun i -> match i with Ir.Ld_local (0, 0, 0) -> true | _ -> false)
      f.Ir.blocks.(0).Ir.instrs
  in
  check Alcotest.bool "base load survives DCE" true still_there

let test_strength_fires () =
  let src =
    "MODULE T; TYPE V = REF ARRAY OF INTEGER; VAR v: V; i: INTEGER;\n\
     BEGIN v := NEW(V, 50); FOR i := 0 TO 49 DO v[i] := i END END T."
  in
  let prog = mir_with Opt.Pipeline.all_on src in
  let main = prog.Ir.funcs.(prog.Ir.main_fid) in
  let has_sr_slot =
    Array.exists
      (fun (li : Ir.local_info) ->
        (match li.Ir.l_slot with Ir.Sderived _ -> true | _ -> false)
        && String.length li.Ir.l_name >= 3
        && String.sub li.Ir.l_name 0 3 = "$sr")
      main.Ir.locals
  in
  check Alcotest.bool "strength reduction created a marching pointer" true has_sr_slot

let test_virtual_origin_fires () =
  let src =
    "MODULE T; TYPE A = REF ARRAY [7..13] OF INTEGER; VAR a: A; i, x: INTEGER;\n\
     BEGIN a := NEW(A); i := 9; x := a[i]; PutInt(x) END T."
  in
  let prog = mir_with { no_opts with virtual_origin = true } src in
  let main = prog.Ir.funcs.(prog.Ir.main_fid) in
  (* The rewrite introduces an add of -(lo*esz) = -7. *)
  let has_origin =
    Array.exists
      (fun (b : Ir.block) ->
        List.exists
          (fun i ->
            match i with
            | Ir.Bin (Ir.Add, t, _, Ir.Oimm -7) -> (
                match Ir.temp_kind main t with Ir.Kderived _ -> true | _ -> false)
            | _ -> false)
          b.Ir.instrs)
      main.Ir.blocks
  in
  check Alcotest.bool "virtual origin introduced" true has_origin

let test_licm_hoists () =
  let src =
    "MODULE T; VAR i, s, a, b: INTEGER;\n\
     BEGIN a := 6; b := 7; s := 0; FOR i := 1 TO 10 DO s := s + a * b END;\n\
     PutInt(s) END T."
  in
  ignore (mir_with no_opts src);
  let after = mir_with { no_opts with licm = true } src in
  (* After LICM no multiply remains inside any loop body. *)
  let main = after.Ir.funcs.(after.Ir.main_fid) in
  let loops = Mir.Cfg.natural_loops main in
  List.iter
    (fun (l : Mir.Cfg.loop) ->
      Support.Ints.Iset.iter
        (fun b ->
          List.iter
            (fun i ->
              match i with
              | Ir.Bin (Ir.Mul, _, _, _) -> Alcotest.fail "multiply left inside loop"
              | _ -> ())
            main.Ir.blocks.(b).Ir.instrs)
        l.Mir.Cfg.body)
    loops;
  let out = run_with_opts { no_opts with licm = true } src in
  check Alcotest.string "licm output" "420" out

let test_pathvar_fires () =
  let options =
    { Driver.Compile.default_options with optimize = true; checks = false }
  in
  let prog = Driver.Compile.to_mir ~options Programs.Ambig_src.src in
  let count_ambig =
    Array.fold_left
      (fun acc (f : Ir.func) ->
        acc
        + Array.fold_left
            (fun acc (li : Ir.local_info) ->
              match li.Ir.l_slot with Ir.Sambig _ -> acc + 1 | _ -> acc)
            0 f.Ir.locals)
      0 prog.Ir.funcs
  in
  check Alcotest.int "one ambiguous slot" 1 count_ambig

let test_noalloc_analysis () =
  let src =
    "MODULE T;\n\
     TYPE L = REF INTEGER;\n\
     PROCEDURE Pure(x: INTEGER): INTEGER; BEGIN RETURN x + 1 END Pure;\n\
     PROCEDURE CallsPure(x: INTEGER): INTEGER; BEGIN RETURN Pure(x) END CallsPure;\n\
     PROCEDURE Allocs(): L; BEGIN RETURN NEW(L) END Allocs;\n\
     PROCEDURE CallsAllocs(): L; BEGIN RETURN Allocs() END CallsAllocs;\n\
     VAR l: L; x: INTEGER;\n\
     BEGIN x := CallsPure(1); l := CallsAllocs() END T."
  in
  let prog = Driver.Compile.to_mir src in
  let noalloc = Opt.Noalloc.analyze prog in
  let fid name =
    let f = Array.to_list prog.Ir.funcs |> List.find (fun (f : Ir.func) -> f.Ir.fname = name) in
    f.Ir.fid
  in
  check Alcotest.bool "Pure" true (noalloc (fid "Pure"));
  check Alcotest.bool "CallsPure" true (noalloc (fid "CallsPure"));
  check Alcotest.bool "Allocs" false (noalloc (fid "Allocs"));
  check Alcotest.bool "CallsAllocs" false (noalloc (fid "CallsAllocs"))

let test_noalloc_reduces_gcpoints () =
  let src =
    "MODULE T;\n\
     PROCEDURE Pure(x: INTEGER): INTEGER; BEGIN RETURN x * 2 END Pure;\n\
     VAR i, s: INTEGER;\n\
     BEGIN s := 0; FOR i := 1 TO 10 DO s := s + Pure(i) END; PutInt(s) END T."
  in
  let gcpoints options =
    let img = Driver.Compile.compile ~options src in
    Array.fold_left
      (fun acc (pm : Gcmaps.Rawmaps.proc_maps) -> acc + List.length pm.Gcmaps.Rawmaps.pm_gcpoints)
      0 img.Vm.Image.rawmaps
  in
  let base = gcpoints Driver.Compile.default_options in
  let refined =
    gcpoints { Driver.Compile.default_options with noalloc_analysis = true }
  in
  check Alcotest.bool "fewer gc-points with noalloc analysis" true (refined < base);
  (* Behaviour unchanged. *)
  let r =
    Driver.Compile.run_source
      ~options:{ Driver.Compile.default_options with noalloc_analysis = true }
      src
  in
  check Alcotest.string "output" "110" (String.trim r.Driver.Compile.output)

let test_loop_gcpoints () =
  (* A loop with no call in it gets an rt_gc_check inserted. *)
  let src =
    "MODULE T; VAR i, s: INTEGER; BEGIN s := 0; FOR i := 1 TO 100 DO s := s + i END;\n\
     PutInt(s) END T."
  in
  let count_checks options =
    let prog = Driver.Compile.to_mir ~options src in
    Array.fold_left
      (fun acc (f : Ir.func) ->
        acc
        + Array.fold_left
            (fun acc (b : Ir.block) ->
              acc
              + List.length
                  (List.filter
                     (fun i ->
                       match i with
                       | Ir.Call (_, Ir.Crt Ir.Rt_gc_check, _) -> true
                       | _ -> false)
                     b.Ir.instrs))
            0 f.Ir.blocks)
      0 prog.Ir.funcs
  in
  check Alcotest.int "no checks by default" 0
    (count_checks Driver.Compile.default_options);
  check Alcotest.bool "check inserted" true
    (count_checks { Driver.Compile.default_options with loop_gcpoints = true } > 0);
  (* A loop that already calls an allocating procedure gets none. *)
  let src2 =
    "MODULE T; TYPE L = REF INTEGER; VAR i: INTEGER; l: L;\n\
     BEGIN FOR i := 1 TO 10 DO l := NEW(L) END END T."
  in
  let prog2 =
    Driver.Compile.to_mir
      ~options:{ Driver.Compile.default_options with loop_gcpoints = true }
      src2
  in
  let inner_checks =
    Array.fold_left
      (fun acc (f : Ir.func) ->
        acc
        + Array.fold_left
            (fun acc (b : Ir.block) ->
              acc
              + List.length
                  (List.filter
                     (fun i ->
                       match i with
                       | Ir.Call (_, Ir.Crt Ir.Rt_gc_check, _) -> true
                       | _ -> false)
                     b.Ir.instrs))
            0 f.Ir.blocks)
      0 prog2.Ir.funcs
  in
  check Alcotest.int "allocating loop needs no extra gc-point" 0 inner_checks;
  (* Behaviour is unchanged and forced checks still compute the right sum. *)
  let r =
    Driver.Compile.run_source
      ~options:{ Driver.Compile.default_options with loop_gcpoints = true }
      src
  in
  check Alcotest.string "sum" "5050" (String.trim r.Driver.Compile.output)

let test_benchmarks_agree_all_passes () =
  (* The four benchmarks plus ambig must produce identical output with the
     full pipeline, each pass being exercised across them. *)
  List.iter
    (fun (name, src, heap) ->
      let base =
        Driver.Compile.run_source
          ~options:{ Driver.Compile.default_options with heap_words = heap }
          src
      in
      let opt =
        Driver.Compile.run_source
          ~options:
            { Driver.Compile.default_options with heap_words = heap; optimize = true }
          src
      in
      check Alcotest.string name base.Driver.Compile.output opt.Driver.Compile.output)
    [
      ("takl", Programs.Takl_src.src, 4000);
      ("destroy", Programs.Destroy_src.src, 9000);
      ("typereg", Programs.Typereg_src.src, 3000);
      ("fieldlist", Programs.Fieldlist_src.src, 2000);
      ("ambig", Programs.Ambig_src.src, 800);
    ]

let () =
  Alcotest.run "opt"
    [
      ( "preservation",
        [
          Alcotest.test_case "each pass preserves behaviour" `Quick
            test_each_pass_preserves;
          Alcotest.test_case "benchmarks agree opt/noopt" `Slow
            test_benchmarks_agree_all_passes;
        ] );
      ( "transformations",
        [
          Alcotest.test_case "constfold folds" `Quick test_constfold_folds;
          Alcotest.test_case "dce removes dead code" `Quick test_dce_removes;
          Alcotest.test_case "dce keeps derivation bases" `Quick test_dce_keeps_bases;
          Alcotest.test_case "strength reduction fires" `Quick test_strength_fires;
          Alcotest.test_case "virtual origin fires" `Quick test_virtual_origin_fires;
          Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
          Alcotest.test_case "pathvar fires on ambig" `Quick test_pathvar_fires;
        ] );
      ( "gc-points",
        [
          Alcotest.test_case "noalloc analysis" `Quick test_noalloc_analysis;
          Alcotest.test_case "noalloc reduces gc-points" `Quick
            test_noalloc_reduces_gcpoints;
          Alcotest.test_case "loop gc-points" `Quick test_loop_gcpoints;
        ] );
    ]
