(* Differential random testing: generate random M3L programs over a safe
   fragment (guaranteed to terminate and stay within bounds) and check
   that every configuration of the compiler and collector produces
   identical output — including with heaps so small that many collections
   strike at arbitrary gc-points. *)


(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

(* The generated fragment:
   - globals: INTEGER g0..g3, a linked list head, an open int array
   - a pool of helper procedures taking/returning integers, some of which
     allocate (so calls are gc-points with live state around them)
   - straight-line bodies of assignments, IFs, bounded FOR loops, calls,
     list pushes and array writes with in-range indices. *)

type expr =
  | Const of int
  | Global of int
  | LocalV of int (* l0..l2 *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | CallHelper of int * expr

type stmt =
  | SetG of int * expr
  | SetL of int * expr
  | If of expr * stmt list * stmt list
  | For of int * int * stmt list (* bounded loop over the FOR var iv *)
  | Push of expr (* cons onto the global list *)
  | ArrSet of int * expr (* arr[const] := e *)
  | CallS of int * expr

type prog = { helpers : stmt list array; main : stmt list }

let rec gen_expr st depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun n -> Const (n mod 100)) small_nat;
        map (fun g -> Global (g mod 4)) small_nat;
        map (fun l -> LocalV (l mod 3)) small_nat;
      ]
      st
  else
    oneof
      [
        map (fun n -> Const (n mod 100)) small_nat;
        map (fun g -> Global (g mod 4)) small_nat;
        map (fun l -> LocalV (l mod 3)) small_nat;
        map2 (fun a b -> Add (a, b)) (gen_expr' (depth - 1)) (gen_expr' (depth - 1));
        map2 (fun a b -> Sub (a, b)) (gen_expr' (depth - 1)) (gen_expr' (depth - 1));
        map2
          (fun a b -> Mul (a, b))
          (gen_expr' (depth - 1))
          (map (fun n -> Const ((n mod 5) + 1)) small_nat);
        map2 (fun h a -> CallHelper (h mod 3, a)) small_nat (gen_expr' (depth - 1));
      ]
      st

and gen_expr' depth st = gen_expr st depth

let rec gen_stmt st depth =
  let open QCheck.Gen in
  let e = gen_expr' 2 in
  if depth = 0 then
    oneof
      [
        map2 (fun g v -> SetG (g mod 4, v)) small_nat e;
        map2 (fun l v -> SetL (l mod 3, v)) small_nat e;
        map (fun v -> Push v) e;
        map2 (fun i v -> ArrSet (i mod 8, v)) small_nat e;
        map2 (fun h v -> CallS (h mod 3, v)) small_nat e;
      ]
      st
  else
    oneof
      [
        map2 (fun g v -> SetG (g mod 4, v)) small_nat e;
        map (fun v -> Push v) e;
        map3
          (fun c a b -> If (c, a, b))
          e
          (gen_stmts' (depth - 1))
          (gen_stmts' (depth - 1));
        map2
          (fun n body -> For ((n mod 4) + 2, (n mod 3) + 1, body))
          small_nat
          (gen_stmts' (depth - 1));
        map2 (fun h v -> CallS (h mod 3, v)) small_nat e;
      ]
      st

and gen_stmts' depth st =
  QCheck.Gen.(list_size (int_range 1 4) (fun st -> gen_stmt st depth)) st

let gen_prog =
  QCheck.Gen.(
    map2
      (fun helpers main -> { helpers = Array.of_list helpers; main })
      (list_repeat 3 (gen_stmts' 1))
      (gen_stmts' 2))

(* ------------------------------------------------------------------ *)
(* Printer to M3L                                                      *)
(* ------------------------------------------------------------------ *)

let rec pr_expr b = function
  | Const n -> Buffer.add_string b (string_of_int n)
  | Global g -> Buffer.add_string b (Printf.sprintf "g%d" g)
  | LocalV l -> Buffer.add_string b (Printf.sprintf "l%d" l)
  | Add (x, y) ->
      Buffer.add_char b '(';
      pr_expr b x;
      Buffer.add_string b " + ";
      pr_expr b y;
      Buffer.add_char b ')'
  | Sub (x, y) ->
      Buffer.add_char b '(';
      pr_expr b x;
      Buffer.add_string b " - ";
      pr_expr b y;
      Buffer.add_char b ')'
  | Mul (x, y) ->
      Buffer.add_char b '(';
      pr_expr b x;
      Buffer.add_string b " * ";
      pr_expr b y;
      Buffer.add_char b ')'
  | CallHelper (h, a) ->
      Buffer.add_string b (Printf.sprintf "H%d(" h);
      pr_expr b a;
      Buffer.add_char b ')'

let rec pr_stmts b ind stmts =
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ";\n";
      Buffer.add_string b ind;
      pr_stmt b ind s)
    stmts;
  Buffer.add_char b '\n'

and pr_stmt b ind = function
  | SetG (g, e) ->
      Buffer.add_string b (Printf.sprintf "g%d := " g);
      pr_expr b e
  | SetL (l, e) ->
      Buffer.add_string b (Printf.sprintf "l%d := " l);
      pr_expr b e
  | Push e ->
      Buffer.add_string b "PushList(";
      pr_expr b e;
      Buffer.add_char b ')'
  | ArrSet (i, e) ->
      Buffer.add_string b (Printf.sprintf "arr[%d] := " i);
      pr_expr b e
  | CallS (h, e) ->
      Buffer.add_string b (Printf.sprintf "l0 := H%d(" h);
      pr_expr b e;
      Buffer.add_char b ')'
  | If (c, a, bs) ->
      Buffer.add_string b "IF ";
      pr_expr b c;
      Buffer.add_string b " > 0 THEN\n";
      pr_stmts b (ind ^ "  ") a;
      Buffer.add_string b (ind ^ "ELSE\n");
      pr_stmts b (ind ^ "  ") bs;
      Buffer.add_string b (ind ^ "END")
  | For (hi, step, body) ->
      Buffer.add_string b (Printf.sprintf "FOR iv := 1 TO %d BY %d DO\n" hi step);
      pr_stmts b (ind ^ "  ") body;
      Buffer.add_string b (ind ^ "END")

let to_m3l (p : prog) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "MODULE Rnd;\n\
     TYPE Node = RECORD v: INTEGER; n: List END; List = REF Node;\n\
     Arr = REF ARRAY OF INTEGER;\n\
     VAR g0, g1, g2, g3: INTEGER; head: List; arr: Arr;\n\n\
     PROCEDURE PushList(v: INTEGER);\n\
     VAR c: List;\n\
     BEGIN c := NEW(List); c.v := v; c.n := head; head := c END PushList;\n\n\
     PROCEDURE SumList(): INTEGER;\n\
     VAR s: INTEGER; l: List;\n\
     BEGIN s := 0; l := head;\n\
     WHILE l # NIL DO s := s + l.v; l := l.n END; RETURN s END SumList;\n\n";
  Array.iteri
    (fun i body ->
      Buffer.add_string b
        (Printf.sprintf
           "PROCEDURE H%d(x: INTEGER): INTEGER;\nVAR l0, l1, l2, iv: INTEGER;\nBEGIN\n"
           i);
      Buffer.add_string b "  l0 := x; l1 := x + 1; l2 := 0;\n";
      (* Helper bodies must not call other helpers recursively without
         bound: restrict statements inside helpers to non-call forms by
         rewriting CallS/CallHelper into arithmetic. *)
      let rec strip_e = function
        | CallHelper (_, a) -> Add (strip_e a, Const 7)
        | Add (a, b') -> Add (strip_e a, strip_e b')
        | Sub (a, b') -> Sub (strip_e a, strip_e b')
        | Mul (a, b') -> Mul (strip_e a, strip_e b')
        | e -> e
      in
      let rec strip_s = function
        | CallS (_, e) -> SetL (2, strip_e e)
        | SetG (g, e) -> SetG (g, strip_e e)
        | SetL (l, e) -> SetL (l, strip_e e)
        | Push e -> Push (strip_e e)
        | ArrSet (i, e) -> ArrSet (i, strip_e e)
        | If (c, x, y) -> If (strip_e c, List.map strip_s x, List.map strip_s y)
        | For (hi, st, body) -> For (hi, st, List.map strip_s body)
      in
      pr_stmts b "  " (List.map strip_s body);
      Buffer.add_string b ";\n  RETURN l0 + l1 + l2\nEND ";
      Buffer.add_string b (Printf.sprintf "H%d;\n\n" i))
    p.helpers;
  Buffer.add_string b "VAR l0, l1, l2, iv: INTEGER;\nBEGIN\n";
  Buffer.add_string b "  arr := NEW(Arr, 8);\n  l0 := 0; l1 := 0; l2 := 0;\n";
  pr_stmts b "  " p.main;
  Buffer.add_string b
    ";\n  PutInt(g0 + g1 * 3 + g2 * 5 + g3 * 7); PutChar(' ');\n\
     \  PutInt(SumList()); PutChar(' ');\n\
     \  FOR iv := 0 TO 7 DO PutInt(arr[iv]); PutChar(',') END;\n\
     \  PutLn()\nEND Rnd.\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

(* Heap sizing is no longer fitted per program: the moving-collector
   configurations start from a tiny [small_heap]-word semispace with
   adaptive growth armed (capped at [grow_cap], the reference heap size),
   so collections strike at arbitrary gc-points early in the run and the
   heap then grows to whatever the program needs. The property demands
   output equality with the big fixed-heap reference from every
   configuration — growth must be observationally invisible. A program
   that exhausts even the cap raises [Heap_exhausted], which fails the
   property. (The suite used to double a fixed heap per seed until every
   configuration completed; adaptive resizing makes that loop obsolete.) *)
let small_heap = 600
let grow_cap = 65536

let run_cfg src (optimize, checks, heap, collector, barrier_elim, grow) =
  let options =
    {
      Driver.Compile.default_options with
      optimize;
      checks;
      heap_words = heap;
      barrier_elim;
    }
  in
  let heap_grow = if grow then Some true else None in
  let heap_max_words = if grow then Some grow_cap else None in
  (Driver.Compile.run_source ~options ~collector ~fuel:20_000_000 ?heap_grow
     ?heap_max_words src)
    .Driver.Compile.output

(* The configuration matrix. The first entry is the reference (big fixed
   heap, unoptimized, precise). The conservative collector is non-moving
   and cannot resize, so it keeps a big fixed heap. *)
let configs =
  let h = small_heap in
  [
    (false, true, 65536, Driver.Compile.Precise, true, false);
    (true, true, 65536, Driver.Compile.Precise, true, false);
    (false, true, h, Driver.Compile.Precise, true, true);
    (true, true, h, Driver.Compile.Precise, true, true);
    (false, false, h, Driver.Compile.Precise, true, true);
    (true, false, h, Driver.Compile.Precise, true, true);
    (false, true, 65536, Driver.Compile.Conservative, true, false);
    (* generational × {barrier elimination on, off} *)
    (false, true, 65536, Driver.Compile.Generational, true, false);
    (false, true, h, Driver.Compile.Generational, true, true);
    (true, true, h, Driver.Compile.Generational, true, true);
    (false, true, h, Driver.Compile.Generational, false, true);
    (true, true, h, Driver.Compile.Generational, false, true);
  ]

let prop_differential =
  QCheck.Test.make ~name:"random programs agree across all configurations" ~count:60
    (QCheck.make ~print:(fun p -> to_m3l p) gen_prog)
    (fun p ->
      let src = to_m3l p in
      (* The heap verifier runs after every collection of every
         configuration below; for the generational ones that includes the
         old→young remembered-set check — with and without the static
         barrier elimination, so an unsound elimination fails here, not
         just output equality. A verifier violation raises (Verify_failed
         is not Heap_exhausted) and fails the property. *)
      let post0 = Gc.Verify.post_enabled () in
      Gc.Verify.set_post true;
      Fun.protect
        ~finally:(fun () -> Gc.Verify.set_post post0)
        (fun () ->
          match List.map (run_cfg src) configs with
          | reference :: rest -> List.for_all (fun out -> out = reference) rest
          | [] -> false))

let prop_collections_strike =
  (* Sanity: the tiny starting heap really does put the resize machinery
     under pressure on allocating programs (otherwise the property above
     degenerates into big-heap-only coverage). Whenever a program
     allocates more words than the starting semispace holds, the grown
     run must have either collected or resized. *)
  QCheck.Test.make ~name:"small heaps collect or grow on list-heavy programs"
    ~count:30 (QCheck.make gen_prog) (fun p ->
      let src = to_m3l p in
      let options =
        { Driver.Compile.default_options with heap_words = small_heap }
      in
      let r =
        Driver.Compile.run_source ~options ~fuel:20_000_000 ~heap_grow:true
          ~heap_max_words:grow_cap src
      in
      if r.Driver.Compile.alloc_words > small_heap then
        r.Driver.Compile.collections > 0
        || r.Driver.Compile.gc.Vm.Interp.resizes > 0
      else true)

let () =
  Alcotest.run "random"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_collections_strike;
        ] );
    ]
