(* The paper's benchmark programs: golden outputs, stability across every
   compiler and collector configuration, and the statistics the evaluation
   section needs from them. *)

let check = Alcotest.check

let run ?(collector = Driver.Compile.Precise) ?(optimize = false) ?(checks = true)
    ?(heap = 65536) src =
  let options =
    { Driver.Compile.default_options with optimize; checks; heap_words = heap }
  in
  (* heap_grow pinned off: the collections-happen assertions depend on the
     small heaps actually collecting (not growing under MM_HEAP_GROW=1). *)
  Driver.Compile.run_source ~options ~collector ~heap_grow:false src

let benchmarks =
  [
    ("takl", Programs.Takl_src.src, 4000, 400);
    ("destroy", Programs.Destroy_src.src, 16384, 8000);
    ("typereg", Programs.Typereg_src.src, 8000, 3000);
    ("fieldlist", Programs.Fieldlist_src.src, 4000, 300);
    ("indirect", Programs.Indirect_src.src, 4000, 1000);
    ("ambig", Programs.Ambig_src.src, 2000, 400);
  ]

let test_golden () =
  check Alcotest.string "takl" Programs.Takl_src.expected
    (run Programs.Takl_src.src).Driver.Compile.output;
  check Alcotest.string "ambig" Programs.Ambig_src.expected
    (run Programs.Ambig_src.src).Driver.Compile.output;
  (* destroy is deterministic (LCG in-program). *)
  check Alcotest.string "destroy"
    (run Programs.Destroy_src.src).Driver.Compile.output
    (run Programs.Destroy_src.src).Driver.Compile.output;
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  let typereg_out = (run Programs.Typereg_src.src).Driver.Compile.output in
  check Alcotest.bool "typereg reports no sharing bugs" false (contains typereg_out "BUG");
  check Alcotest.bool "typereg registered types" true (contains typereg_out "registered=")

let test_configuration_matrix () =
  List.iter
    (fun (name, src, big, small) ->
      let reference = run ~heap:big src in
      List.iter
        (fun (tag, optimize, checks, heap, collector) ->
          let r = run ~optimize ~checks ~heap ~collector src in
          check Alcotest.string
            (Printf.sprintf "%s/%s" name tag)
            reference.Driver.Compile.output r.Driver.Compile.output)
        [
          ("opt", true, true, big, Driver.Compile.Precise);
          ("small", false, true, small, Driver.Compile.Precise);
          ("opt-small", true, true, small, Driver.Compile.Precise);
          ("nochecks", false, false, small, Driver.Compile.Precise);
          ("opt-nochecks", true, false, small, Driver.Compile.Precise);
          ("conservative", false, true, big, Driver.Compile.Conservative);
        ])
    benchmarks

let test_collections_happen () =
  (* The gc-stressing benchmarks really do collect with small heaps. *)
  List.iter
    (fun (name, src, _big, small) ->
      let r = run ~heap:small src in
      check Alcotest.bool (name ^ " collects") true (r.Driver.Compile.collections > 0))
    (List.filter (fun (n, _, _, _) -> n <> "takl" && n <> "indirect") benchmarks)

let test_destroy_scales () =
  (* Bigger destroy configurations allocate more and keep the tree shape. *)
  let small = Programs.Destroy_src.make ~branch:2 ~depth:5 ~replace_depth:2 ~iterations:20 in
  let big = Programs.Destroy_src.make ~branch:2 ~depth:7 ~replace_depth:3 ~iterations:20 in
  let rs = run ~heap:30000 small and rb = run ~heap:30000 big in
  check Alcotest.bool "bigger tree allocates more" true
    (rb.Driver.Compile.alloc_words > rs.Driver.Compile.alloc_words)

let test_table_statistics_sane () =
  (* Table 1 columns for each benchmark: sanity constraints that must hold
     for any correct implementation. *)
  List.iter
    (fun (name, src, _, _) ->
      List.iter
        (fun optimize ->
          let options = { Driver.Compile.default_options with optimize } in
          let img = Driver.Compile.compile ~options src in
          let s = Gcmaps.Table_stats.compute img.Vm.Image.rawmaps in
          check Alcotest.bool (name ^ " has gc-points") true
            (s.Gcmaps.Table_stats.ngcpoints > 0);
          check Alcotest.bool (name ^ " ngc <= total") true
            (s.Gcmaps.Table_stats.ngc <= s.Gcmaps.Table_stats.ngcpoints);
          check Alcotest.bool (name ^ " code nonempty") true
            (s.Gcmaps.Table_stats.size_bytes > 0);
          (* Every delta/reg/deriv table emitted belongs to some gc-point. *)
          check Alcotest.bool (name ^ " ndel bounded") true
            (s.Gcmaps.Table_stats.ndel <= s.Gcmaps.Table_stats.ngcpoints);
          check Alcotest.bool (name ^ " nreg bounded") true
            (s.Gcmaps.Table_stats.nreg <= s.Gcmaps.Table_stats.ngcpoints);
          check Alcotest.bool (name ^ " nder bounded") true
            (s.Gcmaps.Table_stats.nder <= s.Gcmaps.Table_stats.ngcpoints))
        [ false; true ])
    benchmarks

let test_size_ordering () =
  (* Table 2's qualitative content: for every benchmark, packing+previous
     is the smallest δ-main configuration, and packing alone beats plain. *)
  List.iter
    (fun (name, src, _, _) ->
      let options = { Driver.Compile.default_options with optimize = true } in
      let img = Driver.Compile.compile ~options src in
      let sizes = Gcmaps.Table_stats.sizes img.Vm.Image.rawmaps in
      let size key = List.assoc key sizes in
      check Alcotest.bool (name ^ " pp <= packing") true
        (size "delta/pp" <= size "delta/packing");
      check Alcotest.bool (name ^ " packing < plain") true
        (size "delta/packing" < size "delta/plain");
      check Alcotest.bool (name ^ " previous <= plain") true
        (size "delta/previous" <= size "delta/plain");
      check Alcotest.bool (name ^ " full packing < full plain") true
        (size "full/packing" < size "full/plain"))
    benchmarks

let test_gc_restrict_effects () =
  (* §6.2: turning gc restrictions off may only shrink the code (folds into
     deferred operands), and behaviour when no collection strikes is
     unchanged. *)
  List.iter
    (fun (name, src, big, _) ->
      let restricted =
        Driver.Compile.compile
          ~options:{ Driver.Compile.default_options with heap_words = big }
          src
      in
      let unrestricted =
        Driver.Compile.compile
          ~options:
            { Driver.Compile.default_options with heap_words = big; gc_restrict = false }
          src
      in
      check Alcotest.bool (name ^ " unrestricted not larger") true
        (unrestricted.Vm.Image.code_bytes <= restricted.Vm.Image.code_bytes);
      (* Every fold available without restrictions is either also applied
         under restrictions (safe) or counted as suppressed. *)
      check Alcotest.bool
        (name ^ " suppression accounting")
        true
        (restricted.Vm.Image.folds_suppressed
         >= unrestricted.Vm.Image.folds_applied - restricted.Vm.Image.folds_applied);
      let r1 = Driver.Compile.run restricted in
      let r2 = Driver.Compile.run unrestricted in
      check Alcotest.string (name ^ " same output gc-free") r1.Driver.Compile.output
        r2.Driver.Compile.output)
    benchmarks;
  (* The indirect-reference micro-benchmark, compiled without checks (the
     guards otherwise split the foldable pairs), must show the paper's
     effect: restrictions suppress folds and cost code bytes. *)
  let base = { Driver.Compile.default_options with checks = false } in
  let restricted = Driver.Compile.compile ~options:base Programs.Indirect_src.src in
  let unrestricted =
    Driver.Compile.compile
      ~options:{ base with gc_restrict = false }
      Programs.Indirect_src.src
  in
  check Alcotest.bool "indirect: folds suppressed under restrictions" true
    (restricted.Vm.Image.folds_suppressed > 0);
  check Alcotest.bool "indirect: restrictions cost code bytes" true
    (restricted.Vm.Image.code_bytes > unrestricted.Vm.Image.code_bytes)

(* Structural invariants of the emitted tables, over every benchmark:
   these are the properties the collector's correctness rests on. *)
let test_table_invariants () =
  List.iter
    (fun (name, src, _, _) ->
      List.iter
        (fun optimize ->
          let options = { Driver.Compile.default_options with optimize } in
          let img = Driver.Compile.compile ~options src in
          Array.iter
            (fun (pm : Gcmaps.Rawmaps.proc_maps) ->
              (* gc-point offsets strictly increase (the delta encoding
                 depends on it). *)
              let offs = List.map (fun g -> g.Gcmaps.Rawmaps.gp_offset) pm.Gcmaps.Rawmaps.pm_gcpoints in
              check Alcotest.bool (name ^ " offsets sorted") true
                (List.sort_uniq compare offs = offs);
              (* Saved registers are callee-saved, at distinct negative
                 offsets within the frame. *)
              List.iter
                (fun (r, off) ->
                  check Alcotest.bool (name ^ " save reg callee-saved") true
                    (Machine.Reg.is_callee_saved r);
                  check Alcotest.bool (name ^ " save slot in frame") true
                    (off < 0 && -off <= pm.Gcmaps.Rawmaps.pm_frame_size))
                pm.Gcmaps.Rawmaps.pm_saves;
              List.iter
                (fun (g : Gcmaps.Rawmaps.gcpoint) ->
                  (* Stack entries are unique. *)
                  let sp = g.Gcmaps.Rawmaps.stack_ptrs in
                  check Alcotest.bool (name ^ " stack entries unique") true
                    (List.sort_uniq Gcmaps.Loc.compare sp
                    = List.sort Gcmaps.Loc.compare sp);
                  (* Register entries are real general registers. *)
                  List.iter
                    (fun r ->
                      check Alcotest.bool (name ^ " reg index valid") true
                        (r >= 0 && r < Machine.Reg.ngeneral))
                    g.Gcmaps.Rawmaps.reg_ptrs;
                  (* Derivation order: a derived value precedes any entry
                     whose target appears among its bases (the paper's
                     second ordering rule, which the updater relies on). *)
                  let rec well_ordered = function
                    | [] -> true
                    | (d : Gcmaps.Rawmaps.deriv_entry) :: rest ->
                        let bases = d.Gcmaps.Rawmaps.plus @ d.Gcmaps.Rawmaps.minus in
                        (* no LATER entry's target may be a base of an
                           EARLIER entry... equivalently: d's bases must not
                           be targets of entries BEFORE d. Walking forward:
                           every base of d that is also some entry's target
                           must appear in rest, not before. We check the
                           forward form: none of d's preceding entries is
                           needed; so verify d's target is not a base of any
                           entry in rest. *)
                        List.for_all
                          (fun (later : Gcmaps.Rawmaps.deriv_entry) ->
                            not
                              (List.exists
                                 (Gcmaps.Loc.equal d.Gcmaps.Rawmaps.target)
                                 (later.Gcmaps.Rawmaps.plus @ later.Gcmaps.Rawmaps.minus))
                          )
                          rest
                        |> fun ok -> ignore bases; ok && well_ordered rest
                  in
                  check Alcotest.bool (name ^ " derivation order") true
                    (well_ordered g.Gcmaps.Rawmaps.derivs))
                pm.Gcmaps.Rawmaps.pm_gcpoints)
            img.Vm.Image.rawmaps)
        [ false; true ])
    benchmarks

let () =
  Alcotest.run "programs"
    [
      ( "benchmarks",
        [
          Alcotest.test_case "golden outputs" `Quick test_golden;
          Alcotest.test_case "configuration matrix" `Slow test_configuration_matrix;
          Alcotest.test_case "collections happen" `Quick test_collections_happen;
          Alcotest.test_case "destroy scales" `Quick test_destroy_scales;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "table statistics sane" `Quick test_table_statistics_sane;
          Alcotest.test_case "size ordering (Table 2 shape)" `Quick test_size_ordering;
          Alcotest.test_case "gc-restriction effects (6.2)" `Quick test_gc_restrict_effects;
          Alcotest.test_case "table invariants" `Quick test_table_invariants;
        ] );
    ]
