(* The integrity layer: total decoding under adversarial bytes, the heap
   verifier across the benchmark matrix, and the fault-injection sweep.
   The claims under test are ISSUE 3's acceptance criteria: no mutation of
   the encoded table streams may crash or hang the runtime, effective
   mutations are rejected with typed errors (or flagged by the verifier),
   and the verifier reports zero violations on every healthy program under
   every scheme × packing × optimization configuration. *)

module L = Gcmaps.Loc
module RM = Gcmaps.Rawmaps
module E = Gcmaps.Encode
module D = Gcmaps.Decode
module F = Fault.Faultinject

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Decode totality: random procedures × random single-byte mutations    *)
(* ------------------------------------------------------------------ *)

(* Generators in the style of test_decode_cache. *)
let gen_loc =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> L.Lreg r) (int_range 0 11);
        map2
          (fun b o -> L.Lmem ((match b with 0 -> L.FP | 1 -> L.SP | _ -> L.AP), o))
          (int_range 0 2) (int_range (-100) 100);
      ])

let gen_deriv =
  QCheck.Gen.(
    map3
      (fun t p m -> { RM.target = t; plus = p; minus = m })
      gen_loc
      (list_size (int_range 1 3) gen_loc)
      (list_size (int_range 0 2) gen_loc))

let gen_gcpoint =
  QCheck.Gen.(
    map
      (fun (stack, regs, derivs) ->
        {
          RM.gp_index = 0;
          gp_offset = 0;
          stack_ptrs = List.sort_uniq L.compare stack;
          reg_ptrs = List.sort_uniq compare regs;
          derivs;
          variants = [];
        })
      (triple
         (list_size (int_range 0 6) gen_loc)
         (list_size (int_range 0 4) (int_range 0 11))
         (list_size (int_range 0 2) gen_deriv)))

let gen_proc =
  QCheck.Gen.(
    map3
      (fun gps gaps (frame, nargs) ->
        let off = ref 0 in
        let gps =
          List.map2
            (fun g gap ->
              off := !off + gap;
              { g with RM.gp_offset = !off })
            gps
            (List.filteri (fun i _ -> i < List.length gps) gaps)
        in
        let gps = List.mapi (fun i g -> { g with RM.gp_index = i }) gps in
        {
          RM.pm_fid = 0;
          pm_name = "p0";
          pm_frame_size = frame;
          pm_nargs = nargs;
          pm_saves = [ (6, -1); (7, -2) ];
          pm_code_bytes = !off + 20;
          pm_gcpoints = gps;
        })
      (list_size (int_range 1 8) gen_gcpoint)
      (list_repeat 8 (int_range 0 9))
      (pair (int_range 0 40) (int_range 0 6)))

(* A random single-byte mutation (flip, rewrite, truncate-by-one, extend
   with a continuation byte) of the encoded stream. *)
let gen_mutation =
  QCheck.Gen.(
    triple (int_range 0 3) (int_range 0 1_000_000) (int_range 0 255))

let apply_mutation (kind, posr, v) stream =
  let b = Bytes.copy stream in
  let len = Bytes.length b in
  if len = 0 then b
  else
    let pos = posr mod len in
    match kind with
    | 0 ->
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (v mod 8))));
        b
    | 1 ->
        Bytes.set b pos (Char.chr v);
        b
    | 2 -> Bytes.sub b 0 (len - 1)
    | _ ->
        let out = Bytes.create (len + 1) in
        Bytes.blit b 0 out 0 pos;
        Bytes.set out pos '\x80';
        Bytes.blit b pos out (pos + 1) (len - pos);
        out

(* Encode → mutate one byte → decode must either report Table_corrupt or
   produce tables observationally equal to the original (the cross-check
   itself is the oracle: [validate_proc ~against] accepts only streams
   that decode back to the raw maps). Any other exception is the crash
   class the total decoder removes. *)
let prop_mutation_total =
  QCheck.Test.make ~name:"mutated stream: typed rejection or equal decode" ~count:300
    (QCheck.make QCheck.Gen.(triple gen_proc (oneofl Gcmaps.Table_stats.configs) gen_mutation))
    (fun (pm, (_, scheme, opts), mutation) ->
      let ep = E.encode_proc scheme opts pm in
      let ep' = { ep with E.ep_stream = apply_mutation mutation ep.E.ep_stream } in
      match D.validate_proc ~against:pm scheme opts ep' with
      | () -> true (* decodes identically: the mutation had no effect *)
      | exception D.Table_corrupt _ -> true
      | exception _ -> false)

(* The pristine stream must always pass its own cross-check (sanity for
   the property above: the oracle accepts the unmutated encoding). *)
let prop_pristine_validates =
  QCheck.Test.make ~name:"pristine stream validates" ~count:100
    (QCheck.make QCheck.Gen.(pair gen_proc (oneofl Gcmaps.Table_stats.configs)))
    (fun (pm, (_, scheme, opts)) ->
      let ep = E.encode_proc scheme opts pm in
      match D.validate_proc ~against:pm scheme opts ep with
      | () -> true
      | exception D.Table_corrupt _ -> false)

(* ------------------------------------------------------------------ *)
(* Directed corruptions: typed errors with context                      *)
(* ------------------------------------------------------------------ *)

let sample_tables () =
  let pm =
    QCheck.Gen.generate1 ~rand:(Random.State.make [| 99 |]) gen_proc
  in
  (pm, E.encode_program E.Delta_main { E.packing = true; previous = true } [| pm |] [| 0 |])

let test_truncation_rejected () =
  let _, tables = sample_tables () in
  let ep = tables.E.procs.(0) in
  let cut = Bytes.length ep.E.ep_stream / 2 in
  let tables' =
    { tables with E.procs = [| { ep with E.ep_stream = Bytes.sub ep.E.ep_stream 0 cut } |] }
  in
  match D.validate_tables tables' with
  | () -> Alcotest.fail "truncated stream must not validate"
  | exception D.Table_corrupt { fid = 0; _ } -> ()
  | exception D.Table_corrupt _ -> Alcotest.fail "wrong fid in report"

let test_overlong_varint_rejected () =
  (* An unterminated continuation run must surface as Table_corrupt (via
     the bounded varint scan), not a hang or an Invalid_argument escape. *)
  let _, tables = sample_tables () in
  let ep = tables.E.procs.(0) in
  let tables' =
    {
      tables with
      E.procs = [| { ep with E.ep_stream = Bytes.make (Bytes.length ep.E.ep_stream) '\x80' } |];
    }
  in
  match D.validate_tables tables' with
  | () -> Alcotest.fail "all-continuation stream must not validate"
  | exception D.Table_corrupt _ -> ()

let test_find_miss_has_context () =
  let _, tables = sample_tables () in
  (match D.find tables ~fid:0 ~code_offset:987654 with
  | exception D.Table_corrupt { fid = 0; offset = 987654; _ } -> ()
  | exception D.Table_corrupt _ -> Alcotest.fail "miss must carry fid and offset"
  | _ -> Alcotest.fail "bogus offset must not resolve");
  match D.find tables ~fid:5 ~code_offset:0 with
  | exception D.Table_corrupt { fid = 5; _ } -> ()
  | exception D.Table_corrupt _ -> Alcotest.fail "bad fid must be reported as such"
  | _ -> Alcotest.fail "bogus fid must not resolve"

(* ------------------------------------------------------------------ *)
(* The heap verifier                                                    *)
(* ------------------------------------------------------------------ *)

let with_verifier ~pre f =
  let was_post = Gc.Verify.post_enabled () and was_pre = Gc.Verify.pre_enabled () in
  Gc.Verify.set_post true;
  Gc.Verify.set_pre pre;
  Fun.protect
    ~finally:(fun () ->
      Gc.Verify.set_post was_post;
      Gc.Verify.set_pre was_pre)
    f

(* Every benchmark × both schemes × packed/plain × opt/unopt × collector
   (full compaction / generational / generational without the static
   barrier elimination), with heaps small enough to collect, under pre-
   and post-verification. Any table bug, stackwalk bug, copy bug or
   unrecorded old→young reference the verifier can see raises
   Verify_failed; outputs must still match the gc-free reference. *)
let test_verifier_matrix () =
  let benchmarks =
    [
      ("takl", Programs.Takl_src.src, 400);
      ("destroy", Programs.Destroy_src.src, 8000);
      ("typereg", Programs.Typereg_src.src, 3000);
      ("fieldlist", Programs.Fieldlist_src.src, 300);
      ("indirect", Programs.Indirect_src.src, 1000);
      ("ambig", Programs.Ambig_src.src, 400);
    ]
  in
  let schemes =
    [
      ("delta+pp", E.Delta_main, { E.packing = true; previous = true });
      ("delta+plain", E.Delta_main, { E.packing = false; previous = false });
      ("full+pp", E.Full_info, { E.packing = true; previous = true });
      ("full+plain", E.Full_info, { E.packing = false; previous = false });
    ]
  in
  with_verifier ~pre:true (fun () ->
      List.iter
        (fun (name, src, heap) ->
          let reference =
            Driver.Compile.run_source
              ~options:{ Driver.Compile.default_options with heap_words = 65536 }
              src
          in
          List.iter
            (fun (cfg, scheme, table_opts) ->
              List.iter
                (fun (optimize, checks) ->
                  List.iter
                    (fun (ccfg, collector, barrier_elim) ->
                      let options =
                        {
                          Driver.Compile.default_options with
                          optimize;
                          checks;
                          heap_words = heap;
                          scheme;
                          table_opts;
                          barrier_elim;
                        }
                      in
                      let r = Driver.Compile.run_source ~options ~collector src in
                      check Alcotest.string
                        (Printf.sprintf "%s/%s/%s/opt=%b/checks=%b output" name cfg ccfg
                           optimize checks)
                        reference.Driver.Compile.output r.Driver.Compile.output;
                      if r.Driver.Compile.collections > 0 then
                        match Gc.Verify.last_report () with
                        | None ->
                            Alcotest.fail (name ^ ": collected but verifier never ran")
                        | Some rep ->
                            check Alcotest.int
                              (Printf.sprintf "%s/%s/%s/opt=%b/checks=%b violations" name
                                 cfg ccfg optimize checks)
                              0
                              (List.length rep.Gc.Verify.violations))
                    [
                      ("flat", Driver.Compile.Precise, true);
                      ("gen", Driver.Compile.Generational, true);
                      ("gen-noelim", Driver.Compile.Generational, false);
                    ])
                (* checks=false on ambig enables the path-variable transform:
                   the one configuration whose derivation chains route through
                   variant tables (the ordering bug the verifier caught). *)
                [ (false, true); (true, true); (false, false); (true, false) ])
            schemes)
        benchmarks)

(* The verifier actually detects damage: scribble over a live object's
   header and the next pass must report it. *)
let test_verifier_detects_corruption () =
  let src =
    "MODULE M; TYPE P = REF INTEGER; VAR p: P; BEGIN p := NEW(P); p^ := 7; \
     PutInt(p^) END M."
  in
  let img = Driver.Compile.compile src in
  let st = Vm.Interp.create img in
  Gc.Cheney.install st;
  Vm.Interp.run st;
  check Alcotest.bool "allocated something" true (st.Vm.Interp.alloc > st.Vm.Interp.from_base);
  (* Valid heap passes. *)
  let rep = Gc.Verify.check st ~phase:"post" ~frames:[] () in
  check Alcotest.int "healthy heap: no violations" 0 (List.length rep.Gc.Verify.violations);
  (* Now smash the first object's header with a non-descriptor. *)
  st.Vm.Interp.mem.{st.Vm.Interp.from_base} <- -42;
  match Gc.Verify.check st ~phase:"post" ~frames:[] () with
  | _ -> Alcotest.fail "corrupted header must fail verification"
  | exception Vm.Vm_error.Error (Vm.Vm_error.Verify_failed { violations; _ }) ->
      check Alcotest.bool "reported" true (violations <> [])

(* ------------------------------------------------------------------ *)
(* Fault sweeps (reduced iteration counts; tools/faultgen runs the       *)
(* full-size sweep in CI)                                               *)
(* ------------------------------------------------------------------ *)

let test_sweep_cross_checked () =
  let sweeps = F.sweep_all ~cross_check:true ~seed:0xfa57 ~iterations_per_config:12 () in
  let total = List.fold_left (fun a (s : F.sweep) -> a + s.iterations) 0 sweeps in
  check Alcotest.bool "swept something" true (total >= 100);
  List.iter
    (fun (s : F.sweep) ->
      check Alcotest.int
        (Printf.sprintf "%s/%s crashes" s.program s.config)
        0 (F.count s "crashed");
      check Alcotest.int (Printf.sprintf "%s/%s hangs" s.program s.config) 0 (F.count s "hung");
      check Alcotest.int
        (Printf.sprintf "%s/%s silent divergence" s.program s.config)
        0 (F.count s "diverged"))
    sweeps

let test_sweep_uncrosschecked () =
  (* Without the load-time redundancy check, corrupt tables reach the
     collector: the decoder and verifier must still prevent every crash
     and hang (silent divergence is possible by design here — that is
     precisely why image load keeps the cross-check on). *)
  let sweeps = F.sweep_all ~cross_check:false ~seed:0xfa58 ~iterations_per_config:8 () in
  List.iter
    (fun (s : F.sweep) ->
      check Alcotest.int
        (Printf.sprintf "%s/%s crashes" s.program s.config)
        0 (F.count s "crashed");
      check Alcotest.int (Printf.sprintf "%s/%s hangs" s.program s.config) 0 (F.count s "hung"))
    sweeps

(* ------------------------------------------------------------------ *)

let () =
  let prop = QCheck_alcotest.to_alcotest in
  Alcotest.run "faults"
    [
      ( "decode totality",
        [
          prop prop_pristine_validates;
          prop prop_mutation_total;
          Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "overlong varint rejected" `Quick test_overlong_varint_rejected;
          Alcotest.test_case "find miss has context" `Quick test_find_miss_has_context;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "benchmark matrix, zero violations" `Slow test_verifier_matrix;
          Alcotest.test_case "detects corruption" `Quick test_verifier_detects_corruption;
        ] );
      ( "fault sweep",
        [
          Alcotest.test_case "cross-checked: nothing survives" `Slow test_sweep_cross_checked;
          Alcotest.test_case "uncross-checked: no crash, no hang" `Slow test_sweep_uncrosschecked;
        ] );
    ]
