(* Unit and property tests for the support library: the Fig. 3 varint
   codec, bitsets, growable arrays and the PRNG. *)

open Support

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Varint                                                              *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  let b = Varint.encode_to_bytes v in
  let v', pos = Varint.decode b 0 in
  check Alcotest.int "value" v v';
  check Alcotest.int "consumed" (Bytes.length b) pos

let test_varint_small () =
  List.iter roundtrip [ 0; 1; -1; 63; -64; 64; -65; 127; 128; -128; 1000; -1000 ]

let test_varint_boundaries () =
  (* 7-bit group boundaries: -(2^(7k-1)) and 2^(7k-1)-1 switch lengths. *)
  List.iter
    (fun k ->
      let hi = (1 lsl ((7 * k) - 1)) - 1 in
      let lo = -(1 lsl ((7 * k) - 1)) in
      check Alcotest.int (Printf.sprintf "len hi k=%d" k) k (Varint.byte_length hi);
      check Alcotest.int (Printf.sprintf "len lo k=%d" k) k (Varint.byte_length lo);
      check Alcotest.int
        (Printf.sprintf "len hi+1 k=%d" k)
        (k + 1)
        (Varint.byte_length (hi + 1));
      check Alcotest.int
        (Printf.sprintf "len lo-1 k=%d" k)
        (k + 1)
        (Varint.byte_length (lo - 1));
      roundtrip hi;
      roundtrip lo;
      roundtrip (hi + 1);
      roundtrip (lo - 1))
    [ 1; 2; 3; 4; 5 ]

let test_varint_single_byte () =
  (* The paper's claim: most ground-table entries fit in one byte; values in
     [-64, 63] must take exactly one. *)
  for v = -64 to 63 do
    check Alcotest.int "one byte" 1 (Varint.byte_length v)
  done

let test_varint_stream () =
  (* Several values encoded back to back decode in sequence. *)
  let values = [ 5; -3; 1000; 0; -70000; 42 ] in
  let buf = Buffer.create 32 in
  List.iter (Varint.encode buf) values;
  let b = Buffer.to_bytes buf in
  let pos = ref 0 in
  List.iter
    (fun v ->
      let v', p = Varint.decode b !pos in
      check Alcotest.int "stream value" v v';
      pos := p)
    values;
  check Alcotest.int "stream consumed" (Bytes.length b) !pos

let test_varint_truncated () =
  (* A continuation bit with nothing after it must raise. *)
  let b = Bytes.of_string "\x80" in
  Alcotest.check_raises "truncated" (Invalid_argument "Varint.decode: truncated encoding")
    (fun () -> ignore (Varint.decode b 0))

let test_varint_extremes () =
  (* The widest representable values take the full 9 bytes and round-trip. *)
  check Alcotest.int "max_bytes" 9 Varint.max_bytes;
  check Alcotest.int "min_int length" Varint.max_bytes (Varint.byte_length min_int);
  check Alcotest.int "max_int length" Varint.max_bytes (Varint.byte_length max_int);
  roundtrip min_int;
  roundtrip max_int;
  roundtrip (min_int + 1);
  roundtrip (max_int - 1)

let test_varint_overlong () =
  (* A run of continuation bytes longer than any 63-bit value could need
     must be rejected rather than accumulate silently (or spin). *)
  let b = Bytes.make 12 '\x80' in
  Alcotest.check_raises "overlong"
    (Invalid_argument "Varint.decode: overlong encoding (> 63 bits)") (fun () ->
      ignore (Varint.decode b 0));
  (* Exactly at the limit, a terminated 9-byte stream still decodes. *)
  let ok = Varint.encode_to_bytes min_int in
  let v, pos = Varint.decode ok 0 in
  check Alcotest.int "min_int decodes" min_int v;
  check Alcotest.int "min_int consumed" Varint.max_bytes pos

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip (arbitrary int)" ~count:1000
    QCheck.(frequency [ (3, small_signed_int); (2, int) ])
    (fun v ->
      let b = Varint.encode_to_bytes v in
      let v', pos = Varint.decode b 0 in
      v = v' && pos = Bytes.length b)

let prop_varint_length_monotone =
  QCheck.Test.make ~name:"varint length grows with magnitude" ~count:500
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let x = min a b and y = max a b in
      Varint.byte_length x <= Varint.byte_length y)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let b = Bitset.create 70 in
  check Alcotest.bool "empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 69;
  check Alcotest.bool "mem 0" true (Bitset.mem b 0);
  check Alcotest.bool "mem 63" true (Bitset.mem b 63);
  check Alcotest.bool "mem 69" true (Bitset.mem b 69);
  check Alcotest.bool "mem 1" false (Bitset.mem b 1);
  check Alcotest.int "count" 3 (Bitset.count b);
  Bitset.clear b 63;
  check Alcotest.bool "cleared" false (Bitset.mem b 63);
  check Alcotest.int "count after clear" 2 (Bitset.count b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "set out of bounds" (Invalid_argument "Bitset: index out of bounds")
    (fun () -> Bitset.set b 8);
  Alcotest.check_raises "neg" (Invalid_argument "Bitset: index out of bounds") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_bitset_bytes_roundtrip () =
  let b = Bitset.create 19 in
  List.iter (Bitset.set b) [ 0; 3; 7; 8; 15; 18 ];
  let packed = Bitset.to_bytes b in
  check Alcotest.int "packed size" 3 (Bytes.length packed);
  let b', pos = Bitset.of_bytes ~width:19 packed 0 in
  check Alcotest.bool "equal" true (Bitset.equal b b');
  check Alcotest.int "pos" 3 pos

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset to_bytes/of_bytes roundtrip" ~count:300
    QCheck.(pair (int_range 1 200) (list small_nat))
    (fun (width, indices) ->
      let b = Bitset.create width in
      List.iter (fun i -> if i < width then Bitset.set b i) indices;
      let b', _ = Bitset.of_bytes ~width (Bitset.to_bytes b) 0 in
      Bitset.equal b b')

let prop_bitset_union =
  QCheck.Test.make ~name:"union contains both operands" ~count:300
    QCheck.(triple (int_range 1 100) (list small_nat) (list small_nat))
    (fun (width, xs, ys) ->
      let a = Bitset.create width and b = Bitset.create width in
      List.iter (fun i -> if i < width then Bitset.set a i) xs;
      List.iter (fun i -> if i < width then Bitset.set b i) ys;
      let u = Bitset.copy a in
      Bitset.union_into ~dst:u b;
      Bitset.fold (fun i acc -> acc && Bitset.mem u i) a true
      && Bitset.fold (fun i acc -> acc && Bitset.mem u i) b true)

(* ------------------------------------------------------------------ *)
(* Growarr, Prng                                                       *)
(* ------------------------------------------------------------------ *)

let test_growarr () =
  let g = Growarr.create ~dummy:(-1) in
  for i = 0 to 99 do
    let idx = Growarr.push g (i * 2) in
    check Alcotest.int "push index" i idx
  done;
  check Alcotest.int "length" 100 (Growarr.length g);
  check Alcotest.int "get 50" 100 (Growarr.get g 50);
  Growarr.set g 50 7;
  check Alcotest.int "set/get" 7 (Growarr.get g 50);
  check Alcotest.int "to_array" 100 (Array.length (Growarr.to_array g))

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_bounds () =
  let p = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int p 10 in
    check Alcotest.bool "in range" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p 0))

let () =
  Alcotest.run "support"
    [
      ( "varint",
        [
          Alcotest.test_case "small values" `Quick test_varint_small;
          Alcotest.test_case "group boundaries" `Quick test_varint_boundaries;
          Alcotest.test_case "single byte range" `Quick test_varint_single_byte;
          Alcotest.test_case "stream" `Quick test_varint_stream;
          Alcotest.test_case "truncated" `Quick test_varint_truncated;
          Alcotest.test_case "extreme values" `Quick test_varint_extremes;
          Alcotest.test_case "overlong rejected" `Quick test_varint_overlong;
          QCheck_alcotest.to_alcotest prop_varint_roundtrip;
          QCheck_alcotest.to_alcotest prop_varint_length_monotone;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "bytes roundtrip" `Quick test_bitset_bytes_roundtrip;
          QCheck_alcotest.to_alcotest prop_bitset_roundtrip;
          QCheck_alcotest.to_alcotest prop_bitset_union;
        ] );
      ( "misc",
        [
          Alcotest.test_case "growarr" `Quick test_growarr;
          Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
        ] );
    ]
