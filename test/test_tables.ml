(* GC table construction, encoding and decoding (the paper's §5). *)

module L = Gcmaps.Loc
module RM = Gcmaps.Rawmaps
module E = Gcmaps.Encode
module D = Gcmaps.Decode

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Loc encoding (Fig. 4)                                               *)
(* ------------------------------------------------------------------ *)

let test_loc_roundtrip () =
  List.iter
    (fun l -> check Alcotest.bool (L.to_string l) true (L.equal l (L.of_int (L.to_int l))))
    [
      L.Lreg 0;
      L.Lreg 11;
      L.Lmem (L.FP, 0);
      L.Lmem (L.FP, -30);
      L.Lmem (L.SP, 4);
      L.Lmem (L.AP, 2);
      L.Lmem (L.FP, 1000);
      L.Lmem (L.AP, -1);
    ]

let test_loc_one_byte () =
  (* Fig. 4's point: typical frame offsets fit one packed byte. Offsets in
     [-16, 15] with a 2-bit base tag make a 7-bit payload. *)
  for off = -16 to 15 do
    let v = L.to_int (L.Lmem (L.FP, off)) in
    check Alcotest.int (Printf.sprintf "off %d" off) 1 (Support.Varint.byte_length v)
  done

(* ------------------------------------------------------------------ *)
(* Raw map fixtures                                                    *)
(* ------------------------------------------------------------------ *)

let gcp ?(stack = []) ?(regs = []) ?(derivs = []) ?(variants = []) ~index ~offset () : RM.gcpoint
    =
  {
    RM.gp_index = index;
    gp_offset = offset;
    stack_ptrs = stack;
    reg_ptrs = regs;
    derivs;
    variants;
  }

let proc ?(frame = 10) ?(nargs = 2) ?(saves = [ (6, -1) ]) ?(code = 200) gcpoints : RM.proc_maps
    =
  {
    RM.pm_fid = 0;
    pm_name = "p";
    pm_frame_size = frame;
    pm_nargs = nargs;
    pm_saves = saves;
    pm_code_bytes = code;
    pm_gcpoints = gcpoints;
  }

let d1 = { RM.target = L.Lreg 3; plus = [ L.Lmem (L.FP, -2) ]; minus = [] }
let d2 =
  {
    RM.target = L.Lmem (L.FP, -5);
    plus = [ L.Lreg 7; L.Lreg 8 ];
    minus = [ L.Lmem (L.AP, 1) ];
  }

let sample_proc =
  proc
    [
      gcp ~index:3 ~offset:10
        ~stack:[ L.Lmem (L.FP, -1); L.Lmem (L.FP, -3) ]
        ~regs:[ 2; 7 ] ~derivs:[ d1 ] ();
      gcp ~index:9 ~offset:40
        ~stack:[ L.Lmem (L.FP, -1); L.Lmem (L.FP, -3) ]
        ~regs:[ 2; 7 ] ();
      gcp ~index:15 ~offset:77 ~stack:[ L.Lmem (L.FP, -3) ] ~derivs:[ d1; d2 ] ();
      gcp ~index:20 ~offset:99 ();
    ]

(* Decoding loses gp_index, and the δ-main scheme returns stack pointers in
   ground-table order; normalize both sides for comparison. *)
let strip (g : RM.gcpoint) =
  { g with RM.gp_index = -1; stack_ptrs = List.sort L.compare g.RM.stack_ptrs }

let roundtrip_config scheme opts pm =
  let ep = E.encode_proc scheme opts pm in
  let dp, gps = D.decode_proc scheme opts ep in
  check Alcotest.int "frame size" pm.RM.pm_frame_size dp.D.dp_frame_size;
  check Alcotest.int "nargs" pm.RM.pm_nargs dp.D.dp_nargs;
  check Alcotest.bool "saves" true (dp.D.dp_saves = pm.RM.pm_saves);
  check Alcotest.int "n gcpoints" (List.length pm.RM.pm_gcpoints) (List.length gps);
  List.iter2
    (fun orig got ->
      check Alcotest.bool
        (Printf.sprintf "gcpoint@%d" orig.RM.gp_offset)
        true
        (strip orig = strip got))
    pm.RM.pm_gcpoints gps

let test_roundtrip_all_configs () =
  List.iter
    (fun (_, scheme, opts) -> roundtrip_config scheme opts sample_proc)
    Gcmaps.Table_stats.configs

let test_find_by_offset () =
  let tables = E.encode_program E.Delta_main { E.packing = true; previous = true }
      [| sample_proc |] [| 0 |] in
  let _, gp = D.find tables ~fid:0 ~code_offset:77 in
  check Alcotest.int "offset" 77 gp.RM.gp_offset;
  check Alcotest.int "derivs" 2 (List.length gp.RM.derivs);
  (match D.find tables ~fid:0 ~code_offset:78 with
  | exception D.Table_corrupt { fid = 0; offset = 78; _ } -> ()
  | exception D.Table_corrupt _ -> Alcotest.fail "miss must carry fid/offset context"
  | _ -> Alcotest.fail "non-gc-point offset must not resolve")

let test_previous_compression_smaller () =
  (* sample_proc has two identical adjacent tables; Previous must shrink the
     encoding. *)
  let sz opts = Bytes.length (E.encode_proc E.Delta_main opts sample_proc).E.ep_stream in
  let plain = sz { E.packing = true; previous = false } in
  let prev = sz { E.packing = true; previous = true } in
  check Alcotest.bool "previous smaller" true (prev < plain)

let test_packing_much_smaller () =
  let sz opts = Bytes.length (E.encode_proc E.Delta_main opts sample_proc).E.ep_stream in
  let words = sz { E.packing = false; previous = false } in
  let packed = sz { E.packing = true; previous = false } in
  check Alcotest.bool "packed < half of words" true (packed * 2 < words)

let test_order_derivs () =
  (* b derived from a's target: b must come first. *)
  let a = { RM.target = L.Lreg 2; plus = [ L.Lmem (L.FP, -1) ]; minus = [] } in
  let b = { RM.target = L.Lreg 3; plus = [ L.Lreg 2 ]; minus = [] } in
  let sorted = RM.order_derivs [ a; b ] in
  (match sorted with
  | [ x; y ] ->
      check Alcotest.bool "b before a" true (x.RM.target = L.Lreg 3 && y.RM.target = L.Lreg 2)
  | _ -> Alcotest.fail "length");
  (* Same answer regardless of input order. *)
  let sorted2 = RM.order_derivs [ b; a ] in
  check Alcotest.bool "stable" true (sorted = sorted2)

let test_variants_roundtrip () =
  let v =
    {
      RM.path_loc = L.Lmem (L.FP, -4);
      cases = [ (1, d1); (2, { d1 with RM.target = L.Lreg 4 }) ];
    }
  in
  let pm = proc [ gcp ~index:1 ~offset:5 ~variants:[ v ] () ] in
  List.iter
    (fun (_, scheme, opts) ->
      let ep = E.encode_proc scheme opts pm in
      let _, gps = D.decode_proc scheme opts ep in
      match gps with
      | [ g ] -> check Alcotest.bool "variant" true (g.RM.variants = [ v ])
      | _ -> Alcotest.fail "count")
    Gcmaps.Table_stats.configs

(* ------------------------------------------------------------------ *)
(* Property: random raw maps round-trip under every configuration      *)
(* ------------------------------------------------------------------ *)

let gen_loc =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> L.Lreg r) (int_range 0 11);
        map2
          (fun b o ->
            L.Lmem ((match b with 0 -> L.FP | 1 -> L.SP | _ -> L.AP), o))
          (int_range 0 2) (int_range (-200) 200);
      ])

let gen_deriv =
  QCheck.Gen.(
    map3
      (fun t p m -> { RM.target = t; plus = p; minus = m })
      gen_loc
      (list_size (int_range 0 3) gen_loc)
      (list_size (int_range 0 2) gen_loc))

let gen_gcpoint =
  QCheck.Gen.(
    map
      (fun (stack, regs, derivs) ->
        gcp ~index:0 ~offset:0
          ~stack:(List.sort_uniq L.compare stack)
          ~regs:(List.sort_uniq compare regs)
          ~derivs ())
      (triple
         (list_size (int_range 0 6) gen_loc)
         (list_size (int_range 0 4) (int_range 0 11))
         (list_size (int_range 0 3) gen_deriv)))

let gen_proc =
  QCheck.Gen.(
    map2
      (fun gps (frame, nargs) ->
        let gps =
          List.mapi (fun i g -> { g with RM.gp_offset = (i + 1) * 7; gp_index = i }) gps
        in
        proc ~frame ~nargs gps)
      (list_size (int_range 0 8) gen_gcpoint)
      (pair (int_range 0 40) (int_range 0 6)))

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip, random maps, all configs" ~count:150
    (QCheck.make gen_proc) (fun pm ->
      List.for_all
        (fun (_, scheme, opts) ->
          let ep = E.encode_proc scheme opts pm in
          let _, gps = D.decode_proc scheme opts ep in
          List.length gps = List.length pm.RM.pm_gcpoints
          && List.for_all2 (fun o g -> strip o = strip g) pm.RM.pm_gcpoints gps)
        Gcmaps.Table_stats.configs)

let prop_pp_never_larger =
  QCheck.Test.make ~name:"packing+previous never larger than packing alone" ~count:150
    (QCheck.make gen_proc) (fun pm ->
      let sz opts = Bytes.length (E.encode_proc E.Delta_main opts pm).E.ep_stream in
      sz { E.packing = true; previous = true } <= sz { E.packing = true; previous = false })

let prop_packing_never_larger =
  QCheck.Test.make ~name:"packing never larger than plain words" ~count:150
    (QCheck.make gen_proc) (fun pm ->
      let sz opts = Bytes.length (E.encode_proc E.Delta_main opts pm).E.ep_stream in
      sz { E.packing = true; previous = false } <= sz { E.packing = false; previous = false })

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_table_stats () =
  let s = Gcmaps.Table_stats.compute [| sample_proc |] in
  check Alcotest.int "size" 200 s.Gcmaps.Table_stats.size_bytes;
  check Alcotest.int "ngcpoints" 4 s.Gcmaps.Table_stats.ngcpoints;
  check Alcotest.int "ngc (non-empty)" 3 s.Gcmaps.Table_stats.ngc;
  (* 2+2, 2+2, 1+0 pointers *)
  check Alcotest.int "nptrs" 9 s.Gcmaps.Table_stats.nptrs;
  (* delta tables: gcpoint2 identical to 1 -> 2 emitted *)
  check Alcotest.int "ndel" 2 s.Gcmaps.Table_stats.ndel;
  check Alcotest.int "nreg" 1 s.Gcmaps.Table_stats.nreg;
  check Alcotest.int "nder" 2 s.Gcmaps.Table_stats.nder

let () =
  Alcotest.run "tables"
    [
      ( "loc",
        [
          Alcotest.test_case "roundtrip" `Quick test_loc_roundtrip;
          Alcotest.test_case "one byte typical" `Quick test_loc_one_byte;
        ] );
      ( "encode/decode",
        [
          Alcotest.test_case "roundtrip all configs" `Quick test_roundtrip_all_configs;
          Alcotest.test_case "find by offset" `Quick test_find_by_offset;
          Alcotest.test_case "previous shrinks" `Quick test_previous_compression_smaller;
          Alcotest.test_case "packing shrinks" `Quick test_packing_much_smaller;
          Alcotest.test_case "deriv ordering" `Quick test_order_derivs;
          Alcotest.test_case "variants roundtrip" `Quick test_variants_roundtrip;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_pp_never_larger;
          QCheck_alcotest.to_alcotest prop_packing_never_larger;
        ] );
      ("stats", [ Alcotest.test_case "table stats" `Quick test_table_stats ]);
    ]
