(* mmc — the M3L compiler driver.

   Compiles an M3L source file and dumps the requested artifacts: MIR,
   machine code, gc tables, or table statistics.

     mmc file.m3l                 -- compile, report sizes
     mmc -O file.m3l              -- with the optimizer
     mmc --dump-mir file.m3l      -- print the (optimized) MIR
     mmc --dump-code file.m3l     -- print the UVM assembly
     mmc --dump-tables file.m3l   -- print the per-gc-point tables
     mmc --stats file.m3l         -- Table-1-style statistics and sizes *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_compiler file optimize checks no_gc_restrict loop_gcpoints dump_mir dump_code
    dump_tables stats timings =
  let options =
    {
      Driver.Compile.default_options with
      optimize;
      checks;
      gc_restrict = not no_gc_restrict;
      loop_gcpoints;
    }
  in
  if timings then Telemetry.Control.enable ();
  try
    let source = read_file file in
    let prog = Driver.Compile.to_mir ~options source in
    if dump_mir then
      Array.iter
        (fun f -> print_string (Mir.Mir_print.func_to_string prog f))
        prog.Mir.Ir.funcs;
    let img = Driver.Compile.image_of_mir ~options prog in
    if dump_code then begin
      Array.iteri
        (fun i insn ->
          let fid = Vm.Image.proc_of_code_index img i in
          if img.Vm.Image.procs.(fid).Vm.Image.pi_entry = i then
            Printf.printf "%s:\n" img.Vm.Image.procs.(fid).Vm.Image.pi_name;
          Format.printf "  %4d: %a@." i
            (Machine.Insn.pp ~callee_name:(function
              | `Proc fid -> Some img.Vm.Image.procs.(fid).Vm.Image.pi_name))
            insn)
        img.Vm.Image.code
    end;
    if dump_tables then
      Array.iter
        (fun (pm : Gcmaps.Rawmaps.proc_maps) ->
          Printf.printf "procedure %s (frame=%d words, %d args, code=%d bytes)\n"
            pm.Gcmaps.Rawmaps.pm_name pm.Gcmaps.Rawmaps.pm_frame_size
            pm.Gcmaps.Rawmaps.pm_nargs pm.Gcmaps.Rawmaps.pm_code_bytes;
          List.iter
            (fun gp -> Format.printf "  %a@." Gcmaps.Rawmaps.pp_gcpoint gp)
            pm.Gcmaps.Rawmaps.pm_gcpoints)
        img.Vm.Image.rawmaps;
    if stats then begin
      let s = Gcmaps.Table_stats.compute img.Vm.Image.rawmaps in
      Printf.printf "code bytes : %d\n" s.Gcmaps.Table_stats.size_bytes;
      Printf.printf "gc-points  : %d (%d with non-empty tables)\n"
        s.Gcmaps.Table_stats.ngcpoints s.Gcmaps.Table_stats.ngc;
      Printf.printf "NPTRS=%d NDEL=%d NREG=%d NDER=%d\n" s.Gcmaps.Table_stats.nptrs
        s.Gcmaps.Table_stats.ndel s.Gcmaps.Table_stats.nreg s.Gcmaps.Table_stats.nder;
      List.iter
        (fun (name, pct) -> Printf.printf "%-16s %6.1f%% of code\n" name pct)
        (Gcmaps.Table_stats.size_percentages img.Vm.Image.rawmaps)
    end;
    if timings then begin
      Printf.printf "pass timings (wall clock):\n";
      print_string (Telemetry.Timer.to_text ())
    end;
    if not (dump_mir || dump_code || dump_tables || stats || timings) then
      Printf.printf "%s: %d instructions, %d code bytes, %d bytes of gc tables\n" file
        (Array.length img.Vm.Image.code)
        img.Vm.Image.code_bytes
        (Gcmaps.Encode.total_table_bytes img.Vm.Image.tables);
    `Ok ()
  with
  | M3l.M3l_error.Lex_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: lexical error: %s" (M3l.Srcloc.to_string loc) m)
  | M3l.M3l_error.Parse_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: parse error: %s" (M3l.Srcloc.to_string loc) m)
  | M3l.M3l_error.Type_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: type error: %s" (M3l.Srcloc.to_string loc) m)
  | Sys_error m -> `Error (false, m)

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let optimize = Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the optimizer.")
let checks =
  Arg.(value & opt bool true & info [ "checks" ] ~doc:"NIL/bounds checks (default on).")
let no_gc_restrict =
  Arg.(
    value & flag
    & info [ "no-gc-restrict" ]
        ~doc:"Disable gc restrictions (section 6.2 measurement mode; unsafe for gc).")
let loop_gcpoints =
  Arg.(value & flag & info [ "loop-gcpoints" ] ~doc:"Guarantee a gc-point in every loop.")
let dump_mir = Arg.(value & flag & info [ "dump-mir" ] ~doc:"Print the MIR.")
let dump_code = Arg.(value & flag & info [ "dump-code" ] ~doc:"Print UVM assembly.")
let dump_tables =
  Arg.(value & flag & info [ "dump-tables" ] ~doc:"Print the per-gc-point gc tables.")
let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print table statistics.")
let timings =
  Arg.(value & flag & info [ "timings" ] ~doc:"Print per-pass compile timings.")

let cmd =
  let doc = "compile M3L and inspect the generated gc tables" in
  Cmd.v
    (Cmd.info "mmc" ~doc)
    Term.(
      ret
        (const run_compiler $ file $ optimize $ checks $ no_gc_restrict $ loop_gcpoints
       $ dump_mir $ dump_code $ dump_tables $ stats $ timings))

let () = exit (Cmd.eval cmd)
