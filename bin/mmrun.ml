(* mmrun — compile and execute an M3L program on the UVM.

     mmrun file.m3l
     mmrun -O --heap 4096 --collector conservative file.m3l
     mmrun --gc-stats file.m3l
     mmrun --trace out.json --metrics file.m3l *)

open Cmdliner
module T = Telemetry

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Per-collection report, read back from the Metrics histograms the
   collectors populate (the single source of truth for gc numbers). The
   conservative collector has no phase breakdown; missing samples print
   as blanks. *)
let print_engine_stats ~engine ~elapsed_ns () =
  Printf.eprintf "engine       : %s\n" engine;
  let insns = T.Metrics.counter_value "vm.instructions" in
  if elapsed_ns > 0L then
    Printf.eprintf "throughput   : %.1f M insns/s (%d insns in %.2f ms)\n"
      (float_of_int insns /. (Int64.to_float elapsed_ns /. 1e3))
      insns
      (Int64.to_float elapsed_ns /. 1e6);
  if engine = "threaded" then begin
    Printf.eprintf "translation  : %.1f us, %d closures, %d pairs fused\n"
      (float_of_int (T.Metrics.counter_value "vm.translate_ns") /. 1e3)
      (T.Metrics.counter_value "vm.closures")
      (T.Metrics.counter_value "vm.fused_pairs");
    let kinds =
      List.filter_map
        (fun k ->
          match T.Metrics.counter_value ("vm.fuse." ^ k) with
          | 0 -> None
          | n -> Some (Printf.sprintf "%s %d" k n))
        Vm.Threaded.fuse_kind_names
    in
    Printf.eprintf "fused execs  : %d (pairs: %s)\n"
      (T.Metrics.counter_value "vm.fused_execs")
      (if kinds = [] then "none" else String.concat ", " kinds)
  end

let print_gc_stats ?placement () =
  let samples name = T.Metrics.samples (T.Metrics.histogram name) in
  let pauses = samples "gc.pause_ns" in
  let n = Array.length pauses in
  let minors = T.Metrics.counter_value "gc.minor_collections" in
  Printf.eprintf "collections  : %d\n" (T.Metrics.counter_value "gc.collections");
  if n > 0 then begin
    Printf.eprintf "%4s %4s %10s %9s %10s %9s %10s %8s %8s %7s\n" "#" "kind"
      "pause us" "walk us" "underiv us" "copy us" "rederiv us" "words" "objects"
      "frames";
    let walk = samples "gc.stackwalk_ns" in
    let underive = samples "gc.underive_ns" in
    let copy = samples "gc.copy_ns" in
    let rederive = samples "gc.rederive_ns" in
    let words = samples "gc.words_copied" in
    let objects = samples "gc.objects_copied" in
    let frames = samples "gc.frames" in
    let is_minor = samples "gc.is_minor" in
    let us arr i =
      if i < Array.length arr then Printf.sprintf "%.1f" (arr.(i) /. 1e3) else "-"
    in
    let int_of arr i =
      if i < Array.length arr then Printf.sprintf "%.0f" arr.(i) else "-"
    in
    for i = 0 to n - 1 do
      let kind =
        if i < Array.length is_minor then
          if is_minor.(i) = 1.0 then "min" else "maj"
        else "-"
      in
      Printf.eprintf "%4d %4s %10s %9s %10s %9s %10s %8s %8s %7s\n" (i + 1) kind
        (us pauses i) (us walk i) (us underive i) (us copy i) (us rederive i)
        (int_of words i) (int_of objects i) (int_of frames i)
    done
  end;
  (* Pause-time distribution from the log-scaled bucket histograms —
     immune to the raw-sample cap, so the quantiles stay exact-enough
     (one sub-bucket, 25%) at any collection count. *)
  let pct_row label name =
    match T.Metrics.find_histogram name with
    | Some h when h.T.Metrics.h_count > 0 ->
        Printf.eprintf
          "pauses %-6s: n=%-6d p50 %8.1f us  p90 %8.1f us  p99 %8.1f us  max %8.1f us\n"
          label h.T.Metrics.h_count
          (T.Metrics.percentile h 0.50 /. 1e3)
          (T.Metrics.percentile h 0.90 /. 1e3)
          (T.Metrics.percentile h 0.99 /. 1e3)
          (h.T.Metrics.h_max /. 1e3)
    | _ -> ()
  in
  pct_row "all" "gc.pause_ns";
  pct_row "minor" "gc.minor_pause_ns";
  pct_row "full" "gc.major_pause_ns";
  pct_row "slice" "gc.slice_ns";
  pct_row "flip" "gc.flip_ns";
  (* Incremental mode: make budget violations visible at a glance. *)
  let slices = T.Metrics.counter_value "gc.slices" in
  if slices > 0 then begin
    let budget = T.Metrics.counter_value "gc.budget_us" in
    let max_slice_us =
      match T.Metrics.find_histogram "gc.slice_ns" with
      | Some h -> h.T.Metrics.h_max /. 1e3
      | None -> 0.0
    in
    Printf.eprintf
      "budget       : %s, max slice: %.1f us, overruns: %d\n"
      (if budget > 0 then Printf.sprintf "%d us" budget else "none (work-paced)")
      max_slice_us
      (T.Metrics.counter_value "gc.slice_overruns");
    Printf.eprintf
      "incremental  : %d slices, %d forced STW finishes, %d mark-stack spills\n"
      slices
      (T.Metrics.counter_value "gc.forced_finish")
      (T.Metrics.counter_value "gc.mark_spills")
  end;
  if minors > 0 then begin
    let h name = T.Metrics.histogram name in
    let minor_pause = h "gc.minor_pause_ns" and major_pause = h "gc.major_pause_ns" in
    Printf.eprintf
      "minor/major  : %d minor (mean %.1f us, %.0f words promoted), %d major (mean \
       %.1f us, %.0f words copied)\n"
      minors
      (T.Metrics.mean minor_pause /. 1e3)
      (h "gc.minor_words").T.Metrics.h_sum
      (T.Metrics.counter_value "gc.major_collections")
      (T.Metrics.mean major_pause /. 1e3)
      (h "gc.major_words").T.Metrics.h_sum;
    Printf.eprintf "write barrier: %d executed, %d remembered-set inserts\n"
      (T.Metrics.counter_value "gc.barrier_execs")
      (T.Metrics.counter_value "gc.remset_inserts");
    (* Profile-guided placement: which sites bypassed the nursery and how
       many words they kept out of the minor copy loop. *)
    Printf.eprintf
      "placement    : %s — %d pretenure sites (%d words), %d pool sites (%d words)\n"
      (match placement with
      | Some (src, _) -> "policy from " ^ src
      | None -> "none")
      (T.Metrics.counter_value "gc.pretenure_sites")
      (T.Metrics.counter_value "gc.pretenured_words")
      (T.Metrics.counter_value "gc.pool_sites")
      (T.Metrics.counter_value "gc.pool_words")
  end;
  let elim_seen = T.Metrics.counter_value "barrier_elim.stores_seen" in
  if elim_seen > 0 then
    Printf.eprintf "barrier elim : %d of %d pointer stores statically barrier-free\n"
      (T.Metrics.counter_value "barrier_elim.stores_elided")
      elim_seen;
  let hist_sum name = (T.Metrics.histogram name).T.Metrics.h_sum in
  Printf.eprintf "instructions : %d\n" (T.Metrics.counter_value "vm.instructions");
  Printf.eprintf "allocations  : %d (%d words)\n"
    (T.Metrics.counter_value "vm.allocations")
    (T.Metrics.counter_value "vm.alloc_words");
  Printf.eprintf "words copied : %.0f\n" (hist_sum "gc.words_copied");
  (* Copy bandwidth across the whole run, serial or parallel: the
     gc.copy_words counter and the exact sum of the per-collection copy
     phase times. *)
  let copy_words = T.Metrics.counter_value "gc.copy_words" in
  let copy_ns = hist_sum "gc.copy_ns" in
  if copy_ns > 0.0 then
    Printf.eprintf
      "copy bandwdth: %.1f Mwords/s (%d words in %.0f us copy time, %d workers)\n"
      (float_of_int copy_words /. (copy_ns /. 1e3))
      copy_words (copy_ns /. 1e3) (Gc.Gc_pool.workers ());
  Printf.eprintf "frames traced: %d\n" (T.Metrics.counter_value "gc.frames_traced");
  Printf.eprintf "derived vals : %d un-derived, %d re-derived\n"
    (T.Metrics.counter_value "derived.underived")
    (T.Metrics.counter_value "derived.rederived");
  Printf.eprintf "table decode : %d lookups, %d bytes scanned\n"
    (T.Metrics.counter_value "decode.finds")
    (T.Metrics.counter_value "decode.bytes");
  Printf.eprintf "decode cache : %d hits, %d misses, %d stream bytes cached%s\n"
    (T.Metrics.counter_value "decode.cache_hits")
    (T.Metrics.counter_value "decode.cache_misses")
    (T.Metrics.counter_value "decode.cache_bytes")
    (if Gcmaps.Decode_cache.enabled () then "" else " (disabled)");
  Printf.eprintf "gc time      : %.0f us (stack walk %.0f us, un/re-derive %.0f us)\n"
    (hist_sum "gc.pause_ns" /. 1e3)
    (hist_sum "gc.stackwalk_ns" /. 1e3)
    ((hist_sum "gc.underive_ns" +. hist_sum "gc.rederive_ns") /. 1e3);
  (* Memory-pressure accounting, printed only when something happened. *)
  let resizes = T.Metrics.counter_value "gc_pressure.resizes" in
  let retries = T.Metrics.counter_value "gc_pressure.retries" in
  let emergency = T.Metrics.counter_value "gc_pressure.emergency_full" in
  let replays = T.Metrics.counter_value "gc_pressure.serial_replays" in
  if resizes + retries + emergency + replays > 0 then
    Printf.eprintf
      "gc pressure  : %d resizes (%d words grown, %d shrinks), %d retry \
       collections, %d emergency full, %d serial replays (%d worker faults, %d \
       timeouts)\n"
      resizes
      (T.Metrics.counter_value "gc_pressure.grow_words")
      (T.Metrics.counter_value "gc_pressure.shrinks")
      retries emergency replays
      (T.Metrics.counter_value "gc_pressure.worker_faults")
      (T.Metrics.counter_value "gc_pressure.worker_timeouts")

let run file optimize checks no_gc_restrict heap heap_grow heap_max stack collector
    gen incremental pause_budget nursery gc_workers no_barrier_elim no_threaded
    gc_stats trace metrics no_decode_cache verify_heap verify_pre profile
    census_every policy pretenure_adaptive fuel =
  if no_decode_cache then Gcmaps.Decode_cache.set_enabled false;
  (match gc_workers with Some n -> Gc.Gc_pool.set_workers n | None -> ());
  if no_threaded then Vm.Threaded.set_enabled false;
  if verify_heap then Gc.Verify.set_post true;
  if verify_pre then Gc.Verify.set_pre true;
  let options =
    {
      Driver.Compile.default_options with
      optimize;
      checks;
      gc_restrict = not no_gc_restrict;
      barrier_elim = not no_barrier_elim;
      heap_words = heap;
      stack_words = stack;
    }
  in
  let collector =
    match collector with
    | "precise" ->
        if incremental && gen then begin
          T.Log.warn_once
            "--gen and --incremental both given: the incremental collector \
             wins; drop --incremental for generational mode";
          Driver.Compile.Incremental
        end
        else if incremental then Driver.Compile.Incremental
        else if gen then Driver.Compile.Generational
        else Driver.Compile.Precise
    | "generational" | "gen" -> Driver.Compile.Generational
    | "incremental" | "inc" -> Driver.Compile.Incremental
    | "conservative" -> Driver.Compile.Conservative
    | "none" -> Driver.Compile.No_gc
    | other -> failwith ("unknown collector " ^ other)
  in
  (* The parallel copy pool drives the moving collectors' copy phase; the
     incremental collector marks in place on slices that are serial by
     design, so extra workers would silently do nothing. Warn instead. *)
  (if collector = Driver.Compile.Incremental || Gc.Incremental.env_enabled ()
   then
     match gc_workers with
     | Some n when n > 1 ->
         T.Log.warn_once
           "--gc-workers > 1 has no effect with the incremental collector: \
            slices run serially on the mutator; ignoring the worker pool"
     | _ -> ());
  if gc_stats || metrics || trace <> None || profile <> None then T.Control.enable ();
  try
    let image = Driver.Compile.compile ~options (read_file file) in
    (* Attach a profiler only when asked: with --profile off the machine
       carries no profiler and the run is byte-identical to pre-profiling
       behavior. *)
    let prof =
      match profile with
      | None -> None
      | Some _ ->
          let p = Driver.Compile.profile_for image in
          Profile.set_census_every p census_every;
          Some p
    in
    let pol = Option.map Driver.Compile.policy_of_file policy in
    let t0 = T.Control.now_ns () in
    let r =
      Driver.Compile.run ~collector ?nursery_words:nursery
        ?pause_budget_us:pause_budget ?profile:prof ~fuel
        ?heap_grow:(if heap_grow then Some true else None)
        ?heap_max_words:heap_max ?policy:pol
        ?adaptive:(if pretenure_adaptive >= 1 then Some pretenure_adaptive else None)
        image
    in
    let elapsed_ns = Int64.sub (T.Control.now_ns ()) t0 in
    print_string r.Driver.Compile.output;
    (match trace with
    | Some path -> T.Trace.write_chrome_file path
    | None -> ());
    (match (profile, prof) with
    | Some path, Some p ->
        let oc = open_out path in
        output_string oc (T.Json.to_string (Profile.to_json p));
        output_char oc '\n';
        close_out oc
    | _ -> ());
    if gc_stats then begin
      print_engine_stats ~engine:r.Driver.Compile.engine ~elapsed_ns ();
      print_gc_stats ?placement:r.Driver.Compile.placement ()
    end;
    if metrics then prerr_string (T.Metrics.to_text ());
    `Ok ()
  with
  | M3l.M3l_error.Lex_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: lexical error: %s" (M3l.Srcloc.to_string loc) m)
  | M3l.M3l_error.Parse_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: parse error: %s" (M3l.Srcloc.to_string loc) m)
  | M3l.M3l_error.Type_error (loc, m) ->
      `Error (false, Printf.sprintf "%s: type error: %s" (M3l.Srcloc.to_string loc) m)
  (* Runtime failures exit directly with the documented per-class codes
     (see Vm_error.exit_code; guest-program traps use 3), so harnesses
     assert on the exit status instead of string-matching stderr.
     Compile-time and CLI errors keep cmdliner's own codes. *)
  | Vm.Interp.Guest_error m ->
      Printf.eprintf "mmrun: runtime error: %s\n%!" m;
      exit 3
  | Vm.Vm_error.Error e ->
      Printf.eprintf "mmrun: vm error: %s\n%!" (Vm.Vm_error.to_string e);
      exit (Vm.Vm_error.exit_code e)
  | Gcmaps.Decode.Table_corrupt { fid; offset; pos; reason } ->
      Printf.eprintf
        "mmrun: corrupt gc table (proc %d, code offset %d, stream byte %d): %s\n%!"
        fid offset pos reason;
      exit (Vm.Vm_error.exit_code (Vm.Vm_error.Corrupt_table { fid; offset; reason }))
  | Policy.Policy_error m -> `Error (false, Printf.sprintf "bad policy file: %s" m)
  | T.Json.Parse_error m -> `Error (false, Printf.sprintf "bad policy file: %s" m)
  | Sys_error m -> `Error (false, m)

let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
let optimize = Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the optimizer.")
let checks = Arg.(value & opt bool true & info [ "checks" ] ~doc:"NIL/bounds checks.")
let no_gc_restrict =
  Arg.(
    value & flag
    & info [ "no-gc-restrict" ]
        ~doc:"Run code compiled without gc restrictions (unsafe; warns).")
let heap =
  Arg.(value & opt int 65536 & info [ "heap" ] ~doc:"Words per semispace.")
let heap_grow =
  Arg.(
    value & flag
    & info [ "heap-grow" ]
        ~doc:
          "Adaptive heap: grow the semispaces under memory pressure (and \
           shrink them when mostly empty) instead of failing with \
           heap-exhausted, up to --heap-max. The heap is the last region of \
           the memory map, so resizing moves no address: a grown run is \
           byte-identical to one started with the larger heap. Also enabled \
           by MM_HEAP_GROW=1 or by setting MM_HEAP_MAX.")
let heap_max =
  Arg.(
    value
    & opt (some int) None
    & info [ "heap-max" ] ~docv:"WORDS"
        ~doc:
          "Hard cap in words per semispace for --heap-grow (default 4194304; \
           also MM_HEAP_MAX, which implies --heap-grow). Allocation fails \
           with the typed heap-exhausted error (exit code 13) only at the \
           cap.")
let stack = Arg.(value & opt int 16384 & info [ "stack" ] ~doc:"Stack words.")
let collector =
  Arg.(
    value
    & opt string "precise"
    & info [ "collector" ] ~doc:"precise | generational | conservative | none.")
let gen =
  Arg.(
    value & flag
    & info [ "gen" ]
        ~doc:
          "Generational mode: nursery allocation, minor collections through the \
           same gc-point tables plus the remembered set, full compaction as \
           fallback. Same image, byte-identical tables. Shorthand for \
           --collector generational; also enabled by MM_GEN=1.")
let incremental =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Incremental mode: tri-color mark-sweep collection in bounded \
           slices at gc-points, with the existing write barrier acting as a \
           Dijkstra insertion barrier. Non-moving; program output and \
           instruction counts are byte-identical to the stop-the-world \
           collectors. Shorthand for --collector incremental; also enabled \
           by MM_GC_INCREMENTAL=1.")
let pause_budget =
  Arg.(
    value
    & opt (some int) None
    & info [ "pause-budget-us" ] ~docv:"MICROSECONDS"
        ~doc:
          "Hard wall-clock budget per incremental collection slice. When set, \
           a slice stops at the deadline (checked every few scanned objects, \
           so the documented slack is one scan granule) and remaining work \
           carries to the next gc-point; overruns are counted and shown by \
           --gc-stats. Without it, slices are paced by a deterministic work \
           quota (the default: identical heap images across engines). Also \
           set by MM_PAUSE_BUDGET_US.")
let nursery =
  Arg.(
    value
    & opt (some int) None
    & info [ "nursery" ] ~docv:"WORDS"
        ~doc:
          "Nursery size in words for generational mode (default: a quarter \
           semispace, floored at 300 words).")
let gc_workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "gc-workers" ] ~docv:"N"
        ~doc:
          "Worker domains for the full-collection copy phase. 1 (the default) \
           is the exact serial collector; any other count produces the same \
           heap layout, outputs and errors — the level-synchronized parallel \
           scan reproduces the serial copy order. Also set by MM_GC_WORKERS.")
let no_barrier_elim =
  Arg.(
    value & flag
    & info [ "no-barrier-elim" ]
        ~doc:
          "Disable the static write-barrier elimination pass (keep every \
           compiler-emitted barrier).")
let no_threaded =
  Arg.(
    value & flag
    & info [ "no-threaded" ]
        ~doc:
          "Execute on the reference switch interpreter instead of the \
           pre-translated threaded-code engine. Same machine state, same \
           gc tables, same output — only dispatch changes. Also disabled \
           by MM_THREADED=0.")
let gc_stats =
  Arg.(
    value & flag
    & info [ "gc-stats" ] ~doc:"Report per-collection and cumulative gc statistics.")
let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON file of gc and vm spans.")
let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the telemetry metrics summary.")
let no_decode_cache =
  Arg.(
    value & flag
    & info [ "no-decode-cache" ]
        ~doc:
          "Disable the memoized pc→table decode cache: every frame lookup \
           re-scans the procedure's table stream, reproducing the paper's \
           uncached decode cost (§5.2/§6.3).")
let verify_heap =
  Arg.(
    value & flag
    & info [ "verify-heap" ]
        ~doc:
          "After every collection, re-check the whole heap: object headers, \
           pointer fields, global/stack/register roots and the derived-value \
           invariant. Violations abort with a structured report.")
let verify_pre =
  Arg.(
    value & flag
    & info [ "verify-pre" ]
        ~doc:"Also run the heap verifier before each collection moves anything.")
let profile =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Write a versioned JSON allocation profile: per-site allocation \
           counts and survival rates (sites carry their m3l source location), \
           pause-time distributions, and any heap censuses. Off by default; \
           when off, execution is byte-identical to a build without profiling.")
let policy =
  Arg.(
    value
    & opt (some file) None
    & info [ "policy" ] ~docv:"FILE"
        ~doc:
          "Load an mm-policy placement file (see policygen): sites the policy \
           marks pretenure or pool allocate directly in the old generation, \
           bypassing the nursery. Matching is by stable (proc, line, col, \
           type) key, so a policy survives recompilation. Pure runtime \
           switch — gc tables and program output are byte-identical. Also \
           set by MM_POLICY.")
let pretenure_adaptive =
  Arg.(
    value & opt int 0
    & info [ "pretenure-adaptive" ] ~docv:"N"
        ~doc:
          "Derive the placement policy in-run: profile site lifetimes for the \
           first N minor collections, then classify every site with the same \
           thresholds policygen uses and switch placement on. 0 disables. \
           Generational mode only; ignored when --policy is given.")
let census_every =
  Arg.(
    value & opt int 0
    & info [ "census-every" ] ~docv:"N"
        ~doc:
          "With --profile: take a heap census (live objects and words by type \
           descriptor and by allocation site) after every Nth collection. 0 \
           disables censuses.")
let fuel =
  Arg.(value & opt int 1_000_000_000 & info [ "fuel" ] ~doc:"Instruction budget.")

let cmd =
  let doc = "run M3L programs under the table-driven compacting collector" in
  Cmd.v
    (Cmd.info "mmrun" ~doc)
    Term.(
      ret
        (const run $ file $ optimize $ checks $ no_gc_restrict $ heap $ heap_grow
       $ heap_max $ stack $ collector $ gen $ incremental $ pause_budget $ nursery
       $ gc_workers $ no_barrier_elim $ no_threaded $ gc_stats $ trace $ metrics
       $ no_decode_cache $ verify_heap $ verify_pre $ profile $ census_every
       $ policy $ pretenure_adaptive $ fuel))

let () = exit (Cmd.eval cmd)
